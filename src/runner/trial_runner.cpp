#include "runner/trial_runner.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <new>
#include <vector>

#include "config/config.hpp"
#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_RUNNER_POSIX 1
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

// AddressSanitizer reserves terabytes of shadow address space; RLIMIT_AS
// would kill every worker at startup, so sandboxed builds skip that one cap
// (RLIMIT_CPU and RLIMIT_CORE still apply).
#if defined(__SANITIZE_ADDRESS__)
#define FPMIX_RUNNER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FPMIX_RUNNER_ASAN 1
#endif
#endif

namespace fpmix::runner {

bool isolation_supported() {
#if FPMIX_RUNNER_POSIX
  return true;
#else
  return false;
#endif
}

std::string signal_name(int signo) {
#if FPMIX_RUNNER_POSIX
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    default: break;
  }
#endif
  return strformat("signal %d", signo);
}

verify::FailureClass classify_death(const Worker::Death& death,
                                    std::string* detail) {
#if FPMIX_RUNNER_POSIX
  if (death.signaled && death.signal == SIGXCPU) {
    *detail = "worker hit its CPU rlimit (SIGXCPU)";
    return verify::FailureClass::kResource;
  }
#endif
  if (death.signaled) {
    *detail = strformat("worker killed by %s",
                        signal_name(death.signal).c_str());
  } else {
    *detail = strformat("worker exited with code %d", death.exit_code);
  }
  return verify::FailureClass::kCrash;
}

#if FPMIX_RUNNER_POSIX

namespace {

/// Writes all of `data` to `fd`, retrying on EINTR / short writes.
/// Returns false on any hard error (EPIPE: the reader died).
bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void apply_rlimits(const RlimitSpec& limits) {
  // No core dumps: a soak run crashes workers by the hundreds on purpose,
  // and a core per crash would fill the disk.
  rlimit core{0, 0};
  ::setrlimit(RLIMIT_CORE, &core);
#if !FPMIX_RUNNER_ASAN
  if (limits.address_space_mb > 0) {
    const rlim_t bytes =
        static_cast<rlim_t>(limits.address_space_mb) * 1024 * 1024;
    rlimit as{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &as);
  }
#endif
  if (limits.cpu_seconds > 0) {
    rlimit cpu{static_cast<rlim_t>(limits.cpu_seconds),
               static_cast<rlim_t>(limits.cpu_seconds) + 2};
    ::setrlimit(RLIMIT_CPU, &cpu);
  }
}

/// Allocation storm for HardFault::kOomStorm: grabs and touches memory
/// until the allocator refuses (the rlimit path -- reported as a resource
/// failure) or a cap is reached (the ASan / uncapped path -- the storm then
/// SIGKILLs itself, modelling the kernel OOM-killer). Returns true when the
/// rlimit stopped it.
bool allocation_storm(const RlimitSpec& limits) {
  constexpr std::size_t kChunk = 8u << 20;  // 8 MiB
  // Under an address-space cap the storm must overrun it; otherwise stop
  // at a fixed ceiling so an uncapped (ASan) worker does not take the
  // machine down for real.
  const std::size_t cap_bytes =
      limits.address_space_mb > 0
          ? static_cast<std::size_t>(limits.address_space_mb + 64) * 1024 *
                1024
          : 256u << 20;
  std::vector<char*> chunks;
  bool refused = false;
  std::size_t total = 0;
  while (total < cap_bytes) {
    char* p = new (std::nothrow) char[kChunk];
    if (p == nullptr) {
      refused = true;
      break;
    }
    // Touch every page so the allocation is real, not a lazy reservation.
    for (std::size_t i = 0; i < kChunk; i += 4096) p[i] = 1;
    chunks.push_back(p);
    total += kChunk;
  }
  for (char* p : chunks) delete[] p;
  return refused;
}

/// Blocking read of at least one byte into `buf`; false on EOF or error.
bool read_some(int fd, std::string* buf) {
  char tmp[4096];
  while (true) {
    const ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n > 0) {
      buf->append(tmp, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno != EINTR) return false;
  }
}

/// The worker's request loop. Never returns; exits the process directly so
/// no parent-side atexit handlers or stream flushes run twice.
[[noreturn]] void worker_child_main(int req_fd, int resp_fd,
                                    const WorkerContext& ctx,
                                    const RlimitSpec& limits) {
  apply_rlimits(limits);
  std::signal(SIGPIPE, SIG_IGN);

  // Per-session base config for delta-encoded requests. The driver mirrors
  // it on every request it successfully sends, so both sides advance in
  // lockstep; a worker death resets both (the driver clears its mirror on
  // respawn).
  config::PrecisionConfig session_base;
  bool has_base = false;

  std::string inbox;
  while (true) {
    // Assemble the next request frame.
    std::string payload;
    std::size_t consumed = 0;
    FrameStatus st;
    while ((st = decode_frame(inbox, &payload, &consumed)) ==
           FrameStatus::kNeedMore) {
      if (!read_some(req_fd, &inbox)) _exit(0);  // driver closed: shut down
    }
    if (st == FrameStatus::kCorrupt) _exit(3);
    inbox.erase(0, consumed);

    TrialRequest req;
    if (!decode_request(payload, &req)) _exit(3);

    fault::TrialFaults faults;
    if (ctx.injector != nullptr) {
      faults = ctx.injector->for_trial(req.key, req.exec_index);
    }

    // Decode the config and advance the session base BEFORE any injected
    // hard fault fires: the driver advances its mirror on every request it
    // manages to send, and a worker can survive a hard fault (kOomStorm on
    // the rlimit path) -- skipping the advance there would desync the
    // session. Every other divergence ends in worker death, which resets
    // both sides.
    config::PrecisionConfig cfg;
    if (req.opcode == kReqDelta) {
      if (!has_base || !config::PrecisionConfig::apply_delta(
                           session_base, req.config_key, &cfg)) {
        _exit(3);
      }
    } else {
      if (!config::PrecisionConfig::from_canonical_key(req.config_key,
                                                       &cfg)) {
        _exit(3);
      }
    }
    session_base = cfg;
    has_base = true;

    // Hard faults that strike before the trial completes.
    switch (faults.hard) {
      case fault::HardFault::kSegv:
        std::signal(SIGSEGV, SIG_DFL);
        ::raise(SIGSEGV);
        _exit(3);  // unreachable unless a handler swallowed it
      case fault::HardFault::kKill:
        ::raise(SIGKILL);
        _exit(3);
      case fault::HardFault::kHang:
        std::signal(SIGTERM, SIG_DFL);
        while (true) ::pause();
      case fault::HardFault::kHangIgnoreTerm:
        std::signal(SIGTERM, SIG_IGN);
        while (true) ::pause();
      default:
        break;
    }

    verify::EvalResult result;
    if (faults.hard == fault::HardFault::kOomStorm) {
      if (allocation_storm(limits)) {
        // The rlimit refused the storm: a clean resource verdict the
        // supervisor treats like a worker death (retry, then quarantine).
        result.passed = false;
        result.failure_class = verify::FailureClass::kResource;
        result.failure = "out of memory (rlimit refused allocation storm)";
      } else {
        ::raise(SIGKILL);  // uncapped: the OOM-killer analogue
        _exit(3);
      }
    } else {
      verify::EvalOptions eopts = ctx.eval;
      if (faults.vm.kind != fault::VmFault::kNone || faults.flip_verdict) {
        eopts.faults = &faults;
      }
      result = verify::evaluate_config(*ctx.image, *ctx.index, cfg,
                                       *ctx.verifier, eopts);
    }

    std::string frame = encode_frame(encode_result(from_eval_result(result)));
    if (faults.hard == fault::HardFault::kTruncResult) {
      frame.resize(frame.size() / 2);  // deliver half a frame, then die
      write_all(resp_fd, frame);
      _exit(4);
    }
    if (faults.hard == fault::HardFault::kCorruptResult) {
      // Flip one payload byte: the CRC catches it on the driver side.
      frame[8 + faults.hard_seed % std::max<std::size_t>(
                                       1, frame.size() - 12)] ^= 0x40;
      write_all(resp_fd, frame);
      _exit(4);
    }
    if (!write_all(resp_fd, frame)) _exit(0);  // driver went away
  }
}

}  // namespace

Worker::~Worker() { shutdown(); }

bool Worker::spawn(const WorkerContext& ctx, const RlimitSpec& limits) {
  shutdown();
  // The driver writes into a dead worker's request pipe when a crash races
  // a send; that must surface as EPIPE, not a fatal SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  int req[2] = {-1, -1};
  int resp[2] = {-1, -1};
  if (::pipe(req) != 0) return false;
  if (::pipe(resp) != 0) {
    ::close(req[0]);
    ::close(req[1]);
    return false;
  }

  const int pid = ::fork();
  if (pid < 0) {
    for (int fd : {req[0], req[1], resp[0], resp[1]}) ::close(fd);
    return false;
  }
  if (pid == 0) {
    ::close(req[1]);
    ::close(resp[0]);
    // Drop every other inherited descriptor -- in particular the pipe ends
    // of previously-spawned siblings. A sibling's inherited request-pipe
    // write end would otherwise keep that worker's read from ever hitting
    // EOF, so orphaned workers would pin each other alive after the driver
    // dies without reaping them.
    const int keep_lo = req[0] < resp[1] ? req[0] : resp[1];
    const int keep_hi = req[0] < resp[1] ? resp[1] : req[0];
    for (int fd = 3; fd < 1024; ++fd) {
      if (fd != keep_lo && fd != keep_hi) ::close(fd);
    }
    worker_child_main(req[0], resp[1], ctx, limits);
  }
  ::close(req[0]);
  ::close(resp[1]);
  // The supervisor multiplexes responses with poll; reads must not block.
  ::fcntl(resp[0], F_SETFL, O_NONBLOCK);
  pid_ = pid;
  req_fd_ = req[1];
  resp_fd_ = resp[0];
  buf_.clear();
  return true;
}

bool Worker::send_request(const TrialRequest& req) {
  if (req_fd_ < 0) return false;
  return write_all(req_fd_, encode_frame(encode_request(req)));
}

FrameStatus Worker::read_result(std::string* payload, bool* eof) {
  *eof = false;
  if (resp_fd_ < 0) {
    *eof = true;
    return FrameStatus::kNeedMore;
  }
  char tmp[4096];
  while (true) {
    const ssize_t n = ::read(resp_fd_, tmp, sizeof(tmp));
    if (n > 0) {
      buf_.append(tmp, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      *eof = true;
      break;
    }
    if (errno == EINTR) continue;
    break;  // EAGAIN: drained what was available
  }
  std::size_t consumed = 0;
  const FrameStatus st = decode_frame(buf_, payload, &consumed);
  if (st == FrameStatus::kOk) {
    buf_.erase(0, consumed);
    return FrameStatus::kOk;
  }
  if (st == FrameStatus::kCorrupt) return FrameStatus::kCorrupt;
  // A stream that ended mid-frame is a truncated delivery: corruption.
  if (*eof && !buf_.empty()) return FrameStatus::kCorrupt;
  return FrameStatus::kNeedMore;
}

void Worker::send_sigterm() {
  if (pid_ > 0) ::kill(pid_, SIGTERM);
}

void Worker::send_sigkill() {
  if (pid_ > 0) ::kill(pid_, SIGKILL);
}

bool Worker::reap(Death* death, bool block) {
  if (pid_ <= 0) return false;
  int status = 0;
  const int r = ::waitpid(pid_, &status, block ? 0 : WNOHANG);
  if (r == 0) return false;  // still running
  *death = Death{};
  if (r == pid_) {
    if (WIFSIGNALED(status)) {
      death->signaled = true;
      death->signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
      death->exit_code = WEXITSTATUS(status);
    }
  }
  // r < 0 (ECHILD etc.): nothing to learn; report a generic exit.
  pid_ = -1;
  if (req_fd_ >= 0) ::close(req_fd_);
  if (resp_fd_ >= 0) ::close(resp_fd_);
  req_fd_ = resp_fd_ = -1;
  buf_.clear();
  return true;
}

void Worker::shutdown() {
  if (pid_ <= 0) return;
  if (req_fd_ >= 0) ::close(req_fd_);
  if (resp_fd_ >= 0) ::close(resp_fd_);
  req_fd_ = resp_fd_ = -1;
  // Closing the request pipe asks the child to exit; workers stuck in a
  // fault-injected hang need force. SIGKILL is safe: workers hold no state
  // the driver has not already received.
  ::kill(pid_, SIGKILL);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
  buf_.clear();
}

#else  // !FPMIX_RUNNER_POSIX — stubs; isolation_supported() is false.

Worker::~Worker() {}
bool Worker::spawn(const WorkerContext&, const RlimitSpec&) { return false; }
bool Worker::send_request(const TrialRequest&) { return false; }
FrameStatus Worker::read_result(std::string*, bool* eof) {
  *eof = true;
  return FrameStatus::kNeedMore;
}
void Worker::send_sigterm() {}
void Worker::send_sigkill() {}
bool Worker::reap(Death*, bool) { return false; }
void Worker::shutdown() {}

#endif

}  // namespace fpmix::runner
