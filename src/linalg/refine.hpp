// Mixed-precision iterative refinement (Figure 12 of the paper).
//
//   1: LU <- PA                  (single precision, O(n^3))
//   2: solve Ly = Pb             (single)
//   3: solve Ux0 = y             (single)
//   4: for k = 1, 2, ... do
//   5:   r_k <- b - A x_{k-1}    (double, O(n^2))   (*)
//   6:   solve Ly = P r_k        (single)
//   7:   solve U z_k = y         (single)
//   8:   x_k <- x_{k-1} + z_k    (double)           (*)
//   9:   check for convergence
//  10: end for
//
// Only the starred steps run in double precision; the O(n^3) factorization
// stays in single. This is the manual mixed-precision algorithm family
// (Baboulin et al.) the paper cites as motivation, and bench_fig12 measures
// its speed/accuracy against all-double and all-single direct solves.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace fpmix::linalg {

struct RefineResult {
  std::vector<double> x;
  std::size_t iterations = 0;      // refinement steps actually taken
  double final_residual = 0.0;     // ||b - Ax||_inf / (||A||_inf ||x||_inf)
  bool converged = false;
};

/// Solves A x = b with single-precision LU plus double-precision iterative
/// refinement. Stops when the scaled residual drops below `tol` or after
/// `max_iters` corrections.
RefineResult refine_solve(const Dense<double>& a, const std::vector<double>& b,
                          double tol = 1e-12, std::size_t max_iters = 30);

/// Scaled residual used for the convergence check (and reported by the
/// benchmarks): ||b - Ax||_inf / (||A||_inf * ||x||_inf + ||b||_inf).
double scaled_residual(const Dense<double>& a, const std::vector<double>& x,
                       const std::vector<double>& b);

}  // namespace fpmix::linalg
