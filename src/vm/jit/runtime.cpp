// Host side of the JIT: executable memory, the entry/epilogue thunks, the
// capability probe, and the blob linker.
//
// Everything here is mechanism-only: policy (when to JIT, cache lookup,
// helper semantics) lives with the Machine in machine.cpp. The linker turns
// position-independent SegmentBlobs into one sealed W^X buffer by applying
// the "add the image-assigned base" relocations against the per-instruction
// native offset table it builds along the way.

#include <cstring>

#include "support/error.hpp"
#include "vm/jit/emitter.hpp"
#include "vm/jit/jit.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define FPMIX_JIT_HAVE_MMAP 1
#endif

// Compile-time disqualifiers. Sanitizers intercept neither the generated
// code nor its stack discipline, so running JIT'd frames under them produces
// false positives (and hides true ones); the engine downgrades instead.
#if !defined(__x86_64__)
#define FPMIX_JIT_OFF "host is not x86-64"
#elif !defined(FPMIX_JIT_HAVE_MMAP)
#define FPMIX_JIT_OFF "no mmap/mprotect on this platform"
#elif defined(FPMIX_SANITIZER_BUILD) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define FPMIX_JIT_OFF "sanitizer build"
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FPMIX_JIT_OFF "sanitizer build"
#endif
#endif

namespace fpmix::vm::jit {
namespace {

// JitContext displacements used by the thunks and the off-end stub (the full
// table lives in compile.cpp; both are static_asserted against the struct).
constexpr std::int32_t kCtxGpr = 0;
constexpr std::int32_t kCtxMemBase = 8;
constexpr std::int32_t kCtxXmm = 24;
constexpr std::int32_t kCtxRetired = 32;
constexpr std::int32_t kCtxMaxInstructions = 40;
constexpr std::int32_t kCtxExitStatus = 72;
constexpr std::int32_t kCtxEpilogue = 80;
constexpr std::int32_t kCtxHelpExec = 104;
static_assert(offsetof(JitContext, gpr) == kCtxGpr);
static_assert(offsetof(JitContext, mem_base) == kCtxMemBase);
static_assert(offsetof(JitContext, xmm) == kCtxXmm);
static_assert(offsetof(JitContext, max_instructions) == kCtxMaxInstructions);
static_assert(offsetof(JitContext, help_exec) == kCtxHelpExec);

}  // namespace

// ---------------------------------------------------------------------------
// CodeBuffer
// ---------------------------------------------------------------------------

CodeBuffer::~CodeBuffer() {
#ifdef FPMIX_JIT_HAVE_MMAP
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
}

bool CodeBuffer::map(std::size_t size) {
#ifdef FPMIX_JIT_HAVE_MMAP
  FPMIX_CHECK(data_ == nullptr);
  if (size == 0) size = 1;
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return false;
  data_ = static_cast<std::uint8_t*>(p);
  size_ = size;
  return true;
#else
  (void)size;
  return false;
#endif
}

bool CodeBuffer::seal() {
#ifdef FPMIX_JIT_HAVE_MMAP
  FPMIX_CHECK(data_ != nullptr);
  return ::mprotect(data_, size_, PROT_READ | PROT_EXEC) == 0;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Runtime thunks + capability probe
// ---------------------------------------------------------------------------

namespace {

struct RuntimeHolder {
  Runtime rt{};
  CodeBuffer buf;
  bool ok = false;
  const char* reason = "";
};

bool fill_and_seal(CodeBuffer& buf, const std::vector<std::uint8_t>& code) {
  if (!buf.map(code.size())) return false;
  std::memcpy(buf.data(), code.data(), code.size());
  return buf.seal();
}

// Fills `r` in place (CodeBuffer pins an mmap'd region and is immovable).
void init_runtime(RuntimeHolder& r) {
#ifdef FPMIX_JIT_OFF
  r.reason = FPMIX_JIT_OFF;
#else
    // Probe: some hardened kernels (or seccomp'd runner children) refuse
    // PROT_EXEC on anonymous mappings. Emit and run a trivial stub before
    // promising anything.
    {
      Emitter probe;
      probe.mov_ri32(RAX, 42);
      probe.ret();
      CodeBuffer pb;
      if (!fill_and_seal(pb, probe.code)) {
        r.reason = "kernel refused a writable-then-executable mapping";
        return;
      }
      auto fn = reinterpret_cast<std::uint32_t (*)()>(
          reinterpret_cast<void*>(pb.data()));
      if (fn() != 42) {
        r.reason = "executable-memory probe returned garbage";
        return;
      }
    }

    // entry(JitContext* rdi, const void* start rsi): save host callee-saved
    // state, pin the VM bases, and jump into compiled code. The extra 8
    // bytes keep rsp 16-aligned at the helper call sites inside JIT code.
    Emitter t;
    t.push_r(RBP);
    t.push_r(RBX);
    t.push_r(R12);
    t.push_r(R13);
    t.push_r(R14);
    t.push_r(R15);
    t.alu_ri8(Alu::kSub, RSP, 8);
    t.mov_rr(R15, RDI);
    t.mov_rm(R12, R15, kCtxGpr);
    t.mov_rm(R13, R15, kCtxMemBase);
    t.mov_rm(RBX, R15, kCtxXmm);
    t.mov_rm(R14, R15, kCtxRetired);
    t.mov_rm(RBP, R15, kCtxMaxInstructions);
    t.jmp_r(RSI);

    // epilogue (reached via jmp [r15+epilogue]): publish the retired count,
    // return the exit status.
    const std::size_t epi_off = t.size();
    t.mov_mr(R15, kCtxRetired, R14);
    t.mov_rm32(RAX, R15, kCtxExitStatus);
    t.alu_ri8(Alu::kAdd, RSP, 8);
    t.pop_r(R15);
    t.pop_r(R14);
    t.pop_r(R13);
    t.pop_r(R12);
    t.pop_r(RBX);
    t.pop_r(RBP);
    t.ret();

    if (!fill_and_seal(r.buf, t.code)) {
      r.reason = "kernel refused a writable-then-executable mapping";
      return;
    }
    r.rt.entry = reinterpret_cast<std::uint32_t (*)(JitContext*, const void*)>(
        reinterpret_cast<void*>(r.buf.data()));
    r.rt.epilogue = r.buf.data() + epi_off;
    r.ok = true;
#endif
}

RuntimeHolder& holder() {
  static RuntimeHolder h;
  static const bool initialised = (init_runtime(h), true);
  (void)initialised;
  return h;
}

}  // namespace

const Runtime* runtime() {
  RuntimeHolder& h = holder();
  return h.ok ? &h.rt : nullptr;
}

bool jit_supported() { return holder().ok; }

const char* jit_unsupported_reason() { return holder().reason; }

// ---------------------------------------------------------------------------
// JitImage::link
// ---------------------------------------------------------------------------

std::shared_ptr<const JitImage> JitImage::link(
    const std::vector<LinkSegment>& segments, std::size_t total) {
  // The off-end stub sits at offset 0 and doubles as native_addr(total):
  // execution that runs past the last instruction reports through the
  // generic-exec helper (which traps on an out-of-range pc), exactly where a
  // branch-to-end of the final segment lands.
  Emitter stub;
  stub.mov_mr(R15, kCtxRetired, R14);
  stub.mov_ri32(RSI, static_cast<std::uint32_t>(total));
  stub.mov_rr(RDI, R15);
  stub.call_m(R15, kCtxHelpExec);
  stub.jmp_m(R15, kCtxEpilogue);

  std::size_t size = stub.size();
  std::vector<std::size_t> seg_off(segments.size());
  std::size_t instr_count = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    seg_off[i] = size;
    size += segments[i].blob->code.size();
    instr_count += segments[i].blob->instr_off.size();
  }
  FPMIX_CHECK(instr_count == total);

  std::shared_ptr<JitImage> img(new JitImage());
  if (!img->buf_.map(size)) return nullptr;
  std::uint8_t* base = img->buf_.data();
  std::memcpy(base, stub.code.data(), stub.code.size());

  img->native_off_.assign(total + 1, 0);
  img->native_off_[total] = 0;  // the off-end stub
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SegmentBlob& b = *segments[i].blob;
    if (!b.code.empty()) std::memcpy(base + seg_off[i], b.code.data(),
                                     b.code.size());
    const std::size_t ibase = segments[i].first_index;
    for (std::size_t j = 0; j < b.instr_off.size(); ++j) {
      img->native_off_[ibase + j] =
          static_cast<std::uint32_t>(seg_off[i] + b.instr_off[j]);
    }
  }

  // Apply relocations (the full native offset table must exist first: local
  // branches can target any splice position, including one-past-the-end).
  const auto patch32 = [&](std::size_t at, std::uint32_t v) {
    std::memcpy(base + at, &v, 4);
  };
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SegmentBlob& b = *segments[i].blob;
    const std::size_t ibase = segments[i].first_index;
    for (const Reloc& r : b.relocs) {
      const std::size_t at = seg_off[i] + r.offset;
      switch (r.kind) {
        case Reloc::Kind::kRel32Target: {
          const std::size_t idx = ibase + static_cast<std::size_t>(r.value);
          FPMIX_CHECK(idx <= total);
          patch32(at, static_cast<std::uint32_t>(
                          static_cast<std::int64_t>(img->native_off_[idx]) -
                          static_cast<std::int64_t>(at + 4)));
          break;
        }
        case Reloc::Kind::kRel32Call: {
          const auto f = static_cast<std::size_t>(r.value);
          FPMIX_CHECK(f < segments.size());
          const std::size_t idx = segments[f].first_index;
          patch32(at, static_cast<std::uint32_t>(
                          static_cast<std::int64_t>(img->native_off_[idx]) -
                          static_cast<std::int64_t>(at + 4)));
          break;
        }
        case Reloc::Kind::kAbs64RetAddr: {
          const std::uint64_t v = r.value + segments[i].byte_base;
          std::memcpy(base + at, &v, 8);
          break;
        }
        case Reloc::Kind::kImm32Pc:
          patch32(at, static_cast<std::uint32_t>(ibase + r.value));
          break;
        case Reloc::Kind::kDisp32Counts:
          patch32(at, static_cast<std::uint32_t>((ibase + r.value) * 8));
          break;
      }
    }
  }

  if (!img->buf_.seal()) return nullptr;
  return img;
}

}  // namespace fpmix::vm::jit
