# Empty dependencies file for fpmix_program.
# This may be replaced when dependencies are built.
