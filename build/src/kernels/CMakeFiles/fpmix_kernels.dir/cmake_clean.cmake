file(REMOVE_RECURSE
  "CMakeFiles/fpmix_kernels.dir/amg.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/amg.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/bt.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/bt.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/cg.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/cg.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/ep.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/ep.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/ft.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/ft.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/lu.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/lu.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/mg.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/mg.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/sp.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/sp.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/superlu.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/superlu.cpp.o.d"
  "CMakeFiles/fpmix_kernels.dir/workload.cpp.o"
  "CMakeFiles/fpmix_kernels.dir/workload.cpp.o.d"
  "libfpmix_kernels.a"
  "libfpmix_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
