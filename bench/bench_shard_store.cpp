// Durable shard-store cost model (DESIGN.md section 4.9).
//
// Three columns answer the two questions --state-dir raises:
//
//   append    what does persisting each streamed journal record cost the
//             daemon's event loop, buffered-write + flush (the default)?
//   +fsync    and with --state-fsync, one disk round-trip per record?
//   reload    how long does a restarted daemon take to restore a shard of
//             N records (CRC check + seq dedupe per line)?
//
// The append columns bound the per-record overhead a scheduler's stream
// sees; the reload column bounds restart-to-serving latency. Rows sweep
// shard size so the linear scaling is visible.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "net/shard_store.hpp"
#include "support/journal.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

using namespace fpmix;

namespace {

/// A sealed journal line shaped like a real streamed trial record.
std::string make_line(std::uint64_t seq) {
  const std::string body = strformat(
      "{\"type\":\"trial\",\"key\":\"bench-%llu\",\"passed\":true,"
      "\"score\":%llu}",
      static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(seq));
  return seal_record(body, seq);
}

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

void run_row(std::size_t records) {
  const std::string fp = "bench-shard-fp";
  std::vector<std::string> lines;
  lines.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    lines.push_back(make_line(static_cast<std::uint64_t>(i + 1)));
  }

  double append_s = 0.0, fsync_s = 0.0, reload_s = 0.0;
  std::uint64_t reloaded = 0;
  std::string dir;
  for (int pass = 0; pass < 2; ++pass) {
    char tmpl[] = "/tmp/fpmix_bench_shard.XXXXXX";
    char* d = mkdtemp(tmpl);
    if (d == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::exit(1);
    }
    dir = d;
    net::ShardStoreOptions opts;
    opts.dir = dir;
    opts.fsync = pass == 1;
    {
      net::ShardStore store(opts);
      Timer t;
      for (const std::string& line : lines) store.append_journal(fp, line);
      (pass == 0 ? append_s : fsync_s) = t.elapsed_seconds();
    }
    if (pass == 0) {
      // Reload the un-fsynced shard: same bytes, fresh store.
      net::ShardStore store(opts);
      std::map<std::string, std::map<std::uint64_t, std::string>> journal;
      std::map<std::string, std::vector<net::PersistedVerdict>> verdicts;
      Timer t;
      store.load(&journal, &verdicts);
      reload_s = t.elapsed_seconds();
      reloaded = store.stats().records_reloaded;
    }
    remove_tree(dir);
  }

  const double us = 1e6 / static_cast<double>(records);
  std::printf("  %8zu %10.2fus %10.2fus %9.2fms %8llu %s\n", records,
              append_s * us, fsync_s * us, reload_s * 1e3,
              static_cast<unsigned long long>(reloaded),
              reloaded == records ? "intact" : "LOST RECORDS");
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("shard-store durability cost (per-record append, whole-shard "
              "reload)\n");
  std::printf("  %8s %12s %12s %11s %8s\n", "records", "append", "+fsync",
              "reload", "restored");
  for (const std::size_t n : {100u, 1000u, 10000u}) run_row(n);
  std::printf("\nappend/+fsync are per-record; reload is the full shard "
              "(restart-to-serving).\n");
  return 0;
}
