#include "arch/disasm.hpp"

#include "arch/intrinsics.hpp"
#include "support/strings.hpp"

namespace fpmix::arch {
namespace {

std::string reg_name(std::uint8_t r, bool xmm) {
  if (xmm) return strformat("xmm%u", r);
  if (r == kSpReg) return "sp";
  return strformat("r%u", r);
}

bool src_is_xmm_file(Opcode op) {
  // Opcodes whose register *src* operand lives in the XMM file.
  switch (op) {
    case Opcode::kMovqRX:
    case Opcode::kCvttsd2si:
    case Opcode::kCvttss2si:
      return true;
    default:
      // xmm,xmm arithmetic and moves have xmm dst too; handled by caller
      // passing dst kind.
      return false;
  }
}

}  // namespace

std::string operand_to_string(const Operand& op, bool is_xmm_reg) {
  switch (op.kind) {
    case OperandKind::kNone:
      return "";
    case OperandKind::kGpr:
      return reg_name(op.reg, false);
    case OperandKind::kXmm:
      return reg_name(op.reg, true);
    case OperandKind::kImm:
      if (op.imm >= 0 && op.imm < 4096) return strformat("%lld",
          static_cast<long long>(op.imm));
      return strformat("0x%llx", static_cast<unsigned long long>(op.imm));
    case OperandKind::kMem: {
      std::string s = "[";
      bool first = true;
      if (op.mem.base != kNoReg) {
        s += reg_name(op.mem.base, false);
        first = false;
      }
      if (op.mem.index != kNoReg) {
        if (!first) s += "+";
        s += reg_name(op.mem.index, false);
        if (op.mem.scale != 1) s += strformat("*%u", op.mem.scale);
        first = false;
      }
      if (op.mem.disp != 0 || first) {
        if (!first && op.mem.disp >= 0) s += "+";
        s += strformat("%d", op.mem.disp);
      }
      s += "]";
      return s;
    }
  }
  return "";
  (void)is_xmm_reg;
}

std::string instr_to_string(const Instr& ins) {
  const OpcodeInfo& info = opcode_info(ins.op);
  std::string s = info.name;
  if (ins.op == Opcode::kIntrin) {
    const auto id = static_cast<intrinsics::Id>(ins.src.imm);
    if (id < intrinsics::Id::kNumIntrinsics) {
      return s + " " + intrinsics::intrin_name(id);
    }
    return s + strformat(" #%lld", static_cast<long long>(ins.src.imm));
  }
  if (info.is_branch || info.is_call) {
    return s + strformat(" 0x%llx",
                         static_cast<unsigned long long>(ins.src.imm));
  }
  const std::string d = operand_to_string(ins.dst, ins.dst.is_xmm());
  const std::string r =
      operand_to_string(ins.src, ins.src.is_xmm() || src_is_xmm_file(ins.op));
  if (!d.empty() && !r.empty()) return s + " " + d + ", " + r;
  if (!d.empty()) return s + " " + d;
  if (!r.empty()) return s + " " + r;
  return s;
}

std::string instr_to_config_string(const Instr& ins) {
  return strformat("0x%llx \"%s\"",
                   static_cast<unsigned long long>(ins.addr),
                   instr_to_string(ins).c_str());
}

}  // namespace fpmix::arch
