// StructureIndex: the static analysis that enumerates a program's
// module -> function -> basic block -> instruction hierarchy and the
// replacement-candidate set Pd.
//
// The paper: "The initial list of these structures is easily generated using
// a simple static analysis that traverses the program's control flow graph."
// Search units, configurations and the text format all reference structures
// through the stable ids assigned here (instructions are identified by their
// original-program address).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/instr.hpp"
#include "program/program.hpp"

namespace fpmix::config {

struct InstrEntry {
  std::uint64_t addr = 0;       // original-program address (stable id)
  arch::Instr instr;            // decoded form (for disassembly/validation)
  bool candidate = false;       // member of Pd (replaceable by single)
  bool fp_touching = false;     // must be wrapped once anything is replaced
  std::size_t func = 0;         // owning indices
  std::size_t block = 0;
  std::uint64_t exec_weight = 0;  // filled by profiling (0 = unknown)
};

struct BlockEntry {
  std::uint64_t head_addr = 0;  // address of first instruction
  std::size_t func = 0;
  std::vector<std::size_t> instrs;      // indices into instrs()
  std::vector<std::size_t> candidates;  // subset that is in Pd
};

struct FuncEntry {
  std::string name;
  std::size_t module = 0;
  std::uint64_t entry_addr = 0;
  std::vector<std::size_t> blocks;
  std::vector<std::size_t> candidates;
};

struct ModuleEntry {
  std::string name;
  std::vector<std::size_t> funcs;
  std::vector<std::size_t> candidates;
};

class StructureIndex {
 public:
  /// Builds the index from a lifted program. Instruction ids are the
  /// addresses the instructions currently have, which for a freshly lifted
  /// image equal original-binary addresses.
  static StructureIndex build(const program::Program& prog);

  const std::vector<ModuleEntry>& modules() const { return modules_; }
  const std::vector<FuncEntry>& funcs() const { return funcs_; }
  const std::vector<BlockEntry>& blocks() const { return blocks_; }
  const std::vector<InstrEntry>& instrs() const { return instrs_; }
  std::vector<InstrEntry>& mutable_instrs() { return instrs_; }

  /// All candidate instruction indices, program order.
  const std::vector<std::size_t>& candidates() const { return candidates_; }

  /// Index of the instruction with original address `addr` (throws
  /// ConfigError if absent).
  std::size_t instr_at(std::uint64_t addr) const;
  bool has_instr_at(std::uint64_t addr) const;

  std::size_t func_named(std::string_view name) const;
  std::size_t module_named(std::string_view name) const;

  /// Records a profile (address -> execution count) onto exec_weight.
  void apply_profile(const std::map<std::uint64_t, std::uint64_t>& profile);

  /// Sum of exec_weight over a structure's candidate instructions.
  std::uint64_t candidate_weight_of_module(std::size_t m) const;
  std::uint64_t candidate_weight_of_func(std::size_t f) const;
  std::uint64_t candidate_weight_of_block(std::size_t b) const;

 private:
  std::vector<ModuleEntry> modules_;
  std::vector<FuncEntry> funcs_;
  std::vector<BlockEntry> blocks_;
  std::vector<InstrEntry> instrs_;
  std::vector<std::size_t> candidates_;
  std::map<std::uint64_t, std::size_t> by_addr_;
};

/// True when `ins` is a replacement candidate (Pd member): a double-precision
/// arithmetic/compare/convert instruction, or an FP intrinsic call with a
/// single-precision twin.
bool is_candidate_instr(const arch::Instr& ins);

/// True when `ins` interprets f64 data and must therefore be wrapped by the
/// instrumenter even when kept in double precision.
bool is_fp_touching_instr(const arch::Instr& ins);

}  // namespace fpmix::config
