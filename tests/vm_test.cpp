// Tests for the virtual machine: arithmetic semantics (bit-exact vs host
// IEEE), control flow, stack discipline, traps, profiling, intrinsics and
// the mini-MPI runtime.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "arch/encode.hpp"
#include "arch/tag.hpp"
#include "asm/assembler.hpp"
#include "program/layout.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

// Builds, lays out, runs; returns the machine for inspection.
struct RunOutcome {
  vm::RunResult result;
  std::vector<double> out;
  std::uint64_t retired = 0;
};

RunOutcome run_program(const program::Program& prog,
                       vm::Machine::Options opts = {}) {
  const program::Image img = program::relayout(prog);
  vm::Machine m(img, opts);
  RunOutcome o;
  o.result = m.run();
  o.out = m.output_f64();
  o.retired = m.instructions_retired();
  return o;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic matches host IEEE semantics bit-for-bit.

class ScalarArithSweep
    : public ::testing::TestWithParam<std::tuple<Opcode, int>> {};

TEST_P(ScalarArithSweep, MatchesHost) {
  const auto [op, seed] = GetParam();
  SplitMix64 rng(0xAB54 + static_cast<std::uint64_t>(seed));
  for (int trial = 0; trial < 25; ++trial) {
    const double a = rng.next_double(-100.0, 100.0);
    double b = rng.next_double(-100.0, 100.0);
    if (op == Opcode::kDivsd && std::fabs(b) < 1e-6) b = 1.5;

    casm::Assembler as;
    as.begin_function("main", "main");
    const auto da = as.data_f64(a);
    const auto db = as.data_f64(b);
    as.emit(Opcode::kMovsdXM, Operand::xmm(0),
            Operand::mem_abs(static_cast<std::int32_t>(da)));
    as.emit(Opcode::kMovsdXM, Operand::xmm(1),
            Operand::mem_abs(static_cast<std::int32_t>(db)));
    as.emit(op, Operand::xmm(0), Operand::xmm(1));
    as.intrin(in::Id::kOutputF64);
    as.halt();
    as.end_function();

    const RunOutcome o = run_program(as.finish("main"));
    ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
    ASSERT_EQ(o.out.size(), 1u);

    double expect = 0;
    switch (op) {
      case Opcode::kAddsd: expect = a + b; break;
      case Opcode::kSubsd: expect = a - b; break;
      case Opcode::kMulsd: expect = a * b; break;
      case Opcode::kDivsd: expect = a / b; break;
      case Opcode::kMinsd: expect = b < a ? b : a; break;
      case Opcode::kMaxsd: expect = a < b ? b : a; break;
      default: FAIL();
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(o.out[0]),
              std::bit_cast<std::uint64_t>(expect))
        << arch::opcode_name(op) << "(" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ScalarArithSweep,
    ::testing::Combine(::testing::Values(Opcode::kAddsd, Opcode::kSubsd,
                                         Opcode::kMulsd, Opcode::kDivsd,
                                         Opcode::kMinsd, Opcode::kMaxsd),
                       ::testing::Range(0, 3)));

TEST(Vm, SqrtAndConversions) {
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto d = as.data_f64(2.25);
  as.emit(Opcode::kMovsdXM, Operand::xmm(1),
          Operand::mem_abs(static_cast<std::int32_t>(d)));
  as.emit(Opcode::kSqrtsd, Operand::xmm(0), Operand::xmm(1));
  as.intrin(in::Id::kOutputF64);                      // 1.5
  as.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(-7));
  as.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(1));
  as.intrin(in::Id::kOutputF64);                      // -7.0
  as.emit(Opcode::kCvttsd2si, Operand::gpr(2), Operand::xmm(1));  // 2
  as.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(2));
  as.intrin(in::Id::kOutputF64);                      // 2.0
  // Round-trip through single precision: 1/3 loses bits.
  const auto t = as.data_f64(1.0 / 3.0);
  as.emit(Opcode::kMovsdXM, Operand::xmm(3),
          Operand::mem_abs(static_cast<std::int32_t>(t)));
  as.emit(Opcode::kCvtsd2ss, Operand::xmm(4), Operand::xmm(3));
  as.emit(Opcode::kCvtss2sd, Operand::xmm(0), Operand::xmm(4));
  as.intrin(in::Id::kOutputF64);
  as.halt();
  as.end_function();

  const RunOutcome o = run_program(as.finish("main"));
  ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
  ASSERT_EQ(o.out.size(), 4u);
  EXPECT_EQ(o.out[0], 1.5);
  EXPECT_EQ(o.out[1], -7.0);
  EXPECT_EQ(o.out[2], 2.0);
  EXPECT_EQ(o.out[3], static_cast<double>(static_cast<float>(1.0 / 3.0)));
}

TEST(Vm, PackedArithmetic) {
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto a0 = as.data_f64(1.5);
  as.data_f64(2.5);  // contiguous pair
  const auto b0 = as.data_f64(10.0);
  as.data_f64(20.0);
  as.emit(Opcode::kMovapdXM, Operand::xmm(0),
          Operand::mem_abs(static_cast<std::int32_t>(a0)));
  as.emit(Opcode::kMovapdXM, Operand::xmm(1),
          Operand::mem_abs(static_cast<std::int32_t>(b0)));
  as.emit(Opcode::kMulpd, Operand::xmm(0), Operand::xmm(1));
  as.intrin(in::Id::kOutputF64);  // lane 0 = 15
  // Move lane1 to lane0 via memory.
  const auto tmp = as.reserve_bss(16, 16);
  as.emit(Opcode::kMovapdMX, Operand::mem_abs(static_cast<std::int32_t>(tmp)),
          Operand::xmm(0));
  as.emit(Opcode::kMovsdXM, Operand::xmm(0),
          Operand::mem_abs(static_cast<std::int32_t>(tmp + 8)));
  as.intrin(in::Id::kOutputF64);  // lane 1 = 50
  as.halt();
  as.end_function();

  const RunOutcome o = run_program(as.finish("main"));
  ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
  ASSERT_EQ(o.out.size(), 2u);
  EXPECT_EQ(o.out[0], 15.0);
  EXPECT_EQ(o.out[1], 50.0);
}

// ---------------------------------------------------------------------------
// Control flow, calls, stack.

TEST(Vm, LoopAndCall) {
  // Computes sum_{i=1..10} i^2 = 385 via a helper call (also exercised by
  // program_test's sample; here we check the numeric outcome).
  casm::Assembler a;
  a.begin_function("square", "libmath");
  a.emit(Opcode::kMulsd, Operand::xmm(0), Operand::xmm(0));
  a.ret();
  a.end_function();
  a.begin_function("main", "main");
  const std::uint64_t acc = a.reserve_bss(8);
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(1));
  auto loop = a.new_label();
  auto done = a.new_label();
  a.bind(loop);
  a.emit(Opcode::kCmp, Operand::gpr(1), Operand::make_imm(10));
  a.jg(done);
  a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(1));
  a.call("square");
  a.emit(Opcode::kMovsdXM, Operand::xmm(1),
         Operand::mem_abs(static_cast<std::int32_t>(acc)));
  a.emit(Opcode::kAddsd, Operand::xmm(1), Operand::xmm(0));
  a.emit(Opcode::kMovsdMX, Operand::mem_abs(static_cast<std::int32_t>(acc)),
         Operand::xmm(1));
  a.emit(Opcode::kAdd, Operand::gpr(1), Operand::make_imm(1));
  a.jmp(loop);
  a.bind(done);
  a.emit(Opcode::kMovsdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(acc)));
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();

  const RunOutcome o = run_program(a.finish("main"));
  ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
  ASSERT_EQ(o.out.size(), 1u);
  EXPECT_EQ(o.out[0], 385.0);
}

TEST(Vm, PushPopAndXmmStack) {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(111));
  a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(222));
  a.emit(Opcode::kPush, Operand::gpr(1));
  a.emit(Opcode::kPush, Operand::gpr(2));
  a.emit(Opcode::kPop, Operand::gpr(3));   // 222
  a.emit(Opcode::kPop, Operand::gpr(4));   // 111
  a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(3));
  a.intrin(in::Id::kOutputF64);
  a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(4));
  a.intrin(in::Id::kOutputF64);
  // XMM save/restore (the snippet prologue/epilogue mechanism).
  const auto c = a.data_f64(7.5);
  a.emit(Opcode::kMovsdXM, Operand::xmm(5),
         Operand::mem_abs(static_cast<std::int32_t>(c)));
  a.emit(Opcode::kPushX, Operand::xmm(5));
  a.emit(Opcode::kXorpd, Operand::xmm(5), Operand::xmm(5));  // clobber
  a.emit(Opcode::kPopX, Operand::xmm(5));
  a.emit(Opcode::kMovsdXX, Operand::xmm(0), Operand::xmm(5));
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();

  const RunOutcome o = run_program(a.finish("main"));
  ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
  ASSERT_EQ(o.out.size(), 3u);
  EXPECT_EQ(o.out[0], 222.0);
  EXPECT_EQ(o.out[1], 111.0);
  EXPECT_EQ(o.out[2], 7.5);
}

TEST(Vm, IntegerOps) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto emit_out = [&] {
    a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(1));
    a.intrin(in::Id::kOutputF64);
  };
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(17));
  a.emit(Opcode::kImul, Operand::gpr(1), Operand::make_imm(-3));  // -51
  emit_out();
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(-17));
  a.emit(Opcode::kIdiv, Operand::gpr(1), Operand::make_imm(5));   // -3
  emit_out();
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(-17));
  a.emit(Opcode::kIrem, Operand::gpr(1), Operand::make_imm(5));   // -2
  emit_out();
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(0xF0));
  a.emit(Opcode::kShr, Operand::gpr(1), Operand::make_imm(4));    // 0xF
  emit_out();
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(-16));
  a.emit(Opcode::kSar, Operand::gpr(1), Operand::make_imm(2));    // -4
  emit_out();
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(0b1100));
  a.emit(Opcode::kAnd, Operand::gpr(1), Operand::make_imm(0b1010)); // 8
  emit_out();
  a.halt();
  a.end_function();

  const RunOutcome o = run_program(a.finish("main"));
  ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
  const std::vector<double> expect = {-51, -3, -2, 15, -4, 8};
  ASSERT_EQ(o.out.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(o.out[i], expect[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Traps.

TEST(VmTrap, DivideByZero) {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(5));
  a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(0));
  a.emit(Opcode::kIdiv, Operand::gpr(1), Operand::gpr(2));
  a.halt();
  a.end_function();
  const RunOutcome o = run_program(a.finish("main"));
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(o.result.trap_message.find("division by zero"),
            std::string::npos);
}

TEST(VmTrap, OutOfBoundsAccess) {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(1ll << 40));
  a.emit(Opcode::kLoad, Operand::gpr(2), Operand::mem_bd(1, 0));
  a.halt();
  a.end_function();
  const RunOutcome o = run_program(a.finish("main"));
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
}

TEST(VmTrap, InstructionBudget) {
  casm::Assembler a;
  a.begin_function("main", "main");
  auto l = a.new_label();
  a.bind(l);
  a.emit(Opcode::kNop);
  a.jmp(l);
  a.end_function();
  vm::Machine::Options opts;
  opts.max_instructions = 10'000;
  const RunOutcome o = run_program(a.finish("main"), opts);
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kOutOfBudget);
  EXPECT_LE(o.retired, 10'000u);
}

TEST(VmTrap, TaggedValueConsumedByDoubleOp) {
  // Store a replaced-double sentinel and feed it to addsd: the machine must
  // stop with the escape diagnostic (the paper's crash-on-miss property).
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  const RunOutcome o = run_program(a.finish("main"));
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(o.result.trap_message.find("replaced-double sentinel"),
            std::string::npos);
}

TEST(VmTrap, TaggedEscapeToOutput) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();
  const RunOutcome o = run_program(a.finish("main"));
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
}

TEST(VmTrap, TagTrapCanBeDisabled) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  vm::Machine::Options opts;
  opts.tag_trap = false;
  const RunOutcome o = run_program(a.finish("main"), opts);
  EXPECT_TRUE(o.result.ok());
}

// ---------------------------------------------------------------------------
// Intrinsics.

TEST(Vm, MathIntrinsics) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto x = a.data_f64(0.5);
  const auto ld = [&] {
    a.emit(Opcode::kMovsdXM, Operand::xmm(0),
           Operand::mem_abs(static_cast<std::int32_t>(x)));
  };
  for (in::Id id : {in::Id::kSin, in::Id::kCos, in::Id::kExp, in::Id::kLog,
                    in::Id::kFloor, in::Id::kFabs}) {
    ld();
    a.intrin(id);
    a.intrin(in::Id::kOutputF64);
  }
  ld();
  a.emit(Opcode::kMovsdXX, Operand::xmm(1), Operand::xmm(0));
  a.intrin(in::Id::kPow);
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();

  const RunOutcome o = run_program(a.finish("main"));
  ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
  ASSERT_EQ(o.out.size(), 7u);
  EXPECT_EQ(o.out[0], std::sin(0.5));
  EXPECT_EQ(o.out[1], std::cos(0.5));
  EXPECT_EQ(o.out[2], std::exp(0.5));
  EXPECT_EQ(o.out[3], std::log(0.5));
  EXPECT_EQ(o.out[4], 0.0);
  EXPECT_EQ(o.out[5], 0.5);
  EXPECT_EQ(o.out[6], std::pow(0.5, 0.5));
}

TEST(Vm, F32IntrinsicTwinsRoundOnce) {
  // sinf32(x) must equal (float)sin((double)x) bit-for-bit.
  casm::Assembler a;
  a.begin_function("main", "main");
  const float xf = 0.7f;
  const auto xbits = a.data_i64(static_cast<std::int64_t>(
      std::bit_cast<std::uint32_t>(xf)));
  a.emit(Opcode::kMovssXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(xbits)));
  a.intrin(in::Id::kSinF32);
  a.emit(Opcode::kCvtss2sd, Operand::xmm(0), Operand::xmm(0));
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();

  const RunOutcome o = run_program(a.finish("main"));
  ASSERT_TRUE(o.result.ok()) << o.result.trap_message;
  ASSERT_EQ(o.out.size(), 1u);
  const float expect = static_cast<float>(std::sin(static_cast<double>(xf)));
  EXPECT_EQ(o.out[0], static_cast<double>(expect));
}

// ---------------------------------------------------------------------------
// Profiling.

TEST(Vm, ProfileCountsLoopIterations) {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(0));
  auto loop = a.new_label();
  auto done = a.new_label();
  a.bind(loop);
  a.emit(Opcode::kCmp, Operand::gpr(1), Operand::make_imm(50));
  a.jge(done);
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));  // the hot instr
  a.emit(Opcode::kAdd, Operand::gpr(1), Operand::make_imm(1));
  a.jmp(loop);
  a.bind(done);
  a.halt();
  a.end_function();

  const program::Image img = program::relayout(a.finish("main"));
  vm::Machine m(img);
  ASSERT_TRUE(m.run().ok());
  const auto prof = m.profile_by_address();
  // Find the addsd: it must have executed exactly 50 times.
  const auto instrs = arch::decode_all(img.code, img.code_base);
  std::uint64_t addsd_count = 0;
  for (const auto& ins : instrs) {
    if (ins.op == Opcode::kAddsd) addsd_count = prof.at(ins.addr);
  }
  EXPECT_EQ(addsd_count, 50u);
}

// ---------------------------------------------------------------------------
// Mini-MPI.

TEST(MiniMpi, AllreduceAcrossRanks) {
  // Each rank contributes rank+1; the sum must be n(n+1)/2 on every rank.
  casm::Assembler a;
  a.begin_function("main", "main");
  a.intrin(in::Id::kMpiRank);
  a.emit(Opcode::kAdd, Operand::gpr(0), Operand::make_imm(1));
  a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(0));
  a.intrin(in::Id::kMpiAllreduceSum);
  a.intrin(in::Id::kOutputF64);
  a.intrin(in::Id::kMpiAllreduceMax);
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));

  const int kRanks = 4;
  vm::MiniMpi mpi(kRanks);
  std::vector<std::unique_ptr<vm::Machine>> machines;
  for (int r = 0; r < kRanks; ++r) {
    vm::Machine::Options opts;
    opts.mpi = &mpi;
    opts.rank = r;
    machines.push_back(std::make_unique<vm::Machine>(img, opts));
  }
  std::vector<std::thread> threads;
  std::vector<vm::RunResult> results(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] { results[r] = machines[r]->run(); });
  }
  for (auto& t : threads) t.join();

  for (int r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(results[r].ok()) << results[r].trap_message;
    ASSERT_EQ(machines[r]->output_f64().size(), 2u);
    EXPECT_EQ(machines[r]->output_f64()[0], 10.0);  // 1+2+3+4
    EXPECT_EQ(machines[r]->output_f64()[1], 10.0);  // max of identical sums
  }
}

TEST(MiniMpi, VectorAllreduce) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto buf = a.reserve_bss(3 * 8, 8);
  // buf[i] = rank * 10 + i
  a.intrin(in::Id::kMpiRank);
  a.emit(Opcode::kImul, Operand::gpr(0), Operand::make_imm(10));
  for (int i = 0; i < 3; ++i) {
    a.emit(Opcode::kMov, Operand::gpr(1), Operand::gpr(0));
    a.emit(Opcode::kAdd, Operand::gpr(1), Operand::make_imm(i));
    a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(1));
    a.emit(Opcode::kMovsdMX,
           Operand::mem_abs(static_cast<std::int32_t>(buf + 8 * i)),
           Operand::xmm(0));
  }
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(buf)));
  a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(3));
  a.intrin(in::Id::kMpiAllreduceVec);
  for (int i = 0; i < 3; ++i) {
    a.emit(Opcode::kMovsdXM, Operand::xmm(0),
           Operand::mem_abs(static_cast<std::int32_t>(buf + 8 * i)));
    a.intrin(in::Id::kOutputF64);
  }
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));

  const int kRanks = 3;
  vm::MiniMpi mpi(kRanks);
  std::vector<std::unique_ptr<vm::Machine>> machines;
  std::vector<std::thread> threads;
  std::vector<vm::RunResult> results(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    vm::Machine::Options opts;
    opts.mpi = &mpi;
    opts.rank = r;
    machines.push_back(std::make_unique<vm::Machine>(img, opts));
  }
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] { results[r] = machines[r]->run(); });
  }
  for (auto& t : threads) t.join();

  // Sum over ranks of (10r + i) = 30 + 3i for i in 0..2 with ranks 0,1,2.
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(results[r].ok()) << results[r].trap_message;
    const auto& out = machines[r]->output_f64();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 30.0);
    EXPECT_EQ(out[1], 33.0);
    EXPECT_EQ(out[2], 36.0);
  }
}

TEST(MiniMpi, BarrierDoesNotDeadlock) {
  const int kRanks = 4;
  vm::MiniMpi mpi(kRanks);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) mpi.barrier();
      ++done;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), kRanks);
}

}  // namespace
}  // namespace fpmix
