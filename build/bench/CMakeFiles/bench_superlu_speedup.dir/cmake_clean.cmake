file(REMOVE_RECURSE
  "CMakeFiles/bench_superlu_speedup.dir/bench_superlu_speedup.cpp.o"
  "CMakeFiles/bench_superlu_speedup.dir/bench_superlu_speedup.cpp.o.d"
  "bench_superlu_speedup"
  "bench_superlu_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_superlu_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
