#include "lang/builder.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::lang {

namespace in = arch::intrinsics;

namespace {

ExprPtr make_node(ExprNode n) {
  return std::make_shared<const ExprNode>(std::move(n));
}

Expr make_bin(BinOp fop, BinOp iop, Expr a, Expr b, const char* what) {
  if (a.type() != b.type()) {
    throw ProgramError(strformat("type mismatch in %s", what));
  }
  ExprNode n;
  n.kind = ExprNode::Kind::kBin;
  n.type = a.type();
  n.bop = a.type() == Type::kF64 ? fop : iop;
  n.a = a.node();
  n.b = b.node();
  return Expr(make_node(std::move(n)));
}

Expr make_int_bin(BinOp op, Expr a, Expr b, const char* what) {
  if (a.type() != Type::kI64 || b.type() != Type::kI64) {
    throw ProgramError(strformat("%s requires integer operands", what));
  }
  ExprNode n;
  n.kind = ExprNode::Kind::kBin;
  n.type = Type::kI64;
  n.bop = op;
  n.a = a.node();
  n.b = b.node();
  return Expr(make_node(std::move(n)));
}

Expr make_intrin(in::Id id, Expr a, Expr b = Expr()) {
  if (a.type() != Type::kF64 || (b.valid() && b.type() != Type::kF64)) {
    throw ProgramError("math intrinsics require real operands");
  }
  ExprNode n;
  n.kind = ExprNode::Kind::kIntrin;
  n.type = Type::kF64;
  n.intrin = id;
  n.a = a.node();
  if (b.valid()) n.b = b.node();
  return Expr(make_node(std::move(n)));
}

Cond make_cond(CmpOp op, Expr a, Expr b) {
  if (a.type() != b.type()) {
    throw ProgramError("type mismatch in comparison");
  }
  Cond c;
  c.node.op = op;
  c.node.a = a.node();
  c.node.b = b.node();
  return c;
}

}  // namespace

Expr operator+(Expr a, Expr b) {
  return make_bin(BinOp::kAddF, BinOp::kAddI, a, b, "+");
}
Expr operator-(Expr a, Expr b) {
  return make_bin(BinOp::kSubF, BinOp::kSubI, a, b, "-");
}
Expr operator*(Expr a, Expr b) {
  return make_bin(BinOp::kMulF, BinOp::kMulI, a, b, "*");
}
Expr operator/(Expr a, Expr b) {
  return make_bin(BinOp::kDivF, BinOp::kDivI, a, b, "/");
}
Expr operator%(Expr a, Expr b) { return make_int_bin(BinOp::kRemI, a, b, "%"); }
Expr operator&(Expr a, Expr b) { return make_int_bin(BinOp::kAndI, a, b, "&"); }
Expr operator|(Expr a, Expr b) { return make_int_bin(BinOp::kOrI, a, b, "|"); }
Expr operator^(Expr a, Expr b) { return make_int_bin(BinOp::kXorI, a, b, "^"); }
Expr operator<<(Expr a, Expr b) {
  return make_int_bin(BinOp::kShlI, a, b, "<<");
}
Expr operator>>(Expr a, Expr b) {
  return make_int_bin(BinOp::kShrI, a, b, ">>");
}

Expr operator-(Expr a) {
  if (a.type() == Type::kF64) {
    ExprNode zero;
    zero.kind = ExprNode::Kind::kConstF;
    zero.type = Type::kF64;
    zero.cf = 0.0;
    return Expr(make_node(std::move(zero))) - a;
  }
  ExprNode zero;
  zero.kind = ExprNode::Kind::kConstI;
  zero.type = Type::kI64;
  zero.ci = 0;
  return Expr(make_node(std::move(zero))) - a;
}

Expr sqrt_(Expr a) {
  if (a.type() != Type::kF64) throw ProgramError("sqrt_ requires a real");
  ExprNode n;
  n.kind = ExprNode::Kind::kSqrt;
  n.type = Type::kF64;
  n.a = a.node();
  return Expr(make_node(std::move(n)));
}

Expr fabs_(Expr a) { return make_intrin(in::Id::kFabs, a); }
Expr min_(Expr a, Expr b) {
  if (a.type() != Type::kF64) throw ProgramError("min_ requires reals");
  return make_bin(BinOp::kMinF, BinOp::kMinF, a, b, "min_");
}
Expr max_(Expr a, Expr b) {
  if (a.type() != Type::kF64) throw ProgramError("max_ requires reals");
  return make_bin(BinOp::kMaxF, BinOp::kMaxF, a, b, "max_");
}
Expr sin_(Expr a) { return make_intrin(in::Id::kSin, a); }
Expr cos_(Expr a) { return make_intrin(in::Id::kCos, a); }
Expr exp_(Expr a) { return make_intrin(in::Id::kExp, a); }
Expr log_(Expr a) { return make_intrin(in::Id::kLog, a); }
Expr pow_(Expr a, Expr b) { return make_intrin(in::Id::kPow, a, b); }
Expr floor_(Expr a) { return make_intrin(in::Id::kFloor, a); }

Expr to_f64(Expr a) {
  if (a.type() != Type::kI64) throw ProgramError("to_f64 requires an i64");
  ExprNode n;
  n.kind = ExprNode::Kind::kCastIF;
  n.type = Type::kF64;
  n.a = a.node();
  return Expr(make_node(std::move(n)));
}

Expr to_i64(Expr a) {
  if (a.type() != Type::kF64) throw ProgramError("to_i64 requires a real");
  ExprNode n;
  n.kind = ExprNode::Kind::kCastFI;
  n.type = Type::kI64;
  n.a = a.node();
  return Expr(make_node(std::move(n)));
}

Cond operator==(Expr a, Expr b) { return make_cond(CmpOp::kEq, a, b); }
Cond operator!=(Expr a, Expr b) { return make_cond(CmpOp::kNe, a, b); }
Cond operator<(Expr a, Expr b) { return make_cond(CmpOp::kLt, a, b); }
Cond operator<=(Expr a, Expr b) { return make_cond(CmpOp::kLe, a, b); }
Cond operator>(Expr a, Expr b) { return make_cond(CmpOp::kGt, a, b); }
Cond operator>=(Expr a, Expr b) { return make_cond(CmpOp::kGe, a, b); }

Var::operator Expr() const {
  FPMIX_CHECK(id_ >= 0);
  ExprNode n;
  n.kind = ExprNode::Kind::kVar;
  n.type = type_;
  n.var_id = id_;
  return Expr(make_node(std::move(n)));
}

Expr Arr::operator[](Expr index) const {
  FPMIX_CHECK(id_ >= 0);
  if (index.type() != Type::kI64) {
    throw ProgramError("array index must be an i64");
  }
  ExprNode n;
  n.kind = ExprNode::Kind::kLoad;
  n.type = elem_;
  n.var_id = id_;
  n.a = index.node();
  return Expr(make_node(std::move(n)));
}

Expr Arr::operator[](std::int64_t index) const {
  ExprNode n;
  n.kind = ExprNode::Kind::kConstI;
  n.type = Type::kI64;
  n.ci = index;
  return (*this)[Expr(make_node(std::move(n)))];
}

Builder::Builder() = default;

Expr Builder::cf(double v) const {
  ExprNode n;
  n.kind = ExprNode::Kind::kConstF;
  n.type = Type::kF64;
  n.cf = v;
  return Expr(make_node(std::move(n)));
}

Expr Builder::ci(std::int64_t v) const {
  ExprNode n;
  n.kind = ExprNode::Kind::kConstI;
  n.type = Type::kI64;
  n.ci = v;
  return Expr(make_node(std::move(n)));
}

int Builder::declare(VarDecl decl) {
  for (const VarDecl& v : model_.vars) {
    if (v.name == decl.name) {
      throw ProgramError(strformat("duplicate variable %s",
                                   decl.name.c_str()));
    }
  }
  model_.vars.push_back(std::move(decl));
  return static_cast<int>(model_.vars.size() - 1);
}

Var Builder::var_f64(std::string name) {
  VarDecl d;
  d.name = std::move(name);
  d.type = Type::kF64;
  return Var(declare(std::move(d)), Type::kF64);
}

Var Builder::var_i64(std::string name) {
  VarDecl d;
  d.name = std::move(name);
  d.type = Type::kI64;
  return Var(declare(std::move(d)), Type::kI64);
}

Arr Builder::array_f64(std::string name, std::size_t size) {
  VarDecl d;
  d.name = std::move(name);
  d.type = Type::kF64;
  d.is_array = true;
  d.size = size;
  return Arr(declare(std::move(d)), Type::kF64);
}

Arr Builder::array_i64(std::string name, std::size_t size) {
  VarDecl d;
  d.name = std::move(name);
  d.type = Type::kI64;
  d.is_array = true;
  d.size = size;
  return Arr(declare(std::move(d)), Type::kI64);
}

Arr Builder::const_array_f64(std::string name,
                             const std::vector<double>& data) {
  VarDecl d;
  d.name = std::move(name);
  d.type = Type::kF64;
  d.is_array = true;
  d.size = data.size();
  d.init_f = data;
  d.has_init = true;
  return Arr(declare(std::move(d)), Type::kF64);
}

Arr Builder::const_array_i64(std::string name,
                             const std::vector<std::int64_t>& data) {
  VarDecl d;
  d.name = std::move(name);
  d.type = Type::kI64;
  d.is_array = true;
  d.size = data.size();
  d.init_i = data;
  d.has_init = true;
  return Arr(declare(std::move(d)), Type::kI64);
}

void Builder::begin_func(std::string name, std::string module) {
  FPMIX_CHECK(!in_func_);
  FuncDecl f;
  f.name = std::move(name);
  f.module = std::move(module);
  model_.funcs.push_back(std::move(f));
  in_func_ = true;
  cur_ = &model_.funcs.back().body;
  stack_ = {cur_};
}

void Builder::end_func() {
  FPMIX_CHECK(in_func_ && stack_.size() == 1);
  in_func_ = false;
  cur_ = nullptr;
  stack_.clear();
}

void Builder::add_stmt(StmtPtr s) {
  FPMIX_CHECK(cur_ != nullptr);
  cur_->push_back(std::move(s));
}

void Builder::set(Var v, Expr value) {
  if (v.type() != value.type()) {
    throw ProgramError("type mismatch in assignment");
  }
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kAssign;
  s->var_id = v.id();
  s->a = value.node();
  add_stmt(std::move(s));
}

void Builder::store(Arr a, Expr index, Expr value) {
  if (index.type() != Type::kI64 || a.elem() != value.type()) {
    throw ProgramError("type mismatch in array store");
  }
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kStore;
  s->var_id = a.id();
  s->a = index.node();
  s->b = value.node();
  add_stmt(std::move(s));
}

namespace {
StmtList capture(Builder* b, std::vector<StmtList*>* stack, StmtList** cur,
                 const std::function<void()>& body) {
  StmtList list;
  stack->push_back(&list);
  *cur = &list;
  body();
  stack->pop_back();
  *cur = stack->back();
  (void)b;
  return list;
}
}  // namespace

void Builder::if_(Cond c, const std::function<void()>& then_body) {
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kIf;
  s->cond = c.node;
  s->body = capture(this, &stack_, &cur_, then_body);
  add_stmt(std::move(s));
}

void Builder::if_else(Cond c, const std::function<void()>& then_body,
                      const std::function<void()>& else_body) {
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kIf;
  s->cond = c.node;
  s->body = capture(this, &stack_, &cur_, then_body);
  s->else_body = capture(this, &stack_, &cur_, else_body);
  add_stmt(std::move(s));
}

void Builder::while_(Cond c, const std::function<void()>& body) {
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kWhile;
  s->cond = c.node;
  s->body = capture(this, &stack_, &cur_, body);
  add_stmt(std::move(s));
}

void Builder::for_(Var v, Expr lo, Expr hi, const std::function<void()>& body,
                   std::int64_t step) {
  FPMIX_CHECK(v.type() == Type::kI64);
  FPMIX_CHECK(step != 0);
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kFor;
  s->var_id = v.id();
  s->a = lo.node();
  s->b = hi.node();
  s->step = step;
  s->body = capture(this, &stack_, &cur_, body);
  add_stmt(std::move(s));
}

void Builder::call(std::string callee) {
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kCall;
  s->callee = std::move(callee);
  add_stmt(std::move(s));
}

void Builder::output(Expr real_value) {
  if (real_value.type() != Type::kF64) {
    throw ProgramError("output requires a real value");
  }
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kOutput;
  s->a = real_value.node();
  add_stmt(std::move(s));
}

void Builder::output_i(Expr int_value) {
  if (int_value.type() != Type::kI64) {
    throw ProgramError("output_i requires an i64 value");
  }
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kOutputI;
  s->a = int_value.node();
  add_stmt(std::move(s));
}

void Builder::ret() {
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kReturn;
  add_stmt(std::move(s));
}

Expr Builder::mpi_rank() const {
  ExprNode n;
  n.kind = ExprNode::Kind::kMpiRank;
  n.type = Type::kI64;
  return Expr(make_node(std::move(n)));
}

Expr Builder::mpi_size() const {
  ExprNode n;
  n.kind = ExprNode::Kind::kMpiSize;
  n.type = Type::kI64;
  return Expr(make_node(std::move(n)));
}

void Builder::barrier() {
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kBarrier;
  add_stmt(std::move(s));
}

Expr Builder::allreduce_sum(Expr real_value) const {
  return make_intrin(in::Id::kMpiAllreduceSum, real_value);
}

void Builder::allreduce_vec(Arr a, Expr count) {
  if (a.elem() != Type::kF64 || count.type() != Type::kI64) {
    throw ProgramError("allreduce_vec requires an f64 array and i64 count");
  }
  auto s = std::make_shared<StmtNode>();
  s->kind = StmtNode::Kind::kAllreduceVec;
  s->var_id = a.id();
  s->a = count.node();
  add_stmt(std::move(s));
}

}  // namespace fpmix::lang
