# Empty dependencies file for fpmix_vm.
# This may be replaced when dependencies are built.
