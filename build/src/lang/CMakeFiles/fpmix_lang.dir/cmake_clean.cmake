file(REMOVE_RECURSE
  "CMakeFiles/fpmix_lang.dir/builder.cpp.o"
  "CMakeFiles/fpmix_lang.dir/builder.cpp.o.d"
  "CMakeFiles/fpmix_lang.dir/compile.cpp.o"
  "CMakeFiles/fpmix_lang.dir/compile.cpp.o.d"
  "libfpmix_lang.a"
  "libfpmix_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
