// BT: block-tridiagonal solver analogue.
//
// Solves a batch of independent block-tridiagonal systems with dense 3x3
// blocks by the block Thomas algorithm: forward elimination with explicit
// 3x3 inverses (adjugate formula, fully unrolled -- this is where BT's large
// candidate count comes from in the paper) and back-substitution. Block data
// is baked, diagonally dominant.
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

namespace {

struct BtParams {
  std::size_t systems;   // independent lines
  std::size_t nblocks;   // blocks per line
};

BtParams bt_params(char cls) {
  switch (cls) {
    case 'S': return {4, 12};
    case 'W': return {8, 24};
    case 'A': return {16, 40};
    case 'C': return {32, 64};
    default: throw Error(strformat("bt: unknown class %c", cls));
  }
}

}  // namespace

Workload make_bt(char cls) {
  const BtParams p = bt_params(cls);
  const auto sys = static_cast<std::int64_t>(p.systems);
  const auto nb = static_cast<std::int64_t>(p.nblocks);
  const std::size_t total_blocks = p.systems * p.nblocks;

  // Bake block data: per (system, block): lower A, diagonal D, upper C (3x3
  // each) and rhs (3). Diagonal dominance keeps pivot-free elimination
  // stable.
  std::vector<double> lowd(total_blocks * 9), diag(total_blocks * 9),
      uppd(total_blocks * 9), rhs(total_blocks * 3);
  {
    SplitMix64 rng(0xB7 + static_cast<std::uint64_t>(cls));
    for (std::size_t t = 0; t < total_blocks; ++t) {
      double offsum[3] = {0, 0, 0};
      for (int e = 0; e < 9; ++e) {
        lowd[t * 9 + static_cast<std::size_t>(e)] =
            rng.next_double(-0.2, 0.2);
        uppd[t * 9 + static_cast<std::size_t>(e)] =
            rng.next_double(-0.2, 0.2);
        const double v = rng.next_double(-0.3, 0.3);
        diag[t * 9 + static_cast<std::size_t>(e)] = v;
        offsum[e / 3] += std::fabs(v);
      }
      for (int d = 0; d < 3; ++d) {
        diag[t * 9 + static_cast<std::size_t>(d * 3 + d)] =
            offsum[d] + 0.35 + 0.2 * rng.next_double(0.0, 1.0);
        rhs[t * 3 + static_cast<std::size_t>(d)] = rng.next_double(-1, 1);
      }
    }
  }

  Builder b;
  auto A = b.const_array_f64("blkA", lowd);
  auto D = b.const_array_f64("blkD", diag);
  auto C = b.const_array_f64("blkC", uppd);
  auto R = b.const_array_f64("blkR", rhs);

  // Working storage for one line.
  auto wd = b.array_f64("wd", p.nblocks * 9);    // modified diagonal blocks
  auto wmat = b.array_f64("wmat", p.nblocks * 9);  // W_k = inv(D'_k) C_k
  auto wg = b.array_f64("wg", p.nblocks * 3);      // g_k = inv(D'_k) b_k
  auto wb = b.array_f64("wb", p.nblocks * 3);      // running rhs
  auto xs = b.array_f64("xs", p.nblocks * 3);      // solution of the line

  // 3x3 scratch (globals, Fortran COMMON style).
  auto m9 = b.array_f64("m9", 9);    // input matrix for inv3
  auto inv9 = b.array_f64("inv9", 9);
  auto va3 = b.array_f64("va3", 3);
  auto vb3 = b.array_f64("vb3", 3);

  // --- module bt_blas: unrolled 3x3 primitives ------------------------------
  // inv9 = inverse(m9) via adjugate / determinant.
  b.begin_func("inv3", "bt_blas");
  {
    auto det = b.var_f64("iv_det");
    const auto m = [&](int i, int j) { return m9[b.ci(i * 3 + j)]; };
    auto c00 = b.var_f64("iv_c00");
    auto c01 = b.var_f64("iv_c01");
    auto c02 = b.var_f64("iv_c02");
    b.set(c00, m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1));
    b.set(c01, m(1, 2) * m(2, 0) - m(1, 0) * m(2, 2));
    b.set(c02, m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
    b.set(det, m(0, 0) * Expr(c00) + m(0, 1) * Expr(c01) +
                   m(0, 2) * Expr(c02));
    b.set(det, b.cf(1.0) / Expr(det));
    b.store(inv9, b.ci(0), Expr(c00) * Expr(det));
    b.store(inv9, b.ci(3), Expr(c01) * Expr(det));
    b.store(inv9, b.ci(6), Expr(c02) * Expr(det));
    b.store(inv9, b.ci(1),
            (m(0, 2) * m(2, 1) - m(0, 1) * m(2, 2)) * Expr(det));
    b.store(inv9, b.ci(4),
            (m(0, 0) * m(2, 2) - m(0, 2) * m(2, 0)) * Expr(det));
    b.store(inv9, b.ci(7),
            (m(0, 1) * m(2, 0) - m(0, 0) * m(2, 1)) * Expr(det));
    b.store(inv9, b.ci(2),
            (m(0, 1) * m(1, 2) - m(0, 2) * m(1, 1)) * Expr(det));
    b.store(inv9, b.ci(5),
            (m(0, 2) * m(1, 0) - m(0, 0) * m(1, 2)) * Expr(det));
    b.store(inv9, b.ci(8),
            (m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0)) * Expr(det));
  }
  b.end_func();

  // vb3 = m9 * va3 (unrolled).
  b.begin_func("mv3", "bt_blas");
  {
    for (int i = 0; i < 3; ++i) {
      b.store(vb3, b.ci(i),
              m9[b.ci(i * 3)] * va3[b.ci(0)] +
                  m9[b.ci(i * 3 + 1)] * va3[b.ci(1)] +
                  m9[b.ci(i * 3 + 2)] * va3[b.ci(2)]);
    }
  }
  b.end_func();

  // --- module bt_solve: block Thomas over one line ---------------------------
  auto line = b.var_i64("line");

  b.begin_func("solve_line", "bt_solve");
  {
    auto k = b.var_i64("sl_k");
    auto e = b.var_i64("sl_e");
    auto base = b.var_i64("sl_base");   // block index of (line, k)
    auto prev = b.var_i64("sl_prev");
    auto t0 = b.var_f64("sl_t0");

    // Copy line data into working arrays.
    b.for_(k, b.ci(0), b.ci(nb), [&] {
      b.set(base, (Expr(line) * b.ci(nb) + Expr(k)) * b.ci(9));
      b.for_(e, b.ci(0), b.ci(9), [&] {
        b.store(wd, Expr(k) * b.ci(9) + Expr(e), D[Expr(base) + Expr(e)]);
      });
      b.set(base, (Expr(line) * b.ci(nb) + Expr(k)) * b.ci(3));
      b.for_(e, b.ci(0), b.ci(3), [&] {
        b.store(wb, Expr(k) * b.ci(3) + Expr(e), R[Expr(base) + Expr(e)]);
      });
    });

    // Forward elimination.
    b.for_(k, b.ci(0), b.ci(nb), [&] {
      b.set(base, (Expr(line) * b.ci(nb) + Expr(k)) * b.ci(9));
      b.if_(Expr(k) > b.ci(0), [&] {
        b.set(prev, Expr(k) - b.ci(1));
        // wd_k -= A_k * W_{k-1};  wb_k -= A_k * g_{k-1}
        // Unrolled 3x3 multiply-subtract.
        auto ii = b.var_i64("sl_ii");
        auto jj = b.var_i64("sl_jj");
        auto kk = b.var_i64("sl_kk");
        b.for_(ii, b.ci(0), b.ci(3), [&] {
          b.for_(jj, b.ci(0), b.ci(3), [&] {
            b.set(t0, b.cf(0.0));
            b.for_(kk, b.ci(0), b.ci(3), [&] {
              b.set(t0, Expr(t0) +
                            A[Expr(base) + Expr(ii) * b.ci(3) + Expr(kk)] *
                                wmat[Expr(prev) * b.ci(9) +
                                     Expr(kk) * b.ci(3) + Expr(jj)]);
            });
            b.store(wd, Expr(k) * b.ci(9) + Expr(ii) * b.ci(3) + Expr(jj),
                    wd[Expr(k) * b.ci(9) + Expr(ii) * b.ci(3) + Expr(jj)] -
                        Expr(t0));
          });
          b.set(t0, b.cf(0.0));
          b.for_(kk, b.ci(0), b.ci(3), [&] {
            b.set(t0, Expr(t0) +
                          A[Expr(base) + Expr(ii) * b.ci(3) + Expr(kk)] *
                              wg[Expr(prev) * b.ci(3) + Expr(kk)]);
          });
          b.store(wb, Expr(k) * b.ci(3) + Expr(ii),
                  wb[Expr(k) * b.ci(3) + Expr(ii)] - Expr(t0));
        });
      });
      // inv(D'_k)
      b.for_(e, b.ci(0), b.ci(9), [&] {
        b.store(m9, Expr(e), wd[Expr(k) * b.ci(9) + Expr(e)]);
      });
      b.call("inv3");
      // W_k = inv * C_k
      auto ii = b.var_i64("sl_i2");
      auto jj = b.var_i64("sl_j2");
      auto kk = b.var_i64("sl_k2");
      b.for_(ii, b.ci(0), b.ci(3), [&] {
        b.for_(jj, b.ci(0), b.ci(3), [&] {
          b.set(t0, b.cf(0.0));
          b.for_(kk, b.ci(0), b.ci(3), [&] {
            b.set(t0, Expr(t0) +
                          inv9[Expr(ii) * b.ci(3) + Expr(kk)] *
                              C[(Expr(line) * b.ci(nb) + Expr(k)) * b.ci(9) +
                                Expr(kk) * b.ci(3) + Expr(jj)]);
          });
          b.store(wmat, Expr(k) * b.ci(9) + Expr(ii) * b.ci(3) + Expr(jj),
                  t0);
        });
      });
      // g_k = inv * wb_k  (via mv3 on globals)
      b.for_(e, b.ci(0), b.ci(9), [&] {
        b.store(m9, Expr(e), inv9[Expr(e)]);
      });
      b.for_(e, b.ci(0), b.ci(3), [&] {
        b.store(va3, Expr(e), wb[Expr(k) * b.ci(3) + Expr(e)]);
      });
      b.call("mv3");
      b.for_(e, b.ci(0), b.ci(3), [&] {
        b.store(wg, Expr(k) * b.ci(3) + Expr(e), vb3[Expr(e)]);
      });
    });

    // Back substitution.
    auto e2 = b.var_i64("sl_e2");
    b.for_(e2, b.ci(0), b.ci(3), [&] {
      b.store(xs, (b.ci(nb) - b.ci(1)) * b.ci(3) + Expr(e2),
              wg[(b.ci(nb) - b.ci(1)) * b.ci(3) + Expr(e2)]);
    });
    b.for_(k, b.ci(nb) - b.ci(2), b.ci(-1), [&] {
      b.for_(e2, b.ci(0), b.ci(9), [&] {
        b.store(m9, Expr(e2), wmat[Expr(k) * b.ci(9) + Expr(e2)]);
      });
      b.for_(e2, b.ci(0), b.ci(3), [&] {
        b.store(va3, Expr(e2), xs[(Expr(k) + b.ci(1)) * b.ci(3) + Expr(e2)]);
      });
      b.call("mv3");
      b.for_(e2, b.ci(0), b.ci(3), [&] {
        b.store(xs, Expr(k) * b.ci(3) + Expr(e2),
                wg[Expr(k) * b.ci(3) + Expr(e2)] - vb3[Expr(e2)]);
      });
    }, /*step=*/-1);
  }
  b.end_func();

  // --- module bt_main ----------------------------------------------------------
  b.begin_func("main", "bt_main");
  {
    auto e = b.var_i64("mn_e");
    auto csum = b.var_f64("mn_csum");
    auto lsum = b.var_f64("mn_lsum");
    b.set(csum, b.cf(0.0));
    b.for_(line, b.ci(0), b.ci(sys), [&] {
      b.call("solve_line");
      b.set(lsum, b.cf(0.0));
      b.for_(e, b.ci(0), b.ci(nb * 3), [&] {
        b.set(lsum, Expr(lsum) + xs[Expr(e)] * xs[Expr(e)]);
      });
      b.set(csum, Expr(csum) + sqrt_(lsum));
    });
    b.output(csum);
  }
  b.end_func();

  Workload w;
  w.name = strformat("bt.%c", cls);
  w.model = b.take_model();
  // A single moderately tight figure of merit: per-instruction narrowing
  // usually survives, whole-phase narrowing often does not -- BT is the
  // paper's example of a final composed configuration that can fail.
  w.rel_tol = 2e-8;
  return w;
}

}  // namespace fpmix::kernels
