// Differential tests for the incremental trial pipeline: per-function
// variant caching (instrument::IncrementalPatcher), sparse re-instrumentation
// (instrument_delta), segment-spliced predecode, the whole-image LRU
// (verify::ImageCache), the shared TrialBuilder front end, and
// cache-on/cache-off search equivalence on both execution engines and under
// process isolation with an active hard-fault campaign.
//
// The non-negotiable property throughout: an incrementally built trial is
// BIT-identical to the from-scratch instrument_image + ExecutableImage::build
// pipeline -- same image bytes, same outputs on both VM engines -- and a
// cached search converges to the byte-identical final configuration of an
// uncached one.
#include <gtest/gtest.h>

#include <bit>
#include <optional>

#include "config/config.hpp"
#include "instrument/incremental.hpp"
#include "instrument/patch.hpp"
#include "kernels/workload.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "runner/trial_runner.hpp"
#include "search/search.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "verify/evaluate.hpp"
#include "verify/image_cache.hpp"
#include "verify/trial_builder.hpp"
#include "verify/verifier.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

using config::Precision;
using config::PrecisionConfig;
using config::StructureIndex;

/// Random configuration over the real structure ids of `ix`, flags at every
/// level.
PrecisionConfig random_config(const StructureIndex& ix, SplitMix64* rng,
                              std::size_t max_flags) {
  PrecisionConfig cfg;
  const std::size_t n = rng->next_below(max_flags + 1);
  for (std::size_t k = 0; k < n; ++k) {
    const Precision p = rng->next_below(2) == 0 ? Precision::kDouble
                                                : Precision::kSingle;
    switch (rng->next_below(4)) {
      case 0:
        cfg.set_module(rng->next_below(ix.modules().size()), p);
        break;
      case 1:
        cfg.set_func(rng->next_below(ix.funcs().size()), p);
        break;
      case 2:
        cfg.set_block(rng->next_below(ix.blocks().size()), p);
        break;
      default:
        cfg.set_instr(rng->next_below(ix.instrs().size()), p);
        break;
    }
  }
  return cfg;
}

/// A search-step neighbour: a few flags added, flipped or erased.
PrecisionConfig mutate_config(const StructureIndex& ix, PrecisionConfig cfg,
                              SplitMix64* rng) {
  const std::size_t edits = 1 + rng->next_below(3);
  for (std::size_t k = 0; k < edits; ++k) {
    std::optional<Precision> p;
    if (rng->next_below(4) != 0) {
      p = rng->next_below(2) == 0 ? Precision::kDouble : Precision::kSingle;
    }
    switch (rng->next_below(4)) {
      case 0:
        cfg.set_module(rng->next_below(ix.modules().size()), p);
        break;
      case 1:
        cfg.set_func(rng->next_below(ix.funcs().size()), p);
        break;
      case 2:
        cfg.set_block(rng->next_below(ix.blocks().size()), p);
        break;
      default:
        cfg.set_instr(rng->next_below(ix.instrs().size()), p);
        break;
    }
  }
  return cfg;
}

void expect_images_identical(const program::Image& a, const program::Image& b,
                             const std::string& what) {
  ASSERT_EQ(a.code_base, b.code_base) << what;
  ASSERT_EQ(a.data_base, b.data_base) << what;
  ASSERT_EQ(a.bss_base, b.bss_base) << what;
  ASSERT_EQ(a.bss_size, b.bss_size) << what;
  ASSERT_EQ(a.entry, b.entry) << what;
  ASSERT_EQ(a.code, b.code) << what;
  ASSERT_EQ(a.data, b.data) << what;
  ASSERT_EQ(a.symbols.size(), b.symbols.size()) << what;
  for (std::size_t i = 0; i < a.symbols.size(); ++i) {
    ASSERT_EQ(a.symbols[i].addr, b.symbols[i].addr) << what << " sym " << i;
    ASSERT_EQ(a.symbols[i].size, b.symbols[i].size) << what << " sym " << i;
    ASSERT_EQ(a.symbols[i].name, b.symbols[i].name) << what << " sym " << i;
  }
}

std::vector<double> run_engine(std::shared_ptr<const vm::ExecutableImage> exec,
                               vm::Engine engine) {
  vm::Machine::Options mopts;
  mopts.engine = engine;
  vm::Machine m(std::move(exec), mopts);
  const vm::RunResult r = m.run();
  EXPECT_TRUE(r.ok()) << r.trap_message;
  return m.output_f64();
}

void expect_outputs_bit_identical(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " output " << i;
  }
}

/// A small multi-module program with enough structure (three modules, four
/// functions, loops, calls) that random configs exercise every dirtiness
/// path, while staying cheap enough to execute hundreds of times on both
/// engines.
lang::ProgramModel structured_program() {
  lang::Builder b;
  auto acc_a = b.var_f64("acc_a");
  auto acc_b = b.var_f64("acc_b");
  auto acc_c = b.var_f64("acc_c");
  auto arr = b.array_f64("arr", 12);

  b.begin_func("fill", "mod_a");
  {
    auto i = b.var_i64("f_i");
    b.for_(i, b.ci(0), b.ci(12), [&] {
      b.store(arr, lang::Expr(i), to_f64(i) * b.cf(0.37) + b.cf(0.25));
    });
  }
  b.end_func();

  b.begin_func("sum_sqrt", "mod_a");
  {
    auto i = b.var_i64("s_i");
    b.set(acc_a, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(12), [&] {
      b.set(acc_a, lang::Expr(acc_a) + sqrt_(arr[lang::Expr(i)]));
    });
  }
  b.end_func();

  b.begin_func("harmonic", "mod_b");
  {
    auto i = b.var_i64("h_i");
    b.set(acc_b, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(40), [&] {
      b.set(acc_b,
            lang::Expr(acc_b) + b.cf(1.0) / to_f64(lang::Expr(i) + b.ci(2)));
    });
  }
  b.end_func();

  b.begin_func("main", "mod_main");
  b.call("fill");
  b.call("sum_sqrt");
  b.call("harmonic");
  b.set(acc_c, lang::Expr(acc_a) * b.cf(0.5) + sin_(lang::Expr(acc_b)));
  b.output(lang::Expr(acc_a) * b.cf(1.0));
  b.output(lang::Expr(acc_b) * b.cf(1.0));
  b.output(lang::Expr(acc_c) * b.cf(1.0));
  b.end_func();
  return b.take_model();
}

struct Prepared {
  program::Image image;
  StructureIndex index;
};

Prepared prepare_structured() {
  Prepared p{program::relayout(
                 lang::compile(structured_program(), lang::Mode::kDouble)),
             {}};
  p.index = StructureIndex::build(program::lift(p.image));
  return p;
}

// ---------------------------------------------------------------------------
// IncrementalPatcher: delta-built images are bit-identical to from-scratch
// builds, and both engines agree, over a long random parent/child chain.

TEST(IncrementalPatcher, BitIdenticalToScratchOverRandomChain) {
  const Prepared p = prepare_structured();
  instrument::IncrementalPatcher patcher(p.image, p.index);

  SplitMix64 rng(0x1CC0FFEE);
  PrecisionConfig cfg;  // chain starts at all-double
  for (int pair = 0; pair < 120; ++pair) {
    // Mostly neighbours (the search's access pattern), occasionally a jump
    // to an unrelated config (worst case for the variant cache).
    cfg = pair % 10 == 9 ? random_config(p.index, &rng, 12)
                         : mutate_config(p.index, cfg, &rng);
    const std::string what = "pair " + std::to_string(pair) + " key " +
                             cfg.canonical_key();

    instrument::InstrumentStats scratch_stats;
    const program::Image scratch =
        instrument::instrument_image(p.image, p.index, cfg, &scratch_stats);
    instrument::IncrementalPatcher::Build b = patcher.patch(cfg);
    expect_images_identical(b.image, scratch, what);
    ASSERT_EQ(b.stats.wrapped, scratch_stats.wrapped) << what;
    ASSERT_EQ(b.stats.replaced_single, scratch_stats.replaced_single) << what;
    ASSERT_EQ(b.stats.snippet_instrs, scratch_stats.snippet_instrs) << what;

    const auto inc_exec = patcher.predecode(std::move(b));
    const auto scratch_exec = vm::ExecutableImage::build(scratch);
    expect_outputs_bit_identical(run_engine(inc_exec, vm::Engine::kMicroOp),
                                 run_engine(scratch_exec,
                                            vm::Engine::kMicroOp),
                                 what + " micro-op");
    expect_outputs_bit_identical(run_engine(inc_exec, vm::Engine::kSwitch),
                                 run_engine(scratch_exec, vm::Engine::kSwitch),
                                 what + " switch");
  }
  // The chain's locality must actually exercise the cache, or this test
  // proves nothing about incremental builds.
  EXPECT_GT(patcher.variant_hits(), 100u);
}

TEST(IncrementalPatcher, BitIdenticalOnKernelImage) {
  const kernels::Workload w = kernels::make_cg('S');
  const program::Image img = kernels::build_image(w);
  const auto ix = StructureIndex::build(program::lift(img));
  instrument::IncrementalPatcher patcher(img, ix);

  SplitMix64 rng(0xCC5);
  PrecisionConfig cfg;
  for (int pair = 0; pair < 24; ++pair) {
    cfg = mutate_config(ix, cfg, &rng);
    const program::Image scratch = instrument::instrument_image(img, ix, cfg);
    instrument::IncrementalPatcher::Build b = patcher.patch(cfg);
    expect_images_identical(b.image, scratch,
                            "cg pair " + std::to_string(pair));
  }
}

// ---------------------------------------------------------------------------
// instrument_delta: sparse re-instrumentation equals a full instrument().

TEST(InstrumentDelta, MatchesFromScratchInstrument) {
  const Prepared p = prepare_structured();
  const program::Program prog = program::lift(p.image);

  SplitMix64 rng(0xDE17AB);
  for (int round = 0; round < 25; ++round) {
    const PrecisionConfig base_cfg = random_config(p.index, &rng, 8);
    const instrument::InstrumentResult base =
        instrument::instrument(prog, p.index, base_cfg);
    const PrecisionConfig cfg = mutate_config(p.index, base_cfg, &rng);

    const instrument::InstrumentResult want =
        instrument::instrument(prog, p.index, cfg);
    const instrument::InstrumentResult got =
        instrument::instrument_delta(prog, p.index, base_cfg, base, cfg);

    const std::string what = "round " + std::to_string(round);
    expect_images_identical(program::relayout(got.patched),
                            program::relayout(want.patched), what);
    ASSERT_EQ(got.stats.wrapped, want.stats.wrapped) << what;
    ASSERT_EQ(got.stats.replaced_single, want.stats.replaced_single) << what;
    ASSERT_EQ(got.stats.ignored, want.stats.ignored) << what;
    ASSERT_EQ(got.stats.snippet_instrs, want.stats.snippet_instrs) << what;
    ASSERT_EQ(got.per_function.size(), want.per_function.size()) << what;
    for (std::size_t f = 0; f < want.per_function.size(); ++f) {
      ASSERT_EQ(got.per_function[f].wrapped, want.per_function[f].wrapped)
          << what << " func " << f;
    }
  }
}

TEST(InstrumentDelta, DirtySetIsSparseForLocalEdits) {
  const Prepared p = prepare_structured();
  PrecisionConfig a;
  PrecisionConfig b = a;
  // One instruction flag dirties exactly its containing function.
  b.set_instr(0, Precision::kSingle);
  const std::vector<std::size_t> dirty =
      instrument::dirty_functions(p.index, a, b);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], p.index.instrs()[0].func);
  // Identical configs dirty nothing.
  EXPECT_TRUE(instrument::dirty_functions(p.index, a, a).empty());
}

// ---------------------------------------------------------------------------
// ImageCache: LRU behaviour and the hash-collision guard.

TEST(ImageCache, LruEvictionAndCollisionGuard) {
  const Prepared p = prepare_structured();
  const auto exec = vm::ExecutableImage::build(p.image);
  const std::uint64_t fp = verify::image_fingerprint(p.image);

  verify::ImageCache cache(2);
  cache.insert(fp, 1, "k1", verify::ImageCache::Entry{exec, {}});
  cache.insert(fp, 2, "k2", verify::ImageCache::Entry{exec, {}});
  ASSERT_NE(cache.find(fp, 1, "k1"), nullptr);  // refreshes k1's recency
  cache.insert(fp, 3, "k3", verify::ImageCache::Entry{exec, {}});
  EXPECT_EQ(cache.find(fp, 2, "k2"), nullptr);  // k2 was the LRU entry
  EXPECT_NE(cache.find(fp, 1, "k1"), nullptr);
  EXPECT_NE(cache.find(fp, 3, "k3"), nullptr);
  // Same (fingerprint, hash) but a different canonical key is a 64-bit
  // collision: must degrade to a miss, never serve the wrong image.
  EXPECT_EQ(cache.find(fp, 1, "other-config"), nullptr);
  // A different image fingerprint never hits either.
  EXPECT_EQ(cache.find(fp + 1, 1, "k1"), nullptr);
}

// ---------------------------------------------------------------------------
// TrialBuilder: reuse accounting and bit-identity of the served images.

TEST(TrialBuilder, ReusesImagesAndAccountsSavings) {
  const Prepared p = prepare_structured();
  verify::TrialBuilder builder(p.image, p.index);

  SplitMix64 rng(0x7B);
  const PrecisionConfig a = random_config(p.index, &rng, 6);
  const verify::TrialBuilder::Built b1 = builder.build(a);
  EXPECT_FALSE(b1.cache_hit);
  ASSERT_NE(b1.exec, nullptr);
  EXPECT_EQ(b1.funcs_total, b1.exec->segments().size());

  // Bit-identical to the from-scratch pipeline.
  const auto scratch =
      vm::ExecutableImage::build(instrument::instrument_image(p.image,
                                                              p.index, a));
  expect_outputs_bit_identical(run_engine(b1.exec, vm::Engine::kMicroOp),
                               run_engine(scratch, vm::Engine::kMicroOp),
                               "builder vs scratch");

  // Same config again: whole-image hit serving the same executable.
  const verify::TrialBuilder::Built b2 = builder.build(a);
  EXPECT_TRUE(b2.cache_hit);
  EXPECT_EQ(b2.exec.get(), b1.exec.get());
  EXPECT_EQ(b2.funcs_reused, b2.funcs_total);

  // A neighbour misses the image cache but reuses most function variants.
  const verify::TrialBuilder::Built b3 =
      builder.build(mutate_config(p.index, a, &rng));
  EXPECT_FALSE(b3.cache_hit);
  EXPECT_GT(b3.funcs_reused, 0u);

  const verify::TrialBuilder::Stats s = builder.stats();
  EXPECT_EQ(s.image_cache_hits, 1u);
  EXPECT_EQ(s.image_cache_misses, 2u);
  EXPECT_GT(s.funcs_reused, 0u);
}

// ---------------------------------------------------------------------------
// Search equivalence: caching on vs off converges to the byte-identical
// final configuration (in-process, isolated, and isolated under faults).

struct SearchSetup {
  program::Image image;
  StructureIndex index;
  std::unique_ptr<verify::Verifier> verifier;
};

SearchSetup search_setup() {
  SearchSetup s{program::relayout(
                    lang::compile(structured_program(), lang::Mode::kDouble)),
                {}, nullptr};
  s.index = StructureIndex::build(program::lift(s.image));
  std::vector<double> ref = verify::reference_outputs(s.image);
  s.verifier = std::make_unique<verify::RelativeErrorVerifier>(std::move(ref),
                                                               1e-6);
  return s;
}

search::SearchResult run_once(const SearchSetup& s,
                              search::SearchOptions opts) {
  StructureIndex ix = s.index;  // run_search updates profile weights in place
  return search::run_search(s.image, &ix, *s.verifier, opts);
}

TEST(SearchEquivalence, CacheOnOffIdenticalInProcess) {
  const SearchSetup s = search_setup();
  search::SearchOptions opts;
  opts.keep_log = false;
  opts.max_retries = 1;  // retries make the image cache actually hit

  search::SearchOptions cold = opts;
  cold.image_cache = false;
  const search::SearchResult with_cache = run_once(s, opts);
  const search::SearchResult without_cache = run_once(s, cold);

  EXPECT_EQ(with_cache.final_config.canonical_key(),
            without_cache.final_config.canonical_key());
  EXPECT_EQ(with_cache.final_passed, without_cache.final_passed);
  EXPECT_EQ(with_cache.configs_tested, without_cache.configs_tested);
  EXPECT_GT(with_cache.metrics.image_cache_hits, 0u);
  EXPECT_GT(with_cache.metrics.funcs_reused, 0u);
  EXPECT_EQ(without_cache.metrics.image_cache_hits, 0u);
  EXPECT_EQ(without_cache.metrics.funcs_reused, 0u);
}

TEST(SearchEquivalence, CacheOnOffIdenticalIsolated) {
  if (!runner::isolation_supported()) GTEST_SKIP();
  const SearchSetup s = search_setup();
  search::SearchOptions opts;
  opts.keep_log = false;
  opts.isolate_trials = true;
  opts.num_workers = 2;
  opts.max_retries = 1;

  search::SearchOptions cold = opts;
  cold.image_cache = false;
  const search::SearchResult with_cache = run_once(s, opts);
  const search::SearchResult without_cache = run_once(s, cold);

  EXPECT_EQ(with_cache.final_config.canonical_key(),
            without_cache.final_config.canonical_key());
  EXPECT_EQ(with_cache.final_passed, without_cache.final_passed);
  // Delta frames were exchanged and the per-slot census saw the traffic.
  EXPECT_GT(with_cache.metrics.delta_requests, 0u);
  ASSERT_EQ(with_cache.metrics.worker_slots.size(), 2u);
  std::size_t slot_requests = 0;
  for (const auto& slot : with_cache.metrics.worker_slots) {
    slot_requests += slot.requests;
  }
  EXPECT_EQ(slot_requests, with_cache.metrics.isolated_trials);
}

TEST(SearchEquivalence, CacheOnOffIdenticalUnderFaultCampaign) {
  if (!runner::isolation_supported()) GTEST_SKIP();
  const SearchSetup s = search_setup();
  // Process-destroying faults only: every crash is absorbed as a retried
  // fault event, so verdicts (and the final config) must stay identical to
  // a clean run -- with or without warm caches.
  fault::Injector::Rates rates;
  rates.segv = 0.05;
  rates.kill = 0.03;
  rates.corrupt_result = 0.02;
  const fault::Injector injector(0xFA117, rates);

  search::SearchOptions opts;
  opts.keep_log = false;
  opts.isolate_trials = true;
  opts.num_workers = 2;
  opts.max_retries = 1;
  opts.fault_injector = &injector;

  search::SearchOptions cold = opts;
  cold.image_cache = false;
  const search::SearchResult with_cache = run_once(s, opts);
  const search::SearchResult without_cache = run_once(s, cold);

  EXPECT_EQ(with_cache.final_config.canonical_key(),
            without_cache.final_config.canonical_key());
  EXPECT_EQ(with_cache.final_passed, without_cache.final_passed);
  // The campaign actually fired, and respawns were attributed to slots.
  EXPECT_GT(with_cache.metrics.worker_crashes +
                with_cache.metrics.protocol_errors,
            0u);
  std::size_t slot_respawns = 0;
  for (const auto& slot : with_cache.metrics.worker_slots) {
    slot_respawns += slot.respawns;
  }
  EXPECT_EQ(slot_respawns, with_cache.metrics.worker_respawns);
}

}  // namespace
}  // namespace fpmix
