// RunnerServer: the daemon half of the distributed search service.
//
// One single-threaded poll(2) event loop multiplexes three kinds of fds:
// the TCP listener, every client session socket, and the response pipes of
// the local sandboxed WorkerPool (via its async submit/pump interface).
// Staying single-threaded is load-bearing twice over: it sidesteps every
// multithreaded-fork hazard when the pool respawns workers, and it means
// trial submission order -- and therefore per-config fault-injector
// execution indices -- is a deterministic function of the session streams.
//
// Sessions that share evaluation semantics (workload, budget, deadline,
// breaker, rlimit, fault campaign) share one backend: one built workload,
// one TrialBuilder (whose warm caches the forked workers inherit), one
// WorkerPool. A fleet-wide trial cache (per search fingerprint) serves
// repeat configurations without touching the pool and accepts
// kMsgCacheInsert fills from clients, so N schedulers sharing a shard
// evaluate every configuration at most once.
//
// The net layer stays independent of the kernels library: the embedding
// binary (runner_serve, nas_search --serve, the tests) supplies a
// WorkloadFactory that maps a benchmark name to a built image + structure
// index + verifier.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "config/structure.hpp"
#include "net/socket.hpp"
#include "program/image.hpp"
#include "support/fault.hpp"
#include "verify/verifier.hpp"

namespace fpmix::net {

/// Everything the server needs to evaluate trials for one workload.
struct ServedWorkload {
  program::Image image;
  config::StructureIndex index;
  std::unique_ptr<verify::Verifier> verifier;
};

/// Maps a benchmark id from a Hello to a built workload. Returns nullptr
/// (with *error) for unknown benchmarks; the session is rejected.
using WorkloadFactory = std::function<std::unique_ptr<ServedWorkload>(
    const std::string& bench, char cls, std::string* error)>;

struct ServerOptions {
  /// Sandboxed workers per backend (one backend per distinct evaluation
  /// semantics across sessions).
  int workers = 2;
  /// TERM->KILL grace for timed-out workers (PoolOptions::term_grace_ms).
  std::uint64_t term_grace_ms = 250;
  /// Test/chaos hook: stop serving (dropping every session) after this
  /// many trial results have been delivered; 0 serves forever. Simulates
  /// an endpoint dying mid-search.
  std::uint64_t exit_after_results = 0;
  /// Concurrent session cap; connections past it are rejected with an
  /// error frame before any backend work is done. 0 = unlimited.
  std::uint64_t max_sessions = 64;
  /// Sessions with no inbound traffic for this long are reaped (their
  /// replicated journal shard survives -- that is the point of it).
  /// 0 = never reap.
  std::uint64_t idle_timeout_ms = 600000;
  /// Per-search_fp replicated-journal bound: beyond this many retained
  /// records the lowest sequence numbers are dropped (and counted).
  std::uint64_t max_shard_records = 1ull << 16;
  /// Distinct search_fp shards retained; beyond it the least-recently
  /// touched whole shard is evicted.
  std::uint64_t max_journal_shards = 8;
  /// Durable state directory (shard journal + verdict-cache files, see
  /// net/shard_store.hpp). Empty keeps every shard purely in memory (the
  /// pre-v4 behaviour); set, a restarted daemon rejoins the fleet with its
  /// replicas intact. An unusable directory degrades back to in-memory
  /// operation (warned once, flagged in every HelloAck) -- never an abort.
  std::string state_dir;
  /// fsync(2) every persisted shard append (power-loss durability).
  bool state_fsync = false;
  /// Seeded deterministic disk-fault injection for the shard store; must
  /// outlive the server. nullptr = no injection.
  const fault::DiskChaos* disk_chaos = nullptr;
  /// Log one line per session/backend event at info level.
  bool verbose = false;
};

struct ServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_rejected = 0;   // bad hello / unknown workload / cap
  std::uint64_t sessions_reaped = 0;     // idle-timeout reaps
  std::uint64_t trials_served = 0;       // results delivered (cache included)
  std::uint64_t shard_cache_hits = 0;    // served without touching the pool
  std::uint64_t cache_inserts = 0;       // client kMsgCacheInsert fills
  std::uint64_t journal_appends = 0;     // replicated records retained
  std::uint64_t journal_rejected = 0;    // bad seal / unparseable seq
  std::uint64_t journal_fetches = 0;     // shard fetches served
  std::uint64_t pings = 0;               // heartbeats answered
  std::uint64_t digests = 0;             // shard-digest requests answered
  std::uint64_t protocol_errors = 0;     // corrupt frames / bad messages
  std::uint64_t backends = 0;            // distinct evaluation contexts
  // Durable-state counters, mirrored from the shard store (zero when no
  // state dir is configured).
  std::uint64_t shards_reloaded = 0;     // state files restored at startup
  std::uint64_t records_reloaded = 0;    // intact lines restored at startup
  std::uint64_t records_discarded = 0;   // damaged lines dropped at reload
  std::uint64_t disk_faults = 0;         // injected + real storage failures
  std::uint64_t state_degraded = 0;      // 1 when persistence fell back to RAM
};

/// The daemon. Construct with a bound listener (port 0 for kernel-assigned,
/// then read port()), then serve() until stopped.
class RunnerServer {
 public:
  RunnerServer(Listener listener, WorkloadFactory factory,
               const ServerOptions& opts);
  ~RunnerServer();
  RunnerServer(const RunnerServer&) = delete;
  RunnerServer& operator=(const RunnerServer&) = delete;

  std::uint16_t port() const;

  /// Runs the event loop until *stop becomes true (checked a few times a
  /// second; pass nullptr to serve until exit_after_results trips or the
  /// process is signalled).
  void serve(const std::atomic<bool>* stop);

  const ServerStats& stats() const { return stats_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServerStats stats_;
};

}  // namespace fpmix::net
