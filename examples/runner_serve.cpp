// runner_serve: the remote half of the distributed search service.
//
// Starts a daemon that fronts a local sandboxed WorkerPool and serves trial
// evaluations to nas_search --connect clients over TCP (the same CRC-framed
// wire protocol the pool speaks to its forked workers). One daemon can hold
// sessions from many schedulers at once; sessions that announce the same
// workload and evaluation semantics share one backend (one built image, one
// warm TrialBuilder, one worker fleet) and, with --shard-cache on the
// client, one fleet-wide trial cache.
//
// Usage:  runner_serve [--host H] [--port N] [--port-file FILE]
//                      [--workers N] [--exit-after N] [--quiet]
//                      [--max-sessions N] [--idle-timeout-ms N]
//                      [--state-dir DIR] [--state-fsync]
//                      [--disk-fault-seed N] [--disk-fault-rate P]
//                      [--disk-unreadable-rate P]
//
// --port 0 (the default) binds a kernel-assigned port; --port-file writes
// the bound "host:port" to FILE so scripts and CI can discover it without
// racing. --exit-after N stops the daemon after N trial results -- the
// chaos hook the endpoint-death tests and CI smoke use to simulate a
// runner dying mid-search.
//
// --state-dir DIR persists every retained journal shard and verdict cache
// under DIR as CRC-sealed JSONL and reloads them at startup, so a daemon
// that is SIGKILLed and restarted on the same directory resumes with its
// replicas intact (--state-fsync makes each append power-loss durable). An
// unusable directory degrades the daemon to the pre-v4 in-memory behaviour
// with a one-time warning; it never refuses to serve. --disk-fault-* turn
// on the seeded deterministic disk-fault campaign (short writes, torn
// records, fsync failures, ENOSPC, unreadable files on reload) for
// durability testing.
//
// Each session's scheduler streams its CRC-sealed journal records here;
// the daemon retains a per-search replicated shard that outlives the
// session, so a fresh scheduler (nas_search --adopt) can rebuild the
// trial history from the fleet after its host dies. --max-sessions caps
// concurrent sessions (default 64; excess connects are rejected with an
// error frame) and --idle-timeout-ms reaps sessions with no traffic for
// that long (default 600000, 0 disables); a reaped session logs its
// search fingerprint and retained-shard size, and the shard survives.
//
// Exit codes: 0 clean shutdown (signal or --exit-after); 1 cannot bind;
// 2 usage error.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "config/structure.hpp"
#include "kernels/workload.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "program/program.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

using namespace fpmix;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// Maps a session's announced benchmark to a built workload. Every NAS
/// analogue nas_search can search is servable.
std::unique_ptr<net::ServedWorkload> build_workload(const std::string& bench,
                                                    char cls,
                                                    std::string* error) {
  kernels::Workload w;
  if (bench == "ep") w = kernels::make_ep(cls);
  else if (bench == "cg") w = kernels::make_cg(cls);
  else if (bench == "ft") w = kernels::make_ft(cls);
  else if (bench == "mg") w = kernels::make_mg(cls);
  else if (bench == "bt") w = kernels::make_bt(cls);
  else if (bench == "lu") w = kernels::make_lu(cls);
  else if (bench == "sp") w = kernels::make_sp(cls);
  else if (bench == "amg") w = kernels::make_amg();
  else {
    if (error != nullptr) {
      *error = strformat("unknown benchmark '%s'", bench.c_str());
    }
    return nullptr;
  }
  auto out = std::make_unique<net::ServedWorkload>();
  out->image = kernels::build_image(w);
  out->index = config::StructureIndex::build(program::lift(out->image));
  out->verifier = kernels::make_verifier(w, out->image);
  return out;
}

/// Parses a probability in [0, 1]. Strict: the whole string must consume.
bool parse_prob(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint64_t port = 0;
  std::string port_file;
  net::ServerOptions sopts;
  bool quiet = false;
  bool have_disk_seed = false;
  std::uint64_t disk_seed = 0;
  double disk_fault_rate = 0.02;
  double disk_unreadable_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet") quiet = true;
    else if (arg == "--host" && i + 1 < argc) host = argv[++i];
    else if (arg == "--port" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &port) || port > 65535) {
        std::fprintf(stderr, "bad --port value '%s'\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--port-file" && i + 1 < argc) port_file = argv[++i];
    else if (arg == "--workers" && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!parse_u64(argv[++i], &n) || n == 0 || n > 256) {
        std::fprintf(stderr, "bad --workers value '%s'\n", argv[i]);
        return 2;
      }
      sopts.workers = static_cast<int>(n);
    }
    else if (arg == "--exit-after" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &sopts.exit_after_results)) {
        std::fprintf(stderr, "bad --exit-after value '%s'\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--max-sessions" && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!parse_u64(argv[++i], &n) || n == 0 || n > 4096) {
        std::fprintf(stderr, "bad --max-sessions value '%s' (1..4096)\n",
                     argv[i]);
        return 2;
      }
      sopts.max_sessions = static_cast<std::size_t>(n);
    }
    else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &sopts.idle_timeout_ms)) {
        std::fprintf(stderr, "bad --idle-timeout-ms value '%s' "
                             "(0 disables)\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--state-dir" && i + 1 < argc) {
      sopts.state_dir = argv[++i];
    }
    else if (arg == "--state-fsync") sopts.state_fsync = true;
    else if (arg == "--disk-fault-seed" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &disk_seed)) {
        std::fprintf(stderr, "bad --disk-fault-seed value '%s'\n", argv[i]);
        return 2;
      }
      have_disk_seed = true;
    }
    else if (arg == "--disk-fault-rate" && i + 1 < argc) {
      if (!parse_prob(argv[++i], &disk_fault_rate)) {
        std::fprintf(stderr, "bad --disk-fault-rate value '%s' (0..1)\n",
                     argv[i]);
        return 2;
      }
    }
    else if (arg == "--disk-unreadable-rate" && i + 1 < argc) {
      if (!parse_prob(argv[++i], &disk_unreadable_rate)) {
        std::fprintf(stderr, "bad --disk-unreadable-rate value '%s' "
                             "(0..1)\n", argv[i]);
        return 2;
      }
    }
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (!quiet) {
    sopts.verbose = true;
    log::set_level(log::Level::kInfo);
  }
  // The disk-fault campaign: write-path faults (short write, torn record,
  // fsync failure) at the shared rate, plus optionally unreadable files at
  // reload. ENOSPC/degradation is exercised with an unwritable --state-dir
  // rather than a rate -- it is a terminal state, not a recoverable fault.
  std::unique_ptr<fault::DiskChaos> disk_chaos;
  if (have_disk_seed) {
    if (sopts.state_dir.empty()) {
      std::fprintf(stderr,
                   "--disk-fault-seed needs --state-dir (disk faults are "
                   "injected into the shard store)\n");
      return 2;
    }
    fault::DiskChaos::Rates rates;
    rates.short_write = disk_fault_rate;
    rates.torn_record = disk_fault_rate;
    rates.fsync_fail = disk_fault_rate;
    rates.unreadable = disk_unreadable_rate;
    disk_chaos = std::make_unique<fault::DiskChaos>(disk_seed, rates);
    sopts.disk_chaos = disk_chaos.get();
  }

  if (!net::supported()) {
    std::fprintf(stderr, "sockets are unsupported on this platform\n");
    return 1;
  }
  net::Listener listener;
  std::string error;
  if (!listener.listen_on(host, static_cast<std::uint16_t>(port), &error)) {
    std::fprintf(stderr, "cannot listen: %s\n", error.c_str());
    return 1;
  }
  const std::string address =
      strformat("%s:%u", host.c_str(),
                static_cast<unsigned>(listener.port()));
  if (!port_file.empty()) {
    std::ofstream f(port_file);
    f << address << "\n";
    if (!f.good()) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 1;
    }
  }
  std::printf("runner_serve: listening on %s (%d workers per backend)\n",
              address.c_str(), sopts.workers);
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  net::RunnerServer server(std::move(listener), build_workload, sopts);
  server.serve(&g_stop);

  const net::ServerStats& st = server.stats();
  std::printf("runner_serve: done -- %llu session(s) (%llu rejected, "
              "%llu reaped), %llu trial(s) served (%llu shard-cache "
              "hit(s)), %llu cache insert(s), %llu protocol error(s), "
              "%llu backend(s)\n",
              static_cast<unsigned long long>(st.sessions_accepted),
              static_cast<unsigned long long>(st.sessions_rejected),
              static_cast<unsigned long long>(st.sessions_reaped),
              static_cast<unsigned long long>(st.trials_served),
              static_cast<unsigned long long>(st.shard_cache_hits),
              static_cast<unsigned long long>(st.cache_inserts),
              static_cast<unsigned long long>(st.protocol_errors),
              static_cast<unsigned long long>(st.backends));
  std::printf("runner_serve: journal -- %llu append(s) (%llu rejected), "
              "%llu fetch(es), %llu digest(s), %llu ping(s)\n",
              static_cast<unsigned long long>(st.journal_appends),
              static_cast<unsigned long long>(st.journal_rejected),
              static_cast<unsigned long long>(st.journal_fetches),
              static_cast<unsigned long long>(st.digests),
              static_cast<unsigned long long>(st.pings));
  std::printf("runner_serve: state -- %llu shard(s) reloaded (%llu "
              "record(s), %llu discarded), %llu disk fault(s)%s\n",
              static_cast<unsigned long long>(st.shards_reloaded),
              static_cast<unsigned long long>(st.records_reloaded),
              static_cast<unsigned long long>(st.records_discarded),
              static_cast<unsigned long long>(st.disk_faults),
              st.state_degraded != 0 ? ", DEGRADED to in-memory" : "");
  return 0;
}
