#include "config/structure.hpp"

#include "arch/intrinsics.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::config {

namespace in = arch::intrinsics;

bool is_candidate_instr(const arch::Instr& ins) {
  if (ins.op == arch::Opcode::kIntrin) {
    const auto id = static_cast<in::Id>(ins.src.imm);
    return id < in::Id::kNumIntrinsics && in::intrin_has_f32_twin(id);
  }
  return arch::is_replacement_candidate(ins.op);
}

bool is_fp_touching_instr(const arch::Instr& ins) {
  if (ins.op == arch::Opcode::kIntrin) {
    const auto id = static_cast<in::Id>(ins.src.imm);
    return id < in::Id::kNumIntrinsics && in::intrin_touches_fp(id);
  }
  return arch::touches_f64(ins.op);
}

StructureIndex StructureIndex::build(const program::Program& prog) {
  StructureIndex ix;
  std::map<std::string, std::size_t> module_ids;

  for (std::size_t fi = 0; fi < prog.functions.size(); ++fi) {
    const program::Function& fn = prog.functions[fi];
    auto [mit, inserted] =
        module_ids.try_emplace(fn.module, ix.modules_.size());
    if (inserted) {
      ModuleEntry m;
      m.name = fn.module;
      ix.modules_.push_back(std::move(m));
    }
    const std::size_t mi = mit->second;

    FuncEntry fe;
    fe.name = fn.name;
    fe.module = mi;
    const std::size_t func_id = ix.funcs_.size();
    ix.modules_[mi].funcs.push_back(func_id);

    bool first_instr = true;
    for (const program::BasicBlock& blk : fn.blocks) {
      BlockEntry be;
      be.func = func_id;
      const std::size_t block_id = ix.blocks_.size() + 0;  // assigned below
      fe.blocks.push_back(ix.blocks_.size());
      for (const arch::Instr& ins : blk.instrs) {
        FPMIX_CHECK(ins.addr != arch::kNoAddr);
        InstrEntry ie;
        ie.addr = ins.addr;
        ie.instr = ins;
        ie.candidate = is_candidate_instr(ins);
        ie.fp_touching = is_fp_touching_instr(ins);
        ie.func = func_id;
        ie.block = block_id;
        const std::size_t instr_id = ix.instrs_.size();
        if (be.instrs.empty()) be.head_addr = ins.addr;
        if (first_instr) {
          fe.entry_addr = ins.addr;
          first_instr = false;
        }
        be.instrs.push_back(instr_id);
        if (ie.candidate) {
          be.candidates.push_back(instr_id);
          fe.candidates.push_back(instr_id);
          ix.modules_[mi].candidates.push_back(instr_id);
          ix.candidates_.push_back(instr_id);
        }
        auto [ait, fresh] = ix.by_addr_.try_emplace(ie.addr, instr_id);
        if (!fresh) {
          throw ConfigError(strformat(
              "duplicate instruction address 0x%llx in structure index",
              static_cast<unsigned long long>(ie.addr)));
        }
        ix.instrs_.push_back(std::move(ie));
      }
      ix.blocks_.push_back(std::move(be));
    }
    ix.funcs_.push_back(std::move(fe));
  }
  return ix;
}

std::size_t StructureIndex::instr_at(std::uint64_t addr) const {
  auto it = by_addr_.find(addr);
  if (it == by_addr_.end()) {
    throw ConfigError(strformat("no instruction at address 0x%llx",
                                static_cast<unsigned long long>(addr)));
  }
  return it->second;
}

bool StructureIndex::has_instr_at(std::uint64_t addr) const {
  return by_addr_.contains(addr);
}

std::size_t StructureIndex::func_named(std::string_view name) const {
  for (std::size_t i = 0; i < funcs_.size(); ++i) {
    if (funcs_[i].name == name) return i;
  }
  throw ConfigError(strformat("no function named %.*s",
                              static_cast<int>(name.size()), name.data()));
}

std::size_t StructureIndex::module_named(std::string_view name) const {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i].name == name) return i;
  }
  throw ConfigError(strformat("no module named %.*s",
                              static_cast<int>(name.size()), name.data()));
}

void StructureIndex::apply_profile(
    const std::map<std::uint64_t, std::uint64_t>& profile) {
  for (InstrEntry& ie : instrs_) {
    auto it = profile.find(ie.addr);
    ie.exec_weight = (it != profile.end()) ? it->second : 0;
  }
}

std::uint64_t StructureIndex::candidate_weight_of_module(std::size_t m) const {
  std::uint64_t w = 0;
  for (std::size_t i : modules_.at(m).candidates) w += instrs_[i].exec_weight;
  return w;
}

std::uint64_t StructureIndex::candidate_weight_of_func(std::size_t f) const {
  std::uint64_t w = 0;
  for (std::size_t i : funcs_.at(f).candidates) w += instrs_[i].exec_weight;
  return w;
}

std::uint64_t StructureIndex::candidate_weight_of_block(std::size_t b) const {
  std::uint64_t w = 0;
  for (std::size_t i : blocks_.at(b).candidates) w += instrs_[i].exec_weight;
  return w;
}

}  // namespace fpmix::config
