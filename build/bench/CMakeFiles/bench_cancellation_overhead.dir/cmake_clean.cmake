file(REMOVE_RECURSE
  "CMakeFiles/bench_cancellation_overhead.dir/bench_cancellation_overhead.cpp.o"
  "CMakeFiles/bench_cancellation_overhead.dir/bench_cancellation_overhead.cpp.o.d"
  "bench_cancellation_overhead"
  "bench_cancellation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cancellation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
