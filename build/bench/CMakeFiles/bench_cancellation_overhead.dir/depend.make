# Empty dependencies file for bench_cancellation_overhead.
# This may be replaced when dependencies are built.
