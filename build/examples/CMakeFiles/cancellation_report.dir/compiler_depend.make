# Empty compiler generated dependencies file for cancellation_report.
# This may be replaced when dependencies are built.
