# Empty dependencies file for fpmix_arch.
# This may be replaced when dependencies are built.
