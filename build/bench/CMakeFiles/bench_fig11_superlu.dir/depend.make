# Empty dependencies file for bench_fig11_superlu.
# This may be replaced when dependencies are built.
