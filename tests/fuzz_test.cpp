// Property-based differential testing.
//
//  1. Decoder robustness: random byte strings either fail to decode with
//     DecodeError or decode to an instruction that re-encodes to the exact
//     same bytes (no silent mis-parses -- the property a binary rewriter
//     lives or dies by).
//  2. Random-program differential: generate random (but type-correct)
//     mini-language programs; for each, verify the paper's two central
//     correctness properties hold: all-double instrumentation is
//     bit-identical to the original, and all-single instrumentation is
//     bit-identical to the manually converted single build.
#include <gtest/gtest.h>

#include <bit>

#include "arch/encode.hpp"
#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

// ---------------------------------------------------------------------------
// 1. Decoder fuzz.

class DecoderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzz, MalformedBytesNeverMisparse) {
  SplitMix64 rng(0xF00D + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(2 + rng.next_below(18));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    arch::Instr ins;
    try {
      const std::uint32_t n = arch::decode(bytes, 0, 0x400000, &ins);
      // Decoded: must re-encode to the identical prefix.
      std::vector<std::uint8_t> re;
      arch::encode(ins, &re);
      ASSERT_EQ(re.size(), n);
      for (std::uint32_t i = 0; i < n; ++i) {
        ASSERT_EQ(re[i], bytes[i]) << "byte " << i;
      }
    } catch (const DecodeError&) {
      // Rejected cleanly: fine.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// 2. Random-program differential.

/// Generates a random type-correct program: a pool of f64 scalars and one
/// array, mutated by a random sequence of statements (arithmetic chains,
/// loops, conditionals, math intrinsics), with every scalar emitted at the
/// end.
lang::ProgramModel random_model(std::uint64_t seed) {
  SplitMix64 rng(seed);
  lang::Builder b;

  constexpr int kScalars = 5;
  std::vector<lang::Var> vars;
  for (int i = 0; i < kScalars; ++i) {
    vars.push_back(b.var_f64("v" + std::to_string(i)));
  }
  lang::Arr arr = b.array_f64("arr", 16);
  lang::Var idx = b.var_i64("idx");

  b.begin_func("main", "fuzz");

  // Deterministic, bounded initial values keep everything finite.
  for (int i = 0; i < kScalars; ++i) {
    b.set(vars[i], b.cf(rng.next_double(0.5, 3.0)));
  }
  b.for_(idx, b.ci(0), b.ci(16), [&] {
    b.store(arr, lang::Expr(idx),
            to_f64(idx) * b.cf(rng.next_double(0.01, 0.2)) + b.cf(1.0));
  });

  // Random f64 expression over the pool: a small tree.
  const auto rand_var = [&]() -> lang::Expr {
    return lang::Expr(vars[rng.next_below(kScalars)]);
  };
  const std::function<lang::Expr(int)> rand_expr = [&](int depth) {
    if (depth <= 0 || rng.next_below(3) == 0) {
      switch (rng.next_below(3)) {
        case 0: return rand_var();
        case 1: return b.cf(rng.next_double(0.25, 2.0));
        default: return arr[b.ci(static_cast<std::int64_t>(
            rng.next_below(16)))];
      }
    }
    const lang::Expr a = rand_expr(depth - 1);
    const lang::Expr c = rand_expr(depth - 1);
    switch (rng.next_below(7)) {
      case 0: return a + c;
      case 1: return a - c;
      case 2: return a * c;
      case 3: return a / (fabs_(c) + b.cf(1.0));  // keep away from 0
      case 4: return sqrt_(fabs_(a) + b.cf(0.5));
      case 5: return min_(a, c);
      default: return sin_(a);
    }
  };

  // Random statement sequence.
  const int num_stmts = 6 + static_cast<int>(rng.next_below(8));
  for (int s = 0; s < num_stmts; ++s) {
    switch (rng.next_below(4)) {
      case 0:
        b.set(vars[rng.next_below(kScalars)], rand_expr(3));
        break;
      case 1:
        b.store(arr,
                b.ci(static_cast<std::int64_t>(rng.next_below(16))),
                rand_expr(2));
        break;
      case 2: {
        const auto body_var = rng.next_below(kScalars);
        lang::Var loop_i = b.var_i64("i" + std::to_string(s));
        const auto iters =
            static_cast<std::int64_t>(2 + rng.next_below(6));
        b.for_(loop_i, b.ci(0), b.ci(iters), [&] {
          b.set(vars[body_var],
                lang::Expr(vars[body_var]) * b.cf(0.75) + rand_expr(2));
        });
        break;
      }
      default: {
        const auto tgt = rng.next_below(kScalars);
        b.if_else(rand_expr(1) < rand_expr(1),
                  [&] { b.set(vars[tgt], rand_expr(2)); },
                  [&] { b.set(vars[tgt], rand_expr(2) + b.cf(0.125)); });
        break;
      }
    }
  }

  // Outputs are funnelled through one multiplication. This matters: the
  // instrumenter replaces *instructions*, so a value that only ever moves
  // (constant -> variable -> output) legitimately keeps its full double
  // precision -- moves are bit-preserving and never wrapped. The paper's
  // bit-exactness claim (and this property test) applies to values that
  // flow through at least one floating-point operation, which is true of
  // every real benchmark output. Multiplying by 1.0 is exact in both
  // precisions and forces that flow.
  for (int i = 0; i < kScalars; ++i) {
    b.output(lang::Expr(vars[i]) * b.cf(1.0));
  }
  b.end_func();
  return b.take_model();
}

struct RunOut {
  bool ok;
  std::vector<double> out;
};

RunOut run_image(const program::Image& img) {
  vm::Machine m(img);
  const vm::RunResult r = m.run();
  return {r.ok(), m.output_f64()};
}

class ProgramFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProgramFuzz, InstrumentationPropertiesHold) {
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed =
        0xABCD * static_cast<std::uint64_t>(GetParam() + 1) +
        static_cast<std::uint64_t>(trial);
    const lang::ProgramModel model = random_model(seed);

    const program::Image orig =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    const RunOut base = run_image(orig);
    ASSERT_TRUE(base.ok) << "seed " << seed;

    const auto ix = config::StructureIndex::build(program::lift(orig));

    // Property A: all-double instrumentation is semantics-preserving.
    {
      const program::Image inst =
          instrument::instrument_image(orig, ix, {});
      const RunOut got = run_image(inst);
      ASSERT_TRUE(got.ok) << "seed " << seed;
      ASSERT_EQ(got.out.size(), base.out.size());
      for (std::size_t i = 0; i < base.out.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(got.out[i]),
                  std::bit_cast<std::uint64_t>(base.out[i]))
            << "seed " << seed << " output " << i;
      }
    }

    // Property B: all-single instrumentation == manual conversion.
    {
      config::PrecisionConfig cfg;
      for (std::size_t m = 0; m < ix.modules().size(); ++m) {
        cfg.set_module(m, config::Precision::kSingle);
      }
      const program::Image inst =
          instrument::instrument_image(orig, ix, cfg);
      const RunOut got = run_image(inst);

      const program::Image manual =
          program::relayout(lang::compile(model, lang::Mode::kSingle));
      const RunOut want = run_image(manual);

      ASSERT_EQ(got.ok, want.ok) << "seed " << seed;
      if (!want.ok) continue;
      ASSERT_EQ(got.out.size(), want.out.size());
      for (std::size_t i = 0; i < want.out.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(got.out[i]),
                  std::bit_cast<std::uint64_t>(want.out[i]))
            << "seed " << seed << " output " << i;
      }
    }

    // Property C: dataflow-optimized instrumentation matches baseline.
    {
      config::PrecisionConfig cfg;
      for (std::size_t m = 0; m < ix.modules().size(); ++m) {
        cfg.set_module(m, config::Precision::kSingle);
      }
      instrument::InstrumentOptions opts;
      opts.dataflow_optimize = true;
      const program::Image inst =
          instrument::instrument_image(orig, ix, cfg, nullptr, opts);
      const RunOut got = run_image(inst);
      const program::Image base_inst =
          instrument::instrument_image(orig, ix, cfg);
      const RunOut want = run_image(base_inst);
      ASSERT_EQ(got.ok, want.ok) << "seed " << seed;
      if (want.ok) {
        ASSERT_EQ(got.out.size(), want.out.size());
        for (std::size_t i = 0; i < want.out.size(); ++i) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got.out[i]),
                    std::bit_cast<std::uint64_t>(want.out[i]))
              << "seed " << seed << " output " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// 3. Config serialization fuzz: canonical-key and delta round-trips over
// deep hierarchical configs (flags at every level, ids spanning sixteen
// orders of binary magnitude).

config::PrecisionConfig random_config(SplitMix64* rng, std::size_t max_flags) {
  config::PrecisionConfig cfg;
  const auto precision = [&] {
    return rng->next_below(2) == 0 ? config::Precision::kDouble
                                   : config::Precision::kSingle;
  };
  const std::size_t n = rng->next_below(max_flags + 1);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t id = static_cast<std::size_t>(
        rng->next_below(1ull << (1 + rng->next_below(16))));
    switch (rng->next_below(4)) {
      case 0: cfg.set_module(id, precision()); break;
      case 1: cfg.set_func(id, precision()); break;
      case 2: cfg.set_block(id, precision()); break;
      default: cfg.set_instr(id, precision()); break;
    }
  }
  return cfg;
}

/// A plausible search-step neighbour of `base`: a few flags added, changed
/// or erased at random levels.
config::PrecisionConfig mutate_config(const config::PrecisionConfig& base,
                                      SplitMix64* rng) {
  config::PrecisionConfig cfg = base;
  const std::size_t edits = 1 + rng->next_below(6);
  for (std::size_t k = 0; k < edits; ++k) {
    const std::size_t id = static_cast<std::size_t>(
        rng->next_below(1ull << (1 + rng->next_below(16))));
    std::optional<config::Precision> p;
    if (rng->next_below(3) != 0) {
      p = rng->next_below(2) == 0 ? config::Precision::kDouble
                                  : config::Precision::kSingle;
    }
    switch (rng->next_below(4)) {
      case 0: cfg.set_module(id, p); break;
      case 1: cfg.set_func(id, p); break;
      case 2: cfg.set_block(id, p); break;
      default: cfg.set_instr(id, p); break;
    }
  }
  return cfg;
}

class ConfigFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConfigFuzz, CanonicalKeyRoundTrips) {
  SplitMix64 rng(0xC0F16 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 500; ++trial) {
    const config::PrecisionConfig cfg = random_config(&rng, 64);
    const std::string key = cfg.canonical_key();
    config::PrecisionConfig back;
    ASSERT_TRUE(config::PrecisionConfig::from_canonical_key(key, &back))
        << key;
    ASSERT_EQ(back.canonical_key(), key);
    ASSERT_EQ(back.stable_hash(), cfg.stable_hash());
  }
}

TEST_P(ConfigFuzz, DeltaRoundTrips) {
  SplitMix64 rng(0xDE17A + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 500; ++trial) {
    const config::PrecisionConfig base = random_config(&rng, 48);
    // Half neighbours (the wire protocol's common case), half unrelated
    // configs (worst case: the delta rewrites everything).
    const config::PrecisionConfig target = rng.next_below(2) == 0
                                               ? mutate_config(base, &rng)
                                               : random_config(&rng, 48);
    const std::string delta = target.encode_delta_from(base);
    config::PrecisionConfig got;
    ASSERT_TRUE(config::PrecisionConfig::apply_delta(base, delta, &got))
        << delta;
    ASSERT_EQ(got.canonical_key(), target.canonical_key()) << delta;
    if (base.canonical_key() == target.canonical_key()) {
      ASSERT_TRUE(delta.empty());
    }
  }
}

TEST_P(ConfigFuzz, MalformedDeltasNeverCorrupt) {
  SplitMix64 rng(0xBAD0 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 500; ++trial) {
    const config::PrecisionConfig base = random_config(&rng, 16);
    std::string junk(rng.next_below(24), '\0');
    for (auto& c : junk) c = static_cast<char>(rng.next_u64());
    config::PrecisionConfig out;
    // Either rejected or parsed; never crashes, and on success the result
    // still round-trips through its own canonical key.
    if (config::PrecisionConfig::apply_delta(base, junk, &out)) {
      config::PrecisionConfig back;
      ASSERT_TRUE(config::PrecisionConfig::from_canonical_key(
          out.canonical_key(), &back));
      ASSERT_EQ(back.canonical_key(), out.canonical_key());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz, ::testing::Range(0, 4));

}  // namespace
}  // namespace fpmix
