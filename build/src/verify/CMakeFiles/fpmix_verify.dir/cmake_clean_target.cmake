file(REMOVE_RECURSE
  "libfpmix_verify.a"
)
