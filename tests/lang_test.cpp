// Tests for the kernel mini-language and its code generator: numeric
// equivalence with host semantics in both modes, control flow, arrays,
// functions, and the Section 3.1 property that an instrumented all-single
// binary is bit-identical to the manually converted (Mode::kSingle) build.
#include <gtest/gtest.h>

#include <cmath>

#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace fpmix::lang {
namespace {

std::vector<double> run_model(const ProgramModel& model, Mode mode,
                              vm::RunResult* rr = nullptr) {
  const program::Image img = program::relayout(compile(model, mode));
  vm::Machine m(img);
  const vm::RunResult r = m.run();
  if (rr != nullptr) *rr = r;
  else EXPECT_TRUE(r.ok()) << r.trap_message;
  return m.output_f64();
}

TEST(Lang, ArithmeticAndPrecedence) {
  Builder b;
  b.begin_func("main", "m");
  auto x = b.var_f64("x");
  b.set(x, (b.cf(3.0) + b.cf(4.0)) * b.cf(2.0) - b.cf(1.0) / b.cf(4.0));
  b.output(x);
  b.output(sqrt_(b.cf(2.0)));
  b.output(min_(b.cf(3.0), b.cf(-7.0)));
  b.output(max_(b.cf(3.0), b.cf(-7.0)));
  b.output(fabs_(b.cf(-2.5)));
  b.output(-b.cf(6.25));
  b.end_func();
  const auto out = run_model(b.model(), Mode::kDouble);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], 13.75);
  EXPECT_EQ(out[1], std::sqrt(2.0));
  EXPECT_EQ(out[2], -7.0);
  EXPECT_EQ(out[3], 3.0);
  EXPECT_EQ(out[4], 2.5);
  EXPECT_EQ(out[5], -6.25);
}

TEST(Lang, IntegerOpsAndCasts) {
  Builder b;
  b.begin_func("main", "m");
  auto i = b.var_i64("i");
  b.set(i, (b.ci(17) * b.ci(3)) % b.ci(7));  // 51 % 7 = 2
  b.output_i(i);
  b.output_i(b.ci(40) / b.ci(6));            // 6
  b.output_i((b.ci(1) << b.ci(10)) - b.ci(1));
  b.output_i(b.ci(0xF0) >> b.ci(4));
  b.output_i((b.ci(0b1100) & b.ci(0b1010)) | b.ci(1));
  b.output(to_f64(b.ci(-9)));
  b.output_i(to_i64(b.cf(7.9)));             // truncation -> 7
  b.end_func();
  const program::Image img = program::relayout(compile(b.model(),
                                                       Mode::kDouble));
  vm::Machine m(img);
  ASSERT_TRUE(m.run().ok());
  const auto& oi = m.output_i64();
  ASSERT_EQ(oi.size(), 6u);
  EXPECT_EQ(oi[5], 7);
  EXPECT_EQ(oi[0], 2);
  EXPECT_EQ(oi[1], 6);
  EXPECT_EQ(oi[2], 1023);
  EXPECT_EQ(oi[3], 15);
  EXPECT_EQ(oi[4], 9);
  EXPECT_EQ(oi[5], 7);
  ASSERT_EQ(m.output_f64().size(), 1u);
  EXPECT_EQ(m.output_f64()[0], -9.0);
}

TEST(Lang, LoopsAndConditionals) {
  // Sum of odd squares below 20, via if_ inside for_.
  Builder b;
  b.begin_func("main", "m");
  auto i = b.var_i64("i");
  auto acc = b.var_f64("acc");
  b.set(acc, b.cf(0.0));
  b.for_(i, b.ci(0), b.ci(20), [&] {
    b.if_(Expr(i) % b.ci(2) == b.ci(1), [&] {
      b.set(acc, Expr(acc) + to_f64(Expr(i) * Expr(i)));
    });
  });
  b.output(acc);
  // while_ countdown.
  auto k = b.var_i64("k");
  auto n = b.var_i64("n");
  b.set(k, b.ci(10));
  b.set(n, b.ci(0));
  b.while_(Expr(k) > b.ci(0), [&] {
    b.set(n, Expr(n) + Expr(k));
    b.set(k, Expr(k) - b.ci(1));
  });
  b.output_i(n);
  // if_else.
  b.if_else(b.cf(1.0) < b.cf(2.0), [&] { b.output(b.cf(111.0)); },
            [&] { b.output(b.cf(222.0)); });
  b.end_func();

  const program::Image img = program::relayout(compile(b.model(),
                                                       Mode::kDouble));
  vm::Machine m(img);
  ASSERT_TRUE(m.run().ok());
  double expect = 0;
  for (int v = 1; v < 20; v += 2) expect += double(v) * v;
  ASSERT_EQ(m.output_f64().size(), 2u);
  EXPECT_EQ(m.output_f64()[0], expect);
  EXPECT_EQ(m.output_i64().at(0), 55);
  EXPECT_EQ(m.output_f64()[1], 111.0);
}

TEST(Lang, ArraysAndConstArrays) {
  std::vector<double> data = {1.5, -2.25, 3.75, 0.5};
  Builder b;
  b.begin_func("main", "m");
  auto src = b.const_array_f64("src", data);
  auto dst = b.array_f64("dst", 4);
  auto idx = b.const_array_i64("perm", {3, 2, 1, 0});
  auto i = b.var_i64("i");
  b.for_(i, b.ci(0), b.ci(4), [&] {
    b.store(dst, Expr(i), src[idx[Expr(i)]] * b.cf(2.0));
  });
  b.for_(i, b.ci(0), b.ci(4), [&] { b.output(dst[Expr(i)]); });
  b.end_func();
  const auto out = run_model(b.model(), Mode::kDouble);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 7.5);
  EXPECT_EQ(out[2], -4.5);
  EXPECT_EQ(out[3], 3.0);
}

TEST(Lang, FunctionsCommunicateViaGlobals) {
  Builder b;
  auto arg = b.var_f64("arg");
  auto res = b.var_f64("res");
  b.begin_func("cube", "libk");
  b.set(res, Expr(arg) * Expr(arg) * Expr(arg));
  b.end_func();
  b.begin_func("main", "m");
  b.set(arg, b.cf(3.0));
  b.call("cube");
  b.output(res);
  b.end_func();
  const auto out = run_model(b.model(), Mode::kDouble);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 27.0);
}

TEST(Lang, SingleModeRoundsLikeFloat) {
  Builder b;
  b.begin_func("main", "m");
  auto x = b.var_f64("x");
  b.set(x, b.cf(1.0) / b.cf(3.0));
  b.set(x, Expr(x) + b.cf(1.0e-9));
  b.output(x);
  b.output(sin_(b.cf(0.7)));
  b.end_func();

  const auto out = run_model(b.model(), Mode::kSingle);
  ASSERT_EQ(out.size(), 2u);
  const float fx = 1.0f / 3.0f + 1.0e-9f;
  EXPECT_EQ(out[0], static_cast<double>(fx));
  const float fs = static_cast<float>(std::sin(static_cast<double>(0.7f)));
  EXPECT_EQ(out[1], static_cast<double>(fs));
}

// The central Section 3.1 property, now at mini-language level: instrumented
// all-single double binary == manually converted single binary, bit-for-bit.
ProgramModel mixed_workload() {
  Builder b;
  b.begin_func("main", "m");
  auto i = b.var_i64("i");
  auto acc = b.var_f64("acc");
  auto v = b.array_f64("v", 32);
  b.set(acc, b.cf(0.0));
  b.for_(i, b.ci(0), b.ci(32), [&] {
    b.store(v, Expr(i),
            to_f64(Expr(i)) * b.cf(0.37) + sqrt_(to_f64(Expr(i) + b.ci(1))));
  });
  b.for_(i, b.ci(0), b.ci(32), [&] {
    b.if_(v[Expr(i)] > b.cf(2.0), [&] {
      b.set(acc, Expr(acc) + v[Expr(i)] / b.cf(1.7));
    });
  });
  b.output(acc);
  b.end_func();
  Builder* leak = nullptr;
  (void)leak;
  return b.take_model();
}

TEST(Lang, InstrumentedAllSingleMatchesManualConversion) {
  const ProgramModel model = mixed_workload();

  // Manually converted build.
  const std::vector<double> manual = run_model(model, Mode::kSingle);

  // Instrumented all-single build of the double binary.
  const program::Image orig =
      program::relayout(compile(model, Mode::kDouble));
  const program::Program lifted = program::lift(orig);
  const config::StructureIndex ix = config::StructureIndex::build(lifted);
  config::PrecisionConfig cfg;
  for (std::size_t m = 0; m < ix.modules().size(); ++m) {
    cfg.set_module(m, config::Precision::kSingle);
  }
  const program::Image patched = instrument::instrument_image(orig, ix, cfg);
  vm::Machine m(patched);
  ASSERT_TRUE(m.run().ok());
  const std::vector<double>& inst = m.output_f64();

  ASSERT_EQ(inst.size(), manual.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(inst[i]),
              std::bit_cast<std::uint64_t>(manual[i]))
        << "output " << i << ": instrumented " << inst[i] << " vs manual "
        << manual[i];
  }
}

TEST(Lang, TypeErrorsRejected) {
  Builder b;
  EXPECT_THROW((void)(b.cf(1.0) + b.ci(1)), ProgramError);
  EXPECT_THROW((void)(b.ci(1) % b.cf(1.0)), ProgramError);
  EXPECT_THROW((void)sqrt_(b.ci(4)), ProgramError);
  EXPECT_THROW((void)to_f64(b.cf(1.0)), ProgramError);
  EXPECT_THROW((void)to_i64(b.ci(1)), ProgramError);
  EXPECT_THROW((void)(b.cf(1.0) < b.ci(1)), ProgramError);
  auto a = b.array_f64("a", 4);
  EXPECT_THROW((void)a[b.cf(0.0)], ProgramError);
  b.begin_func("main", "m");
  auto x = b.var_f64("x");
  EXPECT_THROW(b.set(x, Expr(b.ci(1))), ProgramError);
  EXPECT_THROW(b.output_i(b.cf(1.0)), ProgramError);
  b.output(x);
  b.end_func();
}

TEST(Lang, DuplicateVarRejected) {
  Builder b;
  b.var_f64("x");
  EXPECT_THROW(b.var_i64("x"), ProgramError);
}

}  // namespace
}  // namespace fpmix::lang
