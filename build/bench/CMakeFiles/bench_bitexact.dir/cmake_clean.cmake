file(REMOVE_RECURSE
  "CMakeFiles/bench_bitexact.dir/bench_bitexact.cpp.o"
  "CMakeFiles/bench_bitexact.dir/bench_bitexact.cpp.o.d"
  "bench_bitexact"
  "bench_bitexact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bitexact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
