#include "search/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "runner/wire.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "vm/machine.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_NET_POSIX 1
#include <poll.h>
#else
#define FPMIX_NET_POSIX 0
#endif

namespace fpmix::search {

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void sleep_ms(int ms) {
#if FPMIX_NET_POSIX
  ::poll(nullptr, 0, ms);
#else
  (void)ms;
#endif
}

}  // namespace

Scheduler::Scheduler(const SchedulerOptions& opts) : opts_(opts) {
  shards_.reserve(opts_.endpoints.size());
  for (std::size_t i = 0; i < opts_.endpoints.size(); ++i) {
    Shard s;
    s.ep = opts_.endpoints[i];
    s.m.address = s.ep.str();
    // Per-shard backoff seed: deterministic, distinct per shard so a fleet
    // that drops together does not redial in lockstep.
    s.backoff = Backoff(opts_.reconnect_backoff, 0x73686172ull + i);
    shards_.push_back(std::move(s));
  }
}

Scheduler::~Scheduler() = default;

bool Scheduler::try_connect(Shard* s) {
  std::string error;
  auto client = net::EndpointClient::connect(
      s->ep, opts_.hello, opts_.connect_timeout_ms, opts_.hello_timeout_ms,
      &error);
  if (client == nullptr) {
    log::warnf("scheduler: endpoint %s unavailable: %s",
               s->m.address.c_str(), error.c_str());
    if (++s->consecutive_failures >= opts_.max_endpoint_failures) {
      s->lost = true;
      s->m.lost = true;
      log::warnf("scheduler: endpoint %s lost after %u failures",
                 s->m.address.c_str(), s->consecutive_failures);
    } else {
      s->retry_at_ms = now_ms() + s->backoff.next_ms();
    }
    return false;
  }
  if (!opts_.verifier_fp.empty() &&
      client->verifier_fp() != opts_.verifier_fp) {
    // The endpoint evaluates a different reference computation; its
    // verdicts would be garbage. Never retry.
    log::warnf("scheduler: endpoint %s verifier fingerprint mismatch "
               "(local %s, remote %s); endpoint dropped",
               s->m.address.c_str(), opts_.verifier_fp.c_str(),
               client->verifier_fp().c_str());
    s->lost = true;
    s->m.lost = true;
    return false;
  }
  if (client->engine() != opts_.hello.engine) {
    // Engines are bit-identical, so only one mismatch is sanctioned: jit
    // requested of a host that cannot run it answers micro-op. Anything
    // else is a protocol violation; never trust the endpoint.
    const bool sanctioned_downgrade =
        opts_.hello.engine == static_cast<std::uint8_t>(vm::Engine::kJit) &&
        client->engine() == static_cast<std::uint8_t>(vm::Engine::kMicroOp);
    if (!sanctioned_downgrade) {
      log::warnf("scheduler: endpoint %s answered engine %u to a request "
                 "for engine %u; endpoint dropped",
                 s->m.address.c_str(), static_cast<unsigned>(client->engine()),
                 static_cast<unsigned>(opts_.hello.engine));
      s->lost = true;
      s->m.lost = true;
      return false;
    }
    if (!s->m.jit_downgraded) {
      log::warnf("scheduler: endpoint %s cannot run the jit engine; its "
                 "trials run on the micro-op engine (results identical)",
                 s->m.address.c_str());
      s->m.jit_downgraded = true;
    }
  }
  if (s->ever_connected) ++s->m.reconnects;
  s->ever_connected = true;
  s->consecutive_failures = 0;
  s->backoff.reset();
  s->m.workers = client->workers();
  s->client = std::move(client);
  return true;
}

std::size_t Scheduler::connect() {
  std::size_t live = 0;
  for (Shard& s : shards_) {
    if (try_connect(&s)) ++live;
  }
  return live;
}

std::size_t Scheduler::capacity() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    if (s.client != nullptr) total += s.m.workers;
  }
  return total;
}

bool Scheduler::any_live() const {
  for (const Shard& s : shards_) {
    if (s.client != nullptr) return true;
  }
  return false;
}

void Scheduler::shard_down(Shard* s) {
  ++s->m.disconnects;
  if (s->client != nullptr && !s->client->last_error().empty()) {
    log::warnf("scheduler: endpoint %s dropped: %s", s->m.address.c_str(),
               s->client->last_error().c_str());
  }
  s->client.reset();
  if (++s->consecutive_failures >= opts_.max_endpoint_failures) {
    s->lost = true;
    s->m.lost = true;
    log::warnf("scheduler: endpoint %s lost after %u failures",
               s->m.address.c_str(), s->consecutive_failures);
  } else {
    s->retry_at_ms = now_ms() + s->backoff.next_ms();
  }
}

void Scheduler::reconnect_due() {
  const std::uint64_t now = now_ms();
  for (Shard& s : shards_) {
    if (s.client != nullptr || s.lost || now < s.retry_at_ms) continue;
    try_connect(&s);
  }
}

Scheduler::Shard* Scheduler::least_loaded() {
  Shard* best = nullptr;
  double best_load = 0.0;
  for (Shard& s : shards_) {
    if (s.client == nullptr) continue;
    const double load =
        static_cast<double>(s.inflight.size()) /
        static_cast<double>(std::max<std::uint32_t>(1, s.m.workers));
    if (best == nullptr || load < best_load) {
      best = &s;
      best_load = load;
    }
  }
  return best;
}

std::vector<runner::TrialOutcome> Scheduler::run_batch(
    const std::vector<runner::TrialJob>& jobs) {
  std::vector<runner::TrialOutcome> outcomes(jobs.size());
  struct JobState {
    bool done = false;
    bool in_flight = false;
    std::uint32_t deaths = 0;  // endpoints that died holding this trial
  };
  std::vector<JobState> state(jobs.size());
  std::size_t remaining = jobs.size();

  // Reroutes or quarantines a downed shard's in-flight trials, then runs
  // the endpoint failure accounting.
  const auto fail_shard = [&](Shard* s) {
    for (const auto& [ticket, i] : s->inflight) {
      if (state[i].done) continue;
      state[i].in_flight = false;
      if (++state[i].deaths >= opts_.max_trial_crashes) {
        runner::TrialOutcome& o = outcomes[i];
        o.result.passed = false;
        o.result.failure_class = verify::FailureClass::kCrash;
        o.result.failure = strformat(
            "quarantined after %u endpoint failures mid-trial",
            state[i].deaths);
        o.worker_deaths = state[i].deaths;
        o.quarantined = true;
        o.served = true;
        state[i].done = true;
        --remaining;
      } else {
        ++s->m.failovers;
      }
    }
    s->inflight.clear();
    shard_down(s);
  };

  while (remaining > 0) {
    reconnect_due();
    if (!any_live()) {
      // Anything still waiting on a backoff timer? Sleep toward the
      // earliest redial; otherwise the fleet is gone for good.
      std::uint64_t earliest = 0;
      for (const Shard& s : shards_) {
        if (s.lost || s.client != nullptr) continue;
        if (earliest == 0 || s.retry_at_ms < earliest) {
          earliest = s.retry_at_ms;
        }
      }
      if (earliest == 0) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
          if (state[i].done) continue;
          outcomes[i].served = false;
          state[i].done = true;
          --remaining;
        }
        break;
      }
      const std::uint64_t now = now_ms();
      sleep_ms(earliest > now
                   ? static_cast<int>(std::min<std::uint64_t>(
                         earliest - now, 100))
                   : 1);
      continue;
    }

    // ---- Dispatch every unassigned trial to the least-loaded shard. ----
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (state[i].done || state[i].in_flight) continue;
      Shard* s = least_loaded();
      if (s == nullptr) break;
      net::TrialMsg m;
      m.ticket = next_ticket_++;
      m.key = jobs[i].key;
      m.config_key = jobs[i].config->canonical_key();
      if (!s->client->submit(m)) {
        fail_shard(s);
        break;  // re-plan against the surviving fleet
      }
      s->inflight.emplace(m.ticket, i);
      state[i].in_flight = true;
    }

#if FPMIX_NET_POSIX
    // ---- Wait for traffic (bounded, to keep redial timers honest). ----
    std::vector<pollfd> fds;
    for (Shard& s : shards_) {
      if (s.client != nullptr && !s.inflight.empty()) {
        fds.push_back(pollfd{s.client->fd(), POLLIN, 0});
      }
    }
    if (!fds.empty()) {
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    }
#endif

    // ---- Drain results from every live shard. ----
    for (Shard& s : shards_) {
      if (s.client == nullptr || s.inflight.empty()) continue;
      std::vector<net::ResultMsg> results;
      const bool ok = s.client->drain(&results);
      bool damaged = false;
      for (net::ResultMsg& r : results) {
        auto it = s.inflight.find(r.ticket);
        if (it == s.inflight.end()) continue;  // stale (already rerouted)
        const std::size_t i = it->second;
        s.inflight.erase(it);
        runner::WireResult w;
        verify::EvalResult er;
        if (!runner::decode_result(r.wire_result, &w) ||
            !runner::to_eval_result(w, &er)) {
          // The frame CRC passed but the payload is semantically bad:
          // treat it like transport damage and reroute the trial.
          state[i].in_flight = false;
          damaged = true;
          continue;
        }
        runner::TrialOutcome& o = outcomes[i];
        o.result = std::move(er);
        o.wall_ns = r.wall_ns;
        o.worker_deaths = r.worker_deaths;
        o.quarantined = (r.flags & net::kResultQuarantined) != 0;
        o.served = true;
        state[i].done = true;
        state[i].in_flight = false;
        --remaining;
        ++s.m.trials;
        s.m.busy_ns += r.wall_ns;
        if ((r.flags & net::kResultCacheHit) != 0) ++s.m.cache_hits;
      }
      if (!ok || damaged) fail_shard(&s);
    }
  }
  return outcomes;
}

void Scheduler::broadcast_insert(const std::string& key, bool passed,
                                 std::uint8_t failure_class,
                                 const std::string& failure) {
  if (opts_.hello.shard_cache == 0) return;
  net::CacheInsertMsg m;
  m.key = key;
  m.passed = passed ? 1 : 0;
  m.failure_class = failure_class;
  m.failure = failure;
  for (Shard& s : shards_) {
    if (s.client == nullptr) continue;
    if (!s.client->insert(m)) {
      ++s.m.disconnects;
      s.client.reset();
      if (++s.consecutive_failures >= opts_.max_endpoint_failures) {
        s.lost = true;
        s.m.lost = true;
      } else {
        s.retry_at_ms = now_ms() + s.backoff.next_ms();
      }
    }
  }
}

std::vector<EndpointMetrics> Scheduler::endpoint_metrics() const {
  std::vector<EndpointMetrics> out;
  out.reserve(shards_.size());
  for (const Shard& s : shards_) out.push_back(s.m);
  return out;
}

}  // namespace fpmix::search
