// Precision levels assignable to program structures (Section 2.1).
#pragma once

#include <cstdint>
#include <optional>

namespace fpmix::config {

/// p -> {single, double, ignore}: how an instruction (or an aggregate
/// structure, overriding its children) is treated by the instrumenter.
enum class Precision : std::uint8_t {
  kDouble = 0,  // wrap with upcast checks, execute in double precision
  kSingle = 1,  // narrow: downcast inputs, execute single twin, tag result
  kIgnore = 2,  // leave the instruction completely untouched
};

/// Flag characters used by the text exchange format ('d', 's', 'i').
char precision_flag(Precision p);
std::optional<Precision> precision_from_flag(char c);
const char* precision_name(Precision p);

}  // namespace fpmix::config
