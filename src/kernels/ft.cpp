// FT: the NAS FFT benchmark analogue.
//
// An iterative radix-2 complex FFT (separate re/im arrays, a baked
// bit-reversal table, twiddle factors computed in-program with sin/cos as
// NPB does), applied as forward transform -> spectral evolution -> inverse
// transform per time step, with NAS-style complex checksums. The checksum is
// checked tightly: FFT butterflies accumulate rounding across log2(N)
// stages, which is why the paper measures almost no dynamically-executed
// replacements for FT.
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

namespace {

struct FtParams {
  std::size_t n;       // transform size (power of two)
  std::size_t steps;   // evolve/transform iterations
};

FtParams ft_params(char cls) {
  switch (cls) {
    case 'S': return {64, 2};
    case 'W': return {128, 3};
    case 'A': return {256, 3};
    case 'C': return {512, 4};
    default: throw Error(strformat("ft: unknown class %c", cls));
  }
}

std::vector<std::int64_t> bitrev_table(std::size_t n) {
  std::vector<std::int64_t> t(n);
  std::size_t bits = 0;
  while ((1u << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (1u << b)) r |= 1u << (bits - 1 - b);
    }
    t[i] = static_cast<std::int64_t>(r);
  }
  return t;
}

}  // namespace

Workload make_ft(char cls, int ranks) {
  const FtParams p = ft_params(cls);
  const auto n = static_cast<std::int64_t>(p.n);
  FPMIX_CHECK(ranks >= 1);
  // The MPI variant runs `ranks` independent transforms (a batch split),
  // reducing the checksums; the serial variant runs one.
  Builder b;

  auto re = b.array_f64("re", p.n);
  auto im = b.array_f64("im", p.n);
  auto twr = b.array_f64("twr", p.n / 2);
  auto twi = b.array_f64("twi", p.n / 2);
  auto brev = b.const_array_i64("brev", bitrev_table(p.n));
  auto sign = b.var_f64("fft_sign");  // +1 forward, -1 inverse

  // --- module ft_init: twiddles and initial data ---------------------------
  b.begin_func("init_twiddle", "ft_init");
  {
    auto j = b.var_i64("tw_j");
    const double theta = -2.0 * 3.14159265358979323846 / double(p.n);
    b.for_(j, b.ci(0), b.ci(n / 2), [&] {
      b.store(twr, Expr(j), cos_(b.cf(theta) * to_f64(j)));
      b.store(twi, Expr(j), sin_(b.cf(theta) * to_f64(j)));
    });
  }
  b.end_func();

  b.begin_func("init_data", "ft_init");
  {
    auto i = b.var_i64("in_i");
    auto base = b.var_f64("in_base");  // MPI: offset the batch member
    if (ranks > 1) {
      b.set(base, to_f64(b.mpi_rank()) * b.cf(0.37));
    } else {
      b.set(base, b.cf(0.0));
    }
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.store(re, Expr(i),
              sin_(b.cf(0.25) * to_f64(i) + Expr(base) + b.cf(0.3)));
      b.store(im, Expr(i),
              cos_(b.cf(0.125) * to_f64(i) + Expr(base) - b.cf(0.7)));
    });
  }
  b.end_func();

  // --- module ft_fft: the transform kernel ---------------------------------
  b.begin_func("fft", "ft_fft");
  {
    auto i = b.var_i64("f_i");
    auto j = b.var_i64("f_j");
    auto len = b.var_i64("f_len");
    auto half = b.var_i64("f_half");
    auto step = b.var_i64("f_step");
    auto base_ = b.var_i64("f_base");
    auto ia = b.var_i64("f_ia");
    auto ib = b.var_i64("f_ib");
    auto itw = b.var_i64("f_itw");
    auto wr = b.var_f64("f_wr");
    auto wi = b.var_f64("f_wi");
    auto tr = b.var_f64("f_tr");
    auto ti = b.var_f64("f_ti");
    auto ur = b.var_f64("f_ur");
    auto ui = b.var_f64("f_ui");
    auto tmp = b.var_f64("f_tmp");

    // Bit-reversal permutation.
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.set(j, brev[Expr(i)]);
      b.if_(Expr(j) > Expr(i), [&] {
        b.set(tmp, re[Expr(i)]);
        b.store(re, Expr(i), re[Expr(j)]);
        b.store(re, Expr(j), tmp);
        b.set(tmp, im[Expr(i)]);
        b.store(im, Expr(i), im[Expr(j)]);
        b.store(im, Expr(j), tmp);
      });
    });

    // Butterfly stages.
    b.set(len, b.ci(2));
    b.while_(Expr(len) <= b.ci(n), [&] {
      b.set(half, Expr(len) >> b.ci(1));
      b.set(step, b.ci(n) / Expr(len));
      b.set(base_, b.ci(0));
      b.while_(Expr(base_) < b.ci(n), [&] {
        b.for_(j, b.ci(0), Expr(half), [&] {
          b.set(itw, Expr(j) * Expr(step));
          b.set(wr, twr[Expr(itw)]);
          b.set(wi, Expr(sign) * twi[Expr(itw)]);
          b.set(ia, Expr(base_) + Expr(j));
          b.set(ib, Expr(ia) + Expr(half));
          b.set(tr, Expr(wr) * re[Expr(ib)] - Expr(wi) * im[Expr(ib)]);
          b.set(ti, Expr(wr) * im[Expr(ib)] + Expr(wi) * re[Expr(ib)]);
          b.set(ur, re[Expr(ia)]);
          b.set(ui, im[Expr(ia)]);
          b.store(re, Expr(ia), Expr(ur) + Expr(tr));
          b.store(im, Expr(ia), Expr(ui) + Expr(ti));
          b.store(re, Expr(ib), Expr(ur) - Expr(tr));
          b.store(im, Expr(ib), Expr(ui) - Expr(ti));
        });
        b.set(base_, Expr(base_) + Expr(len));
      });
      b.set(len, Expr(len) << b.ci(1));
    });
  }
  b.end_func();

  // --- module ft_main --------------------------------------------------------
  b.begin_func("main", "ft_main");
  {
    auto i = b.var_i64("m_i");
    auto t = b.var_i64("m_t");
    auto csr_ = b.var_f64("m_csr");
    auto csi_ = b.var_f64("m_csi");
    auto scale = b.var_f64("m_scale");

    b.call("init_twiddle");
    b.call("init_data");

    b.for_(t, b.ci(0), b.ci(static_cast<std::int64_t>(p.steps)), [&] {
      // Forward transform.
      b.set(sign, b.cf(1.0));
      b.call("fft");
      // Spectral evolution: damp each mode slightly (stands in for NPB's
      // exp(-4 pi^2 t k^2) factors).
      b.for_(i, b.ci(0), b.ci(n), [&] {
        b.set(scale,
              b.cf(1.0) / (b.cf(1.0) + b.cf(1e-3) * to_f64(Expr(i) % b.ci(17))));
        b.store(re, Expr(i), re[Expr(i)] * Expr(scale));
        b.store(im, Expr(i), im[Expr(i)] * Expr(scale));
      });
      // Inverse transform (conjugate twiddles + 1/n scaling).
      b.set(sign, b.cf(-1.0));
      b.call("fft");
      b.for_(i, b.ci(0), b.ci(n), [&] {
        b.store(re, Expr(i), re[Expr(i)] / b.cf(double(p.n)));
        b.store(im, Expr(i), im[Expr(i)] / b.cf(double(p.n)));
      });
      // NAS-style checksum over strided probes.
      b.set(csr_, b.cf(0.0));
      b.set(csi_, b.cf(0.0));
      b.for_(i, b.ci(1), b.ci(33), [&] {
        auto idx = (Expr(i) * Expr(i) * b.ci(5)) % b.ci(n);
        b.set(csr_, Expr(csr_) + re[idx]);
        b.set(csi_, Expr(csi_) + im[idx]);
      });
      if (ranks > 1) {
        b.set(csr_, b.allreduce_sum(csr_));
        b.set(csi_, b.allreduce_sum(csi_));
      }
      b.output(csr_);
      b.output(csi_);
    });

    // Auxiliary report: data norm (loose). Reduced so every rank reports
    // the same value in the MPI variant.
    auto nrm = b.var_f64("m_nrm");
    b.set(nrm, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.set(nrm, Expr(nrm) + re[Expr(i)] * re[Expr(i)] +
                     im[Expr(i)] * im[Expr(i)]);
    });
    if (ranks > 1) b.set(nrm, b.allreduce_sum(nrm));
    b.output(sqrt_(nrm));
  }
  b.end_func();

  Workload w;
  w.name = strformat("ft.%c%s", cls, ranks > 1 ? ".mpi" : "");
  w.model = b.take_model();
  // Checksums tight (NPB verifies checksums to 1e-12 relative); the final
  // norm report loose.
  w.rel_tol = 1e-9;
  w.abs_tol = 1e-10;
  w.output_tols.push_back({2 * p.steps, 1e-3, 1e-6});
  return w;
}

}  // namespace fpmix::kernels
