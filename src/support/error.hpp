// Error handling primitives shared by every fpmix module.
//
// The framework is a tool pipeline (decode -> patch -> run -> verify); most
// failures are programmer errors in a stage's input and are reported with an
// exception carrying enough context to locate the offending instruction or
// configuration line.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace fpmix {

/// Base class for all fpmix errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Malformed instruction bytes or an operand form the ISA does not allow.
class DecodeError : public Error {
 public:
  using Error::Error;
};

/// Structurally invalid program (bad CFG, dangling edge, unknown symbol).
class ProgramError : public Error {
 public:
  using Error::Error;
};

/// Runtime fault inside the VM (bad memory access, div-by-zero, trap).
class VmError : public Error {
 public:
  using Error::Error;
};

/// Malformed precision-configuration file.
class ConfigError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "FPMIX_CHECK failed: %s (%s:%d)", expr, file,
                line);
  throw Error(buf);
}
}  // namespace detail

/// Internal invariant check. Unlike assert(), always enabled: the framework
/// rewrites executable code, where a silently violated invariant produces
/// corrupt binaries that are far harder to debug than a thrown error.
#define FPMIX_CHECK(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::fpmix::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                          \
  } while (false)

}  // namespace fpmix
