#include "verify/verifier.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "support/hash.hpp"
#include "support/strings.hpp"

namespace fpmix::verify {

std::string Verifier::fingerprint() const { return describe(); }

std::string digest_doubles(std::span<const double> values) {
  std::uint64_t h = fnv1a64("f64[]");
  for (double v : values) h = fnv1a64_mix(h, std::bit_cast<std::uint64_t>(v));
  h = fnv1a64_mix(h, values.size());
  return hex_digest(h);
}

RelativeErrorVerifier::RelativeErrorVerifier(std::vector<double> reference,
                                             double rel_tol, double abs_tol)
    : reference_(std::move(reference)), rel_tol_(rel_tol), abs_tol_(abs_tol) {}

void RelativeErrorVerifier::set_output_tolerance(std::size_t index,
                                                 double rel_tol,
                                                 double abs_tol) {
  if (per_output_.size() <= index) {
    per_output_.resize(index + 1, Tol{-1.0, 0.0});
  }
  per_output_[index] = Tol{rel_tol, abs_tol};
}

bool RelativeErrorVerifier::verify(std::span<const double> outputs) const {
  if (outputs.size() != reference_.size()) return false;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const double out = outputs[i];
    const double ref = reference_[i];
    if (!std::isfinite(out)) return false;
    double rel = rel_tol_, abs = abs_tol_;
    if (i < per_output_.size() && per_output_[i].rel >= 0.0) {
      rel = per_output_[i].rel;
      abs = per_output_[i].abs;
    }
    if (std::fabs(out - ref) > abs + rel * std::fabs(ref)) {
      return false;
    }
  }
  return true;
}

std::string RelativeErrorVerifier::describe() const {
  return strformat("relative-error <= %.3g (abs %.3g) vs %zu reference "
                   "outputs", rel_tol_, abs_tol_, reference_.size());
}

std::string RelativeErrorVerifier::fingerprint() const {
  std::string fp = strformat("rel-err:rel=%.17g:abs=%.17g:ref=%s", rel_tol_,
                             abs_tol_, digest_doubles(reference_).c_str());
  for (std::size_t i = 0; i < per_output_.size(); ++i) {
    if (per_output_[i].rel < 0.0) continue;
    fp += strformat(":tol%zu=%.17g,%.17g", i, per_output_[i].rel,
                    per_output_[i].abs);
  }
  return fp;
}

BitExactVerifier::BitExactVerifier(std::vector<double> reference)
    : reference_(std::move(reference)) {}

bool BitExactVerifier::verify(std::span<const double> outputs) const {
  if (outputs.size() != reference_.size()) return false;
  return std::memcmp(outputs.data(), reference_.data(),
                     outputs.size() * sizeof(double)) == 0;
}

std::string BitExactVerifier::describe() const {
  return strformat("bit-exact vs %zu reference outputs", reference_.size());
}

std::string BitExactVerifier::fingerprint() const {
  return strformat("bit-exact:ref=%s", digest_doubles(reference_).c_str());
}

ThresholdVerifier::ThresholdVerifier(std::size_t index, double threshold,
                                     std::size_t expected_outputs)
    : index_(index), threshold_(threshold),
      expected_outputs_(expected_outputs) {}

bool ThresholdVerifier::verify(std::span<const double> outputs) const {
  if (outputs.size() != expected_outputs_ || index_ >= outputs.size()) {
    return false;
  }
  const double err = outputs[index_];
  return std::isfinite(err) && err <= threshold_;
}

std::string ThresholdVerifier::describe() const {
  return strformat("reported error (output %zu) <= %.3g", index_,
                   threshold_);
}

std::string ThresholdVerifier::fingerprint() const {
  return strformat("threshold:index=%zu:limit=%.17g:outputs=%zu", index_,
                   threshold_, expected_outputs_);
}

}  // namespace fpmix::verify
