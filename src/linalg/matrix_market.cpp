#include "linalg/matrix_market.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::linalg {

Csr<double> read_matrix_market(std::string_view text) {
  const std::vector<std::string_view> lines = split_lines(text);
  std::size_t li = 0;
  if (lines.empty()) throw Error("matrix market: empty input");

  // Header: %%MatrixMarket matrix coordinate real|integer general|symmetric
  const auto header = split_fields(lines[0]);
  if (header.size() < 5 || header[0] != "%%MatrixMarket" ||
      header[1] != "matrix" || header[2] != "coordinate") {
    throw Error("matrix market: unsupported or malformed header");
  }
  const bool is_real = header[3] == "real" || header[3] == "integer";
  if (!is_real) {
    throw Error("matrix market: only real/integer fields supported");
  }
  const bool symmetric = header[4] == "symmetric";
  if (!symmetric && header[4] != "general") {
    throw Error("matrix market: only general/symmetric supported");
  }
  ++li;

  // Skip comments.
  while (li < lines.size() && (trim(lines[li]).empty() ||
                               trim(lines[li]).front() == '%')) {
    ++li;
  }
  if (li >= lines.size()) throw Error("matrix market: missing size line");
  std::size_t rows = 0, cols = 0, entries = 0;
  {
    std::istringstream ss{std::string(lines[li])};
    if (!(ss >> rows >> cols >> entries)) {
      throw Error("matrix market: malformed size line");
    }
  }
  if (rows != cols) throw Error("matrix market: only square supported");
  ++li;

  std::vector<std::map<std::size_t, double>> rowmaps(rows);
  std::size_t seen = 0;
  for (; li < lines.size() && seen < entries; ++li) {
    const auto t = trim(lines[li]);
    if (t.empty() || t.front() == '%') continue;
    std::size_t i = 0, j = 0;
    double v = 0;
    std::istringstream ss{std::string(t)};
    if (!(ss >> i >> j >> v)) {
      throw Error(strformat("matrix market: malformed entry '%s'",
                            std::string(t).c_str()));
    }
    if (i < 1 || j < 1 || i > rows || j > cols) {
      throw Error("matrix market: index out of range");
    }
    rowmaps[i - 1][j - 1] = v;
    if (symmetric && i != j) rowmaps[j - 1][i - 1] = v;
    ++seen;
  }
  if (seen != entries) throw Error("matrix market: truncated entry list");

  Csr<double> a;
  a.n = rows;
  a.rowptr.push_back(0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (const auto& [j, v] : rowmaps[i]) {
      a.col.push_back(static_cast<std::int64_t>(j));
      a.val.push_back(v);
    }
    a.rowptr.push_back(static_cast<std::int64_t>(a.col.size()));
  }
  return a;
}

std::string write_matrix_market(const Csr<double>& a) {
  std::string out = "%%MatrixMarket matrix coordinate real general\n";
  out += strformat("%zu %zu %zu\n", a.n, a.n, a.nnz());
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::int64_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      out += strformat("%zu %lld %.17g\n", i + 1,
                       static_cast<long long>(
                           a.col[static_cast<std::size_t>(k)] + 1),
                       a.val[static_cast<std::size_t>(k)]);
    }
  }
  return out;
}

Csr<double> read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error(strformat("cannot open %s", path.c_str()));
  std::stringstream ss;
  ss << f.rdbuf();
  return read_matrix_market(ss.str());
}

void write_matrix_market_file(const Csr<double>& a, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw Error(strformat("cannot open %s for writing", path.c_str()));
  f << write_matrix_market(a);
}

}  // namespace fpmix::linalg
