// Scheduler: the client half of the distributed search service.
//
// Fans trial batches out across a fleet of runner_serve endpoints with
// many trials outstanding per connection, picking the least-loaded shard
// (in-flight trials per worker) for each dispatch. The scheduler is the
// drop-in remote counterpart of runner::WorkerPool::run_batch: same job
// type, same outcome type, same contract (every job gets an outcome, in
// job order), so the search core stays executor-agnostic.
//
// Endpoint failure handling mirrors the pool's worker supervision one
// level up. A dead connection is a fault event, not a verdict: its
// in-flight trials are rerouted to surviving shards, a trial that rides
// too many dying endpoints is quarantined as kCrash (the same breaker
// taxonomy as a crash-looping config), and the endpoint itself is retried
// with jittered exponential backoff until a consecutive-failure budget
// marks it lost. When every endpoint is lost, outcomes come back with
// served == false and the caller (the search) degrades to in-process
// evaluation -- availability over distribution, never a wrong verdict.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "runner/worker_pool.hpp"
#include "search/search.hpp"  // EndpointMetrics
#include "support/backoff.hpp"

namespace fpmix::search {

struct SchedulerOptions {
  std::vector<net::Endpoint> endpoints;
  /// Session handshake template (workload id, evaluation semantics, shard
  /// cache flag, search fingerprint, fault campaign).
  net::HelloMsg hello;
  int connect_timeout_ms = 2000;
  /// The ack can lag on a cold server (it builds the workload and runs the
  /// reference computation inside the handshake).
  int hello_timeout_ms = 60000;
  /// Consecutive connect/session failures before an endpoint is lost.
  std::uint32_t max_endpoint_failures = 3;
  /// Endpoint deaths one trial may ride before it is quarantined as
  /// kCrash (the scheduler-level crash-loop breaker).
  std::uint32_t max_trial_crashes = 3;
  /// Local verifier fingerprint; a shard whose HelloAck disagrees is lost
  /// immediately (semantic mismatch never heals by reconnecting).
  std::string verifier_fp;
  BackoffPolicy reconnect_backoff;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& opts);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Dials every endpoint and runs the handshakes. Returns the number of
  /// live sessions (0 means the caller should degrade to local execution).
  std::size_t connect();

  /// Total workers across live endpoints (the search sizes batches to it).
  std::size_t capacity() const;
  bool any_live() const;

  /// Evaluates one batch remotely. Blocks until every job has an outcome:
  /// a remote verdict, a quarantine verdict (too many endpoint deaths), or
  /// served == false when the whole fleet is lost.
  std::vector<runner::TrialOutcome> run_batch(
      const std::vector<runner::TrialJob>& jobs);

  /// Ships a verdict this client obtained elsewhere (local fallback,
  /// journal replay) to every live shard's cache. No-op unless the session
  /// was opened with shard_cache.
  void broadcast_insert(const std::string& key, bool passed,
                        std::uint8_t failure_class,
                        const std::string& failure);

  std::vector<EndpointMetrics> endpoint_metrics() const;

 private:
  struct Shard {
    net::Endpoint ep;
    std::unique_ptr<net::EndpointClient> client;
    Backoff backoff;
    std::uint64_t retry_at_ms = 0;
    std::uint32_t consecutive_failures = 0;
    bool lost = false;
    bool ever_connected = false;
    EndpointMetrics m;
    std::map<std::uint64_t, std::size_t> inflight;  // ticket -> job index
  };

  bool try_connect(Shard* s);
  void shard_down(Shard* s);
  void reconnect_due();
  Shard* least_loaded();

  SchedulerOptions opts_;
  std::vector<Shard> shards_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace fpmix::search
