// The distributed search service: session protocol, sockets, the runner
// daemon, the network scheduler, and the search running across a fleet.
//
// Seven layers:
//  1. protocol -- every message round-trips as a pure function, the frame
//     buffer reassembles byte-dribbled streams, and corruption is a sticky
//     *detected* session error, never a wrong payload;
//  2. sockets -- endpoint parsing and frames surviving partial reads and
//     partial writes over a real loopback connection;
//  3. scheduler -- remote batches match in-process verdicts; an endpoint
//     dying mid-trial reroutes its in-flight work to surviving shards or
//     quarantines it as kCrash once the crash budget is spent;
//  4. search equivalence -- a fleet-served search must produce journals
//     byte-identical to the in-process path, degrade to local execution
//     when no endpoint is reachable, and keep every accepted trial across
//     an endpoint death mid-search;
//  5. the acceptance soak -- seeded hard-fault campaigns driven through a
//     two-endpoint fleet, each asserted byte-identical to the local
//     isolated oracle under the same campaign;
//  6. failover -- replicated journal shards survive session death and
//     reject torn lines, heartbeats measure RTT and expire leases,
//     duplicate results are discarded never double-voted, and a scheduler
//     SIGKILLed mid-search is adopted (--adopt) byte-identically under
//     clean, endpoint-death, and seeded network-chaos campaigns;
//  7. durability -- a daemon's journal shards and verdict caches persist
//     under --state-dir and survive SIGKILL + restart (torn tails and
//     corrupt records healed at reload), anti-entropy gossip re-streams
//     whatever a shard digest shows missing, an unwritable state dir
//     degrades to in-memory with the degradation announced in the hello
//     ack, and seeded disk-fault campaigns stay byte-identical to the
//     clean oracle.
//
// The soak's campaign count scales via FPMIX_SOAK_CAMPAIGNS (CI sets 200).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/textio.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "runner/trial_runner.hpp"
#include "runner/wire.hpp"
#include "search/scheduler.hpp"
#include "search/search.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/journal.hpp"
#include "verify/evaluate.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace fpmix {
namespace {

using config::Precision;
using lang::Builder;
using lang::Expr;

// ---------------------------------------------------------------------------
// Session protocol: pure functions, no sockets.

TEST(NetProtocol, HelloRoundTripPreservesFaultCampaign) {
  net::HelloMsg h;
  h.bench = "cg";
  h.cls = 'A';
  h.max_instructions = 123456789;
  h.deadline_ms = 250;
  h.max_crashes = 7;
  h.rlimit_mb = 64;
  h.shard_cache = 1;
  h.search_fp = "fp:abc|v1";
  h.has_fault = 1;
  h.fault_seed = 0xDEADBEEFCAFEull;
  h.fault_rates.segv = 0.05;
  h.fault_rates.oom = 1.0 / 3.0;  // a non-terminating binary fraction
  h.fault_rates.hang_ignore_term = 0.125;
  h.fault_rates.corrupt_result = 0.02;

  const std::string payload = net::encode_hello(h);
  EXPECT_EQ(net::peek_msg_type(payload), net::kMsgHello);

  net::HelloMsg back;
  ASSERT_TRUE(net::decode_hello(payload, &back));
  EXPECT_EQ(back.version, net::kProtocolVersion);
  EXPECT_EQ(back.bench, h.bench);
  EXPECT_EQ(back.cls, h.cls);
  EXPECT_EQ(back.max_instructions, h.max_instructions);
  EXPECT_EQ(back.deadline_ms, h.deadline_ms);
  EXPECT_EQ(back.max_crashes, h.max_crashes);
  EXPECT_EQ(back.rlimit_mb, h.rlimit_mb);
  EXPECT_EQ(back.shard_cache, h.shard_cache);
  EXPECT_EQ(back.search_fp, h.search_fp);
  EXPECT_EQ(back.has_fault, h.has_fault);
  EXPECT_EQ(back.fault_seed, h.fault_seed);
  // Rates ship as raw bit patterns: bit-exact, both sides re-derive the
  // same per-trial draws.
  EXPECT_EQ(back.fault_rates.segv, h.fault_rates.segv);
  EXPECT_EQ(back.fault_rates.oom, h.fault_rates.oom);
  EXPECT_EQ(back.fault_rates.hang_ignore_term, h.fault_rates.hang_ignore_term);
  EXPECT_EQ(back.fault_rates.corrupt_result, h.fault_rates.corrupt_result);
  EXPECT_EQ(back.fault_rates.kill, 0.0);

  // A message of the wrong type never decodes as another.
  net::TrialMsg t;
  EXPECT_FALSE(net::decode_trial(payload, &t));
}

TEST(NetProtocol, AckTrialResultCacheInsertErrorRoundTrip) {
  net::HelloAckMsg ack;
  ack.ok = 1;
  ack.verifier_fp = "relerr:1e-12:9";
  ack.workers = 4;
  net::HelloAckMsg ack_back;
  ASSERT_TRUE(net::decode_hello_ack(net::encode_hello_ack(ack), &ack_back));
  EXPECT_EQ(ack_back.ok, 1);
  EXPECT_EQ(ack_back.verifier_fp, ack.verifier_fp);
  EXPECT_EQ(ack_back.workers, 4u);

  net::HelloAckMsg rej;
  rej.ok = 0;
  rej.error = "unknown benchmark 'zz'";
  ASSERT_TRUE(net::decode_hello_ack(net::encode_hello_ack(rej), &ack_back));
  EXPECT_EQ(ack_back.ok, 0);
  EXPECT_EQ(ack_back.error, rej.error);

  net::TrialMsg trial;
  trial.ticket = 42;
  trial.key = "cfg-digest-abc";
  trial.config_key = "m0=s;f3=d;i12=i;";
  net::TrialMsg trial_back;
  ASSERT_TRUE(net::decode_trial(net::encode_trial(trial), &trial_back));
  EXPECT_EQ(trial_back.ticket, 42u);
  EXPECT_EQ(trial_back.key, trial.key);
  EXPECT_EQ(trial_back.config_key, trial.config_key);

  runner::WireResult wr;
  wr.passed = false;
  wr.failure_class =
      static_cast<std::uint8_t>(verify::FailureClass::kDivergence);
  wr.failure = "relative error 3.1e-7 at output 1";
  wr.instructions_retired = 987654;
  net::ResultMsg res;
  res.ticket = 7;
  res.flags = net::kResultQuarantined | net::kResultCacheHit;
  res.worker_deaths = 2;
  res.wall_ns = 12345678;
  res.wire_result = runner::encode_result(wr);
  net::ResultMsg res_back;
  ASSERT_TRUE(net::decode_result_msg(net::encode_result_msg(res), &res_back));
  EXPECT_EQ(res_back.ticket, 7u);
  EXPECT_EQ(res_back.flags, res.flags);
  EXPECT_EQ(res_back.worker_deaths, 2u);
  EXPECT_EQ(res_back.wall_ns, res.wall_ns);
  runner::WireResult wr_back;
  ASSERT_TRUE(runner::decode_result(res_back.wire_result, &wr_back));
  EXPECT_EQ(wr_back.passed, wr.passed);
  EXPECT_EQ(wr_back.failure_class, wr.failure_class);
  EXPECT_EQ(wr_back.failure, wr.failure);
  EXPECT_EQ(wr_back.instructions_retired, wr.instructions_retired);

  net::CacheInsertMsg ins;
  ins.key = "cfg-digest-def";
  ins.passed = 0;
  ins.failure_class = static_cast<std::uint8_t>(verify::FailureClass::kTrap);
  ins.failure = "trapped at 0x40";
  net::CacheInsertMsg ins_back;
  ASSERT_TRUE(
      net::decode_cache_insert(net::encode_cache_insert(ins), &ins_back));
  EXPECT_EQ(ins_back.key, ins.key);
  EXPECT_EQ(ins_back.passed, 0);
  EXPECT_EQ(ins_back.failure_class, ins.failure_class);
  EXPECT_EQ(ins_back.failure, ins.failure);

  std::string text;
  ASSERT_TRUE(
      net::decode_error_msg(net::encode_error_msg("session torn"), &text));
  EXPECT_EQ(text, "session torn");
}

TEST(NetProtocol, FrameBufferReassemblesByteDribbledStream) {
  const std::vector<std::string> payloads = {
      net::encode_hello(net::HelloMsg{}),
      net::encode_trial(net::TrialMsg{9, "k", "m0=s;"}),
      net::encode_error_msg("x")};
  std::string stream;
  for (const std::string& p : payloads) stream += runner::encode_frame(p);

  net::FrameBuffer fb;
  std::vector<std::string> got;
  std::string payload;
  for (char c : stream) {
    fb.append(std::string_view(&c, 1));
    while (fb.next(&payload) == runner::FrameStatus::kOk) {
      got.push_back(payload);
    }
  }
  ASSERT_EQ(got.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(got[i], payloads[i]) << i;
  }
  EXPECT_EQ(fb.buffered(), 0u);
  EXPECT_FALSE(fb.corrupt());
}

TEST(NetProtocol, SingleByteCorruptionIsStickyAndNeverResyncs) {
  const std::string good = runner::encode_frame(
      net::encode_trial(net::TrialMsg{1, "key", "m0=s;"}));
  // Damage the first payload byte (the message type): magic and length
  // still parse, so only the CRC can catch it.
  std::string bad = good;
  bad[8] = static_cast<char>(bad[8] ^ 0x20);

  net::FrameBuffer fb;
  fb.append(bad);
  std::string payload;
  EXPECT_EQ(fb.next(&payload), runner::FrameStatus::kCorrupt);
  EXPECT_TRUE(fb.corrupt());

  // No resynchronization: even a pristine frame after the damage stays
  // unreadable -- the connection must be dropped.
  fb.append(good);
  EXPECT_EQ(fb.next(&payload), runner::FrameStatus::kCorrupt);
  EXPECT_TRUE(fb.corrupt());
}

TEST(NetProtocol, JournalStreamingMessagesRoundTrip) {
  // HelloAck carries the endpoint's retained-shard size, so an adopting
  // scheduler knows before fetching whether the fleet holds any history.
  net::HelloAckMsg ack;
  ack.ok = 1;
  ack.verifier_fp = "relerr:1e-12:9";
  ack.workers = 2;
  ack.shard_records = 12345;
  net::HelloAckMsg ack_back;
  ASSERT_TRUE(net::decode_hello_ack(net::encode_hello_ack(ack), &ack_back));
  EXPECT_EQ(ack_back.shard_records, 12345u);

  // JournalAppend ships the sealed line byte-exactly: the seal (seq + CRC)
  // is the integrity check on the far side, so nothing may reformat it.
  net::JournalAppendMsg app;
  app.line = seal_record("{\"type\":\"trial\",\"key\":\"abc\"}", 7);
  net::JournalAppendMsg app_back;
  ASSERT_TRUE(
      net::decode_journal_append(net::encode_journal_append(app), &app_back));
  EXPECT_EQ(app_back.line, app.line);
  EXPECT_EQ(check_seal(app_back.line), SealCheck::kOk);

  EXPECT_TRUE(net::decode_journal_fetch(net::encode_journal_fetch()));

  net::JournalTailMsg tail;
  tail.total = 3;
  tail.done = 1;
  tail.lines = {seal_record("{\"a\":1}", 1), seal_record("{\"b\":2}", 2)};
  net::JournalTailMsg tail_back;
  ASSERT_TRUE(
      net::decode_journal_tail(net::encode_journal_tail(tail), &tail_back));
  EXPECT_EQ(tail_back.total, 3u);
  EXPECT_EQ(tail_back.done, 1);
  ASSERT_EQ(tail_back.lines.size(), 2u);
  EXPECT_EQ(tail_back.lines[0], tail.lines[0]);
  EXPECT_EQ(tail_back.lines[1], tail.lines[1]);

  net::PingMsg ping;
  ping.nonce = 42;
  ping.t_send_ns = 998877665544332211ull;
  net::PingMsg ping_back;
  ASSERT_TRUE(net::decode_ping(net::encode_ping(ping), &ping_back));
  EXPECT_EQ(ping_back.nonce, 42u);
  EXPECT_EQ(ping_back.t_send_ns, ping.t_send_ns);

  net::PongMsg pong;
  pong.nonce = 42;
  pong.t_send_ns = ping.t_send_ns;
  net::PongMsg pong_back;
  ASSERT_TRUE(net::decode_pong(net::encode_pong(pong), &pong_back));
  EXPECT_EQ(pong_back.nonce, 42u);
  EXPECT_EQ(pong_back.t_send_ns, pong.t_send_ns);

  // Cross-type decodes fail: a ping never decodes as a pong or an append.
  EXPECT_FALSE(net::decode_pong(net::encode_ping(ping), &pong_back));
  EXPECT_FALSE(
      net::decode_journal_append(net::encode_ping(ping), &app_back));
  EXPECT_FALSE(net::decode_journal_fetch(net::encode_ping(ping)));
}

TEST(NetProtocol, ShardDigestMessagesAndSeqSetCrc) {
  // The v4 HelloAck announces the endpoint's durability health.
  net::HelloAckMsg ack;
  ack.ok = 1;
  ack.verifier_fp = "relerr:1e-12:9";
  ack.workers = 2;
  ack.state_degraded = 1;
  ack.shards_reloaded = 7;
  ack.disk_faults = 3;
  net::HelloAckMsg ack_back;
  ASSERT_TRUE(net::decode_hello_ack(net::encode_hello_ack(ack), &ack_back));
  EXPECT_EQ(ack_back.state_degraded, 1);
  EXPECT_EQ(ack_back.shards_reloaded, 7u);
  EXPECT_EQ(ack_back.disk_faults, 3u);

  EXPECT_TRUE(net::decode_shard_digest(net::encode_shard_digest()));
  EXPECT_FALSE(net::decode_shard_digest(net::encode_journal_fetch()));

  net::ShardDigestMsg d;
  d.records = 42;
  d.max_seq = 99;
  d.seq_crc = 0xDEADBEEF;
  net::ShardDigestMsg d_back;
  ASSERT_TRUE(net::decode_shard_digest_ack(net::encode_shard_digest_ack(d),
                                           &d_back));
  EXPECT_EQ(d_back.records, 42u);
  EXPECT_EQ(d_back.max_seq, 99u);
  EXPECT_EQ(d_back.seq_crc, 0xDEADBEEFu);
  EXPECT_FALSE(
      net::decode_shard_digest_ack(net::encode_shard_digest(), &d_back));

  // seq_set_crc is a pure function of the *sequence numbers* present, so
  // two replicas agree exactly when they hold the same record set.
  std::map<std::uint64_t, std::string> a;
  a[1] = "x";
  a[2] = "y";
  a[3] = "z";
  std::uint64_t n = 0;
  const std::uint32_t full = net::seq_set_crc(a, 3, &n);
  EXPECT_EQ(n, 3u);

  std::map<std::uint64_t, std::string> b;
  b[1] = "completely";
  b[2] = "different";
  b[3] = "payloads";
  const std::uint32_t same_seqs = net::seq_set_crc(b, 3, &n);
  EXPECT_EQ(same_seqs, full);  // digests cover presence, not bytes

  // The prefix digest is what tail-gap detection compares: a replica that
  // holds exactly seqs 1..2 digests identically to our 1..2 prefix.
  const std::uint32_t prefix = net::seq_set_crc(a, 2, &n);
  EXPECT_EQ(n, 2u);
  EXPECT_NE(prefix, full);
  b.erase(3);
  EXPECT_EQ(net::seq_set_crc(b, 99, &n), prefix);

  // An interior hole changes the digest even at equal count and max seq.
  std::map<std::uint64_t, std::string> holey;
  holey[1] = "x";
  holey[3] = "z";
  std::uint64_t holey_n = 0;
  const std::uint32_t holey_crc = net::seq_set_crc(holey, 3, &holey_n);
  EXPECT_EQ(holey_n, 2u);
  EXPECT_NE(holey_crc, prefix);
}

TEST(NetProtocol, DiskChaosIsDeterministicPerSeedFileAndOp) {
  fault::DiskChaos::Rates rates;
  rates.short_write = 0.1;
  rates.torn_record = 0.1;
  rates.fsync_fail = 0.1;
  rates.enospc = 0.05;
  rates.unreadable = 0.5;
  const fault::DiskChaos chaos(0xD15CFA11, rates);

  // Same (seed, file, op) -> same draw, every time: a daemon restarted
  // under the identical campaign re-derives the identical fault schedule.
  for (std::uint64_t op = 0; op < 200; ++op) {
    EXPECT_EQ(chaos.for_op("shard-abc.jsonl", op),
              chaos.for_op("shard-abc.jsonl", op));
  }
  // Different files and different seeds draw independently.
  const fault::DiskChaos other(0xD15CFA12, rates);
  std::size_t file_diff = 0;
  std::size_t seed_diff = 0;
  for (std::uint64_t op = 0; op < 200; ++op) {
    if (chaos.for_op("shard-abc.jsonl", op) !=
        chaos.for_op("shard-def.jsonl", op)) {
      ++file_diff;
    }
    if (chaos.for_op("shard-abc.jsonl", op) !=
        other.for_op("shard-abc.jsonl", op)) {
      ++seed_diff;
    }
  }
  EXPECT_GT(file_diff, 0u);
  EXPECT_GT(seed_diff, 0u);

  // Op 0 is the reload probe: only "unreadable" may fire there, and
  // append ops (>= 1) never draw it -- a fault taxonomy where each fault
  // lands on the operation it models.
  std::size_t unreadable_at_reload = 0;
  for (std::uint64_t f = 0; f < 64; ++f) {
    const std::string name = "shard-" + std::to_string(f) + ".jsonl";
    const fault::DiskFault at0 = chaos.for_op(name, 0);
    EXPECT_TRUE(at0 == fault::DiskFault::kNone ||
                at0 == fault::DiskFault::kUnreadable);
    if (at0 == fault::DiskFault::kUnreadable) ++unreadable_at_reload;
    for (std::uint64_t op = 1; op < 50; ++op) {
      EXPECT_NE(chaos.for_op(name, op), fault::DiskFault::kUnreadable);
    }
  }
  EXPECT_GT(unreadable_at_reload, 0u);  // rate 0.5 over 64 files

  // Zero rates never fault.
  const fault::DiskChaos clean(1, fault::DiskChaos::Rates{});
  for (std::uint64_t op = 0; op < 100; ++op) {
    EXPECT_EQ(clean.for_op("shard-abc.jsonl", op), fault::DiskFault::kNone);
  }
}

TEST(NetProtocol, AtomicReplaceWritesWholeFileOrNothing) {
  const std::string path = testing::TempDir() + "atomic_replace_test.txt";
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(atomic_replace(path, "first\n", &error)) << error;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), "first\n");
  }
  // Replacing an existing file swaps contents atomically (tmp + rename);
  // the tmp file never lingers.
  ASSERT_TRUE(atomic_replace(path, "second\n", &error)) << error;
  {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), "second\n");
  }
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
  // A destination whose directory does not exist fails cleanly.
  EXPECT_FALSE(atomic_replace(testing::TempDir() + "no_such_dir/x.txt",
                              "data", &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Sockets.

TEST(NetSocket, ParseEndpoint) {
  net::Endpoint ep;
  ASSERT_TRUE(net::parse_endpoint("10.0.0.7:9000", &ep));
  EXPECT_EQ(ep.host, "10.0.0.7");
  EXPECT_EQ(ep.port, 9000);
  EXPECT_EQ(ep.str(), "10.0.0.7:9000");

  ASSERT_TRUE(net::parse_endpoint(":4500", &ep));
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 4500);

  EXPECT_FALSE(net::parse_endpoint("no-port-here", &ep));
  EXPECT_FALSE(net::parse_endpoint("h:0", &ep));
  EXPECT_FALSE(net::parse_endpoint("h:65536", &ep));
  EXPECT_FALSE(net::parse_endpoint("h:notaport", &ep));
  EXPECT_FALSE(net::parse_endpoint("", &ep));
}

#if defined(__unix__) || defined(__APPLE__)

/// Pumps a socket until the frame buffer yields one payload (bounded).
std::string read_one_frame(net::Socket* s, net::FrameBuffer* fb) {
  std::string payload;
  for (int i = 0; i < 2000; ++i) {
    if (fb->next(&payload) == runner::FrameStatus::kOk) return payload;
    std::string chunk;
    const net::IoStatus st = s->read_available(&chunk);
    if (st == net::IoStatus::kOk) {
      fb->append(chunk);
    } else if (st == net::IoStatus::kWouldBlock) {
      ::poll(nullptr, 0, 2);
    } else {
      break;
    }
  }
  ADD_FAILURE() << "no frame arrived";
  return std::string();
}

TEST(NetSocket, FramesSurvivePartialReadsAndWritesOverLoopback) {
  if (!net::supported()) GTEST_SKIP() << "no sockets on this platform";
  net::Listener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0, &error)) << error;
  ASSERT_GT(listener.port(), 0);

  net::Endpoint ep;
  ep.port = listener.port();
  net::Socket client = net::connect_to(ep, 2000, &error);
  ASSERT_TRUE(client.valid()) << error;

  net::Socket server;
  for (int i = 0; i < 500 && !server.valid(); ++i) {
    server = listener.accept_connection();
    if (!server.valid()) ::poll(nullptr, 0, 2);
  }
  ASSERT_TRUE(server.valid());

  // Client -> server, one byte per send: the reader sees an arbitrarily
  // fragmented stream and must still reassemble the exact payload.
  const std::string payload =
      net::encode_trial(net::TrialMsg{77, "digest", "f1=s;"});
  const std::string frame = runner::encode_frame(payload);
  for (char c : frame) {
    ASSERT_TRUE(client.send_all(std::string_view(&c, 1), 1000));
  }
  net::FrameBuffer server_fb;
  EXPECT_EQ(read_one_frame(&server, &server_fb), payload);

  // Server -> client, whole frame at once.
  const std::string reply = net::encode_error_msg("pong");
  ASSERT_TRUE(server.send_all(runner::encode_frame(reply), 1000));
  net::FrameBuffer client_fb;
  EXPECT_EQ(read_one_frame(&client, &client_fb), reply);

  // Orderly shutdown surfaces as EOF, not an error.
  server.close();
  std::string rest;
  for (int i = 0; i < 500; ++i) {
    const net::IoStatus st = client.read_available(&rest);
    if (st == net::IoStatus::kWouldBlock) {
      ::poll(nullptr, 0, 2);
      continue;
    }
    EXPECT_EQ(st, net::IoStatus::kEof);
    break;
  }
}

#endif  // POSIX sockets

// ---------------------------------------------------------------------------
// The served workload: same mixed-sensitivity shape as the isolation
// tests -- a narrowable floor() chain plus a precision-critical tail, so
// searches descend through several levels.

struct NetWorkload {
  program::Image image;
  config::StructureIndex index;
  std::unique_ptr<verify::Verifier> verifier;
};

NetWorkload make_workload() {
  Builder b;
  b.begin_func("main", "m");
  auto good = b.var_f64("good");
  auto bad = b.var_f64("bad");
  b.set(good, b.cf(0.0));
  for (int k = 0; k < 10; ++k) {
    b.set(good, floor_(Expr(good) + b.cf(1.0 + k)));
  }
  b.set(bad, b.cf(1.0) / b.cf(3.0) + b.cf(1.0) / b.cf(7.0));
  b.output(good);
  b.output(bad);
  b.end_func();

  NetWorkload w{program::relayout(lang::compile(b.take_model(),
                                                lang::Mode::kDouble)),
                {}, nullptr};
  w.index = config::StructureIndex::build(program::lift(w.image));
  std::vector<double> ref = verify::reference_outputs(w.image);
  w.verifier = std::make_unique<verify::RelativeErrorVerifier>(std::move(ref),
                                                               1e-12);
  return w;
}

std::string temp_journal(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

#define SKIP_WITHOUT_NET()                                          \
  if (!net::supported() || !runner::isolation_supported()) {        \
    GTEST_SKIP() << "sockets or fork unavailable on this platform"; \
  }

#if defined(__unix__) || defined(__APPLE__)

/// The test fleet serves exactly one workload id.
std::unique_ptr<net::ServedWorkload> serve_factory(const std::string& bench,
                                                   char /*cls*/,
                                                   std::string* error) {
  if (bench != "iso") {
    if (error != nullptr) *error = "unknown benchmark '" + bench + "'";
    return nullptr;
  }
  NetWorkload w = make_workload();
  auto out = std::make_unique<net::ServedWorkload>();
  out->image = std::move(w.image);
  out->index = config::StructureIndex::build(program::lift(out->image));
  out->verifier = std::move(w.verifier);
  return out;
}

/// A RunnerServer forked into a child process. Forking keeps the daemon's
/// single-threaded-loop-that-forks-workers discipline intact (the gtest
/// parent may spin up search threads), and killing the child IS the
/// endpoint-death fault the failover tests exercise.
struct ServerProc {
  net::Endpoint ep;
  pid_t pid = -1;

  ServerProc() = default;
  ServerProc(const ServerProc&) = delete;
  ServerProc& operator=(const ServerProc&) = delete;
  ServerProc(ServerProc&& o) noexcept : ep(o.ep), pid(o.pid) { o.pid = -1; }
  ServerProc& operator=(ServerProc&& o) noexcept {
    stop();
    ep = o.ep;
    pid = o.pid;
    o.pid = -1;
    return *this;
  }

  void stop() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
  ~ServerProc() { stop(); }
};

struct SpawnOpts {
  int workers = 2;
  std::uint64_t exit_after = 0;
  std::size_t max_sessions = 0;
  std::uint64_t idle_timeout_ms = 0;
  /// Durable-state knobs: shard/cache persistence under this directory,
  /// optionally under a seeded disk-fault campaign.
  std::string state_dir;
  const fault::DiskChaos* disk_chaos = nullptr;
  /// 0 binds a kernel-assigned port; nonzero rebinds a specific one (the
  /// restart-on-the-same-endpoint path; SO_REUSEADDR makes this race-free
  /// once the predecessor is reaped).
  std::uint16_t port = 0;
};

ServerProc spawn_server_with(const SpawnOpts& o, bool allow_bind_fail = false) {
  net::Listener listener;
  std::string error;
  if (!listener.listen_on("127.0.0.1", o.port, &error)) {
    if (!allow_bind_fail) ADD_FAILURE() << "listen: " << error;
    return ServerProc{};
  }
  ServerProc sp;
  sp.ep.port = listener.port();
  sp.pid = ::fork();
  if (sp.pid == 0) {
    net::ServerOptions sopts;
    sopts.workers = o.workers;
    sopts.exit_after_results = o.exit_after;
    if (o.max_sessions > 0) sopts.max_sessions = o.max_sessions;
    if (o.idle_timeout_ms > 0) sopts.idle_timeout_ms = o.idle_timeout_ms;
    sopts.state_dir = o.state_dir;
    sopts.disk_chaos = o.disk_chaos;
    net::RunnerServer server(std::move(listener), serve_factory, sopts);
    server.serve(nullptr);
    std::_Exit(0);
  }
  // The parent's copy of the listener fd closes with the local object; the
  // child keeps its own.
  return sp;
}

ServerProc spawn_server(int workers, std::uint64_t exit_after = 0,
                        std::size_t max_sessions = 0,
                        std::uint64_t idle_timeout_ms = 0) {
  SpawnOpts o;
  o.workers = workers;
  o.exit_after = exit_after;
  o.max_sessions = max_sessions;
  o.idle_timeout_ms = idle_timeout_ms;
  return spawn_server_with(o);
}

/// Respawns a daemon on a specific port (a restart of a killed one). The
/// old child must already be reaped; the bind can still race the kernel
/// briefly, so retry for up to ~2s.
ServerProc respawn_at(std::uint16_t port, SpawnOpts o) {
  o.port = port;
  for (int i = 0; i < 200; ++i) {
    ServerProc sp = spawn_server_with(o, /*allow_bind_fail=*/true);
    if (sp.pid > 0) return sp;
    ::poll(nullptr, 0, 10);
  }
  ADD_FAILURE() << "could not rebind port " << port;
  return ServerProc{};
}

/// A fresh, unique on-disk state directory.
std::string temp_state_dir(const std::string& tag) {
  std::string tmpl = testing::TempDir() + "fpmix_state_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = ::mkdtemp(buf.data());
  if (got == nullptr) {
    ADD_FAILURE() << "mkdtemp failed for " << tmpl;
    return tmpl;
  }
  return std::string(got);
}

net::HelloMsg make_hello() {
  net::HelloMsg h;
  h.bench = "iso";
  h.max_instructions = 1ull << 24;
  return h;
}

// ---------------------------------------------------------------------------
// Client handshake.

TEST(DistributedClient, ServerRejectsUnknownWorkloadAndBadVersion) {
  SKIP_WITHOUT_NET();
  ServerProc sp = spawn_server(1);
  ASSERT_GT(sp.pid, 0);

  net::HelloMsg bad_bench = make_hello();
  bad_bench.bench = "nope";
  std::string error;
  EXPECT_EQ(net::EndpointClient::connect(sp.ep, bad_bench, 2000, 30000,
                                         &error),
            nullptr);
  EXPECT_NE(error.find("unknown benchmark"), std::string::npos) << error;

  net::HelloMsg bad_version = make_hello();
  bad_version.version = 999;
  EXPECT_EQ(net::EndpointClient::connect(sp.ep, bad_version, 2000, 30000,
                                         &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  // A good hello on the same (still running) daemon succeeds and reports
  // the pool width and verifier fingerprint.
  NetWorkload w = make_workload();
  auto client =
      net::EndpointClient::connect(sp.ep, make_hello(), 2000, 60000, &error);
  ASSERT_NE(client, nullptr) << error;
  EXPECT_EQ(client->workers(), 1u);
  EXPECT_EQ(client->verifier_fp(), w.verifier->fingerprint());
}

TEST(DistributedClient, JournalShardSurvivesSessionDeathAndRejectsTornLines) {
  SKIP_WITHOUT_NET();
  ServerProc sp = spawn_server(1);
  ASSERT_GT(sp.pid, 0);

  net::HelloMsg h = make_hello();
  h.search_fp = "fp:shard-retention";
  std::string error;
  auto c1 = net::EndpointClient::connect(sp.ep, h, 2000, 60000, &error);
  ASSERT_NE(c1, nullptr) << error;
  EXPECT_EQ(c1->shard_records(), 0u);

  const std::string meta = seal_record(
      "{\"type\":\"meta\",\"version\":2,\"search_fp\":\"fp:shard-retention\"}",
      1);
  const std::string t1 = seal_record("{\"type\":\"trial\",\"key\":\"a\"}", 2);
  const std::string t2 = seal_record("{\"type\":\"trial\",\"key\":\"b\"}", 3);
  // A torn line -- the tail a dying scheduler half-wrote: one flipped byte
  // breaks the CRC, and the shard must reject it rather than retain damage.
  std::string torn = seal_record("{\"type\":\"trial\",\"key\":\"torn\"}", 4);
  torn[torn.find("torn")] ^= 0x01;
  ASSERT_EQ(check_seal(torn), SealCheck::kCorrupt);

  ASSERT_TRUE(c1->journal_append({meta}));
  ASSERT_TRUE(c1->journal_append({t1}));
  ASSERT_TRUE(c1->journal_append({torn}));
  ASSERT_TRUE(c1->journal_append({t2}));
  // A duplicate sequence number (a re-streamed record after a failover
  // heals the fleet) is idempotent: the first retained copy wins.
  ASSERT_TRUE(c1->journal_append(
      {seal_record("{\"type\":\"trial\",\"key\":\"dup\"}", 2)}));

  std::vector<std::string> lines;
  ASSERT_TRUE(c1->fetch_journal(&lines, 10000, &error)) << error;
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], meta);
  EXPECT_EQ(lines[1], t1);
  EXPECT_EQ(lines[2], t2);

  // Kill the session outright; the shard outlives it, and a fresh session
  // announcing the same search sees the retained history in its ack.
  c1.reset();
  auto c2 = net::EndpointClient::connect(sp.ep, h, 2000, 60000, &error);
  ASSERT_NE(c2, nullptr) << error;
  EXPECT_EQ(c2->shard_records(), 3u);
  lines.clear();
  ASSERT_TRUE(c2->fetch_journal(&lines, 10000, &error)) << error;
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], meta);
  EXPECT_EQ(lines[2], t2);

  // A different search fingerprint gets its own (empty) shard.
  net::HelloMsg other = make_hello();
  other.search_fp = "fp:someone-else";
  auto c3 = net::EndpointClient::connect(sp.ep, other, 2000, 60000, &error);
  ASSERT_NE(c3, nullptr) << error;
  EXPECT_EQ(c3->shard_records(), 0u);
}

TEST(DistributedClient, SessionCapRejectsAndIdleReapingKeepsTheShard) {
  SKIP_WITHOUT_NET();
  // One-session daemon that reaps anything idle for 200ms.
  ServerProc sp = spawn_server(1, /*exit_after=*/0, /*max_sessions=*/1,
                               /*idle_timeout_ms=*/200);
  ASSERT_GT(sp.pid, 0);

  net::HelloMsg h = make_hello();
  h.search_fp = "fp:reap-test";
  std::string error;
  auto c1 = net::EndpointClient::connect(sp.ep, h, 2000, 60000, &error);
  ASSERT_NE(c1, nullptr) << error;
  ASSERT_TRUE(c1->journal_append({seal_record(
      "{\"type\":\"meta\",\"version\":2,\"search_fp\":\"fp:reap-test\"}",
      1)}));

  // The cap: a second concurrent session is rejected outright.
  EXPECT_EQ(net::EndpointClient::connect(sp.ep, h, 2000, 5000, &error),
            nullptr);
  EXPECT_NE(error.find("session limit"), std::string::npos) << error;

  // Idle reaping: after 200ms of silence the daemon drops the session --
  // but the retained journal shard survives it, so the slot it frees can
  // serve a successor that still sees the full history.
  std::vector<net::ResultMsg> results;
  bool dropped = false;
  for (int i = 0; i < 2000 && !dropped; ++i) {
    dropped = !c1->drain(&results);
    ::poll(nullptr, 0, 5);
  }
  EXPECT_TRUE(dropped);
  c1.reset();
  auto c2 = net::EndpointClient::connect(sp.ep, h, 2000, 60000, &error);
  ASSERT_NE(c2, nullptr) << error;
  EXPECT_EQ(c2->shard_records(), 1u);
}

// ---------------------------------------------------------------------------
// The scheduler: remote batches, endpoint death, failover.

TEST(DistributedScheduler, RemoteBatchMatchesInProcessVerdicts) {
  SKIP_WITHOUT_NET();
  ServerProc sp = spawn_server(2);
  ASSERT_GT(sp.pid, 0);
  NetWorkload w = make_workload();

  search::SchedulerOptions so;
  so.endpoints = {sp.ep};
  so.hello = make_hello();
  so.verifier_fp = w.verifier->fingerprint();
  search::Scheduler sched(so);
  ASSERT_EQ(sched.connect(), 1u);
  EXPECT_TRUE(sched.any_live());
  EXPECT_EQ(sched.capacity(), 2u);

  config::PrecisionConfig all_double;
  config::PrecisionConfig module_single;
  module_single.set_module(0, Precision::kSingle);
  std::vector<runner::TrialJob> jobs;
  jobs.push_back(runner::TrialJob{"all-double", &all_double});
  jobs.push_back(runner::TrialJob{"module-single", &module_single});

  const std::vector<runner::TrialOutcome> outs = sched.run_batch(jobs);
  ASSERT_EQ(outs.size(), 2u);
  verify::EvalOptions eval;
  eval.max_instructions = 1ull << 24;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const verify::EvalResult ref = verify::evaluate_config(
        w.image, w.index, *jobs[i].config, *w.verifier, eval);
    EXPECT_TRUE(outs[i].served) << jobs[i].key;
    EXPECT_FALSE(outs[i].quarantined) << jobs[i].key;
    EXPECT_EQ(outs[i].worker_deaths, 0u) << jobs[i].key;
    EXPECT_EQ(outs[i].result.passed, ref.passed) << jobs[i].key;
    EXPECT_EQ(outs[i].result.failure_class, ref.failure_class)
        << jobs[i].key;
    EXPECT_EQ(outs[i].result.failure, ref.failure) << jobs[i].key;
  }

  const std::vector<search::EndpointMetrics> em = sched.endpoint_metrics();
  ASSERT_EQ(em.size(), 1u);
  EXPECT_EQ(em[0].address, sp.ep.str());
  EXPECT_EQ(em[0].workers, 2u);
  EXPECT_EQ(em[0].trials, 2u);
  EXPECT_FALSE(em[0].lost);
}

TEST(DistributedScheduler, EndpointDeathMidTrialQuarantinesAsCrash) {
  SKIP_WITHOUT_NET();
  // A single endpoint that dies after delivering one result, and a crash
  // budget of one: every trial stranded in flight must come back as a
  // quarantined kCrash verdict -- the same breaker taxonomy as a
  // crash-looping config -- never hang, never pass.
  ServerProc sp = spawn_server(2, /*exit_after=*/1);
  ASSERT_GT(sp.pid, 0);
  NetWorkload w = make_workload();

  search::SchedulerOptions so;
  so.endpoints = {sp.ep};
  so.hello = make_hello();
  so.verifier_fp = w.verifier->fingerprint();
  so.max_trial_crashes = 1;
  so.max_endpoint_failures = 1;
  search::Scheduler sched(so);
  ASSERT_EQ(sched.connect(), 1u);

  config::PrecisionConfig all_double;
  std::vector<runner::TrialJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(
        runner::TrialJob{"death-" + std::to_string(i), &all_double});
  }
  const std::vector<runner::TrialOutcome> outs = sched.run_batch(jobs);
  ASSERT_EQ(outs.size(), jobs.size());

  std::size_t ok = 0, quarantined = 0;
  for (const runner::TrialOutcome& o : outs) {
    if (o.served && !o.quarantined) {
      ++ok;
    } else if (o.served && o.quarantined) {
      ++quarantined;
      EXPECT_FALSE(o.result.passed);
      EXPECT_EQ(o.result.failure_class, verify::FailureClass::kCrash);
      EXPECT_NE(o.result.failure.find("endpoint failures"),
                std::string::npos)
          << o.result.failure;
      EXPECT_GE(o.worker_deaths, 1u);
    }
  }
  EXPECT_GE(ok, 1u);           // the endpoint served before dying
  EXPECT_GE(quarantined, 1u);  // and stranded the rest
  EXPECT_EQ(ok + quarantined, jobs.size());

  const std::vector<search::EndpointMetrics> em = sched.endpoint_metrics();
  ASSERT_EQ(em.size(), 1u);
  EXPECT_GE(em[0].disconnects, 1u);
  EXPECT_TRUE(em[0].lost);
}

TEST(DistributedScheduler, EndpointDeathFailsOverToSurvivingShard) {
  SKIP_WITHOUT_NET();
  ServerProc dying = spawn_server(2, /*exit_after=*/1);
  ServerProc healthy = spawn_server(2);
  ASSERT_GT(dying.pid, 0);
  ASSERT_GT(healthy.pid, 0);
  NetWorkload w = make_workload();

  search::SchedulerOptions so;
  so.endpoints = {dying.ep, healthy.ep};
  so.hello = make_hello();
  so.verifier_fp = w.verifier->fingerprint();
  so.max_endpoint_failures = 2;
  search::Scheduler sched(so);
  ASSERT_EQ(sched.connect(), 2u);
  EXPECT_EQ(sched.capacity(), 4u);

  config::PrecisionConfig all_double;
  config::PrecisionConfig module_single;
  module_single.set_module(0, Precision::kSingle);
  std::vector<runner::TrialJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(runner::TrialJob{
        "failover-" + std::to_string(i),
        (i % 2 == 0) ? &all_double : &module_single});
  }
  const std::vector<runner::TrialOutcome> outs = sched.run_batch(jobs);
  ASSERT_EQ(outs.size(), jobs.size());

  // Every trial lands a real verdict on the surviving shard: no
  // quarantines, no unserved work, verdicts equal to in-process.
  verify::EvalOptions eval;
  eval.max_instructions = 1ull << 24;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(outs[i].served) << jobs[i].key;
    EXPECT_FALSE(outs[i].quarantined) << jobs[i].key;
    const verify::EvalResult ref = verify::evaluate_config(
        w.image, w.index, *jobs[i].config, *w.verifier, eval);
    EXPECT_EQ(outs[i].result.passed, ref.passed) << jobs[i].key;
    EXPECT_EQ(outs[i].result.failure, ref.failure) << jobs[i].key;
  }

  const std::vector<search::EndpointMetrics> em = sched.endpoint_metrics();
  ASSERT_EQ(em.size(), 2u);
  EXPECT_GE(em[0].disconnects, 1u);  // the dying endpoint dropped
  EXPECT_GE(em[0].failovers, 1u);    // and its in-flight work was rerouted
  EXPECT_EQ(em[0].trials + em[1].trials, jobs.size());
}

TEST(DistributedScheduler, HeartbeatMeasuresRttOnALiveEndpoint) {
  SKIP_WITHOUT_NET();
  ServerProc sp = spawn_server(2);
  ASSERT_GT(sp.pid, 0);
  NetWorkload w = make_workload();

  search::SchedulerOptions so;
  so.endpoints = {sp.ep};
  so.hello = make_hello();
  so.verifier_fp = w.verifier->fingerprint();
  so.heartbeat_ms = 1;  // ping on every dispatch loop
  search::Scheduler sched(so);
  ASSERT_EQ(sched.connect(), 1u);

  config::PrecisionConfig all_double;
  std::vector<runner::TrialJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(runner::TrialJob{"hb-" + std::to_string(i), &all_double});
  }
  const std::vector<runner::TrialOutcome> outs = sched.run_batch(jobs);
  ASSERT_EQ(outs.size(), jobs.size());
  for (const runner::TrialOutcome& o : outs) {
    EXPECT_TRUE(o.served);
    EXPECT_FALSE(o.quarantined);
  }

  // A healthy endpoint answers its pings: no missed beats, no lease
  // expiries, and the RTT percentiles are ordered samples, not garbage.
  const std::vector<search::EndpointMetrics> em = sched.endpoint_metrics();
  ASSERT_EQ(em.size(), 1u);
  EXPECT_GE(em[0].pings, 1u);
  EXPECT_GE(em[0].pongs, 1u);
  EXPECT_EQ(em[0].lease_expiries, 0u);
  EXPECT_FALSE(em[0].lost);
  EXPECT_LE(em[0].rtt_p50_us, em[0].rtt_p95_us);
  EXPECT_LE(em[0].rtt_p95_us, em[0].rtt_max_us);
  EXPECT_GT(em[0].rtt_max_us, 0u);
}

TEST(DistributedScheduler, DuplicateResultIsDiscardedNeverDoubleVoted) {
  if (!net::supported()) GTEST_SKIP() << "no sockets on this platform";
  // A hand-rolled endpoint that answers one trial with the same verdict
  // TWICE in a single write: the second copy's ticket no longer holds a
  // lease, so the scheduler must discard it (counted as a late result),
  // never hand the batch two outcomes.
  net::Listener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on("127.0.0.1", 0, &error)) << error;
  net::Endpoint ep;
  ep.port = listener.port();

  NetWorkload w = make_workload();
  const std::string fp = w.verifier->fingerprint();
  std::thread server([&listener, fp]() {
    net::Socket s;
    for (int i = 0; i < 2000 && !s.valid(); ++i) {
      s = listener.accept_connection();
      if (!s.valid()) ::poll(nullptr, 0, 2);
    }
    if (!s.valid()) return;
    net::FrameBuffer fb;
    std::string payload = read_one_frame(&s, &fb);  // the hello
    net::HelloAckMsg ack;
    ack.ok = 1;
    ack.workers = 1;
    ack.verifier_fp = fp;
    s.send_all(runner::encode_frame(net::encode_hello_ack(ack)), 1000);
    payload = read_one_frame(&s, &fb);  // the trial
    net::TrialMsg t;
    if (!net::decode_trial(payload, &t)) return;
    runner::WireResult wr;
    wr.passed = true;
    net::ResultMsg r;
    r.ticket = t.ticket;
    r.wire_result = runner::encode_result(wr);
    const std::string frame =
        runner::encode_frame(net::encode_result_msg(r));
    s.send_all(frame + frame, 1000);  // the verdict, delivered twice
    // Linger until the scheduler hangs up so the close is not a death.
    std::string sink;
    for (int i = 0; i < 2000; ++i) {
      if (s.read_available(&sink) != net::IoStatus::kWouldBlock) break;
      ::poll(nullptr, 0, 2);
    }
  });

  {
    search::SchedulerOptions so;
    so.endpoints = {ep};
    so.hello = make_hello();
    so.verifier_fp = fp;
    search::Scheduler sched(so);
    ASSERT_EQ(sched.connect(), 1u);

    config::PrecisionConfig all_double;
    std::vector<runner::TrialJob> jobs;
    jobs.push_back(runner::TrialJob{"dup-result", &all_double});
    const std::vector<runner::TrialOutcome> outs = sched.run_batch(jobs);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_TRUE(outs[0].served);
    EXPECT_TRUE(outs[0].result.passed);
    EXPECT_FALSE(outs[0].quarantined);

    const std::vector<search::EndpointMetrics> em =
        sched.endpoint_metrics();
    ASSERT_EQ(em.size(), 1u);
    EXPECT_EQ(em[0].trials, 1u);        // voted exactly once
    EXPECT_EQ(em[0].late_results, 1u);  // the duplicate, discarded
  }
  server.join();
}

// ---------------------------------------------------------------------------
// Search equivalence across the fleet.

TEST(DistributedSearch, CleanFleetRunIsByteIdenticalToLocalRun) {
  SKIP_WITHOUT_NET();
  // Fork the fleet before the local run spins up threads.
  ServerProc s1 = spawn_server(2);
  ServerProc s2 = spawn_server(2);
  ASSERT_GT(s1.pid, 0);
  ASSERT_GT(s2.pid, 0);

  const std::string local_journal = temp_journal("net_clean_local.jsonl");
  const std::string fleet_journal = temp_journal("net_clean_fleet.jsonl");

  search::SearchOptions local;
  local.num_threads = 4;  // matches the fleet's lane count (2 x 2 workers)
  local.journal_timings = false;
  local.journal_path = local_journal;
  NetWorkload a = make_workload();
  const search::SearchResult lres =
      search::run_search(a.image, &a.index, *a.verifier, local);

  search::SearchOptions fleet;
  fleet.endpoints = {s1.ep.str(), s2.ep.str()};
  fleet.remote_bench = "iso";
  fleet.journal_timings = false;
  fleet.journal_path = fleet_journal;
  NetWorkload b = make_workload();
  const search::SearchResult fres =
      search::run_search(b.image, &b.index, *b.verifier, fleet);

  EXPECT_FALSE(fres.metrics.remote_degraded);
  EXPECT_GT(fres.metrics.remote_trials, 0u);
  EXPECT_EQ(fres.metrics.remote_unserved, 0u);
  EXPECT_EQ(fres.metrics.endpoints_lost, 0u);
  ASSERT_EQ(fres.metrics.endpoints_used.size(), 2u);

  EXPECT_EQ(fres.configs_tested, lres.configs_tested);
  EXPECT_EQ(fres.final_passed, lres.final_passed);
  EXPECT_EQ(config::to_text(b.index, fres.final_config),
            config::to_text(a.index, lres.final_config));
  // The journals -- trial order, keys, verdicts, failure text -- agree
  // down to the byte: a resumed search cannot tell which executor ran.
  const std::string local_bytes = read_file(local_journal);
  ASSERT_FALSE(local_bytes.empty());
  EXPECT_EQ(read_file(fleet_journal), local_bytes);
}

TEST(DistributedSearch, FleetLossDegradesToLocalExecution) {
  if (!net::supported()) GTEST_SKIP() << "no sockets on this platform";
  // A once-valid endpoint that refuses connections: bind, then close.
  net::Listener gone;
  std::string error;
  ASSERT_TRUE(gone.listen_on("127.0.0.1", 0, &error)) << error;
  const std::uint16_t dead_port = gone.port();
  gone.close();

  NetWorkload o = make_workload();
  const search::SearchResult oracle =
      search::run_search(o.image, &o.index, *o.verifier, {});

  search::SearchOptions opts;
  opts.endpoints = {"127.0.0.1:" + std::to_string(dead_port)};
  opts.remote_bench = "iso";
  opts.connect_timeout_ms = 500;
  NetWorkload w = make_workload();
  const search::SearchResult res =
      search::run_search(w.image, &w.index, *w.verifier, opts);

  EXPECT_TRUE(res.metrics.remote_degraded);
  EXPECT_EQ(res.metrics.remote_trials, 0u);
  EXPECT_EQ(res.configs_tested, oracle.configs_tested);
  EXPECT_EQ(res.final_passed, oracle.final_passed);
  EXPECT_EQ(config::to_text(w.index, res.final_config),
            config::to_text(o.index, oracle.final_config));
}

TEST(DistributedSearch, EndpointDeathMidSearchKeepsEveryAcceptedTrial) {
  SKIP_WITHOUT_NET();
  // One endpoint dies after two results; its sibling absorbs the rest.
  ServerProc dying = spawn_server(2, /*exit_after=*/2);
  ServerProc healthy = spawn_server(2);
  ASSERT_GT(dying.pid, 0);
  ASSERT_GT(healthy.pid, 0);

  const std::string local_journal = temp_journal("net_death_local.jsonl");
  const std::string fleet_journal = temp_journal("net_death_fleet.jsonl");

  search::SearchOptions local;
  local.num_threads = 4;
  local.journal_timings = false;
  local.journal_path = local_journal;
  NetWorkload a = make_workload();
  const search::SearchResult lres =
      search::run_search(a.image, &a.index, *a.verifier, local);

  search::SearchOptions fleet;
  fleet.endpoints = {dying.ep.str(), healthy.ep.str()};
  fleet.remote_bench = "iso";
  fleet.journal_timings = false;
  fleet.journal_path = fleet_journal;
  fleet.max_endpoint_failures = 2;
  NetWorkload b = make_workload();
  const search::SearchResult fres =
      search::run_search(b.image, &b.index, *b.verifier, fleet);

  // Graceful degradation: the death cost retries, never accepted trials
  // or correctness.
  EXPECT_GE(fres.metrics.endpoint_disconnects, 1u);
  EXPECT_EQ(fres.metrics.remote_unserved, 0u);
  EXPECT_EQ(fres.configs_tested, lres.configs_tested);
  EXPECT_EQ(fres.final_passed, lres.final_passed);
  EXPECT_EQ(config::to_text(b.index, fres.final_config),
            config::to_text(a.index, lres.final_config));
  const std::string local_bytes = read_file(local_journal);
  ASSERT_FALSE(local_bytes.empty());
  EXPECT_EQ(read_file(fleet_journal), local_bytes);
}

TEST(DistributedSearch, ShardCacheServesRepeatSearchWithoutReevaluation) {
  SKIP_WITHOUT_NET();
  ServerProc sp = spawn_server(2);
  ASSERT_GT(sp.pid, 0);

  search::SearchOptions opts;
  opts.endpoints = {sp.ep.str()};
  opts.remote_bench = "iso";
  opts.shard_cache = true;

  NetWorkload a = make_workload();
  const search::SearchResult first =
      search::run_search(a.image, &a.index, *a.verifier, opts);
  EXPECT_FALSE(first.metrics.remote_degraded);
  EXPECT_GT(first.metrics.remote_trials, 0u);

  // Same search fingerprint, fresh session: the daemon's fleet-wide cache
  // answers repeat configurations without touching its pool.
  NetWorkload b = make_workload();
  const search::SearchResult second =
      search::run_search(b.image, &b.index, *b.verifier, opts);
  EXPECT_GT(second.metrics.shard_cache_hits, 0u);
  EXPECT_EQ(second.configs_tested, first.configs_tested);
  EXPECT_EQ(second.final_passed, first.final_passed);
  EXPECT_EQ(config::to_text(b.index, second.final_config),
            config::to_text(a.index, first.final_config));
}

// ---------------------------------------------------------------------------
// The acceptance soak: seeded hard-fault campaigns against a fleet whose
// endpoints' workers are dying under them, each campaign asserted
// byte-identical to the local isolated oracle under the same campaign.

std::size_t soak_campaigns() {
  if (const char* env = std::getenv("FPMIX_SOAK_CAMPAIGNS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 25;  // local default; CI exports FPMIX_SOAK_CAMPAIGNS=200
}

TEST(DistributedSoak, FaultedFleetConvergesByteIdenticallyToIsolatedOracle) {
  SKIP_WITHOUT_NET();
  // Process-destroying faults only (worker deaths are retried, never
  // voted), at the same rates as the isolation soak.
  fault::Injector::Rates rates;
  rates.segv = 0.05;
  rates.kill = 0.03;
  rates.oom = 0.03;
  rates.trunc_result = 0.02;
  rates.corrupt_result = 0.02;

  // Each campaign runs two full searches (fleet + oracle) and forks two
  // daemons; scale the count down from the isolation soak's budget.
  const std::size_t campaigns = std::max<std::size_t>(2, soak_campaigns() / 5);
  std::uint64_t total_faults = 0;
  for (std::size_t c = 0; c < campaigns; ++c) {
    SCOPED_TRACE("campaign " + std::to_string(c));
    const fault::Injector injector(0x7E57D157 + c, rates);

    ServerProc s1 = spawn_server(2);
    ServerProc s2 = spawn_server(2);
    ASSERT_GT(s1.pid, 0);
    ASSERT_GT(s2.pid, 0);

    const std::string fleet_journal =
        temp_journal("net_soak_fleet_" + std::to_string(c) + ".jsonl");
    search::SearchOptions fleet;
    fleet.endpoints = {s1.ep.str(), s2.ep.str()};
    fleet.remote_bench = "iso";
    fleet.journal_timings = false;
    fleet.journal_path = fleet_journal;
    fleet.fault_injector = &injector;
    fleet.max_trial_crashes = 6;  // absorb faults, don't quarantine configs
    NetWorkload f = make_workload();
    const search::SearchResult fres =
        search::run_search(f.image, &f.index, *f.verifier, fleet);
    s1.stop();
    s2.stop();

    // The oracle: same campaign, local sandboxed pool of the same width
    // (so lanes -- and therefore journal order -- match the fleet).
    const std::string oracle_journal =
        temp_journal("net_soak_oracle_" + std::to_string(c) + ".jsonl");
    search::SearchOptions oracle;
    oracle.isolate_trials = true;
    oracle.num_workers = 4;
    oracle.journal_timings = false;
    oracle.journal_path = oracle_journal;
    oracle.fault_injector = &injector;
    oracle.max_trial_crashes = 6;
    NetWorkload o = make_workload();
    const search::SearchResult ores =
        search::run_search(o.image, &o.index, *o.verifier, oracle);

    EXPECT_FALSE(fres.metrics.remote_degraded);
    EXPECT_GT(fres.metrics.remote_trials, 0u);
    EXPECT_EQ(fres.final_passed, ores.final_passed);
    EXPECT_EQ(config::to_text(f.index, fres.final_config),
              config::to_text(o.index, ores.final_config));
    const std::string oracle_bytes = read_file(oracle_journal);
    ASSERT_FALSE(oracle_bytes.empty());
    EXPECT_EQ(read_file(fleet_journal), oracle_bytes);

    // The oracle runs the identical seeded campaign, so its fault census
    // proves the campaign actually destroyed workers on both executors.
    total_faults += ores.metrics.worker_crashes + ores.metrics.protocol_errors;
  }
  EXPECT_GT(total_faults, 0u);
}

// ---------------------------------------------------------------------------
// Scheduler failover: a dead scheduler's history lives in the fleet's
// replicated shards, and a fresh --adopt scheduler must resume from them
// byte-identically -- clean, under endpoint death, and under seeded
// network chaos.

/// Reference journal bytes + final config text from an undisturbed local
/// run of the shared workload (4 lanes, matching the 2 x 2-worker fleet).
struct Oracle {
  std::string journal;
  std::string config;
};

Oracle local_oracle(const std::string& tag) {
  const std::string path = temp_journal("net_oracle_" + tag + ".jsonl");
  search::SearchOptions local;
  local.num_threads = 4;
  local.journal_timings = false;
  local.journal_path = path;
  NetWorkload w = make_workload();
  const search::SearchResult res =
      search::run_search(w.image, &w.index, *w.verifier, local);
  Oracle o;
  o.journal = read_file(path);
  o.config = config::to_text(w.index, res.final_config);
  EXPECT_FALSE(o.journal.empty());
  return o;
}

/// Forks a child process running a fleet search -- the scheduler host the
/// failover tests kill. The child inherits any installed socket chaos.
pid_t spawn_fleet_search(const std::vector<std::string>& eps,
                         const std::string& journal_path) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    search::SearchOptions fleet;
    fleet.endpoints = eps;
    fleet.remote_bench = "iso";
    fleet.journal_timings = false;
    fleet.journal_path = journal_path;
    fleet.max_endpoint_failures = 32;
    fleet.heartbeat_ms = 20;
    NetWorkload w = make_workload();
    search::run_search(w.image, &w.index, *w.verifier, fleet);
    std::_Exit(0);
  }
  return pid;
}

/// SIGKILLs `pid` once its journal shows progress (or reaps it if the
/// search won the race and finished -- both outcomes must converge).
void kill_after_progress(pid_t pid, const std::string& journal_path,
                         std::size_t min_lines) {
  for (int i = 0; i < 5000; ++i) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return;
    const std::string bytes = read_file(journal_path);
    if (static_cast<std::size_t>(
            std::count(bytes.begin(), bytes.end(), '\n')) >= min_lines) {
      break;
    }
    ::poll(nullptr, 0, 2);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

search::SearchResult adopt_run(const std::vector<std::string>& eps,
                               const std::string& journal_path,
                               NetWorkload* w) {
  search::SearchOptions opts;
  opts.endpoints = eps;
  opts.remote_bench = "iso";
  opts.journal_timings = false;
  opts.journal_path = journal_path;
  opts.adopt_fleet = true;
  opts.max_endpoint_failures = 32;
  opts.heartbeat_ms = 20;
  return search::run_search(w->image, &w->index, *w->verifier, opts);
}

TEST(DistributedFailover, AdoptRebuildsLocalJournalFromFleetShards) {
  SKIP_WITHOUT_NET();
  ServerProc s1 = spawn_server(2);
  ServerProc s2 = spawn_server(2);
  ASSERT_GT(s1.pid, 0);
  ASSERT_GT(s2.pid, 0);
  const Oracle oracle = local_oracle("adopt_clean");

  // A fleet search completes, streaming every journal record to both
  // daemons as it commits locally.
  const std::string fleet_j = temp_journal("net_adopt_fleet.jsonl");
  {
    search::SearchOptions fleet;
    fleet.endpoints = {s1.ep.str(), s2.ep.str()};
    fleet.remote_bench = "iso";
    fleet.journal_timings = false;
    fleet.journal_path = fleet_j;
    NetWorkload w = make_workload();
    const search::SearchResult res =
        search::run_search(w.image, &w.index, *w.verifier, fleet);
    EXPECT_FALSE(res.metrics.remote_degraded);
    EXPECT_EQ(read_file(fleet_j), oracle.journal);
  }

  // The scheduler host "dies": its local journal is gone. A fresh --adopt
  // scheduler with an empty journal path rebuilds the full history from
  // the fleet and resumes with every verdict already cached.
  std::remove(fleet_j.c_str());
  const std::string adopt_j = temp_journal("net_adopt_rebuilt.jsonl");
  NetWorkload w = make_workload();
  const search::SearchResult res =
      adopt_run({s1.ep.str(), s2.ep.str()}, adopt_j, &w);
  EXPECT_GT(res.metrics.adopted_records, 0u);
  EXPECT_EQ(res.metrics.trials_live, 0u);  // nothing re-evaluated
  EXPECT_EQ(read_file(adopt_j), oracle.journal);
  EXPECT_EQ(config::to_text(w.index, res.final_config), oracle.config);
}

TEST(DistributedFailover, SchedulerKilledMidSearchAdoptsByteIdentically) {
  SKIP_WITHOUT_NET();
  const Oracle oracle = local_oracle("adopt_kill");
  for (int dying = 0; dying < 2; ++dying) {
    SCOPED_TRACE(dying ? "endpoint-death" : "clean");
    // In the endpoint-death case one daemon dies after two results, so the
    // killed scheduler ALSO rode a failover before its own death.
    ServerProc s1 = dying ? spawn_server(2, /*exit_after=*/2)
                          : spawn_server(2);
    ServerProc s2 = spawn_server(2);
    ASSERT_GT(s1.pid, 0);
    ASSERT_GT(s2.pid, 0);
    const std::vector<std::string> eps = {s1.ep.str(), s2.ep.str()};

    const std::string child_j =
        temp_journal("net_kill_child_" + std::to_string(dying) + ".jsonl");
    const pid_t pid = spawn_fleet_search(eps, child_j);
    ASSERT_GT(pid, 0);
    kill_after_progress(pid, child_j, /*min_lines=*/3);

    // A fresh scheduler on a fresh journal path: only the fleet-held
    // shards can supply the dead scheduler's history.
    const std::string adopt_j =
        temp_journal("net_kill_adopt_" + std::to_string(dying) + ".jsonl");
    NetWorkload w = make_workload();
    const search::SearchResult res = adopt_run(eps, adopt_j, &w);
    EXPECT_EQ(read_file(adopt_j), oracle.journal);
    EXPECT_EQ(config::to_text(w.index, res.final_config), oracle.config);
  }
}

TEST(DistributedChaos, SeededChaosCampaignsConvergeAndAdoptByteIdentically) {
  SKIP_WITHOUT_NET();
  const Oracle oracle = local_oracle("chaos");
  fault::NetChaos::Rates rates;
  rates.reset = 0.01;
  rates.stall = 0.03;
  rates.stall_ms = 5;
  rates.delay = 0.04;
  rates.dup = 0.04;
  rates.reorder = 0.02;

  // Even campaigns: an undisturbed in-process scheduler rides out the
  // chaos. Odd campaigns: the scheduler is killed mid-search and a fresh
  // one adopts -- still under the same chaos. Every campaign must land the
  // oracle's exact journal bytes and final configuration.
  const std::size_t campaigns = std::max<std::size_t>(2, soak_campaigns() / 5);
  for (std::size_t c = 0; c < campaigns; ++c) {
    SCOPED_TRACE("campaign " + std::to_string(c));
    // Daemons fork before chaos installs, so faults land exactly on the
    // scheduler's half of every session.
    ServerProc s1 = spawn_server(2);
    ServerProc s2 = spawn_server(2);
    ASSERT_GT(s1.pid, 0);
    ASSERT_GT(s2.pid, 0);
    const std::vector<std::string> eps = {s1.ep.str(), s2.ep.str()};
    const fault::NetChaos chaos(0xC4A05EED + c, rates);
    net::set_socket_chaos(&chaos);

    const std::string cj =
        temp_journal("net_chaos_" + std::to_string(c) + ".jsonl");
    NetWorkload w = make_workload();
    if (c % 2 == 0) {
      search::SearchOptions fleet;
      fleet.endpoints = eps;
      fleet.remote_bench = "iso";
      fleet.journal_timings = false;
      fleet.journal_path = cj;
      fleet.max_endpoint_failures = 32;
      fleet.heartbeat_ms = 20;
      const search::SearchResult res =
          search::run_search(w.image, &w.index, *w.verifier, fleet);
      net::set_socket_chaos(nullptr);
      EXPECT_EQ(read_file(cj), oracle.journal);
      EXPECT_EQ(config::to_text(w.index, res.final_config), oracle.config);
    } else {
      const pid_t pid = spawn_fleet_search(eps, cj);
      ASSERT_GT(pid, 0);
      kill_after_progress(pid, cj, /*min_lines=*/3);
      const std::string adopt_j =
          temp_journal("net_chaos_adopt_" + std::to_string(c) + ".jsonl");
      const search::SearchResult res = adopt_run(eps, adopt_j, &w);
      net::set_socket_chaos(nullptr);
      EXPECT_EQ(read_file(adopt_j), oracle.journal);
      EXPECT_EQ(config::to_text(w.index, res.final_config), oracle.config);
    }
  }
}

// ---------------------------------------------------------------------------
// Durability: --state-dir persistence across SIGKILL + restart, damage
// healing at reload, anti-entropy gossip, and seeded disk-fault campaigns.

TEST(DistributedDurable, StateDirSurvivesSigkillRestartAndHealsDamage) {
  SKIP_WITHOUT_NET();
  const std::string state = temp_state_dir("restart");
  const std::string fp = "fp:durable-restart";
  SpawnOpts o;
  o.workers = 1;
  o.state_dir = state;
  ServerProc sp = spawn_server_with(o);
  ASSERT_GT(sp.pid, 0);

  net::HelloMsg h = make_hello();
  h.search_fp = fp;
  std::string error;
  auto c1 = net::EndpointClient::connect(sp.ep, h, 2000, 60000, &error);
  ASSERT_NE(c1, nullptr) << error;
  EXPECT_FALSE(c1->state_degraded());
  EXPECT_EQ(c1->shard_records(), 0u);

  const std::string meta = seal_record(
      "{\"type\":\"meta\",\"version\":2,\"search_fp\":\"" + fp + "\"}", 1);
  const std::string t1 = seal_record("{\"type\":\"trial\",\"key\":\"a\"}", 2);
  const std::string t2 = seal_record("{\"type\":\"trial\",\"key\":\"b\"}", 3);
  ASSERT_TRUE(c1->journal_append({meta}));
  ASSERT_TRUE(c1->journal_append({t1}));
  ASSERT_TRUE(c1->journal_append({t2}));
  std::vector<std::string> lines;
  ASSERT_TRUE(c1->fetch_journal(&lines, 10000, &error)) << error;
  ASSERT_EQ(lines.size(), 3u);
  c1.reset();

  // SIGKILL: nothing graceful happens, yet every append already reached
  // the shard file.
  sp.stop();

  // Damage the shard on disk the way real crashes do: flip one byte
  // inside a sealed record (CRC now fails) and glue a torn half-record
  // onto the tail (the write a dying daemon never finished).
  const std::string shard_path =
      state + "/shard-" + hex_digest(fnv1a64(fp)) + ".jsonl";
  std::string bytes = read_file(shard_path);
  ASSERT_FALSE(bytes.empty());
  const std::size_t at = bytes.find("\"key\":\"b\"");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 8] ^= 0x01;
  bytes += "{\"type\":\"trial\",\"key\":\"half";  // no newline: torn tail
  {
    std::ofstream f(shard_path, std::ios::trunc | std::ios::binary);
    f << bytes;
  }

  // Restart from the same state dir: the intact records reload, the
  // damaged ones are dropped and the file is compacted down to what
  // survived.
  ServerProc sp2 = spawn_server_with(o);
  ASSERT_GT(sp2.pid, 0);
  auto c2 = net::EndpointClient::connect(sp2.ep, h, 2000, 60000, &error);
  ASSERT_NE(c2, nullptr) << error;
  EXPECT_FALSE(c2->state_degraded());
  EXPECT_GE(c2->shards_reloaded(), 1u);
  EXPECT_EQ(c2->shard_records(), 2u);  // meta + t1; t2 was corrupted
  lines.clear();
  ASSERT_TRUE(c2->fetch_journal(&lines, 10000, &error)) << error;
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], meta);
  EXPECT_EQ(lines[1], t1);

  // New appends continue the stream and also survive a second restart.
  // The fetch round-trip after the append matters: appends are
  // fire-and-forget, and TCP ordering means the daemon has processed
  // (and persisted) the append before it can answer the fetch -- without
  // it the SIGKILL below races the append frame.
  ASSERT_TRUE(c2->journal_append({t2}));
  lines.clear();
  ASSERT_TRUE(c2->fetch_journal(&lines, 10000, &error)) << error;
  ASSERT_EQ(lines.size(), 3u);
  c2.reset();
  sp2.stop();
  const std::string healed = read_file(shard_path);
  EXPECT_EQ(healed.find("half"), std::string::npos);  // tail healed away
  ServerProc sp3 = spawn_server_with(o);
  ASSERT_GT(sp3.pid, 0);
  auto c3 = net::EndpointClient::connect(sp3.ep, h, 2000, 60000, &error);
  ASSERT_NE(c3, nullptr) << error;
  EXPECT_EQ(c3->shard_records(), 3u);
  lines.clear();
  ASSERT_TRUE(c3->fetch_journal(&lines, 10000, &error)) << error;
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], t2);
}

TEST(DistributedDurable, VerdictCacheSurvivesRestartAndServesCacheHits) {
  SKIP_WITHOUT_NET();
  const std::string state = temp_state_dir("cache");
  SpawnOpts o;
  o.workers = 2;
  o.state_dir = state;
  ServerProc sp = spawn_server_with(o);
  ASSERT_GT(sp.pid, 0);

  search::SearchOptions opts;
  opts.endpoints = {sp.ep.str()};
  opts.remote_bench = "iso";
  opts.shard_cache = true;
  NetWorkload a = make_workload();
  const search::SearchResult first =
      search::run_search(a.image, &a.index, *a.verifier, opts);
  EXPECT_FALSE(first.metrics.remote_degraded);
  EXPECT_GT(first.metrics.remote_trials, 0u);

  // Kill the daemon outright; a successor on the same state dir reloads
  // the persisted verdict cache, so the repeat search is answered from it
  // without re-evaluating -- across a process death, not just a session.
  sp.stop();
  ServerProc sp2 = spawn_server_with(o);
  ASSERT_GT(sp2.pid, 0);
  opts.endpoints = {sp2.ep.str()};
  NetWorkload b = make_workload();
  const search::SearchResult second =
      search::run_search(b.image, &b.index, *b.verifier, opts);
  EXPECT_GT(second.metrics.shard_cache_hits, 0u);
  EXPECT_EQ(second.configs_tested, first.configs_tested);
  EXPECT_EQ(second.final_passed, first.final_passed);
  EXPECT_EQ(config::to_text(b.index, second.final_config),
            config::to_text(a.index, first.final_config));
  ASSERT_EQ(second.metrics.endpoints_used.size(), 1u);
  EXPECT_GE(second.metrics.endpoints_used[0].shards_reloaded, 1u);
}

TEST(DistributedDurable, UnwritableStateDirDegradesToInMemory) {
  SKIP_WITHOUT_NET();
  // A state dir that cannot exist: a path component is a regular file.
  const std::string blocker = testing::TempDir() + "fpmix_state_blocker";
  {
    std::ofstream f(blocker, std::ios::trunc);
    f << "not a directory\n";
  }
  SpawnOpts o;
  o.workers = 1;
  o.state_dir = blocker + "/sub";
  ServerProc sp = spawn_server_with(o);
  ASSERT_GT(sp.pid, 0);

  // The daemon still serves -- in-memory, with the degradation announced
  // in the very first hello ack.
  net::HelloMsg h = make_hello();
  h.search_fp = "fp:degraded";
  std::string error;
  auto c = net::EndpointClient::connect(sp.ep, h, 2000, 60000, &error);
  ASSERT_NE(c, nullptr) << error;
  EXPECT_TRUE(c->state_degraded());
  EXPECT_GE(c->disk_faults(), 1u);
  ASSERT_TRUE(c->journal_append({seal_record(
      "{\"type\":\"meta\",\"version\":2,\"search_fp\":\"fp:degraded\"}", 1)}));
  std::vector<std::string> lines;
  ASSERT_TRUE(c->fetch_journal(&lines, 10000, &error)) << error;
  EXPECT_EQ(lines.size(), 1u);
  std::remove(blocker.c_str());
}

TEST(DistributedGossip, GossipRepairsBlankedShardWithoutAdoption) {
  SKIP_WITHOUT_NET();
  ServerProc s1 = spawn_server(1);
  SpawnOpts o2;
  o2.workers = 1;
  ServerProc s2 = spawn_server_with(o2);
  ASSERT_GT(s1.pid, 0);
  ASSERT_GT(s2.pid, 0);
  const std::uint16_t port2 = s2.ep.port;

  search::SchedulerOptions so;
  so.endpoints = {s1.ep, s2.ep};
  so.hello = make_hello();
  so.hello.search_fp = "fp:gossip";
  so.max_endpoint_failures = 64;
  search::Scheduler sched(so);
  ASSERT_EQ(sched.connect(), 2u);

  // Stream a small committed history to the whole fleet.
  std::vector<std::string> committed;
  committed.push_back(seal_record(
      "{\"type\":\"meta\",\"version\":2,\"search_fp\":\"fp:gossip\"}", 1));
  for (std::uint64_t seq = 2; seq <= 6; ++seq) {
    committed.push_back(seal_record(
        "{\"type\":\"trial\",\"key\":\"k" + std::to_string(seq) + "\"}", seq));
  }
  for (const std::string& l : committed) sched.stream_journal(l);

  // A digest round against a fleet that already agrees repairs nothing.
  EXPECT_EQ(sched.gossip_now(5000), 0u);

  // Blank one endpoint: SIGKILL it and restart it empty on the same port
  // (no state dir -- its replica is simply gone, the worst case).
  s2.stop();
  s2 = respawn_at(port2, o2);
  ASSERT_GT(s2.pid, 0);

  // Gossip alone -- no adoption, no fetch -- must notice the blank digest
  // and re-stream the full history. The first round after the drop downs
  // the stale session; reconnect + heal happen within the backoff budget.
  std::size_t repaired = 0;
  for (int i = 0; i < 500 && repaired < committed.size(); ++i) {
    repaired += sched.gossip_now(5000);
    ::poll(nullptr, 0, 10);
  }
  EXPECT_GE(repaired, committed.size());

  // The restarted endpoint now holds the byte-exact replica.
  std::string error;
  auto check = net::EndpointClient::connect(s2.ep, so.hello, 2000, 60000,
                                            &error);
  ASSERT_NE(check, nullptr) << error;
  EXPECT_EQ(check->shard_records(), committed.size());
  std::vector<std::string> lines;
  ASSERT_TRUE(check->fetch_journal(&lines, 10000, &error)) << error;
  ASSERT_EQ(lines.size(), committed.size());
  for (std::size_t i = 0; i < committed.size(); ++i) {
    EXPECT_EQ(lines[i], committed[i]);
  }

  const std::vector<search::EndpointMetrics> em = sched.endpoint_metrics();
  ASSERT_EQ(em.size(), 2u);
  EXPECT_GE(em[1].records_repaired, committed.size());
  EXPECT_GT(em[1].gossip_rounds, 0u);
}

TEST(DistributedDurable, DaemonSigkilledMidSearchRestartsFromStateDir) {
  SKIP_WITHOUT_NET();
  const Oracle oracle = local_oracle("durable_kill");
  const std::string state = temp_state_dir("midsearch");
  SpawnOpts o1;
  o1.workers = 2;
  o1.state_dir = state;
  ServerProc s1 = spawn_server_with(o1);
  ServerProc s2 = spawn_server(2);
  ASSERT_GT(s1.pid, 0);
  ASSERT_GT(s2.pid, 0);
  const std::uint16_t port1 = s1.ep.port;

  const std::string fleet_j = temp_journal("net_durable_kill.jsonl");
  // A sidecar kills the stateful daemon once the search shows progress,
  // then restarts it from the same state dir on the same port. The
  // scheduler rides the death (failover + reconnect) and gossip re-streams
  // whatever the shard missed while the daemon was down.
  ServerProc restarted;
  std::thread killer([&]() {
    kill_after_progress(s1.pid, fleet_j, /*min_lines=*/3);
    s1.pid = -1;  // reaped by kill_after_progress
    restarted = respawn_at(port1, o1);
  });

  search::SearchOptions fleet;
  fleet.endpoints = {"127.0.0.1:" + std::to_string(port1), s2.ep.str()};
  fleet.remote_bench = "iso";
  fleet.journal_timings = false;
  fleet.journal_path = fleet_j;
  fleet.max_endpoint_failures = 64;
  fleet.heartbeat_ms = 20;
  fleet.gossip_ms = 20;
  NetWorkload w = make_workload();
  const search::SearchResult res =
      search::run_search(w.image, &w.index, *w.verifier, fleet);
  killer.join();

  // Byte-identical convergence: the daemon death cost availability only.
  EXPECT_EQ(read_file(fleet_j), oracle.journal);
  EXPECT_EQ(config::to_text(w.index, res.final_config), oracle.config);
  EXPECT_EQ(res.metrics.remote_unserved, 0u);
  ASSERT_EQ(res.metrics.endpoints_used.size(), 2u);
  const search::EndpointMetrics& em = res.metrics.endpoints_used[0];
  EXPECT_GE(em.disconnects, 1u);
  // The reconnect handshake saw the state reloaded from disk (the daemon
  // was not blank after its restart)...
  EXPECT_GE(em.shards_reloaded + em.journal_records, 1u);

  // ...and after the run the restarted daemon's shard is the full journal
  // byte-for-byte (reload + gossip healing, not adoption).
  net::HelloMsg h = make_hello();
  h.search_fp = "";
  std::string error;
  std::vector<std::string> lines;
  {
    search::SchedulerOptions so;
    so.endpoints = {net::Endpoint{"127.0.0.1", port1}};
    so.hello = make_hello();
    // Recover the search fingerprint from the journal's meta record.
    const std::string bytes = read_file(fleet_j);
    JsonRecord meta;
    ASSERT_TRUE(parse_flat_json(bytes.substr(0, bytes.find('\n')), &meta));
    so.hello.search_fp = meta["search_fp"];
    search::Scheduler probe(so);
    ASSERT_EQ(probe.connect(), 1u);
    ASSERT_EQ(probe.fetch_fleet_journal(&lines), 1u);
  }
  std::string shard_bytes;
  for (const std::string& l : lines) {
    shard_bytes += l;
    shard_bytes += '\n';
  }
  EXPECT_EQ(shard_bytes, oracle.journal);
}

TEST(DistributedDiskChaos, SeededDiskFaultCampaignsStayByteIdentical) {
  SKIP_WITHOUT_NET();
  const Oracle oracle = local_oracle("disk_chaos");
  fault::DiskChaos::Rates rates;
  rates.short_write = 0.05;
  rates.torn_record = 0.05;
  rates.fsync_fail = 0.05;
  rates.unreadable = 0.25;  // fires only at reload, i.e. the restart leg

  // Even campaigns run undisturbed under write faults; odd campaigns also
  // SIGKILL + restart the stateful daemon mid-search, so torn shard tails
  // written by the fault campaign are healed at reload and the gap is
  // gossip-repaired. Every campaign must land the oracle's exact bytes:
  // daemon-side disk damage may cost durability, never verdicts.
  const std::size_t campaigns = std::max<std::size_t>(2, soak_campaigns() / 8);
  std::uint64_t total_faults = 0;
  for (std::size_t c = 0; c < campaigns; ++c) {
    SCOPED_TRACE("campaign " + std::to_string(c));
    const fault::DiskChaos chaos(0xD15C0000 + c, rates);
    const std::string state1 = temp_state_dir("dc1_" + std::to_string(c));
    const std::string state2 = temp_state_dir("dc2_" + std::to_string(c));
    SpawnOpts o1;
    o1.workers = 2;
    o1.state_dir = state1;
    o1.disk_chaos = &chaos;
    SpawnOpts o2 = o1;
    o2.state_dir = state2;
    ServerProc s1 = spawn_server_with(o1);
    ServerProc s2 = spawn_server_with(o2);
    ASSERT_GT(s1.pid, 0);
    ASSERT_GT(s2.pid, 0);
    const std::uint16_t port1 = s1.ep.port;

    const std::string cj =
        temp_journal("net_disk_chaos_" + std::to_string(c) + ".jsonl");
    ServerProc restarted;
    std::thread killer;
    if (c % 2 == 1) {
      killer = std::thread([&]() {
        kill_after_progress(s1.pid, cj, /*min_lines=*/3);
        s1.pid = -1;
        restarted = respawn_at(port1, o1);
      });
    }

    search::SearchOptions fleet;
    fleet.endpoints = {"127.0.0.1:" + std::to_string(port1), s2.ep.str()};
    fleet.remote_bench = "iso";
    fleet.journal_timings = false;
    fleet.journal_path = cj;
    fleet.max_endpoint_failures = 64;
    fleet.heartbeat_ms = 20;
    fleet.gossip_ms = 20;
    NetWorkload w = make_workload();
    const search::SearchResult res =
        search::run_search(w.image, &w.index, *w.verifier, fleet);
    if (killer.joinable()) killer.join();

    EXPECT_FALSE(res.metrics.remote_degraded);
    EXPECT_EQ(read_file(cj), oracle.journal);
    EXPECT_EQ(config::to_text(w.index, res.final_config), oracle.config);

    // The campaign's injected faults are visible in a fresh handshake's
    // durability census (store-wide counters survive within the daemon).
    std::string error;
    for (const net::Endpoint& ep :
         {net::Endpoint{"127.0.0.1", port1}, s2.ep}) {
      auto probe =
          net::EndpointClient::connect(ep, make_hello(), 2000, 60000, &error);
      if (probe != nullptr) total_faults += probe->disk_faults();
    }
  }
  EXPECT_GT(total_faults, 0u);

  // The degraded leg: a daemon whose state dir is unusable serves the
  // whole search in-memory, byte-identically, with the degradation
  // counted in the scheduler's metrics.
  const std::string blocker = testing::TempDir() + "fpmix_dc_blocker";
  {
    std::ofstream f(blocker, std::ios::trunc);
    f << "not a directory\n";
  }
  SpawnOpts od;
  od.workers = 2;
  od.state_dir = blocker + "/sub";
  ServerProc sd1 = spawn_server_with(od);
  ServerProc sd2 = spawn_server(2);
  ASSERT_GT(sd1.pid, 0);
  ASSERT_GT(sd2.pid, 0);
  const std::string dj = temp_journal("net_disk_degraded.jsonl");
  search::SearchOptions fleet;
  fleet.endpoints = {sd1.ep.str(), sd2.ep.str()};
  fleet.remote_bench = "iso";
  fleet.journal_timings = false;
  fleet.journal_path = dj;
  fleet.gossip_ms = 20;
  NetWorkload w = make_workload();
  const search::SearchResult res =
      search::run_search(w.image, &w.index, *w.verifier, fleet);
  EXPECT_EQ(read_file(dj), oracle.journal);
  EXPECT_EQ(config::to_text(w.index, res.final_config), oracle.config);
  EXPECT_GE(res.metrics.state_degraded, 1u);
  EXPECT_GE(res.metrics.disk_faults, 1u);
  std::remove(blocker.c_str());
}

#endif  // POSIX fork

}  // namespace
}  // namespace fpmix
