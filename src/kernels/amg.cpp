// AMG microkernel (Section 3.2 of the paper, ASC Sequoia AMG analogue).
//
// A two-level algebraic multigrid solver on a CSR Poisson system:
// Gauss-Seidel relaxation on the fine grid, piecewise-constant aggregation
// restriction to a Galerkin coarse operator (computed host-side and baked,
// as AMG setup produces it), coarse relaxation, prolongation, iterating
// *adaptively* until the residual drops below the target. Because each cycle
// re-derives its correction from a freshly computed residual, single
// precision merely slows convergence slightly instead of breaking it -- the
// property that let the paper replace the entire kernel with single
// precision for a ~2x speedup.
#include "kernels/workload.hpp"

#include <map>

#include "lang/builder.hpp"
#include "linalg/csr.hpp"
#include "support/error.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

namespace {

/// Galerkin coarse operator Ac = R A R^T for piecewise-constant aggregation
/// (R sums over each aggregate).
linalg::Csr<double> galerkin_coarse(const linalg::Csr<double>& a,
                                    const std::vector<std::int64_t>& agg,
                                    std::size_t nc) {
  std::vector<std::map<std::size_t, double>> rows(nc);
  for (std::size_t i = 0; i < a.n; ++i) {
    const auto ci = static_cast<std::size_t>(agg[i]);
    for (std::int64_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      const auto j = static_cast<std::size_t>(
          a.col[static_cast<std::size_t>(k)]);
      const auto cj = static_cast<std::size_t>(agg[j]);
      rows[ci][cj] += a.val[static_cast<std::size_t>(k)];
    }
  }
  linalg::Csr<double> out;
  out.n = nc;
  out.rowptr.push_back(0);
  for (std::size_t i = 0; i < nc; ++i) {
    for (const auto& [j, v] : rows[i]) {
      out.col.push_back(static_cast<std::int64_t>(j));
      out.val.push_back(v);
    }
    out.rowptr.push_back(static_cast<std::int64_t>(out.col.size()));
  }
  return out;
}

}  // namespace

Workload make_amg() {
  constexpr std::size_t kM = 17;           // fine grid side
  constexpr std::size_t kN = kM * kM;      // fine unknowns
  constexpr double kTarget = 5.0e-5;       // adaptive convergence target
  constexpr std::size_t kMaxCycles = 120;

  const linalg::Csr<double> a = linalg::make_poisson2d(kM);

  // 2x2 aggregation.
  const std::size_t mc = (kM + 1) / 2;
  std::vector<std::int64_t> agg(kN);
  for (std::size_t y = 0; y < kM; ++y) {
    for (std::size_t x = 0; x < kM; ++x) {
      agg[y * kM + x] = static_cast<std::int64_t>((y / 2) * mc + (x / 2));
    }
  }
  const std::size_t nc = mc * mc;
  const linalg::Csr<double> ac = galerkin_coarse(a, agg, nc);

  Builder b;
  auto rowptr = b.const_array_i64("rowptr", a.rowptr);
  auto col = b.const_array_i64("col", a.col);
  auto val = b.const_array_f64("val", a.val);
  auto crowptr = b.const_array_i64("crowptr", ac.rowptr);
  auto ccol = b.const_array_i64("ccol", ac.col);
  auto cval = b.const_array_f64("cval", ac.val);
  auto aggv = b.const_array_i64("agg", agg);

  auto u = b.array_f64("u", kN);
  auto rhs = b.array_f64("rhs", kN);
  auto r = b.array_f64("r", kN);
  auto rc = b.array_f64("rc", nc);
  auto ec = b.array_f64("ec", nc);
  auto rnorm = b.var_f64("rnorm");

  const auto n = static_cast<std::int64_t>(kN);
  const auto ncl = static_cast<std::int64_t>(nc);

  // --- module amg_relax ------------------------------------------------------
  b.begin_func("relax_fine", "amg_relax");
  {
    auto i = b.var_i64("rf_i");
    auto k = b.var_i64("rf_k");
    auto acc = b.var_f64("rf_acc");
    auto dia = b.var_f64("rf_dia");
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.set(acc, rhs[Expr(i)]);
      b.set(dia, b.cf(1.0));
      b.for_(k, rowptr[Expr(i)], rowptr[Expr(i) + b.ci(1)], [&] {
        b.if_else(col[Expr(k)] == Expr(i),
                  [&] { b.set(dia, val[Expr(k)]); },
                  [&] {
                    b.set(acc, Expr(acc) - val[Expr(k)] * u[col[Expr(k)]]);
                  });
      });
      b.store(u, Expr(i), Expr(acc) / Expr(dia));
    });
  }
  b.end_func();

  b.begin_func("relax_coarse", "amg_relax");
  {
    auto i = b.var_i64("rc_i");
    auto k = b.var_i64("rc_k");
    auto acc = b.var_f64("rc_acc");
    auto dia = b.var_f64("rc_dia");
    b.for_(i, b.ci(0), b.ci(ncl), [&] {
      b.set(acc, rc[Expr(i)]);
      b.set(dia, b.cf(1.0));
      b.for_(k, crowptr[Expr(i)], crowptr[Expr(i) + b.ci(1)], [&] {
        b.if_else(ccol[Expr(k)] == Expr(i),
                  [&] { b.set(dia, cval[Expr(k)]); },
                  [&] {
                    b.set(acc, Expr(acc) - cval[Expr(k)] * ec[ccol[Expr(k)]]);
                  });
      });
      b.store(ec, Expr(i), Expr(acc) / Expr(dia));
    });
  }
  b.end_func();

  // --- module amg_cycle -------------------------------------------------------
  b.begin_func("residual", "amg_cycle");
  {
    auto i = b.var_i64("rs_i");
    auto k = b.var_i64("rs_k");
    auto acc = b.var_f64("rs_acc");
    auto nr = b.var_f64("rs_nr");
    b.set(nr, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.set(acc, rhs[Expr(i)]);
      b.for_(k, rowptr[Expr(i)], rowptr[Expr(i) + b.ci(1)], [&] {
        b.set(acc, Expr(acc) - val[Expr(k)] * u[col[Expr(k)]]);
      });
      b.store(r, Expr(i), acc);
      b.set(nr, Expr(nr) + Expr(acc) * Expr(acc));
    });
    b.set(rnorm, sqrt_(nr));
  }
  b.end_func();

  b.begin_func("coarse_correct", "amg_cycle");
  {
    auto i = b.var_i64("cc_i");
    auto k = b.var_i64("cc_k");
    // Restrict: rc = R r (sum over aggregates).
    b.for_(i, b.ci(0), b.ci(ncl), [&] {
      b.store(rc, Expr(i), b.cf(0.0));
      b.store(ec, Expr(i), b.cf(0.0));
    });
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.store(rc, aggv[Expr(i)], rc[aggv[Expr(i)]] + r[Expr(i)]);
    });
    // A few coarse relaxations.
    for (int s = 0; s < 6; ++s) b.call("relax_coarse");
    // Prolong: u += R^T ec.
    b.for_(k, b.ci(0), b.ci(n), [&] {
      b.store(u, Expr(k), u[Expr(k)] + ec[aggv[Expr(k)]]);
    });
  }
  b.end_func();

  // --- module amg_main ----------------------------------------------------------
  b.begin_func("main", "amg_main");
  {
    auto i = b.var_i64("mn_i");
    auto cycles = b.var_i64("mn_cycles");
    // RHS: unit sources as in the microkernel driver.
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.store(rhs, Expr(i), sin_(b.cf(0.37) * to_f64(i)) * b.cf(0.25));
    });
    b.set(cycles, b.ci(0));
    b.call("residual");
    // Adaptive loop: iterate to the target accuracy, which the multigrid
    // correction reaches in either precision (more cycles in single). A
    // cycle cap bounds non-converging configurations; they report their
    // above-target residual and fail the threshold check naturally.
    auto go = b.var_i64("mn_go");
    b.set(go, b.ci(1));
    b.while_(Expr(go) == b.ci(1), [&] {
      b.call("relax_fine");
      b.call("relax_fine");
      b.call("residual");
      b.call("coarse_correct");
      b.call("relax_fine");
      b.call("residual");
      b.set(cycles, Expr(cycles) + b.ci(1));
      b.if_(Expr(rnorm) <= b.cf(kTarget), [&] { b.set(go, b.ci(0)); });
      b.if_(Expr(cycles) >= b.ci(kMaxCycles), [&] { b.set(go, b.ci(0)); });
    });
    b.output(rnorm);           // reported convergence (threshold-checked)
    b.output_i(cycles);
  }
  b.end_func();

  Workload w;
  w.name = "amg";
  w.model = b.take_model();
  // SuperLU-style self-reported verification: the solver must reach its
  // target; rnorm = -1 (non-convergence) fails the check.
  w.threshold_mode = true;
  w.error_output_index = 0;
  w.expected_outputs = 1;
  w.threshold = kTarget;
  return w;
}

}  // namespace fpmix::kernels
