// Tests for precision configurations: structure indexing, hierarchical
// override semantics, union composition, statistics, and the Figure-3 text
// exchange format.
#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hpp"
#include "config/config.hpp"
#include "config/structure.hpp"
#include "config/textio.hpp"
#include "program/layout.hpp"
#include "support/error.hpp"

namespace fpmix::config {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

// Two modules, three functions, blocks with FP candidates and plain code.
program::Program make_test_program() {
  casm::Assembler a;

  a.begin_function("kernel", "solver");
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(1));
  a.emit(Opcode::kMulsd, Operand::xmm(0), Operand::xmm(2));
  auto l = a.new_label();
  a.emit(Opcode::kCmp, Operand::gpr(2), Operand::make_imm(0));
  a.je(l);
  a.emit(Opcode::kDivsd, Operand::xmm(0), Operand::xmm(3));
  a.bind(l);
  a.emit(Opcode::kSubsd, Operand::xmm(0), Operand::xmm(1));
  a.ret();
  a.end_function();

  a.begin_function("rand", "solver");
  a.emit(Opcode::kMulsd, Operand::xmm(0), Operand::xmm(0));
  a.intrin(in::Id::kFloor);
  a.ret();
  a.end_function();

  a.begin_function("main", "main");
  a.emit(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(1));
  a.call("kernel");
  a.call("rand");
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();

  return program::lift(program::relayout(a.finish("main")));
}

TEST(StructureIndex, BuildsHierarchy) {
  const program::Program prog = make_test_program();
  const StructureIndex ix = StructureIndex::build(prog);

  ASSERT_EQ(ix.modules().size(), 2u);
  EXPECT_EQ(ix.modules()[0].name, "solver");
  EXPECT_EQ(ix.modules()[1].name, "main");
  ASSERT_EQ(ix.funcs().size(), 3u);
  EXPECT_EQ(ix.funcs()[0].name, "kernel");

  // Candidates: kernel has addsd, mulsd, divsd, subsd = 4; rand has mulsd +
  // floor intrinsic = 2; main has cvtsi2sd = 1.
  EXPECT_EQ(ix.funcs()[0].candidates.size(), 4u);
  EXPECT_EQ(ix.funcs()[1].candidates.size(), 2u);
  EXPECT_EQ(ix.funcs()[2].candidates.size(), 1u);
  EXPECT_EQ(ix.candidates().size(), 7u);
  EXPECT_EQ(ix.modules()[0].candidates.size(), 6u);

  // output_f64 is FP-touching but not a candidate (no narrowing twin).
  std::size_t out_touching = 0;
  for (const auto& ie : ix.instrs()) {
    if (ie.fp_touching && !ie.candidate) ++out_touching;
  }
  EXPECT_EQ(out_touching, 1u);
}

TEST(StructureIndex, LookupsAndErrors) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  EXPECT_EQ(ix.func_named("rand"), 1u);
  EXPECT_EQ(ix.module_named("main"), 1u);
  EXPECT_THROW(ix.func_named("nope"), ConfigError);
  EXPECT_THROW(ix.module_named("nope"), ConfigError);
  EXPECT_THROW(ix.instr_at(0xdeadbeef), ConfigError);
  const std::uint64_t addr = ix.instrs()[3].addr;
  EXPECT_EQ(ix.instr_at(addr), 3u);
}

TEST(PrecisionConfig, DefaultIsAllDouble) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  const PrecisionConfig cfg;
  EXPECT_TRUE(cfg.is_all_double(ix));
  for (std::size_t i : ix.candidates()) {
    EXPECT_EQ(cfg.resolve(ix, i), Precision::kDouble);
  }
}

TEST(PrecisionConfig, AggregateOverridesChildren) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  PrecisionConfig cfg;

  // Flag one instruction single, then its function double: the function
  // flag wins (paper: aggregate overrides children).
  const std::size_t victim = ix.funcs()[0].candidates[1];
  cfg.set_instr(victim, Precision::kSingle);
  EXPECT_EQ(cfg.resolve(ix, victim), Precision::kSingle);
  cfg.set_func(0, Precision::kDouble);
  EXPECT_EQ(cfg.resolve(ix, victim), Precision::kDouble);
  // Module flag overrides the function flag.
  cfg.set_module(ix.module_named("solver"), Precision::kSingle);
  EXPECT_EQ(cfg.resolve(ix, victim), Precision::kSingle);
  // Clearing restores the child flag.
  cfg.set_module(ix.module_named("solver"), std::nullopt);
  cfg.set_func(0, std::nullopt);
  EXPECT_EQ(cfg.resolve(ix, victim), Precision::kSingle);
}

TEST(PrecisionConfig, BlockFlagCoversItsInstructions) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  PrecisionConfig cfg;
  const std::size_t some_candidate = ix.funcs()[0].candidates[0];
  const std::size_t blk = ix.instrs()[some_candidate].block;
  cfg.set_block(blk, Precision::kSingle);
  for (std::size_t i : ix.blocks()[blk].candidates) {
    EXPECT_EQ(cfg.resolve(ix, i), Precision::kSingle);
  }
  // Instructions in other blocks are untouched.
  for (std::size_t i : ix.candidates()) {
    if (ix.instrs()[i].block != blk) {
      EXPECT_EQ(cfg.resolve(ix, i), Precision::kDouble);
    }
  }
}

TEST(PrecisionConfig, MergeUnion) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  PrecisionConfig a, b;
  a.set_func(0, Precision::kSingle);
  b.set_func(1, Precision::kIgnore);
  b.set_instr(ix.funcs()[2].candidates[0], Precision::kSingle);
  a.merge_union(b);
  EXPECT_EQ(a.func_flag(0), Precision::kSingle);
  EXPECT_EQ(a.func_flag(1), Precision::kIgnore);
  EXPECT_EQ(a.instr_flag(ix.funcs()[2].candidates[0]), Precision::kSingle);
  EXPECT_FALSE(a.is_all_double(ix));
}

TEST(PrecisionConfig, StatsFollowProfile) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  StructureIndex mutable_ix = ix;
  // Synthetic profile: every candidate ran 10x except the ones in function
  // "rand" which ran 1000x.
  std::map<std::uint64_t, std::uint64_t> prof;
  for (const auto& ie : mutable_ix.instrs()) {
    prof[ie.addr] = 10;
  }
  for (std::size_t i : mutable_ix.funcs()[1].candidates) {
    prof[mutable_ix.instrs()[i].addr] = 1000;
  }
  mutable_ix.apply_profile(prof);

  PrecisionConfig cfg;
  cfg.set_func(1, Precision::kSingle);  // replace "rand" only
  const ReplacementStats st = replacement_stats(mutable_ix, cfg);
  EXPECT_EQ(st.candidates, 7u);
  EXPECT_EQ(st.replaced_static, 2u);
  EXPECT_NEAR(st.static_pct, 100.0 * 2 / 7, 1e-9);
  EXPECT_EQ(st.exec_total, 5u * 10 + 2u * 1000);
  EXPECT_EQ(st.exec_replaced, 2000u);
  EXPECT_NEAR(st.dynamic_pct, 100.0 * 2000 / 2050, 1e-9);
}

// ---------------------------------------------------------------------------
// Text format.

TEST(TextFormat, RoundTrip) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  PrecisionConfig cfg;
  cfg.set_module(0, Precision::kSingle);
  cfg.set_func(1, Precision::kIgnore);
  cfg.set_instr(ix.funcs()[0].candidates[2], Precision::kDouble);
  const std::size_t blk = ix.instrs()[ix.funcs()[0].candidates[0]].block;
  cfg.set_block(blk, Precision::kSingle);

  const std::string text = to_text(ix, cfg);
  const PrecisionConfig parsed = from_text(ix, text);
  EXPECT_EQ(parsed, cfg);
  // Round-trip is a fixed point of serialization too.
  EXPECT_EQ(to_text(ix, parsed), text);
}

TEST(TextFormat, EmptyConfigRoundTrips) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  const PrecisionConfig cfg;
  EXPECT_EQ(from_text(ix, to_text(ix, cfg)), cfg);
}

TEST(TextFormat, LooksLikeFigure3) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  PrecisionConfig cfg;
  cfg.set_func(2, Precision::kSingle);
  const std::string text = to_text(ix, cfg);
  EXPECT_NE(text.find("MODULE solver"), std::string::npos);
  EXPECT_NE(text.find("FUNC01: kernel"), std::string::npos);
  EXPECT_NE(text.find("BBLK"), std::string::npos);
  EXPECT_NE(text.find("INSN"), std::string::npos);
  EXPECT_NE(text.find("\"addsd xmm0, xmm1\""), std::string::npos);
  // The flag character sits in column 1 of the flagged FUNC line.
  const auto pos = text.find("FUNC03: main");
  ASSERT_NE(pos, std::string::npos);
  const auto line_start = text.rfind('\n', pos) + 1;
  EXPECT_EQ(text[line_start], 's');
}

TEST(TextFormat, ParserRejectsGarbage) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  EXPECT_THROW(from_text(ix, "x MODULE solver\n"), ConfigError);      // flag
  EXPECT_THROW(from_text(ix, "  MODULE nope\n"), ConfigError);        // name
  EXPECT_THROW(from_text(ix, "  FUNC01: kernel\n"), ConfigError);     // scope
  EXPECT_THROW(from_text(ix, "  WIDGET foo\n"), ConfigError);         // entity
  EXPECT_THROW(from_text(ix, "  MODULE solver\n  FUNC01: main\n"),
               ConfigError);  // main is not in module solver
  EXPECT_THROW(
      from_text(ix, "  MODULE solver\n  FUNC01: kernel\n  BBLK01: 0x1\n"),
      ConfigError);  // unknown block address
}

TEST(CanonicalKey, IdentifiesConfigsStably) {
  PrecisionConfig a;
  a.set_module(3, Precision::kSingle);
  a.set_instr(7, Precision::kIgnore);
  EXPECT_EQ(a.canonical_key(), "m3=s;i7=i;");

  // Equal configs hash equal; the digest is pinned to the serialization,
  // not the insertion order.
  PrecisionConfig b;
  b.set_instr(7, Precision::kIgnore);
  b.set_module(3, Precision::kSingle);
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  EXPECT_EQ(a.stable_hash(), b.stable_hash());

  // Any flag difference changes the key -- including an explicit 'd', which
  // shields a child from aggregate overrides and is therefore meaningful.
  PrecisionConfig c = a;
  c.set_instr(9, Precision::kDouble);
  EXPECT_EQ(c.canonical_key(), "m3=s;i7=i;i9=d;");
  EXPECT_NE(c.stable_hash(), a.stable_hash());

  // Id spaces do not collide: module 1 vs func 1 vs block 1 vs instr 1.
  PrecisionConfig m, f, bl, in;
  m.set_module(1, Precision::kSingle);
  f.set_func(1, Precision::kSingle);
  bl.set_block(1, Precision::kSingle);
  in.set_instr(1, Precision::kSingle);
  std::set<std::string> keys{m.canonical_key(), f.canonical_key(),
                             bl.canonical_key(), in.canonical_key()};
  EXPECT_EQ(keys.size(), 4u);

  EXPECT_EQ(PrecisionConfig{}.canonical_key(), "");
}

TEST(CanonicalKey, FromCanonicalKeyRoundTrips) {
  // The canonical key is also the wire format trial configs cross the
  // sandboxed-worker process boundary in; parse(serialize(cfg)) must be
  // the identity at every level.
  PrecisionConfig a;
  a.set_module(3, Precision::kSingle);
  a.set_func(11, Precision::kDouble);
  a.set_block(42, Precision::kSingle);
  a.set_instr(7, Precision::kIgnore);
  a.set_instr(1234, Precision::kSingle);

  PrecisionConfig back;
  ASSERT_TRUE(PrecisionConfig::from_canonical_key(a.canonical_key(), &back));
  EXPECT_EQ(back, a);
  EXPECT_EQ(back.canonical_key(), a.canonical_key());

  // The empty key is the default (all-double) config.
  PrecisionConfig empty;
  ASSERT_TRUE(PrecisionConfig::from_canonical_key("", &empty));
  EXPECT_EQ(empty, PrecisionConfig{});

  // Malformed inputs are rejected, never mis-parsed.
  PrecisionConfig junk;
  EXPECT_FALSE(PrecisionConfig::from_canonical_key("m=s;", &junk));
  EXPECT_FALSE(PrecisionConfig::from_canonical_key("m3=x;", &junk));
  EXPECT_FALSE(PrecisionConfig::from_canonical_key("m3=s", &junk));
  EXPECT_FALSE(PrecisionConfig::from_canonical_key("q3=s;", &junk));
  EXPECT_FALSE(PrecisionConfig::from_canonical_key("m3s;", &junk));
  EXPECT_FALSE(PrecisionConfig::from_canonical_key("m3=", &junk));
}

TEST(TextFormat, CommentsAndBlanksIgnored) {
  const StructureIndex ix = StructureIndex::build(make_test_program());
  const std::string text =
      "# header comment\n"
      "\n"
      "  MODULE solver\n"
      "  # another comment\n"
      "s   FUNC01: kernel\n";
  const PrecisionConfig cfg = from_text(ix, text);
  EXPECT_EQ(cfg.func_flag(0), Precision::kSingle);
}

}  // namespace
}  // namespace fpmix::config
