#include "config/textio.hpp"

#include "arch/disasm.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::config {
namespace {

std::string flag_prefix(std::optional<Precision> p) {
  if (!p.has_value()) return " ";
  return std::string(1, precision_flag(*p));
}

}  // namespace

std::string to_text(const StructureIndex& index, const PrecisionConfig& cfg) {
  std::string out = "# fpmix precision configuration\n";
  std::size_t func_no = 0;
  std::size_t block_no = 0;
  std::size_t insn_no = 0;
  for (std::size_t mi = 0; mi < index.modules().size(); ++mi) {
    const ModuleEntry& m = index.modules()[mi];
    out += flag_prefix(cfg.module_flag(mi));
    out += strformat("  MODULE %s\n", m.name.c_str());
    for (std::size_t fi : m.funcs) {
      const FuncEntry& f = index.funcs()[fi];
      ++func_no;
      out += flag_prefix(cfg.func_flag(fi));
      out += strformat("    FUNC%02zu: %s\n", func_no, f.name.c_str());
      for (std::size_t bi : f.blocks) {
        const BlockEntry& b = index.blocks()[bi];
        if (b.candidates.empty()) continue;  // keep files compact
        ++block_no;
        out += flag_prefix(cfg.block_flag(bi));
        out += strformat("      BBLK%02zu: 0x%llx\n", block_no,
                         static_cast<unsigned long long>(b.head_addr));
        for (std::size_t ii : b.candidates) {
          const InstrEntry& ins = index.instrs()[ii];
          ++insn_no;
          out += flag_prefix(cfg.instr_flag(ii));
          out += strformat(
              "        INSN%02zu: %s\n", insn_no,
              arch::instr_to_config_string(ins.instr).c_str());
        }
      }
    }
  }
  return out;
}

PrecisionConfig from_text(const StructureIndex& index,
                          std::string_view text) {
  PrecisionConfig cfg;
  bool have_module = false, have_func = false, have_block = false;
  std::size_t cur_module = 0, cur_func = 0, cur_block = 0;

  int lineno = 0;
  for (std::string_view raw : split_lines(text)) {
    ++lineno;
    if (raw.empty()) continue;

    // Column 1 is the flag position.
    std::optional<Precision> flag;
    std::string_view rest = raw;
    if (raw[0] != ' ' && raw[0] != '\t' && raw[0] != '#') {
      flag = precision_from_flag(raw[0]);
      if (!flag.has_value()) {
        throw ConfigError(strformat("line %d: unknown flag character '%c'",
                                    lineno, raw[0]));
      }
      rest = raw.substr(1);
    }
    const std::string_view body = trim(rest);
    if (body.empty() || body[0] == '#') continue;

    const auto fields = split_fields(body);
    FPMIX_CHECK(!fields.empty());
    const std::string_view head = fields[0];

    if (head == "MODULE") {
      if (fields.size() < 2) {
        throw ConfigError(strformat("line %d: MODULE needs a name", lineno));
      }
      cur_module = index.module_named(fields[1]);
      have_module = true;
      have_func = have_block = false;
      if (flag) cfg.set_module(cur_module, flag);
    } else if (starts_with(head, "FUNC")) {
      if (fields.size() < 2) {
        throw ConfigError(strformat("line %d: FUNC needs a name", lineno));
      }
      cur_func = index.func_named(fields[1]);
      if (!have_module ||
          index.funcs()[cur_func].module != cur_module) {
        throw ConfigError(strformat(
            "line %d: function %.*s is not in the current module", lineno,
            static_cast<int>(fields[1].size()), fields[1].data()));
      }
      have_func = true;
      have_block = false;
      if (flag) cfg.set_func(cur_func, flag);
    } else if (starts_with(head, "BBLK")) {
      if (fields.size() < 2) {
        throw ConfigError(strformat("line %d: BBLK needs an address",
                                    lineno));
      }
      std::uint64_t addr = 0;
      if (!parse_hex_u64(fields[1], &addr)) {
        throw ConfigError(strformat("line %d: bad block address", lineno));
      }
      if (!have_func) {
        throw ConfigError(strformat("line %d: BBLK outside a FUNC", lineno));
      }
      const std::size_t head_instr = index.instr_at(addr);
      cur_block = index.instrs()[head_instr].block;
      if (index.blocks()[cur_block].head_addr != addr ||
          index.blocks()[cur_block].func != cur_func) {
        throw ConfigError(strformat(
            "line %d: 0x%llx is not a block head of the current function",
            lineno, static_cast<unsigned long long>(addr)));
      }
      have_block = true;
      if (flag) cfg.set_block(cur_block, flag);
    } else if (starts_with(head, "INSN")) {
      if (fields.size() < 2) {
        throw ConfigError(strformat("line %d: INSN needs an address",
                                    lineno));
      }
      std::uint64_t addr = 0;
      if (!parse_hex_u64(fields[1], &addr)) {
        throw ConfigError(strformat("line %d: bad instruction address",
                                    lineno));
      }
      if (!have_block) {
        throw ConfigError(strformat("line %d: INSN outside a BBLK", lineno));
      }
      const std::size_t ii = index.instr_at(addr);
      if (index.instrs()[ii].block != cur_block) {
        throw ConfigError(strformat(
            "line %d: instruction 0x%llx is not in the current block",
            lineno, static_cast<unsigned long long>(addr)));
      }
      if (flag) cfg.set_instr(ii, flag);
    } else {
      throw ConfigError(strformat("line %d: unrecognized entity '%.*s'",
                                  lineno, static_cast<int>(head.size()),
                                  head.data()));
    }
  }
  return cfg;
}

}  // namespace fpmix::config
