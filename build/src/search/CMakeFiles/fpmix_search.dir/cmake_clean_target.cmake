file(REMOVE_RECURSE
  "libfpmix_search.a"
)
