file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_refinement.dir/bench_fig12_refinement.cpp.o"
  "CMakeFiles/bench_fig12_refinement.dir/bench_fig12_refinement.cpp.o.d"
  "bench_fig12_refinement"
  "bench_fig12_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
