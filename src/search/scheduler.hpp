// Scheduler: the client half of the distributed search service.
//
// Fans trial batches out across a fleet of runner_serve endpoints with
// many trials outstanding per connection, picking the least-loaded shard
// (in-flight trials per worker) for each dispatch. The scheduler is the
// drop-in remote counterpart of runner::WorkerPool::run_batch: same job
// type, same outcome type, same contract (every job gets an outcome, in
// job order), so the search core stays executor-agnostic.
//
// Endpoint failure handling mirrors the pool's worker supervision one
// level up. A dead connection is a fault event, not a verdict: its
// in-flight trials are rerouted to surviving shards, a trial that rides
// too many dying endpoints is quarantined as kCrash (the same breaker
// taxonomy as a crash-looping config), and the endpoint itself is retried
// with jittered exponential backoff until a consecutive-failure budget
// marks it lost. When every endpoint is lost, outcomes come back with
// served == false and the caller (the search) degrades to in-process
// evaluation -- availability over distribution, never a wrong verdict.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "runner/worker_pool.hpp"
#include "search/search.hpp"  // EndpointMetrics
#include "support/backoff.hpp"

namespace fpmix::search {

struct SchedulerOptions {
  std::vector<net::Endpoint> endpoints;
  /// Session handshake template (workload id, evaluation semantics, shard
  /// cache flag, search fingerprint, fault campaign).
  net::HelloMsg hello;
  int connect_timeout_ms = 2000;
  /// The ack can lag on a cold server (it builds the workload and runs the
  /// reference computation inside the handshake).
  int hello_timeout_ms = 60000;
  /// Consecutive connect/session failures before an endpoint is lost.
  std::uint32_t max_endpoint_failures = 3;
  /// Endpoint deaths one trial may ride before it is quarantined as
  /// kCrash (the scheduler-level crash-loop breaker).
  std::uint32_t max_trial_crashes = 3;
  /// Local verifier fingerprint; a shard whose HelloAck disagrees is lost
  /// immediately (semantic mismatch never heals by reconnecting).
  std::string verifier_fp;
  BackoffPolicy reconnect_backoff;
  /// Heartbeat period in milliseconds; 0 disables. While a batch runs the
  /// scheduler pings every live shard this often and tracks round-trip
  /// times, so a stalled endpoint is distinguished from a merely slow one.
  std::uint64_t heartbeat_ms = 0;
  /// Consecutive heartbeats an endpoint may leave unanswered before it is
  /// declared dead: its session closes, its trial leases expire, and its
  /// in-flight trials re-dispatch to surviving shards.
  std::uint32_t missed_beat_limit = 3;
  /// Anti-entropy gossip period in milliseconds; 0 disables. While a batch
  /// runs, every live shard is asked for a digest of its retained journal
  /// shard this often; a digest that disagrees with the scheduler's own
  /// committed record set triggers a re-stream of exactly the missing seq
  /// range (or the full set when the divergence is interior), so a
  /// restarted or damaged endpoint heals continuously instead of waiting
  /// for the next adoption.
  std::uint64_t gossip_ms = 0;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& opts);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Dials every endpoint and runs the handshakes. Returns the number of
  /// live sessions (0 means the caller should degrade to local execution).
  std::size_t connect();

  /// Total workers across live endpoints (the search sizes batches to it).
  std::size_t capacity() const;
  bool any_live() const;

  /// Evaluates one batch remotely. Blocks until every job has an outcome:
  /// a remote verdict, a quarantine verdict (too many endpoint deaths), or
  /// served == false when the whole fleet is lost.
  std::vector<runner::TrialOutcome> run_batch(
      const std::vector<runner::TrialJob>& jobs);

  /// Ships a verdict this client obtained elsewhere (local fallback,
  /// journal replay) to every live shard's cache. No-op unless the session
  /// was opened with shard_cache.
  void broadcast_insert(const std::string& key, bool passed,
                        std::uint8_t failure_class,
                        const std::string& failure);

  /// Replicates one CRC-sealed journal line to every live shard, as the
  /// local journal commits it. Advisory: a send failure downs that shard
  /// (the line survives on the others and in the local file).
  void stream_journal(const std::string& line);

  /// Fetches every live endpoint's retained journal shard and appends all
  /// lines (unreconciled; duplicates across endpoints expected) to *lines.
  /// Returns the number of shards that answered. Call before dispatching
  /// any trials -- the fetch is synchronous per session.
  std::size_t fetch_fleet_journal(std::vector<std::string>* lines);

  /// Runs one synchronous gossip round right now: asks every live shard
  /// for a digest, waits (bounded) for each answer, and re-streams what
  /// the comparison shows missing. Returns the number of records
  /// re-streamed. run_batch gossips on its own period; this entry point is
  /// for healing between batches (and for tests).
  std::size_t gossip_now(int timeout_ms = 5000);

  std::vector<EndpointMetrics> endpoint_metrics() const;

 private:
  struct Shard {
    net::Endpoint ep;
    std::unique_ptr<net::EndpointClient> client;
    Backoff backoff;
    std::uint64_t retry_at_ms = 0;
    std::uint32_t consecutive_failures = 0;
    bool lost = false;
    bool ever_connected = false;
    EndpointMetrics m;
    std::map<std::uint64_t, std::size_t> inflight;  // ticket -> job index
    // Heartbeat state: pings outstanding (nonce -> local send time, ns),
    // the beats the current silence has lasted, and the RTT sample log.
    std::map<std::uint64_t, std::uint64_t> pending_pings;
    std::uint64_t next_nonce = 1;
    std::uint64_t last_ping_ms = 0;
    std::uint32_t unanswered = 0;
    std::vector<std::uint64_t> rtt_us;
    // Gossip state: one digest request outstanding at a time per shard.
    bool digest_inflight = false;
    std::uint64_t last_gossip_ms = 0;
  };

  bool try_connect(Shard* s);
  /// Compares an endpoint's shard digest against the locally committed
  /// record set and re-streams what the endpoint is missing (counted in
  /// the shard's records_repaired). False when a re-stream send failed --
  /// the caller downs the shard.
  bool heal_from_digest(Shard* s, const net::ShardDigestMsg& d);
  void shard_down(Shard* s);
  /// Endpoint-failure accounting shared by every failure path: counts a
  /// circuit-breaker trip on the closed->open transition, arms the jittered
  /// backoff (the breaker's open interval; reconnect_due half-opens it with
  /// a probe), and marks the shard lost past the failure budget.
  void note_failure(Shard* s);
  void reconnect_due();
  Shard* least_loaded();

  SchedulerOptions opts_;
  std::vector<Shard> shards_;
  /// Every CRC-sealed line this scheduler has committed (streamed or
  /// adopted), keyed by sealed seq -- the reference set gossip digests are
  /// compared against. Mirrors the local journal file, so its footprint is
  /// the search history the scheduler already retains on disk.
  std::map<std::uint64_t, std::string> streamed_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace fpmix::search
