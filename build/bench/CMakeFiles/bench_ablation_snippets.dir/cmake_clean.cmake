file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_snippets.dir/bench_ablation_snippets.cpp.o"
  "CMakeFiles/bench_ablation_snippets.dir/bench_ablation_snippets.cpp.o.d"
  "bench_ablation_snippets"
  "bench_ablation_snippets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_snippets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
