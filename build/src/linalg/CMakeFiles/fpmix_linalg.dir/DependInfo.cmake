
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/banded.cpp" "src/linalg/CMakeFiles/fpmix_linalg.dir/banded.cpp.o" "gcc" "src/linalg/CMakeFiles/fpmix_linalg.dir/banded.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/linalg/CMakeFiles/fpmix_linalg.dir/csr.cpp.o" "gcc" "src/linalg/CMakeFiles/fpmix_linalg.dir/csr.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/linalg/CMakeFiles/fpmix_linalg.dir/dense.cpp.o" "gcc" "src/linalg/CMakeFiles/fpmix_linalg.dir/dense.cpp.o.d"
  "/root/repo/src/linalg/matrix_market.cpp" "src/linalg/CMakeFiles/fpmix_linalg.dir/matrix_market.cpp.o" "gcc" "src/linalg/CMakeFiles/fpmix_linalg.dir/matrix_market.cpp.o.d"
  "/root/repo/src/linalg/refine.cpp" "src/linalg/CMakeFiles/fpmix_linalg.dir/refine.cpp.o" "gcc" "src/linalg/CMakeFiles/fpmix_linalg.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fpmix_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
