file(REMOVE_RECURSE
  "CMakeFiles/fpmix_config.dir/config.cpp.o"
  "CMakeFiles/fpmix_config.dir/config.cpp.o.d"
  "CMakeFiles/fpmix_config.dir/structure.cpp.o"
  "CMakeFiles/fpmix_config.dir/structure.cpp.o.d"
  "CMakeFiles/fpmix_config.dir/textio.cpp.o"
  "CMakeFiles/fpmix_config.dir/textio.cpp.o.d"
  "libfpmix_config.a"
  "libfpmix_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
