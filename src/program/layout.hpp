// Layout: the binary-rewriter half of the patching pipeline.
//
// Takes a (possibly patched) structured Program and emits a fresh Image:
// assigns addresses to every block, materializes fall-through edges that are
// no longer physically adjacent as explicit jmp instructions, resolves
// symbolic branch targets and call targets to absolute addresses, and
// re-encodes everything. This is the role Dyninst's binary rewriter plays in
// Section 2.4 of the paper.
#pragma once

#include "program/image.hpp"
#include "program/program.hpp"

namespace fpmix::program {

/// Produces a runnable image. The input program is not modified; instruction
/// `origin` fields are preserved into the emitted code so profiles of the
/// output can be attributed to original-program addresses.
Image relayout(const Program& prog);

/// Round-trip helper: lift + relayout, used by tests to show the pipeline is
/// faithful (a lifted-and-relaid image executes identically).
Image rewrite_identity(const Image& image);

}  // namespace fpmix::program
