// The paper's NAS experiment as a command-line tool: run the automatic
// mixed-precision search on one benchmark analogue and write the
// recommended configuration file.
//
// Usage:  nas_search <ep|cg|ft|mg|bt|lu|sp|amg> [S|W|A|C] [--trace]
//                    [--refine] [--out FILE]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "config/textio.hpp"
#include "kernels/workload.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "support/timer.hpp"

using namespace fpmix;

int main(int argc, char** argv) {
  std::string bench = argc > 1 ? argv[1] : "ep";
  char cls = 'W';
  bool trace = false;
  bool refine = false;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") trace = true;
    else if (arg == "--refine") refine = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg.size() == 1) cls = arg[0];
  }

  kernels::Workload w;
  if (bench == "ep") w = kernels::make_ep(cls);
  else if (bench == "cg") w = kernels::make_cg(cls);
  else if (bench == "ft") w = kernels::make_ft(cls);
  else if (bench == "mg") w = kernels::make_mg(cls);
  else if (bench == "bt") w = kernels::make_bt(cls);
  else if (bench == "lu") w = kernels::make_lu(cls);
  else if (bench == "sp") w = kernels::make_sp(cls);
  else if (bench == "amg") w = kernels::make_amg();
  else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 2;
  }

  std::printf("searching %s ...\n", w.name.c_str());
  const program::Image img = kernels::build_image(w);
  auto index = config::StructureIndex::build(program::lift(img));
  const auto verifier = kernels::make_verifier(w, img);

  search::SearchOptions opts;
  opts.keep_log = true;
  opts.refine_composition = refine;
  Timer t;
  const search::SearchResult res =
      search::run_search(img, &index, *verifier, opts);

  if (trace) {
    std::printf("\n-- search trace --\n");
    for (const auto& rec : res.trace) {
      std::printf("  %-40s %4zu cand  %s%s%s\n", rec.unit.c_str(),
                  rec.candidates, rec.passed ? "PASS" : "fail",
                  rec.failure.empty() ? "" : ": ",
                  rec.failure.c_str());
    }
  }

  std::printf("\n%s: %zu candidates, %zu configurations tested in %.1fs\n",
              w.name.c_str(), res.candidates, res.configs_tested,
              t.elapsed_seconds());
  std::printf("final configuration: %.1f%% static / %.1f%% dynamic "
              "replacement, composition %s\n",
              res.stats.static_pct, res.stats.dynamic_pct,
              res.final_passed ? "PASSES" : "FAILS");
  if (res.refined) {
    std::printf("refined composition: %.1f%% static / %.1f%% dynamic, "
                "verified passing\n",
                res.refined_stats.static_pct, res.refined_stats.dynamic_pct);
  }

  const config::PrecisionConfig& best =
      (res.refined && !res.final_passed) ? res.refined_config
                                         : res.final_config;
  const std::string text = config::to_text(index, best);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << text;
    std::printf("configuration written to %s\n", out_path.c_str());
  } else {
    std::printf("\n%s", text.c_str());
  }
  return 0;
}
