#include "verify/trial_builder.hpp"

#include <utility>

#include "support/hash.hpp"
#include "support/timer.hpp"

namespace fpmix::verify {

TrialBuilder::TrialBuilder(const program::Image& original,
                           const config::StructureIndex& index)
    : TrialBuilder(original, index, Options()) {}

TrialBuilder::TrialBuilder(const program::Image& original,
                           const config::StructureIndex& index,
                           Options options)
    : patcher_(original, index, options.instrument),
      cache_(options.image_cache_capacity),
      fingerprint_(image_fingerprint(original)) {}

TrialBuilder::Built TrialBuilder::build(const config::PrecisionConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  Built out;
  const std::string key = cfg.canonical_key();
  const std::uint64_t hash = fnv1a64(key);

  Timer timer;
  if (const ImageCache::Entry* hit = cache_.find(fingerprint_, hash, key)) {
    out.exec = hit->exec;
    out.stats = hit->stats;
    out.cache_hit = true;
    out.patch_ns = timer.elapsed_ns();
    out.funcs_total =
        static_cast<std::uint32_t>(hit->exec->segments().size());
    out.funcs_reused = out.funcs_total;
    if (have_cold_) {
      out.patch_saved_ns = cold_patch_ns_ > out.patch_ns
                               ? cold_patch_ns_ - out.patch_ns
                               : 0;
      out.predecode_saved_ns = cold_predecode_ns_;
    }
  } else {
    timer.reset();
    instrument::IncrementalPatcher::Build b = patcher_.patch(cfg);
    out.patch_ns = timer.elapsed_ns();
    out.stats = b.stats;
    out.funcs_reused = static_cast<std::uint32_t>(b.funcs_reused);
    out.funcs_total = static_cast<std::uint32_t>(b.funcs_total);

    timer.reset();
    out.exec = patcher_.predecode(std::move(b));
    out.predecode_ns = timer.elapsed_ns();

    if (!have_cold_) {
      have_cold_ = true;
      cold_patch_ns_ = out.patch_ns;
      cold_predecode_ns_ = out.predecode_ns;
    } else {
      out.patch_saved_ns = cold_patch_ns_ > out.patch_ns
                               ? cold_patch_ns_ - out.patch_ns
                               : 0;
      out.predecode_saved_ns = cold_predecode_ns_ > out.predecode_ns
                                   ? cold_predecode_ns_ - out.predecode_ns
                                   : 0;
    }
    cache_.insert(fingerprint_, hash, key,
                  ImageCache::Entry{out.exec, out.stats});
  }

  totals_.image_cache_hits = cache_.hits();
  totals_.image_cache_misses = cache_.misses();
  totals_.variant_hits = patcher_.variant_hits();
  totals_.variant_misses = patcher_.variant_misses();
  totals_.patch_saved_ns += out.patch_saved_ns;
  totals_.predecode_saved_ns += out.predecode_saved_ns;
  totals_.funcs_reused += out.funcs_reused;
  totals_.funcs_patched += out.funcs_total - out.funcs_reused;
  return out;
}

TrialBuilder::Stats TrialBuilder::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

}  // namespace fpmix::verify
