# Empty dependencies file for bench_fig10_search.
# This may be replaced when dependencies are built.
