// The automatic breadth-first configuration search (Section 2.2).
//
// Strategy: test whole modules first; descend into functions, then (via
// optional binary splitting) block partitions, blocks, instruction
// partitions and finally single instructions -- but only where the parent
// failed verification. A structure that passes is recorded and never
// subdivided, so the search finds "the coarsest granularity at which each
// part of the program can successfully be replaced by single precision."
//
// Both of the paper's optimizations are implemented and can be toggled for
// the ablation benchmarks:
//   1. binary splitting of large functions/blocks into two equally sized
//      partitions instead of enqueueing every child at once;
//   2. prioritisation by profiled execution weight, so heavy replacements
//      are ruled in or out early.
//
// Evaluations are independent (patch + run + verify on private state) and
// run on a thread pool when num_threads > 1.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "config/config.hpp"
#include "program/image.hpp"
#include "support/fault.hpp"
#include "verify/evaluate.hpp"
#include "verify/verifier.hpp"

namespace fpmix::search {

/// Coarsest granularity the search descends to (the paper: "the search can
/// also be configured to stop at basic blocks or functions, allowing for
/// faster convergence with coarser results").
enum class StopLevel : std::uint8_t {
  kModule = 0,
  kFunction = 1,
  kBlock = 2,
  kInstruction = 3,
};

struct SearchOptions {
  StopLevel stop_level = StopLevel::kInstruction;
  bool binary_split = true;           // optimization 1 (Section 2.2)
  bool prioritize_by_profile = true;  // optimization 2 (Section 2.2)
  std::size_t num_threads = 1;
  /// Structures with at least this many candidates are binary-split
  /// instead of expanded child-by-child.
  std::size_t min_split_size = 4;
  std::uint64_t max_instructions_per_run = 1ull << 32;
  bool keep_log = true;

  /// VM execution engine for every trial run (and the profiling run). All
  /// engines are bit-identical -- journals, verdicts and profiles do not
  /// depend on this choice, and it is deliberately NOT part of the search
  /// fingerprint, so a journal written under one engine resumes under
  /// another. kJit degrades to kMicroOp (with a warning and
  /// SearchMetrics::jit_downgraded) on hosts that cannot run compiled
  /// code; remote endpoints may do the same per-endpoint.
  vm::Engine engine = vm::Engine::kMicroOp;

  /// Second search phase (the paper's Section 3.1 suggestion: "a second
  /// search phase may be useful, to determine the largest subset of
  /// individually-passing instruction replacements that may be composed to
  /// create a passing final configuration"). When the union of passing
  /// units fails verification, units are re-added greedily in decreasing
  /// profile-weight order, dropping any unit whose addition breaks the
  /// composition.
  bool refine_composition = false;

  // ---- Crash safety / incrementality --------------------------------------
  /// Append-only JSONL trial journal. When non-empty, every completed trial
  /// is recorded here as it finishes, and (with `resume`) an existing
  /// journal is replayed before searching so already-evaluated
  /// configurations are served from cache instead of re-running the
  /// verifier. See trial_cache.hpp for the record format.
  std::string journal_path;
  /// Replay an existing journal at `journal_path` before searching. Off, an
  /// existing journal is only appended to, never consulted.
  bool resume = true;

  // ---- Trial supervision ---------------------------------------------------
  /// Wall-clock deadline per trial run, in milliseconds; 0 disables. A
  /// configuration that spins past it is classified FailureClass::kTimeout
  /// instead of hanging the search (the instruction budget still applies).
  /// Also applied to the initial profiling run.
  std::uint64_t deadline_ms = 0;
  /// Extra evaluation attempts per trial for flaky-verdict tolerance. With
  /// N > 0 a trial is evaluated until one verdict holds a strict majority
  /// of the N+1 allowed attempts (ties fail); trials whose attempts
  /// disagreed are reported in SearchResult::quarantine.
  std::uint32_t max_retries = 0;
  /// Deterministic fault campaign for robustness testing; nullptr runs
  /// clean. Folded into the search fingerprint so faulted journals never
  /// contaminate fault-free runs. See support/fault.hpp.
  const fault::Injector* fault_injector = nullptr;

  // ---- Process isolation ---------------------------------------------------
  /// Execute every trial in a forked, rlimit-capped worker process
  /// (src/runner): a trial that SIGSEGVs, OOMs or hard-hangs kills its
  /// worker, never the search. Worker deaths are fault events, not
  /// verdicts -- the trial is retried on a fresh worker, and a config that
  /// kills max_trial_crashes workers in a row is quarantined as failing.
  /// Degrades to the in-process path (with a warning and
  /// SearchMetrics::isolation_degraded) on platforms without fork. The
  /// driver stays single-threaded in this mode; the workers are the
  /// parallelism, so num_threads doubles as the worker count unless
  /// num_workers overrides it.
  bool isolate_trials = false;
  /// Worker processes in isolate mode; 0 uses num_threads.
  std::size_t num_workers = 0;
  /// Per-config crash-loop circuit breaker threshold (see isolate_trials).
  std::uint32_t max_trial_crashes = 3;
  /// RLIMIT_AS each worker applies to itself, in MiB; 0 leaves the address
  /// space uncapped. Ignored under AddressSanitizer.
  std::uint64_t worker_rlimit_as_mb = 512;
  /// fsync the journal file after each sealed record, making every
  /// committed trial power-loss durable. Forced on when isolate_trials is
  /// set (a crashing fleet is exactly when the journal must survive).
  bool journal_fsync = false;

  // ---- Incremental trial pipeline ------------------------------------------
  /// Reuse patch + predecode work across trials through a shared
  /// verify::TrialBuilder: per-function micro-op variant caching, spliced
  /// segment predecode, and an LRU of whole built images -- used by the
  /// in-process path and inherited by each long-lived sandboxed worker.
  /// Never changes results (incremental builds are bit-identical to
  /// from-scratch builds); disable only for A/B benchmarking.
  bool image_cache = true;

  // ---- Distributed execution -----------------------------------------------
  /// runner_serve endpoints ("host:port"). Non-empty routes trial
  /// evaluation through the network scheduler instead of local execution
  /// (isolate_trials is then ignored; the endpoints sandbox trials in
  /// their own pools). Trials no endpoint can serve fall back to
  /// in-process evaluation, so the search always completes.
  std::vector<std::string> endpoints;
  /// Workload identity announced in the session handshake; the endpoints
  /// build it on their side, so it must denote the same image and
  /// verifier as the ones passed to run_search (the handshake
  /// cross-checks the verifier fingerprint and drops mismatched
  /// endpoints).
  std::string remote_bench;
  char remote_class = 'W';
  /// Consult and fill the fleet-wide shard trial cache, so N schedulers
  /// sharing a fleet evaluate every configuration at most once.
  bool shard_cache = false;
  std::uint64_t connect_timeout_ms = 2000;
  /// Handshake-ack budget; cold endpoints build the workload and run the
  /// reference computation inside the handshake.
  std::uint64_t hello_timeout_ms = 60000;
  /// Consecutive failures before an endpoint is abandoned for the run.
  std::uint32_t max_endpoint_failures = 3;
  /// Heartbeat period: the scheduler pings every live endpoint this often
  /// and tracks RTT; an endpoint missing 3 consecutive beats is declared
  /// dead (its leases expire and its trials re-dispatch). 0 disables
  /// heartbeats (liveness then rests on send failures alone).
  std::uint64_t heartbeat_ms = 1000;
  /// Anti-entropy gossip period: the scheduler asks every live endpoint
  /// for a digest of its retained journal shard this often and re-streams
  /// whatever the digest shows missing, so a restarted or disk-damaged
  /// endpoint converges back to the full replica without waiting for an
  /// adoption. 0 disables gossip.
  std::uint64_t gossip_ms = 1000;
  /// Reconnect backoff cap, in milliseconds (the jittered exponential
  /// circuit breaker's longest open interval before a half-open probe).
  std::uint64_t reconnect_max_ms = 200;
  /// Adopt a running search from the fleet: before replaying the local
  /// journal, fetch every endpoint's replicated journal shard, reconcile
  /// the union by sequence number + CRC, and rewrite journal_path with it.
  /// A fresh scheduler started with this flag resumes a SIGKILLed
  /// predecessor's search byte-identically. Requires journal_path and
  /// endpoints.
  bool adopt_fleet = false;
  /// Record per-trial timing fields (eval_ns, saved_ns, cache flags) in
  /// the journal. Off, they are zeroed so two runs of the same search --
  /// local or distributed, any fleet shape -- produce byte-identical
  /// journals.
  bool journal_timings = true;

  // ---- Observability -------------------------------------------------------
  /// Emit progress lines (trials/sec, cache hit rate, queue depth, ETA)
  /// through support/log at info level while the search runs.
  bool progress_log = false;
  /// Trials between progress lines.
  std::size_t progress_every = 16;
};

/// One tested configuration, for logs and the search trace.
struct TestRecord {
  std::string unit;        // e.g. "module solver", "func conj_grad[3..5]"
  std::string key;         // stable config digest (journal/cache identity)
  std::size_t candidates;  // candidate instructions the unit covers
  bool passed;
  bool cached = false;       // served from the trial cache, not evaluated
  std::uint64_t eval_ns = 0; // live evaluation wall time (0 when cached)
  std::string failure;       // trap/verification detail when failed
};

/// Per-endpoint accounting of a distributed run (SearchOptions::endpoints).
struct EndpointMetrics {
  std::string address;
  std::uint32_t workers = 0;     // pool width behind the endpoint
  std::size_t trials = 0;        // results delivered (cache hits included)
  std::size_t cache_hits = 0;    // served by the endpoint's shard cache
  std::size_t failovers = 0;     // in-flight trials rerouted off this shard
  std::size_t reconnects = 0;    // successful reconnects after a drop
  std::size_t disconnects = 0;   // sessions lost (EOF/error/corrupt)
  std::uint64_t busy_ns = 0;     // summed server-side trial wall time
  bool lost = false;             // consecutive-failure budget exhausted
  /// The endpoint could not run the requested jit engine and evaluated on
  /// the micro-op engine instead (results identical; timing differs).
  bool jit_downgraded = false;

  // ---- Failover / liveness (heartbeat-enabled runs) -----------------------
  std::size_t pings = 0;          // heartbeat probes sent
  std::size_t pongs = 0;          // echoes received
  std::size_t missed_beats = 0;   // a beat came due with the last unanswered
  std::size_t lease_expiries = 0; // in-flight leases voided by liveness death
  std::size_t late_results = 0;   // results discarded (expired/stale lease)
  std::size_t redispatched = 0;   // dispatches of a trial some shard died on
  std::size_t breaker_trips = 0;  // circuit breaker closed->open transitions
  std::uint64_t rtt_p50_us = 0;   // heartbeat round-trip percentiles
  std::uint64_t rtt_p95_us = 0;
  std::uint64_t rtt_max_us = 0;
  /// Journal records this endpoint already retained at handshake time.
  std::uint64_t journal_records = 0;

  // ---- Durability / anti-entropy (v4 endpoints) ---------------------------
  std::size_t gossip_rounds = 0;     // digest answers compared
  std::size_t records_repaired = 0;  // journal records re-streamed by gossip
  /// State files the endpoint restored at startup (from the HelloAck).
  std::uint64_t shards_reloaded = 0;
  /// Storage failures (injected or real) the endpoint has absorbed.
  std::uint64_t disk_faults = 0;
  /// The endpoint's shard store degraded to in-memory operation.
  bool state_degraded = false;
};

/// Per-worker-slot supervision census (isolate mode): one seat in the pool,
/// across however many worker processes occupied it.
struct WorkerSlotMetrics {
  std::size_t requests = 0;     // trial requests successfully sent
  std::size_t respawns = 0;     // worker processes respawned into the slot
  std::size_t crashes = 0;      // non-supervisor deaths observed
  std::size_t timeouts = 0;     // supervisor deadline kills
  std::size_t quarantines = 0;  // per-config breakers tripped on this slot
};

/// Throughput and cache statistics of one run_search call.
struct SearchMetrics {
  std::size_t trials_total = 0;   // == SearchResult::configs_tested
  std::size_t trials_live = 0;    // actually patched + run + verified
  std::size_t trials_cached = 0;  // served from the journal-backed cache
  double cache_hit_rate = 0.0;    // percent of trials served from cache
  double wall_seconds = 0.0;      // whole search, profiling included
  double eval_seconds = 0.0;      // summed live evaluation time
  double trials_per_sec = 0.0;    // trials_total / wall_seconds
  /// Live evaluation seconds attributed to each descent level
  /// ("module", "function", "func-part", "block", "block-part", "insn",
  /// "composition").
  std::map<std::string, double> eval_seconds_per_level;
  /// Stage breakdown of the summed live evaluations: where each trial's
  /// time went (patch = instrument_image, predecode = ExecutableImage
  /// build, run = VM execution, verify = output check).
  double patch_seconds = 0.0;
  double predecode_seconds = 0.0;
  double run_seconds = 0.0;
  double verify_seconds = 0.0;

  // ---- Incremental trial pipeline -----------------------------------------
  /// Whole-image cache hits/misses across live evaluation attempts, summed
  /// over both engines (sandboxed workers report theirs over the wire).
  std::size_t image_cache_hits = 0;
  std::size_t image_cache_misses = 0;
  /// Estimated patch/predecode seconds avoided relative to a cold build.
  double patch_saved_seconds = 0.0;
  double predecode_saved_seconds = 0.0;
  /// Function-granularity reuse: segments spliced unchanged from the
  /// variant cache vs. re-lowered from scratch.
  std::size_t funcs_reused = 0;
  std::size_t funcs_patched = 0;

  // ---- Failure taxonomy and supervision -----------------------------------
  /// Failed trials by failure_class_name ("trap", "sentinel-escape",
  /// "divergence", "timeout", "budget", "internal-error"); cached and live
  /// trials both count -- this is the per-class census nas_search prints.
  std::map<std::string, std::size_t> failures_by_class;
  /// Evaluation attempts beyond the first, summed over all trials
  /// (max_retries policy).
  std::size_t retries = 0;
  /// Trials whose attempts returned mixed verdicts (non-deterministic
  /// under the active campaign); they resolve by majority vote.
  std::size_t quarantined = 0;
  /// The profiling run of the original binary failed, and the search fell
  /// back to unweighted structure-order prioritisation.
  bool profile_degraded = false;
  /// Execution contexts that downgraded a requested jit engine to the
  /// micro-op engine (1 for the local process, plus one per remote endpoint
  /// that answered the handshake with the downgrade). Results are
  /// unaffected; only the expected speedup is.
  std::size_t jit_downgraded = 0;

  // ---- Process isolation --------------------------------------------------
  /// Trial executions dispatched to sandboxed workers (retries included).
  std::size_t isolated_trials = 0;
  /// Worker deaths not initiated by the supervisor (SIGSEGV, OOM-kill, ...).
  std::size_t worker_crashes = 0;
  /// Workers respawned after a death.
  std::size_t worker_respawns = 0;
  /// Workers the supervisor killed for exceeding the trial deadline
  /// (TERM, then KILL after a grace period).
  std::size_t worker_timeouts = 0;
  /// Corrupt/truncated result frames the pipe CRC caught.
  std::size_t protocol_errors = 0;
  /// Configs quarantined by the crash-loop circuit breaker.
  std::size_t crash_quarantined = 0;
  /// Worker-death census by signal name ("SIGSEGV" -> 17; "exit:N" for
  /// nonzero exits).
  std::map<std::string, std::size_t> crashes_by_signal;
  /// The pool hit its consecutive-death threshold and aborted: the
  /// environment, not any one config, is broken.
  bool crash_storm = false;
  /// isolate_trials was requested but fork is unavailable (or no worker
  /// could be spawned); the search ran in-process instead.
  bool isolation_degraded = false;
  /// Config frames shipped delta-encoded against each worker's session
  /// base config vs. as full canonical keys, with their payload bytes.
  std::size_t delta_requests = 0;
  std::size_t full_requests = 0;
  std::size_t delta_bytes = 0;
  std::size_t full_bytes = 0;
  /// One entry per worker slot (isolate mode only).
  std::vector<WorkerSlotMetrics> worker_slots;

  // ---- Distributed execution ----------------------------------------------
  /// Trial results served by remote endpoints (shard-cache hits included).
  std::size_t remote_trials = 0;
  /// Trials answered from the fleet-wide shard cache without evaluation.
  std::size_t shard_cache_hits = 0;
  /// In-flight trials rerouted off a dying endpoint onto another shard.
  std::size_t endpoint_failovers = 0;
  std::size_t endpoint_reconnects = 0;
  std::size_t endpoint_disconnects = 0;
  /// Endpoints abandoned after exhausting their consecutive-failure budget.
  std::size_t endpoints_lost = 0;
  /// Trials no endpoint could serve; evaluated in-process instead.
  std::size_t remote_unserved = 0;
  /// Endpoints were configured but none was usable at startup; the whole
  /// search ran locally.
  bool remote_degraded = false;
  /// Heartbeat/failover totals across the fleet (per-endpoint detail in
  /// endpoints_used).
  std::size_t missed_beats = 0;
  std::size_t lease_expiries = 0;
  std::size_t late_results = 0;
  std::size_t redispatched = 0;
  std::size_t breaker_trips = 0;
  /// Journal records reconciled from the fleet on --adopt failover (0 on
  /// ordinary runs).
  std::size_t adopted_records = 0;
  /// Durability totals across the fleet (per-endpoint detail in
  /// endpoints_used): digest rounds compared, records gossip re-streamed,
  /// state files endpoints restored at startup, storage failures absorbed,
  /// and endpoints whose shard store degraded to in-memory operation.
  std::size_t gossip_rounds = 0;
  std::size_t records_repaired = 0;
  std::size_t shards_reloaded = 0;
  std::size_t disk_faults = 0;
  std::size_t state_degraded = 0;
  /// One entry per configured endpoint (distributed mode only).
  std::vector<EndpointMetrics> endpoints_used;
};

struct SearchResult {
  config::PrecisionConfig final_config;  // union of all passing units
  bool final_passed = false;             // verification of the composition
  std::size_t candidates = 0;            // |Pd|
  std::size_t configs_tested = 0;        // includes the final composition
  config::ReplacementStats stats;        // static/dynamic % of final config
  std::vector<TestRecord> trace;         // only when keep_log

  /// Results of the optional composition-refinement phase. Only meaningful
  /// when SearchOptions::refine_composition was set and the plain union
  /// failed: `refined_config` is a verified-passing subset composition.
  bool refined = false;
  config::PrecisionConfig refined_config;
  config::ReplacementStats refined_stats;

  /// Config digests whose evaluation attempts returned mixed verdicts
  /// (see SearchOptions::max_retries); their recorded outcome is the
  /// majority vote, but they should not be trusted as deterministic.
  std::vector<std::string> quarantine;

  SearchMetrics metrics;
};

/// Runs the full pipeline of Figure 2: profile the original binary, search
/// the configuration space breadth-first, compose and test the final
/// configuration. `index` must be built from `original` and is updated in
/// place with profile weights.
SearchResult run_search(const program::Image& original,
                        config::StructureIndex* index,
                        const verify::Verifier& verifier,
                        const SearchOptions& options = {});

}  // namespace fpmix::search
