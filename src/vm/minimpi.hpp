// Mini-MPI: a shared-memory message-passing runtime connecting VM instances.
//
// The paper evaluates overhead on MPI versions of the NAS benchmarks
// (Figure 8). Our virtual programs reach an equivalent runtime through
// `intrin` instructions; ranks are Machine instances running on their own
// std::threads and meeting in this communicator. Communication time is real
// wall time spent blocked -- and is *not* instrumented code -- which is what
// produces the paper's observation that overhead shrinks as ranks grow.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace fpmix::vm {

class MiniMpi {
 public:
  explicit MiniMpi(int size);

  int size() const { return size_; }

  /// Blocks until all ranks arrive.
  void barrier();

  /// Global sum / max of one double; every rank receives the result.
  double allreduce_sum(double x);
  double allreduce_max(double x);

  /// Elementwise global sum of an f64 array; each rank passes a view of its
  /// own copy and receives the reduced values in place. All ranks must pass
  /// the same count.
  void allreduce_vec(std::span<double> data);

 private:
  // One collective phase: `init` runs on the first arriver, `merge` on every
  // arriver, `finish` on the last, and `consume` on every rank after
  // completion -- all under the phase lock, with drain tracking so a fast
  // rank cannot corrupt a phase other ranks are still reading.
  void collective(const std::function<void()>& init,
                  const std::function<void()>& merge,
                  const std::function<void()>& consume);

  const int size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  int leaving_ = 0;
  bool draining_ = false;

  double scalar_ = 0.0;
  std::vector<double> vec_;
};

}  // namespace fpmix::vm
