// Distributed search scaling: one scheduler against 1/2/4 local
// runner_serve endpoints vs the in-process path, on the class-W EP
// analogue.
//
// Each fleet row forks N daemon processes (2 sandboxed workers each, the
// runner_serve default), points one search at them, and reports trial
// throughput plus per-endpoint utilisation -- the fraction of the run each
// endpoint's workers spent actually evaluating trials
// (busy_ns / (wall * workers)). Every row asserts the final configuration
// is bit-exact against the in-process baseline: distribution buys wall
// clock, never a different answer (EXPERIMENTS.md section 11).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "config/structure.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "runner/trial_runner.hpp"
#include "search/search.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using namespace fpmix;

constexpr int kWorkersPerEndpoint = 2;
constexpr char kBench[] = "ep";
constexpr char kClass = 'W';

#if defined(__unix__) || defined(__APPLE__)

std::unique_ptr<net::ServedWorkload> serve_factory(const std::string& bench,
                                                   char cls,
                                                   std::string* error) {
  if (bench != kBench || cls != kClass) {
    if (error != nullptr) *error = "this fleet serves only ep class W";
    return nullptr;
  }
  const kernels::Workload w = kernels::make_ep(cls);
  auto out = std::make_unique<net::ServedWorkload>();
  out->image = kernels::build_image(w);
  out->index = config::StructureIndex::build(program::lift(out->image));
  out->verifier = kernels::make_verifier(w, out->image);
  return out;
}

struct Fleet {
  std::vector<std::string> endpoints;
  std::vector<pid_t> pids;

  bool spawn(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      net::Listener listener;
      std::string error;
      if (!listener.listen_on("127.0.0.1", 0, &error)) {
        std::fprintf(stderr, "listen: %s\n", error.c_str());
        return false;
      }
      net::Endpoint ep;
      ep.port = listener.port();
      const pid_t pid = ::fork();
      if (pid == 0) {
        net::ServerOptions sopts;
        sopts.workers = kWorkersPerEndpoint;
        net::RunnerServer server(std::move(listener), serve_factory, sopts);
        server.serve(nullptr);
        std::_Exit(0);
      }
      endpoints.push_back(ep.str());
      pids.push_back(pid);
    }
    return true;
  }

  void stop() {
    for (pid_t pid : pids) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    pids.clear();
    endpoints.clear();
  }
  ~Fleet() { stop(); }
};

struct Row {
  double seconds = 0.0;
  search::SearchResult result;
};

Row run_search_row(const search::SearchOptions& opts) {
  const kernels::Workload w = kernels::make_ep(kClass);
  const program::Image img = kernels::build_image(w);
  auto ix = config::StructureIndex::build(program::lift(img));
  const auto verifier = kernels::make_verifier(w, img);
  Row row;
  Timer t;
  row.result = search::run_search(img, &ix, *verifier, opts);
  row.seconds = t.elapsed_seconds();
  return row;
}

void print_utilisation(const Row& row) {
  const double wall_ns = row.seconds * 1e9;
  for (const search::EndpointMetrics& m : row.result.metrics.endpoints_used) {
    const double util =
        wall_ns > 0 && m.workers > 0
            ? 100.0 * static_cast<double>(m.busy_ns) / (wall_ns * m.workers)
            : 0.0;
    std::printf("      %-16s %2u workers  %5zu trials  %3zu failover(s)  "
                "%5.1f%% busy\n",
                m.address.c_str(), m.workers, m.trials, m.failovers, util);
  }
}

#endif  // POSIX

}  // namespace

int main() {
#if defined(__unix__) || defined(__APPLE__)
  if (!net::supported() || !runner::isolation_supported()) {
    std::printf("sockets/fork unsupported on this platform; skipping\n");
    return 0;
  }

  std::printf("Distributed search scaling: %s class %c, %d workers per "
              "endpoint\n",
              kBench, kClass, kWorkersPerEndpoint);

  // In-process baseline (threads = the widest fleet's lane count).
  search::SearchOptions base;
  base.keep_log = false;
  base.num_threads = 4 * kWorkersPerEndpoint;
  const Row local = run_search_row(base);
  const double local_tps =
      local.seconds > 0 ? local.result.configs_tested / local.seconds : 0.0;
  std::printf("  %-12s %6zu trials %9.1f/s   (baseline)\n", "in-process",
              local.result.configs_tested, local_tps);
  std::fflush(stdout);

  bool all_identical = true;
  for (const std::size_t n : {1u, 2u, 4u}) {
    Fleet fleet;
    if (!fleet.spawn(n)) return 1;

    search::SearchOptions opts;
    opts.keep_log = false;
    opts.endpoints = fleet.endpoints;
    opts.remote_bench = kBench;
    opts.remote_class = kClass;
    const Row row = run_search_row(opts);
    fleet.stop();

    const double tps =
        row.seconds > 0 ? row.result.configs_tested / row.seconds : 0.0;
    const bool identical =
        row.result.final_config == local.result.final_config &&
        row.result.configs_tested == local.result.configs_tested &&
        !row.result.metrics.remote_degraded;
    all_identical = all_identical && identical;
    std::printf("  %zu endpoint%s %6zu trials %9.1f/s %7.2fx  %s\n", n,
                n == 1 ? " " : "s", row.result.configs_tested, tps,
                local_tps > 0 ? tps / local_tps : 0.0,
                identical ? "identical" : "MISMATCH");
    print_utilisation(row);
    std::fflush(stdout);
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a fleet shape changed the search result\n");
    return 1;
  }
  return 0;
#else
  std::printf("sockets/fork unsupported on this platform; skipping\n");
  return 0;
#endif
}
