file(REMOVE_RECURSE
  "CMakeFiles/fpmix_program.dir/image.cpp.o"
  "CMakeFiles/fpmix_program.dir/image.cpp.o.d"
  "CMakeFiles/fpmix_program.dir/layout.cpp.o"
  "CMakeFiles/fpmix_program.dir/layout.cpp.o.d"
  "CMakeFiles/fpmix_program.dir/program.cpp.o"
  "CMakeFiles/fpmix_program.dir/program.cpp.o.d"
  "libfpmix_program.a"
  "libfpmix_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
