// Configuration evaluation: patch, run, verify -- the inner loop of the
// automatic search and the "Configuration Evaluation" box of Figure 2.
#pragma once

#include <memory>

#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "program/image.hpp"
#include "verify/verifier.hpp"
#include "vm/machine.hpp"

namespace fpmix::verify {

struct EvalOptions {
  std::uint64_t max_instructions = 1ull << 32;
  /// Per-instruction execution counts. Pass/fail trials never read them, so
  /// the search leaves this off and the VM takes its non-profiling run loop.
  bool profile = false;
  /// Execution engine; kSwitch is the differential-testing oracle.
  vm::Engine engine = vm::Engine::kMicroOp;
};

struct EvalResult {
  bool passed = false;
  vm::RunResult::Status run_status = vm::RunResult::Status::kHalted;
  std::string failure;               // empty when passed
  std::vector<double> outputs;
  std::uint64_t instructions_retired = 0;
  instrument::InstrumentStats stats;

  // Stage breakdown of this evaluation (SearchMetrics aggregates these).
  std::uint64_t patch_ns = 0;      // instrument_image
  std::uint64_t predecode_ns = 0;  // ExecutableImage::build of the patch
  std::uint64_t run_ns = 0;        // VM execution
  std::uint64_t verify_ns = 0;     // verifier.verify on the outputs
};

/// Builds the mixed-precision binary for `cfg` and evaluates it. Crashes,
/// traps and instruction-budget blowups count as verification failures
/// (with the reason recorded), exactly as a crashed test run does in the
/// paper's search harness.
EvalResult evaluate_config(const program::Image& original,
                           const config::StructureIndex& index,
                           const config::PrecisionConfig& cfg,
                           const Verifier& verifier,
                           const EvalOptions& options = {});

/// Runs the unmodified binary and returns its outputs (the reference for
/// RelativeErrorVerifier / BitExactVerifier) -- throws on failure.
std::vector<double> reference_outputs(const program::Image& original,
                                      std::uint64_t max_instructions =
                                          1ull << 32);

}  // namespace fpmix::verify
