// SuperLU analogue (Section 3.3 of the paper): a direct banded solver on
// the memplus-like system, reporting its own solution-error metric.
//
// The paper drives its search with "a driver script that ran the program
// and compared the reported error against a predefined threshold error
// bound" -- our workload does the same: the program factorizes the banded
// matrix, solves for a right-hand side constructed so the true solution is
// all-ones, and outputs max_i |x_i - 1| (plus auxiliary statistics). The
// Figure 11 sweep varies the threshold the verifier enforces.
//
// See DESIGN.md for the substitution rationale (banded pivot-free LU on a
// diagonally dominant wide-dynamic-range matrix standing in for SuperLU's
// supernodal sparse LU on memplus).
#include "kernels/workload.hpp"

#include "lang/builder.hpp"
#include "linalg/banded.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::kernels {

using lang::Builder;
using lang::Expr;

Workload make_superlu(double threshold) {
  constexpr std::size_t kN = 360;
  constexpr std::size_t kHalfBw = 6;
  constexpr std::size_t kWidth = 2 * kHalfBw + 1;

  const linalg::Banded<double> a =
      linalg::make_memplus_like(kN, kHalfBw, 0x51u);

  // Row-major band storage baked into the data segment; b = A * ones.
  std::vector<double> bandvals(kN * kWidth);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::ptrdiff_t d = -static_cast<std::ptrdiff_t>(kHalfBw);
         d <= static_cast<std::ptrdiff_t>(kHalfBw); ++d) {
      bandvals[i * kWidth + static_cast<std::size_t>(d + kHalfBw)] =
          a.get(i, d);
    }
  }
  const std::vector<double> ones(kN, 1.0);
  const std::vector<double> bvec = a.matvec(ones);

  Builder b;
  const auto n = static_cast<std::int64_t>(kN);
  const auto kl = static_cast<std::int64_t>(kHalfBw);
  const auto bw = static_cast<std::int64_t>(kWidth);

  auto bands = b.const_array_f64("bands", bandvals);
  auto rhs0 = b.const_array_f64("rhs", bvec);
  auto lu = b.array_f64("lu", kN * kWidth);  // working factorization
  auto x = b.array_f64("x", kN);

  // --- module slu_factor -------------------------------------------------------
  b.begin_func("factorize", "slu_factor");
  {
    auto i = b.var_i64("fc_i");
    auto k = b.var_i64("fc_k");
    auto dj = b.var_i64("fc_dj");
    auto imax = b.var_i64("fc_imax");
    auto jj = b.var_i64("fc_jj");
    auto dij = b.var_i64("fc_dij");
    auto piv = b.var_f64("fc_piv");
    auto mfac = b.var_f64("fc_m");

    // Copy the band matrix into the working array.
    b.for_(i, b.ci(0), b.ci(n * bw),
           [&] { b.store(lu, Expr(i), bands[Expr(i)]); });

    // Pivot-free banded LU: lu(i, d) at lu[i*w + d + kl].
    b.for_(k, b.ci(0), b.ci(n), [&] {
      b.set(piv, lu[Expr(k) * b.ci(bw) + b.ci(kl)]);
      b.set(imax, Expr(k) + b.ci(kl));
      b.if_(Expr(imax) > b.ci(n - 1), [&] { b.set(imax, b.ci(n - 1)); });
      b.for_(i, Expr(k) + b.ci(1), Expr(imax) + b.ci(1), [&] {
        // di = k - i in [-kl, -1]
        b.set(mfac,
              lu[Expr(i) * b.ci(bw) + Expr(k) - Expr(i) + b.ci(kl)] /
                  Expr(piv));
        b.store(lu, Expr(i) * b.ci(bw) + Expr(k) - Expr(i) + b.ci(kl), mfac);
        b.for_(dj, b.ci(1), b.ci(kl + 1), [&] {
          b.set(jj, Expr(k) + Expr(dj));
          b.if_(Expr(jj) < b.ci(n), [&] {
            b.set(dij, Expr(jj) - Expr(i));
            b.store(lu, Expr(i) * b.ci(bw) + Expr(dij) + b.ci(kl),
                    lu[Expr(i) * b.ci(bw) + Expr(dij) + b.ci(kl)] -
                        Expr(mfac) *
                            lu[Expr(k) * b.ci(bw) + Expr(dj) + b.ci(kl)]);
          });
        });
      });
    });
  }
  b.end_func();

  // --- module slu_solve --------------------------------------------------------
  b.begin_func("solve", "slu_solve");
  {
    auto i = b.var_i64("sv_i");
    auto j = b.var_i64("sv_j");
    auto jlo = b.var_i64("sv_jlo");
    auto jhi = b.var_i64("sv_jhi");
    auto acc = b.var_f64("sv_acc");

    b.for_(i, b.ci(0), b.ci(n), [&] { b.store(x, Expr(i), rhs0[Expr(i)]); });
    // Forward: Ly = b (unit diagonal).
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.set(acc, x[Expr(i)]);
      b.set(jlo, Expr(i) - b.ci(kl));
      b.if_(Expr(jlo) < b.ci(0), [&] { b.set(jlo, b.ci(0)); });
      b.for_(j, Expr(jlo), Expr(i), [&] {
        b.set(acc, Expr(acc) -
                       lu[Expr(i) * b.ci(bw) + Expr(j) - Expr(i) + b.ci(kl)] *
                           x[Expr(j)]);
      });
      b.store(x, Expr(i), acc);
    });
    // Backward: Ux = y.
    b.for_(i, b.ci(n - 1), b.ci(-1), [&] {
      b.set(acc, x[Expr(i)]);
      b.set(jhi, Expr(i) + b.ci(kl));
      b.if_(Expr(jhi) > b.ci(n - 1), [&] { b.set(jhi, b.ci(n - 1)); });
      b.for_(j, Expr(i) + b.ci(1), Expr(jhi) + b.ci(1), [&] {
        b.set(acc, Expr(acc) -
                       lu[Expr(i) * b.ci(bw) + Expr(j) - Expr(i) + b.ci(kl)] *
                           x[Expr(j)]);
      });
      b.store(x, Expr(i), Expr(acc) / lu[Expr(i) * b.ci(bw) + b.ci(kl)]);
    }, /*step=*/-1);
  }
  b.end_func();

  // --- module slu_main -----------------------------------------------------------
  b.begin_func("main", "slu_main");
  {
    auto i = b.var_i64("mn_i");
    auto err = b.var_f64("mn_err");
    auto dev = b.var_f64("mn_dev");
    auto xsum = b.var_f64("mn_xsum");
    b.call("factorize");
    b.call("solve");
    // Reported error metric: max_i |x_i - 1| (true solution is all-ones).
    b.set(err, b.cf(0.0));
    b.set(xsum, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(n), [&] {
      b.set(dev, fabs_(x[Expr(i)] - b.cf(1.0)));
      b.set(err, max_(err, dev));
      b.set(xsum, Expr(xsum) + x[Expr(i)]);
    });
    b.output(err);   // index 0: the error the driver thresholds
    b.output(xsum);  // auxiliary
  }
  b.end_func();

  Workload w;
  w.name = strformat("superlu@%.1e", threshold);
  w.model = b.take_model();
  w.threshold_mode = true;
  w.error_output_index = 0;
  w.expected_outputs = 2;
  w.threshold = threshold;
  return w;
}

}  // namespace fpmix::kernels
