// The paper's NAS experiment as a command-line tool: run the automatic
// mixed-precision search on one benchmark analogue and write the
// recommended configuration file.
//
// Usage:  nas_search <ep|cg|ft|mg|bt|lu|sp|amg> [S|W|A|C] [--trace]
//                    [--refine] [--out FILE] [--journal FILE] [--no-resume]
//                    [--threads N] [--deadline-ms N] [--retries N] [--quiet]
//                    [--isolate] [--workers N] [--max-crashes N]
//                    [--worker-rlimit-as MB] [--fault-seed N]
//                    [--metrics-json FILE] [--no-image-cache]
//                    [--connect HOST:PORT,...] [--shard-cache]
//                    [--journal-deterministic] [--serve PORT]
//                    [--engine switch|microop|jit] [--adopt]
//                    [--heartbeat-ms N] [--reconnect-max-ms N]
//                    [--gossip-ms N]
//
// --deadline-ms bounds each trial's wall-clock time (a spinning patched
// binary is classified "timeout" instead of hanging the search);
// --retries N re-evaluates each trial until one verdict holds a majority
// of N+1 attempts, quarantining configs whose attempts disagree.
//
// With --journal, every completed trial is appended to FILE as it
// finishes; re-running the same command resumes from it, re-using every
// journaled verdict instead of re-evaluating (an interrupted search loses
// at most the trial in flight).
//
// --isolate runs every trial in a forked, rlimit-capped worker process:
// a trial that crashes or OOMs kills its worker, never the search.
// --workers N sizes the worker fleet (default: --threads), --max-crashes N
// sets the per-config crash-loop breaker, and --fault-seed N arms a
// deterministic hard-fault campaign (SIGSEGV/SIGKILL/OOM/corrupt-frame
// injection) for exercising the supervisor. --metrics-json dumps the full
// SearchMetrics, including the per-signal worker-crash census and the
// per-worker-slot request/respawn/quarantine counts, to FILE.
//
// --no-image-cache disables the incremental trial pipeline (per-function
// variant reuse + warm image caches), rebuilding every trial from scratch.
// Results are identical either way; the flag exists for A/B benchmarking.
//
// --connect dispatches trials to remote runner_serve daemons instead of
// local execution: trials fan out across the fleet (least-loaded first),
// endpoints that die mid-trial are failed over, and the search degrades to
// in-process evaluation if the whole fleet is lost. --shard-cache shares
// one fleet-wide trial cache across every scheduler connected to the same
// daemons. --journal-deterministic zeroes per-trial timing fields in the
// journal so a distributed run's journal is byte-identical to a local
// run's. --serve PORT skips the search entirely and runs this binary as a
// runner_serve daemon on 127.0.0.1:PORT (--workers sizes its pool).
//
// While connected, the scheduler streams every journal record to the
// fleet (each daemon retains a replicated shard) and pings endpoints
// every --heartbeat-ms (default 1000, 0 disables) so a stalled endpoint
// is distinguished from a slow one; --reconnect-max-ms caps the jittered
// reconnect backoff (default 200). --adopt makes a fresh scheduler fetch
// the fleet-held journal, reconcile it into the local --journal file, and
// resume the interrupted search byte-identically -- the failover path
// after a scheduler host dies. --gossip-ms (default 1000, 0 disables)
// sets the anti-entropy period: the scheduler exchanges journal-shard
// digests with every live endpoint that often and re-streams whatever a
// digest shows missing, so a restarted daemon (see runner_serve
// --state-dir) converges back to a full replica without waiting for the
// next adoption.
//
// --engine picks the VM engine trials run on: "switch" (reference
// interpreter), "microop" (predecoded micro-op interpreter, the default)
// or "jit" (native x86-64 code compiled from the micro-op stream). All
// three are bit-identical, so journals and verdicts do not depend on the
// choice; a host that cannot run the jit falls back to microop with a
// warning (counted as jit_downgraded in --metrics-json).
//
// Exit codes: 0 search completed and the composition verified; 1 search
// completed but the final composition fails verification; 2 usage error;
// 3 internal failure (worker crash storm or internal-error trials).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "config/textio.hpp"
#include "kernels/workload.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "vm/jit/jit.hpp"
#include "vm/machine.hpp"

using namespace fpmix;

namespace {

void json_escape(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += strformat("\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
}

/// Dumps the full SearchMetrics (plus the run verdict) as one JSON object.
bool write_metrics_json(const std::string& path,
                        const search::SearchResult& res) {
  const search::SearchMetrics& m = res.metrics;
  std::string j = "{\n";
  const auto num = [&j](const char* k, double v, bool comma = true) {
    j += strformat("  \"%s\": %.6f%s\n", k, v, comma ? "," : "");
  };
  const auto uint = [&j](const char* k, std::size_t v) {
    j += strformat("  \"%s\": %zu,\n", k, v);
  };
  const auto boolean = [&j](const char* k, bool v) {
    j += strformat("  \"%s\": %s,\n", k, v ? "true" : "false");
  };
  const auto census = [&j](const char* k,
                           const std::map<std::string, std::size_t>& counts) {
    j += strformat("  \"%s\": {", k);
    bool first = true;
    for (const auto& [name, n] : counts) {
      std::string esc;
      json_escape(name, &esc);
      j += strformat("%s\"%s\": %zu", first ? "" : ", ", esc.c_str(), n);
      first = false;
    }
    j += "},\n";
  };
  uint("trials_total", m.trials_total);
  uint("trials_live", m.trials_live);
  uint("trials_cached", m.trials_cached);
  num("cache_hit_rate", m.cache_hit_rate);
  num("wall_seconds", m.wall_seconds);
  num("eval_seconds", m.eval_seconds);
  num("trials_per_sec", m.trials_per_sec);
  num("patch_seconds", m.patch_seconds);
  num("predecode_seconds", m.predecode_seconds);
  num("run_seconds", m.run_seconds);
  num("verify_seconds", m.verify_seconds);
  uint("image_cache_hits", m.image_cache_hits);
  uint("image_cache_misses", m.image_cache_misses);
  num("patch_saved_seconds", m.patch_saved_seconds);
  num("predecode_saved_seconds", m.predecode_saved_seconds);
  uint("funcs_reused", m.funcs_reused);
  uint("funcs_patched", m.funcs_patched);
  census("failures_by_class", m.failures_by_class);
  uint("retries", m.retries);
  uint("quarantined", m.quarantined);
  boolean("profile_degraded", m.profile_degraded);
  uint("jit_downgraded", m.jit_downgraded);
  uint("isolated_trials", m.isolated_trials);
  uint("worker_crashes", m.worker_crashes);
  uint("worker_respawns", m.worker_respawns);
  uint("worker_timeouts", m.worker_timeouts);
  uint("protocol_errors", m.protocol_errors);
  uint("crash_quarantined", m.crash_quarantined);
  census("crashes_by_signal", m.crashes_by_signal);
  boolean("crash_storm", m.crash_storm);
  boolean("isolation_degraded", m.isolation_degraded);
  uint("delta_requests", m.delta_requests);
  uint("full_requests", m.full_requests);
  uint("delta_bytes", m.delta_bytes);
  uint("full_bytes", m.full_bytes);
  uint("remote_trials", m.remote_trials);
  uint("shard_cache_hits", m.shard_cache_hits);
  uint("endpoint_failovers", m.endpoint_failovers);
  uint("endpoint_reconnects", m.endpoint_reconnects);
  uint("endpoint_disconnects", m.endpoint_disconnects);
  uint("endpoints_lost", m.endpoints_lost);
  uint("remote_unserved", m.remote_unserved);
  boolean("remote_degraded", m.remote_degraded);
  uint("missed_beats", m.missed_beats);
  uint("lease_expiries", m.lease_expiries);
  uint("late_results", m.late_results);
  uint("redispatched", m.redispatched);
  uint("breaker_trips", m.breaker_trips);
  j += strformat("  \"adopted_records\": %llu,\n",
                 static_cast<unsigned long long>(m.adopted_records));
  uint("gossip_rounds", m.gossip_rounds);
  uint("records_repaired", m.records_repaired);
  uint("shards_reloaded", m.shards_reloaded);
  uint("disk_faults", m.disk_faults);
  uint("state_degraded", m.state_degraded);
  j += "  \"endpoints\": [";
  for (std::size_t i = 0; i < m.endpoints_used.size(); ++i) {
    const search::EndpointMetrics& e = m.endpoints_used[i];
    std::string esc;
    json_escape(e.address, &esc);
    j += strformat(
        "%s{\"address\": \"%s\", \"workers\": %u, \"trials\": %zu, "
        "\"cache_hits\": %zu, \"failovers\": %zu, \"reconnects\": %zu, "
        "\"disconnects\": %zu, \"busy_seconds\": %.6f, \"lost\": %s, "
        "\"jit_downgraded\": %s, \"pings\": %zu, \"pongs\": %zu, "
        "\"missed_beats\": %zu, \"lease_expiries\": %zu, "
        "\"late_results\": %zu, \"redispatched\": %zu, "
        "\"breaker_trips\": %zu, \"rtt_p50_us\": %llu, "
        "\"rtt_p95_us\": %llu, \"rtt_max_us\": %llu, "
        "\"journal_records\": %llu, \"gossip_rounds\": %zu, "
        "\"records_repaired\": %zu, \"shards_reloaded\": %llu, "
        "\"disk_faults\": %llu, \"state_degraded\": %s}",
        i == 0 ? "" : ", ", esc.c_str(), e.workers, e.trials, e.cache_hits,
        e.failovers, e.reconnects, e.disconnects,
        1e-9 * static_cast<double>(e.busy_ns), e.lost ? "true" : "false",
        e.jit_downgraded ? "true" : "false", e.pings, e.pongs,
        e.missed_beats, e.lease_expiries, e.late_results, e.redispatched,
        e.breaker_trips, static_cast<unsigned long long>(e.rtt_p50_us),
        static_cast<unsigned long long>(e.rtt_p95_us),
        static_cast<unsigned long long>(e.rtt_max_us),
        static_cast<unsigned long long>(e.journal_records),
        e.gossip_rounds, e.records_repaired,
        static_cast<unsigned long long>(e.shards_reloaded),
        static_cast<unsigned long long>(e.disk_faults),
        e.state_degraded ? "true" : "false");
  }
  j += "],\n";
  j += "  \"workers\": [";
  for (std::size_t i = 0; i < m.worker_slots.size(); ++i) {
    const search::WorkerSlotMetrics& s = m.worker_slots[i];
    j += strformat(
        "%s{\"slot\": %zu, \"requests\": %zu, \"respawns\": %zu, "
        "\"crashes\": %zu, \"timeouts\": %zu, \"quarantines\": %zu}",
        i == 0 ? "" : ", ", i, s.requests, s.respawns, s.crashes, s.timeouts,
        s.quarantines);
  }
  j += "],\n";
  // Process-wide JIT lowering census (static uop counts across every
  // compile_stream call this run, including delta re-JITs): how many uops
  // lowered to inline native code vs the generic-exec fallback vs an
  // out-of-line helper call, per op family.
  {
    const vm::jit::LoweringStats lw = vm::jit::lowering_totals();
    j += "  \"jit_lowering\": {";
    bool first = true;
    for (int f = 0; f < vm::jit::LoweringStats::kNumFamilies; ++f) {
      j += strformat(
          "%s\"%s\": {\"native\": %llu, \"generic\": %llu, "
          "\"helper\": %llu}",
          first ? "" : ", ", vm::jit::lowering_family_name(f),
          static_cast<unsigned long long>(lw.native[f]),
          static_cast<unsigned long long>(lw.generic[f]),
          static_cast<unsigned long long>(lw.helper[f]));
      first = false;
    }
    j += strformat(
        ", \"fused_pairs\": %llu, \"reg_alloc_blocks\": %llu, "
        "\"reg_alloc_slots\": %llu},\n",
        static_cast<unsigned long long>(lw.fused_pairs),
        static_cast<unsigned long long>(lw.reg_alloc_blocks),
        static_cast<unsigned long long>(lw.reg_alloc_slots));
  }
  uint("configs_tested", res.configs_tested);
  boolean("refined", res.refined);
  j += strformat("  \"final_passed\": %s\n}\n",
                 res.final_passed ? "true" : "false");
  std::ofstream f(path);
  if (!f) return false;
  f << j;
  return f.good();
}

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// WorkloadFactory for --serve mode: any NAS analogue this binary can
/// search, it can also serve.
std::unique_ptr<net::ServedWorkload> build_served(const std::string& bench,
                                                  char cls,
                                                  std::string* error) {
  kernels::Workload w;
  if (bench == "ep") w = kernels::make_ep(cls);
  else if (bench == "cg") w = kernels::make_cg(cls);
  else if (bench == "ft") w = kernels::make_ft(cls);
  else if (bench == "mg") w = kernels::make_mg(cls);
  else if (bench == "bt") w = kernels::make_bt(cls);
  else if (bench == "lu") w = kernels::make_lu(cls);
  else if (bench == "sp") w = kernels::make_sp(cls);
  else if (bench == "amg") w = kernels::make_amg();
  else {
    if (error != nullptr) {
      *error = strformat("unknown benchmark '%s'", bench.c_str());
    }
    return nullptr;
  }
  auto out = std::make_unique<net::ServedWorkload>();
  out->image = kernels::build_image(w);
  out->index = config::StructureIndex::build(program::lift(out->image));
  out->verifier = kernels::make_verifier(w, out->image);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // The benchmark is positional, but flag-only invocations (--serve) have
  // no positional arguments at all.
  std::string bench = "ep";
  int first_flag = 2;
  if (argc > 1 && argv[1][0] != '-') {
    bench = argv[1];
  } else {
    first_flag = 1;
  }
  char cls = 'W';
  bool trace = false;
  bool refine = false;
  bool quiet = false;
  bool have_fault_seed = false;
  std::uint64_t fault_seed = 0;
  std::string out_path;
  std::string metrics_path;
  bool serve_mode = false;
  std::uint64_t serve_port = 0;
  search::SearchOptions opts;
  opts.keep_log = true;
  for (int i = first_flag; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") trace = true;
    else if (arg == "--refine") refine = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--no-resume") opts.resume = false;
    else if (arg == "--isolate") opts.isolate_trials = true;
    else if (arg == "--no-image-cache") opts.image_cache = false;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg == "--journal" && i + 1 < argc) opts.journal_path = argv[++i];
    else if (arg == "--metrics-json" && i + 1 < argc) metrics_path = argv[++i];
    else if (arg == "--threads" && i + 1 < argc) {
      std::uint64_t n = 1;
      if (!parse_u64(argv[++i], &n) || n == 0) {
        std::fprintf(stderr, "bad --threads value '%s'\n", argv[i]);
        return 2;
      }
      opts.num_threads = static_cast<std::size_t>(n);
    }
    else if (arg == "--workers" && i + 1 < argc) {
      std::uint64_t n = 1;
      if (!parse_u64(argv[++i], &n) || n == 0 || n > 256) {
        std::fprintf(stderr, "bad --workers value '%s'\n", argv[i]);
        return 2;
      }
      opts.num_workers = static_cast<std::size_t>(n);
    }
    else if (arg == "--max-crashes" && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!parse_u64(argv[++i], &n) || n == 0 || n > 64) {
        std::fprintf(stderr, "bad --max-crashes value '%s'\n", argv[i]);
        return 2;
      }
      opts.max_trial_crashes = static_cast<std::uint32_t>(n);
    }
    else if (arg == "--worker-rlimit-as" && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!parse_u64(argv[++i], &n) || n < 64 || n > 65536) {
        std::fprintf(stderr, "bad --worker-rlimit-as value '%s' (MiB)\n",
                     argv[i]);
        return 2;
      }
      opts.worker_rlimit_as_mb = n;
    }
    else if (arg == "--fault-seed" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &fault_seed)) {
        std::fprintf(stderr, "bad --fault-seed value '%s'\n", argv[i]);
        return 2;
      }
      have_fault_seed = true;
    }
    else if (arg == "--deadline-ms" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &opts.deadline_ms)) {
        std::fprintf(stderr, "bad --deadline-ms value '%s'\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--retries" && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!parse_u64(argv[++i], &n) || n > 16) {
        std::fprintf(stderr, "bad --retries value '%s'\n", argv[i]);
        return 2;
      }
      opts.max_retries = static_cast<std::uint32_t>(n);
    }
    else if (arg == "--connect" && i + 1 < argc) {
      for (std::string_view part : split_fields(argv[++i], ",")) {
        net::Endpoint ep;
        if (!net::parse_endpoint(part, &ep)) {
          std::fprintf(stderr, "bad --connect endpoint '%.*s'\n",
                       static_cast<int>(part.size()), part.data());
          return 2;
        }
        opts.endpoints.emplace_back(part);
      }
    }
    else if (arg == "--engine" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "switch") opts.engine = vm::Engine::kSwitch;
      else if (name == "microop") opts.engine = vm::Engine::kMicroOp;
      else if (name == "jit") opts.engine = vm::Engine::kJit;
      else {
        std::fprintf(stderr, "bad --engine value '%s' "
                             "(expected switch, microop or jit)\n",
                     name.c_str());
        return 2;
      }
    }
    else if (arg == "--shard-cache") opts.shard_cache = true;
    else if (arg == "--journal-deterministic") opts.journal_timings = false;
    else if (arg == "--adopt") opts.adopt_fleet = true;
    else if (arg == "--heartbeat-ms" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &opts.heartbeat_ms) ||
          opts.heartbeat_ms > 60000) {
        std::fprintf(stderr, "bad --heartbeat-ms value '%s' (0 disables, "
                             "max 60000)\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--reconnect-max-ms" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &opts.reconnect_max_ms) ||
          opts.reconnect_max_ms == 0 || opts.reconnect_max_ms > 60000) {
        std::fprintf(stderr, "bad --reconnect-max-ms value '%s' "
                             "(1..60000)\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--gossip-ms" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &opts.gossip_ms) ||
          opts.gossip_ms > 60000) {
        std::fprintf(stderr, "bad --gossip-ms value '%s' (0 disables, "
                             "max 60000)\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--serve" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &serve_port) || serve_port > 65535) {
        std::fprintf(stderr, "bad --serve port '%s'\n", argv[i]);
        return 2;
      }
      serve_mode = true;
    }
    else if (arg.size() == 1) cls = arg[0];
  }
  opts.refine_composition = refine;
  if (opts.adopt_fleet && (opts.endpoints.empty() ||
                           opts.journal_path.empty())) {
    std::fprintf(stderr, "--adopt rebuilds the local journal from the "
                         "fleet, which needs --connect and --journal\n");
    return 2;
  }

  // --serve: become a runner daemon instead of searching (same daemon core
  // as the standalone runner_serve binary).
  if (serve_mode) {
    if (!net::supported()) {
      std::fprintf(stderr, "sockets are unsupported on this platform\n");
      return 3;
    }
    net::Listener listener;
    std::string error;
    if (!listener.listen_on("127.0.0.1",
                            static_cast<std::uint16_t>(serve_port), &error)) {
      std::fprintf(stderr, "cannot listen: %s\n", error.c_str());
      return 3;
    }
    net::ServerOptions sopts;
    sopts.workers = static_cast<int>(
        opts.num_workers != 0 ? opts.num_workers
                              : std::max<std::size_t>(2, opts.num_threads));
    sopts.verbose = !quiet;
    if (!quiet) log::set_level(log::Level::kInfo);
    std::printf("nas_search: serving on 127.0.0.1:%u (%d workers per "
                "backend)\n",
                static_cast<unsigned>(listener.port()), sopts.workers);
    std::fflush(stdout);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    net::RunnerServer server(std::move(listener), build_served, sopts);
    server.serve(&g_stop);
    return 0;
  }

  // The stock hard-fault campaign: process-destroying faults only, so the
  // search's verdicts (and final configuration) stay identical to a clean
  // run -- every crash is absorbed as a retried fault event.
  std::unique_ptr<fault::Injector> injector;
  if (have_fault_seed) {
    fault::Injector::Rates rates;
    rates.segv = 0.03;
    rates.kill = 0.02;
    rates.oom = 0.02;
    rates.trunc_result = 0.01;
    rates.corrupt_result = 0.01;
    injector = std::make_unique<fault::Injector>(fault_seed, rates);
    opts.fault_injector = injector.get();
    if (!opts.isolate_trials && opts.endpoints.empty()) {
      std::fprintf(stderr, "--fault-seed arms hard faults, which need "
                           "--isolate or --connect\n");
      return 2;
    }
  }
  if (!quiet) {
    // Progress/metrics lines (trials/sec, cache hit rate, ETA) flow through
    // the support logger at info level.
    opts.progress_log = true;
    log::set_level(log::Level::kInfo);
  }

  kernels::Workload w;
  if (bench == "ep") w = kernels::make_ep(cls);
  else if (bench == "cg") w = kernels::make_cg(cls);
  else if (bench == "ft") w = kernels::make_ft(cls);
  else if (bench == "mg") w = kernels::make_mg(cls);
  else if (bench == "bt") w = kernels::make_bt(cls);
  else if (bench == "lu") w = kernels::make_lu(cls);
  else if (bench == "sp") w = kernels::make_sp(cls);
  else if (bench == "amg") w = kernels::make_amg();
  else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 2;
  }

  // The handshake re-announces the workload by name; the daemons build the
  // identical image and verifier on their side.
  opts.remote_bench = bench;
  opts.remote_class = cls;

  std::printf("searching %s ...\n", w.name.c_str());
  const program::Image img = kernels::build_image(w);
  auto index = config::StructureIndex::build(program::lift(img));
  const auto verifier = kernels::make_verifier(w, img);

  Timer t;
  const search::SearchResult res =
      search::run_search(img, &index, *verifier, opts);

  if (trace) {
    std::printf("\n-- search trace --\n");
    for (const auto& rec : res.trace) {
      std::printf("  %-40s %4zu cand  %s%s%s%s\n", rec.unit.c_str(),
                  rec.candidates, rec.passed ? "PASS" : "fail",
                  rec.cached ? " (cached)" : "",
                  rec.failure.empty() ? "" : ": ",
                  rec.failure.c_str());
    }
  }

  std::printf("\n%s: %zu candidates, %zu configurations tested in %.1fs\n",
              w.name.c_str(), res.candidates, res.configs_tested,
              t.elapsed_seconds());
  const search::SearchMetrics& m = res.metrics;
  std::printf("trials: %zu live + %zu cached (%.1f%% cache hit), "
              "%.1f trials/s, %.2fs evaluating\n",
              m.trials_live, m.trials_cached, m.cache_hit_rate,
              m.trials_per_sec, m.eval_seconds);
  for (const auto& [level, secs] : m.eval_seconds_per_level) {
    std::printf("  level %-12s %.2fs\n", level.c_str(), secs);
  }
  std::printf("  stages: patch %.2fs, predecode %.2fs, run %.2fs, "
              "verify %.2fs\n",
              m.patch_seconds, m.predecode_seconds, m.run_seconds,
              m.verify_seconds);
  if (m.image_cache_hits + m.image_cache_misses > 0) {
    std::printf("incremental: %zu image hit(s) / %zu miss(es), %zu func "
                "segment(s) reused / %zu patched, ~%.3fs patch + %.3fs "
                "predecode saved\n",
                m.image_cache_hits, m.image_cache_misses, m.funcs_reused,
                m.funcs_patched, m.patch_saved_seconds,
                m.predecode_saved_seconds);
  }
  if (!m.failures_by_class.empty()) {
    std::printf("failed trials by class:\n");
    for (const auto& [cls_name, count] : m.failures_by_class) {
      std::printf("  %-16s %zu\n", cls_name.c_str(), count);
    }
  }
  if (m.retries > 0 || m.quarantined > 0) {
    std::printf("supervision: %zu retry attempt(s), %zu quarantined "
                "config(s)\n", m.retries, m.quarantined);
  }
  if (m.profile_degraded) {
    std::printf("note: profiling run failed; search used unweighted "
                "structure-order prioritisation\n");
  }
  if (opts.isolate_trials) {
    std::printf("isolation: %zu worker trial(s), %zu crash(es), "
                "%zu respawn(s), %zu timeout kill(s), %zu protocol "
                "error(s), %zu config(s) quarantined by the breaker\n",
                m.isolated_trials, m.worker_crashes, m.worker_respawns,
                m.worker_timeouts, m.protocol_errors, m.crash_quarantined);
    if (m.delta_requests + m.full_requests > 0) {
      std::printf("wire: %zu delta frame(s) (%zu B) + %zu full frame(s) "
                  "(%zu B)\n",
                  m.delta_requests, m.delta_bytes, m.full_requests,
                  m.full_bytes);
    }
    for (std::size_t i = 0; i < m.worker_slots.size(); ++i) {
      const search::WorkerSlotMetrics& s = m.worker_slots[i];
      std::printf("  worker %zu: %zu request(s), %zu respawn(s), "
                  "%zu crash(es), %zu timeout(s), %zu quarantine(s)\n",
                  i, s.requests, s.respawns, s.crashes, s.timeouts,
                  s.quarantines);
    }
    if (!m.crashes_by_signal.empty()) {
      std::printf("worker crash census:\n");
      for (const auto& [sig, count] : m.crashes_by_signal) {
        std::printf("  %-12s %zu\n", sig.c_str(), count);
      }
    }
    if (m.isolation_degraded) {
      std::printf("note: isolation unavailable; trials ran in-process\n");
    }
    if (m.crash_storm) {
      std::printf("ERROR: worker crash storm; search results incomplete\n");
    }
  }
  if (!opts.endpoints.empty()) {
    std::printf("distributed: %zu remote trial(s), %zu shard-cache hit(s), "
                "%zu failover(s), %zu reconnect(s), %zu endpoint(s) lost, "
                "%zu unserved\n",
                m.remote_trials, m.shard_cache_hits, m.endpoint_failovers,
                m.endpoint_reconnects, m.endpoints_lost, m.remote_unserved);
    if (m.adopted_records > 0) {
      std::printf("failover: adopted %llu journal record(s) from the "
                  "fleet\n",
                  static_cast<unsigned long long>(m.adopted_records));
    }
    if (m.missed_beats + m.lease_expiries + m.late_results +
            m.redispatched + m.breaker_trips > 0) {
      std::printf("liveness: %zu missed beat(s), %zu lease expiry(ies), "
                  "%zu late result(s) discarded, %zu trial(s) "
                  "re-dispatched, %zu breaker trip(s)\n",
                  m.missed_beats, m.lease_expiries, m.late_results,
                  m.redispatched, m.breaker_trips);
    }
    if (m.gossip_rounds + m.records_repaired + m.shards_reloaded +
            m.disk_faults + m.state_degraded > 0) {
      std::printf("durability: %zu gossip round(s), %zu record(s) "
                  "repaired, %zu shard(s) reloaded, %zu disk fault(s), "
                  "%zu endpoint(s) degraded to in-memory state\n",
                  m.gossip_rounds, m.records_repaired, m.shards_reloaded,
                  m.disk_faults, m.state_degraded);
    }
    for (const search::EndpointMetrics& em : m.endpoints_used) {
      std::printf("  endpoint %s: %u worker(s), %zu trial(s), %zu cache "
                  "hit(s), %zu failover(s), %.2fs busy%s%s\n",
                  em.address.c_str(), em.workers, em.trials, em.cache_hits,
                  em.failovers, 1e-9 * static_cast<double>(em.busy_ns),
                  em.lost ? " (lost)" : "",
                  em.state_degraded ? " (state degraded)" : "");
      if (em.pings > 0) {
        std::printf("    heartbeat: %zu ping(s) / %zu pong(s), rtt p50 "
                    "%llu us, p95 %llu us, max %llu us\n",
                    em.pings, em.pongs,
                    static_cast<unsigned long long>(em.rtt_p50_us),
                    static_cast<unsigned long long>(em.rtt_p95_us),
                    static_cast<unsigned long long>(em.rtt_max_us));
      }
      if (em.gossip_rounds > 0) {
        std::printf("    gossip: %zu round(s), %zu record(s) re-streamed\n",
                    em.gossip_rounds, em.records_repaired);
      }
    }
    if (m.remote_degraded) {
      std::printf("note: no endpoint usable; the search ran locally\n");
    }
  }
  if (m.jit_downgraded > 0) {
    std::printf("note: jit engine unavailable for %zu evaluator(s); those "
                "trials ran on the micro-op engine (results identical)\n",
                m.jit_downgraded);
  }
  std::printf("final configuration: %.1f%% static / %.1f%% dynamic "
              "replacement, composition %s\n",
              res.stats.static_pct, res.stats.dynamic_pct,
              res.final_passed ? "PASSES" : "FAILS");
  if (res.refined) {
    std::printf("refined composition: %.1f%% static / %.1f%% dynamic, "
                "verified passing\n",
                res.refined_stats.static_pct, res.refined_stats.dynamic_pct);
  }

  const config::PrecisionConfig& best =
      (res.refined && !res.final_passed) ? res.refined_config
                                         : res.final_config;
  const std::string text = config::to_text(index, best);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << text;
    std::printf("configuration written to %s\n", out_path.c_str());
  } else {
    std::printf("\n%s", text.c_str());
  }
  if (!metrics_path.empty()) {
    if (!write_metrics_json(metrics_path, res)) {
      std::fprintf(stderr, "cannot write metrics JSON to %s\n",
                   metrics_path.c_str());
      return 3;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  // Distinct exit codes so scripts and CI can tell "the program resists
  // mixed precision" (1, a clean scientific result) from "the harness
  // itself broke" (3).
  const auto internal_it = m.failures_by_class.find("internal-error");
  if (m.crash_storm ||
      (internal_it != m.failures_by_class.end() && internal_it->second > 0)) {
    return 3;
  }
  const bool composition_ok =
      res.final_passed || (res.refined && res.refined_stats.replaced_static >
                                             0);
  return composition_ok ? 0 : 1;
}
