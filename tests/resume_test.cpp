// Crash-safe resumable search: the journal-backed trial cache must make a
// resumed search behave exactly like an uninterrupted one -- byte-identical
// final configuration, identical trial count -- while performing zero live
// verifier evaluations for already-journaled configurations.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "config/textio.hpp"
#include "kernels/workload.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "runner/trial_runner.hpp"
#include "search/search.hpp"
#include "search/trial_cache.hpp"
#include "support/fault.hpp"
#include "support/journal.hpp"
#include "support/strings.hpp"
#include "verify/evaluate.hpp"

namespace fpmix::search {
namespace {

using config::Precision;
using lang::Builder;
using lang::Expr;

struct Prepared {
  program::Image image;
  config::StructureIndex index;
  std::unique_ptr<verify::Verifier> verifier;
};

/// A mixed-sensitivity program that forces a deep search: a straight-line
/// run of independently narrowable adds (found via binary splitting) plus a
/// precision-critical tail that must be refused down to the instruction
/// level, so the journal records trials at several descent levels.
lang::ProgramModel deep_search_program() {
  Builder b;
  b.begin_func("main", "m");
  auto good = b.var_f64("good");
  auto bad = b.var_f64("bad");
  b.set(good, b.cf(0.0));
  for (int k = 0; k < 24; ++k) {
    b.set(good, floor_(Expr(good) + b.cf(1.0 + k)));
  }
  b.set(bad, b.cf(1.0) / b.cf(3.0) + b.cf(1.0) / b.cf(7.0));
  b.output(good);
  b.output(bad);
  b.end_func();
  return b.take_model();
}

Prepared prepare(double rel_tol = 1e-12) {
  Prepared p{program::relayout(lang::compile(deep_search_program(),
                                             lang::Mode::kDouble)),
             {}, nullptr};
  p.index = config::StructureIndex::build(program::lift(p.image));
  std::vector<double> ref = verify::reference_outputs(p.image);
  p.verifier =
      std::make_unique<verify::RelativeErrorVerifier>(std::move(ref),
                                                      rel_tol);
  return p;
}

std::string temp_journal(const char* name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(Resume, WarmRunIsAllCacheHitsAndByteIdentical) {
  const std::string journal = temp_journal("resume_warm.jsonl");

  SearchOptions opts;
  opts.journal_path = journal;

  Prepared p1 = prepare();
  const SearchResult cold = run_search(p1.image, &p1.index, *p1.verifier,
                                       opts);
  EXPECT_EQ(cold.metrics.trials_cached, 0u);
  EXPECT_EQ(cold.metrics.trials_live, cold.configs_tested);
  EXPECT_GT(cold.configs_tested, 5u);  // the search actually descended

  Prepared p2 = prepare();
  const SearchResult warm = run_search(p2.image, &p2.index, *p2.verifier,
                                       opts);

  // Zero verifier evaluations: every trial, composition included, is
  // served from the journal.
  EXPECT_EQ(warm.metrics.trials_live, 0u);
  EXPECT_EQ(warm.metrics.trials_cached, warm.configs_tested);
  EXPECT_DOUBLE_EQ(warm.metrics.cache_hit_rate, 100.0);
  for (const TestRecord& rec : warm.trace) {
    EXPECT_TRUE(rec.cached) << rec.unit;
  }

  // Identical outcome, down to the serialized bytes.
  EXPECT_EQ(warm.configs_tested, cold.configs_tested);
  EXPECT_EQ(warm.final_config, cold.final_config);
  EXPECT_EQ(warm.final_passed, cold.final_passed);
  EXPECT_EQ(config::to_text(p2.index, warm.final_config),
            config::to_text(p1.index, cold.final_config));
  std::remove(journal.c_str());
}

TEST(Resume, TruncatedJournalResumesToUninterruptedResult) {
  const std::string journal = temp_journal("resume_trunc.jsonl");

  // Reference: an uninterrupted search with no journal at all.
  Prepared pr = prepare();
  const SearchResult uninterrupted =
      run_search(pr.image, &pr.index, *pr.verifier, {});

  // A full journaled run, then simulate a crash mid-level: keep roughly
  // half the records and cut the next one mid-line (an append that died).
  SearchOptions opts;
  opts.journal_path = journal;
  {
    Prepared p = prepare();
    run_search(p.image, &p.index, *p.verifier, opts);
  }
  const auto lines = Journal::read_lines(journal);
  ASSERT_GT(lines.size(), 6u);
  const std::size_t keep = lines.size() / 2;
  {
    std::ofstream f(journal, std::ios::trunc | std::ios::binary);
    for (std::size_t i = 0; i < keep; ++i) f << lines[i] << '\n';
    f << lines[keep].substr(0, lines[keep].size() / 2);  // torn write
  }

  // Resume. The torn record is dropped, the complete prefix is replayed,
  // and the search finishes the remainder live.
  Prepared p2 = prepare();
  const SearchResult resumed =
      run_search(p2.image, &p2.index, *p2.verifier, opts);
  EXPECT_GT(resumed.metrics.trials_cached, 0u);
  EXPECT_GT(resumed.metrics.trials_live, 0u);

  // Cached + live together must equal the uninterrupted run exactly.
  EXPECT_EQ(resumed.configs_tested, uninterrupted.configs_tested);
  EXPECT_EQ(resumed.final_config, uninterrupted.final_config);
  EXPECT_EQ(resumed.final_passed, uninterrupted.final_passed);
  EXPECT_EQ(config::to_text(p2.index, resumed.final_config),
            config::to_text(pr.index, uninterrupted.final_config));

  // And a third run over the now-complete journal is 100% warm again.
  Prepared p3 = prepare();
  const SearchResult warm = run_search(p3.image, &p3.index, *p3.verifier,
                                       opts);
  EXPECT_EQ(warm.metrics.trials_live, 0u);
  EXPECT_EQ(warm.final_config, uninterrupted.final_config);
  std::remove(journal.c_str());
}

TEST(Resume, InteriorCorruptionIsSkippedAndReEvaluated) {
  const std::string journal = temp_journal("resume_corrupt.jsonl");

  Prepared pr = prepare();
  const SearchResult uninterrupted =
      run_search(pr.image, &pr.index, *pr.verifier, {});

  SearchOptions opts;
  opts.journal_path = journal;
  {
    Prepared p = prepare();
    run_search(p.image, &p.index, *p.verifier, opts);
  }

  // Flip one byte in the middle of an interior *trial* line (the meta
  // record is line 0): its CRC no longer matches, so replay must skip
  // exactly that record and the resumed search re-evaluates it live.
  auto lines = Journal::read_lines(journal);
  ASSERT_GT(lines.size(), 4u);
  std::string& victim = lines[lines.size() / 2];
  victim[victim.size() / 2] ^= 0x1;
  {
    std::ofstream f(journal, std::ios::trunc | std::ios::binary);
    for (const auto& l : lines) f << l << '\n';
  }

  Prepared p2 = prepare();
  const SearchResult resumed =
      run_search(p2.image, &p2.index, *p2.verifier, opts);
  EXPECT_GT(resumed.metrics.trials_cached, 0u);
  EXPECT_EQ(resumed.metrics.trials_live, 1u);  // only the damaged record
  EXPECT_EQ(resumed.configs_tested, uninterrupted.configs_tested);
  EXPECT_EQ(config::to_text(p2.index, resumed.final_config),
            config::to_text(pr.index, uninterrupted.final_config));

  // The re-evaluated trial was re-journaled: a third run is fully warm.
  Prepared p3 = prepare();
  const SearchResult warm = run_search(p3.image, &p3.index, *p3.verifier,
                                       opts);
  EXPECT_EQ(warm.metrics.trials_live, 0u);
  EXPECT_EQ(warm.final_config, uninterrupted.final_config);
  std::remove(journal.c_str());
}

TEST(Resume, DuplicatedLinesAreIgnoredOnReplay) {
  const std::string journal = temp_journal("resume_dup.jsonl");

  SearchOptions opts;
  opts.journal_path = journal;
  config::PrecisionConfig cold_config;
  {
    Prepared p = prepare();
    cold_config = run_search(p.image, &p.index, *p.verifier, opts)
                      .final_config;
  }

  // Replay a run of interior lines (a doubled write / copy-paste merge
  // accident). Sequence numbers expose the duplicates; replay keeps the
  // first copy of each and the warm run stays 100% cached.
  auto lines = Journal::read_lines(journal);
  ASSERT_GT(lines.size(), 3u);
  {
    std::ofstream f(journal, std::ios::trunc | std::ios::binary);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      f << lines[i] << '\n';
      if (i >= 1 && i <= 3) f << lines[i] << '\n';  // duplicate
    }
  }

  Prepared p2 = prepare();
  const SearchResult warm = run_search(p2.image, &p2.index, *p2.verifier,
                                       opts);
  EXPECT_EQ(warm.metrics.trials_live, 0u);
  EXPECT_EQ(warm.final_config, cold_config);
  std::remove(journal.c_str());
}

TEST(Resume, MixedVersionJournalReplaysBothFormats) {
  // A journal whose first session predates sealing (version-1 unsealed
  // lines) continued by a sealed session: both formats replay, and a
  // resumed search over the mixture is fully warm.
  const std::string journal = temp_journal("resume_mixed.jsonl");

  SearchOptions opts;
  opts.journal_path = journal;
  config::PrecisionConfig cold_config;
  {
    Prepared p = prepare();
    cold_config = run_search(p.image, &p.index, *p.verifier, opts)
                      .final_config;
  }

  // Strip the seals from the first half of the records, turning them into
  // version-1 lines (drop the ,"seq":N,"crc":"..." splice).
  auto lines = Journal::read_lines(journal);
  ASSERT_GT(lines.size(), 4u);
  for (std::size_t i = 0; i < lines.size() / 2; ++i) {
    const std::size_t pos = lines[i].rfind(",\"seq\":");
    ASSERT_NE(pos, std::string::npos);
    lines[i] = lines[i].substr(0, pos) + "}";
    ASSERT_EQ(check_seal(lines[i]), SealCheck::kUnsealed);
  }
  {
    std::ofstream f(journal, std::ios::trunc | std::ios::binary);
    for (const auto& l : lines) f << l << '\n';
  }

  Prepared p2 = prepare();
  const SearchResult warm = run_search(p2.image, &p2.index, *p2.verifier,
                                       opts);
  EXPECT_EQ(warm.metrics.trials_live, 0u);
  EXPECT_EQ(warm.final_config, cold_config);
  std::remove(journal.c_str());
}

TEST(Resume, JournalFromDifferentVerifierIsIgnored) {
  const std::string journal = temp_journal("resume_foreign.jsonl");

  SearchOptions opts;
  opts.journal_path = journal;
  {
    Prepared p = prepare(1e-12);
    run_search(p.image, &p.index, *p.verifier, opts);
  }

  // A looser tolerance is a different search identity: journaled verdicts
  // must not transfer. The run must look exactly like the same search with
  // no journal at all (intra-run dedup hits -- here the final composition
  // equalling the already-passed module config -- are still allowed).
  Prepared pb = prepare(1e-2);
  const SearchResult base = run_search(pb.image, &pb.index, *pb.verifier,
                                       {});
  Prepared p2 = prepare(1e-2);
  const SearchResult res = run_search(p2.image, &p2.index, *p2.verifier,
                                      opts);
  EXPECT_EQ(res.metrics.trials_cached, base.metrics.trials_cached);
  EXPECT_EQ(res.metrics.trials_live, base.metrics.trials_live);
  EXPECT_EQ(res.configs_tested, base.configs_tested);
  EXPECT_EQ(res.final_config, base.final_config);
  std::remove(journal.c_str());
}

TEST(Resume, ResumeOffAppendsButNeverConsults) {
  const std::string journal = temp_journal("resume_off.jsonl");

  SearchOptions opts;
  opts.journal_path = journal;
  {
    Prepared p = prepare();
    run_search(p.image, &p.index, *p.verifier, opts);
  }
  const std::size_t lines_after_first = Journal::read_lines(journal).size();

  opts.resume = false;
  Prepared p2 = prepare();
  const SearchResult res = run_search(p2.image, &p2.index, *p2.verifier,
                                      opts);
  EXPECT_EQ(res.metrics.trials_cached, 0u);
  EXPECT_GT(Journal::read_lines(journal).size(), lines_after_first);
  std::remove(journal.c_str());
}

TEST(Resume, ParallelWarmRunMatchesSerial) {
  // Thread count must not perturb journal identity or replay: a warm
  // 4-thread run over a serial run's journal is still 100% cached.
  const std::string journal = temp_journal("resume_parallel.jsonl");

  SearchOptions serial;
  serial.journal_path = journal;
  Prepared p1 = prepare();
  const SearchResult cold = run_search(p1.image, &p1.index, *p1.verifier,
                                       serial);

  SearchOptions parallel = serial;
  parallel.num_threads = 4;
  Prepared p2 = prepare();
  const SearchResult warm = run_search(p2.image, &p2.index, *p2.verifier,
                                       parallel);
  EXPECT_EQ(warm.metrics.trials_live, 0u);
  EXPECT_EQ(warm.configs_tested, cold.configs_tested);
  EXPECT_EQ(warm.final_config, cold.final_config);
  std::remove(journal.c_str());
}

TEST(Resume, IsolatedWorkerDeathsLeaveJournalWholeAndReplayable) {
  // Sandboxed trial workers are killed mid-trial by an injected hard-fault
  // campaign (SIGKILL/SIGSEGV between accepting a request and delivering
  // its result, plus truncated result frames). The journal must still hold
  // only whole, CRC-sealed, uniquely-sequenced records, and a resume over
  // it must replay byte-identically with zero live evaluations.
  if (!runner::isolation_supported()) {
    GTEST_SKIP() << "no fork on this platform";
  }
  const std::string journal = temp_journal("resume_isolated.jsonl");

  // Clean in-process reference: hard faults are retried, never voted, so
  // even the faulted run must land exactly here.
  Prepared pr = prepare();
  const SearchResult clean = run_search(pr.image, &pr.index, *pr.verifier,
                                        {});
  const std::string clean_text = config::to_text(pr.index,
                                                 clean.final_config);

  fault::Injector::Rates rates;
  rates.kill = 0.08;
  rates.segv = 0.05;
  rates.trunc_result = 0.03;
  const fault::Injector injector(0xD1ED, rates);

  SearchOptions opts;
  opts.journal_path = journal;
  opts.isolate_trials = true;
  opts.num_workers = 2;
  opts.max_trial_crashes = 6;
  opts.fault_injector = &injector;

  Prepared p1 = prepare();
  const SearchResult cold = run_search(p1.image, &p1.index, *p1.verifier,
                                       opts);
  // The campaign actually killed workers, and the search still converged
  // to the clean result.
  EXPECT_GT(cold.metrics.worker_crashes + cold.metrics.protocol_errors, 0u);
  EXPECT_EQ(cold.metrics.crash_quarantined, 0u);
  EXPECT_EQ(config::to_text(p1.index, cold.final_config), clean_text);

  // No torn or duplicate records despite the carnage.
  const auto lines = Journal::read_lines(journal);
  ASSERT_FALSE(lines.empty());
  std::set<std::uint64_t> seqs;
  for (const std::string& line : lines) {
    ASSERT_EQ(check_seal(line), SealCheck::kOk) << line;
    const std::size_t at = line.find("\"seq\":");
    ASSERT_NE(at, std::string::npos) << line;
    std::uint64_t seq = 0;
    ASSERT_TRUE(parse_u64(line.substr(at + 6,
                                      line.find_first_of(",}", at + 6) -
                                          (at + 6)),
                          &seq))
        << line;
    EXPECT_TRUE(seqs.insert(seq).second) << "duplicate seq in " << line;
  }

  // Resume: byte-identical replay, zero live evaluations, zero worker
  // executions, and only the new meta line appended to the journal.
  Prepared p2 = prepare();
  const SearchResult warm = run_search(p2.image, &p2.index, *p2.verifier,
                                       opts);
  EXPECT_EQ(warm.metrics.trials_live, 0u);
  EXPECT_EQ(warm.metrics.isolated_trials, 0u);
  EXPECT_EQ(warm.configs_tested, cold.configs_tested);
  EXPECT_EQ(config::to_text(p2.index, warm.final_config), clean_text);
  EXPECT_EQ(Journal::read_lines(journal).size(), lines.size() + 1);
  std::remove(journal.c_str());
}

TEST(Resume, MetricsAccounting) {
  Prepared p = prepare();
  const SearchResult res = run_search(p.image, &p.index, *p.verifier, {});
  const SearchMetrics& m = res.metrics;
  EXPECT_EQ(m.trials_total, res.configs_tested);
  EXPECT_EQ(m.trials_live + m.trials_cached, m.trials_total);
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_GT(m.trials_per_sec, 0.0);
  EXPECT_GT(m.eval_seconds, 0.0);
  // Per-level attribution sums to the live total and includes the final
  // composition level.
  double sum = 0.0;
  for (const auto& [level, secs] : m.eval_seconds_per_level) sum += secs;
  EXPECT_NEAR(sum, m.eval_seconds, 1e-9);
  EXPECT_TRUE(m.eval_seconds_per_level.contains("composition"));
  // Trace carries per-trial identity and timing.
  for (const TestRecord& rec : res.trace) {
    EXPECT_EQ(rec.key.size(), 16u) << rec.unit;
    EXPECT_FALSE(rec.cached);
    EXPECT_GT(rec.eval_ns, 0u) << rec.unit;
  }
}

TEST(TrialCacheUnit, FirstInsertWinsAndFingerprintSeparates) {
  TrialCache cache;
  cache.insert("k1", CachedTrial{true, verify::FailureClass::kNone, "", 5});
  cache.insert("k1", CachedTrial{false, verify::FailureClass::kTrap,
                                 "later", 9});
  ASSERT_NE(cache.lookup("k1"), nullptr);
  EXPECT_TRUE(cache.lookup("k1")->passed);
  EXPECT_EQ(cache.lookup("missing"), nullptr);

  EXPECT_NE(search_fingerprint("verifier-a", 100),
            search_fingerprint("verifier-b", 100));
  EXPECT_NE(search_fingerprint("verifier-a", 100),
            search_fingerprint("verifier-a", 200));
  EXPECT_EQ(search_fingerprint("verifier-a", 100),
            search_fingerprint("verifier-a", 100));
}

TEST(TrialCacheUnit, LoadJournalHonoursMetaFingerprint) {
  const std::string path = temp_journal("trial_cache_load.jsonl");
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    j.append(encode_meta_line("fp-one"));
    j.append(encode_trial_line(
        "aaaa", "module m", 3,
        CachedTrial{true, verify::FailureClass::kNone, "", 11}));
    j.append(encode_meta_line("fp-two"));
    j.append(encode_trial_line(
        "bbbb", "func f", 2,
        CachedTrial{false, verify::FailureClass::kTrap,
                    "trap: tag escape", 7}));
    j.append("this is not json");
    j.append("{\"type\":\"trial\",\"passed\":true}");  // missing key
  }
  TrialCache cache;
  EXPECT_EQ(load_journal(path, "fp-two", &cache), 1u);
  EXPECT_EQ(cache.lookup("aaaa"), nullptr);  // other fingerprint
  const CachedTrial* t = cache.lookup("bbbb");
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(t->passed);
  EXPECT_EQ(t->failure, "trap: tag escape");
  EXPECT_EQ(t->eval_ns, 7u);
  std::remove(path.c_str());
}

TEST(TrialCacheUnit, ReplayStatsBreakdown) {
  const std::string path = temp_journal("trial_cache_stats.jsonl");
  const CachedTrial ok{true, verify::FailureClass::kNone, "", 5};
  const CachedTrial bad{false, verify::FailureClass::kTrap, "trap: x", 6};
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    j.append_sealed(encode_meta_line("fp"));                    // seq 1
    j.append_sealed(encode_trial_line("k1", "u1", 1, ok));      // seq 2
    j.append_sealed(encode_trial_line("k2", "u2", 1, bad));     // seq 3
    j.set_next_seq(6);
    j.append_sealed(encode_trial_line("k3", "u3", 1, ok));      // seq 6: gap
    j.append(encode_trial_line("k4", "u4", 1, ok));             // legacy
  }
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    // Replayed line (seq 2 again), a corrupted seal, and plain garbage.
    f << seal_record(encode_trial_line("k1", "u1", 1, ok), 2) << '\n';
    std::string corrupt = seal_record(encode_trial_line("k5", "u5", 1, ok), 7);
    corrupt[corrupt.size() / 2] ^= 0x1;
    f << corrupt << '\n';
    f << "@@noise, not json\n";
  }

  TrialCache cache;
  JournalReplayStats stats;
  EXPECT_EQ(load_journal(path, "fp", &cache, &stats), 4u);
  EXPECT_EQ(stats.loaded, 4u);  // k1..k3 sealed + k4 legacy
  EXPECT_EQ(stats.legacy, 1u);
  EXPECT_EQ(stats.seq_gaps, 1u);
  EXPECT_EQ(stats.duplicate_seq, 1u);
  EXPECT_EQ(stats.crc_mismatch, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.foreign, 0u);
  EXPECT_NE(cache.lookup("k1"), nullptr);
  EXPECT_NE(cache.lookup("k3"), nullptr);
  EXPECT_NE(cache.lookup("k4"), nullptr);
  EXPECT_EQ(cache.lookup("k5"), nullptr);  // its record failed the seal
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fpmix::search
