// Configuration evaluation: patch, run, verify -- the inner loop of the
// automatic search and the "Configuration Evaluation" box of Figure 2.
#pragma once

#include <memory>

#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "program/image.hpp"
#include "verify/verifier.hpp"
#include "vm/machine.hpp"

namespace fpmix::verify {

struct EvalOptions {
  std::uint64_t max_instructions = 1ull << 32;
  bool profile = false;
};

struct EvalResult {
  bool passed = false;
  vm::RunResult::Status run_status = vm::RunResult::Status::kHalted;
  std::string failure;               // empty when passed
  std::vector<double> outputs;
  std::uint64_t instructions_retired = 0;
  instrument::InstrumentStats stats;
};

/// Builds the mixed-precision binary for `cfg` and evaluates it. Crashes,
/// traps and instruction-budget blowups count as verification failures
/// (with the reason recorded), exactly as a crashed test run does in the
/// paper's search harness.
EvalResult evaluate_config(const program::Image& original,
                           const config::StructureIndex& index,
                           const config::PrecisionConfig& cfg,
                           const Verifier& verifier,
                           const EvalOptions& options = {});

/// Runs the unmodified binary and returns its outputs (the reference for
/// RelativeErrorVerifier / BitExactVerifier) -- throws on failure.
std::vector<double> reference_outputs(const program::Image& original,
                                      std::uint64_t max_instructions =
                                          1ull << 32);

}  // namespace fpmix::verify
