// LRU cache of fully built trial executables.
//
// Keyed by (original-image fingerprint, config stable_hash); the config's
// canonical key is stored alongside each entry as a collision guard, so a
// 64-bit hash collision degrades to a cache miss -- never to running the
// wrong image. Within one search a given configuration is normally tried
// once (the trial cache dedupes), so whole-image hits come from retries,
// majority-vote rounds and fault-campaign re-evaluations; the per-function
// variant cache underneath (instrument::IncrementalPatcher) carries the
// cross-trial reuse.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "instrument/patch.hpp"
#include "support/hash.hpp"
#include "vm/exec_image.hpp"

namespace fpmix::verify {

class ImageCache {
 public:
  struct Entry {
    std::shared_ptr<const vm::ExecutableImage> exec;
    instrument::InstrumentStats stats;
  };

  explicit ImageCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the cached entry (refreshing its recency) or nullptr. The
  /// pointer is invalidated by the next insert().
  const Entry* find(std::uint64_t fingerprint, std::uint64_t config_hash,
                    std::string_view canonical_key);

  /// Inserts (or replaces) an entry, evicting the least recently used one
  /// beyond capacity.
  void insert(std::uint64_t fingerprint, std::uint64_t config_hash,
              std::string canonical_key, Entry entry);

  std::size_t size() const { return lru_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Node {
    std::uint64_t mixed_key = 0;
    std::string canonical_key;
    Entry entry;
  };

  static std::uint64_t mix(std::uint64_t fingerprint,
                           std::uint64_t config_hash) {
    return fnv1a64_mix(fnv1a64_mix(kFnv1a64Offset, fingerprint),
                       config_hash);
  }

  std::size_t capacity_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Node>::iterator> by_key_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Stable fingerprint of an original image (code, data, layout bases and
/// entry): the cache-key half that invalidates every entry when the image
/// itself changes.
std::uint64_t image_fingerprint(const program::Image& image);

}  // namespace fpmix::verify
