#include "support/fault.hpp"

#include <cstdio>
#include <fstream>

#include "support/hash.hpp"
#include "support/journal.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace fpmix::fault {

namespace {

/// Uniform double in [0, 1) from one SplitMix64 draw.
double unit_draw(SplitMix64* rng) { return rng->next_double(); }

}  // namespace

TrialFaults Injector::for_trial(std::string_view trial_key,
                                std::uint32_t attempt) const {
  // One stable stream per (campaign, trial, attempt): identical decisions
  // no matter which thread evaluates the trial or how often it is retried
  // with the same attempt index.
  std::uint64_t h = fnv1a64(trial_key, seed_ ^ kFnv1a64Offset);
  h = fnv1a64_mix(h, attempt);
  SplitMix64 rng(h);

  TrialFaults out;
  const double v = unit_draw(&rng);
  double edge = rates_.abort;
  if (v < edge) {
    out.vm.kind = VmFault::kAbort;
  } else if (v < (edge += rates_.bitflip)) {
    out.vm.kind = VmFault::kBitFlip;
  } else if (v < (edge += rates_.sentinel)) {
    out.vm.kind = VmFault::kSentinel;
  } else if (v < (edge += rates_.stall)) {
    out.vm.kind = VmFault::kStall;
  }
  if (out.vm.kind != VmFault::kNone) {
    // Early enough that short trial programs usually reach the fault point;
    // a spec that outlives the run is a harmless no-op.
    out.vm.at_retired = 1 + rng.next_below(256);
    out.vm.seed = rng.next_u64();
  }
  out.flip_verdict = unit_draw(&rng) < rates_.flaky;

  // Hard faults: an independent draw (a campaign can combine soft and hard
  // kinds), first match wins among the mutually exclusive process killers.
  const double hv = unit_draw(&rng);
  double hedge = rates_.segv;
  if (hv < hedge) {
    out.hard = HardFault::kSegv;
  } else if (hv < (hedge += rates_.kill)) {
    out.hard = HardFault::kKill;
  } else if (hv < (hedge += rates_.oom)) {
    out.hard = HardFault::kOomStorm;
  } else if (hv < (hedge += rates_.hang)) {
    out.hard = HardFault::kHang;
  } else if (hv < (hedge += rates_.hang_ignore_term)) {
    out.hard = HardFault::kHangIgnoreTerm;
  } else if (hv < (hedge += rates_.trunc_result)) {
    out.hard = HardFault::kTruncResult;
  } else if (hv < (hedge += rates_.corrupt_result)) {
    out.hard = HardFault::kCorruptResult;
  }
  if (out.hard != HardFault::kNone) out.hard_seed = rng.next_u64();
  return out;
}

std::string Injector::fingerprint_tag() const {
  std::uint64_t h = fnv1a64("fault-campaign", seed_);
  const double rs[] = {rates_.abort,          rates_.bitflip,
                       rates_.sentinel,       rates_.stall,
                       rates_.flaky,          rates_.segv,
                       rates_.kill,           rates_.oom,
                       rates_.hang,           rates_.hang_ignore_term,
                       rates_.trunc_result,   rates_.corrupt_result};
  for (const double r : rs) {
    h = fnv1a64_mix(h, static_cast<std::uint64_t>(r * 1e9));
  }
  return hex_digest(h);
}

NetFault NetChaos::for_op(std::uint64_t conn_id,
                          std::uint64_t op_index) const {
  std::uint64_t h = fnv1a64("net-chaos", seed_);
  h = fnv1a64_mix(h, conn_id);
  h = fnv1a64_mix(h, op_index);
  SplitMix64 rng(h);
  const double v = unit_draw(&rng);
  double edge = rates_.reset;
  NetFault kind = NetFault::kNone;
  if (v < edge) {
    kind = NetFault::kConnReset;
  } else if (v < (edge += rates_.stall)) {
    kind = NetFault::kStall;
  } else if (v < (edge += rates_.delay)) {
    kind = NetFault::kDelayFrame;
  } else if (v < (edge += rates_.dup)) {
    kind = NetFault::kDupFrame;
  } else if (v < (edge += rates_.reorder)) {
    kind = NetFault::kReorderFrames;
  }
  // A held first frame (the hello) would never flush; see the header.
  if (op_index == 0 && (kind == NetFault::kDelayFrame ||
                        kind == NetFault::kReorderFrames)) {
    kind = NetFault::kNone;
  }
  return kind;
}

DiskFault DiskChaos::for_op(std::string_view file_key,
                            std::uint64_t op_index) const {
  std::uint64_t h = fnv1a64("disk-chaos", seed_);
  h = fnv1a64(file_key, h);
  h = fnv1a64_mix(h, op_index);
  SplitMix64 rng(h);
  const double v = unit_draw(&rng);
  double edge = rates_.short_write;
  DiskFault kind = DiskFault::kNone;
  if (v < edge) {
    kind = DiskFault::kShortWrite;
  } else if (v < (edge += rates_.torn_record)) {
    kind = DiskFault::kTornRecord;
  } else if (v < (edge += rates_.fsync_fail)) {
    kind = DiskFault::kFsyncFail;
  } else if (v < (edge += rates_.enospc)) {
    kind = DiskFault::kEnospc;
  } else if (v < (edge += rates_.unreadable)) {
    kind = DiskFault::kUnreadable;
  }
  // Reload (op 0) can only fail by being unreadable; write kinds there would
  // be meaningless. Symmetrically, an append cannot be "unreadable".
  if (op_index == 0) {
    if (kind != DiskFault::kUnreadable) kind = DiskFault::kNone;
  } else if (kind == DiskFault::kUnreadable) {
    kind = DiskFault::kNone;
  }
  return kind;
}

bool sabotage_journal(const std::string& path, JournalFault kind,
                      std::uint64_t seed) {
  std::vector<std::string> lines = Journal::read_lines(path);
  if (lines.empty()) return false;
  SplitMix64 rng(seed);

  bool torn_tail = false;
  std::string torn;
  switch (kind) {
    case JournalFault::kTruncateTail: {
      // A crash mid-append: the final line survives only up to a random
      // byte and has no terminating newline.
      torn = lines.back();
      lines.pop_back();
      if (torn.size() > 1) torn.resize(1 + rng.next_below(torn.size() - 1));
      torn_tail = true;
      break;
    }
    case JournalFault::kCorruptInterior: {
      const std::size_t i = rng.next_below(lines.size());
      std::string& l = lines[i];
      if (l.empty()) return false;
      const std::size_t at = rng.next_below(l.size());
      // Flip a low bit so the line stays newline-free printable-ish text;
      // never produces '\n' from a printable byte.
      l[at] = static_cast<char>((l[at] ^ 0x1) | 0x20);
      break;
    }
    case JournalFault::kDuplicateLine: {
      const std::size_t i = rng.next_below(lines.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i + 1),
                   lines[i]);
      break;
    }
    case JournalFault::kGarbageLine: {
      const std::size_t i = rng.next_below(lines.size() + 1);
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i),
                   strformat("@@journal-noise %llx not json",
                             static_cast<unsigned long long>(rng.next_u64())));
      break;
    }
  }

  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) return false;
  for (const std::string& l : lines) f << l << '\n';
  if (torn_tail) f << torn;
  return static_cast<bool>(f);
}

}  // namespace fpmix::fault
