// PrecisionConfig: a hierarchical precision assignment over a program's
// structure (Section 2.1).
//
// Flags may be set at module, function, block or instruction level. An
// aggregate's flag overrides all flags of its children, exactly as the
// paper's exchange format specifies. Unflagged candidates default to double
// precision; non-candidate instructions are never narrowed regardless of
// flags (they are still wrapped with tag checks by the instrumenter).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "config/precision.hpp"
#include "config/structure.hpp"

namespace fpmix::config {

class PrecisionConfig {
 public:
  PrecisionConfig() = default;

  /// Creates an all-default (double) configuration shaped like `index`.
  explicit PrecisionConfig(const StructureIndex& index);

  // ---- Flag setters (id spaces are the StructureIndex's) -----------------
  void set_module(std::size_t m, std::optional<Precision> p);
  void set_func(std::size_t f, std::optional<Precision> p);
  void set_block(std::size_t b, std::optional<Precision> p);
  void set_instr(std::size_t i, std::optional<Precision> p);

  std::optional<Precision> module_flag(std::size_t m) const;
  std::optional<Precision> func_flag(std::size_t f) const;
  std::optional<Precision> block_flag(std::size_t b) const;
  std::optional<Precision> instr_flag(std::size_t i) const;

  // ---- Resolution ---------------------------------------------------------
  /// Effective precision of instruction id `i`, applying aggregate
  /// overrides: module > function > block > instruction > default(double).
  Precision resolve(const StructureIndex& index, std::size_t i) const;

  /// Effective precision per original instruction address (what the
  /// instrumenter consumes). Includes every instruction.
  std::map<std::uint64_t, Precision> address_map(
      const StructureIndex& index) const;

  /// Candidate instruction ids that resolve to kSingle.
  std::vector<std::size_t> replaced_candidates(
      const StructureIndex& index) const;

  // ---- Composition --------------------------------------------------------
  /// Merges `other`'s single/ignore flags into this configuration (used to
  /// assemble the "final" configuration as the union of all individually
  /// passing configurations, Section 2.2).
  void merge_union(const PrecisionConfig& other);

  /// True when no structure is flagged single (the all-double baseline).
  bool is_all_double(const StructureIndex& index) const;

  // ---- Identity -----------------------------------------------------------
  /// Canonical, index-independent serialization of the flag stores:
  /// `m<id>=<flag>;f<id>=<flag>;b<id>=<flag>;i<id>=<flag>;` in ascending id
  /// order per level. Two configs have equal keys iff they set the same
  /// flags, so the key (and its hash) identifies a search trial across
  /// process runs -- the basis of the persistent trial cache.
  std::string canonical_key() const;

  /// Stable 64-bit digest of canonical_key() (FNV-1a, hex form via
  /// fpmix::hex_digest). Never hashed with std::hash: journal files persist
  /// these digests across runs and platforms.
  std::uint64_t stable_hash() const;

  /// Inverse of canonical_key(): rebuilds the flag stores from the
  /// serialization. Index-independent, so a configuration can cross a
  /// process boundary (the sandboxed trial runner ships configs this way).
  /// Returns false on malformed input, leaving *out unspecified. Round-trip
  /// invariant: from_canonical_key(c.canonical_key()) == c.
  static bool from_canonical_key(std::string_view key, PrecisionConfig* out);

  // ---- Delta encoding -----------------------------------------------------
  /// Serializes the difference `base -> this` in the canonical-key grammar
  /// extended with an erase flag: each `<level><id>=<flag>;` segment sets a
  /// flag added or changed relative to `base`, and `<level><id>=-;` removes
  /// a flag present in `base` but absent here. Segments are emitted in the
  /// same m/f/b/i-then-ascending-id order as canonical_key(), so the
  /// encoding is itself canonical. Typically far smaller than the full key
  /// for the search's parent/child configs; the wire protocol ships it
  /// against a per-session base config.
  std::string encode_delta_from(const PrecisionConfig& base) const;

  /// Inverse: applies a delta script to `base`, producing the target
  /// configuration. Returns false on malformed input, leaving *out
  /// unspecified. Round-trip invariant:
  /// apply_delta(base, target.encode_delta_from(base)) == target.
  static bool apply_delta(const PrecisionConfig& base, std::string_view delta,
                          PrecisionConfig* out);

  bool operator==(const PrecisionConfig&) const = default;

 private:
  // Sparse flag stores: id -> flag. Sparse because search configurations
  // flag a handful of nodes in programs with thousands of instructions.
  std::map<std::size_t, Precision> module_;
  std::map<std::size_t, Precision> func_;
  std::map<std::size_t, Precision> block_;
  std::map<std::size_t, Precision> instr_;
};

/// Statistics of a configuration against an index (Figure 10 columns).
struct ReplacementStats {
  std::size_t candidates = 0;          // |Pd|
  std::size_t replaced_static = 0;     // candidates resolving to single
  double static_pct = 0.0;             // replaced_static / candidates
  std::uint64_t exec_total = 0;        // profiled executions of candidates
  std::uint64_t exec_replaced = 0;     // ... of replaced candidates
  double dynamic_pct = 0.0;            // exec_replaced / exec_total
};

ReplacementStats replacement_stats(const StructureIndex& index,
                                   const PrecisionConfig& cfg);

}  // namespace fpmix::config
