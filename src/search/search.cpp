#include "search/search.hpp"

#include <algorithm>
#include <deque>
#include <mutex>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "vm/machine.hpp"

namespace fpmix::search {

using config::Precision;
using config::PrecisionConfig;
using config::StructureIndex;

namespace {

/// A unit of the configuration space: one structure (or partition) whose
/// candidates are flipped to single precision while the rest of the program
/// stays double.
struct Unit {
  enum class Kind : std::uint8_t {
    kModule,
    kFunction,
    kFuncPart,   // contiguous range of a function's blocks
    kBlock,
    kBlockPart,  // contiguous range of a block's candidate instructions
    kInstr,
  };
  Kind kind;
  std::size_t id = 0;                 // module/function/block/instr index
  std::vector<std::size_t> blocks;    // kFuncPart
  std::vector<std::size_t> instrs;    // kBlockPart
  std::uint64_t weight = 0;           // profiled executions of candidates
  std::uint64_t seq = 0;              // tie-break for deterministic order
};

std::vector<std::size_t> unit_candidates(const StructureIndex& ix,
                                         const Unit& u) {
  switch (u.kind) {
    case Unit::Kind::kModule:
      return ix.modules()[u.id].candidates;
    case Unit::Kind::kFunction:
      return ix.funcs()[u.id].candidates;
    case Unit::Kind::kFuncPart: {
      std::vector<std::size_t> out;
      for (std::size_t b : u.blocks) {
        const auto& c = ix.blocks()[b].candidates;
        out.insert(out.end(), c.begin(), c.end());
      }
      return out;
    }
    case Unit::Kind::kBlock:
      return ix.blocks()[u.id].candidates;
    case Unit::Kind::kBlockPart:
      return u.instrs;
    case Unit::Kind::kInstr:
      return {u.id};
  }
  return {};
}

std::uint64_t weight_of(const StructureIndex& ix,
                        const std::vector<std::size_t>& candidates) {
  std::uint64_t w = 0;
  for (std::size_t i : candidates) w += ix.instrs()[i].exec_weight;
  return w;
}

PrecisionConfig config_for(const Unit& u) {
  PrecisionConfig cfg;
  switch (u.kind) {
    case Unit::Kind::kModule:
      cfg.set_module(u.id, Precision::kSingle);
      break;
    case Unit::Kind::kFunction:
      cfg.set_func(u.id, Precision::kSingle);
      break;
    case Unit::Kind::kFuncPart:
      for (std::size_t b : u.blocks) cfg.set_block(b, Precision::kSingle);
      break;
    case Unit::Kind::kBlock:
      cfg.set_block(u.id, Precision::kSingle);
      break;
    case Unit::Kind::kBlockPart:
    case Unit::Kind::kInstr:
      break;  // fallthrough below
  }
  if (u.kind == Unit::Kind::kBlockPart) {
    for (std::size_t i : u.instrs) cfg.set_instr(i, Precision::kSingle);
  } else if (u.kind == Unit::Kind::kInstr) {
    cfg.set_instr(u.id, Precision::kSingle);
  }
  return cfg;
}

std::string unit_name(const StructureIndex& ix, const Unit& u) {
  switch (u.kind) {
    case Unit::Kind::kModule:
      return strformat("module %s", ix.modules()[u.id].name.c_str());
    case Unit::Kind::kFunction:
      return strformat("func %s", ix.funcs()[u.id].name.c_str());
    case Unit::Kind::kFuncPart: {
      const auto& f = ix.funcs()[ix.blocks()[u.blocks.front()].func];
      return strformat("func %s part[%zu blocks]", f.name.c_str(),
                       u.blocks.size());
    }
    case Unit::Kind::kBlock:
      return strformat("block 0x%llx",
                       static_cast<unsigned long long>(
                           ix.blocks()[u.id].head_addr));
    case Unit::Kind::kBlockPart: {
      return strformat("block 0x%llx part[%zu insns]",
                       static_cast<unsigned long long>(
                           ix.blocks()[ix.instrs()[u.instrs.front()].block]
                               .head_addr),
                       u.instrs.size());
    }
    case Unit::Kind::kInstr:
      return strformat("insn 0x%llx",
                       static_cast<unsigned long long>(
                           ix.instrs()[u.id].addr));
  }
  return "?";
}

class Searcher {
 public:
  Searcher(const program::Image& original, StructureIndex* index,
           const verify::Verifier& verifier, const SearchOptions& options)
      : original_(original), ix_(*index), verifier_(verifier),
        options_(options) {}

  SearchResult run() {
    profile_original();
    seed_queue();

    ThreadPool pool(std::max<std::size_t>(1, options_.num_threads));
    while (!queue_.empty()) {
      // Pop a batch (highest priority first) and evaluate concurrently.
      const std::size_t batch =
          std::min(queue_.size(), std::max<std::size_t>(
                                      1, options_.num_threads));
      std::vector<Unit> units;
      for (std::size_t i = 0; i < batch; ++i) units.push_back(pop_unit());

      std::vector<verify::EvalResult> results(units.size());
      if (units.size() == 1) {
        results[0] = evaluate(units[0]);
      } else {
        std::mutex mu;
        for (std::size_t i = 0; i < units.size(); ++i) {
          pool.submit([this, &units, &results, i] {
            results[i] = evaluate(units[i]);
          });
        }
        pool.wait_idle();
        (void)mu;
      }

      for (std::size_t i = 0; i < units.size(); ++i) {
        process_result(units[i], results[i]);
      }
    }

    // Compose and test the final configuration (Section 2.2: "the union of
    // all previously-found successful individual configurations").
    SearchResult out;
    out.final_config = final_config_;
    out.candidates = ix_.candidates().size();
    const verify::EvalResult final_eval = evaluate_config_counted(
        final_config_, "final composition");
    out.final_passed = final_eval.passed;

    // Optional second phase: precision interactions can make the plain
    // union fail even though each unit passed alone; rebuild a passing
    // composition greedily, heaviest units first.
    if (!out.final_passed && options_.refine_composition) {
      std::stable_sort(passing_.begin(), passing_.end(),
                       [](const PassingUnit& a, const PassingUnit& b) {
                         return a.weight > b.weight;
                       });
      PrecisionConfig composed;
      for (const PassingUnit& u : passing_) {
        PrecisionConfig trial = composed;
        trial.merge_union(u.cfg);
        const verify::EvalResult r =
            evaluate_config_counted(trial, "refine composition");
        if (r.passed) composed = std::move(trial);
      }
      out.refined = true;
      out.refined_config = composed;
      out.refined_stats = config::replacement_stats(ix_, composed);
    }

    out.configs_tested = tested_;
    out.stats = config::replacement_stats(ix_, final_config_);
    out.trace = std::move(trace_);
    return out;
  }

 private:
  void profile_original() {
    vm::Machine::Options mopts;
    mopts.max_instructions = options_.max_instructions_per_run;
    vm::Machine machine(original_, mopts);
    const vm::RunResult r = machine.run();
    if (!r.ok()) {
      throw Error(strformat("profiling run of the original binary failed: %s",
                            r.trap_message.c_str()));
    }
    ix_.apply_profile(machine.profile_by_address());
  }

  void seed_queue() {
    for (std::size_t m = 0; m < ix_.modules().size(); ++m) {
      Unit u;
      u.kind = Unit::Kind::kModule;
      u.id = m;
      push_unit(std::move(u));
    }
  }

  void push_unit(Unit u) {
    const auto cands = unit_candidates(ix_, u);
    if (cands.empty()) return;
    u.weight = weight_of(ix_, cands);
    u.seq = next_seq_++;
    queue_.push_back(std::move(u));
  }

  Unit pop_unit() {
    FPMIX_CHECK(!queue_.empty());
    std::size_t best = 0;
    if (options_.prioritize_by_profile) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        const Unit& a = queue_[i];
        const Unit& b = queue_[best];
        if (a.weight > b.weight ||
            (a.weight == b.weight && a.seq < b.seq)) {
          best = i;
        }
      }
    }
    Unit u = std::move(queue_[best]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    return u;
  }

  verify::EvalResult evaluate(const Unit& u) {
    verify::EvalOptions eopts;
    eopts.max_instructions = options_.max_instructions_per_run;
    return verify::evaluate_config(original_, ix_, config_for(u), verifier_,
                                   eopts);
  }

  verify::EvalResult evaluate_config_counted(const PrecisionConfig& cfg,
                                             const std::string& name) {
    verify::EvalOptions eopts;
    eopts.max_instructions = options_.max_instructions_per_run;
    const verify::EvalResult r =
        verify::evaluate_config(original_, ix_, cfg, verifier_, eopts);
    ++tested_;
    record(name, config::replacement_stats(ix_, cfg).replaced_static, r);
    return r;
  }

  void record(const std::string& name, std::size_t candidates,
              const verify::EvalResult& r) {
    if (!options_.keep_log) return;
    TestRecord rec;
    rec.unit = name;
    rec.candidates = candidates;
    rec.passed = r.passed;
    rec.failure = r.failure;
    trace_.push_back(std::move(rec));
  }

  void process_result(const Unit& u, const verify::EvalResult& r) {
    ++tested_;
    record(unit_name(ix_, u), unit_candidates(ix_, u).size(), r);
    if (r.passed) {
      PrecisionConfig cfg = config_for(u);
      final_config_.merge_union(cfg);
      passing_.push_back(PassingUnit{std::move(cfg), u.weight});
      return;
    }
    for (Unit& child : children(u)) push_unit(std::move(child));
  }

  std::vector<Unit> children(const Unit& u) {
    std::vector<Unit> out;
    const auto level_allows = [&](StopLevel need) {
      return static_cast<int>(options_.stop_level) >= static_cast<int>(need);
    };

    switch (u.kind) {
      case Unit::Kind::kModule: {
        if (!level_allows(StopLevel::kFunction)) break;
        for (std::size_t f : ix_.modules()[u.id].funcs) {
          Unit c;
          c.kind = Unit::Kind::kFunction;
          c.id = f;
          out.push_back(std::move(c));
        }
        break;
      }
      case Unit::Kind::kFunction: {
        if (!level_allows(StopLevel::kBlock)) break;
        const auto& blocks = ix_.funcs()[u.id].blocks;
        descend_blocks(blocks, &out);
        break;
      }
      case Unit::Kind::kFuncPart: {
        descend_blocks(u.blocks, &out);
        break;
      }
      case Unit::Kind::kBlock: {
        if (!level_allows(StopLevel::kInstruction)) break;
        descend_instrs(ix_.blocks()[u.id].candidates, &out);
        break;
      }
      case Unit::Kind::kBlockPart: {
        descend_instrs(u.instrs, &out);
        break;
      }
      case Unit::Kind::kInstr:
        break;  // cannot be subdivided
    }
    return out;
  }

  /// Binary split of a block list, or one unit per block.
  void descend_blocks(const std::vector<std::size_t>& blocks,
                      std::vector<Unit>* out) {
    // Only blocks with candidates participate.
    std::vector<std::size_t> useful;
    for (std::size_t b : blocks) {
      if (!ix_.blocks()[b].candidates.empty()) useful.push_back(b);
    }
    if (useful.empty()) return;
    if (useful.size() == 1) {
      Unit c;
      c.kind = Unit::Kind::kBlock;
      c.id = useful[0];
      out->push_back(std::move(c));
      return;
    }
    if (options_.binary_split && useful.size() >= options_.min_split_size) {
      const std::size_t half = useful.size() / 2;
      Unit lo, hi;
      lo.kind = hi.kind = Unit::Kind::kFuncPart;
      lo.blocks.assign(useful.begin(), useful.begin() +
                                           static_cast<std::ptrdiff_t>(half));
      hi.blocks.assign(useful.begin() + static_cast<std::ptrdiff_t>(half),
                       useful.end());
      out->push_back(std::move(lo));
      out->push_back(std::move(hi));
      return;
    }
    for (std::size_t b : useful) {
      Unit c;
      c.kind = Unit::Kind::kBlock;
      c.id = b;
      out->push_back(std::move(c));
    }
  }

  /// Binary split of a candidate-instruction list, or one unit each.
  void descend_instrs(const std::vector<std::size_t>& instrs,
                      std::vector<Unit>* out) {
    if (instrs.empty()) return;
    if (instrs.size() == 1) {
      Unit c;
      c.kind = Unit::Kind::kInstr;
      c.id = instrs[0];
      out->push_back(std::move(c));
      return;
    }
    if (options_.binary_split && instrs.size() >= options_.min_split_size) {
      const std::size_t half = instrs.size() / 2;
      Unit lo, hi;
      lo.kind = hi.kind = Unit::Kind::kBlockPart;
      lo.instrs.assign(instrs.begin(), instrs.begin() +
                                           static_cast<std::ptrdiff_t>(half));
      hi.instrs.assign(instrs.begin() + static_cast<std::ptrdiff_t>(half),
                       instrs.end());
      out->push_back(std::move(lo));
      out->push_back(std::move(hi));
      return;
    }
    for (std::size_t i : instrs) {
      Unit c;
      c.kind = Unit::Kind::kInstr;
      c.id = i;
      out->push_back(std::move(c));
    }
  }

  const program::Image& original_;
  StructureIndex& ix_;
  const verify::Verifier& verifier_;
  const SearchOptions& options_;

  struct PassingUnit {
    PrecisionConfig cfg;
    std::uint64_t weight;
  };

  std::deque<Unit> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t tested_ = 0;
  PrecisionConfig final_config_;
  std::vector<PassingUnit> passing_;
  std::vector<TestRecord> trace_;
};

}  // namespace

SearchResult run_search(const program::Image& original,
                        config::StructureIndex* index,
                        const verify::Verifier& verifier,
                        const SearchOptions& options) {
  FPMIX_CHECK(index != nullptr);
  Searcher s(original, index, verifier, options);
  return s.run();
}

}  // namespace fpmix::search
