// Section 3.1 reproduction: whole-program replacement correctness.
//
// Paper: "We first verified the correctness of our replacement on several
// NAS benchmarks by manually converting the codes to use single precision
// and comparing the outputs to that of the instrumented version. The final
// results were identical, bit-for-bit."
//
// For every kernel: build the double binary, instrument it with an
// all-single configuration, run; build the manually-converted single binary
// (Mode::kSingle), run; compare outputs bit-for-bit.
#include <bit>
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace fpmix;
  std::printf("Section 3.1: instrumented all-single vs manual single "
              "conversion, bit-for-bit\n\n");
  std::printf("%-14s %8s %10s %8s\n", "bench", "outputs", "bit-equal",
              "status");
  bench::print_rule(48);

  int mismatches = 0;
  for (const kernels::Workload& w : kernels::all_serial_workloads()) {
    const program::Image orig = kernels::build_image(w);
    const auto ix = config::StructureIndex::build(program::lift(orig));
    config::PrecisionConfig all_single;
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      all_single.set_module(m, config::Precision::kSingle);
    }
    const program::Image inst =
        instrument::instrument_image(orig, ix, all_single);
    const bench::TimedRun ri = bench::run_timed(inst);

    const program::Image manual =
        kernels::build_image(w, lang::Mode::kSingle);
    const bench::TimedRun rm = bench::run_timed(manual);

    if (!ri.ok || !rm.ok) {
      std::printf("%-14s %8s %10s %8s\n", w.name.c_str(), "-", "-",
                  "RUN FAIL");
      ++mismatches;
      continue;
    }
    std::size_t equal = 0;
    const std::size_t total = rm.outputs.size();
    if (ri.outputs.size() == total) {
      for (std::size_t i = 0; i < total; ++i) {
        if (std::bit_cast<std::uint64_t>(ri.outputs[i]) ==
            std::bit_cast<std::uint64_t>(rm.outputs[i])) {
          ++equal;
        }
      }
    }
    const bool ok = equal == total && ri.outputs.size() == total;
    if (!ok) ++mismatches;
    std::printf("%-14s %8zu %7zu/%zu %8s\n", w.name.c_str(), total, equal,
                total, ok ? "MATCH" : "DIFF");
  }
  bench::print_rule(48);
  std::printf(mismatches == 0
                  ? "all kernels bit-for-bit identical (paper: identical, "
                    "bit-for-bit)\n"
                  : "%d kernel(s) differ\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
