file(REMOVE_RECURSE
  "libfpmix_asm.a"
)
