#include "linalg/banded.hpp"

#include <algorithm>

namespace fpmix::linalg {

template <typename T>
void banded_lu_factor(Banded<T>* a) {
  FPMIX_CHECK(a != nullptr);
  const std::size_t n = a->n();
  const auto kl = static_cast<std::ptrdiff_t>(a->kl());
  const auto ku = static_cast<std::ptrdiff_t>(a->ku());
  for (std::size_t k = 0; k < n; ++k) {
    const T pivot = a->get(k, 0);
    if (double(pivot) == 0.0) throw Error("banded_lu_factor: zero pivot");
    const std::size_t imax =
        std::min(n - 1, k + static_cast<std::size_t>(kl));
    for (std::size_t i = k + 1; i <= imax; ++i) {
      const std::ptrdiff_t di =
          static_cast<std::ptrdiff_t>(k) - static_cast<std::ptrdiff_t>(i);
      const T m = a->get(i, di) / pivot;
      a->set(i, di, m);
      // Row update: A(i, j) -= m * A(k, j) for j in (k, k+ku].
      for (std::ptrdiff_t dj = 1; dj <= ku; ++dj) {
        const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(k) + dj;
        if (j >= static_cast<std::ptrdiff_t>(n)) break;
        const std::ptrdiff_t dij = j - static_cast<std::ptrdiff_t>(i);
        if (dij > ku) continue;  // would be fill outside the band: cannot
                                 // happen without pivoting (dij <= ku-1)
        a->set(i, dij, a->get(i, dij) - m * a->get(k, dj));
      }
    }
  }
}

template <typename T>
std::vector<T> banded_lu_solve(const Banded<T>& lu, const std::vector<T>& b) {
  const std::size_t n = lu.n();
  FPMIX_CHECK(b.size() == n);
  const auto kl = static_cast<std::ptrdiff_t>(lu.kl());
  const auto ku = static_cast<std::ptrdiff_t>(lu.ku());
  std::vector<T> x = b;
  // Forward: Ly = b, unit diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    T acc = x[i];
    const std::ptrdiff_t jlo =
        std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(i) - kl);
    for (std::ptrdiff_t j = jlo; j < static_cast<std::ptrdiff_t>(i); ++j) {
      acc -= lu.get(i, j - static_cast<std::ptrdiff_t>(i)) *
             x[static_cast<std::size_t>(j)];
    }
    x[i] = acc;
  }
  // Backward: Ux = y.
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    const std::ptrdiff_t jhi = std::min<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(n) - 1,
        static_cast<std::ptrdiff_t>(ii) + ku);
    for (std::ptrdiff_t j = static_cast<std::ptrdiff_t>(ii) + 1; j <= jhi;
         ++j) {
      acc -= lu.get(ii, j - static_cast<std::ptrdiff_t>(ii)) *
             x[static_cast<std::size_t>(j)];
    }
    x[ii] = acc / lu.get(ii, 0);
  }
  return x;
}

template <typename T>
double solution_error(const std::vector<T>& x,
                      const std::vector<double>& xtrue) {
  FPMIX_CHECK(x.size() == xtrue.size());
  double num = 0, den = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num = std::max(num, std::fabs(double(x[i]) - xtrue[i]));
    den = std::max(den, std::fabs(xtrue[i]));
  }
  return den == 0 ? num : num / den;
}

Banded<double> make_memplus_like(std::size_t n, std::size_t half_bandwidth,
                                 std::uint64_t seed) {
  Banded<double> a(n, half_bandwidth, half_bandwidth);
  SplitMix64 rng(seed);
  const auto kl = static_cast<std::ptrdiff_t>(half_bandwidth);
  for (std::size_t i = 0; i < n; ++i) {
    // Diagonal magnitudes over ~6 decades, alternating sign structure off
    // the diagonal as in circuit conductance matrices. Coupling strength is
    // close to the dominance limit so the solve is genuinely ill
    // conditioned (memplus has kappa ~ 1e5): single precision loses most of
    // its significand through the factorization.
    const double mag = std::pow(10.0, rng.next_double(-3.0, 3.0));
    double offsum = 0.0;
    for (std::ptrdiff_t d = -kl; d <= kl; ++d) {
      if (d == 0) continue;
      const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + d;
      if (j < 0 || j >= static_cast<std::ptrdiff_t>(n)) continue;
      const double v = -mag * rng.next_double(0.3, 1.0) /
                       static_cast<double>(2 * half_bandwidth);
      a.set(i, d, v);
      offsum += std::fabs(v);
    }
    // Weak diagonal dominance: pivot-free LU stays stable, but the margin
    // is thin enough that cancellation amplifies rounding.
    a.set(i, 0, offsum * (1.0 + 2.5e-5 * rng.next_double(0.1, 1.0)));
  }
  return a;
}

template void banded_lu_factor<double>(Banded<double>*);
template void banded_lu_factor<float>(Banded<float>*);
template std::vector<double> banded_lu_solve<double>(const Banded<double>&,
                                                     const std::vector<double>&);
template std::vector<float> banded_lu_solve<float>(const Banded<float>&,
                                                   const std::vector<float>&);
template double solution_error<double>(const std::vector<double>&,
                                       const std::vector<double>&);
template double solution_error<float>(const std::vector<float>&,
                                      const std::vector<double>&);

}  // namespace fpmix::linalg
