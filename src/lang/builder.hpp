// Ergonomic construction of ProgramModel ASTs.
//
// Kernels are written against this API:
//
//   lang::Builder b;
//   b.begin_func("main", "ep");
//   auto i = b.var_i64("i");
//   auto q = b.array_f64("q", 64);
//   b.for_(i, b.ci(0), b.ci(100), [&] {
//     b.store(q, i % b.ci(64), q[i % b.ci(64)] + b.cf(1.0));
//   });
//   b.output(q[b.ci(0)]);
//   b.end_func();
//   program::Program prog = compile(b.model(), lang::Mode::kDouble);
#pragma once

#include <functional>
#include <string>

#include "lang/ast.hpp"

namespace fpmix::lang {

class Builder;

/// Value wrapper enabling operator syntax. Carries the node and its type.
class Expr {
 public:
  Expr() = default;
  explicit Expr(ExprPtr node) : node_(std::move(node)) {}
  const ExprPtr& node() const { return node_; }
  Type type() const { return node_->type; }
  bool valid() const { return node_ != nullptr; }

 private:
  ExprPtr node_;
};

// Arithmetic (same-type operands; real ops on kF64, integer ops on kI64).
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr operator%(Expr a, Expr b);   // i64 only
Expr operator&(Expr a, Expr b);   // i64 only
Expr operator|(Expr a, Expr b);   // i64 only
Expr operator^(Expr a, Expr b);   // i64 only
Expr operator<<(Expr a, Expr b);  // i64 only
Expr operator>>(Expr a, Expr b);  // i64 only
Expr operator-(Expr a);           // negation

Expr sqrt_(Expr a);               // lowered to the sqrt instruction
Expr fabs_(Expr a);
Expr min_(Expr a, Expr b);
Expr max_(Expr a, Expr b);
Expr sin_(Expr a);
Expr cos_(Expr a);
Expr exp_(Expr a);
Expr log_(Expr a);
Expr pow_(Expr a, Expr b);
Expr floor_(Expr a);
Expr to_f64(Expr a);              // i64 -> real
Expr to_i64(Expr a);              // real -> i64 (truncating)

/// Comparison result; consumed by if_/while_.
struct Cond {
  CondNode node;
};
Cond operator==(Expr a, Expr b);
Cond operator!=(Expr a, Expr b);
Cond operator<(Expr a, Expr b);
Cond operator<=(Expr a, Expr b);
Cond operator>(Expr a, Expr b);
Cond operator>=(Expr a, Expr b);

/// Scalar variable handle; implicitly usable as an Expr.
class Var {
 public:
  Var() = default;
  Var(int id, Type type) : id_(id), type_(type) {}
  int id() const { return id_; }
  Type type() const { return type_; }
  operator Expr() const;  // NOLINT(google-explicit-constructor)

 private:
  int id_ = -1;
  Type type_ = Type::kF64;
};

/// Array handle; `arr[index]` loads an element.
class Arr {
 public:
  Arr() = default;
  Arr(int id, Type elem) : id_(id), elem_(elem) {}
  int id() const { return id_; }
  Type elem() const { return elem_; }
  Expr operator[](Expr index) const;
  Expr operator[](std::int64_t index) const;

 private:
  int id_ = -1;
  Type elem_ = Type::kF64;
};

class Builder {
 public:
  Builder();

  // ---- Literals -----------------------------------------------------------
  Expr cf(double v) const;        // real constant
  Expr ci(std::int64_t v) const;  // integer constant

  // ---- Declarations (global/static storage, Fortran style) ----------------
  Var var_f64(std::string name);
  Var var_i64(std::string name);
  Arr array_f64(std::string name, std::size_t size);
  Arr array_i64(std::string name, std::size_t size);
  /// Arrays with baked initial contents (the input data set).
  Arr const_array_f64(std::string name, const std::vector<double>& data);
  Arr const_array_i64(std::string name,
                      const std::vector<std::int64_t>& data);

  // ---- Functions -----------------------------------------------------------
  void begin_func(std::string name, std::string module);
  void end_func();

  // ---- Statements ----------------------------------------------------------
  void set(Var v, Expr value);
  void store(Arr a, Expr index, Expr value);
  void if_(Cond c, const std::function<void()>& then_body);
  void if_else(Cond c, const std::function<void()>& then_body,
               const std::function<void()>& else_body);
  void while_(Cond c, const std::function<void()>& body);
  /// for (v = lo; v < hi; v += step) body
  void for_(Var v, Expr lo, Expr hi, const std::function<void()>& body,
            std::int64_t step = 1);
  void call(std::string callee);
  void output(Expr real_value);
  void output_i(Expr int_value);
  void ret();

  // ---- Mini-MPI -------------------------------------------------------------
  Expr mpi_rank() const;
  Expr mpi_size() const;
  void barrier();
  Expr allreduce_sum(Expr real_value) const;
  void allreduce_vec(Arr a, Expr count);

  // ---- Finalization ----------------------------------------------------------
  const ProgramModel& model() const { return model_; }
  ProgramModel take_model() { return std::move(model_); }

 private:
  friend class Arr;
  void add_stmt(StmtPtr s);
  int declare(VarDecl decl);

  ProgramModel model_;
  std::vector<StmtList*> stack_;  // innermost statement list
  StmtList* cur_ = nullptr;
  bool in_func_ = false;
};

}  // namespace fpmix::lang
