// Incremental trial construction: per-function variant caching.
//
// The search's breadth-first descent evaluates thousands of configurations
// that differ from a baseline in a single module/function/block/instruction
// subtree, yet the straightforward pipeline re-instruments and re-encodes
// the whole program for each of them. IncrementalPatcher keys each
// function's instrumented form by its *effective precision signature* (the
// resolved precision of every instruction in the function, after the
// non-candidate demotion rule) and re-runs splice/layout only for functions
// whose signature has not been seen before. Predecode results are cached
// the same way as shared vm::CodeSegments, which
// vm::ExecutableImage::build_spliced rebases into a full image without
// re-decoding or re-lowering.
//
// Equivalence: the signature captures every input that instrument_function
// reads for the function (tag-state dataflow is intra-block, so functions
// patch independently), and layout_function + assemble is the exact code
// path relayout() takes -- an incrementally built image is bit-identical to
// a from-scratch instrument_image() by construction, which
// tests/incremental_test.cpp verifies differentially.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/config.hpp"
#include "config/structure.hpp"
#include "instrument/patch.hpp"
#include "program/image.hpp"
#include "program/layout.hpp"
#include "vm/exec_image.hpp"

namespace fpmix::instrument {

class IncrementalPatcher {
 public:
  /// One cached per-function result: the instrumented position-independent
  /// encoding, its stats, and (lazily, at first predecode) its segment.
  struct FuncVariant {
    program::FuncLayout layout;
    InstrumentStats stats;
    std::shared_ptr<const vm::CodeSegment> segment;
  };

  /// Result of patch(): the assembled image plus the variant references
  /// predecode() needs. The references are owned by the patcher's cache and
  /// are invalidated by the next patch() call -- finish predecode() (or drop
  /// the Build) before patching again.
  struct Build {
    program::Image image;
    InstrumentStats stats;
    std::size_t funcs_reused = 0;  // served from the variant cache
    std::size_t funcs_total = 0;

   private:
    friend class IncrementalPatcher;
    std::vector<FuncVariant*> variants;
  };

  /// Lifts `original` once. `index` must have been built from this image
  /// and must outlive the patcher.
  IncrementalPatcher(const program::Image& original,
                     const config::StructureIndex& index,
                     InstrumentOptions options = {});

  /// Instruments + lays out only the functions whose effective precision
  /// signature under `cfg` is new, splicing cached layouts elsewhere, and
  /// assembles the full image. Bit-identical to
  /// instrument_image(original, index, cfg, options).
  Build patch(const config::PrecisionConfig& cfg);

  /// Predecodes `build` into an executable, building segments only for
  /// variants that have never been predecoded.
  std::shared_ptr<const vm::ExecutableImage> predecode(Build&& build);

  std::size_t variant_hits() const { return variant_hits_; }
  std::size_t variant_misses() const { return variant_misses_; }

 private:
  /// Effective precision of every instruction of function `f` under `cfg`,
  /// one precision-flag char per instruction: the complete input of
  /// instrument_function for this function.
  std::string signature_of(std::size_t f,
                           const config::PrecisionConfig& cfg) const;

  /// Per-function variant cap; a full cache is cleared wholesale (the
  /// search's locality makes thrashing here essentially impossible, the cap
  /// only bounds memory on adversarial workloads).
  static constexpr std::size_t kMaxVariantsPerFunc = 128;

  program::Program prog_;
  const config::StructureIndex& index_;
  InstrumentOptions options_;
  std::vector<std::vector<std::size_t>> func_instrs_;  // instr ids per func
  std::vector<std::unordered_map<std::string, FuncVariant>> variants_;
  std::size_t variant_hits_ = 0;
  std::size_t variant_misses_ = 0;
};

}  // namespace fpmix::instrument
