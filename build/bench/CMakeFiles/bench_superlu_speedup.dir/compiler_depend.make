# Empty compiler generated dependencies file for bench_superlu_speedup.
# This may be replaced when dependencies are built.
