// Layout: the binary-rewriter half of the patching pipeline.
//
// Takes a (possibly patched) structured Program and emits a fresh Image:
// assigns addresses to every block, materializes fall-through edges that are
// no longer physically adjacent as explicit jmp instructions, resolves
// symbolic branch targets and call targets to absolute addresses, and
// re-encodes everything. This is the role Dyninst's binary rewriter plays in
// Section 2.4 of the paper.
//
// The work is split into two phases so the incremental patcher can reuse
// per-function results across trials:
//
//   layout_function()  encodes ONE function into a position-independent
//                      FuncLayout: a local byte stream whose branch targets
//                      are block offsets within the function and whose call
//                      targets are callee function indices, plus relocation
//                      and provenance records.
//   assemble()         splices any mix of cached and fresh FuncLayouts into
//                      a complete Image: prefix-sums function addresses,
//                      patches the relocations, and replays the provenance
//                      records.
//
// relayout() is layout_function() over every function followed by
// assemble(), so an incrementally assembled image is bit-identical to a
// from-scratch one by construction -- there is only one emitting code path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "program/image.hpp"
#include "program/program.hpp"

namespace fpmix::program {

/// Position-independent encoding of one function. Immutable once built;
/// the incremental patcher caches these per (function, precision signature)
/// and assemble() splices them at any address.
struct FuncLayout {
  /// Encoded body. Branch immediates hold the *local byte offset* of the
  /// target block; call immediates hold the callee *function index*.
  /// assemble() overwrites both with absolute values in the image copy.
  std::vector<std::uint8_t> bytes;

  struct Reloc {
    std::uint32_t imm_off = 0;  // offset of the 8-byte imm field in `bytes`
    std::uint64_t value = 0;    // call: callee index; branch: local target
    bool is_call = false;
  };
  std::vector<Reloc> relocs;

  /// Provenance replay records (Image::origins entries are emitted lazily at
  /// assemble time because the rule compares origin against the final
  /// address). `from_jmp` records carry the preceding instruction's raw
  /// origin and offset so the explicit-jmp inheritance rule can be replayed.
  struct OriginRec {
    std::uint32_t off = 0;        // local offset of the emitted instruction
    std::uint64_t origin = 0;     // raw origin (kNoAddr only when from_jmp)
    std::uint32_t prev_off = 0;   // from_jmp: offset of the preceding instr
    bool from_jmp = false;
  };
  std::vector<OriginRec> origins;

  // Symbol identity (assemble() builds Image::symbols from these).
  std::string name;
  std::string module;
};

/// Encodes one function into its position-independent form.
FuncLayout layout_function(const Function& fn);

/// Splices `funcs` (one FuncLayout per function, in program order) into a
/// complete image using `meta` for the non-code sections, entry function and
/// base addresses. Validates the result.
Image assemble(const Program& meta,
               const std::vector<const FuncLayout*>& funcs);

/// Produces a runnable image. The input program is not modified; instruction
/// `origin` fields are preserved into the emitted code so profiles of the
/// output can be attributed to original-program addresses.
Image relayout(const Program& prog);

/// Round-trip helper: lift + relayout, used by tests to show the pipeline is
/// faithful (a lifted-and-relaid image executes identically).
Image rewrite_identity(const Image& image);

}  // namespace fpmix::program
