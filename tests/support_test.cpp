// Tests for the support layer: string utilities, RNGs, thread pool,
// stable hashing, JSONL journal.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "support/backoff.hpp"
#include "support/hash.hpp"
#include "support/journal.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace fpmix {
namespace {

// ---------------------------------------------------------------------------
// Strings.

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(strformat("%.3f", 1.23456), "1.235");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitFields) {
  const auto f = split_fields("  a\tbc   d ");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "bc");
  EXPECT_EQ(f[2], "d");
  EXPECT_TRUE(split_fields("").empty());
  EXPECT_TRUE(split_fields(" \t ").empty());
}

TEST(Strings, SplitLines) {
  const auto l = split_lines("a\n\nb\nc");
  ASSERT_EQ(l.size(), 4u);
  EXPECT_EQ(l[0], "a");
  EXPECT_EQ(l[1], "");
  EXPECT_EQ(l[3], "c");
  EXPECT_TRUE(split_lines("").empty());
}

TEST(Strings, ParseNumbers) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(parse_u64("", &v));
  EXPECT_FALSE(parse_u64("12x", &v));
  EXPECT_TRUE(parse_hex_u64("0x400a1F", &v));
  EXPECT_EQ(v, 0x400a1Fu);
  EXPECT_TRUE(parse_hex_u64("ff", &v));
  EXPECT_EQ(v, 0xFFu);
  EXPECT_FALSE(parse_hex_u64("0x", &v));
  EXPECT_FALSE(parse_hex_u64("0xZZ", &v));
}

// ---------------------------------------------------------------------------
// Stable hashing.

TEST(Hash, MatchesFnv1aReferenceVectors) {
  // Values persisted in journal files must never drift, so pin the
  // published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, MixAndDigest) {
  const std::uint64_t h1 = fnv1a64_mix(kFnv1a64Offset, 1);
  const std::uint64_t h2 = fnv1a64_mix(kFnv1a64Offset, 2);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(hex_digest(0), "0000000000000000");
  EXPECT_EQ(hex_digest(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(hex_digest(0xcbf29ce484222325ull), "cbf29ce484222325");
}

// ---------------------------------------------------------------------------
// JSONL journal.

TEST(Json, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  const std::string line =
      "{\"k\":\"" + json_escape(nasty) + "\",\"n\":42,\"b\":true}";
  JsonRecord rec;
  ASSERT_TRUE(parse_flat_json(line, &rec));
  EXPECT_EQ(rec["k"], nasty);
  EXPECT_EQ(rec["n"], "42");
  EXPECT_EQ(rec["b"], "true");
}

TEST(Json, RejectsMalformedAndNested) {
  JsonRecord rec;
  EXPECT_TRUE(parse_flat_json("{}", &rec));
  EXPECT_TRUE(rec.empty());
  EXPECT_TRUE(parse_flat_json("  {\"a\" : \"b\" , \"c\" : 1}  ", &rec));
  EXPECT_FALSE(parse_flat_json("", &rec));
  EXPECT_FALSE(parse_flat_json("{\"a\":\"b\"", &rec));       // truncated
  EXPECT_FALSE(parse_flat_json("{\"a\":{\"b\":1}}", &rec));  // nested
  EXPECT_FALSE(parse_flat_json("{\"a\":[1,2]}", &rec));      // array
  EXPECT_FALSE(parse_flat_json("{\"a\":\"b\"}x", &rec));     // trailing junk
  EXPECT_FALSE(parse_flat_json("{\"a\" \"b\"}", &rec));      // missing colon
}

TEST(Journal, AppendAndReadBack) {
  const std::string path = testing::TempDir() + "journal_rw.jsonl";
  std::remove(path.c_str());
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    j.append("{\"n\":1}");
    j.append("{\"n\":2}");
  }
  {
    Journal j;  // append mode: reopening must not clobber prior records
    ASSERT_TRUE(j.open(path));
    j.append("{\"n\":3}");
  }
  const auto lines = Journal::read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"n\":1}");
  EXPECT_EQ(lines[2], "{\"n\":3}");
  std::remove(path.c_str());
}

TEST(Journal, DropsUnterminatedTailLine) {
  const std::string path = testing::TempDir() + "journal_trunc.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"n\":1}\n{\"n\":2}\n{\"n\":3", f);  // crash mid-append
  std::fclose(f);
  const auto lines = Journal::read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "{\"n\":2}");
  std::remove(path.c_str());
}

TEST(Journal, MissingFileReadsEmpty) {
  EXPECT_TRUE(Journal::read_lines("/nonexistent/nope.jsonl").empty());
  Journal j;
  EXPECT_FALSE(j.open("/nonexistent/nope.jsonl"));
  EXPECT_FALSE(j.is_open());
}

TEST(Journal, ConcurrentSealedAppendsAreAtomicAndSequenced) {
  // Appends are mutex-guarded inside the Journal itself: hammering one
  // journal from several threads must produce only whole, CRC-valid lines
  // with every sequence number unique.
  const std::string path = testing::TempDir() + "journal_mt.jsonl";
  std::remove(path.c_str());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&j, t] {
        for (int i = 0; i < kPerThread; ++i) {
          j.append_sealed(strformat("{\"t\":%d,\"i\":%d}", t, i));
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  const auto lines = Journal::read_lines(path);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> seqs;
  for (const std::string& line : lines) {
    ASSERT_EQ(check_seal(line), SealCheck::kOk) << line;
    // Extract the seq field the seal stamped on the line.
    const std::size_t at = line.find("\"seq\":");
    ASSERT_NE(at, std::string::npos) << line;
    std::uint64_t seq = 0;
    ASSERT_TRUE(parse_u64(line.substr(at + 6,
                                      line.find_first_of(",}", at + 6) -
                                          (at + 6)),
                          &seq))
        << line;
    EXPECT_TRUE(seqs.insert(seq).second) << "duplicate seq " << seq;
  }
  std::remove(path.c_str());
}

TEST(Journal, FsyncModeStillProducesReadableRecords) {
  const std::string path = testing::TempDir() + "journal_fsync.jsonl";
  std::remove(path.c_str());
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    j.set_fsync(true);
    EXPECT_TRUE(j.fsync_enabled());
    j.append_sealed("{\"durable\":1}");
    j.append("{\"durable\":2}");
  }
  const auto lines = Journal::read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(check_seal(lines[0]), SealCheck::kOk);
  EXPECT_EQ(lines[1], "{\"durable\":2}");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RNGs.

TEST(Rng, SplitMixIsDeterministicAndSpread) {
  SplitMix64 a(7), b(7), c(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    seen.insert(va);
  }
  EXPECT_EQ(seen.size(), 1000u);       // no collisions in practice
  EXPECT_NE(c.next_u64(), *seen.begin());
  for (int i = 0; i < 1000; ++i) {
    const double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NasLcgMatchesKnownStream) {
  // randlc with the EP seed: the stream must be reproducible and uniform,
  // and the state must stay within 46 bits (the property that breaks under
  // single precision).
  NasLcg lcg;
  double mean = 0;
  for (int i = 0; i < 4096; ++i) {
    const double r = lcg.next();
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
    EXPECT_LT(lcg.seed(), 0x1.0p46);
    EXPECT_EQ(lcg.seed(), std::floor(lcg.seed()));  // integral state
    mean += r;
  }
  mean /= 4096;
  EXPECT_NEAR(mean, 0.5, 0.02);

  // Determinism across instances.
  NasLcg l1, l2;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(l1.next(), l2.next());
}

// ---------------------------------------------------------------------------
// Thread pool.

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  }
  EXPECT_EQ(count.load(), 50);
}

// ---------------------------------------------------------------------------
// Jittered exponential backoff.

TEST(Backoff, ZeroFailuresMeansNoDelay) {
  EXPECT_EQ(backoff_delay_ms(BackoffPolicy{}, 0, 0), 0u);
}

TEST(Backoff, StaysInsideJitteredEnvelope) {
  BackoffPolicy policy;  // base 2ms, cap 200ms, jitter 0.25
  SplitMix64 rng(0xB0FFu);
  for (std::uint32_t failures = 1; failures <= 64; ++failures) {
    // Un-jittered envelope: base doubling per failure, saturating at cap.
    std::uint64_t raw = policy.base_ms;
    for (std::uint32_t i = 1; i < failures && raw < policy.cap_ms; ++i) {
      raw <<= 1;
    }
    raw = std::min(raw, policy.cap_ms);
    const std::uint64_t lo = static_cast<std::uint64_t>(
        static_cast<double>(raw) * (1.0 - policy.jitter));
    for (int draw = 0; draw < 100; ++draw) {
      const std::uint64_t ms =
          backoff_delay_ms(policy, failures, rng.next_u64());
      EXPECT_GE(ms, std::max<std::uint64_t>(1, lo));
      EXPECT_LE(ms, policy.cap_ms);
    }
  }
}

TEST(Backoff, HugeFailureCountSaturatesAtCapWithoutOverflow) {
  BackoffPolicy policy;
  policy.base_ms = 50;
  policy.cap_ms = 2000;
  policy.jitter = 0.0;
  EXPECT_EQ(backoff_delay_ms(policy, 1, 0), 50u);
  EXPECT_EQ(backoff_delay_ms(policy, 2, 0), 100u);
  EXPECT_EQ(backoff_delay_ms(policy, 7, 0), 2000u);  // 50 << 6 = 3200 -> cap
  EXPECT_EQ(backoff_delay_ms(policy, 1000000, 0), 2000u);
  EXPECT_EQ(backoff_delay_ms(policy, 0xFFFFFFFFu, 0), 2000u);
}

TEST(Backoff, JitterActuallyVariesAndIsDeterministic) {
  BackoffPolicy policy;
  policy.base_ms = 100;
  policy.cap_ms = 100000;  // keep the cap out of the way
  policy.jitter = 0.5;
  std::set<std::uint64_t> seen;
  SplitMix64 rng(42);
  for (int i = 0; i < 50; ++i) {
    seen.insert(backoff_delay_ms(policy, 1, rng.next_u64()));
  }
  EXPECT_GT(seen.size(), 10u);  // the draws spread over [50, 150]
  // Same seed, same stream: the stateful wrapper replays identically.
  Backoff a(policy, 7), b(policy, 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_ms(), b.next_ms());
  EXPECT_EQ(a.failures(), 10u);
  a.reset();
  EXPECT_EQ(a.failures(), 0u);
}

TEST(Backoff, DegeneratePoliciesClampSanely) {
  BackoffPolicy policy;
  policy.base_ms = 0;  // clamped to 1
  policy.cap_ms = 0;   // clamped to 1
  policy.jitter = 1.0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t ms =
        backoff_delay_ms(policy, static_cast<std::uint32_t>(i + 1),
                         static_cast<std::uint64_t>(i) << 59);
    EXPECT_EQ(ms, 1u);  // floor 1, cap 1
  }
}

}  // namespace
}  // namespace fpmix
