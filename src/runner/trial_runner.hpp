// Out-of-process sandboxed trial execution.
//
// CRAFT runs every patched binary as a separate process because the
// 0x7FF4DEAD sentinel is designed to make untreated escapes crash loudly;
// this module gives the reproduction the same property. A Worker is one
// forked child that applies POSIX rlimits to itself (RLIMIT_AS, RLIMIT_CPU,
// RLIMIT_CORE=0), then loops: read a trial request off its pipe, rebuild
// the PrecisionConfig from its canonical key, patch + predecode + run +
// verify entirely inside its own address space, and ship the EvalResult
// back as a CRC-framed response. A wild write, stack smash, allocation
// blowup or injected SIGSEGV therefore kills *the worker*, and the driver
// observes an EOF + wait status it can classify -- the search and its
// journal never notice more than one failed trial.
//
// Everything POSIX-specific is runtime-gated: isolation_supported() is
// false on platforms without fork, and callers (the WorkerPool, the
// search) degrade to the in-process path there.
#pragma once

#include <cstdint>
#include <string>

#include "config/structure.hpp"
#include "program/image.hpp"
#include "runner/wire.hpp"
#include "support/fault.hpp"
#include "verify/evaluate.hpp"
#include "verify/verifier.hpp"

namespace fpmix::runner {

/// True when this platform can fork sandboxed workers (POSIX).
bool isolation_supported();

/// Resource caps a worker applies to itself right after fork, before
/// touching any trial data. A runaway patched image hits the cap instead
/// of the machine.
struct RlimitSpec {
  /// RLIMIT_AS in MiB; 0 leaves the address space uncapped. Automatically
  /// skipped under AddressSanitizer (its shadow mappings need terabytes of
  /// reservation).
  std::uint64_t address_space_mb = 512;
  /// RLIMIT_CPU in seconds; 0 leaves CPU time uncapped. A backstop under
  /// the supervisor's wall-clock deadline: a worker spinning with the pipe
  /// still open dies on SIGXCPU even if the supervisor never times it out.
  std::uint64_t cpu_seconds = 0;
};

/// Borrowed references to everything a worker evaluates trials against.
/// fork(2) snapshots the whole address space, so the child's copies stay
/// valid for its lifetime; the driver must keep them alive while the pool
/// runs (the search owns all four for the duration anyway).
struct WorkerContext {
  const program::Image* image = nullptr;
  const config::StructureIndex* index = nullptr;
  const verify::Verifier* verifier = nullptr;
  /// Per-trial evaluation template; the worker fills in faults per request.
  verify::EvalOptions eval;
  /// Fault campaign; the worker re-derives per-attempt decisions itself
  /// from (key, exec_index) -- the Injector is a pure function, so driver
  /// and worker always agree without shipping fault specs over the wire.
  const fault::Injector* injector = nullptr;
};

/// One sandboxed worker process and its two pipes. Not thread-safe; the
/// WorkerPool multiplexes workers from a single supervisor thread.
class Worker {
 public:
  Worker() = default;
  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Forks the child and enters its request loop. Returns false when fork
  /// or pipe creation fails (the caller degrades or retries).
  bool spawn(const WorkerContext& ctx, const RlimitSpec& limits);

  bool running() const { return pid_ > 0; }
  int pid() const { return pid_; }
  /// Readable end of the response pipe (for poll).
  int response_fd() const { return resp_fd_; }

  /// Sends one framed trial request. Returns false when the pipe is broken
  /// (the worker died); the caller reaps and classifies.
  bool send_request(const TrialRequest& req);

  /// Drains available response bytes (non-blocking) and tries to extract
  /// one frame. kNeedMore covers both "partial frame" and "nothing yet";
  /// kCorrupt covers CRC damage AND a stream that ended mid-frame (EOF
  /// with leftover bytes). *eof is set when the pipe closed.
  FrameStatus read_result(std::string* payload, bool* eof);

  void send_sigterm();
  void send_sigkill();

  /// How a reaped worker ended.
  struct Death {
    bool signaled = false;
    int signal = 0;     // when signaled
    int exit_code = 0;  // when exited
  };

  /// Non-blocking (or blocking) reap. Returns true once the child is gone;
  /// fills *death and resets the worker to the not-running state.
  bool reap(Death* death, bool block);

  /// Closes pipes and force-kills + reaps any still-running child.
  void shutdown();

 private:
  int pid_ = -1;
  int req_fd_ = -1;   // driver writes requests here
  int resp_fd_ = -1;  // driver reads responses here
  std::string buf_;   // partial response frame accumulator
};

/// Human-readable signal name ("SIGSEGV", "signal 42").
std::string signal_name(int signo);

/// Classifies a worker death into the failure taxonomy: SIGXCPU is a
/// resource-cap outcome, everything else (SIGSEGV/SIGBUS/SIGKILL/exit N)
/// is a crash. `detail` receives a diagnostic string for the journal.
verify::FailureClass classify_death(const Worker::Death& death,
                                    std::string* detail);

}  // namespace fpmix::runner
