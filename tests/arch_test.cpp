// Tests for the virtual ISA: opcode classification, operand forms, the
// binary encoder/decoder, the disassembler, and the replaced-double tag
// representation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/disasm.hpp"
#include "arch/encode.hpp"
#include "arch/intrinsics.hpp"
#include "arch/tag.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fpmix::arch {
namespace {

namespace in = intrinsics;

// ---------------------------------------------------------------------------
// Opcode table invariants.

TEST(OpcodeTable, EveryOpcodeHasName) {
  for (int i = 0; i < static_cast<int>(Opcode::kNumOpcodes); ++i) {
    const auto op = static_cast<Opcode>(i);
    EXPECT_NE(opcode_name(op), nullptr);
    EXPECT_GT(std::string_view(opcode_name(op)).size(), 0u);
  }
}

TEST(OpcodeTable, SingleTwinsAreConsistent) {
  // A candidate's twin must not itself be a candidate, and packed opcodes
  // must map to packed twins.
  for (int i = 0; i < static_cast<int>(Opcode::kNumOpcodes); ++i) {
    const auto op = static_cast<Opcode>(i);
    const OpcodeInfo& info = opcode_info(op);
    if (!is_replacement_candidate(op)) continue;
    EXPECT_FALSE(is_replacement_candidate(info.single_twin))
        << opcode_name(op);
    EXPECT_GE(info.fp_lanes, 1) << opcode_name(op);
  }
}

TEST(OpcodeTable, CandidateSetMatchesPaper) {
  // The candidate set Pd: scalar and packed double arithmetic, compares and
  // int conversions -- but never moves (bit-preserving) and never the
  // single-precision forms.
  EXPECT_TRUE(is_replacement_candidate(Opcode::kAddsd));
  EXPECT_TRUE(is_replacement_candidate(Opcode::kDivpd));
  EXPECT_TRUE(is_replacement_candidate(Opcode::kUcomisd));
  EXPECT_TRUE(is_replacement_candidate(Opcode::kCvtsi2sd));
  EXPECT_TRUE(is_replacement_candidate(Opcode::kCvttsd2si));
  EXPECT_FALSE(is_replacement_candidate(Opcode::kMovsdXM));
  EXPECT_FALSE(is_replacement_candidate(Opcode::kMovapdXM));
  EXPECT_FALSE(is_replacement_candidate(Opcode::kAddss));
  EXPECT_FALSE(is_replacement_candidate(Opcode::kCvtsd2ss));
  EXPECT_FALSE(is_replacement_candidate(Opcode::kAdd));
  EXPECT_FALSE(is_replacement_candidate(Opcode::kJmp));
}

TEST(OpcodeTable, BlockEnders) {
  EXPECT_TRUE(ends_basic_block(Opcode::kJmp));
  EXPECT_TRUE(ends_basic_block(Opcode::kJe));
  EXPECT_TRUE(ends_basic_block(Opcode::kRet));
  EXPECT_TRUE(ends_basic_block(Opcode::kHalt));
  EXPECT_FALSE(ends_basic_block(Opcode::kCall));  // calls stay inside blocks
  EXPECT_FALSE(ends_basic_block(Opcode::kAddsd));
}

TEST(IntrinsicTable, TwinsAndFpClassification) {
  EXPECT_TRUE(in::intrin_has_f32_twin(in::Id::kSin));
  EXPECT_TRUE(in::intrin_has_f32_twin(in::Id::kPow));
  EXPECT_FALSE(in::intrin_has_f32_twin(in::Id::kSinF32));
  EXPECT_FALSE(in::intrin_has_f32_twin(in::Id::kMpiAllreduceSum));
  EXPECT_TRUE(in::intrin_touches_fp(in::Id::kOutputF64));
  EXPECT_TRUE(in::intrin_touches_fp(in::Id::kMpiAllreduceSum));
  EXPECT_FALSE(in::intrin_touches_fp(in::Id::kMpiBarrier));
  EXPECT_FALSE(in::intrin_touches_fp(in::Id::kOutputI64));
}

// ---------------------------------------------------------------------------
// Replaced-double representation (Figure 5).

TEST(Tag, RoundTrip) {
  const float f = 3.14159f;
  const std::uint64_t boxed = make_tagged(f);
  EXPECT_TRUE(is_tagged(boxed));
  EXPECT_EQ(tagged_float(boxed), f);
  EXPECT_EQ(boxed >> 32, 0x7FF4DEADull);
}

TEST(Tag, DowncastRoundsOnce) {
  const double d = 1.0 / 3.0;
  const std::uint64_t boxed = downcast_to_tagged(d);
  EXPECT_EQ(tagged_float(boxed), static_cast<float>(d));
  EXPECT_EQ(tagged_to_double(boxed),
            static_cast<double>(static_cast<float>(d)));
}

TEST(Tag, SentinelIsNaN) {
  // The boxed pattern must decode as a NaN when misread as a double, so
  // escapes poison downstream arithmetic instead of silently mis-rounding.
  const std::uint64_t boxed = make_tagged(42.0f);
  const double as_double = std::bit_cast<double>(boxed);
  EXPECT_TRUE(std::isnan(as_double));
}

TEST(Tag, OrdinaryDoublesAreNotTagged) {
  for (double d : {0.0, 1.0, -1.0, 1e300, -1e-300, 3.14159e7}) {
    EXPECT_FALSE(is_tagged(std::bit_cast<std::uint64_t>(d))) << d;
  }
}

// ---------------------------------------------------------------------------
// Encoder / decoder round trips.

std::vector<Instr> representative_instrs() {
  using Op = Operand;
  std::vector<Instr> v;
  v.push_back(make0(Opcode::kNop));
  v.push_back(make0(Opcode::kHalt));
  v.push_back(make0(Opcode::kRet));
  v.push_back(make2(Opcode::kJmp, Op::none(), Op::make_imm(0x400123)));
  v.push_back(make2(Opcode::kJne, Op::none(), Op::make_imm(0x400001)));
  v.push_back(make2(Opcode::kCall, Op::none(), Op::make_imm(0x400400)));
  v.push_back(make2(Opcode::kMov, Op::gpr(3), Op::make_imm(-12345)));
  v.push_back(make2(Opcode::kMov, Op::gpr(3), Op::gpr(7)));
  v.push_back(make2(Opcode::kLoad, Op::gpr(2), Op::mem_bd(1, 64)));
  v.push_back(make2(Opcode::kStore, Op::mem_bisd(1, 2, 8, -8), Op::gpr(0)));
  v.push_back(make2(Opcode::kLea, Op::gpr(4), Op::mem_abs(0x800000)));
  v.push_back(make2(Opcode::kAdd, Op::gpr(1), Op::make_imm(8)));
  v.push_back(make2(Opcode::kCmp, Op::gpr(1), Op::gpr(2)));
  v.push_back(make1(Opcode::kPush, Op::gpr(0)));
  v.push_back(make1(Opcode::kPop, Op::gpr(0)));
  v.push_back(make2(Opcode::kMovqXR, Op::xmm(15), Op::gpr(0)));
  v.push_back(make2(Opcode::kMovqRX, Op::gpr(0), Op::xmm(15)));
  v.push_back(make2(Opcode::kMovsdXM, Op::xmm(0), Op::mem_bd(1, 0)));
  v.push_back(make2(Opcode::kMovsdMX, Op::mem_bd(1, 0), Op::xmm(0)));
  v.push_back(make2(Opcode::kMovapdXM, Op::xmm(3), Op::mem_bisd(1, 2, 8, 0)));
  v.push_back(make1(Opcode::kPushX, Op::xmm(14)));
  v.push_back(make1(Opcode::kPopX, Op::xmm(14)));
  v.push_back(make2(Opcode::kAddsd, Op::xmm(0), Op::xmm(1)));
  v.push_back(make2(Opcode::kMulsd, Op::xmm(2), Op::mem_bd(5, 16)));
  v.push_back(make2(Opcode::kSqrtsd, Op::xmm(1), Op::xmm(1)));
  v.push_back(make2(Opcode::kUcomisd, Op::xmm(0), Op::xmm(1)));
  v.push_back(make2(Opcode::kCvtsd2ss, Op::xmm(0), Op::xmm(0)));
  v.push_back(make2(Opcode::kCvtss2sd, Op::xmm(0), Op::xmm(0)));
  v.push_back(make2(Opcode::kCvtsi2sd, Op::xmm(0), Op::gpr(1)));
  v.push_back(make2(Opcode::kCvttsd2si, Op::gpr(1), Op::xmm(0)));
  v.push_back(make2(Opcode::kAddss, Op::xmm(0), Op::xmm(1)));
  v.push_back(make2(Opcode::kAddpd, Op::xmm(0), Op::xmm(1)));
  v.push_back(make2(Opcode::kMulps, Op::xmm(7), Op::mem_bd(3, 32)));
  v.push_back(make2(Opcode::kAndpd, Op::xmm(0), Op::xmm(1)));
  v.push_back(make2(Opcode::kIntrin, Op::none(),
                    Op::make_imm(static_cast<std::int64_t>(in::Id::kSin))));
  return v;
}

TEST(Encode, RoundTripRepresentative) {
  const std::vector<Instr> instrs = representative_instrs();
  std::vector<std::uint8_t> bytes;
  for (const Instr& ins : instrs) encode(ins, &bytes);

  std::vector<Instr> decoded = decode_all(bytes, 0x400000);
  ASSERT_EQ(decoded.size(), instrs.size());
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    EXPECT_EQ(decoded[i], instrs[i]) << "instr " << i << ": "
                                     << instr_to_string(instrs[i]);
  }
}

TEST(Encode, SizesAreSelfConsistent) {
  for (const Instr& ins : representative_instrs()) {
    std::vector<std::uint8_t> bytes;
    encode(ins, &bytes);
    EXPECT_EQ(bytes.size(), encoded_size(ins)) << instr_to_string(ins);
  }
}

TEST(Encode, AddressesAssignedSequentially) {
  const std::vector<Instr> instrs = representative_instrs();
  std::vector<std::uint8_t> bytes;
  for (const Instr& ins : instrs) encode(ins, &bytes);
  const std::vector<Instr> decoded = decode_all(bytes, 0x1000);
  std::uint64_t expect = 0x1000;
  for (const Instr& ins : decoded) {
    EXPECT_EQ(ins.addr, expect);
    EXPECT_EQ(ins.origin, ins.addr);  // fresh decode: identity provenance
    expect += ins.size;
  }
}

// Property sweep: random (but valid) instructions survive the round trip.
class EncodeRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(EncodeRandomSweep, RoundTrip) {
  SplitMix64 rng(0xC0FFEE + static_cast<std::uint64_t>(GetParam()));
  std::vector<Instr> instrs;
  const std::vector<Instr> reps = representative_instrs();
  for (int i = 0; i < 200; ++i) {
    Instr ins = reps[rng.next_below(reps.size())];
    // Perturb register numbers and displacements within valid ranges.
    const auto perturb = [&](Operand* op) {
      switch (op->kind) {
        case OperandKind::kGpr:
        case OperandKind::kXmm:
          op->reg = static_cast<std::uint8_t>(rng.next_below(16));
          break;
        case OperandKind::kImm:
          if (!opcode_info(ins.op).is_branch &&
              !opcode_info(ins.op).is_call && ins.op != Opcode::kIntrin) {
            op->imm = static_cast<std::int64_t>(rng.next_u64());
          }
          break;
        case OperandKind::kMem: {
          op->mem.base = static_cast<std::uint8_t>(rng.next_below(16));
          const std::uint8_t scales[4] = {1, 2, 4, 8};
          if (rng.next_below(2) == 0) {
            op->mem.index = static_cast<std::uint8_t>(rng.next_below(16));
            op->mem.scale = scales[rng.next_below(4)];
          } else {
            op->mem.index = kNoReg;
            op->mem.scale = 1;
          }
          op->mem.disp = static_cast<std::int32_t>(rng.next_u64());
          break;
        }
        default:
          break;
      }
    };
    perturb(&ins.dst);
    perturb(&ins.src);
    instrs.push_back(ins);
  }
  std::vector<std::uint8_t> bytes;
  for (const Instr& ins : instrs) encode(ins, &bytes);
  const std::vector<Instr> decoded = decode_all(bytes, 0x400000);
  ASSERT_EQ(decoded.size(), instrs.size());
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    EXPECT_EQ(decoded[i], instrs[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeRandomSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Validation rejections.

TEST(Encode, RejectsIllegalForms) {
  std::vector<std::uint8_t> bytes;
  // Immediate destination for add.
  EXPECT_THROW(encode(make2(Opcode::kAdd, Operand::make_imm(1),
                            Operand::gpr(0)), &bytes),
               DecodeError);
  // addsd with a GPR operand.
  EXPECT_THROW(encode(make2(Opcode::kAddsd, Operand::xmm(0), Operand::gpr(1)),
                      &bytes),
               DecodeError);
  // mov into memory must use store.
  EXPECT_THROW(
      encode(make2(Opcode::kMov, Operand::mem_bd(0, 0), Operand::gpr(1)),
             &bytes),
      DecodeError);
  // Out-of-range register.
  EXPECT_THROW(encode(make2(Opcode::kMov, Operand::gpr(16),
                            Operand::make_imm(0)), &bytes),
               DecodeError);
}

TEST(Decode, RejectsMalformedBytes) {
  // Unknown opcode byte.
  std::vector<std::uint8_t> bad = {0xEE, 0x00};
  Instr out;
  EXPECT_THROW(decode(bad, 0, 0, &out), DecodeError);
  // Truncated immediate.
  std::vector<std::uint8_t> ok;
  encode(make2(Opcode::kMov, Operand::gpr(0), Operand::make_imm(42)), &ok);
  ok.resize(ok.size() - 2);
  EXPECT_THROW(decode(ok, 0, 0, &out), DecodeError);
  // Invalid operand form nibble.
  std::vector<std::uint8_t> badform = {
      static_cast<std::uint8_t>(Opcode::kNop), 0x77};
  EXPECT_THROW(decode(badform, 0, 0, &out), DecodeError);
  // Bad mem scale.
  std::vector<std::uint8_t> memop;
  encode(make2(Opcode::kLoad, Operand::gpr(0), Operand::mem_bd(1, 0)), &memop);
  memop[5] = 3;  // scale byte (op, form, reg, base, index, scale)
  EXPECT_THROW(decode(memop, 0, 0, &out), DecodeError);
}

// ---------------------------------------------------------------------------
// Disassembler output (shape only; exact format is an interface with the
// configuration files).

TEST(Disasm, KnownPatterns) {
  EXPECT_EQ(instr_to_string(make2(Opcode::kAddsd, Operand::xmm(0),
                                  Operand::xmm(1))),
            "addsd xmm0, xmm1");
  EXPECT_EQ(instr_to_string(make2(Opcode::kMov, Operand::gpr(3),
                                  Operand::make_imm(42))),
            "mov r3, 42");
  EXPECT_EQ(instr_to_string(make2(Opcode::kLoad, Operand::gpr(2),
                                  Operand::mem_bisd(1, 2, 8, 16))),
            "load r2, [r1+r2*8+16]");
  EXPECT_EQ(instr_to_string(make2(Opcode::kJne, Operand::none(),
                                  Operand::make_imm(0x400100))),
            "jne 0x400100");
  EXPECT_EQ(instr_to_string(
                make2(Opcode::kIntrin, Operand::none(),
                      Operand::make_imm(static_cast<std::int64_t>(
                          in::Id::kOutputF64)))),
            "intrin output_f64");
  EXPECT_EQ(instr_to_string(make1(Opcode::kPush, Operand::gpr(15))),
            "push sp");
}

}  // namespace
}  // namespace fpmix::arch
