#include "search/trial_cache.hpp"

#include "support/hash.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace fpmix::search {

void TrialCache::insert(const std::string& key, CachedTrial trial) {
  trials_.try_emplace(key, std::move(trial));
}

const CachedTrial* TrialCache::lookup(const std::string& key) const {
  const auto it = trials_.find(key);
  return it == trials_.end() ? nullptr : &it->second;
}

std::string search_fingerprint(const std::string& verifier_fingerprint,
                               std::uint64_t max_instructions_per_run,
                               std::uint64_t deadline_ms,
                               const std::string& fault_tag) {
  std::uint64_t h = fnv1a64(verifier_fingerprint);
  h = fnv1a64_mix(h, max_instructions_per_run);
  // Folded only when set, so clean, deadline-free fingerprints are
  // byte-identical to the ones version-1 journals were recorded under.
  if (deadline_ms != 0) h = fnv1a64_mix(fnv1a64("deadline", h), deadline_ms);
  if (!fault_tag.empty()) h = fnv1a64(fault_tag, fnv1a64("faults", h));
  return hex_digest(h);
}

std::string encode_meta_line(const std::string& search_fp) {
  return strformat("{\"type\":\"meta\",\"version\":2,\"search_fp\":\"%s\"}",
                   json_escape(search_fp).c_str());
}

std::string encode_trial_line(const std::string& key, const std::string& unit,
                              std::size_t candidates, const CachedTrial& t) {
  return strformat(
      "{\"type\":\"trial\",\"key\":\"%s\",\"unit\":\"%s\",\"cand\":%zu,"
      "\"passed\":%s,\"class\":\"%s\",\"failure\":\"%s\",\"eval_ns\":%llu,"
      "\"saved_ns\":%llu,\"img_hit\":%s}",
      json_escape(key).c_str(), json_escape(unit).c_str(), candidates,
      t.passed ? "true" : "false",
      verify::failure_class_name(t.failure_class),
      json_escape(t.failure).c_str(),
      static_cast<unsigned long long>(t.eval_ns),
      static_cast<unsigned long long>(t.saved_ns),
      t.image_cache_hit ? "true" : "false");
}

std::size_t load_journal(const std::string& path,
                         const std::string& search_fp, TrialCache* cache,
                         JournalReplayStats* stats) {
  JournalReplayStats local;
  JournalReplayStats& s = stats != nullptr ? *stats : local;
  s = JournalReplayStats{};
  bool fp_matches = false;    // until a meta record says otherwise
  std::uint64_t last_seq = 0;  // per journal session (reset by meta records)
  for (const std::string& line : Journal::read_lines(path)) {
    if (trim(line).empty()) continue;
    const SealCheck seal = check_seal(line);
    if (seal == SealCheck::kCorrupt) {
      ++s.crc_mismatch;
      continue;
    }
    JsonRecord rec;
    if (!parse_flat_json(line, &rec)) {
      ++s.malformed;
      continue;
    }
    std::uint64_t seq = 0;
    const bool sealed = seal == SealCheck::kOk;
    if (sealed) {
      const auto it = rec.find("seq");
      if (it == rec.end() || !parse_u64(it->second, &seq)) {
        ++s.malformed;
        continue;
      }
    }
    const auto type = rec.find("type");
    if (type == rec.end()) {
      ++s.malformed;
      continue;
    }
    if (type->second == "meta") {
      const auto fp = rec.find("search_fp");
      fp_matches = fp != rec.end() && fp->second == search_fp;
      // A meta record opens a new journal session; its writer restarted
      // sequence numbering, so the duplicate/gap tracker restarts too.
      last_seq = seq;
      continue;
    }
    if (sealed) {
      if (seq <= last_seq) {
        ++s.duplicate_seq;  // a replayed line (or an out-of-order splice)
        continue;
      }
      if (seq != last_seq + 1) ++s.seq_gaps;  // records were lost in between
      last_seq = seq;
    } else {
      ++s.legacy;
    }
    if (type->second != "trial") continue;  // future record types: ignore
    if (!fp_matches) {
      ++s.foreign;  // recorded under a different search identity
      continue;
    }
    const auto key = rec.find("key");
    const auto passed = rec.find("passed");
    if (key == rec.end() || passed == rec.end() ||
        (passed->second != "true" && passed->second != "false")) {
      ++s.malformed;
      continue;
    }
    CachedTrial t;
    t.passed = passed->second == "true";
    if (const auto f = rec.find("failure"); f != rec.end()) {
      t.failure = f->second;
    }
    if (const auto c = rec.find("class");
        c == rec.end() ||
        !verify::parse_failure_class(c->second, &t.failure_class)) {
      // Version-1 records predate the class field: classify from the
      // failure message.
      t.failure_class = t.passed ? verify::FailureClass::kNone
                                 : verify::classify_failure_message(t.failure);
    }
    if (const auto ns = rec.find("eval_ns"); ns != rec.end()) {
      parse_u64(ns->second, &t.eval_ns);
    }
    // Absent in version-1/2 records written before the incremental pipeline.
    if (const auto sv = rec.find("saved_ns"); sv != rec.end()) {
      parse_u64(sv->second, &t.saved_ns);
    }
    if (const auto ih = rec.find("img_hit"); ih != rec.end()) {
      t.image_cache_hit = ih->second == "true";
    }
    cache->insert(key->second, std::move(t));
    ++s.loaded;
  }
  const std::size_t damaged = s.malformed + s.crc_mismatch + s.duplicate_seq;
  if (damaged > 0 || s.seq_gaps > 0) {
    log::warnf(
        "trial journal %s: skipped %zu damaged record(s)"
        " (%zu malformed, %zu CRC mismatch, %zu duplicate), %zu sequence"
        " gap(s); replay continued past the damage",
        path.c_str(), damaged, s.malformed, s.crc_mismatch, s.duplicate_seq,
        s.seq_gaps);
  }
  return s.loaded;
}

}  // namespace fpmix::search
