// Ablation: snippet design choices (DESIGN.md section 6, items 3/4 and the
// Section 2.5 dataflow optimization).
//
//   - sentinel check vs unconditional downcast: the Figure 6 tag test costs
//     instructions but is load-bearing -- without it, a value that is
//     already boxed gets re-narrowed as if its NaN-boxed bit pattern were a
//     double, and verification collapses;
//   - intra-block tag-state dataflow: eliding statically decidable checks
//     (the paper's proposed future optimization) reduces overhead without
//     changing results.
#include <cstdio>

#include "bench_util.hpp"
#include "verify/evaluate.hpp"

int main() {
  using namespace fpmix;
  std::printf("Snippet ablations: tag check and dataflow elision\n\n");
  std::printf("%-8s %-26s %10s %9s %8s %8s\n", "bench", "variant",
              "snippet in", "ovh", "elided", "verify");
  bench::print_rule(76);

  for (char cls : {'W'}) {
    for (auto make : {kernels::make_ep, kernels::make_mg,
                      kernels::make_cg}) {
      const kernels::Workload w = make(cls, 1);
      const program::Image orig = kernels::build_image(w);
      auto ix = config::StructureIndex::build(program::lift(orig));
      const auto verifier = kernels::make_verifier(w, orig);
      const bench::TimedRun ro = bench::run_timed(orig);

      // All-single configuration: the stress case for the tag check.
      config::PrecisionConfig all_single;
      for (std::size_t m = 0; m < ix.modules().size(); ++m) {
        all_single.set_module(m, config::Precision::kSingle);
      }

      struct Variant {
        const char* label;
        instrument::InstrumentOptions opts;
        const config::PrecisionConfig* cfg;
      };
      config::PrecisionConfig all_double;
      std::vector<Variant> variants;
      {
        Variant v{"double / baseline", {}, &all_double};
        variants.push_back(v);
      }
      {
        Variant v{"double / dataflow", {}, &all_double};
        v.opts.dataflow_optimize = true;
        variants.push_back(v);
      }
      {
        Variant v{"single / baseline", {}, &all_single};
        variants.push_back(v);
      }
      {
        Variant v{"single / dataflow", {}, &all_single};
        v.opts.dataflow_optimize = true;
        variants.push_back(v);
      }
      {
        Variant v{"single / no tag check", {}, &all_single};
        v.opts.snippet.check_tags = false;
        variants.push_back(v);
      }

      for (const Variant& v : variants) {
        instrument::InstrumentStats stats;
        const program::Image inst = instrument::instrument_image(
            orig, ix, *v.cfg, &stats, v.opts);
        const bench::TimedRun ri = bench::run_timed(inst);
        const bool verified =
            ri.ok && verifier->verify(ri.outputs);
        std::printf("%-8s %-26s %10zu %8.2fX %8zu %8s\n", w.name.c_str(),
                    v.label, stats.snippet_instrs,
                    ri.ok ? double(ri.instructions) / double(ro.instructions)
                          : 0.0,
                    stats.checks_elided,
                    !ri.ok ? "CRASH" : (verified ? "pass" : "fail"));
      }
      std::printf("\n");
    }
  }
  std::printf("note: 'single / no tag check' demonstrates that Figure 6's "
              "sentinel test is\nload-bearing -- unconditional narrowing "
              "re-converts already-boxed values.\n");
  return 0;
}
