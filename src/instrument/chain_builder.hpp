// ChainBuilder: incremental construction of snippet chains (sequences of
// basic blocks with forward-branch control flow), shared by the
// mixed-precision snippet compiler and the cancellation-detection
// instrumenter.
#pragma once

#include <cstdint>

#include "arch/instr.hpp"
#include "instrument/snippet.hpp"

namespace fpmix::instrument {

class ChainBuilder {
 public:
  explicit ChainBuilder(std::uint64_t origin) : origin_(origin) {
    blocks_.emplace_back();
  }

  void emit(arch::Opcode op, arch::Operand dst = arch::Operand::none(),
            arch::Operand src = arch::Operand::none()) {
    arch::Instr ins = arch::make2(op, dst, src);
    ins.origin = origin_;
    blocks_.back().instrs.push_back(ins);
  }

  /// Ends the current block with a forward branch whose target is bound by
  /// land(); execution falls through to the next emitted code otherwise.
  struct FwdBranch {
    std::size_t block;
  };
  FwdBranch branch_fwd(arch::Opcode jcc) {
    emit(jcc, arch::Operand::none(), arch::Operand::make_imm(0));
    const FwdBranch h{blocks_.size() - 1};
    start_block();
    return h;
  }

  /// A backward branch: ends the current block with `jcc` targeting a block
  /// that was started by mark() earlier (loop support for the cancellation
  /// shadow loops).
  struct Mark {
    program::BlockIndex block;
  };
  Mark mark() {
    start_block();
    return Mark{static_cast<program::BlockIndex>(blocks_.size() - 1)};
  }
  void branch_back(arch::Opcode jcc, Mark m) {
    emit(jcc, arch::Operand::none(),
         arch::Operand::make_imm(static_cast<std::int64_t>(m.block)));
    blocks_.back().taken = m.block;
    start_block();
  }

  /// Binds a pending forward branch to the instruction emitted next.
  void land(FwdBranch h) {
    start_block();
    const auto target =
        static_cast<program::BlockIndex>(blocks_.size() - 1);
    program::BasicBlock& b = blocks_[h.block];
    b.taken = target;
    b.instrs.back().src.imm = target;
  }

  SnippetChain finish();

  std::uint64_t origin() const { return origin_; }

 private:
  void start_block() {
    const auto next = static_cast<program::BlockIndex>(blocks_.size());
    blocks_.back().fallthrough = next;
    blocks_.emplace_back();
  }

  std::uint64_t origin_;
  std::vector<program::BasicBlock> blocks_;
};

}  // namespace fpmix::instrument
