// Three-way MIPS comparison of the VM execution engines, plus the JIT's
// compile-time budget, lowering-coverage census and Amdahl split.
//
// For each NAS kernel analogue, predecodes the image once and runs it to
// completion on the reference switch interpreter, the micro-op engine and
// the baseline JIT (profiling off on all three -- the trial-evaluation
// configuration). Reports retired-instructions-per-second per engine, the
// JIT's standalone compile+link time, and the cold (first run on a fresh
// image, compile included) vs warm (per-image code cache hit) wall time.
// All three engines must agree bit-for-bit on outputs and retired counts;
// any mismatch fails the run with a non-zero exit, so this binary doubles
// as an end-to-end differential check.
//
// After the MIPS table the binary prints:
//  - a lowering-coverage table (suite totals per op family: how many uops
//    compiled to inline native code vs the generic-exec fallback vs an
//    out-of-line helper call), so specialisation gaps are visible;
//  - an Amdahl table splitting each kernel's JIT wall time into jitted
//    code vs C++ helper calls (Machine::Options::time_jit_helpers), which
//    bounds the speedup still available from further inlining.
//
// On hosts without JIT support (non-x86-64, sanitizer builds, hardened
// kernels) the JIT columns are skipped and the switch/micro comparison
// still runs -- exit stays 0 so CI sanitizer legs can execute the binary.
//
// Usage: bench_jit_compile [S|W|A] [--quick] [--json FILE]
//                          [--min-geomean X]
//   --quick: class S, one repetition per engine (the CI smoke
//   configuration; still prints the full table).
//   --json FILE: also write the per-kernel rows, coverage census and
//   geomean as one JSON object (seeds BENCH_JIT.json).
//   --min-geomean X: exit non-zero when the jit/micro geomean falls below
//   X (CI perf floor; ignored when the JIT is unavailable).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/workload.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "vm/jit/jit.hpp"
#include "vm/machine.hpp"

namespace {

struct EngineRun {
  double best_seconds = 0.0;
  double first_seconds = 0.0;  // cold run: includes compile+link on the JIT
  std::uint64_t retired = 0;
  std::vector<double> outputs;
  bool ok = false;
  std::string error;
};

EngineRun run_best_of(
    const std::shared_ptr<const fpmix::vm::ExecutableImage>& exec,
    fpmix::vm::Engine engine, std::uint64_t max_instructions, int reps) {
  EngineRun out;
  for (int rep = 0; rep < reps; ++rep) {
    fpmix::vm::Machine::Options opts;
    opts.engine = engine;
    opts.profile = false;
    opts.max_instructions = max_instructions;
    fpmix::vm::Machine m(exec, opts);
    fpmix::Timer t;
    const fpmix::vm::RunResult r = m.run();
    const double secs = t.elapsed_seconds();
    if (rep == 0) out.first_seconds = secs;
    if (rep == 0 || secs < out.best_seconds) out.best_seconds = secs;
    out.retired = m.instructions_retired();
    out.outputs = m.output_f64();
    out.ok = r.ok();
    out.error = r.trap_message;
    if (!out.ok) break;
  }
  return out;
}

bool bit_identical(const EngineRun& a, const EngineRun& b) {
  if (a.retired != b.retired || a.outputs.size() != b.outputs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.outputs[i]) !=
        std::bit_cast<std::uint64_t>(b.outputs[i])) {
      return false;
    }
  }
  return true;
}

/// One timed-helper run (Amdahl view): total wall time plus the portion
/// spent inside the out-of-line C++ helpers. intrin_fn is withheld under
/// time_jit_helpers so intrinsic calls route through the timed helper.
struct AmdahlRun {
  double total_seconds = 0.0;
  double helper_seconds = 0.0;
  std::uint64_t helper_calls = 0;
  bool ok = false;
};

AmdahlRun run_amdahl(
    const std::shared_ptr<const fpmix::vm::ExecutableImage>& exec,
    std::uint64_t max_instructions) {
  fpmix::vm::Machine::Options opts;
  opts.engine = fpmix::vm::Engine::kJit;
  opts.profile = false;
  opts.max_instructions = max_instructions;
  opts.time_jit_helpers = true;
  fpmix::vm::Machine m(exec, opts);
  fpmix::Timer t;
  const fpmix::vm::RunResult r = m.run();
  AmdahlRun out;
  out.total_seconds = t.elapsed_seconds();
  out.helper_seconds = 1e-9 * static_cast<double>(m.jit_helper_ns());
  out.helper_calls = m.jit_helper_calls();
  out.ok = r.ok();
  return out;
}

struct KernelRow {
  std::string name;
  std::uint64_t retired = 0;
  double sw_mips = 0.0;
  double micro_mips = 0.0;
  double jit_mips = 0.0;
  double speedup = 0.0;
  double compile_ms = 0.0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  AmdahlRun amdahl;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fpmix;

  char cls = 'W';
  bool quick = false;
  std::string json_path;
  double min_geomean = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-geomean") == 0 && i + 1 < argc) {
      min_geomean = std::atof(argv[++i]);
    } else if (std::strlen(argv[i]) == 1) {
      cls = argv[i][0];
    }
  }
  if (quick) cls = 'S';
  const int reps = quick ? 1 : 3;

  const bool jit = vm::jit::jit_supported();
  if (!jit) {
    std::printf("note: jit unavailable on this host (%s); "
                "jit columns skipped\n",
                vm::jit::jit_unsupported_reason());
  }

  std::vector<kernels::Workload> suite;
  suite.push_back(kernels::make_ep(cls));
  suite.push_back(kernels::make_cg(cls));
  suite.push_back(kernels::make_ft(cls));
  suite.push_back(kernels::make_mg(cls));
  suite.push_back(kernels::make_bt(cls));
  suite.push_back(kernels::make_lu(cls));
  suite.push_back(kernels::make_sp(cls));

  std::printf("VM engines + JIT compile budget, NAS kernel suite, class %c "
              "(best of %d rep%s)\n",
              cls, reps, reps == 1 ? "" : "s");
  bench::print_rule(100);
  std::printf("%-8s %13s %10s %10s %10s %8s %9s %9s %9s\n", "bench",
              "instructions", "sw MIPS", "micro MIPS", "jit MIPS",
              "jit/mic", "compile", "cold ms", "warm ms");
  bench::print_rule(100);

  bool all_match = true;
  double log_speedup_sum = 0.0;
  std::size_t speedup_rows = 0;
  vm::jit::LoweringStats coverage;  // suite totals from the compile probes
  std::vector<KernelRow> rows;
  for (const kernels::Workload& w : suite) {
    const program::Image img = kernels::build_image(w);

    // Standalone compile+link cost, measured outside the Machine so the
    // table separates translation from execution. Monolithic (global-form)
    // compile of the whole stream, the same work a cold Machine run does.
    // The blob's per-family lowering census is accumulated into `coverage`.
    double compile_seconds = 0.0;
    if (jit) {
      const auto exec_probe = vm::ExecutableImage::build(img);
      Timer ct;
      const auto blob = vm::jit::compile_stream(
          exec_probe->uops(), vm::jit::CompileMode{false, false});
      std::vector<vm::jit::LinkSegment> segs;
      segs.push_back({blob, 0, 0});
      const auto linked =
          vm::jit::JitImage::link(segs, exec_probe->uops().size());
      compile_seconds = ct.elapsed_seconds();
      coverage.add(blob->stats);
      if (linked == nullptr) {
        std::printf("%-8s FAILED: jit link refused\n", w.name.c_str());
        all_match = false;
        continue;
      }
    }

    const auto exec = vm::ExecutableImage::build(img);
    const EngineRun sw = run_best_of(exec, vm::Engine::kSwitch,
                                     w.max_instructions, reps);
    const EngineRun micro = run_best_of(exec, vm::Engine::kMicroOp,
                                        w.max_instructions, reps);
    // reps + 1 so the warm column exists even under --quick: rep 0 is the
    // cold compile, later reps hit the per-image code cache.
    const EngineRun jrun =
        jit ? run_best_of(exec, vm::Engine::kJit, w.max_instructions,
                          reps + 1)
            : EngineRun{};
    if (!sw.ok || !micro.ok || (jit && !jrun.ok)) {
      std::printf("%-8s FAILED: %s\n", w.name.c_str(),
                  (!sw.ok   ? sw.error
                   : !micro.ok ? micro.error
                               : jrun.error)
                      .c_str());
      all_match = false;
      continue;
    }
    if (!bit_identical(sw, micro) || (jit && !bit_identical(sw, jrun))) {
      std::printf("%-8s ENGINE MISMATCH (outputs or retired count)\n",
                  w.name.c_str());
      all_match = false;
      continue;
    }

    KernelRow row;
    row.name = w.name;
    row.retired = jit ? jrun.retired : micro.retired;
    row.sw_mips = static_cast<double>(sw.retired) / sw.best_seconds / 1e6;
    row.micro_mips =
        static_cast<double>(micro.retired) / micro.best_seconds / 1e6;
    if (jit) {
      row.jit_mips =
          static_cast<double>(jrun.retired) / jrun.best_seconds / 1e6;
      row.speedup = row.jit_mips / row.micro_mips;
      row.compile_ms = 1e3 * compile_seconds;
      row.cold_ms = 1e3 * jrun.first_seconds;
      row.warm_ms = 1e3 * jrun.best_seconds;
      row.amdahl = run_amdahl(exec, w.max_instructions);
      log_speedup_sum += std::log(row.speedup);
      ++speedup_rows;
      std::printf("%-8s %13llu %10.1f %10.1f %10.1f %7.2fx %7.2fms "
                  "%9.2f %9.2f\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.retired), row.sw_mips,
                  row.micro_mips, row.jit_mips, row.speedup, row.compile_ms,
                  row.cold_ms, row.warm_ms);
    } else {
      std::printf("%-8s %13llu %10.1f %10.1f %10s %8s %9s %9s %9s\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.retired), row.sw_mips,
                  row.micro_mips, "-", "-", "-", "-", "-");
    }
    rows.push_back(row);
  }
  bench::print_rule(100);
  double geomean = 0.0;
  if (speedup_rows > 0) {
    geomean = std::exp(log_speedup_sum / static_cast<double>(speedup_rows));
    std::printf("geomean speedup: %.2fx (jit over micro-op)\n", geomean);
  }

  if (jit) {
    // Lowering-coverage census: suite totals per op family from the
    // compile probes above. "native" uops run as inline host code;
    // "generic" fall back to the one-instruction micro-op interpreter;
    // "helper" call an out-of-line C++ helper (intrinsic/ret).
    std::printf("\nJIT lowering coverage (suite totals, static uop counts)\n");
    bench::print_rule(64);
    std::printf("%-12s %10s %10s %10s %9s\n", "family", "native", "generic",
                "helper", "native%");
    bench::print_rule(64);
    for (int f = 0; f < vm::jit::LoweringStats::kNumFamilies; ++f) {
      const std::uint64_t n = coverage.native[f];
      const std::uint64_t g = coverage.generic[f];
      const std::uint64_t h = coverage.helper[f];
      if (n + g + h == 0) continue;
      std::printf("%-12s %10llu %10llu %10llu %8.1f%%\n",
                  vm::jit::lowering_family_name(f),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(g),
                  static_cast<unsigned long long>(h),
                  100.0 * static_cast<double>(n) /
                      static_cast<double>(n + g + h));
    }
    bench::print_rule(64);
    const std::uint64_t tn = coverage.total_native();
    const std::uint64_t tg = coverage.total_generic();
    const std::uint64_t th = coverage.total_helper();
    std::printf("%-12s %10llu %10llu %10llu %8.1f%%\n", "total",
                static_cast<unsigned long long>(tn),
                static_cast<unsigned long long>(tg),
                static_cast<unsigned long long>(th),
                100.0 * static_cast<double>(tn) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, tn + tg + th)));
    std::printf("fused cmp+jcc pairs: %llu   regalloc blocks: %llu   "
                "promoted slots: %llu\n",
                static_cast<unsigned long long>(coverage.fused_pairs),
                static_cast<unsigned long long>(coverage.reg_alloc_blocks),
                static_cast<unsigned long long>(coverage.reg_alloc_slots));

    // Amdahl split: how much of each kernel's wall time the jitted code
    // retains vs what still leaks into C++ helpers. The timed run routes
    // intrinsics through the helper path, so "helper" bounds what further
    // intrinsic/generic inlining could still recover.
    std::printf("\nAmdahl split (timed-helper run: jitted vs helper time)\n");
    bench::print_rule(64);
    std::printf("%-8s %11s %11s %11s %9s\n", "bench", "total ms",
                "jitted ms", "helper ms", "helper%");
    bench::print_rule(64);
    for (const KernelRow& r : rows) {
      if (!r.amdahl.ok) {
        std::printf("%-8s timed-helper run failed\n", r.name.c_str());
        continue;
      }
      const double helper_ms = 1e3 * r.amdahl.helper_seconds;
      const double total_ms = 1e3 * r.amdahl.total_seconds;
      std::printf("%-8s %11.2f %11.2f %11.2f %8.1f%%\n", r.name.c_str(),
                  total_ms, total_ms - helper_ms, helper_ms,
                  100.0 * helper_ms / std::max(1e-9, total_ms));
    }
    bench::print_rule(64);
  }

  if (!json_path.empty()) {
    std::string j = "{\n";
    j += strformat("  \"bench\": \"bench_jit_compile\",\n");
    j += strformat("  \"class\": \"%c\",\n", cls);
    j += strformat("  \"reps\": %d,\n", reps);
    j += strformat("  \"jit_available\": %s,\n", jit ? "true" : "false");
    j += "  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const KernelRow& r = rows[i];
      j += strformat(
          "    {\"name\": \"%s\", \"instructions\": %llu, "
          "\"switch_mips\": %.1f, \"micro_mips\": %.1f, "
          "\"jit_mips\": %.1f, \"speedup\": %.3f, \"compile_ms\": %.3f, "
          "\"cold_ms\": %.3f, \"warm_ms\": %.3f, \"helper_ms\": %.3f, "
          "\"helper_calls\": %llu, \"helper_frac\": %.4f}%s\n",
          r.name.c_str(), static_cast<unsigned long long>(r.retired),
          r.sw_mips, r.micro_mips, r.jit_mips, r.speedup, r.compile_ms,
          r.cold_ms, r.warm_ms, 1e3 * r.amdahl.helper_seconds,
          static_cast<unsigned long long>(r.amdahl.helper_calls),
          r.amdahl.helper_seconds / std::max(1e-9, r.amdahl.total_seconds),
          i + 1 < rows.size() ? "," : "");
    }
    j += "  ],\n";
    j += strformat("  \"geomean_speedup\": %.3f,\n", geomean);
    j += "  \"lowering\": {\n";
    for (int f = 0; f < vm::jit::LoweringStats::kNumFamilies; ++f) {
      j += strformat(
          "    \"%s\": {\"native\": %llu, \"generic\": %llu, "
          "\"helper\": %llu},\n",
          vm::jit::lowering_family_name(f),
          static_cast<unsigned long long>(coverage.native[f]),
          static_cast<unsigned long long>(coverage.generic[f]),
          static_cast<unsigned long long>(coverage.helper[f]));
    }
    j += strformat("    \"fused_pairs\": %llu,\n",
                   static_cast<unsigned long long>(coverage.fused_pairs));
    j += strformat(
        "    \"reg_alloc_blocks\": %llu,\n",
        static_cast<unsigned long long>(coverage.reg_alloc_blocks));
    j += strformat(
        "    \"reg_alloc_slots\": %llu\n",
        static_cast<unsigned long long>(coverage.reg_alloc_slots));
    j += "  }\n}\n";
    std::ofstream f(json_path);
    if (!f) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    f << j;
  }

  if (!all_match) {
    std::printf("FAIL: engines disagree; see rows above\n");
    return 1;
  }
  if (jit && min_geomean > 0.0 && geomean < min_geomean) {
    std::printf("FAIL: geomean %.2fx below floor %.2fx\n", geomean,
                min_geomean);
    return 1;
  }
  return 0;
}
