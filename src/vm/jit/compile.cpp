// MicroOp stream -> position-independent x86-64 blob.
//
// Second-wave optimizing compiler. Every guest instruction still begins
// with the interpreter's exact dispatch sequence (budget check, optional
// profile count, retire) and operates on the Machine's own state through
// the pinned base registers:
//
//   r15 = JitContext*   r12 = gpr file   r13 = VM memory
//   rbx = xmm file      r14 = retired    rbp = max_instructions
//
// rax/rcx/rdx/rsi/rdi/r8 and xmm0-2 are scratch within a template. On top
// of the per-op templates this compiler layers:
//
//  - Block-local register allocation: within each basic block the hottest
//    guest gpr slots are promoted to r9-r11 and the hottest xmm low qwords
//    to xmm4-xmm15, loaded once at block entry and spilled back to the
//    pinned arrays at block exit and in every trap stub. External entries
//    into the middle of an allocated block (chunked resume, help_ret,
//    delta re-JIT) land on out-of-line per-instruction thunks that reload
//    the promoted registers and jump into the block body, so every
//    instr_off entry remains a valid resume target. Blocks containing
//    array-shaped templates (16-byte moves, packed SSE) opt out.
//  - Compare+branch fusion: a cmp/test followed by a jcc whose guest flag
//    bytes are provably dead at both successors branches straight off the
//    host flags. The branch keeps its own out-of-line resume path that
//    reads the flag bytes like an unfused branch; the mid-pair budget stub
//    materializes them, so stops and faults between the halves stay
//    bit-identical with the interpreters.
//  - Native idiv/irem, cvttsd2si/cvttss2si, packed SSE and 128-bit bitwise
//    templates (previously generic-exec round trips), and inline calls to
//    the hot unary math intrinsics through JitContext::intrin_fn.
//
// Trap-shaped paths (bounds, tag sentinel, budget, divide/cvtt range)
// branch to per-site out-of-line stubs emitted after the instruction
// bodies; the stubs spill any promoted registers, load the faulting pc as
// a link-patched immediate and call the C++ helpers through the context
// block. Anything still unspecialized goes through the generic-exec
// helper, which runs the micro-op interpreter's own handler for exactly
// one instruction -- lowering is total and the engines cannot drift.
//
// Ordering subtleties are load-bearing and mirror machine.cpp exactly:
// bounds traps fire before tag traps on the same load, the tag check on the
// destination operand precedes the source's bounds check, push updates sp
// before the trapping store, pop increments sp only after the load, the
// two halves of 16-byte moves commit the first lane before the second
// lane's bounds check, and divide/cvtt range checks trap before any
// register write.

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include "arch/operand.hpp"
#include "vm/jit/emitter.hpp"
#include "vm/jit/jit.hpp"

namespace fpmix::vm::jit {
namespace {

// JitContext field displacements off r15 (layout static_asserted in jit.hpp).
constexpr std::int32_t kCtxMemSize = 16;
constexpr std::int32_t kCtxRetired = 32;
constexpr std::int32_t kCtxCounts = 48;
constexpr std::int32_t kCtxTagCmp = 56;
constexpr std::int32_t kCtxExitPc = 64;
constexpr std::int32_t kCtxExitStatus = 72;
constexpr std::int32_t kCtxFlagEq = 76;
constexpr std::int32_t kCtxFlagLt = 77;
constexpr std::int32_t kCtxFlagLtu = 78;
constexpr std::int32_t kCtxEpilogue = 80;
constexpr std::int32_t kCtxHelpMemTrap = 88;
constexpr std::int32_t kCtxHelpTagTrap = 96;
constexpr std::int32_t kCtxHelpExec = 104;
constexpr std::int32_t kCtxHelpRet = 112;
constexpr std::int32_t kCtxHelpIntrin = 120;
constexpr std::int32_t kCtxHelpOpTrap = 144;
constexpr std::int32_t kCtxIntrinFn = 152;
constexpr std::int32_t kCtxMemLimit8 = 160;
constexpr std::int32_t kCtxMemLimit4 = 168;
static_assert(offsetof(JitContext, mem_size) == kCtxMemSize);
static_assert(offsetof(JitContext, mem_limit8) == kCtxMemLimit8);
static_assert(offsetof(JitContext, mem_limit4) == kCtxMemLimit4);
static_assert(offsetof(JitContext, counts) == kCtxCounts);
static_assert(offsetof(JitContext, exit_pc) == kCtxExitPc);
static_assert(offsetof(JitContext, flag_ltu) == kCtxFlagLtu);
static_assert(offsetof(JitContext, help_mem_trap) == kCtxHelpMemTrap);
static_assert(offsetof(JitContext, help_ret) == kCtxHelpRet);
static_assert(offsetof(JitContext, help_intrin) == kCtxHelpIntrin);
static_assert(offsetof(JitContext, help_op_trap) == kCtxHelpOpTrap);
static_assert(offsetof(JitContext, intrin_fn) == kCtxIntrinFn);

constexpr bool fits_i32(std::int64_t v) {
  return v >= INT32_MIN && v <= INT32_MAX;
}

constexpr std::int32_t gpr_off(unsigned r) {
  return static_cast<std::int32_t>(r) * 8;
}
constexpr std::int32_t xmm_lo(unsigned r) {
  return static_cast<std::int32_t>(r) * 16;
}
constexpr std::int32_t xmm_hi(unsigned r) {
  return static_cast<std::int32_t>(r) * 16 + 8;
}
constexpr std::int32_t kSpOff = gpr_off(arch::kSpReg);

// SSE scalar/packed arithmetic opcodes (the prefix 0F xx second byte).
constexpr std::uint8_t kSseAdd = 0x58;
constexpr std::uint8_t kSseMul = 0x59;
constexpr std::uint8_t kSseSub = 0x5C;
constexpr std::uint8_t kSseDiv = 0x5E;
constexpr std::uint8_t kSseSqrt = 0x51;
constexpr std::uint8_t kSseAnd = 0x54;
constexpr std::uint8_t kSseOr = 0x56;
constexpr std::uint8_t kSseXor = 0x57;

// The cvtt* templates compare against the interpreter's exact range
// literals (machine.cpp h_cvttsd2si / h_cvttss2si) so boundary behaviour
// is bit-identical; note these are 9.2e18, not 2^63.
std::uint64_t f64_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}
std::uint32_t f32_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

constexpr MicroKind kind_of(const MicroOp& u) {
  return static_cast<MicroKind>(u.kind);
}
constexpr bool is_jcc(MicroKind k) {
  return k >= MicroKind::kJe && k <= MicroKind::kJae;
}
constexpr bool is_cmp_or_test(MicroKind k) {
  return k == MicroKind::kCmpRR || k == MicroKind::kCmpRI ||
         k == MicroKind::kTestRR || k == MicroKind::kTestRI;
}
constexpr bool writes_flags(MicroKind k) {
  return is_cmp_or_test(k) || k == MicroKind::kUcomisdXX ||
         k == MicroKind::kUcomisdXM || k == MicroKind::kUcomissXX ||
         k == MicroKind::kUcomissXM;
}

/// Ends a basic block: control leaves the straight line or the template
/// calls out of compiled code (helpers observe machine state, so promoted
/// registers must be spilled first and the terminator runs unallocated).
/// kIntrin is NOT a breaker: intrinsics always fall through, so the
/// template spills/reloads around its call and the block survives --
/// math-heavy kernels would otherwise fragment into unpromotable slivers.
constexpr bool is_block_breaker(MicroKind k) {
  return is_jcc(k) || k == MicroKind::kHalt || k == MicroKind::kJmp ||
         k == MicroKind::kCall || k == MicroKind::kRet ||
         k == MicroKind::kFallback;
}

/// Templates that address the guest xmm file directly (both lanes or
/// 16-byte memory shapes); blocks containing one run unallocated rather
/// than teaching every array access about the promotion map.
constexpr bool is_alloc_poison(MicroKind k) {
  switch (k) {
    case MicroKind::kMovapdXX:
    case MicroKind::kMovapdXM:
    case MicroKind::kMovapdMX:
    case MicroKind::kPushX:
    case MicroKind::kPopX:
      return true;
    default:
      return k >= MicroKind::kAddpdXX && k <= MicroKind::kXorpdXM;
  }
}

LoweringStats::Family family_of(MicroKind k) {
  using F = LoweringStats;
  if (k == MicroKind::kJmp || is_jcc(k)) return F::kBranch;
  if (k >= MicroKind::kAddpdXX && k <= MicroKind::kSqrtpsXM) return F::kPacked;
  if (k >= MicroKind::kAndpdXX && k <= MicroKind::kXorpdXM) return F::kBitwise;
  switch (k) {
    case MicroKind::kCall:
    case MicroKind::kRet:
      return F::kCallRet;
    case MicroKind::kIdivRR:
    case MicroKind::kIdivRI:
    case MicroKind::kIremRR:
    case MicroKind::kIremRI:
      return F::kDivRem;
    case MicroKind::kIntrin:
      return F::kIntrin;
    case MicroKind::kMovRR:
    case MicroKind::kMovRI:
    case MicroKind::kLea:
    case MicroKind::kAddRR:
    case MicroKind::kAddRI:
    case MicroKind::kSubRR:
    case MicroKind::kSubRI:
    case MicroKind::kImulRR:
    case MicroKind::kImulRI:
    case MicroKind::kAndRR:
    case MicroKind::kAndRI:
    case MicroKind::kOrRR:
    case MicroKind::kOrRI:
    case MicroKind::kXorRR:
    case MicroKind::kXorRI:
    case MicroKind::kShlRR:
    case MicroKind::kShlRI:
    case MicroKind::kShrRR:
    case MicroKind::kShrRI:
    case MicroKind::kSarRR:
    case MicroKind::kSarRI:
    case MicroKind::kCmpRR:
    case MicroKind::kCmpRI:
    case MicroKind::kTestRR:
    case MicroKind::kTestRI:
      return F::kInt;
    case MicroKind::kLoad:
    case MicroKind::kStore:
    case MicroKind::kPush:
    case MicroKind::kPop:
    case MicroKind::kMovqXR:
    case MicroKind::kMovqRX:
    case MicroKind::kMovsdXX:
    case MicroKind::kMovsdXM:
    case MicroKind::kMovsdMX:
    case MicroKind::kMovssXM:
    case MicroKind::kMovssMX:
    case MicroKind::kMovapdXX:
    case MicroKind::kMovapdXM:
    case MicroKind::kMovapdMX:
    case MicroKind::kPushX:
    case MicroKind::kPopX:
      return F::kMem;
    case MicroKind::kAddsdXX:
    case MicroKind::kAddsdXM:
    case MicroKind::kSubsdXX:
    case MicroKind::kSubsdXM:
    case MicroKind::kMulsdXX:
    case MicroKind::kMulsdXM:
    case MicroKind::kDivsdXX:
    case MicroKind::kDivsdXM:
    case MicroKind::kMinsdXX:
    case MicroKind::kMinsdXM:
    case MicroKind::kMaxsdXX:
    case MicroKind::kMaxsdXM:
    case MicroKind::kSqrtsdXX:
    case MicroKind::kSqrtsdXM:
    case MicroKind::kUcomisdXX:
    case MicroKind::kUcomisdXM:
      return F::kF64;
    case MicroKind::kAddssXX:
    case MicroKind::kAddssXM:
    case MicroKind::kSubssXX:
    case MicroKind::kSubssXM:
    case MicroKind::kMulssXX:
    case MicroKind::kMulssXM:
    case MicroKind::kDivssXX:
    case MicroKind::kDivssXM:
    case MicroKind::kMinssXX:
    case MicroKind::kMinssXM:
    case MicroKind::kMaxssXX:
    case MicroKind::kMaxssXM:
    case MicroKind::kSqrtssXX:
    case MicroKind::kSqrtssXM:
    case MicroKind::kUcomissXX:
    case MicroKind::kUcomissXM:
      return F::kF32;
    case MicroKind::kCvtsd2ssXX:
    case MicroKind::kCvtsd2ssXM:
    case MicroKind::kCvtss2sdXX:
    case MicroKind::kCvtss2sdXM:
    case MicroKind::kCvtsi2sd:
    case MicroKind::kCvttsd2si:
    case MicroKind::kCvtsi2ss:
    case MicroKind::kCvttss2si:
      return F::kConvert;
    default:
      return F::kOther;  // nop/halt/fallback
  }
}

// Host registers available for block-local promotion. All caller-saved is
// fine: allocated regions contain no calls (helpers only run at block
// terminators, after the spill).
constexpr std::uint8_t kGprHosts[] = {R9, R10, R11};
constexpr unsigned kMaxGprPromotions = 3;
constexpr std::uint8_t kFirstXmmHost = 4;  // xmm4..xmm15
constexpr unsigned kMaxXmmPromotions = 12;

bool regalloc_enabled() {
  // Escape hatch (and the CI fallback-path leg): FPMIX_JIT_NO_REGALLOC=1
  // compiles every block against the pinned arrays only.
  const char* env = std::getenv("FPMIX_JIT_NO_REGALLOC");
  return !(env && env[0] && env[0] != '0');
}

bool sse41_available() {
  // FPMIX_JIT_NO_SSE41=1 forces the call tier for floor/ceil (differential
  // coverage of the pre-SSE4.1 path on modern hosts).
  static const bool have = [] {
    const char* env = std::getenv("FPMIX_JIT_NO_SSE41");
    if (env && env[0] && env[0] != '0') return false;
    return __builtin_cpu_supports("sse4.1") != 0;
  }();
  return have;
}

/// Intrinsics lowered to pure arithmetic -- no call, no caller-saved
/// clobbers, so promoted registers stay live across them: fabs is a
/// sign-bit clear, floor/ceil a single roundsd/roundss on SSE4.1 hosts.
bool intrinsic_is_arith(std::uint16_t id) {
  using arch::intrinsics::Id;
  switch (static_cast<Id>(id)) {
    case Id::kFabs:
    case Id::kFabsF32:
      return true;
    case Id::kFloor:
    case Id::kCeil:
    case Id::kFloorF32:
    case Id::kCeilF32:
      return sse41_available();
    default:
      return false;
  }
}

std::mutex g_totals_mu;
LoweringStats g_totals;

class Compiler {
 public:
  Compiler(const std::vector<MicroOp>& uops, CompileMode mode)
      : uops_(uops), mode_(mode), regalloc_on_(regalloc_enabled()) {}

  std::shared_ptr<const SegmentBlob> run() {
    analyse();
    auto blob = std::make_shared<SegmentBlob>();
    const std::size_t n = uops_.size();
    instr_off_.assign(n, 0);
    std::size_t pc = 0;
    while (pc < n) {
      pc_ = pc;
      if (spill_id_[pc] >= 0) {
        // Terminator of the preceding allocated block: write the promoted
        // registers back first, so the terminator's instr_off entry (an
        // external resume target) sees current arrays.
        set_alloc(-1);
        emit_spills(allocs_[static_cast<std::size_t>(spill_id_[pc])]);
      }
      const std::int32_t aid = alloc_id_[pc];
      if (head_id_[pc] >= 0) {
        instr_off_[pc] = static_cast<std::uint32_t>(e_.size());
        const Alloc& a = allocs_[static_cast<std::size_t>(head_id_[pc])];
        near_guard(pc, a.cover_end - static_cast<std::uint32_t>(pc));
        emit_loads(a);
      } else if (aid >= 0) {
        // Mid-block pc inside an allocated region: its external entry is an
        // out-of-line thunk (loads + jmp here), emitted after the bodies.
        thunks_.push_back({static_cast<std::uint32_t>(pc),
                           static_cast<std::uint32_t>(e_.size()), aid});
      } else {
        instr_off_[pc] = static_cast<std::uint32_t>(e_.size());
      }
      set_alloc(aid);
      if (fuse_at_[pc]) {
        emit_fused(pc);
        pc += 2;
      } else {
        tally(uops_[pc]);
        prologue(pc);
        emit(uops_[pc]);
        ++pc;
      }
    }
    set_alloc(-1);
    if (spill_id_[n] >= 0)
      emit_spills(allocs_[static_cast<std::size_t>(spill_id_[n])]);
    // Falling off the last instruction continues at the next one in program
    // order: the following segment's entry, or the image's off-end stub.
    jmp_target(static_cast<std::uint64_t>(n));
    emit_tails();
    emit_thunks();
    emit_stubs();
    blob->code = std::move(e_.code);
    blob->relocs = std::move(relocs_);
    blob->instr_off = std::move(instr_off_);
    blob->stats = stats_;
    return blob;
  }

 private:
  Emitter e_;
  std::vector<Reloc> relocs_;
  std::vector<std::uint32_t> instr_off_;
  const std::vector<MicroOp>& uops_;
  CompileMode mode_;
  const bool regalloc_on_;
  std::size_t pc_ = 0;
  LoweringStats stats_;

  Emitter::Label exit_tail_;  // jmp epilogue (helper already set the status)
  Emitter::Label halt_tail_;  // status = kExitHalt, then epilogue

  // --- analysis: flags liveness, fusion, block allocation ------------------

  /// Promotion map for one basic block. Host register 0 means "not
  /// promoted" (rax / xmm0 are never promotion hosts, so 0 is free). Every
  /// straight-line run of length >= 2 gets an entry -- possibly with no
  /// promoted slots (poisoned runs) -- because the entry also carries the
  /// block's budget coverage: one guard at each entry point proves the
  /// whole run fits in the remaining budget, and the covered body then
  /// retires without per-instruction budget checks.
  struct Alloc {
    std::uint8_t gpr_host[arch::kNumGprs + 1] = {};
    std::uint8_t xmm_host[arch::kNumXmms] = {};
    std::vector<std::pair<std::uint8_t, std::uint8_t>> gprs;  // (host, slot)
    std::vector<std::pair<std::uint8_t, std::uint8_t>> xmms;  // (host, slot)
    std::uint32_t cover_end = 0;  // one past the last budget-covered uop
  };
  std::vector<Alloc> allocs_;
  std::vector<std::uint8_t> live_;     // guest flags live before uop i
  std::vector<std::uint8_t> fuse_at_;  // cmp/test at i fuses with jcc at i+1
  std::vector<std::int32_t> alloc_id_; // block map covering uop i, or -1
  std::vector<std::int32_t> head_id_;  // block whose loads sit inline at i
  std::vector<std::int32_t> spill_id_; // block spilled just before i
  const Alloc* alloc_ = nullptr;       // current emission map
  std::int32_t cur_alloc_ = -1;

  void set_alloc(std::int32_t id) {
    cur_alloc_ = id;
    alloc_ = id >= 0 ? &allocs_[static_cast<std::size_t>(id)] : nullptr;
  }

  std::uint8_t live_at(std::uint64_t t) const {
    return t >= uops_.size() ? 1 : live_[t];
  }

  /// Are the guest flag bytes observable before uop i runs? Branches read
  /// them; everything that leaves compiled code (halt/call/ret/intrinsic/
  /// fallback) counts as a reader because helpers and final machine state
  /// carry the bytes. cmp/test/ucomis overwrite them.
  std::uint8_t flags_live(std::size_t i) const {
    const MicroOp& u = uops_[i];
    const MicroKind k = kind_of(u);
    if (writes_flags(k)) return 0;
    if (k == MicroKind::kJmp) return live_at(static_cast<std::uint64_t>(u.imm));
    if (is_block_breaker(k)) return 1;
    return live_[i + 1];
  }

  void analyse() {
    const std::size_t n = uops_.size();
    // Backward liveness to the greatest fixpoint, starting from all-live
    // (sound for back-edges; streams are small so iteration is cheap).
    live_.assign(n + 1, 1);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = n; i-- > 0;) {
        const std::uint8_t v = flags_live(i);
        if (v != live_[i]) {
          live_[i] = v;
          changed = true;
        }
      }
    }
    // Fusable pairs: flag materialisation elided only when no successor can
    // observe the bytes. live_at(n) is 1, so a pair never fuses against the
    // stream end or an off-end target. Fusion depends on block coverage for
    // its budget soundness (a stop between the halves only happens through
    // the entry guard, whose interpreter tail materialises the bytes), so
    // the no-regalloc escape hatch disables it along with promotion.
    fuse_at_.assign(n, 0);
    alloc_id_.assign(n, -1);
    head_id_.assign(n, -1);
    spill_id_.assign(n + 1, -1);
    if (!regalloc_on_) return;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (!is_cmp_or_test(kind_of(uops_[i]))) continue;
      if (!is_jcc(kind_of(uops_[i + 1]))) continue;
      const std::uint64_t tgt = static_cast<std::uint64_t>(uops_[i + 1].imm);
      if (live_at(tgt) || live_at(i + 2)) continue;
      fuse_at_[i] = 1;
    }
    // Basic blocks: maximal runs of non-breaker uops (a fused pair ends its
    // block and its compare half joins the allocated region).
    std::size_t start = 0;
    while (start < n) {
      if (!fuse_at_[start] && is_block_breaker(kind_of(uops_[start]))) {
        ++start;
        continue;
      }
      std::size_t end = start;
      bool fused = false;
      bool poisoned = false;
      while (end < n) {
        if (fuse_at_[end]) {
          fused = true;
          break;
        }
        const MicroKind k = kind_of(uops_[end]);
        if (is_block_breaker(k)) break;
        if (is_alloc_poison(k)) poisoned = true;
        ++end;
      }
      const std::size_t aware_end = fused ? end + 1 : end;
      const std::size_t cover_end = fused ? end + 2 : end;
      if (cover_end - start >= 2)
        make_alloc_block(start, aware_end, cover_end, fused, end, poisoned);
      start = fused ? end + 2 : (end < n ? end + 1 : n);
    }
  }

  /// Creates the block entry: promotion map (unless poisoned) plus budget
  /// coverage over [start, cover_end). A fused pair's coverage includes
  /// both halves; a plain terminator stays uncovered (full prologue).
  void make_alloc_block(std::size_t start, std::size_t aware_end,
                        std::size_t cover_end, bool fused, std::size_t term,
                        bool poisoned) {
    Alloc a;
    a.cover_end = static_cast<std::uint32_t>(cover_end);
    if (!poisoned) {
      std::uint32_t guse[arch::kNumGprs + 1] = {};
      std::uint32_t xuse[arch::kNumXmms] = {};
      std::uint32_t n_intrin = 0;
      for (std::size_t j = start; j < aware_end; ++j) {
        count_uses(uops_[j], guse, xuse);
        // Arithmetic-tier intrinsics clobber nothing; only call tiers force
        // a spill/reload of every promoted register.
        if (kind_of(uops_[j]) == MicroKind::kIntrin &&
            !intrinsic_is_arith(static_cast<std::uint16_t>(uops_[j].imm)))
          ++n_intrin;
      }
      // A promoted slot costs two movs at the block edges plus two around
      // every intrinsic call in the run (full spill/reload), and saves
      // about one array access per use: promote only slots whose use count
      // clears that bar.
      const std::uint32_t min_uses = 2 + 2 * n_intrin;
      pick_slots(guse, arch::kNumGprs, kMaxGprPromotions, min_uses,
                 /*gpr=*/true, a);
      pick_slots(xuse, arch::kNumXmms, kMaxXmmPromotions, min_uses,
                 /*gpr=*/false, a);
    }
    const std::int32_t id = static_cast<std::int32_t>(allocs_.size());
    if (!a.gprs.empty() || !a.xmms.empty()) {
      stats_.reg_alloc_blocks += 1;
      stats_.reg_alloc_slots += a.gprs.size() + a.xmms.size();
    }
    allocs_.push_back(std::move(a));
    for (std::size_t j = start; j < aware_end; ++j)
      alloc_id_[j] = id;
    head_id_[start] = id;
    // A fused terminator spills inline between its compare and branch; a
    // plain terminator (or the stream end) spills just before itself.
    if (!fused) spill_id_[term] = id;
  }

  /// Slots referenced at least `min_uses` times win a host register,
  /// hottest first (stable sort keeps codegen deterministic).
  void pick_slots(const std::uint32_t* use, unsigned nslots, unsigned max_take,
                  std::uint32_t min_uses, bool gpr, Alloc& a) {
    struct Cand {
      std::uint32_t n;
      unsigned slot;
    };
    std::vector<Cand> cands;
    for (unsigned s = 0; s < nslots; ++s)
      if (use[s] >= min_uses) cands.push_back({use[s], s});
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand& l, const Cand& r) { return l.n > r.n; });
    if (cands.size() > max_take) cands.resize(max_take);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const std::uint8_t slot = static_cast<std::uint8_t>(cands[i].slot);
      if (gpr) {
        a.gpr_host[slot] = kGprHosts[i];
        a.gprs.push_back({kGprHosts[i], slot});
      } else {
        const std::uint8_t host = static_cast<std::uint8_t>(kFirstXmmHost + i);
        a.xmm_host[slot] = host;
        a.xmms.push_back({host, slot});
      }
    }
  }

  /// Guest slot references per uop, weighing read-modify-write destinations
  /// double. sp and the zero slot never count (push/pop/call templates hold
  /// sp in the array; the zero slot is architectural zero).
  void count_uses(const MicroOp& u, std::uint32_t* g, std::uint32_t* x) const {
    auto cg = [&](unsigned slot) {
      if (slot < arch::kNumGprs && slot != arch::kSpReg) g[slot] += 1;
    };
    auto cx = [&](unsigned slot) {
      if (slot < arch::kNumXmms) x[slot] += 1;
    };
    auto cea = [&] {
      if (u.ea_base != kZeroRegSlot) cg(u.ea_base);
      if (u.ea_index != kZeroRegSlot) cg(u.ea_index);
    };
    switch (kind_of(u)) {
      case MicroKind::kMovRR:
        cg(u.a); cg(u.b); break;
      case MicroKind::kMovRI:
      case MicroKind::kCmpRI:
      case MicroKind::kTestRI:
      case MicroKind::kPush:
      case MicroKind::kPop:
        cg(u.a); break;
      case MicroKind::kLoad:
      case MicroKind::kLea:
        cg(u.a); cea(); break;
      case MicroKind::kStore:
        cg(u.b); cea(); break;
      case MicroKind::kAddRR: case MicroKind::kSubRR: case MicroKind::kAndRR:
      case MicroKind::kOrRR: case MicroKind::kXorRR: case MicroKind::kImulRR:
      case MicroKind::kShlRR: case MicroKind::kShrRR: case MicroKind::kSarRR:
      case MicroKind::kIdivRR: case MicroKind::kIremRR:
        cg(u.a); cg(u.a); cg(u.b); break;
      case MicroKind::kAddRI: case MicroKind::kSubRI: case MicroKind::kAndRI:
      case MicroKind::kOrRI: case MicroKind::kXorRI: case MicroKind::kImulRI:
      case MicroKind::kShlRI: case MicroKind::kShrRI: case MicroKind::kSarRI:
      case MicroKind::kIdivRI: case MicroKind::kIremRI:
        cg(u.a); cg(u.a); break;
      case MicroKind::kCmpRR:
      case MicroKind::kTestRR:
        cg(u.a); cg(u.b); break;
      case MicroKind::kMovqXR:
        cx(u.a); cg(u.b); break;
      case MicroKind::kMovqRX:
        cg(u.a); cx(u.b); break;
      case MicroKind::kMovsdXX:
      case MicroKind::kSqrtsdXX: case MicroKind::kSqrtssXX:
      case MicroKind::kUcomisdXX: case MicroKind::kUcomissXX:
      case MicroKind::kCvtsd2ssXX: case MicroKind::kCvtss2sdXX:
        cx(u.a); cx(u.b); break;
      case MicroKind::kMovsdXM: case MicroKind::kMovssXM:
      case MicroKind::kSqrtsdXM: case MicroKind::kSqrtssXM:
      case MicroKind::kUcomisdXM: case MicroKind::kUcomissXM:
      case MicroKind::kCvtsd2ssXM: case MicroKind::kCvtss2sdXM:
        cx(u.a); cea(); break;
      case MicroKind::kMovsdMX: case MicroKind::kMovssMX:
        cx(u.b); cea(); break;
      case MicroKind::kAddsdXX: case MicroKind::kSubsdXX:
      case MicroKind::kMulsdXX: case MicroKind::kDivsdXX:
      case MicroKind::kMinsdXX: case MicroKind::kMaxsdXX:
      case MicroKind::kAddssXX: case MicroKind::kSubssXX:
      case MicroKind::kMulssXX: case MicroKind::kDivssXX:
      case MicroKind::kMinssXX: case MicroKind::kMaxssXX:
        cx(u.a); cx(u.a); cx(u.b); break;
      case MicroKind::kAddsdXM: case MicroKind::kSubsdXM:
      case MicroKind::kMulsdXM: case MicroKind::kDivsdXM:
      case MicroKind::kMinsdXM: case MicroKind::kMaxsdXM:
      case MicroKind::kAddssXM: case MicroKind::kSubssXM:
      case MicroKind::kMulssXM: case MicroKind::kDivssXM:
      case MicroKind::kMinssXM: case MicroKind::kMaxssXM:
        cx(u.a); cx(u.a); cea(); break;
      case MicroKind::kCvtsi2sd: case MicroKind::kCvtsi2ss:
        cx(u.a); cg(u.b); break;
      case MicroKind::kCvttsd2si: case MicroKind::kCvttss2si:
        cg(u.a); cx(u.b); break;
      case MicroKind::kIntrin:
        // Arithmetic tiers read-modify-write the xmm0 slot in place; call
        // tiers round-trip it through the array (spill/reload), so a host
        // register would buy nothing there.
        if (intrinsic_is_arith(static_cast<std::uint16_t>(u.imm))) {
          cx(0); cx(0);
        }
        break;
      default:
        break;  // nop; breakers and poison kinds never reach here with effect
    }
  }

  // --- stub bookkeeping ----------------------------------------------------
  // Every stub captures the allocation map live at its branch site: promoted
  // registers are spilled on entry so the helper (and the interpreter state
  // it reports) sees current arrays. Deques keep Label references stable.

  struct BudgetStub {  // uncovered code only: arrays are always current
    Emitter::Label label;
    std::uint32_t pc;
  };
  struct NearStub {  // a block-entry guard fired: fewer instructions remain
                     // in the budget than the block retires. Fires before
                     // the block's loads, so arrays are current and nothing
                     // needs spilling; the driver interprets the tail.
    Emitter::Label label;
    std::uint32_t pc;
  };
  struct MemStub {
    Emitter::Label label;
    std::uint32_t pc;
    std::uint8_t bytes;
    bool is_store;
    std::int32_t alloc;
  };
  struct TagStub {
    Emitter::Label label;
    std::uint32_t pc;
    int bits_reg;
    std::int32_t alloc;
  };
  struct OpStub {  // divide/cvtt range traps -> help_op_trap
    Emitter::Label label;
    std::uint32_t pc;
    std::uint32_t msg;
    std::int32_t alloc;
  };
  struct Thunk {  // external entry into an allocated block's interior
    std::uint32_t pc;
    std::uint32_t body;
    std::int32_t alloc;
  };
  std::deque<BudgetStub> budget_stubs_;
  std::deque<NearStub> near_stubs_;
  std::deque<MemStub> mem_stubs_;
  std::deque<TagStub> tag_stubs_;
  std::deque<OpStub> op_stubs_;
  std::vector<Thunk> thunks_;

  std::uint32_t pc32() const { return static_cast<std::uint32_t>(pc_); }

  // --- reloc-carrying emission helpers -------------------------------------

  void mov_ri32_reloc(int reg, Reloc::Kind kind, std::uint64_t value) {
    e_.rex(false, 0, 0, reg);
    e_.u8(static_cast<std::uint8_t>(0xB8 | (reg & 7)));
    relocs_.push_back({kind, static_cast<std::uint32_t>(e_.size()), value});
    e_.u32(0);
  }
  void jmp_target(std::uint64_t target) {
    const std::size_t at = e_.jmp_reloc();
    relocs_.push_back(
        {Reloc::Kind::kRel32Target, static_cast<std::uint32_t>(at), target});
  }
  void jcc_target(int cc, std::uint64_t target) {
    const std::size_t at = e_.jcc_reloc(cc);
    relocs_.push_back(
        {Reloc::Kind::kRel32Target, static_cast<std::uint32_t>(at), target});
  }

  // --- promoted-register access --------------------------------------------
  // Host register 0 (rax/xmm0) means "in the array". Only an allocated
  // block's aware region emits through a non-null map; terminators, resume
  // paths and stubs always run with the map cleared.

  int gpr_host(unsigned slot) const {
    return alloc_ ? alloc_->gpr_host[slot] : 0;
  }
  int xmm_host(unsigned slot) const {
    return alloc_ ? alloc_->xmm_host[slot] : 0;
  }
  /// Reads guest gpr `slot` into some register: the promotion host if there
  /// is one, else `scratch`. Returns the register holding the value.
  int gpr_read(unsigned slot, int scratch) {
    const int h = gpr_host(slot);
    if (h) return h;
    e_.mov_rm(scratch, R12, gpr_off(slot));
    return scratch;
  }
  void gpr_load(int dst, unsigned slot) {
    const int h = gpr_host(slot);
    if (h) {
      e_.mov_rr(dst, h);
    } else {
      e_.mov_rm(dst, R12, gpr_off(slot));
    }
  }
  void gpr_store(unsigned slot, int src) {
    const int h = gpr_host(slot);
    if (h) {
      e_.mov_rr(h, src);
    } else {
      e_.mov_mr(R12, gpr_off(slot), src);
    }
  }
  /// Low-qword bits of guest xmm `slot` into gpr `dst`.
  void xmm_bits_to(int dst, unsigned slot) {
    const int h = xmm_host(slot);
    if (h) {
      e_.movq_rx(dst, h);
    } else {
      e_.mov_rm(dst, RBX, xmm_lo(slot));
    }
  }
  /// Writes gpr `src` into the low qword of guest xmm `slot` (hi lane
  /// untouched -- it always lives in the array).
  void xmm_bits_from(unsigned slot, int src) {
    const int h = xmm_host(slot);
    if (h) {
      e_.movq_xr(h, src);
    } else {
      e_.mov_mr(RBX, xmm_lo(slot), src);
    }
  }
  /// Stores the low qword of scratch xmm `xsrc` into guest xmm `slot`.
  void xmm_store_lo(unsigned slot, int xsrc) {
    const int h = xmm_host(slot);
    if (h) {
      e_.movq_xx(h, xsrc);
    } else {
      e_.movq_mx(RBX, xmm_lo(slot), xsrc);
    }
  }
  /// Low 32 bits of guest xmm `slot` into scratch xmm `xdst` (bits past 31
  /// may be junk; every consumer reads the low dword only).
  void xmm_load_ss(int xdst, unsigned slot) {
    const int h = xmm_host(slot);
    if (h) {
      e_.movq_xx(xdst, h);
    } else {
      e_.movss_xm(xdst, RBX, xmm_lo(slot));
    }
  }
  /// with_low32 writeback: low 32 bits of `xsrc` into guest xmm `slot`,
  /// bits 32..63 of the slot preserved.
  void xmm_store_ss(unsigned slot, int xsrc) {
    const int h = xmm_host(slot);
    if (h) {
      e_.movss_rr(h, xsrc);
    } else {
      e_.movss_mx(RBX, xmm_lo(slot), xsrc);
    }
  }

  void emit_loads(const Alloc& a) {
    for (const auto& [host, slot] : a.gprs)
      e_.mov_rm(host, R12, gpr_off(slot));
    for (const auto& [host, slot] : a.xmms)
      e_.movq_xm(host, RBX, xmm_lo(slot));
  }
  /// Plain movs: preserves host flags (the fused path spills between its
  /// compare and branch) and every scratch gpr/xmm0-2 (mem/tag stubs spill
  /// before reading their incoming rax/rdx/rcx).
  void emit_spills(const Alloc& a) {
    for (const auto& [host, slot] : a.gprs)
      e_.mov_mr(R12, gpr_off(slot), host);
    for (const auto& [host, slot] : a.xmms)
      e_.movq_mx(RBX, xmm_lo(slot), host);
  }
  void stub_spill(std::int32_t alloc) {
    if (alloc >= 0) emit_spills(allocs_[static_cast<std::size_t>(alloc)]);
  }

  // --- the per-instruction dispatch prologue -------------------------------
  // Same order as FPMIX_DISPATCH: budget check, profile count, retire.
  // Inside a covered block (cur_alloc_ >= 0) the entry guard already proved
  // the whole run fits in the remaining budget, so the per-instruction
  // check drops out and the prologue is just the count and the retire.

  void prologue(std::uint64_t pc) {
    if (cur_alloc_ < 0) {
      e_.alu_rr(Alu::kCmp, R14, RBP);  // cmp retired, max_instructions
      budget_stubs_.push_back({{}, static_cast<std::uint32_t>(pc)});
      e_.jcc(CC_AE, budget_stubs_.back().label);
    }
    if (mode_.profile) {
      e_.mov_rm(RAX, R15, kCtxCounts);
      const std::size_t at = e_.inc_m_disp32(RAX);
      relocs_.push_back(
          {Reloc::Kind::kDisp32Counts, static_cast<std::uint32_t>(at), pc});
    }
    e_.inc_r(R14);
  }

  /// Block-entry budget guard: would retiring `n` more instructions cross
  /// max_instructions? If so, nothing of the block has run yet and the
  /// arrays are current, so exit kExitBudgetNear and let the driver
  /// interpret up to the exact boundary (the interpreter is the semantic
  /// oracle, so the stop is bit-identical: exact retired count, flags and
  /// trap behaviour -- including a stop between a fused compare/branch).
  void near_guard(std::uint64_t pc, std::uint32_t n) {
    e_.lea_bd(RCX, R14, static_cast<std::int32_t>(n));
    e_.alu_rr(Alu::kCmp, RCX, RBP);
    near_stubs_.push_back({{}, static_cast<std::uint32_t>(pc)});
    e_.jcc(CC_A, near_stubs_.back().label);
  }

  // --- effective address / memory / tag checks -----------------------------

  /// Effective address into RAX (clobbers RCX), reading promoted base/index
  /// registers from their hosts when available.
  void emit_ea(const MicroOp& u) {
    const bool has_base = u.ea_base != kZeroRegSlot;
    const bool has_index = u.ea_index != kZeroRegSlot;
    if (!has_base && !has_index) {
      e_.mov_ri32s(RAX, u.ea_disp);
      return;
    }
    if (has_base && !has_index) {
      const int hb = gpr_host(u.ea_base);
      if (hb) {
        if (u.ea_disp != 0) {
          e_.lea_bd(RAX, hb, u.ea_disp);
        } else {
          e_.mov_rr(RAX, hb);
        }
      } else {
        e_.mov_rm(RAX, R12, gpr_off(u.ea_base));
        if (u.ea_disp != 0) e_.lea_bd(RAX, RAX, u.ea_disp);
      }
      return;
    }
    if (!has_base) {
      gpr_load(RCX, u.ea_index);
      if (u.ea_shift != 0) e_.shl_ri8(RCX, u.ea_shift);
      e_.lea_bd(RAX, RCX, u.ea_disp);
      return;
    }
    if (u.ea_shift <= 3) {
      const int hi = gpr_host(u.ea_index);
      const int ireg = hi ? hi : RCX;
      if (!hi) e_.mov_rm(RCX, R12, gpr_off(u.ea_index));
      const int hb = gpr_host(u.ea_base);
      const int breg = hb ? hb : RAX;
      if (!hb) e_.mov_rm(RAX, R12, gpr_off(u.ea_base));
      e_.lea_bisd(RAX, breg, ireg, u.ea_shift, u.ea_disp);
    } else {
      gpr_load(RCX, u.ea_index);
      e_.shl_ri8(RCX, u.ea_shift);
      const int hb = gpr_host(u.ea_base);
      const int breg = hb ? hb : RAX;
      if (!hb) e_.mov_rm(RAX, R12, gpr_off(u.ea_base));
      e_.lea_bisd(RAX, breg, RCX, 0, u.ea_disp);
    }
  }

  /// Bounds check for `bytes` at the address in RAX, same predicate as
  /// Machine::load/store (addr+bytes > mem_size || wrapped) folded into one
  /// unsigned compare against the precomputed ctx->mem_limitN (see
  /// JitContext): comparing the address itself makes wrap impossible, and a
  /// wrapped addr+bytes always lands above the limit anyway. Only 8- and
  /// 4-byte accesses are specialised (everything else takes generic-exec).
  /// Clobbers nothing; RAX still holds the address for the stub.
  void bounds(unsigned bytes, bool is_store) {
    mem_stubs_.push_back(
        {{}, pc32(), static_cast<std::uint8_t>(bytes), is_store, cur_alloc_});
    e_.alu_rm(Alu::kCmp, RAX, R15,
              bytes == 8 ? kCtxMemLimit8 : kCtxMemLimit4);
    e_.jcc(CC_AE, mem_stubs_.back().label);
  }

  /// Replaced-double sentinel check on the f64 bits in `bits_reg` (not RSI;
  /// clobbers RSI). ctx->tag_cmp is unmatchable when the trap is off, so the
  /// same code serves both modes.
  void tag_check(int bits_reg) {
    tag_stubs_.push_back({{}, pc32(), bits_reg, cur_alloc_});
    e_.mov_rr(RSI, bits_reg);
    e_.shr_ri8(RSI, 32);
    e_.alu_rm(Alu::kCmp, RSI, R15, kCtxTagCmp);
    e_.jcc(CC_E, tag_stubs_.back().label);
  }

  /// Integer-compare flag materialisation from the live host flags.
  void store_cmp_flags() {
    e_.setcc_m(CC_E, R15, kCtxFlagEq);
    e_.setcc_m(CC_L, R15, kCtxFlagLt);
    e_.setcc_m(CC_B, R15, kCtxFlagLtu);
  }

  /// ucomis flag materialisation: eq = ordered-equal, lt = ltu = ordered
  /// less-than; every flag false on NaN. All three setcc must precede the
  /// ANDs (which clobber the host flags).
  void store_fcmp_flags() {
    e_.setcc_r(CC_NP, RCX);  // ordered
    e_.setcc_r(CC_E, RAX);
    e_.setcc_r(CC_B, RDX);
    e_.and_rr8(RAX, RCX);
    e_.mov_mr8(R15, kCtxFlagEq, RAX);
    e_.and_rr8(RDX, RCX);
    e_.mov_mr8(R15, kCtxFlagLt, RDX);
    e_.mov_mr8(R15, kCtxFlagLtu, RDX);
  }

  void store_test_flags() {
    e_.setcc_m(CC_E, R15, kCtxFlagEq);
    e_.setcc_m(CC_S, R15, kCtxFlagLt);
    e_.mov_mi8(R15, kCtxFlagLtu, 0);
  }

  /// Delegate this one instruction to the micro-op interpreter's handler.
  /// Only emitted at terminators (never inside an aware region): the guest
  /// arrays are current when the helper runs.
  void generic_exec() {
    e_.mov_mr(R15, kCtxRetired, R14);
    mov_ri32_reloc(RSI, Reloc::Kind::kImm32Pc, pc_);
    e_.mov_rr(RDI, R15);
    e_.call_m(R15, kCtxHelpExec);
    e_.test_rr(RAX, RAX);
    e_.jcc(CC_E, exit_tail_);
    e_.jmp_r(RAX);
  }

  /// Loads u.imm into `reg` (imm32 sign-extended when it fits).
  void load_imm(int reg, std::int64_t imm) {
    if (fits_i32(imm)) {
      e_.mov_ri32s(reg, static_cast<std::int32_t>(imm));
    } else {
      e_.mov_ri64(reg, static_cast<std::uint64_t>(imm));
    }
  }

  /// Conditional guest branch on one flag byte: taken when the byte is
  /// nonzero (want_set) or zero.
  void jcc_flag(std::int32_t flag_off, bool want_set, std::uint64_t target) {
    e_.cmp_mi8_b(R15, flag_off, 0);
    jcc_target(want_set ? CC_NE : CC_E, target);
  }
  /// Guest branch on (lt|eq) or (ltu|eq) composites.
  void jcc_or(std::int32_t flag_off, bool want_set, std::uint64_t target) {
    e_.mov_rm8(RAX, R15, flag_off);
    e_.mov_rm8(RCX, R15, kCtxFlagEq);
    e_.or_rr8(RAX, RCX);
    jcc_target(want_set ? CC_NE : CC_E, target);
  }

  /// Conditional trap through help_op_trap (integer divide / cvtt range).
  void op_trap_jcc(int cc, std::uint32_t msg) {
    op_stubs_.push_back({{}, pc32(), msg, cur_alloc_});
    e_.jcc(cc, op_stubs_.back().label);
  }
  void op_trap_jmp(std::uint32_t msg) {
    op_stubs_.push_back({{}, pc32(), msg, cur_alloc_});
    e_.jmp(op_stubs_.back().label);
  }

  // --- per-kind templates --------------------------------------------------
  // Templates fall into two groups: allocation-aware ones route guest
  // register accesses through gpr_*/xmm_* (which fall back to the arrays
  // when the slot is not promoted), and terminator/poison templates, which
  // only ever run with a null map and keep their array-based form.

  void emit(const MicroOp& u) {
    const std::uint64_t tgt = static_cast<std::uint64_t>(u.imm);
    switch (static_cast<MicroKind>(u.kind)) {
      case MicroKind::kNop:
        break;
      case MicroKind::kHalt:
        e_.jmp(halt_tail_);
        break;

      // -- control flow (terminators; arrays are current here) --
      case MicroKind::kJmp: jmp_target(tgt); break;
      case MicroKind::kJe: jcc_flag(kCtxFlagEq, true, tgt); break;
      case MicroKind::kJne: jcc_flag(kCtxFlagEq, false, tgt); break;
      case MicroKind::kJl: jcc_flag(kCtxFlagLt, true, tgt); break;
      case MicroKind::kJge: jcc_flag(kCtxFlagLt, false, tgt); break;
      case MicroKind::kJb: jcc_flag(kCtxFlagLtu, true, tgt); break;
      case MicroKind::kJae: jcc_flag(kCtxFlagLtu, false, tgt); break;
      case MicroKind::kJle: jcc_or(kCtxFlagLt, true, tgt); break;
      case MicroKind::kJg: jcc_or(kCtxFlagLt, false, tgt); break;
      case MicroKind::kJbe: jcc_or(kCtxFlagLtu, true, tgt); break;
      case MicroKind::kJa: jcc_or(kCtxFlagLtu, false, tgt); break;

      case MicroKind::kCall:
        // push64(aux): sp -= 8 commits before the store, as in the
        // interpreter (a trapping call leaves sp decremented).
        e_.mov_rm(RAX, R12, kSpOff);
        e_.alu_ri8(Alu::kSub, RAX, 8);
        e_.mov_mr(R12, kSpOff, RAX);
        bounds(8, /*is_store=*/true);
        if (mode_.local) {
          // Return address: local byte offset, rebased at link time.
          e_.rex(true, 0, 0, RDX);
          e_.u8(static_cast<std::uint8_t>(0xB8 | RDX));
          relocs_.push_back({Reloc::Kind::kAbs64RetAddr,
                             static_cast<std::uint32_t>(e_.size()), u.aux});
          e_.u64(0);
        } else {
          e_.mov_ri64(RDX, u.aux);
        }
        e_.mov_mxr(R13, RAX, 0, RDX);
        if (mode_.local) {
          // imm = callee function index; resolved via the link placement.
          const std::size_t at = e_.jmp_reloc();
          relocs_.push_back({Reloc::Kind::kRel32Call,
                             static_cast<std::uint32_t>(at), tgt});
        } else {
          jmp_target(tgt);  // imm = callee's global instruction index
        }
        break;

      case MicroKind::kRet:
        // pop64(): load first (sp unchanged if it traps), then sp += 8.
        e_.mov_rm(RAX, R12, kSpOff);
        bounds(8, /*is_store=*/false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.alu_mi(Alu::kAdd, R12, kSpOff, 8);
        e_.test_rr(RDX, RDX);
        e_.jcc(CC_E, halt_tail_);  // the null frame pushed by run()
        e_.mov_mr(R15, kCtxRetired, R14);
        e_.mov_rr(RDI, R15);
        e_.mov_rr(RSI, RDX);
        mov_ri32_reloc(RDX, Reloc::Kind::kImm32Pc, pc_);
        e_.call_m(R15, kCtxHelpRet);
        e_.test_rr(RAX, RAX);
        e_.jcc(CC_E, exit_tail_);
        e_.jmp_r(RAX);
        break;

      // -- integer file --
      case MicroKind::kMovRR: {
        const int ha = gpr_host(u.a), hb = gpr_host(u.b);
        if (ha && hb) {
          e_.mov_rr(ha, hb);
        } else if (ha) {
          e_.mov_rm(ha, R12, gpr_off(u.b));
        } else if (hb) {
          e_.mov_mr(R12, gpr_off(u.a), hb);
        } else {
          e_.mov_rm(RAX, R12, gpr_off(u.b));
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        }
        break;
      }
      case MicroKind::kMovRI: {
        const int ha = gpr_host(u.a);
        if (ha) {
          load_imm(ha, u.imm);
        } else if (fits_i32(u.imm)) {
          e_.mov_mi32s(R12, gpr_off(u.a), static_cast<std::int32_t>(u.imm));
        } else {
          e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        }
        break;
      }
      case MicroKind::kLoad:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        gpr_store(u.a, RDX);
        break;
      case MicroKind::kStore: {
        emit_ea(u);
        bounds(8, true);
        const int vr = gpr_read(u.b, RDX);
        e_.mov_mxr(R13, RAX, 0, vr);
        break;
      }
      case MicroKind::kLea:
        emit_ea(u);
        gpr_store(u.a, RAX);
        break;

      case MicroKind::kAddRR: int_rr(Alu::kAdd, u); break;
      case MicroKind::kAddRI: int_ri(Alu::kAdd, u); break;
      case MicroKind::kSubRR: int_rr(Alu::kSub, u); break;
      case MicroKind::kSubRI: int_ri(Alu::kSub, u); break;
      case MicroKind::kAndRR: int_rr(Alu::kAnd, u); break;
      case MicroKind::kAndRI: int_ri(Alu::kAnd, u); break;
      case MicroKind::kOrRR: int_rr(Alu::kOr, u); break;
      case MicroKind::kOrRI: int_ri(Alu::kOr, u); break;
      case MicroKind::kXorRR: int_rr(Alu::kXor, u); break;
      case MicroKind::kXorRI: int_ri(Alu::kXor, u); break;

      case MicroKind::kImulRR: {
        const int ha = gpr_host(u.a), hb = gpr_host(u.b);
        if (ha) {
          if (hb) {
            e_.imul_rr(ha, hb);
          } else {
            e_.imul_rm(ha, R12, gpr_off(u.b));
          }
        } else if (hb) {
          e_.mov_rm(RAX, R12, gpr_off(u.a));
          e_.imul_rr(RAX, hb);
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        } else {
          e_.mov_rm(RAX, R12, gpr_off(u.a));
          e_.imul_rm(RAX, R12, gpr_off(u.b));
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        }
        break;
      }
      case MicroKind::kImulRI: {
        const int ha = gpr_host(u.a);
        if (ha) {
          if (fits_i32(u.imm)) {
            e_.imul_rri(ha, ha, static_cast<std::int32_t>(u.imm));
          } else {
            e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
            e_.imul_rr(ha, RAX);
          }
        } else if (fits_i32(u.imm)) {
          e_.imul_rmi(RAX, R12, gpr_off(u.a),
                      static_cast<std::int32_t>(u.imm));
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        } else {
          e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
          e_.imul_rm(RAX, R12, gpr_off(u.a));
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        }
        break;
      }

      case MicroKind::kShlRR: shift_rr(4, u); break;
      case MicroKind::kShrRR: shift_rr(5, u); break;
      case MicroKind::kSarRR: shift_rr(7, u); break;
      case MicroKind::kShlRI: shift_ri(4, u); break;
      case MicroKind::kShrRI: shift_ri(5, u); break;
      case MicroKind::kSarRI: shift_ri(7, u); break;

      // Unfused compare/test: host flags materialised to the guest bytes.
      case MicroKind::kCmpRR:
      case MicroKind::kCmpRI:
        emit_compare(u);
        store_cmp_flags();
        break;
      case MicroKind::kTestRR:
      case MicroKind::kTestRI:
        emit_compare(u);
        store_test_flags();
        break;

      case MicroKind::kPush: {
        // Value read BEFORE the sp update: push sp pushes the old sp.
        const int vr = gpr_read(u.a, RDX);
        e_.mov_rm(RAX, R12, kSpOff);
        e_.alu_ri8(Alu::kSub, RAX, 8);
        e_.mov_mr(R12, kSpOff, RAX);
        bounds(8, true);
        e_.mov_mxr(R13, RAX, 0, vr);
        break;
      }
      case MicroKind::kPop:
        // Destination written AFTER sp += 8: pop sp yields the popped value.
        e_.mov_rm(RAX, R12, kSpOff);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.alu_mi(Alu::kAdd, R12, kSpOff, 8);
        gpr_store(u.a, RDX);
        break;

      // -- xmm data movement --
      case MicroKind::kMovqXR: {
        const int vr = gpr_read(u.b, RAX);
        xmm_bits_from(u.a, vr);  // upper lane preserved
        break;
      }
      case MicroKind::kMovqRX: {
        const int ha = gpr_host(u.a);
        if (ha) {
          xmm_bits_to(ha, u.b);
        } else {
          xmm_bits_to(RAX, u.b);
          e_.mov_mr(R12, gpr_off(u.a), RAX);
        }
        break;
      }
      case MicroKind::kMovsdXX: {
        const int xa = xmm_host(u.a), xb = xmm_host(u.b);
        if (xa && xb) {
          e_.movq_xx(xa, xb);
        } else if (xa) {
          e_.movq_xm(xa, RBX, xmm_lo(u.b));
        } else if (xb) {
          e_.movq_mx(RBX, xmm_lo(u.a), xb);
        } else {
          e_.mov_rm(RAX, RBX, xmm_lo(u.b));
          e_.mov_mr(RBX, xmm_lo(u.a), RAX);  // lo only, hi preserved
        }
        break;
      }
      case MicroKind::kMovsdXM:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        xmm_bits_from(u.a, RDX);
        e_.mov_mi32s(RBX, xmm_hi(u.a), 0);
        break;
      case MicroKind::kMovsdMX:
        emit_ea(u);
        bounds(8, true);
        xmm_bits_to(RDX, u.b);
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kMovssXM:
        emit_ea(u);
        bounds(4, false);
        e_.mov_rmx32(RDX, R13, RAX, 0);  // zero-extending 4-byte load
        xmm_bits_from(u.a, RDX);         // lo = zext32(value)
        e_.mov_mi32s(RBX, xmm_hi(u.a), 0);
        break;
      case MicroKind::kMovssMX: {
        emit_ea(u);
        bounds(4, true);
        const int xb = xmm_host(u.b);
        if (xb) {
          e_.movd_rx(RDX, xb);
        } else {
          e_.mov_rm32(RDX, RBX, xmm_lo(u.b));
        }
        e_.mov_mxr32(R13, RAX, 0, RDX);
        break;
      }
      case MicroKind::kMovapdXX:
        e_.mov_rm(RAX, RBX, xmm_lo(u.b));
        e_.mov_rm(RDX, RBX, xmm_hi(u.b));
        e_.mov_mr(RBX, xmm_lo(u.a), RAX);
        e_.mov_mr(RBX, xmm_hi(u.a), RDX);
        break;
      case MicroKind::kMovapdXM:
        // Lane 0 commits before lane 1's bounds check, like the interpreter's
        // two independent load() calls.
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_lo(u.a), RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_hi(u.a), RDX);
        break;
      case MicroKind::kMovapdMX:
        emit_ea(u);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_lo(u.b));
        e_.mov_mxr(R13, RAX, 0, RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_hi(u.b));
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kPushX:
        e_.mov_rm(RAX, R12, kSpOff);
        e_.alu_ri8(Alu::kSub, RAX, 16);
        e_.mov_mr(R12, kSpOff, RAX);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_lo(u.a));
        e_.mov_mxr(R13, RAX, 0, RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, true);
        e_.mov_rm(RDX, RBX, xmm_hi(u.a));
        e_.mov_mxr(R13, RAX, 0, RDX);
        break;
      case MicroKind::kPopX:
        e_.mov_rm(RAX, R12, kSpOff);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_lo(u.a), RDX);
        e_.alu_ri8(Alu::kAdd, RAX, 8);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        e_.mov_mr(RBX, xmm_hi(u.a), RDX);
        e_.alu_mi(Alu::kAdd, R12, kSpOff, 16);
        break;

      // -- scalar f64 --
      case MicroKind::kAddsdXX: sd_xx(kSseAdd, u); break;
      case MicroKind::kAddsdXM: sd_xm(kSseAdd, u); break;
      case MicroKind::kSubsdXX: sd_xx(kSseSub, u); break;
      case MicroKind::kSubsdXM: sd_xm(kSseSub, u); break;
      case MicroKind::kMulsdXX: sd_xx(kSseMul, u); break;
      case MicroKind::kMulsdXM: sd_xm(kSseMul, u); break;
      case MicroKind::kDivsdXX: sd_xx(kSseDiv, u); break;
      case MicroKind::kDivsdXM: sd_xm(kSseDiv, u); break;
      case MicroKind::kMinsdXX: sd_minmax_xx(/*is_min=*/true, u); break;
      case MicroKind::kMinsdXM: sd_minmax_xm(true, u); break;
      case MicroKind::kMaxsdXX: sd_minmax_xx(false, u); break;
      case MicroKind::kMaxsdXM: sd_minmax_xm(false, u); break;
      case MicroKind::kSqrtsdXX:
        xmm_bits_to(RDX, u.b);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.sse_rr(0xF2, kSseSqrt, 0, 0);
        xmm_store_lo(u.a, 0);
        break;
      case MicroKind::kSqrtsdXM:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.sse_rr(0xF2, kSseSqrt, 0, 0);
        xmm_store_lo(u.a, 0);
        break;
      case MicroKind::kUcomisdXX:
        xmm_bits_to(RDX, u.a);
        tag_check(RDX);
        xmm_bits_to(RCX, u.b);
        tag_check(RCX);
        e_.movq_xr(0, RDX);
        e_.movq_xr(1, RCX);
        e_.ucomisd(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kUcomisdXM:
        xmm_bits_to(RDX, u.a);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RCX, R13, RAX, 0);
        tag_check(RCX);
        e_.movq_xr(1, RCX);
        e_.ucomisd(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kCvtsd2ssXX:
        xmm_bits_to(RDX, u.b);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.cvtsd2ss(1, 0);
        e_.movd_rx(RAX, 1);  // zero-extends: lo = zext32(float bits)
        xmm_bits_from(u.a, RAX);
        break;
      case MicroKind::kCvtsd2ssXM:
        emit_ea(u);
        bounds(8, false);
        e_.mov_rmx(RDX, R13, RAX, 0);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.cvtsd2ss(1, 0);
        e_.movd_rx(RAX, 1);
        xmm_bits_from(u.a, RAX);
        break;
      case MicroKind::kCvtss2sdXX: {
        const int xb = xmm_host(u.b);
        if (xb) {
          e_.movd_rx(RAX, xb);
        } else {
          e_.mov_rm32(RAX, RBX, xmm_lo(u.b));
        }
        e_.movd_xr(0, RAX);
        e_.cvtss2sd(1, 0);
        xmm_store_lo(u.a, 1);
        break;
      }
      case MicroKind::kCvtss2sdXM:
        emit_ea(u);
        bounds(4, false);
        e_.mov_rmx32(RAX, R13, RAX, 0);
        e_.movd_xr(0, RAX);
        e_.cvtss2sd(1, 0);
        xmm_store_lo(u.a, 1);
        break;
      case MicroKind::kCvtsi2sd: {
        const int vr = gpr_read(u.b, RAX);
        e_.cvtsi2sd(0, vr);
        xmm_store_lo(u.a, 0);
        break;
      }

      // -- scalar f32 (no tag checks: the sentinel lives in the high word) --
      case MicroKind::kAddssXX: ss_xx(kSseAdd, u); break;
      case MicroKind::kAddssXM: ss_xm(kSseAdd, u); break;
      case MicroKind::kSubssXX: ss_xx(kSseSub, u); break;
      case MicroKind::kSubssXM: ss_xm(kSseSub, u); break;
      case MicroKind::kMulssXX: ss_xx(kSseMul, u); break;
      case MicroKind::kMulssXM: ss_xm(kSseMul, u); break;
      case MicroKind::kDivssXX: ss_xx(kSseDiv, u); break;
      case MicroKind::kDivssXM: ss_xm(kSseDiv, u); break;
      case MicroKind::kMinssXX: ss_minmax_xx(true, u); break;
      case MicroKind::kMinssXM: ss_minmax_xm(true, u); break;
      case MicroKind::kMaxssXX: ss_minmax_xx(false, u); break;
      case MicroKind::kMaxssXM: ss_minmax_xm(false, u); break;
      case MicroKind::kSqrtssXX:
        xmm_load_ss(0, u.b);
        e_.sse_rr(0xF3, kSseSqrt, 0, 0);
        xmm_store_ss(u.a, 0);
        break;
      case MicroKind::kSqrtssXM:
        emit_ea(u);
        bounds(4, false);
        e_.movss_xmx(0, R13, RAX, 0);
        e_.sse_rr(0xF3, kSseSqrt, 0, 0);
        xmm_store_ss(u.a, 0);
        break;
      case MicroKind::kUcomissXX:
        xmm_load_ss(0, u.a);
        xmm_load_ss(1, u.b);
        e_.ucomiss(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kUcomissXM:
        xmm_load_ss(0, u.a);
        emit_ea(u);
        bounds(4, false);
        e_.movss_xmx(1, R13, RAX, 0);
        e_.ucomiss(0, 1);
        store_fcmp_flags();
        break;
      case MicroKind::kCvtsi2ss: {
        const int vr = gpr_read(u.b, RAX);
        e_.cvtsi2ss(0, vr);
        xmm_store_ss(u.a, 0);
        break;
      }

      // -- integer divide / remainder (previously generic-exec) --
      case MicroKind::kIdivRR: div_rem(/*is_div=*/true, /*is_imm=*/false, u); break;
      case MicroKind::kIdivRI: div_rem(true, true, u); break;
      case MicroKind::kIremRR: div_rem(false, false, u); break;
      case MicroKind::kIremRI: div_rem(false, true, u); break;

      // -- truncating conversions (previously generic-exec). The handler
      //    accepts exactly (v > -9.2e18 && v < 9.2e18) and traps otherwise
      //    (including NaN); both constants are representable and in int64
      //    range, so the cvtt itself can never overflow once past the
      //    check. ucomisd(HI, v) gives CF|ZF exactly when HI <= v or
      //    unordered; ucomisd(v, LO) likewise for v <= LO. --
      case MicroKind::kCvttsd2si:
        xmm_bits_to(RDX, u.b);
        tag_check(RDX);
        e_.movq_xr(0, RDX);
        e_.mov_ri64(RAX, f64_bits(9.2e18));
        e_.movq_xr(1, RAX);
        e_.ucomisd(1, 0);
        op_trap_jcc(CC_BE, kOpTrapCvttSdRange);  // v >= HI, or NaN
        e_.mov_ri64(RAX, f64_bits(-9.2e18));
        e_.movq_xr(2, RAX);
        e_.ucomisd(0, 2);
        op_trap_jcc(CC_BE, kOpTrapCvttSdRange);  // v <= LO
        e_.cvttsd2si(RAX, 0);
        gpr_store(u.a, RAX);
        break;
      case MicroKind::kCvttss2si:
        xmm_load_ss(0, u.b);  // no tag: sentinel lives in the high word
        e_.mov_ri32(RAX, f32_bits(9.2e18f));
        e_.movd_xr(1, RAX);
        e_.ucomiss(1, 0);
        op_trap_jcc(CC_BE, kOpTrapCvttSsRange);
        e_.mov_ri32(RAX, f32_bits(-9.2e18f));
        e_.movd_xr(2, RAX);
        e_.ucomiss(0, 2);
        op_trap_jcc(CC_BE, kOpTrapCvttSsRange);
        e_.cvttss2si(RAX, 0);
        gpr_store(u.a, RAX);
        break;

      // -- packed f64 / f32 / 128-bit bitwise (previously generic-exec).
      //    Always array-based: packed kinds poison block allocation. Host
      //    addpd/addps/sqrt are per-lane IEEE ops, so results match the
      //    interpreter's lane-by-lane scalar evaluation bit-for-bit. --
      case MicroKind::kAddpdXX: packed_xx(0x66, kSseAdd, u, /*tags=*/true); break;
      case MicroKind::kAddpdXM: packed_xm(0x66, kSseAdd, u, true); break;
      case MicroKind::kSubpdXX: packed_xx(0x66, kSseSub, u, true); break;
      case MicroKind::kSubpdXM: packed_xm(0x66, kSseSub, u, true); break;
      case MicroKind::kMulpdXX: packed_xx(0x66, kSseMul, u, true); break;
      case MicroKind::kMulpdXM: packed_xm(0x66, kSseMul, u, true); break;
      case MicroKind::kDivpdXX: packed_xx(0x66, kSseDiv, u, true); break;
      case MicroKind::kDivpdXM: packed_xm(0x66, kSseDiv, u, true); break;
      case MicroKind::kSqrtpdXX:
        e_.mov_rm(RDX, RBX, xmm_lo(u.b));
        tag_check(RDX);
        e_.mov_rm(RDX, RBX, xmm_hi(u.b));
        tag_check(RDX);
        e_.movups_xm(0, RBX, xmm_lo(u.b));
        e_.sse_rr(0x66, kSseSqrt, 0, 0);
        e_.movups_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kSqrtpdXM:
        packed_mem_load(u, /*tags=*/true);
        e_.sse_rr(0x66, kSseSqrt, 0, 1);
        e_.movups_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kAddpsXX: packed_xx(0, kSseAdd, u, false); break;
      case MicroKind::kAddpsXM: packed_xm(0, kSseAdd, u, false); break;
      case MicroKind::kSubpsXX: packed_xx(0, kSseSub, u, false); break;
      case MicroKind::kSubpsXM: packed_xm(0, kSseSub, u, false); break;
      case MicroKind::kMulpsXX: packed_xx(0, kSseMul, u, false); break;
      case MicroKind::kMulpsXM: packed_xm(0, kSseMul, u, false); break;
      case MicroKind::kDivpsXX: packed_xx(0, kSseDiv, u, false); break;
      case MicroKind::kDivpsXM: packed_xm(0, kSseDiv, u, false); break;
      case MicroKind::kSqrtpsXX:
        e_.movups_xm(0, RBX, xmm_lo(u.b));
        e_.sse_rr(0, kSseSqrt, 0, 0);
        e_.movups_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kSqrtpsXM:
        packed_mem_load(u, /*tags=*/false);
        e_.sse_rr(0, kSseSqrt, 0, 1);
        e_.movups_mx(RBX, xmm_lo(u.a), 0);
        break;
      case MicroKind::kAndpdXX: packed_xx(0x66, kSseAnd, u, false); break;
      case MicroKind::kAndpdXM: packed_xm(0x66, kSseAnd, u, false); break;
      case MicroKind::kOrpdXX: packed_xx(0x66, kSseOr, u, false); break;
      case MicroKind::kOrpdXM: packed_xm(0x66, kSseOr, u, false); break;
      case MicroKind::kXorpdXX: packed_xx(0x66, kSseXor, u, false); break;
      case MicroKind::kXorpdXM: packed_xm(0x66, kSseXor, u, false); break;

      // -- intrinsic call: hot in math-heavy kernels. Pure f64 math
      //    intrinsics (sin/cos/.../fabs and their f32 twins) are lowered to
      //    a direct call through ctx->intrin_fn, skipping the dispatch
      //    helper entirely; everything else (and every intrinsic when the
      //    table is withheld, e.g. under helper timing) takes the helper. --
      case MicroKind::kIntrin: {
        const auto id = static_cast<std::uint16_t>(u.imm);
        if (intrinsic_is_arith(id)) {
          // Pure arithmetic: no call, runs allocation-aware, and is jitted
          // work (not helper time) regardless of ctx->intrin_fn.
          emit_arith_intrin(id);
          break;
        }
        // Call tiers run mid-block: the call clobbers every caller-saved
        // register (all promotion hosts are caller-saved), so promoted
        // state is written back first and reloaded after. The spill also
        // gives the helper -- and the trap exits -- current arrays, and the
        // reload picks up the result (and anything else the intrinsic
        // wrote).
        const std::int32_t saved_alloc = cur_alloc_;
        if (saved_alloc >= 0) {
          emit_spills(*alloc_);
          set_alloc(-1);
        }
        if (intrinsic_inlinable(id)) {
          const bool f32 =
              id >= static_cast<std::uint16_t>(arch::intrinsics::Id::kSinF32);
          Emitter::Label outline, done;
          e_.mov_rm(RAX, R15, kCtxIntrinFn);
          e_.test_rr(RAX, RAX);
          e_.jcc(CC_E, outline);
          if (!f32) {
            e_.mov_rm(RDX, RBX, xmm_lo(0));
            tag_check(RDX);
            e_.movq_xr(0, RDX);
          } else {
            // (f32) f((f64) x): widen once, call the f64 body, round once.
            e_.movss_xm(0, RBX, xmm_lo(0));
            e_.cvtss2sd(0, 0);
          }
          // rsp stays 16-aligned in jitted code, so `call` presents the
          // callee a standard ABI frame; libm preserves every pinned
          // (callee-saved) register and no scratch state is live here.
          e_.call_m(RAX, static_cast<std::int32_t>(id) * 8);
          if (!f32) {
            e_.movq_mx(RBX, xmm_lo(0), 0);
          } else {
            e_.cvtsd2ss(1, 0);
            e_.movss_mx(RBX, xmm_lo(0), 1);
          }
          e_.jmp(done);
          e_.bind(outline);
          intrin_helper();
          e_.bind(done);
        } else {
          intrin_helper();
        }
        if (saved_alloc >= 0) {
          set_alloc(saved_alloc);
          emit_loads(*alloc_);
        }
        break;
      }

      // -- everything else (fallback forms): one round trip through the
      //    interpreter's handler --
      default:
        generic_exec();
        break;
    }
  }

  /// The arithmetic intrinsic tier (see intrinsic_is_arith). Each body is
  /// bit-identical to the interpreter's composition: the f64 flavours
  /// tag-check the argument; the f32 flavours reproduce
  /// (f32) f((f64) x) -- for fabs the widen/narrow round trip is emitted
  /// explicitly because the widen quiets a signalling NaN exactly like the
  /// interpreter's cast does, and for floor/ceil roundss agrees with the
  /// widened composition on every input (integral results are exact in
  /// f32; NaNs are quieted with the payload preserved either way).
  void emit_arith_intrin(std::uint16_t id) {
    using arch::intrinsics::Id;
    switch (static_cast<Id>(id)) {
      case Id::kFabs:
        xmm_bits_to(RDX, 0);
        tag_check(RDX);
        e_.btr_ri(RDX, 63);
        xmm_bits_from(0, RDX);
        break;
      case Id::kFabsF32:
        xmm_load_ss(0, 0);
        e_.cvtss2sd(0, 0);
        e_.movq_rx(RDX, 0);
        e_.btr_ri(RDX, 63);
        e_.movq_xr(0, RDX);
        e_.cvtsd2ss(1, 0);
        xmm_store_ss(0, 1);
        break;
      case Id::kFloor:
      case Id::kCeil: {
        const std::uint8_t mode =
            static_cast<Id>(id) == Id::kFloor ? 0x9 : 0xA;
        xmm_bits_to(RDX, 0);
        tag_check(RDX);
        const int h = xmm_host(0);
        if (h) {
          e_.roundsd(h, h, mode);
        } else {
          e_.movq_xr(0, RDX);
          e_.roundsd(0, 0, mode);
          e_.movq_mx(RBX, xmm_lo(0), 0);
        }
        break;
      }
      default: {  // kFloorF32 / kCeilF32
        const std::uint8_t mode =
            static_cast<Id>(id) == Id::kFloorF32 ? 0x9 : 0xA;
        xmm_load_ss(0, 0);
        e_.roundss(0, 0, mode);
        xmm_store_ss(0, 0);
        break;
      }
    }
  }

  /// The out-of-line intrinsic path: the dispatch helper skips the flag
  /// syncs and native-address lookup the generic path pays (intrinsics
  /// touch neither flags nor pc; control always falls through).
  void intrin_helper() {
    e_.mov_mr(R15, kCtxRetired, R14);
    mov_ri32_reloc(RSI, Reloc::Kind::kImm32Pc, pc_);
    e_.mov_rr(RDI, R15);
    e_.call_m(R15, kCtxHelpIntrin);
    e_.test_rr(RAX, RAX);
    e_.jcc(CC_E, exit_tail_);
  }

  // --- allocation-aware integer helpers ------------------------------------

  void int_rr(Alu op, const MicroOp& u) {
    const int ha = gpr_host(u.a), hb = gpr_host(u.b);
    if (ha && hb) {
      e_.alu_rr(op, ha, hb);
    } else if (ha) {
      e_.alu_rm(op, ha, R12, gpr_off(u.b));
    } else if (hb) {
      e_.alu_mr(op, R12, gpr_off(u.a), hb);
    } else {
      e_.mov_rm(RAX, R12, gpr_off(u.b));
      e_.alu_mr(op, R12, gpr_off(u.a), RAX);
    }
  }
  void int_ri(Alu op, const MicroOp& u) {
    const int ha = gpr_host(u.a);
    if (ha) {
      if (fits_i32(u.imm)) {
        e_.alu_ri(op, ha, static_cast<std::int32_t>(u.imm));
      } else {
        e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
        e_.alu_rr(op, ha, RAX);
      }
    } else if (fits_i32(u.imm)) {
      e_.alu_mi(op, R12, gpr_off(u.a), static_cast<std::int32_t>(u.imm));
    } else {
      e_.mov_ri64(RAX, static_cast<std::uint64_t>(u.imm));
      e_.alu_mr(op, R12, gpr_off(u.a), RAX);
    }
  }
  void shift_rr(int op, const MicroOp& u) {
    // Hardware masks cl by 63 for 64-bit shifts, same as the handler's & 63.
    gpr_load(RCX, u.b);
    const int ha = gpr_host(u.a);
    if (ha) {
      e_.shift_r_cl(op, ha);
    } else {
      e_.shift_m_cl(op, R12, gpr_off(u.a));
    }
  }
  void shift_ri(int op, const MicroOp& u) {
    const int ha = gpr_host(u.a);
    const auto sh = static_cast<std::uint8_t>(u.imm & 63);
    if (ha) {
      e_.shift_r_i8(op, ha, sh);
    } else {
      e_.shift_m_i8(op, R12, gpr_off(u.a), sh);
    }
  }

  /// Runs a compare/test's host-flag computation without materialising the
  /// guest bytes. Shared by the unfused templates (which materialise next),
  /// the fused pairs (which branch on the host flags directly) and the
  /// fused budget stubs (which re-run it against the arrays).
  void emit_compare(const MicroOp& u) {
    switch (static_cast<MicroKind>(u.kind)) {
      case MicroKind::kCmpRR: {
        const int ha = gpr_host(u.a), hb = gpr_host(u.b);
        if (ha && hb) {
          e_.alu_rr(Alu::kCmp, ha, hb);
        } else if (ha) {
          e_.alu_rm(Alu::kCmp, ha, R12, gpr_off(u.b));
        } else if (hb) {
          e_.alu_mr(Alu::kCmp, R12, gpr_off(u.a), hb);
        } else {
          e_.mov_rm(RAX, R12, gpr_off(u.a));
          e_.alu_rm(Alu::kCmp, RAX, R12, gpr_off(u.b));
        }
        break;
      }
      case MicroKind::kCmpRI: {
        const int ha = gpr_host(u.a);
        if (fits_i32(u.imm)) {
          if (ha) {
            e_.alu_ri(Alu::kCmp, ha, static_cast<std::int32_t>(u.imm));
          } else {
            e_.alu_mi(Alu::kCmp, R12, gpr_off(u.a),
                      static_cast<std::int32_t>(u.imm));
          }
        } else {
          e_.mov_ri64(RCX, static_cast<std::uint64_t>(u.imm));
          if (ha) {
            e_.alu_rr(Alu::kCmp, ha, RCX);
          } else {
            e_.alu_mr(Alu::kCmp, R12, gpr_off(u.a), RCX);
          }
        }
        break;
      }
      case MicroKind::kTestRR: {
        const int ra = gpr_read(u.a, RAX);
        const int rb = gpr_read(u.b, RCX);
        e_.test_rr(ra, rb);
        break;
      }
      default: {  // kTestRI
        const int ra = gpr_read(u.a, RAX);
        if (fits_i32(u.imm)) {
          e_.test_ri(ra, static_cast<std::int32_t>(u.imm));
        } else {
          e_.mov_ri64(RCX, static_cast<std::uint64_t>(u.imm));
          e_.test_rr(ra, RCX);
        }
        break;
      }
    }
  }

  /// Signed divide/remainder with the interpreter's exact trap ladder:
  /// divisor 0, then INT64_MIN / -1.
  void div_rem(bool is_div, bool is_imm, const MicroOp& u) {
    const std::uint32_t zero_msg = is_div ? kOpTrapDivZero : kOpTrapRemZero;
    const std::uint32_t ovf_msg =
        is_div ? kOpTrapDivOverflow : kOpTrapRemOverflow;
    if (is_imm && u.imm == 0) {
      op_trap_jmp(zero_msg);
      return;
    }
    gpr_load(RAX, u.a);
    if (is_imm) {
      load_imm(RCX, u.imm);
    } else {
      gpr_load(RCX, u.b);
      e_.test_rr(RCX, RCX);
      op_trap_jcc(CC_E, zero_msg);
    }
    if (!is_imm) {
      Emitter::Label no_ovf;
      e_.alu_ri8(Alu::kCmp, RCX, -1);
      e_.jcc(CC_NE, no_ovf);
      e_.mov_ri64(RDX, 0x8000000000000000ull);
      e_.alu_rr(Alu::kCmp, RAX, RDX);
      op_trap_jcc(CC_E, ovf_msg);
      e_.bind(no_ovf);
    } else if (u.imm == -1) {
      e_.mov_ri64(RDX, 0x8000000000000000ull);
      e_.alu_rr(Alu::kCmp, RAX, RDX);
      op_trap_jcc(CC_E, ovf_msg);
    }
    e_.cqo();
    e_.idiv_r(RCX);
    gpr_store(u.a, is_div ? RAX : RDX);
  }

  // --- allocation-aware f64 helpers ----------------------------------------

  void sd_xx(std::uint8_t op, const MicroOp& u) {
    xmm_bits_to(RDX, u.a);
    tag_check(RDX);
    xmm_bits_to(RCX, u.b);
    tag_check(RCX);
    const int xa = xmm_host(u.a), xb = xmm_host(u.b);
    if (xa) {
      if (xb) {
        e_.sse_rr(0xF2, op, xa, xb);
      } else {
        e_.movq_xr(0, RCX);
        e_.sse_rr(0xF2, op, xa, 0);
      }
    } else {
      e_.movq_xr(0, RDX);
      e_.movq_xr(1, RCX);
      e_.sse_rr(0xF2, op, 0, 1);
      e_.movq_mx(RBX, xmm_lo(u.a), 0);
    }
  }
  void sd_xm(std::uint8_t op, const MicroOp& u) {
    xmm_bits_to(RDX, u.a);
    tag_check(RDX);  // dst tag precedes the src bounds check
    const int xa = xmm_host(u.a);
    if (!xa) e_.movq_xr(0, RDX);
    emit_ea(u);
    bounds(8, false);
    e_.mov_rmx(RCX, R13, RAX, 0);
    tag_check(RCX);
    e_.movq_xr(1, RCX);
    if (xa) {
      e_.sse_rr(0xF2, op, xa, 1);
    } else {
      e_.sse_rr(0xF2, op, 0, 1);
      e_.movq_mx(RBX, xmm_lo(u.a), 0);
    }
  }
  /// min: b < a ? b : a; max: a < b ? b : a. cmpltsd is an ordered compare
  /// (false on NaN), so the blend picks `a` exactly like the C++ ternary.
  void sd_minmax_blend(bool is_min) {
    // x0 = a, x1 = b on entry; result in x1.
    if (is_min) {
      e_.movaps_rr(2, 1);
      e_.cmpltsd(2, 0);  // mask = b < a
    } else {
      e_.movaps_rr(2, 0);
      e_.cmpltsd(2, 1);  // mask = a < b
    }
    e_.andpd(1, 2);   // b & mask
    e_.andnpd(2, 0);  // ~mask & a
    e_.orpd(1, 2);    // mask ? b : a
  }
  void sd_minmax_xx(bool is_min, const MicroOp& u) {
    xmm_bits_to(RDX, u.a);
    tag_check(RDX);
    xmm_bits_to(RCX, u.b);
    tag_check(RCX);
    e_.movq_xr(0, RDX);
    e_.movq_xr(1, RCX);
    sd_minmax_blend(is_min);
    xmm_store_lo(u.a, 1);
  }
  void sd_minmax_xm(bool is_min, const MicroOp& u) {
    xmm_bits_to(RDX, u.a);
    tag_check(RDX);
    e_.movq_xr(0, RDX);
    emit_ea(u);
    bounds(8, false);
    e_.mov_rmx(RCX, R13, RAX, 0);
    tag_check(RCX);
    e_.movq_xr(1, RCX);
    sd_minmax_blend(is_min);
    xmm_store_lo(u.a, 1);
  }

  // --- allocation-aware f32 helpers ----------------------------------------

  void ss_xx(std::uint8_t op, const MicroOp& u) {
    const int xa = xmm_host(u.a), xb = xmm_host(u.b);
    if (xa) {
      // Scalar ss ops write the low 32 bits and preserve 32..63: exactly
      // the interpreter's with_low32 writeback.
      if (xb) {
        e_.sse_rr(0xF3, op, xa, xb);
      } else {
        e_.sse_rm(0xF3, op, xa, RBX, xmm_lo(u.b));
      }
    } else {
      e_.movss_xm(0, RBX, xmm_lo(u.a));
      if (xb) {
        e_.sse_rr(0xF3, op, 0, xb);
      } else {
        e_.sse_rm(0xF3, op, 0, RBX, xmm_lo(u.b));
      }
      e_.movss_mx(RBX, xmm_lo(u.a), 0);  // low 32 bits only (with_low32)
    }
  }
  void ss_xm(std::uint8_t op, const MicroOp& u) {
    const int xa = xmm_host(u.a);
    if (!xa) e_.movss_xm(0, RBX, xmm_lo(u.a));
    emit_ea(u);
    bounds(4, false);
    e_.movss_xmx(1, R13, RAX, 0);
    if (xa) {
      e_.sse_rr(0xF3, op, xa, 1);
    } else {
      e_.sse_rr(0xF3, op, 0, 1);
      e_.movss_mx(RBX, xmm_lo(u.a), 0);
    }
  }
  void ss_minmax_blend(bool is_min) {
    if (is_min) {
      e_.movaps_rr(2, 1);
      e_.cmpltss(2, 0);
    } else {
      e_.movaps_rr(2, 0);
      e_.cmpltss(2, 1);
    }
    e_.andpd(1, 2);
    e_.andnpd(2, 0);
    e_.orpd(1, 2);
  }
  void ss_minmax_xx(bool is_min, const MicroOp& u) {
    // Promoted slots may carry junk above bit 31 in x0/x1; the blend then
    // produces junk there too, all discarded by the 32-bit writeback.
    xmm_load_ss(0, u.a);
    xmm_load_ss(1, u.b);
    ss_minmax_blend(is_min);
    xmm_store_ss(u.a, 1);
  }
  void ss_minmax_xm(bool is_min, const MicroOp& u) {
    xmm_load_ss(0, u.a);
    emit_ea(u);
    bounds(4, false);
    e_.movss_xmx(1, R13, RAX, 0);
    ss_minmax_blend(is_min);
    xmm_store_ss(u.a, 1);
  }

  // --- packed helpers (array-based; packed kinds poison allocation) --------

  void packed_xx(std::uint8_t prefix, std::uint8_t op, const MicroOp& u,
                 bool tags) {
    if (tags) {
      e_.mov_rm(RDX, RBX, xmm_lo(u.a));
      tag_check(RDX);
      e_.mov_rm(RDX, RBX, xmm_hi(u.a));
      tag_check(RDX);
      e_.mov_rm(RDX, RBX, xmm_lo(u.b));
      tag_check(RDX);
      e_.mov_rm(RDX, RBX, xmm_hi(u.b));
      tag_check(RDX);
    }
    // movups: the xmm array is only 8-aligned. Source read fully before the
    // destination store, so a == b aliasing behaves like the interpreter.
    e_.movups_xm(0, RBX, xmm_lo(u.a));
    e_.movups_xm(1, RBX, xmm_lo(u.b));
    e_.sse_rr(prefix, op, 0, 1);
    e_.movups_mx(RBX, xmm_lo(u.a), 0);
  }
  /// Loads the 16-byte memory operand into x1 with the interpreter's two
  /// 8-byte bounds checks (faulting address reported per-half) and, for pd
  /// arithmetic, its per-lane tag checks. Leaves RAX = addr + 8.
  void packed_mem_load(const MicroOp& u, bool tags) {
    emit_ea(u);
    bounds(8, false);
    if (tags) {
      e_.mov_rmx(RDX, R13, RAX, 0);
      tag_check(RDX);
    }
    e_.alu_ri8(Alu::kAdd, RAX, 8);
    bounds(8, false);
    if (tags) {
      e_.mov_rmx(RCX, R13, RAX, 0);
      tag_check(RCX);
    }
    e_.movups_xmx(1, R13, RAX, -8);
  }
  void packed_xm(std::uint8_t prefix, std::uint8_t op, const MicroOp& u,
                 bool tags) {
    if (tags) {
      e_.mov_rm(RDX, RBX, xmm_lo(u.a));
      tag_check(RDX);
      e_.mov_rm(RDX, RBX, xmm_hi(u.a));
      tag_check(RDX);
    }
    packed_mem_load(u, tags);
    e_.movups_xm(0, RBX, xmm_lo(u.a));
    e_.sse_rr(prefix, op, 0, 1);
    e_.movups_mx(RBX, xmm_lo(u.a), 0);
  }

  // --- compare+branch fusion -----------------------------------------------

  /// Host condition code realising "jcc_kind taken" straight off the host
  /// flags of emit_compare(cmp_kind). After cmp, every mapping is the
  /// textbook one. After test, OF = CF = 0, so the guest's flag bytes
  /// (eq = ZF, lt = SF, ltu = 0) translate to: l -> S, ge -> NS, le -> ZF|SF
  /// (= host LE), g -> host G, b -> never (host B), ae -> always (host AE),
  /// be -> ZF (host BE), a -> !ZF (host A).
  int fused_cc(MicroKind cmp, MicroKind jcc) const {
    const bool test = cmp == MicroKind::kTestRR || cmp == MicroKind::kTestRI;
    switch (jcc) {
      case MicroKind::kJe: return CC_E;
      case MicroKind::kJne: return CC_NE;
      case MicroKind::kJl: return test ? CC_S : CC_L;
      case MicroKind::kJge: return test ? 0x9 /*NS*/ : CC_GE;
      case MicroKind::kJle: return CC_LE;
      case MicroKind::kJg: return CC_G;
      case MicroKind::kJb: return CC_B;
      case MicroKind::kJae: return CC_AE;
      case MicroKind::kJbe: return CC_BE;
      default: return CC_A;  // kJa
    }
  }

  /// A fused pair: compare, conditional branch on the host flags, guest
  /// flag bytes never written (liveness proved no successor reads them).
  /// Block spills sit between the compare and the branch -- plain movs,
  /// flags preserved. A fused pair always sits in a covered block (its two
  /// halves alone satisfy the length >= 2 rule), so the entry guard has
  /// proved both retires fit the budget: a stop between the halves can only
  /// happen through the guard, where the driver's interpreter tail runs the
  /// compare and materialises the flag bytes itself. The R-path after the
  /// branch is the plain byte-reading jcc template, so every external entry
  /// at the branch pc (resume after such a stop, re-JIT splice, branch
  /// target) sees interpreter-identical behaviour. Both retires precede the
  /// compare because inc clobbers the host flags the branch consumes.
  void emit_fused(std::size_t cmp_pc) {
    const MicroOp& c = uops_[cmp_pc];
    const MicroOp& j = uops_[cmp_pc + 1];
    const std::uint64_t tgt = static_cast<std::uint64_t>(j.imm);
    pc_ = cmp_pc;
    prologue(cmp_pc);
    prologue(cmp_pc + 1);  // covered: count + retire only, flags not yet set
    emit_compare(c);
    if (cur_alloc_ >= 0)
      emit_spills(allocs_[static_cast<std::size_t>(cur_alloc_)]);
    jcc_target(fused_cc(kind_of(c), kind_of(j)), tgt);
    jmp_target(cmp_pc + 2);
    // R-path: external entries at the branch pc take the unfused template.
    set_alloc(-1);
    instr_off_[cmp_pc + 1] = static_cast<std::uint32_t>(e_.size());
    pc_ = cmp_pc + 1;
    prologue(cmp_pc + 1);
    emit(j);
    stats_.fused_pairs += 1;
    stats_.native[LoweringStats::kInt] += 1;
    stats_.native[LoweringStats::kBranch] += 1;
  }

  // --- coverage accounting -------------------------------------------------

  void tally(const MicroOp& u) {
    const MicroKind k = kind_of(u);
    const int f = family_of(k);
    if (k == MicroKind::kFallback) {
      stats_.generic[f] += 1;
    } else if (k == MicroKind::kRet) {
      stats_.helper[f] += 1;  // return address resolved by help_ret
    } else if (k == MicroKind::kIntrin) {
      if (intrinsic_inlinable(static_cast<std::uint16_t>(u.imm))) {
        stats_.native[f] += 1;
      } else {
        stats_.helper[f] += 1;
      }
    } else {
      stats_.native[f] += 1;
    }
  }

  // --- tails, thunks and stubs ---------------------------------------------

  void emit_tails() {
    e_.bind(exit_tail_);
    e_.jmp_m(R15, kCtxEpilogue);
    e_.bind(halt_tail_);
    e_.mov_mi32_d(R15, kCtxExitStatus, kExitHalt);
    e_.jmp_m(R15, kCtxEpilogue);
  }

  /// Out-of-line external entries into allocated block interiors: guard the
  /// remaining covered length, load the block's promoted registers, then
  /// jump to the in-body position. Any entry here comes from outside the
  /// block (resume, branch, re-JIT splice), so the arrays are current.
  void emit_thunks() {
    for (const Thunk& t : thunks_) {
      instr_off_[t.pc] = static_cast<std::uint32_t>(e_.size());
      const Alloc& a = allocs_[static_cast<std::size_t>(t.alloc)];
      near_guard(t.pc, a.cover_end - t.pc);
      emit_loads(a);
      e_.u8(0xE9);
      const std::int64_t rel = static_cast<std::int64_t>(t.body) -
                               (static_cast<std::int64_t>(e_.size()) + 4);
      e_.u32(static_cast<std::uint32_t>(rel));
    }
  }

  void emit_stubs() {
    // Budget stubs fire only from uncovered code, where nothing is promoted
    // and the arrays are always current: no spill.
    for (auto& s : budget_stubs_) {
      e_.bind(s.label);
      mov_ri32_reloc(RAX, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_mr(R15, kCtxExitPc, RAX);
      e_.mov_mi32_d(R15, kCtxExitStatus, kExitBudget);
      e_.jmp_m(R15, kCtxEpilogue);
    }
    // Near stubs fire from a block-entry guard, before the block's loads:
    // nothing of the block has run, the arrays are current, and the driver
    // interprets from pc to the exact budget boundary.
    for (auto& s : near_stubs_) {
      e_.bind(s.label);
      mov_ri32_reloc(RAX, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_mr(R15, kCtxExitPc, RAX);
      e_.mov_mi32_d(R15, kCtxExitStatus, kExitBudgetNear);
      e_.jmp_m(R15, kCtxEpilogue);
    }
    for (auto& s : mem_stubs_) {
      e_.bind(s.label);
      stub_spill(s.alloc);  // plain movs: RAX (faulting address) survives
      e_.mov_rr(RSI, RAX);
      e_.mov_ri32(RDX, s.bytes);
      mov_ri32_reloc(RCX, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_ri32(R8, s.is_store ? 1 : 0);
      e_.mov_mr(R15, kCtxRetired, R14);
      e_.mov_rr(RDI, R15);
      e_.call_m(R15, kCtxHelpMemTrap);
      e_.jmp_m(R15, kCtxEpilogue);
    }
    for (auto& s : tag_stubs_) {
      e_.bind(s.label);
      stub_spill(s.alloc);  // preserves the bits register (rdx/rcx)
      if (s.bits_reg != RSI) e_.mov_rr(RSI, s.bits_reg);
      mov_ri32_reloc(RDX, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_mr(R15, kCtxRetired, R14);
      e_.mov_rr(RDI, R15);
      e_.call_m(R15, kCtxHelpTagTrap);
      e_.jmp_m(R15, kCtxEpilogue);
    }
    for (auto& s : op_stubs_) {
      e_.bind(s.label);
      stub_spill(s.alloc);
      mov_ri32_reloc(RSI, Reloc::Kind::kImm32Pc, s.pc);
      e_.mov_ri32(RDX, s.msg);
      e_.mov_mr(R15, kCtxRetired, R14);
      e_.mov_rr(RDI, R15);
      e_.call_m(R15, kCtxHelpOpTrap);
      e_.jmp_m(R15, kCtxEpilogue);
    }
  }
};

}  // namespace

const char* lowering_family_name(int family) {
  switch (family) {
    case LoweringStats::kInt: return "int";
    case LoweringStats::kMem: return "mem";
    case LoweringStats::kBranch: return "branch";
    case LoweringStats::kCallRet: return "call/ret";
    case LoweringStats::kF64: return "f64";
    case LoweringStats::kF32: return "f32";
    case LoweringStats::kPacked: return "packed";
    case LoweringStats::kBitwise: return "bitwise";
    case LoweringStats::kConvert: return "convert";
    case LoweringStats::kDivRem: return "divrem";
    case LoweringStats::kIntrin: return "intrin";
    default: return "other";
  }
}

LoweringStats lowering_totals() {
  std::lock_guard<std::mutex> lock(g_totals_mu);
  return g_totals;
}

void reset_lowering_totals() {
  std::lock_guard<std::mutex> lock(g_totals_mu);
  g_totals = LoweringStats{};
}

std::shared_ptr<const SegmentBlob> compile_stream(
    const std::vector<MicroOp>& uops, CompileMode mode) {
  auto blob = Compiler(uops, mode).run();
  {
    std::lock_guard<std::mutex> lock(g_totals_mu);
    g_totals.add(blob->stats);
  }
  return blob;
}

}  // namespace fpmix::vm::jit
