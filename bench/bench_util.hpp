// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md section 5 for the experiment index).
#pragma once

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "kernels/workload.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "support/timer.hpp"
#include "vm/machine.hpp"

namespace fpmix::bench {

struct TimedRun {
  double seconds = 0;
  std::uint64_t instructions = 0;
  std::vector<double> outputs;
  bool ok = false;
  std::string error;
};

/// Runs an image on one rank, timed.
inline TimedRun run_timed(const program::Image& img,
                          vm::MiniMpi* mpi = nullptr, int rank = 0) {
  vm::Machine::Options opts;
  opts.mpi = mpi;
  opts.rank = rank;
  vm::Machine m(img, opts);
  Timer t;
  const vm::RunResult r = m.run();
  TimedRun out;
  out.seconds = t.elapsed_seconds();
  out.instructions = m.instructions_retired();
  out.outputs = m.output_f64();
  out.ok = r.ok();
  out.error = r.trap_message;
  return out;
}

/// Runs an image on `ranks` ranks (std::thread per rank); returns total
/// wall time and the summed retired instructions.
inline TimedRun run_timed_mpi(const program::Image& img, int ranks) {
  vm::MiniMpi mpi(ranks);
  std::vector<std::unique_ptr<vm::Machine>> machines;
  for (int r = 0; r < ranks; ++r) {
    vm::Machine::Options opts;
    opts.mpi = &mpi;
    opts.rank = r;
    machines.push_back(std::make_unique<vm::Machine>(img, opts));
  }
  std::vector<std::thread> threads;
  std::vector<vm::RunResult> results(static_cast<std::size_t>(ranks));
  Timer t;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      results[static_cast<std::size_t>(r)] =
          machines[static_cast<std::size_t>(r)]->run();
    });
  }
  for (auto& th : threads) th.join();
  TimedRun out;
  out.seconds = t.elapsed_seconds();
  out.ok = true;
  for (int r = 0; r < ranks; ++r) {
    out.instructions +=
        machines[static_cast<std::size_t>(r)]->instructions_retired();
    if (!results[static_cast<std::size_t>(r)].ok()) {
      out.ok = false;
      out.error = results[static_cast<std::size_t>(r)].trap_message;
    }
  }
  out.outputs = machines[0]->output_f64();
  return out;
}

/// All-double instrumented image (the Figure 8/9 overhead configuration:
/// every FP instruction wrapped, nothing narrowed).
inline program::Image all_double_instrumented(const program::Image& img) {
  const auto ix = config::StructureIndex::build(program::lift(img));
  return instrument::instrument_image(img, ix, config::PrecisionConfig{});
}

inline void print_rule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace fpmix::bench
