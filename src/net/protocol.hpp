// Session protocol of the distributed search service.
//
// The transport reuses the runner's CRC-framed wire format verbatim
// (runner/wire.hpp: `magic | payload_len | payload | crc32`), carried over
// TCP instead of pipes -- a corrupt or truncated frame is a *detected*
// session error on either side, never a silently wrong verdict. The first
// payload byte is a message type:
//
//   client -> server
//     kMsgHello          session handshake: protocol version, workload id,
//                        evaluation semantics (budget/deadline/breaker/
//                        rlimit), search fingerprint, fault campaign
//     kMsgTrial          one trial: ticket + config digest + full canonical
//                        config key (the server's own pool re-deltas to its
//                        workers; the session stream stays stateless)
//     kMsgCacheInsert    shard-cache fill: a verdict this client computed
//                        elsewhere (another shard or in-process)
//     kMsgJournalAppend  one CRC-sealed journal record, streamed as the
//                        scheduler commits it locally; the server retains a
//                        per-search_fp replicated shard of them
//     kMsgJournalFetch   request the retained shard for this session's
//                        search_fp (scheduler failover / --adopt)
//     kMsgPing           heartbeat probe (nonce + client send timestamp)
//   server -> client
//     kMsgHelloAck       accept (worker count, verifier fingerprint to
//                        cross-check, retained shard size) or reject
//     kMsgResult         one trial verdict: ticket, flags, encoded WireResult
//     kMsgJournalTail    fetch response: a chunk of retained journal lines
//                        in sequence order, done flag on the last chunk
//     kMsgPong           heartbeat echo (nonce + timestamp bounced back)
//     kMsgError          fatal session error (text), connection closes
//
// Many trials may be outstanding per connection; results return in
// completion order and are correlated by ticket. Every encode/decode here
// is a pure function over std::string, so the whole protocol unit-tests
// without opening a socket.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "runner/wire.hpp"
#include "support/fault.hpp"

namespace fpmix::net {

/// Bumped on any incompatible message change; HelloAck rejects mismatches.
/// v2: Hello carries the VM execution engine, HelloAck echoes the engine
/// the endpoint will actually run (a jit-incapable host downgrades).
/// v3: replicated journal streaming (JournalAppend/JournalFetch/
/// JournalTail), heartbeat liveness (Ping/Pong), HelloAck reports the
/// retained shard size.
/// v4: durable daemon state -- HelloAck reports the endpoint's persistence
/// health (state_degraded, shards_reloaded, disk_faults), and the
/// ShardDigest/ShardDigestAck exchange lets the scheduler compare shard
/// contents across endpoints (anti-entropy gossip) without fetching them.
constexpr std::uint32_t kProtocolVersion = 4;

constexpr std::uint8_t kMsgHello = 1;
constexpr std::uint8_t kMsgHelloAck = 2;
constexpr std::uint8_t kMsgTrial = 3;
constexpr std::uint8_t kMsgResult = 4;
constexpr std::uint8_t kMsgCacheInsert = 5;
constexpr std::uint8_t kMsgError = 6;
constexpr std::uint8_t kMsgJournalAppend = 7;
constexpr std::uint8_t kMsgJournalFetch = 8;
constexpr std::uint8_t kMsgJournalTail = 9;
constexpr std::uint8_t kMsgPing = 10;
constexpr std::uint8_t kMsgPong = 11;
constexpr std::uint8_t kMsgShardDigest = 12;
constexpr std::uint8_t kMsgShardDigestAck = 13;

/// First payload byte, or 0 for an empty payload.
std::uint8_t peek_msg_type(std::string_view payload);

// ---- Handshake -------------------------------------------------------------

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::string bench;  // workload name ("ep", "cg", ...)
  std::uint8_t cls = 'W';
  // Evaluation semantics (must match the client's in-process path exactly,
  // or results would not be byte-compatible with its journal).
  /// vm::Engine the endpoint should run trials on. All engines are
  /// bit-identical, so this is a performance choice, not a semantic one --
  /// which is why a jit-incapable endpoint may downgrade (see HelloAckMsg)
  /// instead of rejecting the session.
  std::uint8_t engine = 0;
  std::uint64_t max_instructions = 1ull << 32;
  std::uint64_t deadline_ms = 0;
  std::uint32_t max_crashes = 3;
  std::uint64_t rlimit_mb = 512;
  std::uint8_t shard_cache = 0;  // consult/fill the fleet-wide trial cache
  std::string search_fp;         // shard-cache namespace (trial_cache.hpp)
  // Fault campaign (deterministic; both sides re-derive per-trial draws).
  std::uint8_t has_fault = 0;
  std::uint64_t fault_seed = 0;
  fault::Injector::Rates fault_rates{};
};

std::string encode_hello(const HelloMsg& m);
bool decode_hello(std::string_view payload, HelloMsg* out);

struct HelloAckMsg {
  std::uint8_t ok = 0;
  std::string error;        // when !ok
  std::string verifier_fp;  // server-side verifier fingerprint (cross-check)
  std::uint32_t workers = 0;  // pool width behind this endpoint
  /// vm::Engine the endpoint will actually evaluate on. Equals the hello's
  /// engine except for the one sanctioned mismatch: jit requested on a host
  /// that cannot run it answers with the micro-op engine.
  std::uint8_t engine = 0;
  /// Journal records this endpoint already retains for the session's
  /// search_fp (v3): an adopting scheduler reads fleet coverage from the
  /// handshake alone.
  std::uint64_t shard_records = 0;
  /// Persistence health (v4). state_degraded means the daemon's shard store
  /// fell back to in-memory operation (unwritable/full state dir) -- its
  /// replicas are live but will not survive a restart. shards_reloaded and
  /// disk_faults snapshot the store counters at handshake time, so a
  /// scheduler can report per-endpoint durability without extra round
  /// trips.
  std::uint8_t state_degraded = 0;
  std::uint64_t shards_reloaded = 0;
  std::uint64_t disk_faults = 0;
};

std::string encode_hello_ack(const HelloAckMsg& m);
bool decode_hello_ack(std::string_view payload, HelloAckMsg* out);

// ---- Trials ----------------------------------------------------------------

struct TrialMsg {
  std::uint64_t ticket = 0;
  std::string key;         // config digest (journal/cache/injector identity)
  std::string config_key;  // full canonical PrecisionConfig serialization
};

std::string encode_trial(const TrialMsg& m);
bool decode_trial(std::string_view payload, TrialMsg* out);

/// ResultMsg flag bits.
constexpr std::uint8_t kResultQuarantined = 1u << 0;  // breaker tripped
constexpr std::uint8_t kResultCacheHit = 1u << 1;     // served from shard cache

struct ResultMsg {
  std::uint64_t ticket = 0;
  std::uint8_t flags = 0;
  std::uint32_t worker_deaths = 0;  // fault events absorbed server-side
  std::uint64_t wall_ns = 0;        // server-side dispatch-to-delivery time
  std::string wire_result;          // runner::encode_result payload
};

std::string encode_result_msg(const ResultMsg& m);
bool decode_result_msg(std::string_view payload, ResultMsg* out);

// ---- Shard cache fill ------------------------------------------------------

struct CacheInsertMsg {
  std::string key;
  std::uint8_t passed = 0;
  std::uint8_t failure_class = 0;  // verify::FailureClass
  std::string failure;
};

std::string encode_cache_insert(const CacheInsertMsg& m);
bool decode_cache_insert(std::string_view payload, CacheInsertMsg* out);

// ---- Replicated journal streaming (v3) -------------------------------------

/// One CRC-sealed journal line (support/journal v2 format, no trailing
/// newline), streamed scheduler -> endpoint as it commits locally. The
/// server re-validates the seal before retaining it, so a damaged line is
/// dropped, never replicated.
struct JournalAppendMsg {
  std::string line;
};

std::string encode_journal_append(const JournalAppendMsg& m);
bool decode_journal_append(std::string_view payload, JournalAppendMsg* out);

/// Requests the endpoint's retained shard for this session's search_fp.
/// The reply is a run of JournalTail chunks ending with done=1.
std::string encode_journal_fetch();
bool decode_journal_fetch(std::string_view payload);

/// One chunk of a shard fetch, lines in ascending sequence order. `total`
/// is the full retained-record count (repeated on every chunk); `done`
/// marks the final chunk (an empty shard answers with one empty done
/// chunk).
struct JournalTailMsg {
  std::uint64_t total = 0;
  std::uint8_t done = 0;
  std::vector<std::string> lines;
};

std::string encode_journal_tail(const JournalTailMsg& m);
bool decode_journal_tail(std::string_view payload, JournalTailMsg* out);

// ---- Anti-entropy gossip (v4) ----------------------------------------------

/// Requests a digest of the endpoint's retained shard for this session's
/// search_fp. The scheduler compares the reply against the record set it
/// has committed locally and re-streams only what the endpoint is missing,
/// so shard healing is continuous instead of riding the next adoption.
std::string encode_shard_digest();
bool decode_shard_digest(std::string_view payload);

/// Digest of one retained shard: record count, highest sealed sequence
/// number, and a CRC32 over the ascending sequence numbers (each as 8
/// little-endian bytes). Two shards with equal digests hold the same
/// sequence set; a matching prefix digest identifies a pure tail gap, which
/// is the cheap (and overwhelmingly common) repair case.
struct ShardDigestMsg {
  std::uint64_t records = 0;
  std::uint64_t max_seq = 0;
  std::uint32_t seq_crc = 0;
};

std::string encode_shard_digest_ack(const ShardDigestMsg& m);
bool decode_shard_digest_ack(std::string_view payload, ShardDigestMsg* out);

/// CRC32 over the ascending sequence numbers of `by_seq` that are
/// <= `up_to_seq`, each contributing 8 little-endian bytes -- the digest
/// both sides of the gossip exchange compute. Returns the record count
/// considered through *records.
std::uint32_t seq_set_crc(const std::map<std::uint64_t, std::string>& by_seq,
                          std::uint64_t up_to_seq, std::uint64_t* records);

// ---- Heartbeat (v3) --------------------------------------------------------

/// Liveness probe. The server echoes both fields back verbatim in a Pong;
/// the scheduler matches by nonce and derives RTT from its own clock, so
/// nothing depends on cross-host time.
struct PingMsg {
  std::uint64_t nonce = 0;
  std::uint64_t t_send_ns = 0;
};

std::string encode_ping(const PingMsg& m);
bool decode_ping(std::string_view payload, PingMsg* out);

struct PongMsg {
  std::uint64_t nonce = 0;
  std::uint64_t t_send_ns = 0;  // the ping's timestamp, echoed
};

std::string encode_pong(const PongMsg& m);
bool decode_pong(std::string_view payload, PongMsg* out);

// ---- Session error ---------------------------------------------------------

std::string encode_error_msg(std::string_view message);
bool decode_error_msg(std::string_view payload, std::string* message);

// ---- Incremental frame extraction ------------------------------------------

/// Accumulates stream bytes and yields complete CRC-verified frame
/// payloads. Corruption is sticky: once the stream is bad there is no
/// resynchronization -- the connection must be dropped (the sender retries
/// on another shard, exactly like a dead worker pipe).
class FrameBuffer {
 public:
  void append(std::string_view data) { buf_.append(data); }

  /// Extracts the next complete frame payload. kNeedMore when the buffer
  /// holds only a prefix; kCorrupt (sticky) on framing/CRC damage.
  runner::FrameStatus next(std::string* payload);

  bool corrupt() const { return corrupt_; }
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool corrupt_ = false;
};

}  // namespace fpmix::net
