// Small string utilities used by the config parser, disassembler and
// report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fpmix {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// Strips leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits on any character in `seps`, skipping empty fields.
std::vector<std::string_view> split_fields(std::string_view s,
                                           std::string_view seps = " \t");

/// Splits into lines; keeps empty lines (the config format is line-oriented).
std::vector<std::string_view> split_lines(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; returns false on malformed input.
bool parse_u64(std::string_view s, std::uint64_t* out);

/// Parses a hexadecimal integer with optional 0x prefix.
bool parse_hex_u64(std::string_view s, std::uint64_t* out);

}  // namespace fpmix
