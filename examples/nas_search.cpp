// The paper's NAS experiment as a command-line tool: run the automatic
// mixed-precision search on one benchmark analogue and write the
// recommended configuration file.
//
// Usage:  nas_search <ep|cg|ft|mg|bt|lu|sp|amg> [S|W|A|C] [--trace]
//                    [--refine] [--out FILE] [--journal FILE] [--no-resume]
//                    [--threads N] [--deadline-ms N] [--retries N] [--quiet]
//
// --deadline-ms bounds each trial's wall-clock time (a spinning patched
// binary is classified "timeout" instead of hanging the search);
// --retries N re-evaluates each trial until one verdict holds a majority
// of N+1 attempts, quarantining configs whose attempts disagree.
//
// With --journal, every completed trial is appended to FILE as it
// finishes; re-running the same command resumes from it, re-using every
// journaled verdict instead of re-evaluating (an interrupted search loses
// at most the trial in flight).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "config/textio.hpp"
#include "kernels/workload.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

using namespace fpmix;

int main(int argc, char** argv) {
  std::string bench = argc > 1 ? argv[1] : "ep";
  char cls = 'W';
  bool trace = false;
  bool refine = false;
  bool quiet = false;
  std::string out_path;
  search::SearchOptions opts;
  opts.keep_log = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") trace = true;
    else if (arg == "--refine") refine = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--no-resume") opts.resume = false;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg == "--journal" && i + 1 < argc) opts.journal_path = argv[++i];
    else if (arg == "--threads" && i + 1 < argc) {
      std::uint64_t n = 1;
      if (!parse_u64(argv[++i], &n) || n == 0) {
        std::fprintf(stderr, "bad --threads value '%s'\n", argv[i]);
        return 2;
      }
      opts.num_threads = static_cast<std::size_t>(n);
    }
    else if (arg == "--deadline-ms" && i + 1 < argc) {
      if (!parse_u64(argv[++i], &opts.deadline_ms)) {
        std::fprintf(stderr, "bad --deadline-ms value '%s'\n", argv[i]);
        return 2;
      }
    }
    else if (arg == "--retries" && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!parse_u64(argv[++i], &n) || n > 16) {
        std::fprintf(stderr, "bad --retries value '%s'\n", argv[i]);
        return 2;
      }
      opts.max_retries = static_cast<std::uint32_t>(n);
    }
    else if (arg.size() == 1) cls = arg[0];
  }
  opts.refine_composition = refine;
  if (!quiet) {
    // Progress/metrics lines (trials/sec, cache hit rate, ETA) flow through
    // the support logger at info level.
    opts.progress_log = true;
    log::set_level(log::Level::kInfo);
  }

  kernels::Workload w;
  if (bench == "ep") w = kernels::make_ep(cls);
  else if (bench == "cg") w = kernels::make_cg(cls);
  else if (bench == "ft") w = kernels::make_ft(cls);
  else if (bench == "mg") w = kernels::make_mg(cls);
  else if (bench == "bt") w = kernels::make_bt(cls);
  else if (bench == "lu") w = kernels::make_lu(cls);
  else if (bench == "sp") w = kernels::make_sp(cls);
  else if (bench == "amg") w = kernels::make_amg();
  else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 2;
  }

  std::printf("searching %s ...\n", w.name.c_str());
  const program::Image img = kernels::build_image(w);
  auto index = config::StructureIndex::build(program::lift(img));
  const auto verifier = kernels::make_verifier(w, img);

  Timer t;
  const search::SearchResult res =
      search::run_search(img, &index, *verifier, opts);

  if (trace) {
    std::printf("\n-- search trace --\n");
    for (const auto& rec : res.trace) {
      std::printf("  %-40s %4zu cand  %s%s%s%s\n", rec.unit.c_str(),
                  rec.candidates, rec.passed ? "PASS" : "fail",
                  rec.cached ? " (cached)" : "",
                  rec.failure.empty() ? "" : ": ",
                  rec.failure.c_str());
    }
  }

  std::printf("\n%s: %zu candidates, %zu configurations tested in %.1fs\n",
              w.name.c_str(), res.candidates, res.configs_tested,
              t.elapsed_seconds());
  const search::SearchMetrics& m = res.metrics;
  std::printf("trials: %zu live + %zu cached (%.1f%% cache hit), "
              "%.1f trials/s, %.2fs evaluating\n",
              m.trials_live, m.trials_cached, m.cache_hit_rate,
              m.trials_per_sec, m.eval_seconds);
  for (const auto& [level, secs] : m.eval_seconds_per_level) {
    std::printf("  level %-12s %.2fs\n", level.c_str(), secs);
  }
  std::printf("  stages: patch %.2fs, predecode %.2fs, run %.2fs, "
              "verify %.2fs\n",
              m.patch_seconds, m.predecode_seconds, m.run_seconds,
              m.verify_seconds);
  if (!m.failures_by_class.empty()) {
    std::printf("failed trials by class:\n");
    for (const auto& [cls_name, count] : m.failures_by_class) {
      std::printf("  %-16s %zu\n", cls_name.c_str(), count);
    }
  }
  if (m.retries > 0 || m.quarantined > 0) {
    std::printf("supervision: %zu retry attempt(s), %zu quarantined "
                "config(s)\n", m.retries, m.quarantined);
  }
  if (m.profile_degraded) {
    std::printf("note: profiling run failed; search used unweighted "
                "structure-order prioritisation\n");
  }
  std::printf("final configuration: %.1f%% static / %.1f%% dynamic "
              "replacement, composition %s\n",
              res.stats.static_pct, res.stats.dynamic_pct,
              res.final_passed ? "PASSES" : "FAILS");
  if (res.refined) {
    std::printf("refined composition: %.1f%% static / %.1f%% dynamic, "
                "verified passing\n",
                res.refined_stats.static_pct, res.refined_stats.dynamic_pct);
  }

  const config::PrecisionConfig& best =
      (res.refined && !res.final_passed) ? res.refined_config
                                         : res.final_config;
  const std::string text = config::to_text(index, best);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << text;
    std::printf("configuration written to %s\n", out_path.c_str());
  } else {
    std::printf("\n%s", text.c_str());
  }
  return 0;
}
