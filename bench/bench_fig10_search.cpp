// Figure 10 reproduction: automatic mixed-precision search on the NAS
// benchmark analogues.
//
// Paper (Figure 10), per benchmark and class W/A: the number of replacement
// candidates, configurations tested (usually fewer than candidates -- the
// pruning works; SP is the exception), the percentage of instructions
// replaced statically (37-95%), the percentage of executions replaced
// dynamically, and whether the final composed configuration passes.
#include <cstdio>

#include "bench_util.hpp"
#include "search/search.hpp"

int main(int argc, char** argv) {
  using namespace fpmix;
  // `--fast` restricts to class W for quick runs.
  const bool fast = argc > 1 && std::string_view(argv[1]) == "--fast";

  std::printf("Figure 10: automatic search results on NAS analogues\n");
  std::printf("(paper: candidates 397..6682, tested < candidates except sp, "
              "static 37-95%%, final mostly pass)\n\n");
  std::printf("%-8s %10s %8s %8s %9s %8s\n", "bench", "candidates", "tested",
              "static", "dynamic", "final");
  bench::print_rule(60);

  struct Row {
    const char* name;
    kernels::Workload (*make)(char);
  };
  const auto mk = [](kernels::Workload (*f)(char, int)) {
    return f;
  };
  (void)mk;

  std::vector<kernels::Workload> workloads;
  for (char cls : {'W', 'A'}) {
    if (fast && cls == 'A') break;
    workloads.push_back(kernels::make_bt(cls));
    workloads.push_back(kernels::make_cg(cls));
    workloads.push_back(kernels::make_ep(cls));
    workloads.push_back(kernels::make_ft(cls));
    workloads.push_back(kernels::make_lu(cls));
    workloads.push_back(kernels::make_mg(cls));
    workloads.push_back(kernels::make_sp(cls));
  }

  for (const kernels::Workload& w : workloads) {
    const program::Image img = kernels::build_image(w);
    auto ix = config::StructureIndex::build(program::lift(img));
    const auto verifier = kernels::make_verifier(w, img);
    search::SearchOptions opts;
    opts.keep_log = false;
    Timer t;
    const search::SearchResult res =
        search::run_search(img, &ix, *verifier, opts);
    std::printf("%-8s %10zu %8zu %7.1f%% %8.1f%% %8s   (%.1fs)\n",
                w.name.c_str(), res.candidates, res.configs_tested,
                res.stats.static_pct, res.stats.dynamic_pct,
                res.final_passed ? "pass" : "fail", t.elapsed_seconds());
    std::fflush(stdout);
  }
  return 0;
}
