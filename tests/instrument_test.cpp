// End-to-end tests of the paper's core mechanism: snippet generation,
// basic-block patching, binary rewriting, and the in-place replaced-double
// representation.
//
// The key properties verified here mirror Section 3.1 of the paper:
//  - all-double instrumentation is semantics-preserving bit-for-bit;
//  - all-single instrumentation produces outputs bit-identical to a manual
//    single-precision version of the computation;
//  - mixed configurations upcast/downcast at the precision boundary;
//  - values that escape the instrumentation crash loudly.
#include <gtest/gtest.h>

#include <cmath>

#include "asm/assembler.hpp"
#include "config/textio.hpp"
#include "instrument/patch.hpp"
#include "program/layout.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace fpmix::instrument {
namespace {

using arch::Opcode;
using arch::Operand;
using config::Precision;
using config::PrecisionConfig;
using config::StructureIndex;
namespace in = arch::intrinsics;

struct TestBinary {
  program::Image image;       // original
  program::Program lifted;
  StructureIndex index;
};

TestBinary prepare(casm::Assembler& a, std::string_view entry) {
  TestBinary tb{program::relayout(a.finish(entry)), {}, {}};
  tb.lifted = program::lift(tb.image);
  tb.index = StructureIndex::build(tb.lifted);
  return tb;
}

std::vector<double> run(const program::Image& img,
                        vm::RunResult* result_out = nullptr) {
  vm::Machine m(img);
  const vm::RunResult r = m.run();
  if (result_out != nullptr) *result_out = r;
  else EXPECT_TRUE(r.ok()) << r.trap_message;
  return m.output_f64();
}

// y = ((a + b) * c - d) / e with values loaded from data, plus a sqrt.
casm::Assembler chain_program(double a, double b, double c, double d,
                              double e) {
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto la = as.data_f64(a), lb = as.data_f64(b), lc = as.data_f64(c);
  const auto ld = as.data_f64(d), le = as.data_f64(e);
  const auto mem = [](std::uint64_t x) {
    return Operand::mem_abs(static_cast<std::int32_t>(x));
  };
  as.emit(Opcode::kMovsdXM, Operand::xmm(2), mem(la));
  as.emit(Opcode::kMovsdXM, Operand::xmm(3), mem(lb));
  as.emit(Opcode::kAddsd, Operand::xmm(2), Operand::xmm(3));
  as.emit(Opcode::kMulsd, Operand::xmm(2), mem(lc));   // memory operand form
  as.emit(Opcode::kMovsdXM, Operand::xmm(4), mem(ld));
  as.emit(Opcode::kSubsd, Operand::xmm(2), Operand::xmm(4));
  as.emit(Opcode::kDivsd, Operand::xmm(2), mem(le));
  as.emit(Opcode::kSqrtsd, Operand::xmm(5), Operand::xmm(2));
  as.emit(Opcode::kMovsdXX, Operand::xmm(0), Operand::xmm(2));
  as.intrin(in::Id::kOutputF64);
  as.emit(Opcode::kMovsdXX, Operand::xmm(0), Operand::xmm(5));
  as.intrin(in::Id::kOutputF64);
  as.halt();
  as.end_function();
  return as;
}

TEST(Instrument, AllDoubleIsBitIdentical) {
  casm::Assembler as = chain_program(1.1, 2.7, 3.9, 0.4, 1.7);
  TestBinary tb = prepare(as, "main");
  const std::vector<double> orig = run(tb.image);

  InstrumentStats stats;
  const PrecisionConfig cfg;  // all double
  const program::Image patched =
      instrument_image(tb.image, tb.index, cfg, &stats);
  const std::vector<double> got = run(patched);

  ASSERT_EQ(got.size(), orig.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(orig[i]));
  }
  EXPECT_GT(stats.wrapped, 0u);
  EXPECT_EQ(stats.replaced_single, 0u);
  EXPECT_GT(patched.code.size(), tb.image.code.size());
}

TEST(Instrument, AllSingleMatchesManualConversion) {
  const double a = 1.1, b = 2.7, c = 3.9, d = 0.4, e = 1.7;
  casm::Assembler as = chain_program(a, b, c, d, e);
  TestBinary tb = prepare(as, "main");

  PrecisionConfig cfg;
  for (std::size_t m = 0; m < tb.index.modules().size(); ++m) {
    cfg.set_module(m, Precision::kSingle);
  }
  InstrumentStats stats;
  const program::Image patched =
      instrument_image(tb.image, tb.index, cfg, &stats);
  const std::vector<double> got = run(patched);

  // Manual single-precision twin of the computation.
  const float fa = static_cast<float>(a), fb = static_cast<float>(b),
              fc = static_cast<float>(c), fd = static_cast<float>(d),
              fe = static_cast<float>(e);
  float t = fa + fb;
  t = t * fc;
  t = t - fd;
  t = t / fe;
  const float s = std::sqrt(t);

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got[0]),
            std::bit_cast<std::uint64_t>(static_cast<double>(t)));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got[1]),
            std::bit_cast<std::uint64_t>(static_cast<double>(s)));
  EXPECT_EQ(stats.replaced_single, 5u);  // add, mul, sub, div, sqrt
}

TEST(Instrument, MixedConfigDowncastsAtBoundary) {
  const double a = 1.1, b = 2.7, c = 3.9, d = 0.4, e = 1.7;
  casm::Assembler as = chain_program(a, b, c, d, e);
  TestBinary tb = prepare(as, "main");

  // Map only the addsd to single; everything downstream is double.
  PrecisionConfig cfg;
  std::size_t addsd_id = SIZE_MAX;
  for (std::size_t i : tb.index.candidates()) {
    if (tb.index.instrs()[i].instr.op == Opcode::kAddsd) addsd_id = i;
  }
  ASSERT_NE(addsd_id, SIZE_MAX);
  cfg.set_instr(addsd_id, Precision::kSingle);
  const program::Image patched = instrument_image(tb.image, tb.index, cfg);
  const std::vector<double> got = run(patched);

  const double t0 = static_cast<double>(
      static_cast<float>(a) + static_cast<float>(b));  // narrowed add
  double t = t0 * c;
  t = t - d;
  t = t / e;
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got[0]),
            std::bit_cast<std::uint64_t>(t));
  EXPECT_EQ(got[1], std::sqrt(t));
}

TEST(Instrument, PackedAllSingleMatchesManualConversion) {
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto pa = as.data_f64(1.0 / 3.0);
  as.data_f64(2.0 / 3.0);
  const auto pb = as.data_f64(5.0 / 7.0);
  as.data_f64(11.0 / 13.0);
  const auto mem = [](std::uint64_t x) {
    return Operand::mem_abs(static_cast<std::int32_t>(x));
  };
  as.emit(Opcode::kMovapdXM, Operand::xmm(1), mem(pa));
  as.emit(Opcode::kMulpd, Operand::xmm(1), mem(pb));   // packed, mem operand
  as.emit(Opcode::kAddpd, Operand::xmm(1), Operand::xmm(1));
  const auto tmp = as.reserve_bss(16, 16);
  as.emit(Opcode::kMovapdMX, mem(tmp), Operand::xmm(1));
  as.emit(Opcode::kMovsdXM, Operand::xmm(0), mem(tmp));
  as.intrin(in::Id::kOutputF64);
  as.emit(Opcode::kMovsdXM, Operand::xmm(0), mem(tmp + 8));
  as.intrin(in::Id::kOutputF64);
  as.halt();
  as.end_function();
  TestBinary tb = prepare(as, "main");

  PrecisionConfig cfg;
  cfg.set_module(0, Precision::kSingle);
  const program::Image patched = instrument_image(tb.image, tb.index, cfg);
  const std::vector<double> got = run(patched);

  const float a0 = static_cast<float>(1.0 / 3.0);
  const float a1 = static_cast<float>(2.0 / 3.0);
  const float b0 = static_cast<float>(5.0 / 7.0);
  const float b1 = static_cast<float>(11.0 / 13.0);
  const float m0 = a0 * b0, m1 = a1 * b1;
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], static_cast<double>(m0 + m0));
  EXPECT_EQ(got[1], static_cast<double>(m1 + m1));
}

TEST(Instrument, MaxLoopAllPrecisions) {
  // Proper max-finding loop using indexed addressing.
  const double vals[6] = {0.5, 9.25, -3.0, 7.5, 2.0, 8.124};
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto base = as.data_f64(vals[0]);
  for (int i = 1; i < 6; ++i) as.data_f64(vals[i]);
  as.emit(Opcode::kMov, Operand::gpr(3),
          Operand::make_imm(static_cast<std::int64_t>(base)));
  as.emit(Opcode::kMovsdXM, Operand::xmm(2), Operand::mem_bd(3, 0));
  as.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(1));
  auto loop = as.new_label();
  auto skip = as.new_label();
  auto done = as.new_label();
  as.bind(loop);
  as.emit(Opcode::kCmp, Operand::gpr(2), Operand::make_imm(6));
  as.jge(done);
  as.emit(Opcode::kMovsdXM, Operand::xmm(3),
          Operand::mem_bisd(3, 2, 8, 0));
  as.emit(Opcode::kUcomisd, Operand::xmm(3), Operand::xmm(2));
  as.jbe(skip);
  as.emit(Opcode::kMovsdXX, Operand::xmm(2), Operand::xmm(3));
  as.bind(skip);
  as.emit(Opcode::kAdd, Operand::gpr(2), Operand::make_imm(1));
  as.jmp(loop);
  as.bind(done);
  as.emit(Opcode::kMovsdXX, Operand::xmm(0), Operand::xmm(2));
  as.intrin(in::Id::kOutputF64);
  as.halt();
  as.end_function();
  TestBinary tb = prepare(as, "main");

  const std::vector<double> orig = run(tb.image);
  ASSERT_EQ(orig.size(), 1u);
  EXPECT_EQ(orig[0], 9.25);

  {
    const PrecisionConfig cfg;
    const std::vector<double> got =
        run(instrument_image(tb.image, tb.index, cfg));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 9.25);
  }
  {
    PrecisionConfig cfg;
    cfg.set_module(0, Precision::kSingle);
    const std::vector<double> got =
        run(instrument_image(tb.image, tb.index, cfg));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], static_cast<double>(9.25f));
  }
}

TEST(Instrument, IntrinsicSingleTwinViaConfig) {
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto x = as.data_f64(0.625);
  as.emit(Opcode::kMovsdXM, Operand::xmm(0),
          Operand::mem_abs(static_cast<std::int32_t>(x)));
  as.intrin(in::Id::kSin);
  as.intrin(in::Id::kOutputF64);
  as.halt();
  as.end_function();
  TestBinary tb = prepare(as, "main");

  PrecisionConfig cfg;
  cfg.set_module(0, Precision::kSingle);
  const std::vector<double> got =
      run(instrument_image(tb.image, tb.index, cfg));
  ASSERT_EQ(got.size(), 1u);
  const float expect =
      static_cast<float>(std::sin(static_cast<double>(0.625f)));
  EXPECT_EQ(got[0], static_cast<double>(expect));
}

TEST(Instrument, IgnoredInstructionEscapesAndTraps) {
  // Map the producer to single but flag the consumer `ignore`: the consumer
  // then sees the tagged slot and the machine traps -- the paper's
  // "anything that our analysis misses causes a crash" property.
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto x = as.data_f64(1.5);
  as.emit(Opcode::kMovsdXM, Operand::xmm(2),
          Operand::mem_abs(static_cast<std::int32_t>(x)));
  as.emit(Opcode::kAddsd, Operand::xmm(2), Operand::xmm(2));  // -> single
  as.emit(Opcode::kMulsd, Operand::xmm(2), Operand::xmm(2));  // -> ignore
  as.emit(Opcode::kMovsdXX, Operand::xmm(0), Operand::xmm(2));
  as.intrin(in::Id::kOutputF64);
  as.halt();
  as.end_function();
  TestBinary tb = prepare(as, "main");

  PrecisionConfig cfg;
  std::size_t add_id = SIZE_MAX, mul_id = SIZE_MAX;
  for (std::size_t i : tb.index.candidates()) {
    if (tb.index.instrs()[i].instr.op == Opcode::kAddsd) add_id = i;
    if (tb.index.instrs()[i].instr.op == Opcode::kMulsd) mul_id = i;
  }
  cfg.set_instr(add_id, Precision::kSingle);
  cfg.set_instr(mul_id, Precision::kIgnore);

  const program::Image patched = instrument_image(tb.image, tb.index, cfg);
  vm::RunResult r;
  run(patched, &r);
  EXPECT_EQ(r.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(r.trap_message.find("replaced-double sentinel"),
            std::string::npos);
}

TEST(Instrument, ProvenanceMapsBackToOriginal) {
  casm::Assembler as = chain_program(1.0, 2.0, 3.0, 4.0, 5.0);
  TestBinary tb = prepare(as, "main");
  PrecisionConfig cfg;
  cfg.set_module(0, Precision::kSingle);
  const program::Image patched = instrument_image(tb.image, tb.index, cfg);

  // Every snippet instruction's origin must be an original address.
  EXPECT_FALSE(patched.origins.empty());
  for (const auto& e : patched.origins) {
    EXPECT_TRUE(tb.index.has_instr_at(e.origin))
        << "origin 0x" << std::hex << e.origin;
  }

  // Running the patched binary and aggregating by origin shows each
  // original FP instruction executing exactly once (straight-line program).
  vm::Machine m(patched);
  ASSERT_TRUE(m.run().ok());
  const auto prof = m.profile_by_origin();
  for (std::size_t i : tb.index.candidates()) {
    const std::uint64_t addr = tb.index.instrs()[i].addr;
    ASSERT_TRUE(prof.contains(addr));
    EXPECT_GE(prof.at(addr), 1u);
  }
}

TEST(Instrument, StatsCountWrappedAndReplaced) {
  casm::Assembler as = chain_program(1.0, 2.0, 3.0, 4.0, 5.0);
  TestBinary tb = prepare(as, "main");
  PrecisionConfig cfg;
  // 5 arithmetic candidates (add, mul, sub, div, sqrt); wrap also counts
  // the two output_f64 intrinsics.
  cfg.set_module(0, Precision::kSingle);
  InstrumentStats stats;
  instrument_image(tb.image, tb.index, cfg, &stats);
  EXPECT_EQ(stats.replaced_single, 5u);
  EXPECT_EQ(stats.wrapped, 7u);
  EXPECT_EQ(stats.ignored, 0u);
  EXPECT_GT(stats.snippet_instrs, stats.wrapped * 4);
}

TEST(Instrument, FlagLivenessViolationIsRejected) {
  // ucomisd ... addsd ... jcc: flags are live across the addsd.
  casm::Assembler as;
  as.begin_function("main", "main");
  auto out = as.new_label();
  as.emit(Opcode::kUcomisd, Operand::xmm(0), Operand::xmm(1));
  as.emit(Opcode::kAddsd, Operand::xmm(2), Operand::xmm(3));
  as.jbe(out);
  as.emit(Opcode::kNop);
  as.bind(out);
  as.halt();
  as.end_function();
  TestBinary tb = prepare(as, "main");
  const PrecisionConfig cfg;
  EXPECT_THROW(instrument_image(tb.image, tb.index, cfg), ProgramError);
}

TEST(Snippet, NeedsSnippetClassification) {
  using config::Precision;
  const auto addsd =
      arch::make2(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(1));
  const auto cvtsi =
      arch::make2(Opcode::kCvtsi2sd, Operand::xmm(0), Operand::gpr(1));
  const auto movsd =
      arch::make2(Opcode::kMovsdXM, Operand::xmm(0), Operand::mem_bd(1, 0));
  EXPECT_TRUE(needs_snippet(addsd, Precision::kDouble));
  EXPECT_TRUE(needs_snippet(addsd, Precision::kSingle));
  EXPECT_FALSE(needs_snippet(addsd, Precision::kIgnore));
  // cvtsi2sd reads no f64: wrap only when narrowing.
  EXPECT_FALSE(needs_snippet(cvtsi, Precision::kDouble));
  EXPECT_TRUE(needs_snippet(cvtsi, Precision::kSingle));
  // moves are never wrapped.
  EXPECT_FALSE(needs_snippet(movsd, Precision::kDouble));
  EXPECT_FALSE(needs_snippet(movsd, Precision::kSingle));
}

TEST(Snippet, ChainShapeMatchesFigure6) {
  // Single-precision reg-reg addsd: push/push, two check chains, the addss,
  // the retag, pop/pop.
  const auto addsd =
      arch::make2(Opcode::kAddsd, Operand::xmm(2), Operand::xmm(3));
  const SnippetChain chain =
      build_snippet(addsd, config::Precision::kSingle);
  ASSERT_GE(chain.blocks.size(), 5u);  // two skip branches -> 5 blocks
  // It must contain exactly one addss and no addsd.
  std::size_t addss = 0, addsd_count = 0, cvt = 0;
  for (const auto& b : chain.blocks) {
    for (const auto& i : b.instrs) {
      if (i.op == Opcode::kAddss) ++addss;
      if (i.op == Opcode::kAddsd) ++addsd_count;
      if (i.op == Opcode::kCvtsd2ss) ++cvt;
    }
  }
  EXPECT_EQ(addss, 1u);
  EXPECT_EQ(addsd_count, 0u);
  EXPECT_EQ(cvt, 2u);  // one potential downcast per input
}

TEST(Instrument, MovedOnlyValuesKeepDoublePrecision) {
  // The instrumenter replaces instructions, not data: a constant that flows
  // through moves alone (no arithmetic) legitimately retains its double
  // precision under an all-single configuration. This is inherent to the
  // paper's instruction-granular design; values that reach any FP operation
  // are narrowed there (see the fuzz-test property).
  casm::Assembler as;
  as.begin_function("main", "main");
  const auto c = as.data_f64(1.0 / 3.0);
  as.emit(Opcode::kMovsdXM, Operand::xmm(0),
          Operand::mem_abs(static_cast<std::int32_t>(c)));
  as.intrin(in::Id::kOutputF64);  // moved straight to output
  as.emit(Opcode::kMovsdXM, Operand::xmm(2),
          Operand::mem_abs(static_cast<std::int32_t>(c)));
  as.emit(Opcode::kMulsd, Operand::xmm(2), Operand::xmm(2));  // computed
  as.emit(Opcode::kMovsdXX, Operand::xmm(0), Operand::xmm(2));
  as.intrin(in::Id::kOutputF64);
  as.halt();
  as.end_function();
  TestBinary tb = prepare(as, "main");
  PrecisionConfig cfg;
  cfg.set_module(0, Precision::kSingle);
  const std::vector<double> got =
      run(instrument_image(tb.image, tb.index, cfg));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1.0 / 3.0);  // moved only: stays double
  const float f = static_cast<float>(1.0 / 3.0);
  EXPECT_EQ(got[1], static_cast<double>(f * f));  // computed: narrowed
}

TEST(Snippet, ScratchRegisterConflictRejected) {
  const auto bad = arch::make2(Opcode::kCvttsd2si, Operand::gpr(0),
                               Operand::xmm(1));
  EXPECT_THROW(build_snippet(bad, config::Precision::kDouble), ProgramError);
}

}  // namespace
}  // namespace fpmix::instrument
