#include "program/program.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "arch/encode.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::program {

const Function* Program::find_function(std::string_view name) const {
  for (const Function& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

FuncIndex Program::find_function_index(std::string_view name) const {
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return static_cast<FuncIndex>(i);
  }
  return kNoIndex;
}

std::vector<std::string> Program::module_names() const {
  std::vector<std::string> out;
  for (const Function& f : functions) {
    if (std::find(out.begin(), out.end(), f.module) == out.end()) {
      out.push_back(f.module);
    }
  }
  return out;
}

void Program::validate() const {
  if (functions.empty()) throw ProgramError("program has no functions");
  if (entry_function < 0 ||
      entry_function >= static_cast<FuncIndex>(functions.size())) {
    throw ProgramError("entry function index out of range");
  }
  for (const Function& f : functions) {
    if (f.blocks.empty()) {
      throw ProgramError(strformat("function %s has no blocks",
                                   f.name.c_str()));
    }
    const auto nblocks = static_cast<BlockIndex>(f.blocks.size());
    for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
      const BasicBlock& b = f.blocks[bi];
      const auto bad_edge = [&](BlockIndex e) {
        return e != kNoIndex && (e < 0 || e >= nblocks);
      };
      if (bad_edge(b.taken) || bad_edge(b.fallthrough)) {
        throw ProgramError(strformat("function %s block %zu has an edge out "
                                     "of range", f.name.c_str(), bi));
      }
      if (b.ends_with_branch()) {
        if (b.taken == kNoIndex) {
          throw ProgramError(strformat(
              "function %s block %zu ends with a branch but has no taken "
              "edge", f.name.c_str(), bi));
        }
        if (b.instrs.back().src.imm != b.taken) {
          throw ProgramError(strformat(
              "function %s block %zu: branch imm disagrees with taken edge",
              f.name.c_str(), bi));
        }
        if (b.ends_with_cond_branch() && b.fallthrough == kNoIndex) {
          throw ProgramError(strformat(
              "function %s block %zu: conditional branch without "
              "fall-through", f.name.c_str(), bi));
        }
      } else if (b.ends_with_stop()) {
        if (b.taken != kNoIndex || b.fallthrough != kNoIndex) {
          throw ProgramError(strformat(
              "function %s block %zu: ret/halt block has successors",
              f.name.c_str(), bi));
        }
      } else if (b.fallthrough == kNoIndex) {
        throw ProgramError(strformat(
            "function %s block %zu falls off the end of the function",
            f.name.c_str(), bi));
      }
      for (const arch::Instr& ins : b.instrs) {
        if (arch::opcode_info(ins.op).is_call) {
          const auto callee = static_cast<FuncIndex>(ins.src.imm);
          if (callee < 0 ||
              callee >= static_cast<FuncIndex>(functions.size())) {
            throw ProgramError(strformat(
                "function %s: call target index %d out of range",
                f.name.c_str(), callee));
          }
        }
      }
    }
  }
}

Program lift(const Image& image) {
  image.validate();
  Program prog;
  prog.code_base = image.code_base;
  prog.data_base = image.data_base;
  prog.data = image.data;
  prog.bss_base = image.bss_base;
  prog.bss_size = image.bss_size;
  prog.memory_size = image.memory_size;

  // Map from function entry address to its index, for call rewriting.
  std::map<std::uint64_t, FuncIndex> func_by_addr;
  for (std::size_t i = 0; i < image.symbols.size(); ++i) {
    func_by_addr[image.symbols[i].addr] = static_cast<FuncIndex>(i);
  }

  for (const Symbol& sym : image.symbols) {
    Function fn;
    fn.name = sym.name;
    fn.module = sym.module;
    fn.orig_addr = sym.addr;

    // Decode the whole function body.
    std::vector<arch::Instr> instrs =
        arch::decode_all(image.function_bytes(sym), sym.addr);
    if (instrs.empty()) {
      throw ProgramError(strformat("function %s is empty", sym.name.c_str()));
    }

    std::set<std::uint64_t> starts;
    for (const arch::Instr& ins : instrs) starts.insert(ins.addr);

    // Leader analysis: function entry, branch targets, instruction after a
    // block-ending instruction.
    std::set<std::uint64_t> leaders;
    leaders.insert(sym.addr);
    const std::uint64_t func_end = sym.addr + sym.size;
    for (const arch::Instr& ins : instrs) {
      const auto& info = arch::opcode_info(ins.op);
      if (info.is_branch) {
        const auto target = static_cast<std::uint64_t>(ins.src.imm);
        if (target < sym.addr || target >= func_end) {
          throw ProgramError(strformat(
              "function %s: branch at 0x%llx targets 0x%llx outside the "
              "function", sym.name.c_str(),
              static_cast<unsigned long long>(ins.addr),
              static_cast<unsigned long long>(target)));
        }
        if (!starts.contains(target)) {
          throw ProgramError(strformat(
              "function %s: branch targets mid-instruction address 0x%llx",
              sym.name.c_str(), static_cast<unsigned long long>(target)));
        }
        leaders.insert(target);
      }
      if (arch::ends_basic_block(ins.op)) {
        const std::uint64_t next = ins.addr + ins.size;
        if (next < func_end) leaders.insert(next);
      }
    }

    // Partition instructions into blocks at leaders.
    std::map<std::uint64_t, BlockIndex> block_of_addr;  // leader -> index
    for (std::uint64_t leader : leaders) {
      block_of_addr[leader] = static_cast<BlockIndex>(block_of_addr.size());
    }
    fn.blocks.resize(leaders.size());
    BlockIndex cur = kNoIndex;
    for (const arch::Instr& ins : instrs) {
      auto it = block_of_addr.find(ins.addr);
      if (it != block_of_addr.end()) cur = it->second;
      FPMIX_CHECK(cur != kNoIndex);
      BasicBlock& blk = fn.blocks[static_cast<std::size_t>(cur)];
      if (blk.instrs.empty()) blk.orig_addr = ins.addr;
      blk.instrs.push_back(ins);
    }

    // Edges + branch/call operand rewriting (absolute -> symbolic).
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      BasicBlock& blk = fn.blocks[bi];
      FPMIX_CHECK(!blk.instrs.empty());
      for (arch::Instr& ins : blk.instrs) {
        if (arch::opcode_info(ins.op).is_call) {
          const auto target = static_cast<std::uint64_t>(ins.src.imm);
          auto it = func_by_addr.find(target);
          if (it == func_by_addr.end()) {
            throw ProgramError(strformat(
                "function %s: call at 0x%llx targets 0x%llx which is not a "
                "function entry", sym.name.c_str(),
                static_cast<unsigned long long>(ins.addr),
                static_cast<unsigned long long>(target)));
          }
          ins.src.imm = it->second;
        }
      }
      arch::Instr& last = blk.instrs.back();
      const auto& info = arch::opcode_info(last.op);
      const std::uint64_t next_addr = last.addr + last.size;
      if (info.is_branch) {
        const auto target = static_cast<std::uint64_t>(last.src.imm);
        blk.taken = block_of_addr.at(target);
        last.src.imm = blk.taken;
        if (info.is_cond_branch) {
          FPMIX_CHECK(next_addr < func_end);
          blk.fallthrough = block_of_addr.at(next_addr);
        }
      } else if (info.is_ret || info.is_halt) {
        // no successors
      } else {
        if (next_addr >= func_end) {
          throw ProgramError(strformat(
              "function %s falls off its end at 0x%llx", sym.name.c_str(),
              static_cast<unsigned long long>(next_addr)));
        }
        blk.fallthrough = block_of_addr.at(next_addr);
      }
    }

    prog.functions.push_back(std::move(fn));
  }

  const Symbol* entry_sym = image.find_function_at(image.entry);
  FPMIX_CHECK(entry_sym != nullptr);
  if (image.entry != entry_sym->addr) {
    throw ProgramError("entry point is not a function entry");
  }
  prog.entry_function = prog.find_function_index(entry_sym->name);
  prog.validate();
  return prog;
}

}  // namespace fpmix::program
