// Matrix-free 5-point multigrid (stencil form).
//
// The CSR-based V-cycle in csr.hpp spends most of its bandwidth on column
// indices, which caps the double->single speedup near 1.3x. Production
// multigrid smoothers (including the AMG microkernel's structured phases)
// stream pure floating-point arrays, where halving the element size halves
// the memory traffic -- this stencil twin exists to measure that regime for
// the Section 3.2 speedup comparison (bench_amg).
//
// Grids are (m+2)^2 padded arrays with a zero Dirichlet ring; m must be
// (2^k - 1) so levels nest by m -> (m-1)/2.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace fpmix::linalg {

template <typename T>
class StencilMg {
 public:
  explicit StencilMg(std::size_t m) {
    std::size_t cur = m;
    while (true) {
      FPMIX_CHECK(cur >= 3);
      ms_.push_back(cur);
      const std::size_t side = cur + 2;
      u_.emplace_back(side * side, T(0));
      f_.emplace_back(side * side, T(0));
      r_.emplace_back(side * side, T(0));
      tmp_.emplace_back(side * side, T(0));
      if (cur == 3 || cur % 2 == 0) break;
      cur = (cur - 1) / 2;
    }
  }

  std::size_t m() const { return ms_.front(); }
  std::size_t padded_size() const {
    return (ms_.front() + 2) * (ms_.front() + 2);
  }

  /// Runs `cycles` V-cycles for A u = f with zero initial guess; `f` is the
  /// padded right-hand side. Returns the final residual 2-norm and leaves
  /// the solution in `u_fine()`.
  double solve(const std::vector<T>& f_padded, std::size_t cycles,
               std::size_t pre_sweeps = 2, std::size_t post_sweeps = 1) {
    FPMIX_CHECK(f_padded.size() == padded_size());
    f_[0] = f_padded;
    std::fill(u_[0].begin(), u_[0].end(), T(0));
    for (std::size_t c = 0; c < cycles; ++c) {
      vcycle(0, pre_sweeps, post_sweeps);
    }
    residual(0);
    double acc = 0;
    for (const T v : r_[0]) acc += double(v) * double(v);
    return std::sqrt(acc);
  }

  const std::vector<T>& u_fine() const { return u_[0]; }

 private:
  std::size_t side(std::size_t l) const { return ms_[l] + 2; }

  /// Weighted Jacobi, sweep into tmp then swap (pure streaming loads).
  void smooth(std::size_t l, std::size_t sweeps) {
    const std::size_t mm = ms_[l];
    const std::size_t s = side(l);
    std::vector<T>& u = u_[l];
    std::vector<T>& t = tmp_[l];
    const T w = T(0.8), quarter = T(0.25);
    for (std::size_t k = 0; k < sweeps; ++k) {
      for (std::size_t i = 1; i <= mm; ++i) {
        const std::size_t row = i * s;
        for (std::size_t j = 1; j <= mm; ++j) {
          const std::size_t id = row + j;
          const T gs = (f_[l][id] + u[id - 1] + u[id + 1] + u[id - s] +
                        u[id + s]) *
                       quarter;
          t[id] = u[id] + w * (gs - u[id]);
        }
      }
      u.swap(t);
    }
  }

  void residual(std::size_t l) {
    const std::size_t mm = ms_[l];
    const std::size_t s = side(l);
    const std::vector<T>& u = u_[l];
    for (std::size_t i = 1; i <= mm; ++i) {
      const std::size_t row = i * s;
      for (std::size_t j = 1; j <= mm; ++j) {
        const std::size_t id = row + j;
        r_[l][id] = f_[l][id] - (T(4) * u[id] - u[id - 1] - u[id + 1] -
                                 u[id - s] - u[id + s]);
      }
    }
  }

  void restrict_to(std::size_t l) {
    const std::size_t mc = ms_[l + 1];
    const std::size_t sc = side(l + 1);
    const std::size_t sf = side(l);
    std::fill(u_[l + 1].begin(), u_[l + 1].end(), T(0));
    for (std::size_t ic = 1; ic <= mc; ++ic) {
      for (std::size_t jc = 1; jc <= mc; ++jc) {
        const std::size_t idf = (2 * ic) * sf + 2 * jc;
        // Full weighting, scaled by 4 (the unscaled stencil absorbs h^2).
        f_[l + 1][ic * sc + jc] =
            T(1) * r_[l][idf] +
            T(0.5) * (r_[l][idf - 1] + r_[l][idf + 1] + r_[l][idf - sf] +
                      r_[l][idf + sf]) +
            T(0.25) * (r_[l][idf - sf - 1] + r_[l][idf - sf + 1] +
                       r_[l][idf + sf - 1] + r_[l][idf + sf + 1]);
      }
    }
  }

  void prolong_from(std::size_t l) {
    const std::size_t mc = ms_[l + 1];
    const std::size_t sc = side(l + 1);
    const std::size_t sf = side(l);
    std::vector<T>& uf = u_[l];
    for (std::size_t ic = 1; ic <= mc; ++ic) {
      for (std::size_t jc = 1; jc <= mc; ++jc) {
        const T v = u_[l + 1][ic * sc + jc];
        const std::size_t idf = (2 * ic) * sf + 2 * jc;
        uf[idf] += v;
        uf[idf - 1] += T(0.5) * v;
        uf[idf + 1] += T(0.5) * v;
        uf[idf - sf] += T(0.5) * v;
        uf[idf + sf] += T(0.5) * v;
        uf[idf - sf - 1] += T(0.25) * v;
        uf[idf - sf + 1] += T(0.25) * v;
        uf[idf + sf - 1] += T(0.25) * v;
        uf[idf + sf + 1] += T(0.25) * v;
      }
    }
  }

  void vcycle(std::size_t l, std::size_t pre, std::size_t post) {
    if (l + 1 == ms_.size()) {
      smooth(l, 32);
      return;
    }
    smooth(l, pre);
    residual(l);
    restrict_to(l);
    vcycle(l + 1, pre, post);
    prolong_from(l);
    smooth(l, post);
  }

  std::vector<std::size_t> ms_;
  std::vector<std::vector<T>> u_, f_, r_, tmp_;
};

}  // namespace fpmix::linalg
