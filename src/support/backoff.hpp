// Jittered exponential backoff, shared by every retry loop in the tree.
//
// Two consumers need the same policy with different state shapes: the
// WorkerPool's respawn throttle already tracks consecutive deaths itself
// (the counter doubles as its crash-storm detector), while the network
// scheduler's reconnect loop wants a self-contained counter per endpoint.
// So the policy + delay computation is a pure function -- exactly unit-
// testable -- and a small stateful wrapper serves callers without their
// own counter.
//
// Jitter matters here: a fleet of schedulers reconnecting to a restarted
// runner daemon (or N pool slots respawning after an injected crash storm)
// must not retry in lockstep. The jitter draw is deterministic from the
// caller-provided RNG stream, so tests replay identically.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace fpmix {

struct BackoffPolicy {
  /// Delay after the first failure, in milliseconds.
  std::uint64_t base_ms = 2;
  /// Hard ceiling; delays (jitter included) never exceed it.
  std::uint64_t cap_ms = 200;
  /// Fractional jitter: the computed delay is scaled by a uniform factor
  /// in [1 - jitter, 1 + jitter], then clamped to [1, cap_ms].
  double jitter = 0.25;
};

/// Delay before retry number `failures` (1-based; 0 means "no failure yet"
/// and returns 0). The un-jittered envelope is base_ms doubling per failure
/// up to cap_ms; `jitter_draw` is one raw u64 of entropy (e.g.
/// SplitMix64::next_u64) that selects the jitter factor. The result is
/// always in [1, cap_ms] for failures >= 1.
std::uint64_t backoff_delay_ms(const BackoffPolicy& policy,
                               std::uint32_t failures,
                               std::uint64_t jitter_draw);

/// Stateful convenience wrapper: next() counts a failure and returns the
/// delay to sleep; reset() on success. Deterministic for a given seed.
class Backoff {
 public:
  Backoff() : Backoff(BackoffPolicy{}) {}
  explicit Backoff(const BackoffPolicy& policy, std::uint64_t seed = 0)
      : policy_(policy), rng_(seed) {}

  std::uint64_t next_ms() {
    ++failures_;
    return backoff_delay_ms(policy_, failures_, rng_.next_u64());
  }
  void reset() { failures_ = 0; }
  std::uint32_t failures() const { return failures_; }
  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  SplitMix64 rng_;
  std::uint32_t failures_ = 0;
};

}  // namespace fpmix
