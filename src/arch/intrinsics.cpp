#include "arch/intrinsics.hpp"

#include "support/error.hpp"

namespace fpmix::arch::intrinsics {
namespace {

constexpr IntrinInfo kInfo[] = {
    // name            f64args  f64res  f32 twin
    {"sin",            1,       true,   Id::kSinF32},
    {"cos",            1,       true,   Id::kCosF32},
    {"tan",            1,       true,   Id::kTanF32},
    {"exp",            1,       true,   Id::kExpF32},
    {"log",            1,       true,   Id::kLogF32},
    {"pow",            2,       true,   Id::kPowF32},
    {"floor",          1,       true,   Id::kFloorF32},
    {"ceil",           1,       true,   Id::kCeilF32},
    {"fabs",           1,       true,   Id::kFabsF32},
    {"sinf",           0,       false,  Id::kSinF32},
    {"cosf",           0,       false,  Id::kCosF32},
    {"tanf",           0,       false,  Id::kTanF32},
    {"expf",           0,       false,  Id::kExpF32},
    {"logf",           0,       false,  Id::kLogF32},
    {"powf",           0,       false,  Id::kPowF32},
    {"floorf",         0,       false,  Id::kFloorF32},
    {"ceilf",          0,       false,  Id::kCeilF32},
    {"fabsf",          0,       false,  Id::kFabsF32},
    {"output_f64",     1,       false,  Id::kOutputF64},
    {"output_i64",     0,       false,  Id::kOutputI64},
    {"print_f64",      1,       false,  Id::kPrintF64},
    {"print_i64",      0,       false,  Id::kPrintI64},
    {"print_str",      0,       false,  Id::kPrintStr},
    {"mpi_rank",       0,       false,  Id::kMpiRank},
    {"mpi_size",       0,       false,  Id::kMpiSize},
    {"mpi_barrier",    0,       false,  Id::kMpiBarrier},
    {"mpi_allreduce",  1,       true,   Id::kMpiAllreduceSum},
    {"mpi_allreduce_max", 1,    true,   Id::kMpiAllreduceMax},
    {"mpi_allreduce_vec", 0,    false,  Id::kMpiAllreduceVec},
};

static_assert(sizeof(kInfo) / sizeof(kInfo[0]) ==
                  static_cast<std::size_t>(Id::kNumIntrinsics),
              "every intrinsic must have an IntrinInfo row");

}  // namespace

const IntrinInfo& intrin_info(Id id) {
  FPMIX_CHECK(id < Id::kNumIntrinsics);
  return kInfo[static_cast<std::size_t>(id)];
}

const char* intrin_name(Id id) { return intrin_info(id).name; }

bool intrin_touches_fp(Id id) {
  const IntrinInfo& info = intrin_info(id);
  return info.num_f64_args > 0 || info.has_f64_result;
}

bool intrin_has_f32_twin(Id id) {
  return intrin_info(id).f32_twin != id && intrin_info(id).num_f64_args > 0;
}

}  // namespace fpmix::arch::intrinsics
