# Empty compiler generated dependencies file for fpmix_kernels.
# This may be replaced when dependencies are built.
