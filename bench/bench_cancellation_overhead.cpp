// Related-work overhead comparison (Sections 3.1 + 4.4).
//
// Paper: "these overheads are two orders of magnitude below those reported
// by the runtime cancellation detection tool [Benz et al.] mentioned in the
// related work section, which range from 160X to over 1000X."
//
// We instrument the same binaries two ways -- mixed-precision snippets
// (all-double) and the cancellation detector with shadow-value maintenance
// -- and compare the overheads, plus report the cancellation findings
// themselves (the analysis is a real tool, not just ballast).
#include <cstdio>

#include "bench_util.hpp"
#include "instrument/cancellation.hpp"

int main() {
  using namespace fpmix;
  std::printf("Related-work comparison: mixed-precision snippets vs "
              "cancellation detection\n");
  std::printf("(paper: snippets < 20X; cancellation tools 160X..1000X)\n\n");
  std::printf("%-8s %10s %12s %12s %10s %12s\n", "bench", "precision",
              "cancel", "cancel-lite", "events", "hottest site");
  std::printf("%-8s %10s %12s %12s\n", "", "ovh", "ovh", "ovh");
  bench::print_rule(72);

  for (char cls : {'W'}) {
    std::vector<kernels::Workload> ws = {
        kernels::make_ep(cls), kernels::make_cg(cls), kernels::make_ft(cls),
        kernels::make_mg(cls)};
    for (const kernels::Workload& w : ws) {
      const program::Image orig = kernels::build_image(w);
      const bench::TimedRun ro = bench::run_timed(orig);

      // Mixed-precision analysis overhead (all-double wrapping).
      const program::Image inst = bench::all_double_instrumented(orig);
      const bench::TimedRun ri = bench::run_timed(inst);

      // Cancellation detector with shadow maintenance (the Benz-style
      // heavyweight analysis) and without it (the WHIST'11 detector).
      instrument::CancellationOptions heavy;
      heavy.shadow_iters = 384;
      const instrument::CancellationResult heavy_inst =
          instrument::instrument_cancellation(orig, heavy);
      vm::Machine heavy_m(heavy_inst.image);
      Timer theavy;
      const vm::RunResult heavy_r = heavy_m.run();
      const double heavy_secs = theavy.elapsed_seconds();
      (void)heavy_secs;
      if (!heavy_r.ok()) {
        std::printf("%-8s cancellation run failed: %s\n", w.name.c_str(),
                    heavy_r.trap_message.c_str());
        continue;
      }
      const instrument::CancellationReport rep =
          instrument::read_cancellation_report(heavy_m, heavy_inst.layout);

      instrument::CancellationOptions lite;
      lite.shadow_iters = 0;
      const instrument::CancellationResult lite_inst =
          instrument::instrument_cancellation(orig, lite);
      vm::Machine lite_m(lite_inst.image);
      const vm::RunResult lite_r = lite_m.run();
      if (!lite_r.ok()) {
        std::printf("%-8s lite cancellation run failed: %s\n",
                    w.name.c_str(), lite_r.trap_message.c_str());
        continue;
      }

      std::uint64_t hottest = 0, hottest_count = 0;
      for (const auto& [addr, count] : rep.events_by_addr) {
        if (count > hottest_count) {
          hottest_count = count;
          hottest = addr;
        }
      }
      std::printf("%-8s %9.1fX %11.1fX %11.1fX %10llu 0x%llx(%llu)\n",
                  w.name.c_str(),
                  double(ri.instructions) / double(ro.instructions),
                  double(heavy_m.instructions_retired()) /
                      double(ro.instructions),
                  double(lite_m.instructions_retired()) /
                      double(ro.instructions),
                  static_cast<unsigned long long>(rep.total_events),
                  static_cast<unsigned long long>(hottest),
                  static_cast<unsigned long long>(hottest_count));
      std::fflush(stdout);
    }
  }
  return 0;
}
