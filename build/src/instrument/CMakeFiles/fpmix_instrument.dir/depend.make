# Empty dependencies file for fpmix_instrument.
# This may be replaced when dependencies are built.
