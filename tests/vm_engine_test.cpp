// Differential testing of the VM execution engines.
//
// The micro-op engine (Engine::kMicroOp) and the JIT engine (Engine::kJit,
// on hosts that support it) must be observationally indistinguishable from
// the reference switch interpreter (Engine::kSwitch): bit-identical
// outputs, identical trap status and message, identical retired counts and
// identical per-address profiles -- on clean runs, on every trap class (tag
// escape, division, out-of-bounds, budget), and on instrumented images. A
// shared ExecutableImage must also behave identically from many Machines
// across threads.
//
// The JIT additionally gets engine-specific coverage: chunked supervision
// (deadline + fault injection re-enter compiled code mid-run), and the
// incremental path (a warm-cache re-JIT of a delta trial must behave
// bit-identically to a cold compile of the same image).
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <functional>
#include <limits>
#include <thread>

#include "arch/encode.hpp"
#include "arch/tag.hpp"
#include "asm/assembler.hpp"
#include "config/config.hpp"
#include "instrument/incremental.hpp"
#include "instrument/patch.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "vm/jit/jit.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

struct EngineOut {
  vm::RunResult result;
  std::vector<double> f64;
  std::vector<std::int64_t> i64;
  std::uint64_t retired = 0;
  std::map<std::uint64_t, std::uint64_t> profile;
};

EngineOut run_engine(const std::shared_ptr<const vm::ExecutableImage>& exec,
                     vm::Engine engine, vm::Machine::Options opts) {
  opts.engine = engine;
  vm::Machine m(exec, opts);
  EngineOut o;
  o.result = m.run();
  o.f64 = m.output_f64();
  o.i64 = m.output_i64();
  o.retired = m.instructions_retired();
  o.profile = m.profile_by_address();
  return o;
}

/// Demands `got` is observationally bit-identical to the reference run.
void expect_same(const EngineOut& got, const EngineOut& ref,
                 const std::string& what) {
  EXPECT_EQ(got.result.status, ref.result.status) << what;
  EXPECT_EQ(got.result.trap_message, ref.result.trap_message) << what;
  EXPECT_EQ(got.result.sentinel_escape, ref.result.sentinel_escape) << what;
  EXPECT_EQ(got.retired, ref.retired) << what;

  ASSERT_EQ(got.f64.size(), ref.f64.size()) << what;
  for (std::size_t i = 0; i < ref.f64.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.f64[i]),
              std::bit_cast<std::uint64_t>(ref.f64[i]))
        << what << " f64 output " << i;
  }
  EXPECT_EQ(got.i64, ref.i64) << what;
  EXPECT_EQ(got.profile, ref.profile) << what;
}

/// Runs `img` on every engine this host supports (sharing one predecoded
/// image) and demands bit-identical observable behaviour.
void expect_engines_identical(const program::Image& img,
                              vm::Machine::Options opts = {},
                              const char* what = "") {
  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut ref = run_engine(exec, vm::Engine::kSwitch, opts);
  expect_same(run_engine(exec, vm::Engine::kMicroOp, opts), ref,
              std::string(what) + " [microop]");
  if (vm::jit::jit_supported()) {
    expect_same(run_engine(exec, vm::Engine::kJit, opts), ref,
                std::string(what) + " [jit]");
  }
}

// ---------------------------------------------------------------------------
// Fuzzed mini-language programs, original and instrumented.

/// Random type-correct program: scalar pool + one array, mutated by loops,
/// conditionals, arithmetic chains and math intrinsics (the same shape the
/// instrumentation fuzz test uses).
lang::ProgramModel random_model(std::uint64_t seed) {
  SplitMix64 rng(seed);
  lang::Builder b;

  constexpr int kScalars = 5;
  std::vector<lang::Var> vars;
  for (int i = 0; i < kScalars; ++i) {
    vars.push_back(b.var_f64("v" + std::to_string(i)));
  }
  lang::Arr arr = b.array_f64("arr", 16);
  lang::Var idx = b.var_i64("idx");

  b.begin_func("main", "fuzz");
  for (int i = 0; i < kScalars; ++i) {
    b.set(vars[i], b.cf(rng.next_double(0.5, 3.0)));
  }
  b.for_(idx, b.ci(0), b.ci(16), [&] {
    b.store(arr, lang::Expr(idx),
            to_f64(idx) * b.cf(rng.next_double(0.01, 0.2)) + b.cf(1.0));
  });

  const auto rand_var = [&]() -> lang::Expr {
    return lang::Expr(vars[rng.next_below(kScalars)]);
  };
  const std::function<lang::Expr(int)> rand_expr = [&](int depth) {
    if (depth <= 0 || rng.next_below(3) == 0) {
      switch (rng.next_below(3)) {
        case 0: return rand_var();
        case 1: return b.cf(rng.next_double(0.25, 2.0));
        default: return arr[b.ci(static_cast<std::int64_t>(
            rng.next_below(16)))];
      }
    }
    const lang::Expr a = rand_expr(depth - 1);
    const lang::Expr c = rand_expr(depth - 1);
    switch (rng.next_below(7)) {
      case 0: return a + c;
      case 1: return a - c;
      case 2: return a * c;
      case 3: return a / (fabs_(c) + b.cf(1.0));
      case 4: return sqrt_(fabs_(a) + b.cf(0.5));
      case 5: return min_(a, c);
      default: return sin_(a);
    }
  };

  const int num_stmts = 6 + static_cast<int>(rng.next_below(8));
  for (int s = 0; s < num_stmts; ++s) {
    switch (rng.next_below(4)) {
      case 0:
        b.set(vars[rng.next_below(kScalars)], rand_expr(3));
        break;
      case 1:
        b.store(arr,
                b.ci(static_cast<std::int64_t>(rng.next_below(16))),
                rand_expr(2));
        break;
      case 2: {
        const auto body_var = rng.next_below(kScalars);
        lang::Var loop_i = b.var_i64("i" + std::to_string(s));
        const auto iters =
            static_cast<std::int64_t>(2 + rng.next_below(6));
        b.for_(loop_i, b.ci(0), b.ci(iters), [&] {
          b.set(vars[body_var],
                lang::Expr(vars[body_var]) * b.cf(0.75) + rand_expr(2));
        });
        break;
      }
      default: {
        const auto tgt = rng.next_below(kScalars);
        b.if_else(rand_expr(1) < rand_expr(1),
                  [&] { b.set(vars[tgt], rand_expr(2)); },
                  [&] { b.set(vars[tgt], rand_expr(2) + b.cf(0.125)); });
        break;
      }
    }
  }
  for (int i = 0; i < kScalars; ++i) {
    b.output(lang::Expr(vars[i]) * b.cf(1.0));
  }
  b.end_func();
  return b.take_model();
}

class EngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzz, EnginesBitIdenticalOnFuzzedPrograms) {
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed =
        0xE41E * static_cast<std::uint64_t>(GetParam() + 1) +
        static_cast<std::uint64_t>(trial);
    const lang::ProgramModel model = random_model(seed);
    const program::Image orig =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    expect_engines_identical(orig, {}, "original");

    // All-single instrumented build: exercises the cvt/ss handlers, the
    // snippet call/ret paths and (on analysis misses) the tag trap.
    const auto ix = config::StructureIndex::build(program::lift(orig));
    config::PrecisionConfig cfg;
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      cfg.set_module(m, config::Precision::kSingle);
    }
    const program::Image inst = instrument::instrument_image(orig, ix, cfg);
    expect_engines_identical(inst, {}, "instrumented");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Trap classes: the message, status and retired count must match exactly.

TEST(EngineDiff, TaggedEscapeTrapIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  expect_engines_identical(img, {}, "tagged escape");

  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut o = run_engine(exec, vm::Engine::kMicroOp, {});
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(o.result.trap_message.find("replaced-double sentinel"),
            std::string::npos);
}

TEST(EngineDiff, TagTrapDisabledIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const std::uint64_t boxed = arch::make_tagged(1.0f);
  a.emit(Opcode::kMov, Operand::gpr(1),
         Operand::make_imm(static_cast<std::int64_t>(boxed)));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  vm::Machine::Options opts;
  opts.tag_trap = false;
  expect_engines_identical(program::relayout(a.finish("main")), opts,
                           "tag trap disabled");
}

TEST(EngineDiff, DivisionTrapsIdentical) {
  for (const Opcode op : {Opcode::kIdiv, Opcode::kIrem}) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(7));
    a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(0));
    a.emit(op, Operand::gpr(1), Operand::gpr(2));
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             arch::opcode_name(op));
  }
}

TEST(EngineDiff, OutOfBoundsTrapsIdentical) {
  // Read and write, both far out of range.
  for (const bool is_store : {false, true}) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1),
           Operand::make_imm(1ll << 40));
    if (is_store) {
      a.emit(Opcode::kStore, Operand::mem_bd(1, 0), Operand::gpr(2));
    } else {
      a.emit(Opcode::kLoad, Operand::gpr(2), Operand::mem_bd(1, 0));
    }
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             is_store ? "oob store" : "oob load");
  }
}

TEST(EngineDiff, BudgetExhaustionIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  auto l = a.new_label();
  a.bind(l);
  a.emit(Opcode::kNop);
  a.jmp(l);
  a.end_function();
  vm::Machine::Options opts;
  opts.max_instructions = 10'000;
  expect_engines_identical(program::relayout(a.finish("main")), opts,
                           "budget");
}

TEST(EngineDiff, RangeTrapIdentical) {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto huge = a.data_f64(1e300);
  a.emit(Opcode::kMovsdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(huge)));
  a.emit(Opcode::kCvttsd2si, Operand::gpr(1), Operand::xmm(0));
  a.halt();
  a.end_function();
  expect_engines_identical(program::relayout(a.finish("main")), {},
                           "cvttsd2si range");
}

TEST(EngineDiff, DivisionEdgeCasesIdentical) {
  // Quotient/remainder edges through both operand forms: the JIT lowers
  // idiv/irem natively (cqo+idiv with explicit guards), so INT64_MIN/-1
  // and /0 must produce the interpreter's trap -- not the hardware #DE --
  // with the same message and retired count.
  constexpr std::int64_t kMin = INT64_MIN;
  constexpr std::int64_t kMax = INT64_MAX;
  struct Case { std::int64_t a, b; };
  const Case cases[] = {{7, 3},    {-7, 3},  {7, -3},   {-7, -3},
                        {kMin, 1}, {kMax, -1}, {kMin, -1}, {42, 0},
                        {kMin, 0}, {0, -1}};
  for (const Opcode op : {Opcode::kIdiv, Opcode::kIrem}) {
    for (const bool reg_form : {true, false}) {
      for (const Case& c : cases) {
        casm::Assembler a;
        a.begin_function("main", "main");
        a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(c.a));
        if (reg_form) {
          a.emit(Opcode::kMov, Operand::gpr(2), Operand::make_imm(c.b));
          a.emit(op, Operand::gpr(1), Operand::gpr(2));
        } else {
          a.emit(op, Operand::gpr(1), Operand::make_imm(c.b));
        }
        a.intrin(in::Id::kOutputI64);  // reads gpr1
        a.halt();
        a.end_function();
        expect_engines_identical(
            program::relayout(a.finish("main")), {},
            (std::string(arch::opcode_name(op)) +
             (reg_form ? " rr " : " ri ") + std::to_string(c.a) + "/" +
             std::to_string(c.b))
                .c_str());
      }
    }
  }
}

TEST(EngineDiff, TruncationBoundariesIdentical) {
  // cvttsd2si / cvttss2si around the interpreter's +-9.2e18 guard band,
  // plus NaN (the !(a<x && a>y) form traps on NaN). Each value runs as one
  // program: in-range values publish the truncated integer, out-of-range
  // values must trap with the same message on every engine.
  const double f64_cases[] = {0.5,    -0.5,    9.19e18, -9.19e18, 9.3e18,
                              -9.3e18, 9.2e18, -9.2e18,
                              std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity()};
  for (const double v : f64_cases) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1),
           Operand::make_imm(static_cast<std::int64_t>(
               std::bit_cast<std::uint64_t>(v))));
    a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
    a.emit(Opcode::kCvttsd2si, Operand::gpr(1), Operand::xmm(0));
    a.intrin(in::Id::kOutputI64);
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             ("cvttsd2si " + std::to_string(v)).c_str());
  }
  const float f32_cases[] = {3.7f, -3.7f, 9.1e18f, -9.1e18f, 9.3e18f,
                             std::numeric_limits<float>::quiet_NaN(),
                             -std::numeric_limits<float>::infinity()};
  for (const float v : f32_cases) {
    casm::Assembler a;
    a.begin_function("main", "main");
    a.emit(Opcode::kMov, Operand::gpr(1),
           Operand::make_imm(static_cast<std::int64_t>(
               std::bit_cast<std::uint32_t>(v))));
    a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
    a.emit(Opcode::kCvttss2si, Operand::gpr(1), Operand::xmm(0));
    a.intrin(in::Id::kOutputI64);
    a.halt();
    a.end_function();
    expect_engines_identical(program::relayout(a.finish("main")), {},
                             ("cvttss2si " + std::to_string(v)).c_str());
  }
}

namespace {

/// Publishes both 64-bit halves of an xmm register through scratch memory
/// (kMovapdMX then two integer loads), so packed-lane tests observe every
/// bit of the 128-bit result.
void output_xmm128(casm::Assembler& a, int xmm, std::int32_t scratch) {
  a.emit(Opcode::kMovapdMX, Operand::mem_abs(scratch), Operand::xmm(xmm));
  a.emit(Opcode::kLoad, Operand::gpr(1), Operand::mem_abs(scratch));
  a.intrin(in::Id::kOutputI64);
  a.emit(Opcode::kLoad, Operand::gpr(1), Operand::mem_abs(scratch + 8));
  a.intrin(in::Id::kOutputI64);
}

}  // namespace

TEST(EngineDiff, PackedLanesIdentical) {
  // Packed pd/ps arithmetic and 128-bit bitwise ops, register and memory
  // source forms, including dst==src aliasing. Both lanes of every result
  // are published, so a lane swap or upper-lane corruption in the JIT's
  // SSE lowering cannot hide.
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto d0 = a.data_f64(1.5);
  const auto d1 = a.data_f64(-2.25);
  a.data_f64(0.875);       // second lane of the 128-bit load at d1
  const auto scratch = static_cast<std::int32_t>(a.data_i64(0));
  a.data_i64(0);           // second half of the 16-byte scratch area

  a.emit(Opcode::kMovapdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(d0)));
  a.emit(Opcode::kMovapdXM, Operand::xmm(1),
         Operand::mem_abs(static_cast<std::int32_t>(d1)));
  for (const Opcode op : {Opcode::kAddpd, Opcode::kSubpd, Opcode::kMulpd,
                          Opcode::kDivpd}) {
    a.emit(Opcode::kMovapdXX, Operand::xmm(2), Operand::xmm(0));
    a.emit(op, Operand::xmm(2), Operand::xmm(1));          // reg src
    output_xmm128(a, 2, scratch);
    a.emit(Opcode::kMovapdXX, Operand::xmm(3), Operand::xmm(0));
    a.emit(op, Operand::xmm(3),
           Operand::mem_abs(static_cast<std::int32_t>(d1)));  // mem src
    output_xmm128(a, 3, scratch);
  }
  a.emit(Opcode::kMovapdXX, Operand::xmm(4), Operand::xmm(1));
  a.emit(Opcode::kMulpd, Operand::xmm(4), Operand::xmm(4));  // aliased
  a.emit(Opcode::kSqrtpd, Operand::xmm(5), Operand::xmm(4));
  output_xmm128(a, 5, scratch);

  // ps: four f32 lanes per op.
  for (const Opcode op : {Opcode::kAddps, Opcode::kSubps, Opcode::kMulps,
                          Opcode::kDivps}) {
    a.emit(Opcode::kMovapdXX, Operand::xmm(6), Operand::xmm(0));
    a.emit(op, Operand::xmm(6), Operand::xmm(1));
    output_xmm128(a, 6, scratch);
  }
  a.emit(Opcode::kMovapdXX, Operand::xmm(7), Operand::xmm(1));
  a.emit(Opcode::kMulps, Operand::xmm(7), Operand::xmm(7));
  a.emit(Opcode::kSqrtps, Operand::xmm(8), Operand::xmm(7));
  output_xmm128(a, 8, scratch);

  // 128-bit bitwise, reg and mem forms.
  for (const Opcode op : {Opcode::kAndpd, Opcode::kOrpd, Opcode::kXorpd}) {
    a.emit(Opcode::kMovapdXX, Operand::xmm(9), Operand::xmm(0));
    a.emit(op, Operand::xmm(9), Operand::xmm(1));
    output_xmm128(a, 9, scratch);
    a.emit(Opcode::kMovapdXX, Operand::xmm(10), Operand::xmm(0));
    a.emit(op, Operand::xmm(10),
           Operand::mem_abs(static_cast<std::int32_t>(d1)));
    output_xmm128(a, 10, scratch);
  }
  a.emit(Opcode::kXorpd, Operand::xmm(0), Operand::xmm(0));  // aliased zero
  output_xmm128(a, 0, scratch);
  a.halt();
  a.end_function();
  expect_engines_identical(program::relayout(a.finish("main")), {},
                           "packed lanes");
}

TEST(EngineDiff, PackedTagInLaneTrapsIdentical) {
  // A replaced-double sentinel in lane 1 only: packed arithmetic reads both
  // lanes, so the tag trap must fire with the same diagnostic even though
  // lane 0 is clean. Exercises the per-lane tag checks of the JIT's packed
  // lowering.
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto d0 = a.data_f64(1.0);
  a.data_i64(static_cast<std::int64_t>(arch::make_tagged(2.0f)));  // lane 1
  a.emit(Opcode::kMovapdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(d0)));
  a.emit(Opcode::kAddpd, Operand::xmm(0), Operand::xmm(0));
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  expect_engines_identical(img, {}, "tag in packed lane");

  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut o = run_engine(exec, vm::Engine::kMicroOp, {});
  EXPECT_EQ(o.result.status, vm::RunResult::Status::kTrapped);
  EXPECT_TRUE(o.result.sentinel_escape);
}

TEST(EngineDiff, RegisterPressureSpillBlocksIdentical) {
  // One long straight-line block touching more guest registers than the
  // allocator has promotion hosts (3 gprs, 12 xmms): the block must spill
  // and reload correctly, and a budget stop inside it must resume with
  // bit-identical state. Every register is published at the end.
  casm::Assembler a;
  a.begin_function("main", "main");
  for (int r = 1; r <= 10; ++r) {
    a.emit(Opcode::kMov, Operand::gpr(static_cast<std::uint8_t>(r)),
           Operand::make_imm(1000 + 17 * r));
  }
  for (int x = 0; x < 14; ++x) {
    a.emit(Opcode::kMov, Operand::gpr(11),
           Operand::make_imm(static_cast<std::int64_t>(
               std::bit_cast<std::uint64_t>(0.5 + 0.25 * x))));
    a.emit(Opcode::kMovqXR, Operand::xmm(static_cast<std::uint8_t>(x)),
           Operand::gpr(11));
  }
  // Interleaved arithmetic: many live values, repeated uses of each.
  for (int round = 0; round < 4; ++round) {
    for (int r = 1; r <= 10; ++r) {
      a.emit(Opcode::kAdd, Operand::gpr(static_cast<std::uint8_t>(r)),
             Operand::gpr(static_cast<std::uint8_t>(1 + (r % 10))));
    }
    for (int x = 0; x < 14; ++x) {
      a.emit(Opcode::kAddsd, Operand::xmm(static_cast<std::uint8_t>(x)),
             Operand::xmm(static_cast<std::uint8_t>((x + 3) % 14)));
    }
  }
  for (int r = 1; r <= 10; ++r) {
    a.emit(Opcode::kMov, Operand::gpr(12),
           Operand::gpr(static_cast<std::uint8_t>(r)));
    a.emit(Opcode::kMov, Operand::gpr(1), Operand::gpr(12));
    a.intrin(in::Id::kOutputI64);
  }
  for (int x = 0; x < 14; ++x) {
    a.emit(Opcode::kMovsdXX, Operand::xmm(0),
           Operand::xmm(static_cast<std::uint8_t>(x)));
    a.intrin(in::Id::kOutputF64);
  }
  a.halt();
  a.end_function();
  const program::Image img = program::relayout(a.finish("main"));
  expect_engines_identical(img, {}, "register pressure");

  // Budget stops inside the block: retired counts and register state must
  // match wherever the stop lands (the JIT's batched budget guards hand the
  // tail to the interpreter at an arbitrary interior instruction).
  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut full = run_engine(exec, vm::Engine::kSwitch, {});
  ASSERT_TRUE(full.result.ok());
  for (const std::uint64_t budget :
       {std::uint64_t{1}, std::uint64_t{2}, full.retired / 3,
        full.retired / 2, full.retired - 1}) {
    vm::Machine::Options opts;
    opts.max_instructions = budget;
    expect_engines_identical(img, opts,
                             ("pressure budget " + std::to_string(budget)).c_str());
  }
}

TEST(EngineDiff, BudgetBoundarySweepOnFuzzedProgram) {
  // Sweeps the instruction budget across a fuzzed program so stops land on
  // covered-run interiors, fused compare+branch pairs and intrinsic calls.
  // The JIT exits via its near-budget stub and finishes on the interpreter;
  // the observable state must stay bit-identical at every boundary.
  const lang::ProgramModel model = random_model(0xB0DE7);
  const program::Image img =
      program::relayout(lang::compile(model, lang::Mode::kDouble));
  const auto exec = vm::ExecutableImage::build(img);
  const EngineOut full = run_engine(exec, vm::Engine::kSwitch, {});
  ASSERT_TRUE(full.result.ok());
  ASSERT_GT(full.retired, 64u);
  for (std::uint64_t budget = full.retired - 9; budget <= full.retired;
       ++budget) {
    vm::Machine::Options opts;
    opts.max_instructions = budget;
    expect_engines_identical(img, opts,
                             ("budget " + std::to_string(budget)).c_str());
  }
  for (const std::uint64_t budget :
       {full.retired / 7, full.retired / 3, full.retired / 2}) {
    vm::Machine::Options opts;
    opts.max_instructions = budget;
    expect_engines_identical(img, opts,
                             ("budget " + std::to_string(budget)).c_str());
  }
}

// ---------------------------------------------------------------------------
// Shared predecoded images.

TEST(SharedExecImage, ManyMachinesAcrossThreads) {
  const lang::ProgramModel model = random_model(0x5EED);
  const program::Image img =
      program::relayout(lang::compile(model, lang::Mode::kDouble));
  const auto exec = vm::ExecutableImage::build(img);

  vm::Machine reference(exec);
  EXPECT_EQ(reference.executable().get(), exec.get());
  const vm::RunResult ref_run = reference.run();
  ASSERT_TRUE(ref_run.ok()) << ref_run.trap_message;
  const std::vector<double> want = reference.output_f64();

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&exec, &got, i] {
      vm::Machine m(exec, {});
      if (m.run().ok()) got[static_cast<std::size_t>(i)] = m.output_f64();
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)].size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[static_cast<std::size_t>(
                    i)][j]),
                std::bit_cast<std::uint64_t>(want[j]));
    }
  }
}

// ---------------------------------------------------------------------------
// JIT engine specifics. Every test degrades to a skip on hosts where the JIT
// is unavailable (non-x86-64, sanitizer builds, hardened kernels); the
// downgrade path itself is exercised by the engine tests above, which run
// kJit through the public Options and rely on the automatic fallback.

#define FPMIX_REQUIRE_JIT()                                            \
  if (!vm::jit::jit_supported()) {                                     \
    GTEST_SKIP() << "jit unavailable: " << vm::jit::jit_unsupported_reason(); \
  }

/// A program that never halts: spins on FP work so deadline supervision has
/// something to interrupt mid-chunk.
program::Image endless_fp_loop() {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(0x3FF0000000000000));
  a.emit(Opcode::kMovqXR, Operand::xmm(0), Operand::gpr(1));
  auto l = a.new_label();
  a.bind(l);
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.emit(Opcode::kMulsd, Operand::xmm(0), Operand::xmm(0));
  a.jmp(l);
  a.end_function();
  return program::relayout(a.finish("main"));
}

TEST(JitEngine, DeadlineInterruptsCompiledCodeMidRun) {
  FPMIX_REQUIRE_JIT();
  vm::Machine::Options opts;
  opts.engine = vm::Engine::kJit;
  opts.tag_trap = false;  // the loop overflows to inf; only time stops it
  opts.deadline_ns = 50ull * 1000 * 1000;
  opts.deadline_check_interval = 1 << 14;  // many chunk re-entries
  vm::Machine m(endless_fp_loop(), opts);
  const vm::RunResult r = m.run();
  EXPECT_EQ(r.status, vm::RunResult::Status::kDeadline);
  // The machine really executed compiled chunks before the clock fired.
  EXPECT_GT(r.instructions_retired, 1u << 14);
}

TEST(JitEngine, ChunkedSupervisionIsBitIdenticalAcrossEngines) {
  // A huge deadline forces the supervised chunking path on every engine
  // without ever firing: results must stay bit-identical to the unchunked
  // runs, proving the JIT resumes exactly from pc_/retired_ mid-program.
  for (int seed = 0; seed < 3; ++seed) {
    const lang::ProgramModel model =
        random_model(0xC41F + static_cast<std::uint64_t>(seed));
    vm::Machine::Options opts;
    opts.deadline_ns = 3'600ull * 1000 * 1000 * 1000;
    opts.deadline_check_interval = 64;  // tiny chunks: many JIT re-entries
    expect_engines_identical(
        program::relayout(lang::compile(model, lang::Mode::kDouble)), opts,
        "chunked");
  }
}

TEST(JitEngine, InjectedFaultsFireIdenticallyInCompiledCode) {
  // Sentinel and bit-flip faults mutate machine state between chunks; the
  // compiled code reads the same arrays, so the fault must be consumed at
  // the same instruction with the same diagnostic on all engines.
  for (const auto kind : {fault::VmFault::kSentinel, fault::VmFault::kBitFlip,
                          fault::VmFault::kAbort}) {
    const lang::ProgramModel model = random_model(0xFA17);
    const program::Image img =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    fault::VmFaultSpec spec;
    spec.kind = kind;
    spec.at_retired = 300;
    spec.seed = 7;
    vm::Machine::Options opts;
    opts.fault = &spec;
    expect_engines_identical(img, opts, "vm fault");
  }
}

TEST(JitEngine, DeltaReJitIsBitIdenticalToColdCompile) {
  FPMIX_REQUIRE_JIT();
  // Two configs that differ in one module: the incremental patcher re-uses
  // every unchanged function's CodeSegment, so the second predecode's JIT
  // pass links mostly warm blobs (compiled while running the first trial).
  // The warm-linked image must behave bit-identically to a from-scratch
  // ExecutableImage::build + cold compile of the same bytes.
  const lang::ProgramModel model = random_model(0xDE17A);
  const program::Image orig =
      program::relayout(lang::compile(model, lang::Mode::kDouble));
  const auto ix = config::StructureIndex::build(program::lift(orig));
  instrument::IncrementalPatcher patcher(orig, ix);

  config::PrecisionConfig base;  // all-double baseline
  const auto exec_a = patcher.predecode(patcher.patch(base));
  vm::Machine::Options opts;
  opts.engine = vm::Engine::kJit;
  // Warm the blob caches of every shared segment.
  const EngineOut warm_a = run_engine(exec_a, vm::Engine::kJit, opts);

  config::PrecisionConfig delta;
  delta.set_module(0, config::Precision::kSingle);
  const auto exec_b = patcher.predecode(patcher.patch(delta));
  const EngineOut warm_b = run_engine(exec_b, vm::Engine::kJit, opts);

  // Cold reference: identical image bytes, fresh predecode, fresh JIT.
  const auto cold_exec =
      vm::ExecutableImage::build(instrument::instrument_image(orig, ix, delta));
  expect_same(warm_b, run_engine(cold_exec, vm::Engine::kJit, opts),
              "warm re-JIT vs cold compile");
  // And both must agree with the interpreter oracle.
  expect_same(warm_b, run_engine(cold_exec, vm::Engine::kSwitch, opts),
              "warm re-JIT vs switch oracle");
  (void)warm_a;
}

TEST(JitEngine, EnvScaledFuzzAcrossAllEngines) {
  // Deeper soak for CI: FPMIX_ENGINE_FUZZ_TRIALS scales the trial count
  // (default stays light for local runs). Every trial runs original and
  // all-single instrumented builds on all available engines.
  int trials = 6;
  if (const char* env = std::getenv("FPMIX_ENGINE_FUZZ_TRIALS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) trials = static_cast<int>(n);
  }
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 0x17F0 + static_cast<std::uint64_t>(t) * 131;
    const lang::ProgramModel model = random_model(seed);
    const program::Image orig =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    expect_engines_identical(orig, {}, "fuzz original");

    const auto ix = config::StructureIndex::build(program::lift(orig));
    config::PrecisionConfig cfg;
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      cfg.set_module(m, config::Precision::kSingle);
    }
    expect_engines_identical(instrument::instrument_image(orig, ix, cfg), {},
                             "fuzz instrumented");
  }
}

TEST(JitEngine, NoRegallocFallbackIsBitIdentical) {
  FPMIX_REQUIRE_JIT();
  // FPMIX_JIT_NO_REGALLOC=1 compiles every block against the pinned arrays
  // (no promotion, no fusion) -- the escape hatch and the CI fallback leg.
  // The flag is read per compile_stream call, so toggling it here affects
  // only the fresh images built inside the loop.
  ASSERT_EQ(setenv("FPMIX_JIT_NO_REGALLOC", "1", 1), 0);
  for (int seed = 0; seed < 3; ++seed) {
    const lang::ProgramModel model =
        random_model(0x90A1 + static_cast<std::uint64_t>(seed));
    const program::Image img =
        program::relayout(lang::compile(model, lang::Mode::kDouble));
    expect_engines_identical(img, {}, "no-regalloc");
    // Budget stops still hand tails to the interpreter correctly.
    vm::Machine::Options opts;
    opts.max_instructions = 500;
    expect_engines_identical(img, opts, "no-regalloc budget");
  }
  ASSERT_EQ(unsetenv("FPMIX_JIT_NO_REGALLOC"), 0);
}

}  // namespace
}  // namespace fpmix
