# Empty dependencies file for fpmix_search.
# This may be replaced when dependencies are built.
