# Empty dependencies file for fpmix_asm.
# This may be replaced when dependencies are built.
