// A decoded instruction.
#pragma once

#include <cstdint>

#include "arch/opcode.hpp"
#include "arch/operand.hpp"

namespace fpmix::arch {

/// Sentinel for "no address yet" (instructions built by the assembler or the
/// snippet compiler before layout).
inline constexpr std::uint64_t kNoAddr = ~0ull;

struct Instr {
  Opcode op = Opcode::kNop;
  Operand dst;  // first operand; read and/or written depending on opcode
  Operand src;  // second operand; immediates, branch targets, intrinsic ids

  // Filled by the decoder / layout engine:
  std::uint64_t addr = kNoAddr;  // address of first byte in its image
  std::uint32_t size = 0;        // encoded size in bytes

  // Provenance: address of the *original* program instruction this one
  // derives from. For instructions of an unmodified image this equals
  // `addr`; for snippet instructions inserted by the instrumenter it is the
  // address of the replaced original instruction, so profiles of patched
  // programs can be mapped back onto the original binary (the dynamic
  // replacement percentages of Figure 10 rely on this).
  std::uint64_t origin = kNoAddr;

  friend bool operator==(const Instr& a, const Instr& b) {
    return a.op == b.op && a.dst == b.dst && a.src == b.src;
  }
};

/// Convenience builders (addresses filled in later by layout).
inline Instr make0(Opcode op) { return Instr{op, {}, {}, kNoAddr, 0, kNoAddr}; }
inline Instr make1(Opcode op, Operand dst) {
  return Instr{op, dst, {}, kNoAddr, 0, kNoAddr};
}
inline Instr make2(Opcode op, Operand dst, Operand src) {
  return Instr{op, dst, src, kNoAddr, 0, kNoAddr};
}

}  // namespace fpmix::arch
