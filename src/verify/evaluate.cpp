#include "verify/evaluate.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::verify {

EvalResult evaluate_config(const program::Image& original,
                           const config::StructureIndex& index,
                           const config::PrecisionConfig& cfg,
                           const Verifier& verifier,
                           const EvalOptions& options) {
  EvalResult result;
  const program::Image patched =
      instrument::instrument_image(original, index, cfg, &result.stats);

  vm::Machine::Options mopts;
  mopts.max_instructions = options.max_instructions;
  mopts.profile = options.profile;
  vm::Machine machine(patched, mopts);
  const vm::RunResult run = machine.run();
  result.run_status = run.status;
  result.instructions_retired = run.instructions_retired;
  result.outputs = machine.output_f64();

  if (!run.ok()) {
    result.passed = false;
    result.failure = run.trap_message.empty() ? "run failed"
                                              : run.trap_message;
    return result;
  }
  result.passed = verifier.verify(result.outputs);
  if (!result.passed) result.failure = "verification failed";
  return result;
}

std::vector<double> reference_outputs(const program::Image& original,
                                      std::uint64_t max_instructions) {
  vm::Machine::Options mopts;
  mopts.max_instructions = max_instructions;
  vm::Machine machine(original, mopts);
  const vm::RunResult run = machine.run();
  if (!run.ok()) {
    throw Error(strformat("reference run failed: %s",
                          run.trap_message.c_str()));
  }
  return machine.output_f64();
}

}  // namespace fpmix::verify
