#include "linalg/dense.hpp"

namespace fpmix::linalg {

template <typename T>
std::vector<std::size_t> lu_factor(Dense<T>* a) {
  FPMIX_CHECK(a != nullptr && a->rows() == a->cols());
  const std::size_t n = a->rows();
  std::vector<std::size_t> piv(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest |a[i][k]|, i >= k.
    std::size_t p = k;
    double best = std::fabs(double(a->at(k, k)));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(double(a->at(i, k)));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0) throw Error("lu_factor: singular matrix");
    piv[k] = p;
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a->at(k, j), a->at(p, j));
      }
    }
    const T pivot = a->at(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T m = a->at(i, k) / pivot;
      a->at(i, k) = m;
      for (std::size_t j = k + 1; j < n; ++j) {
        a->at(i, j) -= m * a->at(k, j);
      }
    }
  }
  return piv;
}

template <typename T>
std::vector<T> lu_solve(const Dense<T>& lu,
                        const std::vector<std::size_t>& piv,
                        const std::vector<T>& b) {
  const std::size_t n = lu.rows();
  FPMIX_CHECK(b.size() == n && piv.size() == n);
  std::vector<T> x = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (piv[k] != k) std::swap(x[k], x[piv[k]]);
  }
  // Ly = Pb (unit lower triangular).
  for (std::size_t i = 1; i < n; ++i) {
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu.at(i, j) * x[j];
    x[i] = acc;
  }
  // Ux = y.
  for (std::size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu.at(ii, j) * x[j];
    x[ii] = acc / lu.at(ii, ii);
  }
  return x;
}

template <typename T>
std::vector<T> dense_solve(const Dense<T>& a, const std::vector<T>& b) {
  Dense<T> lu = a;
  const std::vector<std::size_t> piv = lu_factor(&lu);
  return lu_solve(lu, piv, b);
}

template std::vector<std::size_t> lu_factor<double>(Dense<double>*);
template std::vector<std::size_t> lu_factor<float>(Dense<float>*);
template std::vector<double> lu_solve<double>(const Dense<double>&,
                                              const std::vector<std::size_t>&,
                                              const std::vector<double>&);
template std::vector<float> lu_solve<float>(const Dense<float>&,
                                            const std::vector<std::size_t>&,
                                            const std::vector<float>&);
template std::vector<double> dense_solve<double>(const Dense<double>&,
                                                 const std::vector<double>&);
template std::vector<float> dense_solve<float>(const Dense<float>&,
                                               const std::vector<float>&);

}  // namespace fpmix::linalg
