#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fpmix::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* prefix(Level level) {
  switch (level) {
    case Level::kDebug: return "[debug] ";
    case Level::kInfo: return "[info ] ";
    case Level::kWarn: return "[warn ] ";
    case Level::kError: return "[error] ";
    default: return "";
  }
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void vlogf(Level lvl, const char* fmt, std::va_list args) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fputs(prefix(lvl), stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

#define FPMIX_LOG_IMPL(name, lvl)              \
  void name(const char* fmt, ...) {            \
    std::va_list args;                         \
    va_start(args, fmt);                       \
    vlogf(lvl, fmt, args);                     \
    va_end(args);                              \
  }

FPMIX_LOG_IMPL(debugf, Level::kDebug)
FPMIX_LOG_IMPL(infof, Level::kInfo)
FPMIX_LOG_IMPL(warnf, Level::kWarn)
FPMIX_LOG_IMPL(errorf, Level::kError)

#undef FPMIX_LOG_IMPL

}  // namespace fpmix::log
