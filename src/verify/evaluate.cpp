#include "verify/evaluate.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "verify/trial_builder.hpp"

namespace fpmix::verify {

const char* failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kNone: return "none";
    case FailureClass::kTrap: return "trap";
    case FailureClass::kSentinelEscape: return "sentinel-escape";
    case FailureClass::kDivergence: return "divergence";
    case FailureClass::kTimeout: return "timeout";
    case FailureClass::kBudget: return "budget";
    case FailureClass::kInternalError: return "internal-error";
    case FailureClass::kCrash: return "crash";
    case FailureClass::kResource: return "resource";
  }
  return "unknown";
}

bool parse_failure_class(std::string_view name, FailureClass* out) {
  for (const FailureClass c :
       {FailureClass::kNone, FailureClass::kTrap,
        FailureClass::kSentinelEscape, FailureClass::kDivergence,
        FailureClass::kTimeout, FailureClass::kBudget,
        FailureClass::kInternalError, FailureClass::kCrash,
        FailureClass::kResource}) {
    if (name == failure_class_name(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

FailureClass classify_failure_message(std::string_view message) {
  if (message.empty()) return FailureClass::kNone;
  if (message.find("sentinel") != std::string_view::npos) {
    return FailureClass::kSentinelEscape;
  }
  if (message.find("worker") != std::string_view::npos ||
      message.find("crash") != std::string_view::npos) {
    return FailureClass::kCrash;
  }
  if (message.find("rlimit") != std::string_view::npos ||
      message.find("out of memory") != std::string_view::npos) {
    return FailureClass::kResource;
  }
  if (message.find("budget") != std::string_view::npos) {
    return FailureClass::kBudget;
  }
  if (message.find("deadline") != std::string_view::npos) {
    return FailureClass::kTimeout;
  }
  if (message.find("verification") != std::string_view::npos) {
    return FailureClass::kDivergence;
  }
  return FailureClass::kTrap;
}

namespace {

FailureClass classify_run(const vm::RunResult& run) {
  switch (run.status) {
    case vm::RunResult::Status::kHalted: return FailureClass::kNone;
    case vm::RunResult::Status::kTrapped:
      return run.sentinel_escape ? FailureClass::kSentinelEscape
                                 : FailureClass::kTrap;
    case vm::RunResult::Status::kOutOfBudget: return FailureClass::kBudget;
    case vm::RunResult::Status::kDeadline: return FailureClass::kTimeout;
  }
  return FailureClass::kInternalError;
}

}  // namespace

EvalResult evaluate_config(const program::Image& original,
                           const config::StructureIndex& index,
                           const config::PrecisionConfig& cfg,
                           const Verifier& verifier,
                           const EvalOptions& options) {
  EvalResult result;
  Timer timer;
  // Harness-side exceptions (a patcher bug, predecode running out of
  // memory, ...) are a trial outcome, not a search abort: the paper's
  // premise is that a failed trial is ordinary data.
  try {
    std::shared_ptr<const vm::ExecutableImage> exec;
    if (options.builder != nullptr) {
      TrialBuilder::Built built = options.builder->build(cfg);
      exec = std::move(built.exec);
      result.stats = built.stats;
      result.patch_ns = built.patch_ns;
      result.predecode_ns = built.predecode_ns;
      result.image_cache_hit = built.cache_hit;
      result.patch_saved_ns = built.patch_saved_ns;
      result.predecode_saved_ns = built.predecode_saved_ns;
      result.funcs_reused = built.funcs_reused;
      result.funcs_total = built.funcs_total;
    } else {
      program::Image patched =
          instrument::instrument_image(original, index, cfg, &result.stats);
      result.patch_ns = timer.elapsed_ns();

      timer.reset();
      exec = vm::ExecutableImage::build(std::move(patched));
      result.predecode_ns = timer.elapsed_ns();
    }

    vm::Machine::Options mopts;
    mopts.max_instructions = options.max_instructions;
    mopts.profile = options.profile;
    mopts.engine = options.engine;
    mopts.deadline_ns = options.deadline_ns;
    mopts.deadline_check_interval = options.deadline_check_interval;
    if (options.faults != nullptr &&
        options.faults->vm.kind != fault::VmFault::kNone) {
      mopts.fault = &options.faults->vm;
    }
    vm::Machine machine(exec, mopts);
    timer.reset();
    const vm::RunResult run = machine.run();
    result.run_ns = timer.elapsed_ns();
    result.run_status = run.status;
    result.instructions_retired = run.instructions_retired;
    result.outputs = machine.output_f64();

    if (!run.ok()) {
      result.passed = false;
      result.failure_class = classify_run(run);
      result.failure = run.trap_message.empty() ? "run failed"
                                                : run.trap_message;
      return result;
    }
    timer.reset();
    result.passed = verifier.verify(result.outputs);
    result.verify_ns = timer.elapsed_ns();
  } catch (const std::bad_alloc&) {
    // Memory exhaustion is a *resource* outcome, not a harness bug: under a
    // sandboxed worker's RLIMIT_AS a config whose patched image blows up the
    // heap lands here, and the supervisor treats it like a worker death
    // (retry, then quarantine) rather than a config verdict.
    result.passed = false;
    result.failure_class = FailureClass::kResource;
    result.failure = "out of memory (allocation failed)";
    return result;
  } catch (const std::exception& e) {
    result.passed = false;
    result.failure_class = FailureClass::kInternalError;
    result.failure = strformat("internal error: %s", e.what());
    return result;
  }
  if (options.faults != nullptr && options.faults->flip_verdict) {
    // Injected verifier flakiness: this attempt reports the opposite
    // verdict (exercises the retry / majority-vote policy upstream).
    result.passed = !result.passed;
  }
  if (!result.passed) {
    result.failure_class = FailureClass::kDivergence;
    result.failure = "verification failed";
  } else {
    result.failure_class = FailureClass::kNone;
    result.failure.clear();
  }
  return result;
}

std::vector<double> reference_outputs(const program::Image& original,
                                      std::uint64_t max_instructions) {
  vm::Machine::Options mopts;
  mopts.max_instructions = max_instructions;
  mopts.profile = false;  // only the outputs are consumed
  vm::Machine machine(original, mopts);
  const vm::RunResult run = machine.run();
  if (!run.ok()) {
    throw Error(strformat("reference run failed: %s",
                          run.trap_message.c_str()));
  }
  return machine.output_f64();
}

}  // namespace fpmix::verify
