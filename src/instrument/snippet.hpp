// The snippet mini-compiler (Section 2.3, Figure 6).
//
// For every floating-point instruction the patcher asks this module for a
// replacement snippet: a small chain of basic blocks that
//   1. saves the scratch registers it needs (push r0/r1, pushx xmm14/15),
//   2. hoists memory operands into a temporary XMM register (the paper does
//      this to avoid writing to unwritable memory and to sidestep
//      synchronization hazards),
//   3. tests each double-precision input for the 0x7FF4DEAD sentinel and
//      downcasts (single) or upcasts (double) it as required, writing
//      converted register operands back in place,
//   4. executes the operation -- rewritten to its single-precision twin when
//      the configuration maps the instruction to `single`,
//   5. boxes single-precision results back into tagged slots, and
//   6. restores scratch registers.
//
// Packed (two-lane) values are handled lane-wise through a stack spill,
// exactly mirroring the paper's treatment of 128-bit XMM data.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/instr.hpp"
#include "config/precision.hpp"
#include "program/program.hpp"

namespace fpmix::instrument {

/// A snippet: basic blocks whose taken/fallthrough edges are indices *local
/// to this chain*. The final block's fallthrough is kChainExit and is wired
/// to the continuation block by the patcher.
struct SnippetChain {
  static constexpr program::BlockIndex kChainExit = -2;
  std::vector<program::BasicBlock> blocks;

  std::size_t instruction_count() const {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.instrs.size();
    return n;
  }
};

/// Statically known boxed/plain state of an operand register, fed by the
/// patcher's intra-block dataflow (paper Section 2.5). kUnknown emits the
/// full Figure 6 check; kPlain/kTagged let the snippet skip or
/// strength-reduce the sentinel test.
enum class TagState : std::uint8_t { kUnknown, kPlain, kTagged };

/// Snippet-generation knobs (defaults reproduce the paper's design; the
/// non-default settings exist for the ablation benchmarks and the dataflow
/// optimization).
struct SnippetOptions {
  /// Test for the 0x7FF4DEAD sentinel before converting (Figure 6). With
  /// false, single-mapped inputs are downcast unconditionally: cheaper
  /// snippets, but a value that is *already* boxed gets re-converted as if
  /// its bit pattern were a double -- the ablation shows the check is
  /// load-bearing for correctness, not just for speed.
  bool check_tags = true;

  /// Dataflow facts for the instruction's register operands.
  TagState dst_state = TagState::kUnknown;
  TagState src_state = TagState::kUnknown;
};

/// True when `ins` must be replaced by a snippet under effective precision
/// `p` (false for ignore, for bit-preserving moves, and for double-mapped
/// instructions that read no f64 data).
bool needs_snippet(const arch::Instr& ins, config::Precision p);

/// Builds the snippet for `ins` under `p`. `p` must be kSingle only when the
/// instruction is a replacement candidate. Every emitted instruction carries
/// origin = ins.addr (or ins.origin when set) for provenance.
SnippetChain build_snippet(const arch::Instr& ins, config::Precision p,
                           const SnippetOptions& options = {});

}  // namespace fpmix::instrument
