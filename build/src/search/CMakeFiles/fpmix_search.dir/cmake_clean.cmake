file(REMOVE_RECURSE
  "CMakeFiles/fpmix_search.dir/search.cpp.o"
  "CMakeFiles/fpmix_search.dir/search.cpp.o.d"
  "libfpmix_search.a"
  "libfpmix_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
