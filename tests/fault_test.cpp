// Fault injection, trial supervision and the self-healing journal.
//
// Three layers are exercised here:
//  1. the primitives -- CRC32 sealing, the deterministic Injector, journal
//     sabotage helpers;
//  2. the VM supervision loop -- every fault kind fired through Machine on
//     both engines, and wall-clock deadline enforcement (a non-terminating
//     program must be stopped within 2x the deadline);
//  3. the search harness -- seeded fault campaigns driven through full
//     searches (the soak), asserting the search always terminates with a
//     composed configuration and that fault-free reruns stay byte-identical.
//
// The soak's campaign count defaults low for local runs and scales through
// the FPMIX_SOAK_CAMPAIGNS environment variable (CI sets 200).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "arch/encode.hpp"
#include "asm/assembler.hpp"
#include "config/textio.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "support/fault.hpp"
#include "support/journal.hpp"
#include "support/timer.hpp"
#include "verify/evaluate.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

using arch::Opcode;
using arch::Operand;
namespace in = arch::intrinsics;

// ---------------------------------------------------------------------------
// CRC32 and record sealing.

TEST(Crc32, KnownVectors) {
  // The standard reflected-CRC32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(Seal, RoundTripAndTamperDetection) {
  const std::string sealed = seal_record("{\"a\":1}", 7);
  EXPECT_NE(sealed.find("\"seq\":7"), std::string::npos);
  EXPECT_EQ(check_seal(sealed), SealCheck::kOk);

  // Damage anywhere in the line -- payload, seq, or the crc itself --
  // must be detected.
  for (std::size_t i = 0; i < sealed.size() - 2; ++i) {
    std::string dam = sealed;
    dam[i] = dam[i] == 'x' ? 'y' : 'x';
    EXPECT_NE(check_seal(dam), SealCheck::kOk) << "byte " << i;
  }

  EXPECT_EQ(check_seal("{\"a\":1}"), SealCheck::kUnsealed);
  EXPECT_EQ(check_seal(sealed.substr(0, sealed.size() - 3)),
            SealCheck::kCorrupt);
}

TEST(Seal, JournalAppendSealedNumbersSequentially) {
  const std::string path = testing::TempDir() + "seal_seq.jsonl";
  std::remove(path.c_str());
  {
    Journal j;
    ASSERT_TRUE(j.open(path));
    j.append_sealed("{\"n\":1}");
    j.append_sealed("{\"n\":2}");
  }
  const auto lines = Journal::read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(check_seal(lines[0]), SealCheck::kOk);
  EXPECT_EQ(check_seal(lines[1]), SealCheck::kOk);
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":2"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Deterministic injector.

TEST(Injector, PureFunctionOfSeedKeyAttempt) {
  fault::Injector::Rates rates;
  rates.abort = 0.2;
  rates.bitflip = 0.2;
  rates.sentinel = 0.2;
  rates.stall = 0.1;
  rates.flaky = 0.3;
  const fault::Injector a(0xC0FFEE, rates);
  const fault::Injector b(0xC0FFEE, rates);

  bool some_fault = false;
  bool attempts_differ = false;
  for (int k = 0; k < 64; ++k) {
    const std::string key = "trial-" + std::to_string(k);
    for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
      const fault::TrialFaults fa = a.for_trial(key, attempt);
      const fault::TrialFaults fb = b.for_trial(key, attempt);
      // Same campaign -> identical decisions, across injector instances.
      EXPECT_EQ(fa.vm.kind, fb.vm.kind);
      EXPECT_EQ(fa.vm.at_retired, fb.vm.at_retired);
      EXPECT_EQ(fa.vm.seed, fb.vm.seed);
      EXPECT_EQ(fa.flip_verdict, fb.flip_verdict);
      if (fa.vm.kind != fault::VmFault::kNone) some_fault = true;
      if (attempt > 0) {
        const fault::TrialFaults f0 = a.for_trial(key, 0);
        if (fa.vm.kind != f0.vm.kind || fa.flip_verdict != f0.flip_verdict) {
          attempts_differ = true;
        }
      }
    }
  }
  EXPECT_TRUE(some_fault);      // the rates actually fire
  EXPECT_TRUE(attempts_differ); // retries see fresh draws

  // A different seed is a different campaign.
  const fault::Injector c(0xBEEF, rates);
  EXPECT_NE(a.fingerprint_tag(), c.fingerprint_tag());
  bool any_diff = false;
  for (int k = 0; k < 64 && !any_diff; ++k) {
    const std::string key = "trial-" + std::to_string(k);
    const auto fa = a.for_trial(key, 0);
    const auto fc = c.for_trial(key, 0);
    any_diff = fa.vm.kind != fc.vm.kind || fa.flip_verdict != fc.flip_verdict;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Injector, HardFaultDrawsAreDeterministicAndIndependent) {
  fault::Injector::Rates rates;
  rates.segv = 0.1;
  rates.kill = 0.1;
  rates.oom = 0.1;
  rates.hang = 0.05;
  rates.hang_ignore_term = 0.05;
  rates.trunc_result = 0.05;
  rates.corrupt_result = 0.05;
  const fault::Injector a(0x44AAD, rates);
  const fault::Injector b(0x44AAD, rates);

  std::set<fault::HardFault> kinds_seen;
  bool execs_differ = false;
  for (int k = 0; k < 128; ++k) {
    const std::string key = "hard-" + std::to_string(k);
    for (std::uint32_t exec = 0; exec < 4; ++exec) {
      const fault::TrialFaults fa = a.for_trial(key, exec);
      const fault::TrialFaults fb = b.for_trial(key, exec);
      EXPECT_EQ(fa.hard, fb.hard);
      EXPECT_EQ(fa.hard_seed, fb.hard_seed);
      kinds_seen.insert(fa.hard);
      if (exec > 0 && fa.hard != a.for_trial(key, 0).hard) {
        execs_differ = true;
      }
      // Hard faults never leak into the soft-fault decisions: a campaign
      // with only hard rates must leave the VM faults off.
      EXPECT_EQ(fa.vm.kind, fault::VmFault::kNone);
      EXPECT_FALSE(fa.flip_verdict);
    }
  }
  // At these rates 512 draws cover the kinds (probability of missing any
  // one is negligible) and crash retries see fresh draws.
  EXPECT_GT(kinds_seen.size(), 4u);
  EXPECT_TRUE(execs_differ);

  // Hard rates are part of the campaign fingerprint: a journal recorded
  // under SIGSEGV injection must not feed a campaign without it.
  fault::Injector::Rates soft_only;
  soft_only.abort = 0.1;
  EXPECT_NE(fault::Injector(0x44AAD, rates).fingerprint_tag(),
            fault::Injector(0x44AAD, soft_only).fingerprint_tag());
}

TEST(Injector, ZeroRatesNeverFault) {
  const fault::Injector quiet(1234, {});
  for (int k = 0; k < 100; ++k) {
    const auto f = quiet.for_trial("key-" + std::to_string(k), 0);
    EXPECT_EQ(f.vm.kind, fault::VmFault::kNone);
    EXPECT_FALSE(f.flip_verdict);
    EXPECT_EQ(f.hard, fault::HardFault::kNone);
  }
}

// ---------------------------------------------------------------------------
// Network chaos: transport faults as a pure function of
// (seed, connection, op index).

TEST(NetChaos, PureFunctionOfSeedConnectionAndOp) {
  fault::NetChaos::Rates rates;
  rates.reset = 0.05;
  rates.stall = 0.1;
  rates.delay = 0.1;
  rates.dup = 0.1;
  rates.reorder = 0.1;
  const fault::NetChaos a(0xC4A05, rates);
  const fault::NetChaos b(0xC4A05, rates);
  const fault::NetChaos other(0xC4A06, rates);

  std::size_t faults = 0;
  std::size_t diverged = 0;
  for (std::uint64_t conn = 0; conn < 8; ++conn) {
    for (std::uint64_t op = 0; op < 200; ++op) {
      const fault::NetFault fa = a.for_op(conn, op);
      // The same (seed, conn, op) triple always draws the same fault: a
      // chaos campaign replays identically for a given connection history.
      EXPECT_EQ(fa, b.for_op(conn, op));
      if (fa != fault::NetFault::kNone) ++faults;
      if (fa != other.for_op(conn, op)) ++diverged;
    }
  }
  EXPECT_GT(faults, 0u);    // the rates actually fire
  EXPECT_GT(diverged, 0u);  // and a different seed draws differently
}

TEST(NetChaos, HoldKindsSuppressedOnAConnectionsFirstOp) {
  // A held hello frame would never flush (nothing follows it until the
  // handshake completes), so op 0 must never draw delay or reorder.
  fault::NetChaos::Rates rates;
  rates.delay = 0.5;
  rates.reorder = 0.5;
  const fault::NetChaos chaos(0xF00D, rates);
  for (std::uint64_t conn = 0; conn < 500; ++conn) {
    const fault::NetFault f = chaos.for_op(conn, 0);
    EXPECT_NE(f, fault::NetFault::kDelayFrame) << conn;
    EXPECT_NE(f, fault::NetFault::kReorderFrames) << conn;
  }
}

TEST(NetChaos, ZeroRatesNeverFault) {
  const fault::NetChaos quiet(99, {});
  for (std::uint64_t op = 0; op < 300; ++op) {
    EXPECT_EQ(quiet.for_op(7, op), fault::NetFault::kNone);
  }
}

// ---------------------------------------------------------------------------
// Journal sabotage.

std::string sabotage_fixture(const char* name, std::size_t records) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  Journal j;
  EXPECT_TRUE(j.open(path));
  for (std::size_t i = 0; i < records; ++i) {
    j.append_sealed("{\"type\":\"trial\",\"n\":" + std::to_string(i) + "}");
  }
  return path;
}

TEST(Sabotage, TruncateTailTearsLastLine) {
  const std::string path = sabotage_fixture("sab_trunc.jsonl", 5);
  ASSERT_TRUE(fault::sabotage_journal(path, fault::JournalFault::kTruncateTail,
                                      1));
  // The torn tail has no newline, so read_lines drops it.
  EXPECT_EQ(Journal::read_lines(path).size(), 4u);
  std::remove(path.c_str());
}

TEST(Sabotage, CorruptInteriorFailsSealOnOneLine) {
  const std::string path = sabotage_fixture("sab_corrupt.jsonl", 5);
  ASSERT_TRUE(fault::sabotage_journal(
      path, fault::JournalFault::kCorruptInterior, 2));
  const auto lines = Journal::read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  std::size_t bad = 0;
  for (const auto& l : lines) {
    if (check_seal(l) != SealCheck::kOk) ++bad;
  }
  EXPECT_EQ(bad, 1u);
  std::remove(path.c_str());
}

TEST(Sabotage, DuplicateAndGarbageGrowTheFile) {
  const std::string dup = sabotage_fixture("sab_dup.jsonl", 5);
  ASSERT_TRUE(fault::sabotage_journal(dup, fault::JournalFault::kDuplicateLine,
                                      3));
  EXPECT_EQ(Journal::read_lines(dup).size(), 6u);
  std::remove(dup.c_str());

  const std::string garb = sabotage_fixture("sab_garb.jsonl", 5);
  ASSERT_TRUE(fault::sabotage_journal(garb, fault::JournalFault::kGarbageLine,
                                      4));
  const auto lines = Journal::read_lines(garb);
  EXPECT_EQ(lines.size(), 6u);
  std::size_t unparsable = 0;
  for (const auto& l : lines) {
    JsonRecord rec;
    if (!parse_flat_json(l, &rec)) ++unparsable;
  }
  EXPECT_EQ(unparsable, 1u);
  std::remove(garb.c_str());
}

TEST(Sabotage, MissingFileRefused) {
  EXPECT_FALSE(fault::sabotage_journal(
      testing::TempDir() + "no_such_journal.jsonl",
      fault::JournalFault::kTruncateTail, 1));
}

// ---------------------------------------------------------------------------
// VM faults and supervision, on both engines.

/// ~8000-instruction FP loop: xmm0 accumulates xmm1 (a loop-invariant
/// constant register), a gpr counts down. Every iteration reads both xmm
/// registers as doubles, so a planted sentinel is consumed within one
/// iteration wherever a fault lands.
program::Image finite_fp_loop() {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto c = a.data_f64(1.25);
  a.emit(Opcode::kMovsdXM, Operand::xmm(1),
         Operand::mem_abs(static_cast<std::int32_t>(c)));
  a.emit(Opcode::kXorpd, Operand::xmm(0), Operand::xmm(0));
  a.emit(Opcode::kMov, Operand::gpr(1), Operand::make_imm(2000));
  auto loop = a.new_label();
  a.bind(loop);
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(1));
  a.emit(Opcode::kSub, Operand::gpr(1), Operand::make_imm(1));
  a.emit(Opcode::kCmp, Operand::gpr(1), Operand::make_imm(0));
  a.jg(loop);
  a.intrin(in::Id::kOutputF64);
  a.halt();
  a.end_function();
  return program::relayout(a.finish("main"));
}

/// Never halts; the deadline has to stop it.
program::Image infinite_loop() {
  casm::Assembler a;
  a.begin_function("main", "main");
  const auto c = a.data_f64(1.0);
  a.emit(Opcode::kMovsdXM, Operand::xmm(0),
         Operand::mem_abs(static_cast<std::int32_t>(c)));
  auto loop = a.new_label();
  a.bind(loop);
  a.emit(Opcode::kAddsd, Operand::xmm(0), Operand::xmm(0));
  a.jmp(loop);
  a.end_function();
  return program::relayout(a.finish("main"));
}

class VmFaultBothEngines : public ::testing::TestWithParam<vm::Engine> {};

TEST_P(VmFaultBothEngines, AbortTrapsWithContext) {
  const program::Image img = finite_fp_loop();
  fault::VmFaultSpec spec;
  spec.kind = fault::VmFault::kAbort;
  spec.at_retired = 500;
  vm::Machine::Options opts;
  opts.engine = GetParam();
  opts.fault = &spec;
  vm::Machine m(img, opts);
  const vm::RunResult r = m.run();
  EXPECT_EQ(r.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(r.trap_message.find("injected fault"), std::string::npos)
      << r.trap_message;
  // The enriched diagnostic suffix is present.
  EXPECT_NE(r.trap_message.find("pc="), std::string::npos) << r.trap_message;
  EXPECT_NE(r.trap_message.find("retired="), std::string::npos)
      << r.trap_message;
  EXPECT_FALSE(r.sentinel_escape);
}

TEST_P(VmFaultBothEngines, SentinelFaultEscapesAsTagTrap) {
  const program::Image img = finite_fp_loop();
  fault::VmFaultSpec spec;
  spec.kind = fault::VmFault::kSentinel;
  spec.at_retired = 500;
  spec.seed = 99;
  vm::Machine::Options opts;
  opts.engine = GetParam();
  opts.fault = &spec;
  vm::Machine m(img, opts);
  const vm::RunResult r = m.run();
  // The loop reads xmm0 as a double on the very next iteration, so the
  // planted sentinel must be consumed and trapped.
  EXPECT_EQ(r.status, vm::RunResult::Status::kTrapped);
  EXPECT_TRUE(r.sentinel_escape) << r.trap_message;
}

TEST_P(VmFaultBothEngines, BitFlipKeepsRunning) {
  const program::Image img = finite_fp_loop();
  vm::Machine clean(img, [&] {
    vm::Machine::Options o;
    o.engine = GetParam();
    return o;
  }());
  const vm::RunResult cr = clean.run();
  ASSERT_TRUE(cr.ok()) << cr.trap_message;

  fault::VmFaultSpec spec;
  spec.kind = fault::VmFault::kBitFlip;
  spec.at_retired = 500;
  spec.seed = 7;
  vm::Machine::Options opts;
  opts.engine = GetParam();
  opts.fault = &spec;
  vm::Machine m(img, opts);
  const vm::RunResult r = m.run();
  // Silent data corruption: the program keeps executing (the flipped bit
  // may or may not change the output, but it must not stop the machine).
  EXPECT_TRUE(r.ok()) << r.trap_message;
  EXPECT_EQ(m.instructions_retired(), clean.instructions_retired());
}

TEST_P(VmFaultBothEngines, StallTripsTheDeadline) {
  const program::Image img = finite_fp_loop();
  fault::VmFaultSpec spec;
  spec.kind = fault::VmFault::kStall;
  spec.at_retired = 500;
  vm::Machine::Options opts;
  opts.engine = GetParam();
  opts.fault = &spec;
  opts.deadline_ns = 50ull * 1000 * 1000;  // 50 ms
  opts.deadline_check_interval = 1u << 14;
  vm::Machine m(img, opts);
  Timer t;
  const vm::RunResult r = m.run();
  EXPECT_EQ(r.status, vm::RunResult::Status::kDeadline);
  EXPECT_LT(t.elapsed_seconds(), 5.0);  // bounded, not hung
}

TEST_P(VmFaultBothEngines, DeadlineStopsANonTerminatingProgram) {
  const program::Image img = infinite_loop();
  constexpr std::uint64_t kDeadlineNs = 250ull * 1000 * 1000;  // 250 ms
  vm::Machine::Options opts;
  opts.engine = GetParam();
  opts.deadline_ns = kDeadlineNs;
  opts.deadline_check_interval = 1u << 16;
  vm::Machine m(img, opts);
  Timer t;
  const vm::RunResult r = m.run();
  const double elapsed = t.elapsed_seconds();
  EXPECT_EQ(r.status, vm::RunResult::Status::kDeadline);
  EXPECT_NE(r.trap_message.find("wall-clock deadline"), std::string::npos)
      << r.trap_message;
  // The acceptance bound: classified within 2x the deadline.
  EXPECT_LT(elapsed, 2.0 * (kDeadlineNs / 1e9));
  EXPECT_GT(m.instructions_retired(), 0u);
}

TEST_P(VmFaultBothEngines, NaturalTrapCarriesContext) {
  casm::Assembler a;
  a.begin_function("main", "main");
  a.emit(Opcode::kMovsdXM, Operand::xmm(0),
         Operand::mem_abs(1 << 30));  // far out of bounds
  a.halt();
  a.end_function();
  vm::Machine::Options opts;
  opts.engine = GetParam();
  vm::Machine m(program::relayout(a.finish("main")), opts);
  const vm::RunResult r = m.run();
  ASSERT_EQ(r.status, vm::RunResult::Status::kTrapped);
  EXPECT_NE(r.trap_message.find("pc="), std::string::npos) << r.trap_message;
  EXPECT_NE(r.trap_message.find("op="), std::string::npos) << r.trap_message;
  EXPECT_NE(r.trap_message.find("retired="), std::string::npos)
      << r.trap_message;
}

INSTANTIATE_TEST_SUITE_P(Engines, VmFaultBothEngines,
                         ::testing::Values(vm::Engine::kMicroOp,
                                           vm::Engine::kSwitch),
                         [](const auto& info) {
                           return info.param == vm::Engine::kMicroOp
                                      ? "MicroOp"
                                      : "Switch";
                         });

// ---------------------------------------------------------------------------
// Evaluation-level classification.

TEST(Evaluate, NonTerminatingConfigClassifiedTimeout) {
  const program::Image img = infinite_loop();
  const auto index = config::StructureIndex::build(program::lift(img));
  verify::BitExactVerifier verifier({1.0});
  verify::EvalOptions opts;
  opts.deadline_ns = 100ull * 1000 * 1000;
  opts.deadline_check_interval = 1u << 16;
  const verify::EvalResult r = verify::evaluate_config(
      img, index, config::PrecisionConfig{}, verifier, opts);
  EXPECT_FALSE(r.passed);
  EXPECT_EQ(r.failure_class, verify::FailureClass::kTimeout);
  EXPECT_EQ(r.run_status, vm::RunResult::Status::kDeadline);
}

TEST(Evaluate, FailureClassNamesRoundTrip) {
  using verify::FailureClass;
  for (const FailureClass c :
       {FailureClass::kNone, FailureClass::kTrap,
        FailureClass::kSentinelEscape, FailureClass::kDivergence,
        FailureClass::kTimeout, FailureClass::kBudget,
        FailureClass::kInternalError, FailureClass::kCrash,
        FailureClass::kResource}) {
    FailureClass parsed;
    ASSERT_TRUE(verify::parse_failure_class(verify::failure_class_name(c),
                                            &parsed));
    EXPECT_EQ(parsed, c);
  }
  verify::FailureClass ignored;
  EXPECT_FALSE(verify::parse_failure_class("not-a-class", &ignored));
}

// ---------------------------------------------------------------------------
// Search-level fault campaigns (the soak).

/// Small mixed-sensitivity workload: enough structure for a multi-level
/// descent, small enough to search hundreds of times.
struct SoakWorkload {
  program::Image image;
  config::StructureIndex index;
  std::unique_ptr<verify::Verifier> verifier;
};

SoakWorkload make_soak_workload() {
  lang::Builder b;
  b.begin_func("main", "m");
  auto good = b.var_f64("good");
  auto bad = b.var_f64("bad");
  b.set(good, b.cf(0.0));
  for (int k = 0; k < 10; ++k) {
    b.set(good, floor_(lang::Expr(good) + b.cf(1.0 + k)));
  }
  b.set(bad, b.cf(1.0) / b.cf(3.0) + b.cf(1.0) / b.cf(7.0));
  b.output(good);
  b.output(bad);
  b.end_func();

  SoakWorkload w{program::relayout(lang::compile(b.take_model(),
                                                 lang::Mode::kDouble)),
                 {}, nullptr};
  w.index = config::StructureIndex::build(program::lift(w.image));
  std::vector<double> ref = verify::reference_outputs(w.image);
  w.verifier = std::make_unique<verify::RelativeErrorVerifier>(std::move(ref),
                                                               1e-12);
  return w;
}

std::size_t soak_campaigns() {
  if (const char* env = std::getenv("FPMIX_SOAK_CAMPAIGNS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 25;  // local default; CI exports FPMIX_SOAK_CAMPAIGNS=200
}

TEST(Soak, SeededFaultCampaignsAlwaysTerminate) {
  // Fault-free reference: the same search twice must be byte-identical.
  SoakWorkload ra = make_soak_workload();
  const search::SearchResult ref_a =
      search::run_search(ra.image, &ra.index, *ra.verifier, {});
  SoakWorkload rb = make_soak_workload();
  const search::SearchResult ref_b =
      search::run_search(rb.image, &rb.index, *rb.verifier, {});
  ASSERT_EQ(config::to_text(ra.index, ref_a.final_config),
            config::to_text(rb.index, ref_b.final_config));
  const std::string clean_text = config::to_text(ra.index, ref_a.final_config);

  fault::Injector::Rates rates;
  rates.abort = 0.05;
  rates.bitflip = 0.05;
  rates.sentinel = 0.05;
  rates.stall = 0.02;
  rates.flaky = 0.10;

  const std::size_t campaigns = soak_campaigns();
  std::size_t faulted_trials = 0;
  for (std::size_t c = 0; c < campaigns; ++c) {
    SCOPED_TRACE("campaign " + std::to_string(c));
    const fault::Injector injector(0x50AC0000 + c, rates);
    const std::string journal =
        testing::TempDir() + "soak_" + std::to_string(c) + ".jsonl";
    std::remove(journal.c_str());

    search::SearchOptions opts;
    opts.journal_path = journal;
    opts.deadline_ms = 150;
    opts.max_retries = 2;
    opts.fault_injector = &injector;

    SoakWorkload w = make_soak_workload();
    const search::SearchResult res =
        search::run_search(w.image, &w.index, *w.verifier, opts);

    // The search terminated (we are here) and composed a final config the
    // serializer accepts.
    EXPECT_GT(res.configs_tested, 0u);
    const std::string text = config::to_text(w.index, res.final_config);
    EXPECT_FALSE(text.empty());

    // Metrics bookkeeping stays consistent under faults.
    const search::SearchMetrics& m = res.metrics;
    EXPECT_EQ(m.trials_live + m.trials_cached, m.trials_total);
    std::size_t by_class = 0;
    for (const auto& [name, count] : m.failures_by_class) {
      verify::FailureClass parsed;
      EXPECT_TRUE(verify::parse_failure_class(name, &parsed)) << name;
      by_class += count;
    }
    faulted_trials += by_class;
    EXPECT_EQ(res.quarantine.size(), m.quarantined);

    // Every fifth campaign: damage the journal, then resume under the same
    // campaign. Recovery must re-evaluate the damaged records and land on
    // the same final configuration (the injector is a pure function of the
    // trial key, so the rerun replays the identical fault pattern).
    if (c % 5 == 0 && !Journal::read_lines(journal).empty()) {
      const auto kind = static_cast<fault::JournalFault>(c / 5 % 4);
      fault::sabotage_journal(journal, kind, 0xDA3A + c);
      SoakWorkload w2 = make_soak_workload();
      const search::SearchResult resumed =
          search::run_search(w2.image, &w2.index, *w2.verifier, opts);
      EXPECT_EQ(config::to_text(w2.index, resumed.final_config), text);
    }
    std::remove(journal.c_str());
  }
  // Across the whole soak the campaign rates must have produced failures
  // (otherwise the injector silently stopped firing).
  EXPECT_GT(faulted_trials, 0u);

  // After everything, a fault-free rerun is still byte-identical to the
  // pre-soak reference.
  SoakWorkload rc = make_soak_workload();
  const search::SearchResult ref_c =
      search::run_search(rc.image, &rc.index, *rc.verifier, {});
  EXPECT_EQ(config::to_text(rc.index, ref_c.final_config), clean_text);
}

}  // namespace
}  // namespace fpmix
