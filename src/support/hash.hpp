// Stable, dependency-free content hashing (64-bit FNV-1a).
//
// Used to derive identity keys for cached search trials: the digests are
// persisted in journal files and compared across process runs, so the
// algorithm must be stable across platforms and builds -- never replace it
// with std::hash, whose value is unspecified and may change per invocation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fpmix {

inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;

/// 64-bit FNV-1a over a byte string; `seed` allows chained hashing.
constexpr std::uint64_t fnv1a64(std::string_view data,
                                std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv1a64Prime;
  }
  return h;
}

/// Mixes an integer into a running hash (for ids, counts, option values).
constexpr std::uint64_t fnv1a64_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xFF;
    h *= kFnv1a64Prime;
    v >>= 8;
  }
  return h;
}

/// Fixed-width lowercase hex digest (16 chars), the journal's key format.
inline std::string hex_digest(std::uint64_t h) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace fpmix
