#include "instrument/patch.hpp"

#include <array>

#include "arch/disasm.hpp"
#include "arch/intrinsics.hpp"
#include "program/layout.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::instrument {

using arch::Instr;
using arch::Opcode;
using config::Precision;
namespace in = arch::intrinsics;

namespace {

bool sets_flags(Opcode op) {
  return op == Opcode::kCmp || op == Opcode::kTest ||
         op == Opcode::kUcomisd || op == Opcode::kUcomiss;
}

/// Old-block-index sentinel used while splicing: edges still pointing into
/// the original block numbering are encoded as -(old + kOldBias) and fixed
/// up once the new block list is complete.
constexpr program::BlockIndex kOldBias = 1000000;

program::BlockIndex encode_old(program::BlockIndex old) {
  return old == program::kNoIndex ? program::kNoIndex : -(old + kOldBias);
}

bool is_encoded_old(program::BlockIndex e) { return e <= -kOldBias; }

program::BlockIndex decode_old(program::BlockIndex e) {
  return -e - kOldBias;
}

/// Verifies the paper's implicit precondition that condition flags are not
/// live across an instrumented instruction (snippets clobber flags). Our
/// code generator always emits compare+branch adjacently, so this never
/// fires on DSL-built binaries; it protects hand-written programs.
void check_flag_liveness(const program::Function& fn,
                         const program::BasicBlock& blk,
                         const WrapPredicate& would_wrap) {
  if (!blk.ends_with_cond_branch()) return;
  // Find the last flag setter before the terminator.
  std::ptrdiff_t setter = -1;
  for (std::ptrdiff_t i = 0;
       i < static_cast<std::ptrdiff_t>(blk.instrs.size()) - 1; ++i) {
    if (sets_flags(blk.instrs[static_cast<std::size_t>(i)].op)) setter = i;
  }
  for (std::ptrdiff_t i = setter + 1;
       i < static_cast<std::ptrdiff_t>(blk.instrs.size()) - 1; ++i) {
    const Instr& ins = blk.instrs[static_cast<std::size_t>(i)];
    if (would_wrap(ins)) {
      throw ProgramError(strformat(
          "function %s: flags are live across instrumented instruction "
          "'%s' at 0x%llx",
          fn.name.c_str(), arch::instr_to_string(ins).c_str(),
          static_cast<unsigned long long>(ins.addr)));
    }
  }
  if (setter == -1) {
    // Flags flow in from a predecessor; any snippet in this block would
    // clobber them before the terminator consumes them.
    for (std::size_t i = 0; i + 1 < blk.instrs.size(); ++i) {
      if (would_wrap(blk.instrs[i])) {
        throw ProgramError(strformat(
            "function %s: block consumes inherited flags but contains "
            "instrumented instructions", fn.name.c_str()));
      }
    }
  }
}

/// Intra-block tag-state tracker for the dataflow optimization. Tracks, for
/// each XMM register, whether its lane-0 slot is known to hold a plain
/// double, a boxed single, or unknown bits.
class TagStateTracker {
 public:
  void reset() { states_.fill(TagState::kUnknown); }

  TagState state_of(const arch::Operand& op) const {
    return op.is_xmm() ? states_[op.reg] : TagState::kUnknown;
  }

  /// Updates state for an instruction the patcher left untouched.
  void step_unwrapped(const Instr& ins) {
    switch (ins.op) {
      case Opcode::kMovsdXX:
      case Opcode::kMovapdXX:
        states_[ins.dst.reg] = states_[ins.src.reg];
        break;
      case Opcode::kCvtss2sd:
      case Opcode::kCvtsi2sd:
        states_[ins.dst.reg] = TagState::kPlain;
        break;
      case Opcode::kCall:
        reset();  // callee may leave anything in any register
        break;
      case Opcode::kIntrin: {
        const auto id = static_cast<in::Id>(ins.src.imm);
        if (id < in::Id::kNumIntrinsics &&
            in::intrin_info(id).has_f64_result) {
          states_[0] = TagState::kPlain;  // unwrapped intrinsics stay f64
        }
        break;
      }
      default:
        if (ins.dst.is_xmm()) states_[ins.dst.reg] = TagState::kUnknown;
        break;
    }
  }

  /// Updates state after a wrapped instruction: checked inputs were
  /// converted in place (write-back), and the result is boxed (single) or
  /// plain (double).
  void step_wrapped(const Instr& ins, bool single) {
    const arch::OpcodeInfo& info = arch::opcode_info(ins.op);
    const TagState converted =
        single ? TagState::kTagged : TagState::kPlain;
    if (ins.op == Opcode::kIntrin) {
      states_[0] = converted;
      states_[1] = converted;  // conservative: arg state after conversion
      return;
    }
    if (info.fp_lanes == 2) {
      // Packed states are not tracked (lane-wise); be conservative.
      if (ins.dst.is_xmm()) states_[ins.dst.reg] = TagState::kUnknown;
      if (ins.src.is_xmm()) states_[ins.src.reg] = TagState::kUnknown;
      return;
    }
    if (info.reads_dst_f64 && ins.dst.is_xmm()) {
      states_[ins.dst.reg] = converted;
    }
    if (info.reads_src_f64 && ins.src.is_xmm()) {
      states_[ins.src.reg] = converted;
    }
    if (info.writes_dst_f64 && ins.dst.is_xmm()) {
      states_[ins.dst.reg] = converted;
    }
  }

 private:
  std::array<TagState, arch::kNumXmms> states_{};
};

/// Copies the non-function program metadata (sections, bases, entry).
program::Program copy_meta(const program::Program& prog) {
  program::Program out;
  out.code_base = prog.code_base;
  out.data_base = prog.data_base;
  out.data = prog.data;
  out.bss_base = prog.bss_base;
  out.bss_size = prog.bss_size;
  out.memory_size = prog.memory_size;
  out.entry_function = prog.entry_function;
  return out;
}

}  // namespace

program::Function splice_function(const program::Function& fn,
                                  const WrapPredicate& would_wrap,
                                  const SnippetFactory& factory,
                                  InstrumentStats* stats,
                                  const std::function<void()>& on_block_start) {
  for (const program::BasicBlock& blk : fn.blocks) {
    check_flag_liveness(fn, blk, would_wrap);
  }

  program::Function nf;
  nf.name = fn.name;
  nf.module = fn.module;
  nf.orig_addr = fn.orig_addr;

  std::vector<program::BlockIndex> head_of_old(fn.blocks.size());
  std::vector<program::BasicBlock> blocks;

  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    const program::BasicBlock& blk = fn.blocks[bi];
    head_of_old[bi] = static_cast<program::BlockIndex>(blocks.size());

    program::BasicBlock cur;
    cur.orig_addr = blk.orig_addr;
    if (on_block_start) on_block_start();

    for (const Instr& ins : blk.instrs) {
      std::optional<SnippetChain> chain = factory(ins);
      if (!chain.has_value()) {
        cur.instrs.push_back(ins);
        continue;
      }

      // Section 2.4: split the block around the instruction and splice
      // the snippet chain in its place.
      if (stats != nullptr) {
        ++stats->wrapped;
        stats->snippet_instrs += chain->instruction_count();
      }
      const auto chain_base =
          static_cast<program::BlockIndex>(blocks.size() + 1);
      cur.fallthrough = chain_base;
      if (cur.orig_addr == arch::kNoAddr) cur.orig_addr = ins.addr;
      blocks.push_back(std::move(cur));
      const auto exit_index = static_cast<program::BlockIndex>(
          chain_base +
          static_cast<program::BlockIndex>(chain->blocks.size()));
      for (program::BasicBlock& sb : chain->blocks) {
        const auto fix = [&](program::BlockIndex e) {
          if (e == SnippetChain::kChainExit) return exit_index;
          if (e == program::kNoIndex) return program::kNoIndex;
          return static_cast<program::BlockIndex>(chain_base + e);
        };
        sb.taken = fix(sb.taken);
        sb.fallthrough = fix(sb.fallthrough);
        if (sb.ends_with_branch()) {
          sb.instrs.back().src.imm = sb.taken;
        }
        if (sb.orig_addr == arch::kNoAddr) sb.orig_addr = ins.addr;
        blocks.push_back(std::move(sb));
      }
      cur = program::BasicBlock{};
      cur.orig_addr = ins.addr;
    }

    // Close the final fragment with the original block's terminator edges
    // (encoded as old indices; remapped below).
    cur.taken = encode_old(blk.taken);
    cur.fallthrough = encode_old(blk.fallthrough);
    blocks.push_back(std::move(cur));
  }

  // Remap old edges to the heads of their rebuilt blocks.
  for (program::BasicBlock& b : blocks) {
    if (is_encoded_old(b.taken)) {
      b.taken = head_of_old[static_cast<std::size_t>(decode_old(b.taken))];
      if (b.ends_with_branch()) b.instrs.back().src.imm = b.taken;
    }
    if (is_encoded_old(b.fallthrough)) {
      b.fallthrough =
          head_of_old[static_cast<std::size_t>(decode_old(b.fallthrough))];
    }
  }

  nf.blocks = std::move(blocks);
  return nf;
}

program::Program splice_snippets(const program::Program& prog,
                                 const WrapPredicate& would_wrap,
                                 const SnippetFactory& factory,
                                 InstrumentStats* stats,
                                 const std::function<void()>& on_block_start) {
  prog.validate();
  program::Program out = copy_meta(prog);
  for (const program::Function& fn : prog.functions) {
    out.functions.push_back(
        splice_function(fn, would_wrap, factory, stats, on_block_start));
  }
  out.validate();
  return out;
}

program::Function instrument_function(
    const program::Function& fn,
    const std::map<std::uint64_t, config::Precision>& pmap,
    InstrumentStats* stats, const InstrumentOptions& options) {
  InstrumentStats local;

  const auto effective_precision = [&](const Instr& ins) {
    auto it = pmap.find(ins.addr);
    if (it == pmap.end()) {
      throw ProgramError(strformat(
          "instruction at 0x%llx is unknown to the structure index "
          "(stale index?)",
          static_cast<unsigned long long>(ins.addr)));
    }
    Precision p = it->second;
    // A `single` flag on an aggregate also covers non-candidate FP
    // instructions inside it (e.g. conversions, output calls); those
    // execute in double precision with tag checks.
    if (p == Precision::kSingle && !config::is_candidate_instr(ins)) {
      p = Precision::kDouble;
    }
    return p;
  };

  // The dataflow facts are strictly intra-block: the tracker resets at
  // every block head (blocks can have multiple predecessors with different
  // tag states).
  TagStateTracker tracker;
  tracker.reset();

  const auto would_wrap = [&](const Instr& ins) {
    return needs_snippet(ins, effective_precision(ins));
  };

  const auto factory = [&](const Instr& ins) -> std::optional<SnippetChain> {
    const Precision p = effective_precision(ins);
    if (p == Precision::kIgnore) ++local.ignored;
    if (!needs_snippet(ins, p)) {
      if (options.dataflow_optimize) tracker.step_unwrapped(ins);
      return std::nullopt;
    }
    const bool single =
        p == Precision::kSingle && config::is_candidate_instr(ins);
    SnippetOptions sopts = options.snippet;
    if (options.dataflow_optimize) {
      sopts.dst_state = tracker.state_of(ins.dst);
      sopts.src_state = tracker.state_of(ins.src);
      if (sopts.dst_state != TagState::kUnknown) ++local.checks_elided;
      if (sopts.src_state != TagState::kUnknown) ++local.checks_elided;
      tracker.step_wrapped(ins, single);
    }
    if (single) ++local.replaced_single;
    return build_snippet(ins, p, sopts);
  };

  program::Function nf =
      splice_function(fn, would_wrap, factory, &local, [&] { tracker.reset(); });
  if (stats != nullptr) *stats = local;
  return nf;
}

InstrumentResult instrument(const program::Program& prog,
                            const config::StructureIndex& index,
                            const config::PrecisionConfig& cfg,
                            const InstrumentOptions& options) {
  const std::map<std::uint64_t, Precision> pmap = cfg.address_map(index);
  prog.validate();

  InstrumentResult result;
  result.patched = copy_meta(prog);
  result.per_function.reserve(prog.functions.size());
  for (const program::Function& fn : prog.functions) {
    InstrumentStats fs;
    result.patched.functions.push_back(
        instrument_function(fn, pmap, &fs, options));
    result.stats.add(fs);
    result.per_function.push_back(fs);
  }
  result.patched.validate();
  return result;
}

std::vector<std::size_t> dirty_functions(const config::StructureIndex& index,
                                         const config::PrecisionConfig& a,
                                         const config::PrecisionConfig& b) {
  std::vector<bool> dirty(index.funcs().size(), false);
  const auto mark_func = [&](std::size_t f) {
    if (f < dirty.size()) dirty[f] = true;
  };

  // The delta encoding enumerates exactly the flags that differ (added,
  // changed or removed), so the diff's cost scales with the change size.
  const std::string delta = b.encode_delta_from(a);
  std::size_t pos = 0;
  while (pos < delta.size()) {
    const char level = delta[pos++];
    std::size_t id = 0;
    while (pos < delta.size() && delta[pos] >= '0' && delta[pos] <= '9') {
      id = id * 10 + static_cast<std::size_t>(delta[pos++] - '0');
    }
    pos += 3;  // skip `=<flag>;` (own encoder's output; always well formed)
    switch (level) {
      case 'm':
        if (id < index.modules().size()) {
          for (std::size_t f : index.modules()[id].funcs) mark_func(f);
        }
        break;
      case 'f': mark_func(id); break;
      case 'b':
        if (id < index.blocks().size()) mark_func(index.blocks()[id].func);
        break;
      case 'i':
        if (id < index.instrs().size()) mark_func(index.instrs()[id].func);
        break;
      default: break;
    }
  }

  std::vector<std::size_t> out;
  for (std::size_t f = 0; f < dirty.size(); ++f) {
    if (dirty[f]) out.push_back(f);
  }
  return out;
}

InstrumentResult instrument_delta(const program::Program& prog,
                                  const config::StructureIndex& index,
                                  const config::PrecisionConfig& base_cfg,
                                  const InstrumentResult& base_result,
                                  const config::PrecisionConfig& cfg,
                                  const InstrumentOptions& options) {
  FPMIX_CHECK(base_result.patched.functions.size() == prog.functions.size());
  FPMIX_CHECK(base_result.per_function.size() == prog.functions.size());

  std::vector<bool> is_dirty(prog.functions.size(), false);
  for (std::size_t f : dirty_functions(index, base_cfg, cfg)) {
    if (f < is_dirty.size()) is_dirty[f] = true;
  }

  // Resolve effective precisions only for instructions in dirty functions:
  // the delta's cost must scale with the size of the change, not the
  // program.
  std::map<std::uint64_t, Precision> pmap;
  for (std::size_t i = 0; i < index.instrs().size(); ++i) {
    const config::InstrEntry& ie = index.instrs()[i];
    if (ie.func < is_dirty.size() && is_dirty[ie.func]) {
      pmap[ie.addr] = cfg.resolve(index, i);
    }
  }

  prog.validate();
  InstrumentResult result;
  result.patched = copy_meta(prog);
  result.per_function.reserve(prog.functions.size());
  for (std::size_t fi = 0; fi < prog.functions.size(); ++fi) {
    InstrumentStats fs;
    if (is_dirty[fi]) {
      result.patched.functions.push_back(
          instrument_function(prog.functions[fi], pmap, &fs, options));
    } else {
      result.patched.functions.push_back(base_result.patched.functions[fi]);
      fs = base_result.per_function[fi];
    }
    result.stats.add(fs);
    result.per_function.push_back(fs);
  }
  result.patched.validate();
  return result;
}

program::Image instrument_image(const program::Image& image,
                                const config::StructureIndex& index,
                                const config::PrecisionConfig& cfg,
                                InstrumentStats* stats,
                                const InstrumentOptions& options) {
  const program::Program prog = program::lift(image);
  InstrumentResult r = instrument(prog, index, cfg, options);
  if (stats != nullptr) *stats = r.stats;
  return program::relayout(r.patched);
}

}  // namespace fpmix::instrument
