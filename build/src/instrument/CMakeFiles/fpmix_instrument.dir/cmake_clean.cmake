file(REMOVE_RECURSE
  "CMakeFiles/fpmix_instrument.dir/cancellation.cpp.o"
  "CMakeFiles/fpmix_instrument.dir/cancellation.cpp.o.d"
  "CMakeFiles/fpmix_instrument.dir/patch.cpp.o"
  "CMakeFiles/fpmix_instrument.dir/patch.cpp.o.d"
  "CMakeFiles/fpmix_instrument.dir/snippet.cpp.o"
  "CMakeFiles/fpmix_instrument.dir/snippet.cpp.o.d"
  "libfpmix_instrument.a"
  "libfpmix_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
