// Tests for the extension features: intra-block dataflow check elision
// (paper Section 2.5), the tag-check ablation knob, cancellation-detection
// instrumentation (Section 4.4), and the composition-refinement second
// search phase (Section 3.1's suggestion).
#include <gtest/gtest.h>

#include <bit>

#include "instrument/cancellation.hpp"
#include "instrument/patch.hpp"
#include "kernels/workload.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "verify/evaluate.hpp"
#include "vm/machine.hpp"

namespace fpmix {
namespace {

using config::Precision;
using config::PrecisionConfig;
using config::StructureIndex;
using lang::Builder;
using lang::Expr;

// ---------------------------------------------------------------------------
// Dataflow optimization.

class DataflowSweep : public ::testing::TestWithParam<int> {};

TEST_P(DataflowSweep, ElisionPreservesResultsBitForBit) {
  // For several kernels and both all-double and all-single configurations,
  // the dataflow-optimized binary must produce bit-identical outputs with
  // strictly fewer snippet instructions.
  const int param = GetParam();
  kernels::Workload w;
  switch (param % 4) {
    case 0: w = kernels::make_ep('S'); break;
    case 1: w = kernels::make_cg('S'); break;
    case 2: w = kernels::make_mg('S'); break;
    default: w = kernels::make_sp('S'); break;
  }
  const bool single_cfg = param >= 4;

  const program::Image orig = kernels::build_image(w);
  const auto ix = StructureIndex::build(program::lift(orig));
  PrecisionConfig cfg;
  if (single_cfg) {
    for (std::size_t m = 0; m < ix.modules().size(); ++m) {
      cfg.set_module(m, Precision::kSingle);
    }
  }

  instrument::InstrumentStats base_stats, opt_stats;
  const program::Image base =
      instrument::instrument_image(orig, ix, cfg, &base_stats);
  instrument::InstrumentOptions opts;
  opts.dataflow_optimize = true;
  const program::Image optimized =
      instrument::instrument_image(orig, ix, cfg, &opt_stats, opts);

  vm::Machine mb(base), mo(optimized);
  const vm::RunResult rb = mb.run();
  const vm::RunResult ro = mo.run();
  ASSERT_EQ(rb.ok(), ro.ok()) << w.name << ": " << ro.trap_message;
  if (!rb.ok()) return;  // both crashed the same way; nothing to compare

  ASSERT_EQ(mo.output_f64().size(), mb.output_f64().size());
  for (std::size_t i = 0; i < mb.output_f64().size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(mo.output_f64()[i]),
              std::bit_cast<std::uint64_t>(mb.output_f64()[i]))
        << w.name << " output " << i;
  }
  EXPECT_LE(opt_stats.snippet_instrs, base_stats.snippet_instrs);
  EXPECT_LE(mo.instructions_retired(), mb.instructions_retired());
  if (opt_stats.checks_elided > 0) {
    EXPECT_LT(opt_stats.snippet_instrs, base_stats.snippet_instrs);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, DataflowSweep, ::testing::Range(0, 8));

TEST(Dataflow, ElidesChainedRegisterChecks) {
  // x = a+b; y = x*x within one block: the second op's inputs are known
  // tagged after the first, so its checks vanish.
  Builder b;
  b.begin_func("main", "m");
  auto x = b.var_f64("x");
  b.set(x, (b.cf(1.5) + b.cf(2.5)) * (b.cf(1.5) + b.cf(2.5)));
  b.output(x);
  b.end_func();
  const program::Image orig =
      program::relayout(lang::compile(b.take_model(), lang::Mode::kDouble));
  const auto ix = StructureIndex::build(program::lift(orig));
  PrecisionConfig cfg;
  cfg.set_module(0, Precision::kSingle);
  instrument::InstrumentOptions opts;
  opts.dataflow_optimize = true;
  instrument::InstrumentStats stats;
  instrument::instrument_image(orig, ix, cfg, &stats, opts);
  EXPECT_GT(stats.checks_elided, 0u);
}

// ---------------------------------------------------------------------------
// Tag-check ablation.

TEST(TagCheckAblation, UnconditionalNarrowingBreaksReuse) {
  // t = a+b; u = t+c: with checks disabled, the second op re-narrows the
  // boxed t as if its bits were a double -- detected by the tag trap or by
  // wrong output.
  Builder b;
  b.begin_func("main", "m");
  auto t = b.var_f64("t");
  auto u = b.var_f64("u");
  b.set(t, b.cf(1.25) + b.cf(2.5));
  b.set(u, Expr(t) + b.cf(0.25));
  b.output(u);
  b.end_func();
  const program::Image orig =
      program::relayout(lang::compile(b.take_model(), lang::Mode::kDouble));
  const auto ix = StructureIndex::build(program::lift(orig));
  PrecisionConfig cfg;
  cfg.set_module(0, Precision::kSingle);

  // With checks: correct value 4.0.
  {
    const program::Image inst = instrument::instrument_image(orig, ix, cfg);
    vm::Machine m(inst);
    ASSERT_TRUE(m.run().ok());
    EXPECT_EQ(m.output_f64().at(0), 4.0);
  }
  // Without checks: the boxed intermediate is mangled.
  {
    instrument::InstrumentOptions opts;
    opts.snippet.check_tags = false;
    const program::Image inst =
        instrument::instrument_image(orig, ix, cfg, nullptr, opts);
    vm::Machine m(inst);
    const vm::RunResult r = m.run();
    const bool wrong =
        !r.ok() || m.output_f64().empty() || m.output_f64()[0] != 4.0;
    EXPECT_TRUE(wrong);
  }
}

// ---------------------------------------------------------------------------
// Cancellation detection.

TEST(Cancellation, DetectsEngineeredCancellation) {
  // (a + eps) - a cancels ~all leading bits; an unrelated add does not.
  Builder b;
  b.begin_func("main", "m");
  auto big = b.var_f64("big");
  auto r = b.var_f64("r");
  auto i = b.var_i64("i");
  b.set(big, b.cf(1.0e8));
  b.for_(i, b.ci(0), b.ci(100), [&] {
    b.set(r, (Expr(big) + b.cf(3.5)) - Expr(big));  // cancels hard
    b.set(r, Expr(r) + b.cf(1.0));                  // benign
  });
  b.output(r);
  b.end_func();
  const program::Image orig =
      program::relayout(lang::compile(b.take_model(), lang::Mode::kDouble));

  instrument::CancellationOptions opts;
  opts.shadow_iters = 4;
  opts.min_cancel_bits = 8;
  const instrument::CancellationResult inst =
      instrument::instrument_cancellation(orig, opts);
  vm::Machine m(inst.image);
  const vm::RunResult rr = m.run();
  ASSERT_TRUE(rr.ok()) << rr.trap_message;
  // Semantics preserved.
  EXPECT_EQ(m.output_f64().at(0), 4.5);

  const instrument::CancellationReport rep =
      instrument::read_cancellation_report(m, inst.layout);
  // Exactly the subtraction cancels, once per iteration.
  EXPECT_EQ(rep.total_events, 100u);
  ASSERT_EQ(rep.events_by_addr.size(), 1u);
  EXPECT_EQ(rep.events_by_addr.begin()->second, 100u);
  // 1e8 + 3.5 - 1e8: exponent drops from ~27 to 1 -> ~26 cancelled bits.
  std::uint64_t hist_events = 0;
  for (std::size_t bin = 20; bin < 32; ++bin) {
    hist_events += rep.bits_histogram[bin];
  }
  EXPECT_EQ(hist_events, 100u);
}

TEST(Cancellation, PreservesKernelSemantics) {
  const kernels::Workload w = kernels::make_mg('S');
  const program::Image orig = kernels::build_image(w);
  vm::Machine m0(orig);
  ASSERT_TRUE(m0.run().ok());

  const instrument::CancellationResult inst =
      instrument::instrument_cancellation(orig, {});
  vm::Machine m1(inst.image);
  ASSERT_TRUE(m1.run().ok());
  ASSERT_EQ(m1.output_f64().size(), m0.output_f64().size());
  for (std::size_t i = 0; i < m0.output_f64().size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(m1.output_f64()[i]),
              std::bit_cast<std::uint64_t>(m0.output_f64()[i]));
  }
  // The shadow loop makes this expensive -- that is the point.
  EXPECT_GT(m1.instructions_retired(), m0.instructions_retired() * 20);
}

// ---------------------------------------------------------------------------
// Composition refinement.

TEST(Refinement, ProducesVerifiedPassingSubset) {
  const kernels::Workload w = kernels::make_mg('W');
  const program::Image img = kernels::build_image(w);
  auto ix = StructureIndex::build(program::lift(img));
  const auto verifier = kernels::make_verifier(w, img);
  search::SearchOptions opts;
  opts.keep_log = false;
  opts.refine_composition = true;
  const search::SearchResult r = search::run_search(img, &ix, *verifier,
                                                    opts);
  if (r.final_passed) {
    GTEST_SKIP() << "union composition passed; nothing to refine";
  }
  ASSERT_TRUE(r.refined);
  // The refined composition passes by construction; double-check it.
  const verify::EvalResult check =
      verify::evaluate_config(img, ix, r.refined_config, *verifier);
  EXPECT_TRUE(check.passed) << check.failure;
  // It replaces something, but no more than the (failing) union.
  EXPECT_GT(r.refined_stats.replaced_static, 0u);
  EXPECT_LE(r.refined_stats.replaced_static, r.stats.replaced_static);
}

}  // namespace
}  // namespace fpmix
