// Section 3.2 reproduction: the AMG microkernel end-to-end story.
//
// Paper: (1) the search verifies the entire kernel can run in single
// precision; (2) the analysis overhead is only 1.2X (the kernel spends its
// time in uninstrumented-cheap loops relative to FP density); (3) manually
// converting the whole program to single precision yields a ~2X speedup
// (175.48s -> 95.25s user CPU time on their machine).
//
// Part (3) is measured natively: the double vs float multigrid twins from
// src/linalg running a fixed number of V-cycles on a grid large enough to
// be bandwidth-bound (google-benchmark timing).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "linalg/csr.hpp"
#include "linalg/stencil_mg.hpp"
#include "search/search.hpp"

namespace {

constexpr std::size_t kNativeGrid = 1023;   // CSR twin: ~8 MiB/array
constexpr std::size_t kStencilGrid = 2047;  // stencil twin: ~32 MiB/array
constexpr std::size_t kNativeCycles = 2;

template <typename T>
void run_native_vcycle(benchmark::State& state) {
  const std::size_t m = kNativeGrid;
  // Setup (hierarchy construction) happens once, outside the timed region,
  // like the AMG microkernel's setup phase.
  const fpmix::linalg::PoissonMg<T> mg(m);
  std::vector<T> b(m * m, T(0));
  b[b.size() / 2] = T(1);
  b[b.size() / 3] = T(-1);
  for (auto _ : state) {
    std::vector<T> x(m * m, T(0));
    const double r = mg.cycle(b, &x, kNativeCycles);
    benchmark::DoNotOptimize(r);
  }
}

void BM_AmgNativeDouble(benchmark::State& state) {
  run_native_vcycle<double>(state);
}
void BM_AmgNativeSingle(benchmark::State& state) {
  run_native_vcycle<float>(state);
}

// Stencil (matrix-free) twin: pure FP arrays, the bandwidth-bound regime of
// the paper's kernel where single precision approaches its full 2X.
template <typename T>
void run_stencil_vcycle(benchmark::State& state) {
  fpmix::linalg::StencilMg<T> mg(kStencilGrid);
  std::vector<T> f(mg.padded_size(), T(0));
  f[f.size() / 2] = T(1);
  f[f.size() / 3] = T(-1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mg.solve(f, kNativeCycles));
  }
}
void BM_AmgStencilDouble(benchmark::State& state) {
  run_stencil_vcycle<double>(state);
}
void BM_AmgStencilSingle(benchmark::State& state) {
  run_stencil_vcycle<float>(state);
}

BENCHMARK(BM_AmgNativeDouble)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AmgNativeSingle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AmgStencilDouble)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AmgStencilSingle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace fpmix;

  std::printf("Section 3.2: AMG microkernel\n\n");

  // (1) + (2): search replaceability and analysis overhead in the VM.
  {
    const kernels::Workload w = kernels::make_amg();
    const program::Image img = kernels::build_image(w);
    auto ix = config::StructureIndex::build(program::lift(img));
    const auto verifier = kernels::make_verifier(w, img);
    const search::SearchResult res =
        search::run_search(img, &ix, *verifier, {});
    std::printf("search: %zu candidates, %zu configs tested, %.1f%% static "
                "/ %.1f%% dynamic replaced, final %s\n",
                res.candidates, res.configs_tested, res.stats.static_pct,
                res.stats.dynamic_pct, res.final_passed ? "pass" : "fail");
    std::printf("(paper: all instructions replaced by single precision)\n");

    const program::Image orig = img;
    const program::Image inst = bench::all_double_instrumented(orig);
    const bench::TimedRun ro = bench::run_timed(orig);
    const bench::TimedRun ri = bench::run_timed(inst);
    std::printf("analysis overhead: %.1fX instructions, %.1fX wall "
                "(paper: 1.2X)\n\n",
                double(ri.instructions) / double(ro.instructions),
                ri.seconds / ro.seconds);
  }

  // (3): native double vs single speedup.
  std::printf("native multigrid V-cycle, double vs single (paper: 175.48s "
              "-> 95.25s, ~1.8X):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Also print a one-line summary ratio.
  {
    const std::size_t m = kNativeGrid;
    const linalg::PoissonMg<double> mgd(m);
    const linalg::PoissonMg<float> mgf(m);
    std::vector<double> bd(m * m, 0.0);
    bd[bd.size() / 2] = 1.0;
    std::vector<float> bf(m * m, 0.0f);
    bf[bf.size() / 2] = 1.0f;
    double td = 1e30, ts = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t1;
      std::vector<double> xd(m * m, 0.0);
      mgd.cycle(bd, &xd, kNativeCycles);
      td = std::min(td, t1.elapsed_seconds());
      Timer t2;
      std::vector<float> xf(m * m, 0.0f);
      mgf.cycle(bf, &xf, kNativeCycles);
      ts = std::min(ts, t2.elapsed_seconds());
    }
    std::printf("\nsummary (CSR cycle):     double %.3fs, single %.3fs, "
                "speedup %.2fX\n", td, ts, td / ts);

    // Stencil twin summary.
    linalg::StencilMg<double> smd(kStencilGrid);
    linalg::StencilMg<float> smf(kStencilGrid);
    std::vector<double> fd(smd.padded_size(), 0.0);
    fd[fd.size() / 2] = 1.0;
    std::vector<float> ff(smf.padded_size(), 0.0f);
    ff[ff.size() / 2] = 1.0f;
    double std_ = 1e30, sts = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t3;
      smd.solve(fd, kNativeCycles);
      std_ = std::min(std_, t3.elapsed_seconds());
      Timer t4;
      smf.solve(ff, kNativeCycles);
      sts = std::min(sts, t4.elapsed_seconds());
    }
    std::printf("summary (stencil cycle): double %.3fs, single %.3fs, "
                "speedup %.2fX (paper: ~1.8X)\n", std_, sts, std_ / sts);
  }
  return 0;
}
