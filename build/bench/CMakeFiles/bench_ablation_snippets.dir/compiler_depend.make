# Empty compiler generated dependencies file for bench_ablation_snippets.
# This may be replaced when dependencies are built.
