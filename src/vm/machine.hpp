// The virtual machine: executes a predecoded image, profiles it.
//
// Responsibilities beyond plain interpretation:
//  - per-instruction execution counts (the profiling run that drives search
//    prioritisation and the "dynamic % replaced" column of Figure 10);
//  - the tag trap: any instruction that *interprets* a 64-bit slot as a
//    double while the slot carries the 0x7FF4DEAD replacement sentinel stops
//    the machine with a diagnostic. This realises the paper's design goal
//    that "anything that our analysis misses causes a crash, which is much
//    easier to debug than mis-rounded operations";
//  - the intrinsic table (math library, output channel, mini-MPI).
//
// Two execution engines share all machine state and semantics:
//  - Engine::kMicroOp (default): executes the ExecutableImage's predecoded
//    micro-op stream through a function-pointer handler table; operand
//    kinds were classified at predecode time, so the inner loop does no
//    per-step operand dispatch. Separate profiling and non-profiling run
//    loops keep counter maintenance off the pass/fail-trial path.
//  - Engine::kSwitch: the original decode-and-switch interpreter, retained
//    as the differential-testing oracle (tests/vm_engine_test.cpp runs
//    every program on both engines and demands bit-identical behaviour).
//    Use it when validating engine changes or bisecting a miscompare.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/instr.hpp"
#include "program/image.hpp"
#include "support/fault.hpp"
#include "vm/exec_image.hpp"
#include "vm/minimpi.hpp"

namespace fpmix::vm {

/// Execution engine selection (see file comment).
enum class Engine : std::uint8_t {
  kMicroOp = 0,  // predecoded micro-op handler table (fast path, default)
  kSwitch = 1,   // reference decode-and-switch interpreter (oracle)
  kJit = 2,      // baseline template JIT (x86-64 hosts; degrades to
                 // kMicroOp with a one-time warning when unsupported)
};

struct RunResult {
  enum class Status {
    kHalted,        // clean stop (halt, or return from the entry function)
    kTrapped,       // runtime fault; see `trap_message`
    kOutOfBudget,   // exceeded Options::max_instructions
    kDeadline,      // exceeded Options::deadline_ns of wall-clock time
  };
  Status status = Status::kHalted;
  std::string trap_message;
  std::uint64_t instructions_retired = 0;
  /// True when the trap was the replaced-double tag trap -- a narrowed
  /// value escaped the instrumentation. Lets callers classify sentinel
  /// escapes without parsing trap_message.
  bool sentinel_escape = false;

  bool ok() const { return status == Status::kHalted; }
};

class Machine {
 public:
  struct Options {
    /// Hard cap on retired instructions; infinite loops in broken patched
    /// binaries must not hang the search.
    std::uint64_t max_instructions = 1ull << 33;

    /// Detect replaced-double sentinels consumed by double-interpreting
    /// instructions (see file comment). Disable only in tests that study
    /// the escape behaviour itself.
    bool tag_trap = true;

    /// Mini-MPI attachment; nullptr runs as a single rank.
    MiniMpi* mpi = nullptr;
    int rank = 0;

    /// Collect per-instruction execution counts. Trial evaluations that
    /// only need pass/fail should turn this off: the non-profiling run
    /// loop skips counter maintenance entirely.
    bool profile = true;

    /// Execution engine; kSwitch is the differential-testing oracle.
    Engine engine = Engine::kMicroOp;

    /// Wall-clock deadline for the whole run; 0 disables. Enforced on both
    /// engines by running in bounded retired-instruction chunks and
    /// checking the clock between chunks, so the hot dispatch loops stay
    /// untouched. A run that exceeds it stops with Status::kDeadline.
    std::uint64_t deadline_ns = 0;

    /// Retired instructions between wall-clock checks (and therefore the
    /// worst-case overshoot, in instructions, past the deadline).
    std::uint64_t deadline_check_interval = 1ull << 20;

    /// Planned machine fault (fault-injection campaigns); nullptr or
    /// kind == kNone runs clean. Applied at the exact retired-instruction
    /// count of the spec, on either engine.
    const fault::VmFaultSpec* fault = nullptr;

    /// JIT engine only: wrap the out-of-line C++ helpers (generic-exec,
    /// intrinsic, ret) in wall-clock accounting so bench_jit_compile can
    /// split kernel time into jitted code vs helper time (Amdahl view).
    /// Adds a clock read per helper call; leave off for timed runs.
    bool time_jit_helpers = false;
  };

  /// Convenience constructors: predecode a private ExecutableImage from
  /// `image` (one decode + lowering pass per Machine). Hot paths that
  /// construct many Machines should predecode once with
  /// ExecutableImage::build and use the shared_ptr constructor.
  explicit Machine(const program::Image& image) : Machine(image, Options{}) {}
  Machine(const program::Image& image, Options options);

  /// Shares an immutable predecoded image; no per-Machine decode work and
  /// no image copy. `exec` may be shared freely across Machines/threads.
  explicit Machine(std::shared_ptr<const ExecutableImage> exec)
      : Machine(std::move(exec), Options{}) {}
  Machine(std::shared_ptr<const ExecutableImage> exec, Options options);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Runs from the image entry point to completion. May be called once.
  RunResult run();

  /// Values emitted through the output_f64 / output_i64 intrinsics; these
  /// are what verification routines inspect.
  const std::vector<double>& output_f64() const { return output_f64_; }
  const std::vector<std::int64_t>& output_i64() const { return output_i64_; }

  std::uint64_t instructions_retired() const { return retired_; }

  /// Wall-clock nanoseconds spent in JIT helper calls (generic-exec,
  /// intrinsic, ret resolution) when Options::time_jit_helpers was set;
  /// 0 otherwise and on the interpreter engines.
  std::uint64_t jit_helper_ns() const { return jit_helper_ns_; }
  /// Helper-call count alongside jit_helper_ns() (same gating).
  std::uint64_t jit_helper_calls() const { return jit_helper_calls_; }

  /// The shared predecoded image this machine executes.
  const std::shared_ptr<const ExecutableImage>& executable() const {
    return exec_;
  }

  /// Execution count per instruction address (this image's addresses).
  std::map<std::uint64_t, std::uint64_t> profile_by_address() const;

  /// Execution counts attributed to original-program addresses via the
  /// image's provenance table (identity when the image was never patched).
  std::map<std::uint64_t, std::uint64_t> profile_by_origin() const;

  /// Reads VM memory (for inspecting analysis areas written by
  /// instrumentation, e.g. cancellation counters). Throws VmError when the
  /// range is out of bounds.
  std::vector<std::uint8_t> read_memory(std::uint64_t addr,
                                        std::size_t size) const;
  std::uint64_t read_memory_u64(std::uint64_t addr) const;

 private:
  friend struct MicroExec;  // the micro-op handlers (machine.cpp)
  friend struct JitExec;    // the JIT driver + its C++ helpers (machine.cpp)

  struct Xmm {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  struct Flags {
    bool eq = false;
    bool lt = false;   // signed / FP less-than
    bool ltu = false;  // unsigned less-than
  };

  // Internal trap signal; caught by run().
  struct Trap {
    std::string message;
    bool sentinel = false;  // the replaced-double tag trap
  };
  [[noreturn]] void trap(std::string message) const;

  /// Uniform diagnostic suffix for trap messages: program counter, address,
  /// opcode mnemonic and retired-instruction count of the faulting
  /// instruction -- enough to act on a journaled failure line without
  /// re-running the trial. Identical on both engines.
  std::string trap_context(std::size_t pc, std::uint64_t retired) const;

  // Memory access (bounds-checked).
  std::uint64_t effective_address(const arch::MemRef& m) const;
  std::uint64_t load(std::uint64_t addr, unsigned bytes) const;
  void store(std::uint64_t addr, std::uint64_t value, unsigned bytes);

  // Operand helpers.
  std::uint64_t int_value(const arch::Operand& op) const;  // gpr or imm
  std::uint64_t read_f64_bits(const arch::Instr& ins, const arch::Operand& op,
                              unsigned lane) const;
  void check_not_tagged(const arch::Instr& ins, std::uint64_t bits) const;

  void exec_intrinsic(const arch::Instr& ins);
  void push64(std::uint64_t v);
  std::uint64_t pop64();

  // Reference engine: executes one decoded instruction (also the micro-op
  // engine's fallback for unspecialized operand forms).
  void step_switch(const arch::Instr& ins);
  RunResult run_switch();

  // Micro-op engine; the template parameter selects the profiling loop.
  template <bool Profile>
  RunResult run_micro();

  // JIT engine: runs natively compiled code (src/vm/jit/), bit-identical to
  // the interpreters. Caller must have verified jit::jit_supported().
  RunResult run_jit();

  /// Invokes the selected engine from the current machine state.
  RunResult run_engine();

  /// Chunked supervision loop: enforces Options::deadline_ns and fires the
  /// planned Options::fault by re-entering the engine in bounded
  /// retired-instruction chunks (both engines resume from pc_/retired_
  /// after a budget stop).
  RunResult run_supervised();

  /// Applies a state-mutating fault (kBitFlip / kSentinel) to the current
  /// machine state.
  void apply_state_fault(const fault::VmFaultSpec& spec);

  std::shared_ptr<const ExecutableImage> exec_;
  Options options_;

  std::vector<std::uint8_t> memory_;
  /// Raw view of memory_, cached at construction (memory_ never resizes):
  /// load/store bounds checks read one field instead of the vector's
  /// begin/end pair.
  std::uint8_t* mem_base_ = nullptr;
  std::uint64_t mem_size_ = 0;
  /// One extra slot past the architectural registers: kZeroRegSlot, always
  /// zero, targeted by micro-op address recipes whose base/index register
  /// is absent (makes effective-address computation branch-free).
  std::uint64_t gpr_[arch::kNumGprs + 1] = {};
  Xmm xmm_[arch::kNumXmms];
  Flags flags_;

  std::size_t pc_ = 0;        // index into exec_->code() / exec_->uops()
  bool stopped_ = false;
  std::uint64_t retired_ = 0;
  std::vector<std::uint64_t> counts_;

  std::vector<double> output_f64_;
  std::vector<std::int64_t> output_i64_;
  std::uint64_t jit_helper_ns_ = 0;     // see Options::time_jit_helpers
  std::uint64_t jit_helper_calls_ = 0;
  bool ran_ = false;
};

}  // namespace fpmix::vm
