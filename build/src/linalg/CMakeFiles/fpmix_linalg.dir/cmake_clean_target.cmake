file(REMOVE_RECURSE
  "libfpmix_linalg.a"
)
