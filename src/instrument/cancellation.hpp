// Cancellation-detection instrumentation: the related-work comparator.
//
// Section 4.4 of the paper describes the authors' earlier dynamic
// cancellation detector [Lam et al., WHIST'11] and the heavier "badness"
// quantifying tools built on it [Benz et al., PLDI'12], whose overheads
// "range from 160X to over 1000X" -- two orders of magnitude above the
// mixed-precision snippets. This module implements such an analysis inside
// the same patching framework so the overhead comparison can be reproduced
// (bench_cancellation_overhead).
//
// Every double-precision add/subtract is wrapped with a snippet that
//   1. extracts the biased exponents of both inputs,
//   2. executes the original operation,
//   3. compares the result exponent against the larger input exponent; a
//      drop of >= min_cancel_bits is a cancellation event, recorded in a
//      per-instruction counter and a global magnitude histogram, and
//   4. runs a shadow-maintenance loop of configurable length on every
//      operation -- modelling the shadow-value bookkeeping that makes the
//      cited tools so expensive.
//
// Counters live in an analysis area appended to the program's bss, readable
// after the run via vm::Machine::read_memory.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "program/image.hpp"
#include "program/program.hpp"
#include "vm/machine.hpp"

namespace fpmix::instrument {

struct CancellationOptions {
  /// Exponent drop that counts as a cancellation (1 = any lost leading bit).
  int min_cancel_bits = 1;
  /// Iterations of the per-operation shadow-maintenance loop. The default
  /// approximates the cited tools' per-operation cost; 0 disables the loop
  /// (leaving only the lightweight detector of Lam et al.).
  int shadow_iters = 384;
};

struct CancellationLayout {
  std::uint64_t counter_base = 0;  // one u64 counter per instrumented instr
  std::size_t num_slots = 0;
  std::uint64_t histogram_base = 0;  // 64 u64 bins (cancelled bits)
  std::uint64_t shadow_base = 0;     // scratch cell for the shadow loop
  /// Original instruction address per counter slot.
  std::vector<std::uint64_t> slot_origin;
};

struct CancellationResult {
  program::Image image;  // rewritten binary with the analysis embedded
  CancellationLayout layout;
};

/// Instruments every double add/sub in the image with the cancellation
/// detector.
CancellationResult instrument_cancellation(
    const program::Image& image, const CancellationOptions& options = {});

/// Aggregated results read back from a finished machine.
struct CancellationReport {
  std::uint64_t total_events = 0;
  /// Cancellation events per original instruction address.
  std::map<std::uint64_t, std::uint64_t> events_by_addr;
  /// Histogram over the number of cancelled leading bits (bin 63 = 63+).
  std::array<std::uint64_t, 64> bits_histogram{};
};

CancellationReport read_cancellation_report(const vm::Machine& machine,
                                            const CancellationLayout& layout);

}  // namespace fpmix::instrument
