file(REMOVE_RECURSE
  "CMakeFiles/fpmix_linalg.dir/banded.cpp.o"
  "CMakeFiles/fpmix_linalg.dir/banded.cpp.o.d"
  "CMakeFiles/fpmix_linalg.dir/csr.cpp.o"
  "CMakeFiles/fpmix_linalg.dir/csr.cpp.o.d"
  "CMakeFiles/fpmix_linalg.dir/dense.cpp.o"
  "CMakeFiles/fpmix_linalg.dir/dense.cpp.o.d"
  "CMakeFiles/fpmix_linalg.dir/matrix_market.cpp.o"
  "CMakeFiles/fpmix_linalg.dir/matrix_market.cpp.o.d"
  "CMakeFiles/fpmix_linalg.dir/refine.cpp.o"
  "CMakeFiles/fpmix_linalg.dir/refine.cpp.o.d"
  "libfpmix_linalg.a"
  "libfpmix_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpmix_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
