#include "runner/wire.hpp"

#include <cstring>

#include "support/journal.hpp"  // crc32

namespace fpmix::runner {

namespace {

void put_raw_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t read_raw_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(12 + payload.size());
  put_raw_u32(&out, kFrameMagic);
  put_raw_u32(&out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_raw_u32(&out, crc32(payload));
  return out;
}

FrameStatus decode_frame(std::string_view buffer, std::string* payload,
                         std::size_t* consumed) {
  if (buffer.size() < 8) return FrameStatus::kNeedMore;
  if (read_raw_u32(buffer.data()) != kFrameMagic) return FrameStatus::kCorrupt;
  const std::uint32_t len = read_raw_u32(buffer.data() + 4);
  if (len > kMaxFramePayload) return FrameStatus::kCorrupt;
  const std::size_t total = 8 + static_cast<std::size_t>(len) + 4;
  if (buffer.size() < total) return FrameStatus::kNeedMore;
  const std::string_view body = buffer.substr(8, len);
  if (crc32(body) != read_raw_u32(buffer.data() + 8 + len)) {
    return FrameStatus::kCorrupt;
  }
  payload->assign(body);
  *consumed = total;
  return FrameStatus::kOk;
}

void put_u8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void put_u32(std::string* out, std::uint32_t v) { put_raw_u32(out, v); }

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_string(std::string* out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

bool WireReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t WireReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t WireReader::u32() {
  if (!take(4)) return 0;
  const std::uint32_t v = read_raw_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(
                                                        i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (!take(len)) return {};
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

std::string encode_request(const TrialRequest& req) {
  std::string out;
  put_u8(&out, req.opcode);
  put_string(&out, req.key);
  put_u32(&out, req.exec_index);
  put_string(&out, req.config_key);
  return out;
}

bool decode_request(std::string_view payload, TrialRequest* out) {
  WireReader r(payload);
  out->opcode = r.u8();
  out->key = r.str();
  out->exec_index = r.u32();
  out->config_key = r.str();
  if (!r.done()) return false;
  return out->opcode == kReqFull || out->opcode == kReqDelta;
}

std::string encode_result(const WireResult& res) {
  std::string out;
  put_u8(&out, res.passed ? 1 : 0);
  put_u8(&out, res.failure_class);
  put_u8(&out, res.run_status);
  put_string(&out, res.failure);
  put_u64(&out, res.instructions_retired);
  put_u64(&out, res.patch_ns);
  put_u64(&out, res.predecode_ns);
  put_u64(&out, res.run_ns);
  put_u64(&out, res.verify_ns);
  put_u8(&out, res.image_cache_hit);
  put_u64(&out, res.patch_saved_ns);
  put_u64(&out, res.predecode_saved_ns);
  put_u32(&out, res.funcs_reused);
  put_u32(&out, res.funcs_total);
  return out;
}

bool decode_result(std::string_view payload, WireResult* out) {
  WireReader r(payload);
  out->passed = r.u8() != 0;
  out->failure_class = r.u8();
  out->run_status = r.u8();
  out->failure = r.str();
  out->instructions_retired = r.u64();
  out->patch_ns = r.u64();
  out->predecode_ns = r.u64();
  out->run_ns = r.u64();
  out->verify_ns = r.u64();
  out->image_cache_hit = r.u8();
  out->patch_saved_ns = r.u64();
  out->predecode_saved_ns = r.u64();
  out->funcs_reused = r.u32();
  out->funcs_total = r.u32();
  return r.done();
}

bool to_eval_result(const WireResult& w, verify::EvalResult* out) {
  if (w.failure_class >
          static_cast<std::uint8_t>(verify::FailureClass::kResource) ||
      w.run_status > static_cast<std::uint8_t>(
                         vm::RunResult::Status::kDeadline)) {
    return false;
  }
  *out = verify::EvalResult{};
  out->passed = w.passed;
  out->failure_class = static_cast<verify::FailureClass>(w.failure_class);
  out->run_status = static_cast<vm::RunResult::Status>(w.run_status);
  out->failure = w.failure;
  out->instructions_retired = w.instructions_retired;
  out->patch_ns = w.patch_ns;
  out->predecode_ns = w.predecode_ns;
  out->run_ns = w.run_ns;
  out->verify_ns = w.verify_ns;
  out->image_cache_hit = w.image_cache_hit != 0;
  out->patch_saved_ns = w.patch_saved_ns;
  out->predecode_saved_ns = w.predecode_saved_ns;
  out->funcs_reused = w.funcs_reused;
  out->funcs_total = w.funcs_total;
  return true;
}

WireResult from_eval_result(const verify::EvalResult& r) {
  WireResult w;
  w.passed = r.passed;
  w.failure_class = static_cast<std::uint8_t>(r.failure_class);
  w.run_status = static_cast<std::uint8_t>(r.run_status);
  w.failure = r.failure;
  w.instructions_retired = r.instructions_retired;
  w.patch_ns = r.patch_ns;
  w.predecode_ns = r.predecode_ns;
  w.run_ns = r.run_ns;
  w.verify_ns = r.verify_ns;
  w.image_cache_hit = r.image_cache_hit ? 1 : 0;
  w.patch_saved_ns = r.patch_saved_ns;
  w.predecode_saved_ns = r.predecode_saved_ns;
  w.funcs_reused = r.funcs_reused;
  w.funcs_total = r.funcs_total;
  return w;
}

}  // namespace fpmix::runner
