// Figure 9 reproduction: NAS benchmark instrumentation overhead.
//
// Paper (Figure 9): all-double snippet instrumentation costs
//   ep.A 3.4X  ep.C 5.5X   cg.A 3.4X  cg.C 4.5X
//   ft.A 4.2X  ft.C 7.0X   mg.A 5.8X  mg.C 14.7X
// i.e. single-digit overheads that grow with class size, "several orders of
// magnitude lower than existing floating-point analysis tools."
//
// We report the overhead both as a retired-instruction ratio (deterministic)
// and as a wall-clock ratio on this machine.
#include <cstdio>

#include "bench_util.hpp"

namespace fpmix {
namespace {

void run_row(const kernels::Workload& w) {
  const program::Image orig = kernels::build_image(w);
  const program::Image inst = bench::all_double_instrumented(orig);

  const bench::TimedRun ro = bench::run_timed(orig);
  const bench::TimedRun ri = bench::run_timed(inst);
  if (!ro.ok || !ri.ok) {
    std::printf("%-8s FAILED: %s%s\n", w.name.c_str(), ro.error.c_str(),
                ri.error.c_str());
    return;
  }
  std::printf("%-8s %12llu %12llu %8.1fX %8.1fX\n", w.name.c_str(),
              static_cast<unsigned long long>(ro.instructions),
              static_cast<unsigned long long>(ri.instructions),
              double(ri.instructions) / double(ro.instructions),
              ri.seconds / ro.seconds);
}

}  // namespace
}  // namespace fpmix

int main() {
  using namespace fpmix;
  std::printf("Figure 9: NAS benchmark overhead, all-double snippet "
              "instrumentation\n");
  std::printf("(paper: ep.A 3.4X ep.C 5.5X cg.A 3.4X cg.C 4.5X ft.A 4.2X "
              "ft.C 7.0X mg.A 5.8X mg.C 14.7X)\n\n");
  std::printf("%-8s %12s %12s %9s %9s\n", "bench", "orig instrs",
              "inst instrs", "instr ovh", "wall ovh");
  bench::print_rule();
  for (char cls : {'A', 'C'}) {
    run_row(kernels::make_ep(cls));
    run_row(kernels::make_cg(cls));
    run_row(kernels::make_ft(cls));
    run_row(kernels::make_mg(cls));
  }
  return 0;
}
