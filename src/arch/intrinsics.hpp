// Intrinsic calls: the VM's model of library routines and system services.
//
// Real binaries call libm / MPI / libc; our virtual programs invoke the same
// services through the `intrin` instruction. The instrumenter treats FP
// intrinsics like the paper treats calls into uninstrumented libraries: the
// arguments must be untagged (upcast) before the call, and -- when the
// enclosing code region is mapped to single precision -- a single-precision
// variant is substituted (Section 2.5 discusses exactly this special
// handling for transcendental functions).
//
// ABI: f64 arguments in xmm0 (and xmm1), f64 result in xmm0; integer
// arguments in r1..r3, integer result in r0. F32 variants use the low 32
// bits of the same registers. Every F32 variant computes
//   (f32) f((f64) x)
// i.e. the double-precision function applied to the widened argument and
// rounded once -- which makes an all-single instrumented run bit-identical
// to a manually converted single-precision build (Section 3.1).
#pragma once

#include <cstdint>

namespace fpmix::arch::intrinsics {

enum class Id : std::uint16_t {
  // Math, f64 flavour: xmm0 (, xmm1) -> xmm0.
  kSin = 0,
  kCos,
  kTan,
  kExp,
  kLog,
  kPow,   // xmm0 ^ xmm1
  kFloor,
  kCeil,
  kFabs,
  // Math, f32 flavour (twins of the above, in the same order).
  kSinF32,
  kCosF32,
  kTanF32,
  kExpF32,
  kLogF32,
  kPowF32,
  kFloorF32,
  kCeilF32,
  kFabsF32,

  // Output channel: appends a value to the VM's output vector. These are the
  // values the verification routine inspects.
  kOutputF64,  // xmm0
  kOutputI64,  // r1

  // Console printing (examples / debugging).
  kPrintF64,   // xmm0
  kPrintI64,   // r1
  kPrintStr,   // r1 = address, r2 = length

  // Mini-MPI (Figure 8). No-ops in a single-rank VM.
  kMpiRank,          // r0 <- rank
  kMpiSize,          // r0 <- number of ranks
  kMpiBarrier,
  kMpiAllreduceSum,  // xmm0 <- sum of xmm0 across ranks
  kMpiAllreduceMax,  // xmm0 <- max of xmm0 across ranks
  kMpiAllreduceVec,  // r1 = address, r2 = count: elementwise sum in place

  kNumIntrinsics,
};

struct IntrinInfo {
  const char* name;
  std::uint8_t num_f64_args;  // consumed from xmm0..xmm1 (f64 flavour)
  bool has_f64_result;        // produces xmm0 (f64 flavour)
  Id f32_twin;                // same-id when no twin exists
};

const IntrinInfo& intrin_info(Id id);
const char* intrin_name(Id id);

/// True when the intrinsic consumes or produces floating-point values and
/// therefore participates in tag discipline.
bool intrin_touches_fp(Id id);

/// True when a single-precision variant exists (replacement candidate).
bool intrin_has_f32_twin(Id id);

}  // namespace fpmix::arch::intrinsics
