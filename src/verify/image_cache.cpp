#include "verify/image_cache.hpp"

#include <utility>

#include "support/hash.hpp"

namespace fpmix::verify {

const ImageCache::Entry* ImageCache::find(std::uint64_t fingerprint,
                                          std::uint64_t config_hash,
                                          std::string_view canonical_key) {
  const std::uint64_t key = mix(fingerprint, config_hash);
  auto it = by_key_.find(key);
  if (it == by_key_.end() || it->second->canonical_key != canonical_key) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->entry;
}

void ImageCache::insert(std::uint64_t fingerprint, std::uint64_t config_hash,
                        std::string canonical_key, Entry entry) {
  if (capacity_ == 0) return;
  const std::uint64_t key = mix(fingerprint, config_hash);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    lru_.erase(it->second);
    by_key_.erase(it);
  }
  lru_.push_front(
      Node{key, std::move(canonical_key), std::move(entry)});
  by_key_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().mixed_key);
    lru_.pop_back();
  }
}

std::uint64_t image_fingerprint(const program::Image& image) {
  std::uint64_t h = fnv1a64(std::string_view(
      reinterpret_cast<const char*>(image.code.data()), image.code.size()));
  h = fnv1a64(std::string_view(
                  reinterpret_cast<const char*>(image.data.data()),
                  image.data.size()),
              h);
  h = fnv1a64_mix(h, image.code_base);
  h = fnv1a64_mix(h, image.data_base);
  h = fnv1a64_mix(h, image.bss_base);
  h = fnv1a64_mix(h, image.bss_size);
  h = fnv1a64_mix(h, image.memory_size);
  h = fnv1a64_mix(h, image.entry);
  return h;
}

}  // namespace fpmix::verify
