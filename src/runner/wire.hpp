// Length-prefixed, CRC-sealed pipe protocol between the search driver and
// its sandboxed trial workers.
//
// A frame is `magic u32 | payload_len u32 | payload | crc32(payload) u32`,
// all little-endian. The CRC (the same IEEE CRC-32 that seals journal
// records) turns a worker dying mid-write -- or a fault campaign corrupting
// the stream on purpose -- into a *detected* protocol error the supervisor
// classifies and retries, never into a silently wrong trial verdict.
//
// Payloads are flat field sequences (u8/u32/u64/length-prefixed string)
// with no alignment or host-endianness dependence; both directions are
// plain functions over std::string so the whole protocol unit-tests
// in-process without forking anything.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "verify/evaluate.hpp"

namespace fpmix::runner {

/// Frame magic ("FPMX"); a stream that does not start with it is corrupt.
constexpr std::uint32_t kFrameMagic = 0x46504D58u;
/// Hard cap on a frame payload; anything larger is treated as corruption
/// (trial requests and results are a few hundred bytes).
constexpr std::uint32_t kMaxFramePayload = 1u << 24;

/// Wraps `payload` in a frame (magic + length + payload + CRC).
std::string encode_frame(std::string_view payload);

enum class FrameStatus : std::uint8_t {
  kOk,        // one complete, CRC-verified frame was extracted
  kNeedMore,  // the buffer holds only a frame prefix so far
  kCorrupt,   // bad magic, oversized length, or CRC mismatch
};

/// Tries to extract one frame from the front of `buffer`. On kOk, *payload
/// receives the verified payload and *consumed the number of buffer bytes
/// to discard; both are untouched otherwise.
FrameStatus decode_frame(std::string_view buffer, std::string* payload,
                         std::size_t* consumed);

// ---- Payload field primitives ---------------------------------------------

void put_u8(std::string* out, std::uint8_t v);
void put_u32(std::string* out, std::uint32_t v);
void put_u64(std::string* out, std::uint64_t v);
void put_string(std::string* out, std::string_view s);

/// Sequential field reader; any malformed read poisons the reader (ok()
/// turns false and every later read returns zero values).
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  bool ok() const { return ok_; }
  /// True when every byte was consumed and no read failed.
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool take(std::size_t n);
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Trial request (driver -> worker) -------------------------------------

/// Request opcodes: how `config_key` is to be interpreted.
constexpr std::uint8_t kReqFull = 1;   // full canonical_key serialization
constexpr std::uint8_t kReqDelta = 2;  // delta script against the worker's
                                       // session base config (see
                                       // PrecisionConfig::apply_delta)

struct TrialRequest {
  std::uint8_t opcode = kReqFull;
  std::string key;         // config digest (journal identity, injector key)
  std::uint32_t exec_index = 0;  // per-config execution counter; the fault
                                 // injector's attempt index, so crash
                                 // retries draw fresh faults
  std::string config_key;  // full canonical key (kReqFull) or delta script
                           // against the session base (kReqDelta). Either
                           // way the decoded config becomes the worker's
                           // new session base.
};

std::string encode_request(const TrialRequest& req);
bool decode_request(std::string_view payload, TrialRequest* out);

// ---- Trial result (worker -> driver) --------------------------------------

/// The slice of verify::EvalResult the search driver consumes. Outputs stay
/// in the worker: the verifier already judged them there.
struct WireResult {
  bool passed = false;
  std::uint8_t failure_class = 0;  // verify::FailureClass
  std::uint8_t run_status = 0;     // vm::RunResult::Status
  std::string failure;
  std::uint64_t instructions_retired = 0;
  std::uint64_t patch_ns = 0;
  std::uint64_t predecode_ns = 0;
  std::uint64_t run_ns = 0;
  std::uint64_t verify_ns = 0;
  // Incremental-pipeline accounting (mirrors verify::EvalResult).
  std::uint8_t image_cache_hit = 0;
  std::uint64_t patch_saved_ns = 0;
  std::uint64_t predecode_saved_ns = 0;
  std::uint32_t funcs_reused = 0;
  std::uint32_t funcs_total = 0;
};

std::string encode_result(const WireResult& r);
bool decode_result(std::string_view payload, WireResult* out);

/// WireResult -> EvalResult, validating the enum fields (a corrupt-but-CRC-
/// passing value cannot smuggle an out-of-range class into the search).
bool to_eval_result(const WireResult& w, verify::EvalResult* out);
/// EvalResult -> WireResult.
WireResult from_eval_result(const verify::EvalResult& r);

}  // namespace fpmix::runner
