#include "program/layout.hpp"

#include <vector>

#include "arch/encode.hpp"
#include "support/error.hpp"

namespace fpmix::program {
namespace {

/// True when block `bi`'s fall-through edge needs an explicit jmp because
/// its successor will not be laid out immediately after it.
bool needs_explicit_jump(const Function& fn, std::size_t bi) {
  const BasicBlock& b = fn.blocks[bi];
  if (b.ends_with_stop()) return false;
  if (b.ends_with_branch() && !b.ends_with_cond_branch()) return false;
  FPMIX_CHECK(b.fallthrough != kNoIndex);
  return static_cast<std::size_t>(b.fallthrough) != bi + 1;
}

// Size of an emitted jmp (opcode + form + 8-byte imm).
std::uint32_t jmp_size() {
  static const std::uint32_t size = arch::encoded_size(
      arch::make2(arch::Opcode::kJmp, arch::Operand::none(),
                  arch::Operand::make_imm(0)));
  return size;
}

}  // namespace

Image relayout(const Program& prog) {
  prog.validate();

  // Pass 1: assign addresses. Instruction encodings have a fixed size that
  // does not depend on operand values, so one forward pass suffices.
  std::vector<std::uint64_t> func_addr(prog.functions.size());
  std::vector<std::vector<std::uint64_t>> block_addr(prog.functions.size());
  std::uint64_t pc = prog.code_base;
  for (std::size_t fi = 0; fi < prog.functions.size(); ++fi) {
    const Function& fn = prog.functions[fi];
    func_addr[fi] = pc;
    block_addr[fi].resize(fn.blocks.size());
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      block_addr[fi][bi] = pc;
      for (const arch::Instr& ins : fn.blocks[bi].instrs) {
        pc += arch::encoded_size(ins);
      }
      if (needs_explicit_jump(fn, bi)) pc += jmp_size();
    }
  }

  // Pass 2: emit with resolved targets.
  Image img;
  img.code_base = prog.code_base;
  img.data_base = prog.data_base;
  img.data = prog.data;
  img.bss_base = prog.bss_base;
  img.bss_size = prog.bss_size;
  img.memory_size = prog.memory_size;
  img.code.reserve(pc - prog.code_base);

  for (std::size_t fi = 0; fi < prog.functions.size(); ++fi) {
    const Function& fn = prog.functions[fi];
    const std::uint64_t fn_start = func_addr[fi];
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const BasicBlock& blk = fn.blocks[bi];
      std::uint64_t last_origin = arch::kNoAddr;
      for (std::size_t ii = 0; ii < blk.instrs.size(); ++ii) {
        arch::Instr ins = blk.instrs[ii];
        const auto& info = arch::opcode_info(ins.op);
        if (info.is_branch) {
          FPMIX_CHECK(ii + 1 == blk.instrs.size());
          ins.src.imm = static_cast<std::int64_t>(
              block_addr[fi][static_cast<std::size_t>(blk.taken)]);
        } else if (info.is_call) {
          ins.src.imm = static_cast<std::int64_t>(
              func_addr[static_cast<std::size_t>(ins.src.imm)]);
        }
        const std::uint64_t at = img.code_base + img.code.size();
        const std::uint64_t origin =
            (ins.origin != arch::kNoAddr) ? ins.origin : at;
        if (origin != at) img.origins.push_back({at, origin});
        last_origin = origin;
        arch::encode(ins, &img.code);
      }
      if (needs_explicit_jump(fn, bi)) {
        arch::Instr jmp = arch::make2(
            arch::Opcode::kJmp, arch::Operand::none(),
            arch::Operand::make_imm(static_cast<std::int64_t>(
                block_addr[fi][static_cast<std::size_t>(blk.fallthrough)])));
        const std::uint64_t at = img.code_base + img.code.size();
        if (last_origin != arch::kNoAddr && last_origin != at) {
          img.origins.push_back({at, last_origin});
        }
        arch::encode(jmp, &img.code);
      }
    }
    Symbol sym;
    sym.name = fn.name;
    sym.module = fn.module;
    sym.addr = fn_start;
    const std::uint64_t fn_end = (fi + 1 < prog.functions.size())
                                     ? func_addr[fi + 1]
                                     : pc;
    sym.size = fn_end - fn_start;
    img.symbols.push_back(std::move(sym));
  }

  img.entry = func_addr[static_cast<std::size_t>(prog.entry_function)];
  img.validate();
  return img;
}

Image rewrite_identity(const Image& image) { return relayout(lift(image)); }

}  // namespace fpmix::program
