// Append-only JSONL journaling for crash-safe incremental tools.
//
// A journal is a plain-text file of one JSON object per line. Records are
// appended with a single buffered write followed by a flush, so an
// interrupted process loses at most the line it was writing -- and readers
// ignore an unterminated final line, which makes truncated journals (crash,
// kill -9, full disk) safe to resume from.
//
// Only flat objects with string / integer / boolean values are supported;
// that is all the trial journal needs, and it keeps the parser small enough
// to audit.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fpmix {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

/// A flat JSON object, decoded: values are unescaped strings for string
/// fields and the literal token text for numbers / booleans.
using JsonRecord = std::map<std::string, std::string, std::less<>>;

/// Parses one flat JSON object line. Returns false (leaving *out
/// unspecified) on malformed input, nesting, or non-scalar values.
bool parse_flat_json(std::string_view line, JsonRecord* out);

/// Append-only JSONL writer. Not thread-safe; callers serialize appends.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending, creating it if absent.
  /// Returns false (and stays closed) when the file cannot be opened.
  bool open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  void close();

  /// Appends one record as a single line ('\n' added here) and flushes.
  void append(const std::string& json_object);

  /// Reads every complete line of `path`. A trailing chunk without a final
  /// newline -- the signature of a crash mid-append -- is dropped. A missing
  /// file yields an empty vector.
  static std::vector<std::string> read_lines(const std::string& path);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace fpmix
