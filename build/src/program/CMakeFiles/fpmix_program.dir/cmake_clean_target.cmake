file(REMOVE_RECURSE
  "libfpmix_program.a"
)
