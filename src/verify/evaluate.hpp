// Configuration evaluation: patch, run, verify -- the inner loop of the
// automatic search and the "Configuration Evaluation" box of Figure 2.
#pragma once

#include <memory>
#include <string_view>

#include "config/config.hpp"
#include "instrument/patch.hpp"
#include "program/image.hpp"
#include "support/fault.hpp"
#include "verify/verifier.hpp"
#include "vm/machine.hpp"

namespace fpmix::verify {

class TrialBuilder;

struct EvalOptions {
  std::uint64_t max_instructions = 1ull << 32;
  /// Per-instruction execution counts. Pass/fail trials never read them, so
  /// the search leaves this off and the VM takes its non-profiling run loop.
  bool profile = false;
  /// Execution engine; kSwitch is the differential-testing oracle.
  vm::Engine engine = vm::Engine::kMicroOp;
  /// Wall-clock deadline for the VM run; 0 disables. A trial that exceeds
  /// it fails with FailureClass::kTimeout instead of hanging the search.
  std::uint64_t deadline_ns = 0;
  /// Retired instructions between the VM's wall-clock checks.
  std::uint64_t deadline_check_interval = 1ull << 20;
  /// Planned faults for this evaluation attempt (fault-injection
  /// campaigns); nullptr evaluates clean.
  const fault::TrialFaults* faults = nullptr;
  /// Incremental patch+predecode front end (see verify/trial_builder.hpp).
  /// When set, trial construction reuses per-function variants and whole
  /// cached images across evaluations; when null, every evaluation builds
  /// from scratch. Both paths produce bit-identical executables.
  TrialBuilder* builder = nullptr;
};

/// Why a trial failed -- the per-trial taxonomy the search aggregates,
/// journals, and reports. Kept order-stable: the numeric values appear in
/// journal records.
enum class FailureClass : std::uint8_t {
  kNone = 0,           // trial passed
  kTrap,               // VM fault: bad memory access, div by zero, ...
  kSentinelEscape,     // a 0x7FF4DEAD replaced-double reached a consumer
  kDivergence,         // ran to completion but verification failed
  kTimeout,            // wall-clock deadline exceeded
  kBudget,             // retired-instruction budget exhausted
  kInternalError,      // harness-side exception during patch/predecode/run
  kCrash,              // isolated worker process died (SIGSEGV, SIGKILL, ...)
  kResource,           // resource cap hit: rlimit OOM / bad_alloc / SIGXCPU
};

/// Stable short name for journal records and reports ("trap",
/// "sentinel-escape", ...).
const char* failure_class_name(FailureClass c);

/// Parses a failure_class_name back; returns false on unknown names.
bool parse_failure_class(std::string_view name, FailureClass* out);

/// Heuristic classification of a legacy journal record's failure message
/// (records written before the class field existed).
FailureClass classify_failure_message(std::string_view message);

struct EvalResult {
  bool passed = false;
  vm::RunResult::Status run_status = vm::RunResult::Status::kHalted;
  FailureClass failure_class = FailureClass::kNone;
  std::string failure;               // empty when passed
  std::vector<double> outputs;
  std::uint64_t instructions_retired = 0;
  instrument::InstrumentStats stats;

  // Stage breakdown of this evaluation (SearchMetrics aggregates these).
  std::uint64_t patch_ns = 0;      // instrument_image
  std::uint64_t predecode_ns = 0;  // ExecutableImage::build of the patch
  std::uint64_t run_ns = 0;        // VM execution
  std::uint64_t verify_ns = 0;     // verifier.verify on the outputs

  // Incremental-pipeline accounting (all zero without EvalOptions::builder).
  bool image_cache_hit = false;       // whole image served from the LRU
  std::uint64_t patch_saved_ns = 0;   // estimated vs. the cold baseline
  std::uint64_t predecode_saved_ns = 0;
  std::uint32_t funcs_reused = 0;     // functions spliced from the cache
  std::uint32_t funcs_total = 0;
};

/// Builds the mixed-precision binary for `cfg` and evaluates it. Crashes,
/// traps and instruction-budget blowups count as verification failures
/// (with the reason recorded), exactly as a crashed test run does in the
/// paper's search harness.
EvalResult evaluate_config(const program::Image& original,
                           const config::StructureIndex& index,
                           const config::PrecisionConfig& cfg,
                           const Verifier& verifier,
                           const EvalOptions& options = {});

/// Runs the unmodified binary and returns its outputs (the reference for
/// RelativeErrorVerifier / BitExactVerifier) -- throws on failure.
std::vector<double> reference_outputs(const program::Image& original,
                                      std::uint64_t max_instructions =
                                          1ull << 32);

}  // namespace fpmix::verify
