// The replaced-double representation (Figure 5 of the paper).
//
// A double-precision slot whose value has been narrowed to single precision
// stores the 32 float bits in its low half and the sentinel 0x7FF4DEAD in
// its high half. The sentinel is chosen exactly as in the paper: the leading
// 0x7FF4 makes the 64-bit pattern a NaN, so a replaced value that escapes
// the analysis can never be silently consumed as a plausible double, and the
// trailing 0xDEAD is easy to spot in a hex dump.
#pragma once

#include <bit>
#include <cstdint>

namespace fpmix::arch {

inline constexpr std::uint32_t kReplacedTag = 0x7FF4DEAD;
inline constexpr std::uint64_t kReplacedTagHigh = 0x7FF4DEAD00000000ull;

/// True when the 64-bit pattern carries the replaced-double sentinel.
constexpr bool is_tagged(std::uint64_t bits) {
  return (bits >> 32) == kReplacedTag;
}

/// Boxes a float into a replaced-double slot.
inline std::uint64_t make_tagged(float value) {
  return kReplacedTagHigh | std::bit_cast<std::uint32_t>(value);
}

/// Extracts the float payload of a replaced-double slot.
inline float tagged_float(std::uint64_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}

/// Narrowing conversion performed by the replacement snippets: the double is
/// rounded once to single precision and boxed.
inline std::uint64_t downcast_to_tagged(double value) {
  return make_tagged(static_cast<float>(value));
}

/// Widening conversion: recovers a plain double from a replaced slot.
inline double tagged_to_double(std::uint64_t bits) {
  return static_cast<double>(tagged_float(bits));
}

}  // namespace fpmix::arch
