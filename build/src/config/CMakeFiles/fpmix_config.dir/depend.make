# Empty dependencies file for fpmix_config.
# This may be replaced when dependencies are built.
