#include "linalg/csr.hpp"

#include <algorithm>
#include <map>

namespace fpmix::linalg {

Csr<double> make_poisson2d(std::size_t m) {
  const std::size_t n = m * m;
  Csr<double> a;
  a.n = n;
  a.rowptr.reserve(n + 1);
  a.rowptr.push_back(0);
  for (std::size_t y = 0; y < m; ++y) {
    for (std::size_t x = 0; x < m; ++x) {
      const auto idx = [m](std::size_t yy, std::size_t xx) {
        return static_cast<std::int64_t>(yy * m + xx);
      };
      if (y > 0) {
        a.col.push_back(idx(y - 1, x));
        a.val.push_back(-1.0);
      }
      if (x > 0) {
        a.col.push_back(idx(y, x - 1));
        a.val.push_back(-1.0);
      }
      a.col.push_back(idx(y, x));
      a.val.push_back(4.0);
      if (x + 1 < m) {
        a.col.push_back(idx(y, x + 1));
        a.val.push_back(-1.0);
      }
      if (y + 1 < m) {
        a.col.push_back(idx(y + 1, x));
        a.val.push_back(-1.0);
      }
      a.rowptr.push_back(static_cast<std::int64_t>(a.col.size()));
    }
  }
  return a;
}

Csr<double> make_random_spd(std::size_t n, std::size_t nnz_per_row,
                            double shift, std::uint64_t seed) {
  SplitMix64 rng(seed);
  // Build a symmetric pattern: collect (i, j, v) with i < j, mirror, then
  // add the dominant diagonal.
  std::map<std::pair<std::size_t, std::size_t>, double> off;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k + 1 < nnz_per_row; ++k) {
      // Banded-random column like NAS makea's geometric distribution.
      const std::size_t span = 1 + rng.next_below(n / 8 + 2);
      std::size_t j = (i + 1 + rng.next_below(span)) % n;
      if (j == i) j = (i + 1) % n;
      const auto key = std::minmax(i, j);
      off[{key.first, key.second}] = rng.next_double(-0.5, 0.5);
    }
  }
  std::vector<std::map<std::size_t, double>> rows(n);
  for (const auto& [ij, v] : off) {
    rows[ij.first][ij.second] = v;
    rows[ij.second][ij.first] = v;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0;
    for (const auto& [j, v] : rows[i]) s += std::fabs(v);
    rows[i][i] = s + shift;
  }
  Csr<double> a;
  a.n = n;
  a.rowptr.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [j, v] : rows[i]) {
      a.col.push_back(static_cast<std::int64_t>(j));
      a.val.push_back(v);
    }
    a.rowptr.push_back(static_cast<std::int64_t>(a.col.size()));
  }
  return a;
}

template <typename T>
double cg_solve(const Csr<T>& a, const std::vector<T>& b, std::vector<T>* x,
                std::size_t max_iters) {
  const std::size_t n = a.n;
  FPMIX_CHECK(x != nullptr && x->size() == n && b.size() == n);
  std::vector<T> r(n), p(n), q(n);
  const std::vector<T> ax = a.matvec(*x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
  p = r;
  T rho = T(0);
  for (std::size_t i = 0; i < n; ++i) rho += r[i] * r[i];
  for (std::size_t it = 0; it < max_iters; ++it) {
    q = a.matvec(p);
    T pq = T(0);
    for (std::size_t i = 0; i < n; ++i) pq += p[i] * q[i];
    const T alpha = rho / pq;
    for (std::size_t i = 0; i < n; ++i) {
      (*x)[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    T rho_new = T(0);
    for (std::size_t i = 0; i < n; ++i) rho_new += r[i] * r[i];
    const T beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  return std::sqrt(double(rho));
}

template <typename T>
void jacobi(const Csr<T>& a, const std::vector<T>& b, std::vector<T>* x,
            double weight, std::size_t sweeps) {
  const std::size_t n = a.n;
  std::vector<T> diag(n, T(0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::int64_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] ==
          static_cast<std::int64_t>(i)) {
        diag[i] = a.val[static_cast<std::size_t>(k)];
      }
    }
  }
  const T w = static_cast<T>(weight);
  for (std::size_t s = 0; s < sweeps; ++s) {
    const std::vector<T> ax = a.matvec(*x);
    for (std::size_t i = 0; i < n; ++i) {
      (*x)[i] += w * (b[i] - ax[i]) / diag[i];
    }
  }
}

namespace {

/// Full-weighting restriction from an m x m grid (m odd) to (m-1)/2 square.
template <typename T>
std::vector<T> restrict_grid(const std::vector<T>& fine, std::size_t m) {
  const std::size_t mc = (m - 1) / 2;
  std::vector<T> coarse(mc * mc, T(0));
  const auto f = [&](std::size_t y, std::size_t x) -> T {
    return fine[y * m + x];
  };
  for (std::size_t yc = 0; yc < mc; ++yc) {
    for (std::size_t xc = 0; xc < mc; ++xc) {
      const std::size_t y = 2 * yc + 1, x = 2 * xc + 1;
      T v = f(y, x) * T(0.25);
      v += (f(y - 1, x) + f(y + 1, x) + f(y, x - 1) + f(y, x + 1)) *
           T(0.125);
      v += (f(y - 1, x - 1) + f(y - 1, x + 1) + f(y + 1, x - 1) +
            f(y + 1, x + 1)) *
           T(0.0625);
      coarse[yc * mc + xc] = v;
    }
  }
  return coarse;
}

/// Bilinear prolongation, adjoint of restrict_grid.
template <typename T>
void prolong_add(const std::vector<T>& coarse, std::size_t mc,
                 std::vector<T>* fine, std::size_t m) {
  const auto c = [&](std::ptrdiff_t yc, std::ptrdiff_t xc) -> T {
    if (yc < 0 || xc < 0 || yc >= static_cast<std::ptrdiff_t>(mc) ||
        xc >= static_cast<std::ptrdiff_t>(mc)) {
      return T(0);
    }
    return coarse[static_cast<std::size_t>(yc) * mc +
                  static_cast<std::size_t>(xc)];
  };
  (void)c;
  // Scatter formulation: each coarse point at fine coordinates
  // (2yc+1, 2xc+1) contributes bilinear weights to its 3x3 neighbourhood.
  for (std::size_t yc = 0; yc < mc; ++yc) {
    for (std::size_t xc = 0; xc < mc; ++xc) {
      const T v = coarse[yc * mc + xc];
      const std::size_t y = 2 * yc + 1, x = 2 * xc + 1;
      const auto add = [&](std::ptrdiff_t yy, std::ptrdiff_t xx, T w) {
        if (yy < 0 || xx < 0 || yy >= static_cast<std::ptrdiff_t>(m) ||
            xx >= static_cast<std::ptrdiff_t>(m)) {
          return;
        }
        (*fine)[static_cast<std::size_t>(yy) * m +
                static_cast<std::size_t>(xx)] += w * v;
      };
      const auto yi = static_cast<std::ptrdiff_t>(y);
      const auto xi = static_cast<std::ptrdiff_t>(x);
      add(yi, xi, T(1));
      add(yi - 1, xi, T(0.5));
      add(yi + 1, xi, T(0.5));
      add(yi, xi - 1, T(0.5));
      add(yi, xi + 1, T(0.5));
      add(yi - 1, xi - 1, T(0.25));
      add(yi - 1, xi + 1, T(0.25));
      add(yi + 1, xi - 1, T(0.25));
      add(yi + 1, xi + 1, T(0.25));
    }
  }
}

template <typename T>
void vcycle(const std::vector<Csr<T>>& ops,
            const std::vector<std::size_t>& ms, std::size_t level,
            const std::vector<T>& b, std::vector<T>* x,
            std::size_t pre_sweeps, std::size_t post_sweeps) {
  const Csr<T>& a = ops[level];
  if (level + 1 == ops.size()) {
    // Coarsest: relax hard.
    jacobi(a, b, x, 0.8, 32);
    return;
  }
  jacobi(a, b, x, 0.8, pre_sweeps);
  const std::vector<T> ax = a.matvec(*x);
  std::vector<T> r(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - ax[i];
  std::vector<T> rc = restrict_grid(r, ms[level]);
  // The unscaled 5-point stencil absorbs h^2: the coarse operator represents
  // -4 h_f^2 Laplacian, so the restricted residual must be scaled by 4.
  for (T& v : rc) v *= T(4);
  std::vector<T> ec(rc.size(), T(0));
  vcycle(ops, ms, level + 1, rc, &ec, pre_sweeps, post_sweeps);
  prolong_add(ec, ms[level + 1], x, ms[level]);
  jacobi(a, b, x, 0.8, post_sweeps);
}

}  // namespace

template <typename T>
PoissonMg<T>::PoissonMg(std::size_t m) {
  std::size_t cur = m;
  while (true) {
    ms_.push_back(cur);
    ops_.push_back(make_poisson2d(cur).template cast<T>());
    if (cur < 7 || cur % 2 == 0) break;
    cur = (cur - 1) / 2;
  }
}

template <typename T>
double PoissonMg<T>::cycle(const std::vector<T>& b, std::vector<T>* x,
                           std::size_t cycles, std::size_t pre_sweeps,
                           std::size_t post_sweeps) const {
  FPMIX_CHECK(x != nullptr && x->size() == n() && b.size() == n());
  for (std::size_t c = 0; c < cycles; ++c) {
    vcycle(ops_, ms_, 0, b, x, pre_sweeps, post_sweeps);
  }
  const std::vector<T> ax = ops_[0].matvec(*x);
  double acc = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = double(b[i]) - double(ax[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

template <typename T>
double poisson_vcycle_solve(std::size_t m, const std::vector<T>& b,
                            std::vector<T>* x, std::size_t cycles,
                            std::size_t pre_sweeps, std::size_t post_sweeps) {
  const PoissonMg<T> mg(m);
  return mg.cycle(b, x, cycles, pre_sweeps, post_sweeps);
}

template class PoissonMg<double>;
template class PoissonMg<float>;

template double cg_solve<double>(const Csr<double>&,
                                 const std::vector<double>&,
                                 std::vector<double>*, std::size_t);
template double cg_solve<float>(const Csr<float>&, const std::vector<float>&,
                                std::vector<float>*, std::size_t);
template void jacobi<double>(const Csr<double>&, const std::vector<double>&,
                             std::vector<double>*, double, std::size_t);
template void jacobi<float>(const Csr<float>&, const std::vector<float>&,
                            std::vector<float>*, double, std::size_t);
template double poisson_vcycle_solve<double>(std::size_t,
                                             const std::vector<double>&,
                                             std::vector<double>*, std::size_t,
                                             std::size_t, std::size_t);
template double poisson_vcycle_solve<float>(std::size_t,
                                            const std::vector<float>&,
                                            std::vector<float>*, std::size_t,
                                            std::size_t, std::size_t);

}  // namespace fpmix::linalg
