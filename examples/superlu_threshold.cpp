// The Section 3.3 SuperLU experiment as a command-line driver: run the
// automatic search on the banded-solver analogue under a chosen error
// threshold, exactly like the paper's "driver script that ran the program
// and compared the reported error against a predefined threshold".
//
// Usage:  superlu_threshold [threshold] [--config]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "config/textio.hpp"
#include "kernels/workload.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "verify/evaluate.hpp"

using namespace fpmix;

int main(int argc, char** argv) {
  double threshold = 1.0e-4;
  bool dump_config = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config") dump_config = true;
    else threshold = std::atof(argv[i]);
  }

  const kernels::Workload w = kernels::make_superlu(threshold);
  const program::Image img = kernels::build_image(w);
  auto index = config::StructureIndex::build(program::lift(img));
  const auto verifier = kernels::make_verifier(w, img);

  // Baseline: what the solver reports untouched.
  const std::vector<double> ref = verify::reference_outputs(img);
  std::printf("double-precision reported error: %.3e\n", ref.at(0));
  std::printf("searching with threshold %.1e ...\n", threshold);

  const search::SearchResult res =
      search::run_search(img, &index, *verifier, {});

  const verify::EvalResult final_run =
      verify::evaluate_config(img, index, res.final_config, *verifier);
  std::printf("%zu configurations tested\n", res.configs_tested);
  std::printf("replaced: %.1f%% static, %.1f%% dynamic\n",
              res.stats.static_pct, res.stats.dynamic_pct);
  std::printf("final configuration reported error: %.3e (%s threshold "
              "%.1e)\n",
              final_run.outputs.empty() ? -1.0 : final_run.outputs[0],
              final_run.passed ? "within" : "OUTSIDE", threshold);
  if (dump_config) {
    std::printf("\n%s", config::to_text(index, res.final_config).c_str());
  }
  return 0;
}
