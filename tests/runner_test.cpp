// Out-of-process sandboxed trial runners: the pipe protocol, the forked
// worker, the self-healing pool, and the search running on top of it.
//
// Four layers:
//  1. wire framing -- round-trips, incremental decode, and the guarantee
//     that no single-byte corruption ever yields a wrong payload;
//  2. worker supervision -- crash classification, the per-config
//     crash-loop circuit breaker, TERM->KILL escalation for hung workers,
//     OOM absorption, and the pool-wide crash-storm brake;
//  3. equivalence -- an isolated search must produce byte-identical results
//     to the in-process path on a clean run;
//  4. the acceptance soak -- seeded campaigns of process-destroying faults
//     (SIGSEGV, SIGKILL, allocation storms, corrupted result frames)
//     driven through full searches, asserting every campaign converges to
//     the same final configuration as a fault-free run.
//
// The soak's campaign count scales via FPMIX_SOAK_CAMPAIGNS (CI sets 200).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "config/textio.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "runner/trial_runner.hpp"
#include "runner/wire.hpp"
#include "runner/worker_pool.hpp"
#include "search/search.hpp"
#include "support/fault.hpp"
#include "verify/evaluate.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

namespace fpmix {
namespace {

using config::Precision;
using lang::Builder;
using lang::Expr;

// ---------------------------------------------------------------------------
// Wire framing.

TEST(Wire, FrameRoundTripAndIncrementalDecode) {
  const std::string payload = "hello trial runner \x01\x02\xff";
  const std::string frame = runner::encode_frame(payload);

  // Feeding the stream byte by byte: kNeedMore until the last byte.
  std::string got;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n + 1 < frame.size(); ++n) {
    EXPECT_EQ(runner::decode_frame(frame.substr(0, n), &got, &consumed),
              runner::FrameStatus::kNeedMore)
        << "prefix " << n;
  }
  ASSERT_EQ(runner::decode_frame(frame, &got, &consumed),
            runner::FrameStatus::kOk);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(consumed, frame.size());

  // Two frames back to back decode sequentially.
  const std::string frame2 = runner::encode_frame("second");
  std::string stream = frame + frame2;
  ASSERT_EQ(runner::decode_frame(stream, &got, &consumed),
            runner::FrameStatus::kOk);
  EXPECT_EQ(got, payload);
  stream.erase(0, consumed);
  ASSERT_EQ(runner::decode_frame(stream, &got, &consumed),
            runner::FrameStatus::kOk);
  EXPECT_EQ(got, "second");
}

TEST(Wire, SingleByteCorruptionNeverYieldsWrongPayload) {
  const std::string payload = "trial result payload 1234567890";
  const std::string frame = runner::encode_frame(payload);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string dam = frame;
    dam[i] = static_cast<char>(dam[i] ^ 0x20);
    std::string got;
    std::size_t consumed = 0;
    const runner::FrameStatus st =
        runner::decode_frame(dam, &got, &consumed);
    // Corrupting the length field can turn the frame into a longer-frame
    // prefix (kNeedMore); everything else must be caught by magic or CRC.
    // No corruption may ever decode as a valid frame.
    EXPECT_NE(st, runner::FrameStatus::kOk) << "byte " << i;
  }
}

TEST(Wire, RequestAndResultRoundTrip) {
  runner::TrialRequest req;
  req.key = "cfg-digest-abc";
  req.exec_index = 7;
  req.config_key = "m0=s;f3=d;i12=i;";
  runner::TrialRequest back;
  ASSERT_TRUE(runner::decode_request(runner::encode_request(req), &back));
  EXPECT_EQ(back.key, req.key);
  EXPECT_EQ(back.exec_index, req.exec_index);
  EXPECT_EQ(back.config_key, req.config_key);

  verify::EvalResult er;
  er.passed = false;
  er.failure_class = verify::FailureClass::kSentinelEscape;
  er.run_status = vm::RunResult::Status::kTrapped;
  er.failure = "sentinel escaped at 0x40";
  er.instructions_retired = 12345;
  er.patch_ns = 1;
  er.predecode_ns = 2;
  er.run_ns = 3;
  er.verify_ns = 4;
  er.image_cache_hit = true;
  er.patch_saved_ns = 111;
  er.predecode_saved_ns = 222;
  er.funcs_reused = 5;
  er.funcs_total = 9;
  const runner::WireResult w = runner::from_eval_result(er);
  runner::WireResult wback;
  ASSERT_TRUE(runner::decode_result(runner::encode_result(w), &wback));
  verify::EvalResult er2;
  ASSERT_TRUE(runner::to_eval_result(wback, &er2));
  EXPECT_EQ(er2.passed, er.passed);
  EXPECT_EQ(er2.failure_class, er.failure_class);
  EXPECT_EQ(er2.run_status, er.run_status);
  EXPECT_EQ(er2.failure, er.failure);
  EXPECT_EQ(er2.instructions_retired, er.instructions_retired);
  EXPECT_EQ(er2.run_ns, er.run_ns);
  EXPECT_EQ(er2.image_cache_hit, er.image_cache_hit);
  EXPECT_EQ(er2.patch_saved_ns, er.patch_saved_ns);
  EXPECT_EQ(er2.predecode_saved_ns, er.predecode_saved_ns);
  EXPECT_EQ(er2.funcs_reused, er.funcs_reused);
  EXPECT_EQ(er2.funcs_total, er.funcs_total);
}

TEST(Wire, DeltaRequestRoundTripAndOpcodeValidation) {
  runner::TrialRequest req;
  req.opcode = runner::kReqDelta;
  req.key = "cfg-digest-def";
  req.exec_index = 3;
  req.config_key = "f3=s;i12=-;";  // delta payload: changed subtree only
  runner::TrialRequest back;
  ASSERT_TRUE(runner::decode_request(runner::encode_request(req), &back));
  EXPECT_EQ(back.opcode, runner::kReqDelta);
  EXPECT_EQ(back.key, req.key);
  EXPECT_EQ(back.config_key, req.config_key);

  // Unknown opcodes are a protocol error, not a guess.
  std::string bad = runner::encode_request(req);
  bad[0] = 0x7F;
  EXPECT_FALSE(runner::decode_request(bad, &back));
  bad[0] = 0;
  EXPECT_FALSE(runner::decode_request(bad, &back));
}

TEST(Wire, RejectsOutOfRangeEnums) {
  runner::WireResult w;
  w.failure_class = 250;  // far outside verify::FailureClass
  verify::EvalResult er;
  EXPECT_FALSE(runner::to_eval_result(w, &er));
  w.failure_class = 0;
  w.run_status = 250;
  EXPECT_FALSE(runner::to_eval_result(w, &er));
}

TEST(Wire, TruncatedPayloadPoisonsReader) {
  runner::TrialRequest req;
  req.key = "k";
  req.config_key = "m0=s;";
  const std::string payload = runner::encode_request(req);
  for (std::size_t n = 0; n < payload.size(); ++n) {
    runner::TrialRequest back;
    EXPECT_FALSE(runner::decode_request(payload.substr(0, n), &back))
        << "prefix " << n;
  }
}

// ---------------------------------------------------------------------------
// Death classification.

TEST(ClassifyDeath, Taxonomy) {
#if defined(__unix__) || defined(__APPLE__)
  std::string detail;
  runner::Worker::Death segv{true, SIGSEGV, 0};
  EXPECT_EQ(runner::classify_death(segv, &detail),
            verify::FailureClass::kCrash);
  EXPECT_NE(detail.find("SIGSEGV"), std::string::npos);

  runner::Worker::Death xcpu{true, SIGXCPU, 0};
  EXPECT_EQ(runner::classify_death(xcpu, &detail),
            verify::FailureClass::kResource);

  runner::Worker::Death exited{false, 0, 3};
  EXPECT_EQ(runner::classify_death(exited, &detail),
            verify::FailureClass::kCrash);
  EXPECT_NE(detail.find("3"), std::string::npos);
#else
  GTEST_SKIP() << "POSIX-only taxonomy";
#endif
}

// ---------------------------------------------------------------------------
// Worker pool supervision. Everything below forks real processes.

struct IsoWorkload {
  program::Image image;
  config::StructureIndex index;
  std::unique_ptr<verify::Verifier> verifier;
};

/// Same mixed-sensitivity shape as the fault-soak workload: a narrowable
/// floor() chain plus a precision-critical tail, so searches descend
/// through several levels.
IsoWorkload make_workload() {
  Builder b;
  b.begin_func("main", "m");
  auto good = b.var_f64("good");
  auto bad = b.var_f64("bad");
  b.set(good, b.cf(0.0));
  for (int k = 0; k < 10; ++k) {
    b.set(good, floor_(Expr(good) + b.cf(1.0 + k)));
  }
  b.set(bad, b.cf(1.0) / b.cf(3.0) + b.cf(1.0) / b.cf(7.0));
  b.output(good);
  b.output(bad);
  b.end_func();

  IsoWorkload w{program::relayout(lang::compile(b.take_model(),
                                                lang::Mode::kDouble)),
                {}, nullptr};
  w.index = config::StructureIndex::build(program::lift(w.image));
  std::vector<double> ref = verify::reference_outputs(w.image);
  w.verifier = std::make_unique<verify::RelativeErrorVerifier>(std::move(ref),
                                                               1e-12);
  return w;
}

runner::WorkerContext make_ctx(const IsoWorkload& w,
                               const fault::Injector* injector = nullptr) {
  runner::WorkerContext ctx;
  ctx.image = &w.image;
  ctx.index = &w.index;
  ctx.verifier = w.verifier.get();
  ctx.eval.max_instructions = 1ull << 24;
  ctx.injector = injector;
  return ctx;
}

#define SKIP_WITHOUT_FORK()                              \
  if (!runner::isolation_supported()) {                  \
    GTEST_SKIP() << "no fork on this platform";          \
  }

TEST(WorkerPool, CleanBatchMatchesInProcessVerdicts) {
  SKIP_WITHOUT_FORK();
  IsoWorkload w = make_workload();
  runner::PoolOptions popts;
  popts.workers = 2;
  runner::WorkerPool pool(make_ctx(w), popts);
  ASSERT_TRUE(pool.start());

  // all-double (passes trivially), whole-module single (fails: the
  // sensitive tail), and first-function single.
  config::PrecisionConfig all_double;
  config::PrecisionConfig module_single;
  module_single.set_module(0, Precision::kSingle);

  std::vector<runner::TrialJob> jobs;
  jobs.push_back(runner::TrialJob{"all-double", &all_double});
  jobs.push_back(runner::TrialJob{"module-single", &module_single});
  const std::vector<runner::TrialOutcome> outs = pool.run_batch(jobs);
  ASSERT_EQ(outs.size(), 2u);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const verify::EvalResult ref = verify::evaluate_config(
        w.image, w.index, *jobs[i].config, *w.verifier, make_ctx(w).eval);
    EXPECT_EQ(outs[i].result.passed, ref.passed) << jobs[i].key;
    EXPECT_EQ(outs[i].result.failure_class, ref.failure_class)
        << jobs[i].key;
    EXPECT_EQ(outs[i].result.failure, ref.failure) << jobs[i].key;
    EXPECT_EQ(outs[i].worker_deaths, 0u);
    EXPECT_FALSE(outs[i].quarantined);
  }
  EXPECT_EQ(pool.stats().worker_crashes, 0u);
  EXPECT_EQ(pool.stats().isolated_trials, 2u);
}

TEST(WorkerPool, CrashLoopTripsBreakerAndQuarantines) {
  SKIP_WITHOUT_FORK();
  IsoWorkload w = make_workload();
  fault::Injector::Rates rates;
  rates.segv = 1.0;  // every execution dies
  const fault::Injector injector(0xDEAD, rates);
  runner::PoolOptions popts;
  popts.workers = 1;
  popts.max_crashes_per_config = 3;
  popts.crash_storm_threshold = 100;  // isolate the per-config breaker
  runner::WorkerPool pool(make_ctx(w, &injector), popts);
  ASSERT_TRUE(pool.start());

  config::PrecisionConfig all_double;
  const std::vector<runner::TrialOutcome> outs =
      pool.run_batch({runner::TrialJob{"always-crash", &all_double}});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].quarantined);
  EXPECT_FALSE(outs[0].result.passed);
  EXPECT_EQ(outs[0].result.failure_class, verify::FailureClass::kCrash);
  EXPECT_EQ(outs[0].worker_deaths, 3u);
  EXPECT_TRUE(pool.is_quarantined("always-crash"));

  const runner::PoolStats& st = pool.stats();
  EXPECT_EQ(st.worker_crashes, 3u);
  EXPECT_EQ(st.quarantined_configs, 1u);
  EXPECT_FALSE(st.crash_storm);
  auto it = st.crashes_by_signal.find("SIGSEGV");
  ASSERT_NE(it, st.crashes_by_signal.end());
  EXPECT_EQ(it->second, 3u);

  // Quarantine is sticky: the config never executes again.
  const std::uint64_t dispatched = st.isolated_trials;
  const std::vector<runner::TrialOutcome> again =
      pool.run_batch({runner::TrialJob{"always-crash", &all_double}});
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].quarantined);
  EXPECT_EQ(pool.stats().isolated_trials, dispatched);

  // The pool healed: a clean config still evaluates fine afterwards.
  const std::vector<runner::TrialOutcome> clean =
      pool.run_batch({runner::TrialJob{"clean", &all_double}});
  // "clean" hashes to a different injector stream; it may also draw segv
  // at rate 1.0 -- with segv=1.0 every key crashes, so instead check the
  // pool survived to report *something* rather than wedging.
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_FALSE(clean[0].result.passed);
}

TEST(WorkerPool, TermThenKillEscalationYieldsTimeoutVerdict) {
  SKIP_WITHOUT_FORK();
  IsoWorkload w = make_workload();
  fault::Injector::Rates rates;
  rates.hang_ignore_term = 1.0;  // hang AND ignore SIGTERM: forces SIGKILL
  const fault::Injector injector(0x4A46, rates);
  runner::PoolOptions popts;
  popts.workers = 1;
  popts.trial_timeout_ms = 200;
  popts.term_grace_ms = 100;
  runner::WorkerPool pool(make_ctx(w, &injector), popts);
  ASSERT_TRUE(pool.start());

  config::PrecisionConfig all_double;
  const std::vector<runner::TrialOutcome> outs =
      pool.run_batch({runner::TrialJob{"hung", &all_double}});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_FALSE(outs[0].quarantined);
  EXPECT_FALSE(outs[0].result.passed);
  EXPECT_EQ(outs[0].result.failure_class, verify::FailureClass::kTimeout);
  EXPECT_EQ(pool.stats().timeouts_killed, 1u);
}

TEST(WorkerPool, OomStormIsAbsorbedAndQuarantined) {
  SKIP_WITHOUT_FORK();
  IsoWorkload w = make_workload();
  fault::Injector::Rates rates;
  rates.oom = 1.0;
  const fault::Injector injector(0x004D, rates);
  runner::PoolOptions popts;
  popts.workers = 1;
  popts.max_crashes_per_config = 2;
  popts.crash_storm_threshold = 100;
  popts.limits.address_space_mb = 384;
  runner::WorkerPool pool(make_ctx(w, &injector), popts);
  ASSERT_TRUE(pool.start());

  config::PrecisionConfig all_double;
  const std::vector<runner::TrialOutcome> outs =
      pool.run_batch({runner::TrialJob{"oom", &all_double}});
  ASSERT_EQ(outs.size(), 1u);
  // Either path -- rlimit-refused storm (kResource result) or
  // OOM-kill-analogue SIGKILL -- is a fault event; at rate 1.0 the breaker
  // must trip.
  EXPECT_TRUE(outs[0].quarantined);
  EXPECT_FALSE(outs[0].result.passed);
  const runner::PoolStats& st = pool.stats();
  EXPECT_GE(st.resource_retries + st.worker_crashes, 2u);
}

TEST(WorkerPool, CorruptResultFramesAreDetectedAndRetried) {
  SKIP_WITHOUT_FORK();
  IsoWorkload w = make_workload();
  for (const bool truncate : {false, true}) {
    fault::Injector::Rates rates;
    if (truncate) {
      rates.trunc_result = 1.0;
    } else {
      rates.corrupt_result = 1.0;
    }
    const fault::Injector injector(0xF4A3, rates);
    runner::PoolOptions popts;
    popts.workers = 1;
    popts.max_crashes_per_config = 2;
    popts.crash_storm_threshold = 100;
    runner::WorkerPool pool(make_ctx(w, &injector), popts);
    ASSERT_TRUE(pool.start());

    config::PrecisionConfig all_double;
    const std::vector<runner::TrialOutcome> outs =
        pool.run_batch({runner::TrialJob{"damaged", &all_double}});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_TRUE(outs[0].quarantined) << "truncate=" << truncate;
    // The CRC (or the mid-frame EOF) caught every damaged delivery; none
    // leaked into a verdict.
    EXPECT_GE(pool.stats().protocol_errors, 2u) << "truncate=" << truncate;
  }
}

TEST(WorkerPool, CrashStormAbortsTheBatch) {
  SKIP_WITHOUT_FORK();
  IsoWorkload w = make_workload();
  fault::Injector::Rates rates;
  rates.segv = 1.0;
  const fault::Injector injector(0x5702, rates);
  runner::PoolOptions popts;
  popts.workers = 1;
  popts.max_crashes_per_config = 100;  // breaker out of the way
  popts.crash_storm_threshold = 4;
  runner::WorkerPool pool(make_ctx(w, &injector), popts);
  ASSERT_TRUE(pool.start());

  config::PrecisionConfig all_double;
  const std::vector<runner::TrialOutcome> outs =
      pool.run_batch({runner::TrialJob{"storm-a", &all_double},
                      runner::TrialJob{"storm-b", &all_double}});
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_TRUE(pool.crash_storm());
  bool any_internal = false;
  for (const runner::TrialOutcome& o : outs) {
    EXPECT_FALSE(o.result.passed);
    if (o.result.failure_class == verify::FailureClass::kInternalError) {
      any_internal = true;
    }
  }
  EXPECT_TRUE(any_internal);
}

// ---------------------------------------------------------------------------
// Search equivalence and the acceptance soak.

std::size_t soak_campaigns() {
  if (const char* env = std::getenv("FPMIX_SOAK_CAMPAIGNS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 25;  // local default; CI exports FPMIX_SOAK_CAMPAIGNS=200
}

TEST(IsolatedSearch, CleanRunMatchesInProcessByteForByte) {
  SKIP_WITHOUT_FORK();
  IsoWorkload a = make_workload();
  const search::SearchResult in_process =
      search::run_search(a.image, &a.index, *a.verifier, {});

  search::SearchOptions iso;
  iso.isolate_trials = true;
  iso.num_workers = 3;
  IsoWorkload b = make_workload();
  const search::SearchResult isolated =
      search::run_search(b.image, &b.index, *b.verifier, iso);

  EXPECT_FALSE(isolated.metrics.isolation_degraded);
  EXPECT_GT(isolated.metrics.isolated_trials, 0u);
  EXPECT_EQ(isolated.configs_tested, in_process.configs_tested);
  EXPECT_EQ(isolated.final_passed, in_process.final_passed);
  EXPECT_EQ(config::to_text(b.index, isolated.final_config),
            config::to_text(a.index, in_process.final_config));
  // Trace verdicts agree trial by trial.
  ASSERT_EQ(isolated.trace.size(), in_process.trace.size());
  for (std::size_t i = 0; i < isolated.trace.size(); ++i) {
    EXPECT_EQ(isolated.trace[i].key, in_process.trace[i].key) << i;
    EXPECT_EQ(isolated.trace[i].passed, in_process.trace[i].passed) << i;
  }
}

TEST(IsolatedSearch, HardFaultSoakConvergesToCleanResult) {
  SKIP_WITHOUT_FORK();
  // Fault-free reference.
  IsoWorkload r = make_workload();
  const search::SearchResult ref =
      search::run_search(r.image, &r.index, *r.verifier, {});
  const std::string clean_text = config::to_text(r.index, ref.final_config);

  // Process-destroying faults only: worker deaths are retried, never
  // voted, so every campaign must land on the clean result.
  fault::Injector::Rates rates;
  rates.segv = 0.05;
  rates.kill = 0.03;
  rates.oom = 0.03;
  rates.trunc_result = 0.02;
  rates.corrupt_result = 0.02;

  const std::size_t campaigns = soak_campaigns();
  std::uint64_t total_faults = 0;
  for (std::size_t c = 0; c < campaigns; ++c) {
    SCOPED_TRACE("campaign " + std::to_string(c));
    const fault::Injector injector(0x150C0000 + c, rates);
    search::SearchOptions opts;
    opts.isolate_trials = true;
    opts.num_workers = 3;
    // Generous breaker: at these rates a config re-drawing a hard fault
    // six times in a row has probability < 1e-6; the campaign must absorb
    // faults, not quarantine real configs.
    opts.max_trial_crashes = 6;
    opts.fault_injector = &injector;

    IsoWorkload w = make_workload();
    const search::SearchResult res =
        search::run_search(w.image, &w.index, *w.verifier, opts);

    const search::SearchMetrics& m = res.metrics;
    EXPECT_FALSE(m.crash_storm);
    EXPECT_EQ(m.crash_quarantined, 0u);
    EXPECT_EQ(res.final_passed, ref.final_passed);
    EXPECT_EQ(config::to_text(w.index, res.final_config), clean_text);
    total_faults +=
        m.worker_crashes + m.protocol_errors + m.worker_timeouts;
  }
  // The campaigns actually destroyed workers (otherwise the soak silently
  // stopped injecting).
  EXPECT_GT(total_faults, 0u);
}

}  // namespace
}  // namespace fpmix
