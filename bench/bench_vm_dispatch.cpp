// Interpreted-MIPS comparison of the two VM execution engines.
//
// For each NAS kernel analogue, predecodes the image once, runs it to
// completion on the reference switch interpreter and on the micro-op
// engine (profiling off on both -- the trial-evaluation configuration),
// and reports retired-instructions-per-second. The engines must agree
// bit-for-bit on outputs and retired counts; any mismatch fails the run
// with a non-zero exit, so this binary doubles as an end-to-end
// differential check.
//
// Usage: bench_vm_dispatch [S|W|A] [--quick] [--json FILE]
//   --quick: class S, one repetition per engine (the CI smoke
//   configuration; still prints the full table).
//   --json FILE: also write the per-kernel rows and geomean as one JSON
//   object (seeds BENCH_DISPATCH.json).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/workload.hpp"
#include "lang/compile.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "vm/machine.hpp"

namespace {

struct EngineRun {
  double best_seconds = 0.0;
  std::uint64_t retired = 0;
  std::vector<double> outputs;
  bool ok = false;
  std::string error;
};

EngineRun run_best_of(
    const std::shared_ptr<const fpmix::vm::ExecutableImage>& exec,
    fpmix::vm::Engine engine, std::uint64_t max_instructions, int reps) {
  EngineRun out;
  for (int rep = 0; rep < reps; ++rep) {
    fpmix::vm::Machine::Options opts;
    opts.engine = engine;
    opts.profile = false;
    opts.max_instructions = max_instructions;
    fpmix::vm::Machine m(exec, opts);
    fpmix::Timer t;
    const fpmix::vm::RunResult r = m.run();
    const double secs = t.elapsed_seconds();
    if (rep == 0 || secs < out.best_seconds) out.best_seconds = secs;
    out.retired = m.instructions_retired();
    out.outputs = m.output_f64();
    out.ok = r.ok();
    out.error = r.trap_message;
    if (!out.ok) break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpmix;

  char cls = 'W';
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strlen(argv[i]) == 1) {
      cls = argv[i][0];
    }
  }
  if (quick) cls = 'S';
  const int reps = quick ? 1 : 3;

  std::vector<kernels::Workload> suite;
  suite.push_back(kernels::make_ep(cls));
  suite.push_back(kernels::make_cg(cls));
  suite.push_back(kernels::make_ft(cls));
  suite.push_back(kernels::make_mg(cls));
  suite.push_back(kernels::make_bt(cls));
  suite.push_back(kernels::make_lu(cls));
  suite.push_back(kernels::make_sp(cls));

  std::printf("VM dispatch engines, NAS kernel suite, class %c "
              "(best of %d rep%s)\n",
              cls, reps, reps == 1 ? "" : "s");
  bench::print_rule(78);
  std::printf("%-8s %14s %12s %12s %9s\n", "bench", "instructions",
              "switch MIPS", "micro MIPS", "speedup");
  bench::print_rule(78);

  bool all_match = true;
  double log_speedup_sum = 0.0;
  std::string json_rows;
  for (const kernels::Workload& w : suite) {
    const program::Image img = kernels::build_image(w);
    const auto exec = vm::ExecutableImage::build(img);

    const EngineRun sw = run_best_of(exec, vm::Engine::kSwitch,
                                     w.max_instructions, reps);
    const EngineRun micro = run_best_of(exec, vm::Engine::kMicroOp,
                                        w.max_instructions, reps);
    if (!sw.ok || !micro.ok) {
      std::printf("%-8s FAILED: %s\n", w.name.c_str(),
                  (!sw.ok ? sw.error : micro.error).c_str());
      all_match = false;
      continue;
    }
    bool match = sw.retired == micro.retired &&
                 sw.outputs.size() == micro.outputs.size();
    if (match) {
      for (std::size_t i = 0; i < sw.outputs.size(); ++i) {
        if (std::bit_cast<std::uint64_t>(sw.outputs[i]) !=
            std::bit_cast<std::uint64_t>(micro.outputs[i])) {
          match = false;
          break;
        }
      }
    }
    if (!match) {
      std::printf("%-8s ENGINE MISMATCH (outputs or retired count)\n",
                  w.name.c_str());
      all_match = false;
      continue;
    }

    const double sw_mips =
        static_cast<double>(sw.retired) / sw.best_seconds / 1e6;
    const double micro_mips =
        static_cast<double>(micro.retired) / micro.best_seconds / 1e6;
    const double speedup = micro_mips / sw_mips;
    log_speedup_sum += std::log(speedup);
    std::printf("%-8s %14llu %12.1f %12.1f %8.2fx\n", w.name.c_str(),
                static_cast<unsigned long long>(micro.retired), sw_mips,
                micro_mips, speedup);
    json_rows += strformat(
        "%s    {\"name\": \"%s\", \"instructions\": %llu, "
        "\"switch_mips\": %.1f, \"micro_mips\": %.1f, \"speedup\": %.3f}",
        json_rows.empty() ? "" : ",\n", w.name.c_str(),
        static_cast<unsigned long long>(micro.retired), sw_mips, micro_mips,
        speedup);
  }
  bench::print_rule(78);
  if (!all_match) {
    std::printf("FAIL: engines disagree; see rows above\n");
    return 1;
  }
  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(suite.size()));
  std::printf("geomean speedup: %.2fx (micro-op over switch)\n", geomean);
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    f << "{\n  \"bench\": \"bench_vm_dispatch\",\n"
      << strformat("  \"class\": \"%c\",\n", cls)
      << strformat("  \"reps\": %d,\n", reps) << "  \"kernels\": [\n"
      << json_rows << "\n  ],\n"
      << strformat("  \"geomean_speedup\": %.3f\n}\n", geomean);
  }
  return 0;
}
