#include "arch/encode.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::arch {
namespace {

std::uint32_t operand_size(const Operand& op) {
  switch (op.kind) {
    case OperandKind::kNone: return 0;
    case OperandKind::kGpr:
    case OperandKind::kXmm: return 1;
    case OperandKind::kImm: return 8;
    case OperandKind::kMem: return 7;
  }
  return 0;
}

// Allowed operand-form table. Forms are pairs (dst kind, src kind).
struct Form {
  OperandKind dst;
  OperandKind src;
};

constexpr OperandKind N = OperandKind::kNone;
constexpr OperandKind G = OperandKind::kGpr;
constexpr OperandKind X = OperandKind::kXmm;
constexpr OperandKind I = OperandKind::kImm;
constexpr OperandKind M = OperandKind::kMem;

bool form_allowed(Opcode op, OperandKind d, OperandKind s) {
  const auto any = [&](std::initializer_list<Form> forms) {
    for (const Form& f : forms) {
      if (f.dst == d && f.src == s) return true;
    }
    return false;
  };
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
      return any({{N, N}});
    case Opcode::kJmp:
    case Opcode::kJe:
    case Opcode::kJne:
    case Opcode::kJl:
    case Opcode::kJle:
    case Opcode::kJg:
    case Opcode::kJge:
    case Opcode::kJb:
    case Opcode::kJbe:
    case Opcode::kJa:
    case Opcode::kJae:
    case Opcode::kCall:
    case Opcode::kIntrin:
      return any({{N, I}});
    case Opcode::kMov:
      return any({{G, G}, {G, I}});
    case Opcode::kLoad:
      return any({{G, M}});
    case Opcode::kStore:
      return any({{M, G}});
    case Opcode::kLea:
      return any({{G, M}});
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kImul:
    case Opcode::kIdiv:
    case Opcode::kIrem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
    case Opcode::kCmp:
    case Opcode::kTest:
      return any({{G, G}, {G, I}});
    case Opcode::kPush:
      return any({{G, N}});
    case Opcode::kPop:
      return any({{G, N}});
    case Opcode::kMovqXR:
      return any({{X, G}});
    case Opcode::kMovqRX:
      return any({{G, X}});
    case Opcode::kMovsdXX:
    case Opcode::kMovapdXX:
      return any({{X, X}});
    case Opcode::kMovsdXM:
    case Opcode::kMovssXM:
    case Opcode::kMovapdXM:
      return any({{X, M}});
    case Opcode::kMovsdMX:
    case Opcode::kMovssMX:
    case Opcode::kMovapdMX:
      return any({{M, X}});
    case Opcode::kPushX:
    case Opcode::kPopX:
      return any({{X, N}});
    // Scalar & packed FP arithmetic: xmm,xmm or xmm,[mem] (as x86 SSE).
    case Opcode::kAddsd:
    case Opcode::kSubsd:
    case Opcode::kMulsd:
    case Opcode::kDivsd:
    case Opcode::kSqrtsd:
    case Opcode::kMinsd:
    case Opcode::kMaxsd:
    case Opcode::kUcomisd:
    case Opcode::kCvtsd2ss:
    case Opcode::kCvtss2sd:
    case Opcode::kAddss:
    case Opcode::kSubss:
    case Opcode::kMulss:
    case Opcode::kDivss:
    case Opcode::kSqrtss:
    case Opcode::kMinss:
    case Opcode::kMaxss:
    case Opcode::kUcomiss:
    case Opcode::kAddpd:
    case Opcode::kSubpd:
    case Opcode::kMulpd:
    case Opcode::kDivpd:
    case Opcode::kSqrtpd:
    case Opcode::kAddps:
    case Opcode::kSubps:
    case Opcode::kMulps:
    case Opcode::kDivps:
    case Opcode::kSqrtps:
    case Opcode::kAndpd:
    case Opcode::kOrpd:
    case Opcode::kXorpd:
      return any({{X, X}, {X, M}});
    case Opcode::kCvtsi2sd:
    case Opcode::kCvtsi2ss:
      return any({{X, G}});
    case Opcode::kCvttsd2si:
    case Opcode::kCvttss2si:
      return any({{G, X}});
    default:
      return false;
  }
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void encode_operand(const Operand& op, std::vector<std::uint8_t>* out) {
  switch (op.kind) {
    case OperandKind::kNone:
      break;
    case OperandKind::kGpr:
    case OperandKind::kXmm:
      out->push_back(op.reg);
      break;
    case OperandKind::kImm:
      put_u64(out, static_cast<std::uint64_t>(op.imm));
      break;
    case OperandKind::kMem:
      out->push_back(op.mem.base);
      out->push_back(op.mem.index);
      out->push_back(op.mem.scale);
      put_u32(out, static_cast<std::uint32_t>(op.mem.disp));
      break;
  }
}

std::uint32_t decode_operand(std::span<const std::uint8_t> bytes,
                             std::size_t offset, OperandKind kind,
                             Operand* out) {
  const auto need = [&](std::size_t n) {
    if (offset + n > bytes.size()) {
      throw DecodeError(strformat("truncated operand at offset %zu", offset));
    }
  };
  out->kind = kind;
  switch (kind) {
    case OperandKind::kNone:
      return 0;
    case OperandKind::kGpr:
    case OperandKind::kXmm: {
      need(1);
      out->reg = bytes[offset];
      if (out->reg >= kNumGprs) {
        throw DecodeError(strformat("register %u out of range", out->reg));
      }
      return 1;
    }
    case OperandKind::kImm: {
      need(8);
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(bytes[offset + i]) << (8 * i);
      }
      out->imm = static_cast<std::int64_t>(v);
      return 8;
    }
    case OperandKind::kMem: {
      need(7);
      out->mem.base = bytes[offset];
      out->mem.index = bytes[offset + 1];
      out->mem.scale = bytes[offset + 2];
      std::uint32_t d = 0;
      for (int i = 0; i < 4; ++i) {
        d |= static_cast<std::uint32_t>(bytes[offset + 3 + i]) << (8 * i);
      }
      out->mem.disp = static_cast<std::int32_t>(d);
      if (out->mem.base != kNoReg && out->mem.base >= kNumGprs) {
        throw DecodeError("mem base register out of range");
      }
      if (out->mem.index != kNoReg && out->mem.index >= kNumGprs) {
        throw DecodeError("mem index register out of range");
      }
      if (out->mem.scale != 1 && out->mem.scale != 2 && out->mem.scale != 4 &&
          out->mem.scale != 8) {
        throw DecodeError("mem scale must be 1/2/4/8");
      }
      return 7;
    }
  }
  return 0;
}

}  // namespace

std::uint32_t encoded_size(const Instr& ins) {
  return 2 + operand_size(ins.dst) + operand_size(ins.src);
}

void validate(const Instr& ins) {
  if (ins.op >= Opcode::kNumOpcodes) {
    throw DecodeError("invalid opcode value");
  }
  if (!form_allowed(ins.op, ins.dst.kind, ins.src.kind)) {
    throw DecodeError(strformat(
        "illegal operand form for %s: dst kind %d, src kind %d",
        opcode_name(ins.op), static_cast<int>(ins.dst.kind),
        static_cast<int>(ins.src.kind)));
  }
  const auto check_reg = [](const Operand& o) {
    if ((o.is_gpr() || o.is_xmm()) && o.reg >= kNumGprs) {
      throw DecodeError("register number out of range");
    }
  };
  check_reg(ins.dst);
  check_reg(ins.src);
}

void encode(const Instr& ins, std::vector<std::uint8_t>* out) {
  validate(ins);
  out->push_back(static_cast<std::uint8_t>(ins.op));
  out->push_back(static_cast<std::uint8_t>(
      (static_cast<unsigned>(ins.dst.kind) << 4) |
      static_cast<unsigned>(ins.src.kind)));
  encode_operand(ins.dst, out);
  encode_operand(ins.src, out);
}

std::uint32_t decode(std::span<const std::uint8_t> bytes, std::size_t offset,
                     std::uint64_t image_base, Instr* out) {
  if (offset + 2 > bytes.size()) {
    throw DecodeError(strformat("truncated instruction at offset %zu", offset));
  }
  const std::uint8_t opbyte = bytes[offset];
  if (opbyte >= static_cast<std::uint8_t>(Opcode::kNumOpcodes)) {
    throw DecodeError(strformat("unknown opcode byte 0x%02x at offset %zu",
                                opbyte, offset));
  }
  const std::uint8_t formbyte = bytes[offset + 1];
  const auto dk = static_cast<OperandKind>(formbyte >> 4);
  const auto sk = static_cast<OperandKind>(formbyte & 0x0F);
  if (static_cast<unsigned>(dk) > 4 || static_cast<unsigned>(sk) > 4) {
    throw DecodeError("invalid operand form byte");
  }
  Instr ins;
  ins.op = static_cast<Opcode>(opbyte);
  std::size_t pos = offset + 2;
  pos += decode_operand(bytes, pos, dk, &ins.dst);
  pos += decode_operand(bytes, pos, sk, &ins.src);
  validate(ins);
  ins.addr = image_base + offset;
  ins.size = static_cast<std::uint32_t>(pos - offset);
  ins.origin = ins.addr;
  *out = ins;
  return ins.size;
}

std::vector<Instr> decode_all(std::span<const std::uint8_t> bytes,
                              std::uint64_t image_base) {
  std::vector<Instr> out;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    Instr ins;
    offset += decode(bytes, offset, image_base, &ins);
    out.push_back(ins);
  }
  return out;
}

}  // namespace fpmix::arch
