// Self-healing pool of sandboxed trial workers.
//
// The WorkerPool is the supervisor half of the out-of-process runner: a
// single driver thread multiplexes N forked Workers with poll(2), feeding
// each a trial request and collecting framed results. Staying
// single-threaded on the driver side sidesteps every multithreaded-fork
// hazard (locks held across fork, half-copied allocator state) -- the pool
// IS the parallelism in isolate mode.
//
// Failure policy, in one paragraph: a worker death, an over-rlimit resource
// verdict, or a corrupt/truncated result frame is a *fault event*, not a
// trial verdict. The pool respawns the worker (jittered exponential
// backoff; see support/backoff.hpp) and re-executes the trial with a fresh
// fault-injector attempt index. A config that kills workers
// max_crashes_per_config times in a row trips its circuit breaker: it is
// reported as a failing (kCrash) outcome, marked quarantined, and never
// executed again. A supervisor-timeout kill (TERM, then KILL after a grace
// period) is different: it yields a voting kTimeout verdict, mirroring what
// the in-process deadline path reports. If workers keep dying regardless of
// config (crash_storm_threshold consecutive deaths with no result
// delivered), the pool declares a crash storm and fails all outstanding
// work instead of fork-bombing the machine.
//
// The pool exposes two interfaces over one engine:
//   * run_batch(): the synchronous driver loop the search uses -- submit a
//     batch, pump until every outcome is in, return them in job order;
//   * submit()/pump()/take_finished(): the asynchronous form the network
//     runner daemon uses to multiplex many client sessions over one pool.
//     poll_fds()/next_deadline_ns() let an external event loop (the
//     daemon's socket loop) sleep on worker pipes and supervisor deadlines
//     alongside its own fds.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "runner/trial_runner.hpp"
#include "support/backoff.hpp"

namespace fpmix::runner {

struct PoolOptions {
  /// Number of concurrently running workers.
  int workers = 1;
  /// Per-config circuit breaker: this many consecutive fault events
  /// (worker deaths, resource verdicts, protocol errors) quarantines the
  /// config as failing.
  std::uint32_t max_crashes_per_config = 3;
  /// Pool-wide breaker: this many consecutive worker deaths without a
  /// single delivered result aborts outstanding work (the environment, not
  /// any one config, is broken).
  std::uint32_t crash_storm_threshold = 16;
  /// Wall-clock cap per trial execution; 0 disables supervisor timeouts
  /// (the worker's own VM deadline is then the only clock).
  std::uint64_t trial_timeout_ms = 0;
  /// Grace between SIGTERM and SIGKILL for a timed-out worker.
  std::uint64_t term_grace_ms = 250;
  /// Respawn throttle after consecutive deaths (jitter keeps N slots from
  /// respawning in lockstep). The envelope matches the historical inline
  /// policy: 2ms doubling to a 200ms cap.
  BackoffPolicy respawn_backoff;
  /// Rlimits each worker applies to itself.
  RlimitSpec limits;
};

/// Per-worker-slot census (slot = one seat in the pool; the worker process
/// occupying it may be respawned many times).
struct SlotStats {
  std::uint64_t requests = 0;     // trial requests successfully sent
  std::uint64_t respawns = 0;     // worker processes respawned into the slot
  std::uint64_t crashes = 0;      // non-supervisor deaths observed
  std::uint64_t timeouts = 0;     // supervisor deadline kills
  std::uint64_t quarantines = 0;  // per-config breakers tripped on this slot
};

struct PoolStats {
  std::uint64_t workers_spawned = 0;
  std::uint64_t workers_respawned = 0;
  /// Worker deaths not initiated by the supervisor (crashes, rlimit kills).
  std::uint64_t worker_crashes = 0;
  /// Workers the supervisor killed for exceeding the trial timeout.
  std::uint64_t timeouts_killed = 0;
  /// Corrupt or truncated result frames (CRC caught them).
  std::uint64_t protocol_errors = 0;
  /// Resource verdicts (rlimit OOM / SIGXCPU) absorbed as retries.
  std::uint64_t resource_retries = 0;
  std::uint64_t quarantined_configs = 0;
  /// Trial executions dispatched to workers (retries included).
  std::uint64_t isolated_trials = 0;
  bool crash_storm = false;
  /// Death census by signal name ("SIGSEGV" -> 17), plus "exit:<N>" for
  /// nonzero exits.
  std::map<std::string, std::uint64_t> crashes_by_signal;
  /// Delta-encoded config shipping (see wire.hpp kReqDelta): requests sent
  /// in each form and their config-payload bytes.
  std::uint64_t delta_requests = 0;
  std::uint64_t full_requests = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t full_bytes = 0;
  /// One entry per pool slot.
  std::vector<SlotStats> slots;
};

/// One trial to execute: the journal key identifying it and the config.
struct TrialJob {
  std::string key;
  const config::PrecisionConfig* config = nullptr;
};

struct TrialOutcome {
  verify::EvalResult result;
  /// Wall time from first dispatch to final delivery (retries included).
  std::uint64_t wall_ns = 0;
  /// Fault events absorbed to produce this outcome.
  std::uint32_t worker_deaths = 0;
  /// True when the circuit breaker tripped: `result` is a synthetic kCrash
  /// failure and the config will never run again.
  bool quarantined = false;
  /// False when no executor could take the trial at all (every remote
  /// endpoint down, in the distributed scheduler); the caller falls back
  /// to in-process evaluation. The pool itself always serves.
  bool served = true;
};

/// Supervisor for a fleet of sandboxed Workers. Not thread-safe: one
/// driver thread owns it (isolate mode's parallelism lives in the workers).
class WorkerPool {
 public:
  WorkerPool(const WorkerContext& ctx, const PoolOptions& opts);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the initial workers. False when not a single worker could be
  /// forked -- the caller degrades to the in-process path.
  bool start();

  /// Executes every job and returns outcomes in job order. Handles crash
  /// retries, respawns, timeouts and quarantine internally; after a crash
  /// storm the remaining jobs come back as kInternalError failures.
  std::vector<TrialOutcome> run_batch(const std::vector<TrialJob>& jobs);

  // ---- Asynchronous interface (the runner daemon's event loop) ------------

  /// Queues one trial. `ticket` is the caller's correlation id, echoed in
  /// the Finished record; it must be unique among unfinished submissions.
  /// The config is copied (the async caller's batch may outlive its
  /// buffers). Quarantined configs, crash storms and unsupported platforms
  /// all surface as Finished records on the next pump().
  void submit(std::uint64_t ticket, const std::string& key,
              const config::PrecisionConfig& config);

  /// One supervision iteration: dispatch queued trials onto idle workers,
  /// wait up to `max_wait_ms` for response traffic (0 = just drain what is
  /// ready, -1 = sleep until traffic or an internal deadline), process
  /// results, enforce trial deadlines.
  void pump(int max_wait_ms);

  /// One finished trial from the async interface.
  struct Finished {
    std::uint64_t ticket = 0;
    TrialOutcome outcome;
  };
  /// Drains finished trials accumulated by pump(), in completion order.
  std::vector<Finished> take_finished();

  /// True when nothing is queued, in flight, or waiting to be taken.
  bool idle() const {
    return queue_.empty() && work_.empty() && finished_.empty();
  }
  /// Trials submitted but not yet finished (queued + in flight).
  std::size_t outstanding() const { return work_.size(); }

  /// Appends the response fds of busy workers, for an external poll loop;
  /// pump(0) once any is readable.
  void poll_fds(std::vector<int>* out) const;
  /// Earliest supervisor deadline (steady-clock ns; 0 = none). An external
  /// poll must not sleep past it, or timed-out workers linger unkilled.
  std::uint64_t next_deadline_ns() const;

  const PoolStats& stats() const { return stats_; }
  bool crash_storm() const { return stats_.crash_storm; }
  bool is_quarantined(const std::string& key) const {
    return quarantined_.count(key) != 0;
  }
  const std::set<std::string>& quarantined_keys() const { return quarantined_; }

 private:
  struct Slot;
  /// One submitted trial (queued or in flight).
  struct Work {
    std::string key;
    config::PrecisionConfig cfg;
    std::uint64_t first_ns = 0;   // first dispatch (wall_ns baseline)
    std::uint32_t deaths = 0;     // fault events absorbed so far
  };

  bool spawn_slot(Slot* slot, bool respawn);
  /// Registers a fault event for `key`; returns true when the breaker
  /// tripped (the config is now quarantined).
  bool record_fault_event(const std::string& key);
  void finish(std::uint64_t ticket, verify::EvalResult result,
              bool quarantined);
  void deliver_verdict(std::uint64_t ticket, verify::EvalResult result);
  void fault_event(std::uint64_t ticket, Slot* slot,
                   const std::string& detail);
  void note_death();
  Worker::Death kill_and_reap(Slot* slot);
  void process_ready(Slot* slot);
  void dispatch();
  void fail_all_outstanding(const std::string& reason);
  SlotStats* slot_stats(const Slot& s);

  WorkerContext ctx_;
  PoolOptions opts_;
  PoolStats stats_;
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Per-config consecutive fault events (reset when a verdict lands).
  std::map<std::string, std::uint32_t> fault_streak_;
  /// Per-config execution counter: every dispatch (retries included)
  /// consumes one index, so the fault injector draws fresh per execution.
  std::map<std::string, std::uint32_t> exec_counter_;
  std::set<std::string> quarantined_;
  /// Pool-wide consecutive deaths with no delivered result (storm detector
  /// and backoff driver).
  std::uint32_t consecutive_deaths_ = 0;
  /// Jitter stream for the respawn backoff (deterministic per pool).
  SplitMix64 backoff_rng_{0x6261636B6F6666ull};  // "backoff"
  bool started_ = false;

  std::map<std::uint64_t, Work> work_;   // ticket -> unfinished trial
  std::deque<std::uint64_t> queue_;      // tickets awaiting dispatch
  std::vector<Finished> finished_;
  std::uint64_t next_ticket_ = 1;        // run_batch's internal tickets
};

}  // namespace fpmix::runner
