file(REMOVE_RECURSE
  "libfpmix_kernels.a"
)
