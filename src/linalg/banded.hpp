// Banded matrices and banded LU (the SuperLU stand-in; see DESIGN.md for
// the substitution rationale).
//
// Storage is LAPACK-style band storage: band(i, d) holds A(i, i + d) for
// d in [-kl, ku]. Factorization is LU without pivoting -- valid for the
// diagonally dominant systems our memplus-like generator produces -- and is
// implemented identically in the native twins here and in the virtual
// kernel (kernels/superlu.cpp), so the error metrics line up.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fpmix::linalg {

template <typename T>
class Banded {
 public:
  Banded() = default;
  Banded(std::size_t n, std::size_t kl, std::size_t ku)
      : n_(n), kl_(kl), ku_(ku), w_(kl + ku + 1), a_(n * w_, T(0)) {}

  std::size_t n() const { return n_; }
  std::size_t kl() const { return kl_; }
  std::size_t ku() const { return ku_; }
  std::size_t width() const { return w_; }

  /// Element A(i, i+d), d in [-kl, ku]. Out-of-band reads return 0.
  T get(std::size_t i, std::ptrdiff_t d) const {
    if (d < -static_cast<std::ptrdiff_t>(kl_) ||
        d > static_cast<std::ptrdiff_t>(ku_)) {
      return T(0);
    }
    return a_[i * w_ + static_cast<std::size_t>(d + kl_)];
  }
  void set(std::size_t i, std::ptrdiff_t d, T v) {
    FPMIX_CHECK(d >= -static_cast<std::ptrdiff_t>(kl_) &&
                d <= static_cast<std::ptrdiff_t>(ku_));
    a_[i * w_ + static_cast<std::size_t>(d + kl_)] = v;
  }

  const std::vector<T>& storage() const { return a_; }
  std::vector<T>& storage() { return a_; }

  std::vector<T> matvec(const std::vector<T>& x) const {
    FPMIX_CHECK(x.size() == n_);
    std::vector<T> y(n_, T(0));
    for (std::size_t i = 0; i < n_; ++i) {
      T acc = T(0);
      for (std::ptrdiff_t d = -static_cast<std::ptrdiff_t>(kl_);
           d <= static_cast<std::ptrdiff_t>(ku_); ++d) {
        const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + d;
        if (j < 0 || j >= static_cast<std::ptrdiff_t>(n_)) continue;
        acc += get(i, d) * x[static_cast<std::size_t>(j)];
      }
      y[i] = acc;
    }
    return y;
  }

  template <typename U>
  Banded<U> cast() const {
    Banded<U> out(n_, kl_, ku_);
    for (std::size_t i = 0; i < a_.size(); ++i) {
      out.storage()[i] = static_cast<U>(a_[i]);
    }
    return out;
  }

 private:
  std::size_t n_ = 0, kl_ = 0, ku_ = 0, w_ = 1;
  std::vector<T> a_;
};

/// In-place banded LU without pivoting. L's multipliers overwrite the lower
/// band; U overwrites the diagonal and upper band. Throws on zero pivot.
template <typename T>
void banded_lu_factor(Banded<T>* a);

/// Solves LUx = b given banded_lu_factor output.
template <typename T>
std::vector<T> banded_lu_solve(const Banded<T>& lu, const std::vector<T>& b);

/// The end-to-end error metric our SuperLU analogue reports:
/// max_i |x_i - xtrue_i| / max_i |xtrue_i|.
template <typename T>
double solution_error(const std::vector<T>& x,
                      const std::vector<double>& xtrue);

/// Generates the memplus-like system: an n x n banded matrix whose diagonal
/// magnitudes span several orders of magnitude (memory-circuit conductances)
/// with strictly weaker off-diagonal coupling, keeping the matrix diagonally
/// dominant so pivot-free LU is stable while the wide dynamic range makes
/// the solve genuinely sensitive to working precision.
Banded<double> make_memplus_like(std::size_t n, std::size_t half_bandwidth,
                                 std::uint64_t seed);

extern template void banded_lu_factor<double>(Banded<double>*);
extern template void banded_lu_factor<float>(Banded<float>*);
extern template std::vector<double> banded_lu_solve<double>(
    const Banded<double>&, const std::vector<double>&);
extern template std::vector<float> banded_lu_solve<float>(
    const Banded<float>&, const std::vector<float>&);
extern template double solution_error<double>(const std::vector<double>&,
                                              const std::vector<double>&);
extern template double solution_error<float>(const std::vector<float>&,
                                             const std::vector<double>&);

}  // namespace fpmix::linalg
