file(REMOVE_RECURSE
  "libfpmix_lang.a"
)
