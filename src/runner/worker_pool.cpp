#include "runner/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_POOL_POSIX 1
#include <poll.h>
#else
#define FPMIX_POOL_POSIX 0
#endif

namespace fpmix::runner {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One worker plus its in-flight bookkeeping.
struct WorkerPool::Slot {
  Worker worker;
  bool busy = false;
  std::size_t job_index = 0;
  std::uint64_t deadline_at = 0;  // steady ns; 0 = no supervisor timeout
  bool term_sent = false;
  std::uint64_t kill_at = 0;  // TERM grace expiry once term_sent
  /// Driver-side mirror of the worker's delta session base: the last config
  /// this worker successfully received. Reset on every (re)spawn -- a fresh
  /// worker has no base, so the first request after a respawn is always a
  /// full frame.
  bool has_base = false;
  config::PrecisionConfig base;
  std::size_t stats_index = 0;  // index into PoolStats::slots
};

WorkerPool::WorkerPool(const WorkerContext& ctx, const PoolOptions& opts)
    : ctx_(ctx), opts_(opts) {}

WorkerPool::~WorkerPool() = default;

bool WorkerPool::spawn_slot(Slot* slot, bool respawn) {
  // The fresh worker has no session base; delta requests would desync.
  slot->has_base = false;
  if (!slot->worker.spawn(ctx_, opts_.limits)) return false;
  ++stats_.workers_spawned;
  if (respawn) {
    ++stats_.workers_respawned;
    if (slot->stats_index < stats_.slots.size()) {
      ++stats_.slots[slot->stats_index].respawns;
    }
  }
  return true;
}

bool WorkerPool::record_fault_event(const std::string& key) {
  const std::uint32_t streak = ++fault_streak_[key];
  if (streak < opts_.max_crashes_per_config) return false;
  quarantined_.insert(key);
  ++stats_.quarantined_configs;
  return true;
}

bool WorkerPool::start() {
  if (!isolation_supported()) return false;
  const int want = std::max(1, opts_.workers);
  for (int i = 0; i < want; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->stats_index = slots_.size();
    if (spawn_slot(slot.get(), /*respawn=*/false)) {
      slots_.push_back(std::move(slot));
    }
  }
  stats_.slots.resize(slots_.size());
  started_ = !slots_.empty();
  return started_;
}

std::vector<TrialOutcome> WorkerPool::run_batch(
    const std::vector<TrialJob>& jobs) {
  std::vector<TrialOutcome> out(jobs.size());
  if (jobs.empty()) return out;

#if !FPMIX_POOL_POSIX
  for (auto& o : out) {
    o.result.passed = false;
    o.result.failure_class = verify::FailureClass::kInternalError;
    o.result.failure = "process isolation is unsupported on this platform";
  }
  return out;
#else
  if (!started_) {
    for (auto& o : out) {
      o.result.passed = false;
      o.result.failure_class = verify::FailureClass::kInternalError;
      o.result.failure = "worker pool has no running workers";
    }
    return out;
  }

  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < jobs.size(); ++i) queue.push_back(i);
  std::vector<std::uint64_t> first_dispatch(jobs.size(), 0);
  std::vector<std::uint32_t> deaths(jobs.size(), 0);
  std::vector<char> done(jobs.size(), 0);
  std::size_t completed = 0;

  const auto finish = [&](std::size_t j, verify::EvalResult result,
                          bool quarantined) {
    out[j].result = std::move(result);
    out[j].worker_deaths = deaths[j];
    out[j].quarantined = quarantined;
    const std::uint64_t start = first_dispatch[j];
    out[j].wall_ns = start != 0 && now_ns() > start ? now_ns() - start : 0;
    done[j] = 1;
    ++completed;
  };

  // A verdict (pass/fail/timeout) landed for this config: its fault streak
  // resets and the pool-wide storm detector sees a healthy environment.
  const auto deliver_verdict = [&](std::size_t j, verify::EvalResult result) {
    fault_streak_[jobs[j].key] = 0;
    consecutive_deaths_ = 0;
    finish(j, std::move(result), /*quarantined=*/false);
  };

  const auto slot_stats = [&](const Slot& s) -> SlotStats* {
    return s.stats_index < stats_.slots.size() ? &stats_.slots[s.stats_index]
                                               : nullptr;
  };

  // A fault event (death / resource verdict / protocol error): retry the
  // trial with a fresh injector draw, or trip the per-config breaker.
  const auto fault_event = [&](std::size_t j, const Slot& s,
                               const std::string& detail) {
    ++deaths[j];
    if (record_fault_event(jobs[j].key)) {
      if (SlotStats* ss = slot_stats(s)) ++ss->quarantines;
      verify::EvalResult er;
      er.passed = false;
      er.failure_class = verify::FailureClass::kCrash;
      er.failure = strformat(
          "quarantined after %u consecutive worker faults (last: %s)",
          static_cast<unsigned>(fault_streak_[jobs[j].key]), detail.c_str());
      finish(j, std::move(er), /*quarantined=*/true);
    } else {
      queue.push_back(j);
    }
  };

  const auto note_death = [&]() {
    ++consecutive_deaths_;
    if (consecutive_deaths_ >= opts_.crash_storm_threshold) {
      stats_.crash_storm = true;
    }
  };

  // Force-kills and reaps a worker whose stream turned bad (corrupt frame,
  // failed send). Harmless when the child is already gone.
  const auto kill_and_reap = [](Slot& s) {
    s.worker.send_sigkill();
    s.has_base = false;
    Worker::Death death;
    s.worker.reap(&death, /*block=*/true);
    return death;
  };

  const auto process_ready = [&](Slot& s) {
    std::string payload;
    bool eof = false;
    const FrameStatus st = s.worker.read_result(&payload, &eof);
    const std::size_t j = s.job_index;
    if (st == FrameStatus::kOk) {
      WireResult w;
      verify::EvalResult er;
      if (!decode_result(payload, &w) || !to_eval_result(w, &er)) {
        ++stats_.protocol_errors;
        kill_and_reap(s);
        note_death();
        s.busy = false;
        if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
        fault_event(j, s, "malformed result payload from worker");
        return;
      }
      s.busy = false;
      if (er.failure_class == verify::FailureClass::kResource) {
        // Resource verdicts are fault events, not votes: the config gets a
        // fresh attempt, then the breaker.
        ++stats_.resource_retries;
        consecutive_deaths_ = 0;  // the worker survived and spoke
        fault_event(j, s, er.failure);
        return;
      }
      deliver_verdict(j, std::move(er));
      return;
    }
    if (st == FrameStatus::kCorrupt) {
      ++stats_.protocol_errors;
      kill_and_reap(s);
      note_death();
      s.busy = false;
      if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
      fault_event(j, s, "corrupt or truncated result frame");
      return;
    }
    // kNeedMore: either nothing complete yet, or EOF with no frame.
    if (!eof) return;
    Worker::Death death;
    s.worker.reap(&death, /*block=*/true);
    s.busy = false;
    s.has_base = false;
    if (s.term_sent) {
      // The supervisor killed it for exceeding the trial deadline: a
      // voting kTimeout verdict, same as the in-process deadline path.
      ++stats_.timeouts_killed;
      if (SlotStats* ss = slot_stats(s)) ++ss->timeouts;
      verify::EvalResult er;
      er.passed = false;
      er.failure_class = verify::FailureClass::kTimeout;
      er.run_status = vm::RunResult::Status::kDeadline;
      er.failure = strformat(
          "trial exceeded the supervisor deadline (%llu ms); worker killed",
          static_cast<unsigned long long>(opts_.trial_timeout_ms));
      deliver_verdict(j, std::move(er));
      return;
    }
    std::string detail;
    const verify::FailureClass cls = classify_death(death, &detail);
    ++stats_.worker_crashes;
    if (death.signaled) {
      ++stats_.crashes_by_signal[signal_name(death.signal)];
    } else {
      ++stats_.crashes_by_signal[strformat("exit:%d", death.exit_code)];
    }
    if (cls == verify::FailureClass::kResource) ++stats_.resource_retries;
    if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
    note_death();
    fault_event(j, s, detail);
  };

  while (completed < jobs.size() && !stats_.crash_storm) {
    // Dispatch queued jobs onto idle slots.
    for (auto& sp : slots_) {
      Slot& s = *sp;
      if (s.busy) continue;
      // Configs quarantined in an earlier batch never run again.
      while (!queue.empty() && quarantined_.count(jobs[queue.front()].key)) {
        const std::size_t j = queue.front();
        queue.pop_front();
        verify::EvalResult er;
        er.passed = false;
        er.failure_class = verify::FailureClass::kCrash;
        er.failure = "config quarantined by the crash-loop breaker";
        finish(j, std::move(er), /*quarantined=*/true);
      }
      if (queue.empty()) break;
      if (!s.worker.running()) {
        if (consecutive_deaths_ > 0) {
          // Exponential backoff: 2ms doubling to a 200ms cap. Keeps a
          // crash-looping config from respawn-thrashing the machine.
          const std::uint64_t ms = std::min<std::uint64_t>(
              200, 1ull << std::min<std::uint32_t>(consecutive_deaths_, 8));
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
        if (!spawn_slot(&s, /*respawn=*/true)) {
          note_death();  // repeated fork failure is an environment problem
          if (stats_.crash_storm) break;
          continue;
        }
      }
      const std::size_t j = queue.front();
      queue.pop_front();
      const TrialJob& job = jobs[j];
      TrialRequest req;
      req.key = job.key;
      req.exec_index = exec_counter_[job.key]++;
      // Adaptive config encoding: ship the delta against this worker's
      // session base when it is strictly smaller than the full canonical
      // key; otherwise fall back to a full frame (which also re-anchors
      // the session after large jumps).
      std::string full = job.config->canonical_key();
      if (s.has_base) {
        std::string delta = job.config->encode_delta_from(s.base);
        if (delta.size() < full.size()) {
          req.opcode = kReqDelta;
          req.config_key = std::move(delta);
        }
      }
      if (req.opcode != kReqDelta) {
        req.opcode = kReqFull;
        req.config_key = std::move(full);
      }
      if (first_dispatch[j] == 0) first_dispatch[j] = now_ns();
      ++stats_.isolated_trials;
      if (!s.worker.send_request(req)) {
        const Worker::Death death = kill_and_reap(s);
        std::string detail;
        classify_death(death, &detail);
        ++stats_.worker_crashes;
        if (SlotStats* ss = slot_stats(s)) ++ss->crashes;
        note_death();
        fault_event(j, s,
                    strformat("request pipe broken (%s)", detail.c_str()));
        continue;
      }
      // The worker advances its session base on every request it decodes;
      // mirror that here. If it dies before decoding, the respawn resets
      // both sides.
      s.base = *job.config;
      s.has_base = true;
      if (req.opcode == kReqDelta) {
        ++stats_.delta_requests;
        stats_.delta_bytes += req.config_key.size();
      } else {
        ++stats_.full_requests;
        stats_.full_bytes += req.config_key.size();
      }
      if (SlotStats* ss = slot_stats(s)) ++ss->requests;
      s.busy = true;
      s.job_index = j;
      s.term_sent = false;
      s.kill_at = 0;
      s.deadline_at = opts_.trial_timeout_ms > 0
                          ? now_ns() + opts_.trial_timeout_ms * 1000000ull
                          : 0;
    }
    if (completed >= jobs.size() || stats_.crash_storm) break;

    // Gather in-flight response fds.
    std::vector<pollfd> fds;
    std::vector<Slot*> fd_slots;
    std::uint64_t next_event = 0;
    for (auto& sp : slots_) {
      Slot& s = *sp;
      if (!s.busy) continue;
      fds.push_back(pollfd{s.worker.response_fd(), POLLIN, 0});
      fd_slots.push_back(&s);
      const std::uint64_t ev = s.term_sent ? s.kill_at : s.deadline_at;
      if (ev != 0 && (next_event == 0 || ev < next_event)) next_event = ev;
    }
    if (fds.empty()) continue;  // nothing in flight: dispatch again

    int timeout_ms = -1;
    if (next_event != 0) {
      const std::uint64_t now = now_ns();
      timeout_ms = next_event > now
                       ? static_cast<int>((next_event - now) / 1000000ull) + 1
                       : 0;
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents != 0) process_ready(*fd_slots[i]);
    }

    // Deadline enforcement: TERM first, KILL after the grace period.
    const std::uint64_t now = now_ns();
    for (auto& sp : slots_) {
      Slot& s = *sp;
      if (!s.busy) continue;
      if (!s.term_sent && s.deadline_at != 0 && now >= s.deadline_at) {
        s.worker.send_sigterm();
        s.term_sent = true;
        s.kill_at = now + opts_.term_grace_ms * 1000000ull;
      } else if (s.term_sent && now >= s.kill_at) {
        s.worker.send_sigkill();
      }
    }
  }

  if (stats_.crash_storm) {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (done[j]) continue;
      verify::EvalResult er;
      er.passed = false;
      er.failure_class = verify::FailureClass::kInternalError;
      er.failure = strformat(
          "worker crash storm: %u consecutive deaths, batch aborted",
          static_cast<unsigned>(consecutive_deaths_));
      finish(j, std::move(er), /*quarantined=*/false);
    }
  }
  return out;
#endif
}

}  // namespace fpmix::runner
