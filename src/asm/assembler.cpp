#include "asm/assembler.hpp"

#include <cstring>
#include <set>

#include "arch/encode.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace fpmix::casm {

using arch::Instr;
using arch::Opcode;
using arch::Operand;

Assembler::Assembler()
    : data_base_(program::Image::kDefaultDataBase),
      bss_base_(program::Image::kDefaultBssBase) {}

void Assembler::begin_function(std::string name, std::string module) {
  FPMIX_CHECK(!in_function_);
  for (const auto& f : functions_) {
    if (f.name == name) {
      throw ProgramError(strformat("duplicate function %s", name.c_str()));
    }
  }
  PendingFunction fn;
  fn.name = std::move(name);
  fn.module = std::move(module);
  functions_.push_back(std::move(fn));
  in_function_ = true;
}

void Assembler::end_function() {
  FPMIX_CHECK(in_function_);
  FPMIX_CHECK(!current().instrs.empty());
  in_function_ = false;
}

Assembler::PendingFunction& Assembler::current() {
  FPMIX_CHECK(in_function_);
  return functions_.back();
}

Label Assembler::new_label() { return Label{next_label_++}; }

void Assembler::bind(Label label) {
  FPMIX_CHECK(label.valid());
  PendingFunction& fn = current();
  FPMIX_CHECK(!fn.label_positions.contains(label.id));
  fn.label_positions[label.id] = fn.instrs.size();
}

void Assembler::emit(Opcode op, Operand dst, Operand src) {
  Instr ins = arch::make2(op, dst, src);
  arch::validate(ins);
  current().instrs.push_back(ins);
}

void Assembler::branch(Opcode op, Label l) {
  FPMIX_CHECK(l.valid());
  PendingFunction& fn = current();
  fn.branch_labels[fn.instrs.size()] = l.id;
  fn.instrs.push_back(arch::make2(op, Operand::none(), Operand::make_imm(0)));
}

void Assembler::jmp(Label l) { branch(Opcode::kJmp, l); }
void Assembler::je(Label l) { branch(Opcode::kJe, l); }
void Assembler::jne(Label l) { branch(Opcode::kJne, l); }
void Assembler::jl(Label l) { branch(Opcode::kJl, l); }
void Assembler::jle(Label l) { branch(Opcode::kJle, l); }
void Assembler::jg(Label l) { branch(Opcode::kJg, l); }
void Assembler::jge(Label l) { branch(Opcode::kJge, l); }
void Assembler::jb(Label l) { branch(Opcode::kJb, l); }
void Assembler::jbe(Label l) { branch(Opcode::kJbe, l); }
void Assembler::ja(Label l) { branch(Opcode::kJa, l); }
void Assembler::jae(Label l) { branch(Opcode::kJae, l); }

void Assembler::call(std::string_view callee) {
  PendingFunction& fn = current();
  fn.call_names[fn.instrs.size()] = std::string(callee);
  fn.instrs.push_back(
      arch::make2(Opcode::kCall, Operand::none(), Operand::make_imm(0)));
}

void Assembler::ret() { emit(Opcode::kRet); }
void Assembler::halt() { emit(Opcode::kHalt); }

void Assembler::intrin(arch::intrinsics::Id id) {
  emit(Opcode::kIntrin, Operand::none(),
       Operand::make_imm(static_cast<std::int64_t>(id)));
}

std::uint64_t Assembler::data_f64(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return data_bytes(&bits, sizeof(bits), 8);
}

std::uint64_t Assembler::data_i64(std::int64_t value) {
  return data_bytes(&value, sizeof(value), 8);
}

std::uint64_t Assembler::data_bytes(const void* bytes, std::size_t size,
                                    std::size_t align) {
  FPMIX_CHECK(align > 0 && (align & (align - 1)) == 0);
  while (data_.size() % align != 0) data_.push_back(0);
  const std::uint64_t addr = data_base_ + data_.size();
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  data_.insert(data_.end(), p, p + size);
  return addr;
}

std::uint64_t Assembler::reserve_bss(std::size_t size, std::size_t align) {
  FPMIX_CHECK(align > 0 && (align & (align - 1)) == 0);
  // bss lives at a fixed base of its own so that slots can be handed out
  // while the data segment (constant pool) is still growing.
  std::uint64_t off = bss_bytes_;
  while ((bss_base_ + off) % align != 0) ++off;
  const std::uint64_t addr = bss_base_ + off;
  bss_bytes_ = off + size;
  return addr;
}

program::Program Assembler::finish(std::string_view entry) {
  FPMIX_CHECK(!in_function_);
  program::Program prog;
  prog.data = data_;
  prog.data_base = data_base_;
  prog.bss_base = bss_base_;
  prog.bss_size = bss_bytes_;
  if (data_base_ + data_.size() > bss_base_) {
    throw ProgramError("data segment (constant pool) overflows into bss");
  }

  // Grow the VM address space if static data plus a stack reserve overflows
  // the default size.
  constexpr std::uint64_t kStackReserve = 4ull << 20;
  const std::uint64_t need = bss_base_ + bss_bytes_ + kStackReserve;
  if (need > prog.memory_size) {
    std::uint64_t sz = prog.memory_size;
    while (sz < need) sz *= 2;
    prog.memory_size = sz;
  }

  // Pass 1: function name -> index.
  std::map<std::string, program::FuncIndex> func_index;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    func_index[functions_[i].name] = static_cast<program::FuncIndex>(i);
  }

  for (PendingFunction& fn : functions_) {
    program::Function out;
    out.name = fn.name;
    out.module = fn.module;

    const std::size_t n = fn.instrs.size();
    // Resolve calls.
    for (auto& [idx, callee] : fn.call_names) {
      auto it = func_index.find(callee);
      if (it == func_index.end()) {
        throw ProgramError(strformat("call to undefined function %s from %s",
                                     callee.c_str(), fn.name.c_str()));
      }
      fn.instrs[idx].src.imm = it->second;
    }

    // Leader analysis over instruction indices.
    std::set<std::size_t> leaders;
    leaders.insert(0);
    for (const auto& [idx, label_id] : fn.branch_labels) {
      auto it = fn.label_positions.find(label_id);
      if (it == fn.label_positions.end()) {
        throw ProgramError(strformat("unbound label in function %s",
                                     fn.name.c_str()));
      }
      if (it->second >= n) {
        throw ProgramError(strformat(
            "label in %s bound past the last instruction", fn.name.c_str()));
      }
      leaders.insert(it->second);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (arch::ends_basic_block(fn.instrs[i].op) && i + 1 < n) {
        leaders.insert(i + 1);
      }
    }

    std::map<std::size_t, program::BlockIndex> block_of;
    for (std::size_t leader : leaders) {
      block_of[leader] = static_cast<program::BlockIndex>(block_of.size());
    }
    out.blocks.resize(leaders.size());

    program::BlockIndex cur = program::kNoIndex;
    for (std::size_t i = 0; i < n; ++i) {
      auto it = block_of.find(i);
      if (it != block_of.end()) cur = it->second;
      out.blocks[static_cast<std::size_t>(cur)].instrs.push_back(
          fn.instrs[i]);
    }

    // Edges.
    std::size_t pos = 0;
    for (std::size_t bi = 0; bi < out.blocks.size(); ++bi) {
      program::BasicBlock& blk = out.blocks[bi];
      const std::size_t last = pos + blk.instrs.size() - 1;
      arch::Instr& term = blk.instrs.back();
      const auto& info = arch::opcode_info(term.op);
      if (info.is_branch) {
        const int label_id = fn.branch_labels.at(last);
        const std::size_t target = fn.label_positions.at(label_id);
        blk.taken = block_of.at(target);
        term.src.imm = blk.taken;
        if (info.is_cond_branch) {
          if (last + 1 >= n) {
            throw ProgramError(strformat(
                "conditional branch at end of function %s", fn.name.c_str()));
          }
          blk.fallthrough = block_of.at(last + 1);
        }
      } else if (info.is_ret || info.is_halt) {
        // no successors
      } else {
        if (last + 1 >= n) {
          throw ProgramError(strformat("function %s falls off its end",
                                       fn.name.c_str()));
        }
        blk.fallthrough = block_of.at(last + 1);
      }
      pos += blk.instrs.size();
    }

    prog.functions.push_back(std::move(out));
  }

  auto it = func_index.find(std::string(entry));
  if (it == func_index.end()) {
    throw ProgramError(strformat("entry function %.*s not defined",
                                 static_cast<int>(entry.size()),
                                 entry.data()));
  }
  prog.entry_function = it->second;
  prog.validate();
  return prog;
}

}  // namespace fpmix::casm
