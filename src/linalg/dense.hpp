// Dense linear algebra templated over the scalar type.
//
// Used natively (outside the VM) for three purposes: reference solutions
// when validating the virtual kernels, the double/float speedup twins of
// Section 3.2/3.3, and the mixed-precision iterative refinement algorithm of
// Figure 12 (LU in single precision, residual correction in double).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/error.hpp"

namespace fpmix::linalg {

/// Row-major dense matrix.
template <typename T>
class Dense {
 public:
  Dense() = default;
  Dense(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows * cols, T(0)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  T& at(std::size_t i, std::size_t j) { return a_[i * cols_ + j]; }
  const T& at(std::size_t i, std::size_t j) const { return a_[i * cols_ + j]; }
  const std::vector<T>& data() const { return a_; }
  std::vector<T>& data() { return a_; }

  /// y = A x
  std::vector<T> matvec(const std::vector<T>& x) const {
    FPMIX_CHECK(x.size() == cols_);
    std::vector<T> y(rows_, T(0));
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc = T(0);
      for (std::size_t j = 0; j < cols_; ++j) acc += at(i, j) * x[j];
      y[i] = acc;
    }
    return y;
  }

  /// Converts element-wise (double -> float narrows once per entry).
  template <typename U>
  Dense<U> cast() const {
    Dense<U> out(rows_, cols_);
    for (std::size_t i = 0; i < a_.size(); ++i) {
      out.data()[i] = static_cast<U>(a_[i]);
    }
    return out;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> a_;
};

/// In-place LU factorization with partial pivoting. Returns the pivot
/// permutation (`piv[k]` = row swapped into position k at step k).
/// Throws Error on exact singularity.
template <typename T>
std::vector<std::size_t> lu_factor(Dense<T>* a);

/// Solves LU x = P b for `x` given the output of lu_factor.
template <typename T>
std::vector<T> lu_solve(const Dense<T>& lu, const std::vector<std::size_t>& piv,
                        const std::vector<T>& b);

/// Convenience: solve A x = b by factor+solve on a copy.
template <typename T>
std::vector<T> dense_solve(const Dense<T>& a, const std::vector<T>& b);

/// Vector helpers.
template <typename T>
T norm_inf(const std::vector<T>& v) {
  T m = T(0);
  for (T x : v) m = std::max(m, static_cast<T>(std::fabs(double(x))));
  return m;
}

template <typename T>
T norm2(const std::vector<T>& v) {
  double acc = 0;
  for (T x : v) acc += double(x) * double(x);
  return static_cast<T>(std::sqrt(acc));
}

/// r = b - A x (computed in T precision).
template <typename T>
std::vector<T> residual(const Dense<T>& a, const std::vector<T>& x,
                        const std::vector<T>& b) {
  std::vector<T> ax = a.matvec(x);
  std::vector<T> r(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) r[i] = b[i] - ax[i];
  return r;
}

// ---- explicit instantiation declarations ----------------------------------
extern template std::vector<std::size_t> lu_factor<double>(Dense<double>*);
extern template std::vector<std::size_t> lu_factor<float>(Dense<float>*);
extern template std::vector<double> lu_solve<double>(
    const Dense<double>&, const std::vector<std::size_t>&,
    const std::vector<double>&);
extern template std::vector<float> lu_solve<float>(
    const Dense<float>&, const std::vector<std::size_t>&,
    const std::vector<float>&);
extern template std::vector<double> dense_solve<double>(
    const Dense<double>&, const std::vector<double>&);
extern template std::vector<float> dense_solve<float>(
    const Dense<float>&, const std::vector<float>&);

}  // namespace fpmix::linalg
