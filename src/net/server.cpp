#include "net/server.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <string.h>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "net/shard_store.hpp"
#include "runner/worker_pool.hpp"
#include "support/fault.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "vm/jit/jit.hpp"
#include "vm/machine.hpp"
#include "support/strings.hpp"
#include "verify/trial_builder.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_NET_POSIX 1
#include <poll.h>
#else
#define FPMIX_NET_POSIX 0
#endif

namespace fpmix::net {

using runner::FrameStatus;

namespace {

/// One shard-cache verdict: exactly the slice of an EvalResult the search's
/// decision procedure consumes (mirrors search::CachedTrial without pulling
/// the search library into the net layer).
struct CacheEntry {
  bool passed = false;
  std::uint8_t failure_class = 0;
  std::string failure;
};

/// Identity of one evaluation context. Sessions whose hellos collapse to
/// the same key share a backend (workload, builder, injector, pool).
std::string backend_key(const HelloMsg& h) {
  std::string k = strformat(
      "%s|%c|%u|%llu|%llu|%u|%llu|%u|%llu|", h.bench.c_str(),
      static_cast<char>(h.cls), static_cast<unsigned>(h.engine),
      static_cast<unsigned long long>(h.max_instructions),
      static_cast<unsigned long long>(h.deadline_ms),
      static_cast<unsigned>(h.max_crashes),
      static_cast<unsigned long long>(h.rlimit_mb),
      static_cast<unsigned>(h.has_fault),
      static_cast<unsigned long long>(h.fault_seed));
  // Fold the rate table in as bit patterns (exact, no formatting loss).
  const fault::Injector::Rates& r = h.fault_rates;
  const double rates[12] = {r.abort,          r.bitflip,       r.sentinel,
                            r.stall,          r.flaky,         r.segv,
                            r.kill,           r.oom,           r.hang,
                            r.hang_ignore_term, r.trunc_result,
                            r.corrupt_result};
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a over the bits
  for (double v : rates) {
    std::uint64_t b = 0;
    memcpy(&b, &v, sizeof(b));
    for (int i = 0; i < 8; ++i) {
      digest ^= (b >> (8 * i)) & 0xFF;
      digest *= 1099511628211ull;
    }
  }
  k += strformat("%016llx", static_cast<unsigned long long>(digest));
  return k;
}

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct RunnerServer::Impl {
  Listener listener;
  WorkloadFactory factory;
  ServerOptions opts;
  ServerStats* stats = nullptr;

  struct Backend {
    std::unique_ptr<ServedWorkload> wl;
    std::unique_ptr<verify::TrialBuilder> builder;
    std::unique_ptr<fault::Injector> injector;
    std::unique_ptr<runner::WorkerPool> pool;
    std::string verifier_fp;
    std::uint32_t workers = 0;
    /// Fleet-wide trial cache, namespaced by search fingerprint so faulted
    /// and clean campaigns never cross-pollinate. First insert wins.
    std::map<std::string, std::unordered_map<std::string, CacheEntry>> shard;
    /// Routing of pool tickets back to sessions.
    struct Route {
      std::uint64_t session_id = 0;
      std::uint64_t client_ticket = 0;
      std::string key;
      std::string search_fp;
      bool shard_cache = false;
    };
    std::map<std::uint64_t, Route> inflight;
    std::uint64_t next_ticket = 1;
  };

  struct Session {
    std::uint64_t id = 0;
    Socket sock;
    FrameBuffer fb;
    bool hello_done = false;
    bool dead = false;
    Backend* backend = nullptr;
    std::string search_fp;
    bool shard_cache = false;
    std::uint64_t last_active_ms = 0;  // last inbound traffic (idle reaping)
  };

  /// One replicated journal shard: every CRC-sealed line a scheduler has
  /// streamed for one search fingerprint, keyed (and deduplicated) by its
  /// sealed sequence number. Survives the session that fed it -- an adopting
  /// scheduler fetches it over a *new* session with the same search_fp.
  struct JournalShard {
    std::map<std::uint64_t, std::string> by_seq;
    std::uint64_t dropped = 0;     // records shed to max_shard_records
    std::uint64_t last_touch = 0;  // LRU clock for whole-shard eviction
  };

  std::map<std::string, std::unique_ptr<Backend>> backends;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions;
  std::map<std::string, JournalShard> journal_shards;  // by search_fp
  /// Durable backing for journal shards and verdict caches (no-op without a
  /// state dir). Verdicts reloaded at startup wait here until a session
  /// announces their search_fp, then seed that backend's cache.
  std::unique_ptr<ShardStore> store;
  std::map<std::string, std::vector<PersistedVerdict>> persisted_verdicts;
  std::uint64_t next_session_id = 1;
  std::uint64_t shard_touch_clock = 1;
  bool exit_tripped = false;

  void mirror_store_stats() {
    const ShardStoreStats& s = store->stats();
    stats->shards_reloaded = s.shards_reloaded;
    stats->records_reloaded = s.records_reloaded;
    stats->records_discarded = s.records_discarded;
    stats->disk_faults = s.disk_faults;
    stats->state_degraded = s.degraded ? 1 : 0;
  }

  /// Restores persisted shards into memory, enforcing the same retention
  /// caps a live stream would have hit.
  void reload_state() {
    std::map<std::string, std::map<std::uint64_t, std::string>> journal;
    store->load(&journal, &persisted_verdicts);
    for (auto& [fp, by_seq] : journal) {
      JournalShard shard;
      shard.by_seq = std::move(by_seq);
      while (opts.max_shard_records > 0 &&
             shard.by_seq.size() > opts.max_shard_records) {
        shard.by_seq.erase(shard.by_seq.begin());
        ++shard.dropped;
      }
      shard.last_touch = shard_touch_clock++;
      journal_shards.emplace(fp, std::move(shard));
    }
    while (opts.max_journal_shards > 0 &&
           journal_shards.size() > opts.max_journal_shards) {
      auto victim = journal_shards.begin();
      for (auto jt = journal_shards.begin(); jt != journal_shards.end();
           ++jt) {
        if (jt->second.last_touch < victim->second.last_touch) victim = jt;
      }
      store->remove_journal(victim->first);
      journal_shards.erase(victim);
    }
    mirror_store_stats();
  }

  /// The retained shard for `search_fp`, creating it (and evicting the
  /// least-recently-touched shard past the cap) on first touch.
  JournalShard* touch_shard(const std::string& search_fp) {
    auto it = journal_shards.find(search_fp);
    if (it == journal_shards.end()) {
      if (opts.max_journal_shards > 0 &&
          journal_shards.size() >= opts.max_journal_shards) {
        auto victim = journal_shards.begin();
        for (auto jt = journal_shards.begin(); jt != journal_shards.end();
             ++jt) {
          if (jt->second.last_touch < victim->second.last_touch) victim = jt;
        }
        if (opts.verbose) {
          log::infof("runner_serve: evicting journal shard %s (%zu records)",
                     victim->first.c_str(), victim->second.by_seq.size());
        }
        store->remove_journal(victim->first);
        journal_shards.erase(victim);
      }
      it = journal_shards.emplace(search_fp, JournalShard{}).first;
    }
    it->second.last_touch = shard_touch_clock++;
    return &it->second;
  }

  std::uint64_t shard_records(const std::string& search_fp) const {
    auto it = journal_shards.find(search_fp);
    return it == journal_shards.end() ? 0 : it->second.by_seq.size();
  }

  void drop_session(Session* s) {
    s->dead = true;
    s->sock.close();
  }

  void send_frame(Session* s, const std::string& payload) {
    if (s->dead) return;
    if (!s->sock.send_all(runner::encode_frame(payload),
                          /*timeout_ms=*/10000)) {
      drop_session(s);
    }
  }

  void session_error(Session* s, const std::string& message) {
    ++stats->protocol_errors;
    send_frame(s, encode_error_msg(message));
    drop_session(s);
  }

  /// Builds (or reuses) the backend for a hello and acks the session.
  void handle_hello(Session* s, const HelloMsg& h) {
    HelloAckMsg ack;
    if (h.version != kProtocolVersion) {
      ack.error = strformat("protocol version mismatch: server %u, client %u",
                            kProtocolVersion, h.version);
      ++stats->sessions_rejected;
      send_frame(s, encode_hello_ack(ack));
      drop_session(s);
      return;
    }
    if (h.engine > static_cast<std::uint8_t>(vm::Engine::kJit)) {
      ack.error = strformat("unknown engine %u", static_cast<unsigned>(h.engine));
      ++stats->sessions_rejected;
      send_frame(s, encode_hello_ack(ack));
      drop_session(s);
      return;
    }
    // The one sanctioned mismatch: jit requested on a host that cannot run
    // it downgrades to the (bit-identical) micro-op engine. The resolved
    // engine keys the backend, so a jit and a microop session on a jit-less
    // host share one pool.
    HelloMsg rh = h;
    if (rh.engine == static_cast<std::uint8_t>(vm::Engine::kJit) &&
        !vm::jit::jit_supported()) {
      rh.engine = static_cast<std::uint8_t>(vm::Engine::kMicroOp);
      log::warnf("runner_serve: jit engine unavailable (%s); session %llu "
                 "runs on the micro-op engine",
                 vm::jit::jit_unsupported_reason(),
                 static_cast<unsigned long long>(s->id));
    }
    ack.engine = rh.engine;
    const std::string key = backend_key(rh);
    Backend* b = nullptr;
    auto it = backends.find(key);
    if (it != backends.end()) {
      b = it->second.get();
    } else {
      auto nb = std::make_unique<Backend>();
      std::string error;
      nb->wl = factory(h.bench, static_cast<char>(h.cls), &error);
      if (nb->wl == nullptr) {
        ack.error = error.empty() ? "unknown workload" : error;
        ++stats->sessions_rejected;
        send_frame(s, encode_hello_ack(ack));
        drop_session(s);
        return;
      }
      nb->verifier_fp = nb->wl->verifier->fingerprint();
      nb->builder = std::make_unique<verify::TrialBuilder>(nb->wl->image,
                                                           nb->wl->index);
      if (h.has_fault != 0) {
        nb->injector =
            std::make_unique<fault::Injector>(h.fault_seed, h.fault_rates);
      }
      runner::WorkerContext ctx;
      ctx.image = &nb->wl->image;
      ctx.index = &nb->wl->index;
      ctx.verifier = nb->wl->verifier.get();
      ctx.eval.max_instructions = h.max_instructions;
      ctx.eval.profile = false;
      ctx.eval.engine = static_cast<vm::Engine>(rh.engine);
      ctx.eval.deadline_ns = h.deadline_ms * 1000000ull;
      ctx.eval.builder = nb->builder.get();
      ctx.injector = nb->injector.get();
      runner::PoolOptions popts;
      popts.workers = opts.workers;
      popts.max_crashes_per_config = h.max_crashes;
      popts.term_grace_ms = opts.term_grace_ms;
      popts.limits.address_space_mb = h.rlimit_mb;
      // Supervisor wall-clock backstop over the worker's own VM deadline
      // (same envelope the in-process search applies to its local pool).
      popts.trial_timeout_ms =
          h.deadline_ms > 0 ? h.deadline_ms * 3 + 1000 : 0;
      nb->pool = std::make_unique<runner::WorkerPool>(ctx, popts);
      if (!nb->pool->start()) {
        ack.error = "cannot spawn sandboxed workers on this host";
        ++stats->sessions_rejected;
        send_frame(s, encode_hello_ack(ack));
        drop_session(s);
        return;
      }
      nb->workers =
          static_cast<std::uint32_t>(nb->pool->stats().slots.size());
      b = nb.get();
      backends.emplace(key, std::move(nb));
      ++stats->backends;
      if (opts.verbose) {
        log::infof("runner_serve: backend %s.%c up (%u workers)",
                   h.bench.c_str(), static_cast<char>(h.cls), b->workers);
      }
    }
    s->backend = b;
    s->hello_done = true;
    s->search_fp = h.search_fp;
    s->shard_cache = h.shard_cache != 0;
    // Verdicts reloaded from the state dir seed this backend's cache now
    // that a session has bound their search_fp to evaluation semantics.
    // emplace keeps first-insert-wins exact: a live insert that raced the
    // reload is never overwritten.
    auto pv = persisted_verdicts.find(h.search_fp);
    if (pv != persisted_verdicts.end()) {
      auto& cache = b->shard[h.search_fp];
      for (PersistedVerdict& v : pv->second) {
        CacheEntry e;
        e.passed = v.passed;
        e.failure_class = v.failure_class;
        e.failure = std::move(v.failure);
        cache.emplace(std::move(v.key), std::move(e));
      }
      persisted_verdicts.erase(pv);
    }
    ack.ok = 1;
    ack.verifier_fp = b->verifier_fp;
    ack.workers = b->workers;
    ack.shard_records = shard_records(h.search_fp);
    ack.state_degraded = store->stats().degraded ? 1 : 0;
    ack.shards_reloaded = store->stats().shards_reloaded;
    ack.disk_faults = store->stats().disk_faults;
    send_frame(s, encode_hello_ack(ack));
  }

  /// Sends one result and trips the exit_after_results chaos hook.
  void send_result(Session* s, const ResultMsg& m) {
    send_frame(s, encode_result_msg(m));
    ++stats->trials_served;
    if (opts.exit_after_results > 0 &&
        stats->trials_served >= opts.exit_after_results) {
      exit_tripped = true;
    }
  }

  void handle_trial(Session* s, const TrialMsg& m) {
    Backend* b = s->backend;
    if (s->shard_cache) {
      auto& cache = b->shard[s->search_fp];
      auto hit = cache.find(m.key);
      if (hit != cache.end()) {
        ++stats->shard_cache_hits;
        runner::WireResult w;
        w.passed = hit->second.passed;
        w.failure_class = hit->second.failure_class;
        w.failure = hit->second.failure;
        ResultMsg r;
        r.ticket = m.ticket;
        r.flags = kResultCacheHit;
        r.wire_result = runner::encode_result(w);
        send_result(s, r);
        return;
      }
    }
    config::PrecisionConfig cfg;
    if (!config::PrecisionConfig::from_canonical_key(m.config_key, &cfg)) {
      session_error(s, strformat("trial %s: malformed config key",
                                 m.key.c_str()));
      return;
    }
    const std::uint64_t ticket = b->next_ticket++;
    Backend::Route route;
    route.session_id = s->id;
    route.client_ticket = m.ticket;
    route.key = m.key;
    route.search_fp = s->search_fp;
    route.shard_cache = s->shard_cache;
    b->inflight.emplace(ticket, std::move(route));
    b->pool->submit(ticket, m.key, cfg);
  }

  void handle_cache_insert(Session* s, const CacheInsertMsg& m) {
    auto& cache = s->backend->shard[s->search_fp];
    CacheEntry e;
    e.passed = m.passed != 0;
    e.failure_class = m.failure_class;
    e.failure = m.failure;
    if (cache.emplace(m.key, std::move(e)).second) {  // first insert wins
      persist_verdict(s->search_fp, m.key, m.passed != 0, m.failure_class,
                      m.failure);
    }
    ++stats->cache_inserts;
  }

  /// Mirrors one retained verdict to the state dir (no-op when disabled).
  void persist_verdict(const std::string& search_fp, const std::string& key,
                       bool passed, std::uint8_t failure_class,
                       const std::string& failure) {
    if (!store->enabled()) return;
    PersistedVerdict v;
    v.key = key;
    v.passed = passed;
    v.failure_class = failure_class;
    v.failure = failure;
    store->append_verdict(search_fp, v);
    mirror_store_stats();
  }

  /// Retains one streamed journal record. Damage (bad seal, unparseable
  /// seq) is *dropped*, not fatal: the replicated shard mirrors the local
  /// journal's torn-tail tolerance -- a reader skips the broken record, and
  /// the fleet-wide union from the other endpoints heals the gap.
  void handle_journal_append(Session* s, const JournalAppendMsg& m) {
    std::uint64_t seq = 0;
    if (check_seal(m.line) != SealCheck::kOk || !sealed_seq(m.line, &seq)) {
      ++stats->journal_rejected;
      return;
    }
    JournalShard* shard = touch_shard(s->search_fp);
    if (!shard->by_seq.emplace(seq, m.line).second) return;  // seq dedupe
    ++stats->journal_appends;
    store->append_journal(s->search_fp, m.line);
    std::uint64_t evicted = 0;
    while (opts.max_shard_records > 0 &&
           shard->by_seq.size() > opts.max_shard_records) {
      shard->by_seq.erase(shard->by_seq.begin());
      ++shard->dropped;
      ++evicted;
    }
    if (evicted > 0) {
      store->note_evicted(s->search_fp, evicted, shard->by_seq);
    }
    mirror_store_stats();
  }

  /// Answers a gossip digest request over the session's retained shard.
  /// An endpoint with no shard answers the zero digest, which the
  /// scheduler reads as "missing everything".
  void handle_shard_digest(Session* s) {
    ++stats->digests;
    ShardDigestMsg d;
    const auto it = journal_shards.find(s->search_fp);
    if (it != journal_shards.end() && !it->second.by_seq.empty()) {
      it->second.last_touch = shard_touch_clock++;
      d.max_seq = it->second.by_seq.rbegin()->first;
      d.seq_crc = seq_set_crc(it->second.by_seq, d.max_seq, &d.records);
    }
    send_frame(s, encode_shard_digest_ack(d));
  }

  /// Streams the whole retained shard back as JournalTail chunks. Chunked
  /// so a large history never produces one unbounded frame; the client
  /// reassembles until done=1.
  void handle_journal_fetch(Session* s) {
    ++stats->journal_fetches;
    const auto it = journal_shards.find(s->search_fp);
    JournalTailMsg chunk;
    chunk.total = it == journal_shards.end() ? 0 : it->second.by_seq.size();
    constexpr std::size_t kLinesPerChunk = 256;
    if (it != journal_shards.end()) {
      it->second.last_touch = shard_touch_clock++;
      for (const auto& [seq, line] : it->second.by_seq) {
        chunk.lines.push_back(line);
        if (chunk.lines.size() >= kLinesPerChunk) {
          send_frame(s, encode_journal_tail(chunk));
          chunk.lines.clear();
          if (s->dead) return;
        }
      }
    }
    chunk.done = 1;
    send_frame(s, encode_journal_tail(chunk));
  }

  void handle_payload(Session* s, const std::string& payload) {
    const std::uint8_t type = peek_msg_type(payload);
    if (!s->hello_done) {
      HelloMsg h;
      if (type != kMsgHello || !decode_hello(payload, &h)) {
        session_error(s, "expected hello");
        return;
      }
      handle_hello(s, h);
      return;
    }
    switch (type) {
      case kMsgTrial: {
        TrialMsg m;
        if (!decode_trial(payload, &m)) {
          session_error(s, "malformed trial message");
          return;
        }
        handle_trial(s, m);
        return;
      }
      case kMsgCacheInsert: {
        CacheInsertMsg m;
        if (!decode_cache_insert(payload, &m)) {
          session_error(s, "malformed cache-insert message");
          return;
        }
        handle_cache_insert(s, m);
        return;
      }
      case kMsgJournalAppend: {
        JournalAppendMsg m;
        if (!decode_journal_append(payload, &m)) {
          session_error(s, "malformed journal-append message");
          return;
        }
        handle_journal_append(s, m);
        return;
      }
      case kMsgJournalFetch: {
        if (!decode_journal_fetch(payload)) {
          session_error(s, "malformed journal-fetch message");
          return;
        }
        handle_journal_fetch(s);
        return;
      }
      case kMsgShardDigest: {
        if (!decode_shard_digest(payload)) {
          session_error(s, "malformed shard-digest message");
          return;
        }
        handle_shard_digest(s);
        return;
      }
      case kMsgPing: {
        PingMsg m;
        if (!decode_ping(payload, &m)) {
          session_error(s, "malformed ping message");
          return;
        }
        ++stats->pings;
        PongMsg pong;
        pong.nonce = m.nonce;
        pong.t_send_ns = m.t_send_ns;
        send_frame(s, encode_pong(pong));
        return;
      }
      case kMsgError: {
        drop_session(s);
        return;
      }
      default:
        session_error(s, strformat("unexpected message type %u",
                                   static_cast<unsigned>(type)));
    }
  }

  /// Routes finished pool work back to sessions and the shard cache.
  void pump_backends() {
    for (auto& [key, b] : backends) {
      if (b->pool == nullptr || b->pool->idle()) continue;
      b->pool->pump(0);
      for (runner::WorkerPool::Finished& f : b->pool->take_finished()) {
        auto rit = b->inflight.find(f.ticket);
        if (rit == b->inflight.end()) continue;
        Backend::Route route = std::move(rit->second);
        b->inflight.erase(rit);
        // Fill the shard cache first (even when the session is gone --
        // the verdict is fleet knowledge now).
        if (route.shard_cache) {
          auto& cache = b->shard[route.search_fp];
          CacheEntry e;
          e.passed = f.outcome.result.passed;
          e.failure_class =
              static_cast<std::uint8_t>(f.outcome.result.failure_class);
          e.failure = f.outcome.result.failure;
          const bool fresh = cache.emplace(route.key, std::move(e)).second;
          if (fresh) {
            persist_verdict(route.search_fp, route.key,
                            f.outcome.result.passed,
                            static_cast<std::uint8_t>(
                                f.outcome.result.failure_class),
                            f.outcome.result.failure);
          }
        }
        auto sit = sessions.find(route.session_id);
        if (sit == sessions.end() || sit->second->dead) continue;
        ResultMsg r;
        r.ticket = route.client_ticket;
        if (f.outcome.quarantined) r.flags |= kResultQuarantined;
        r.worker_deaths = f.outcome.worker_deaths;
        r.wall_ns = f.outcome.wall_ns;
        r.wire_result =
            runner::encode_result(runner::from_eval_result(f.outcome.result));
        send_result(sit->second.get(), r);
      }
    }
  }
};

RunnerServer::RunnerServer(Listener listener, WorkloadFactory factory,
                           const ServerOptions& opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->listener = std::move(listener);
  impl_->factory = std::move(factory);
  impl_->opts = opts;
  impl_->stats = &stats_;
  ShardStoreOptions sopts;
  sopts.dir = opts.state_dir;
  sopts.fsync = opts.state_fsync;
  sopts.chaos = opts.disk_chaos;
  sopts.verbose = opts.verbose;
  impl_->store = std::make_unique<ShardStore>(sopts);
  impl_->reload_state();
}

RunnerServer::~RunnerServer() = default;

std::uint16_t RunnerServer::port() const { return impl_->listener.port(); }

void RunnerServer::serve(const std::atomic<bool>* stop) {
#if !FPMIX_NET_POSIX
  (void)stop;
  return;
#else
  Impl& im = *impl_;
  std::string scratch;
  while (!(stop != nullptr && stop->load()) && !im.exit_tripped) {
    // ---- Assemble the poll set: listener + sessions + worker pipes. ----
    std::vector<pollfd> fds;
    fds.push_back(pollfd{im.listener.fd(), POLLIN, 0});
    std::vector<Impl::Session*> fd_sessions;
    for (auto& [id, s] : im.sessions) {
      if (s->dead) continue;
      fds.push_back(pollfd{s->sock.fd(), POLLIN, 0});
      fd_sessions.push_back(s.get());
    }
    const std::size_t pool_fd_base = fds.size();
    std::uint64_t pool_deadline = 0;
    for (auto& [key, b] : im.backends) {
      std::vector<int> pfds;
      b->pool->poll_fds(&pfds);
      for (int fd : pfds) fds.push_back(pollfd{fd, POLLIN, 0});
      const std::uint64_t d = b->pool->next_deadline_ns();
      if (d != 0 && (pool_deadline == 0 || d < pool_deadline)) {
        pool_deadline = d;
      }
    }
    (void)pool_fd_base;

    // Wake a few times a second to check the stop flag; earlier when a
    // supervised trial's deadline comes first.
    int timeout_ms = 200;
    if (pool_deadline != 0) {
      const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
      const std::uint64_t now_ns = static_cast<std::uint64_t>(now);
      const int until =
          pool_deadline > now_ns
              ? static_cast<int>((pool_deadline - now_ns) / 1000000ull) + 1
              : 0;
      if (until < timeout_ms) timeout_ms = until;
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

    // ---- Accept new sessions. ----
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        Socket sock = im.listener.accept_connection();
        if (!sock.valid()) break;
        if (im.opts.max_sessions > 0 &&
            im.sessions.size() >= im.opts.max_sessions) {
          // Reject above the cap before any backend work: an error frame
          // the client surfaces, then close.
          ++stats_.sessions_rejected;
          sock.send_all(runner::encode_frame(
                            encode_error_msg("session limit reached")),
                        /*timeout_ms=*/1000);
          sock.close();
          continue;
        }
        auto s = std::make_unique<Impl::Session>();
        s->id = im.next_session_id++;
        s->sock = std::move(sock);
        s->last_active_ms = steady_now_ms();
        ++stats_.sessions_accepted;
        if (im.opts.verbose) {
          log::infof("runner_serve: session %llu connected",
                     static_cast<unsigned long long>(s->id));
        }
        im.sessions.emplace(s->id, std::move(s));
      }
    }

    // ---- Drain session sockets and process complete frames. ----
    for (Impl::Session* s : fd_sessions) {
      scratch.clear();
      const IoStatus st = s->sock.read_available(&scratch);
      if (!scratch.empty()) {
        s->fb.append(scratch);
        s->last_active_ms = steady_now_ms();
      }
      if (st == IoStatus::kError || st == IoStatus::kEof) im.drop_session(s);
      for (;;) {
        std::string payload;
        const FrameStatus fst = s->fb.next(&payload);
        if (fst == FrameStatus::kNeedMore) break;
        if (fst == FrameStatus::kCorrupt) {
          im.session_error(s, "corrupt frame");
          break;
        }
        im.handle_payload(s, payload);
        if (s->dead) break;
      }
    }

    // ---- Run the pools and route finished trials. ----
    im.pump_backends();

    // ---- Reap idle sessions (their journal shard survives them). ----
    if (im.opts.idle_timeout_ms > 0) {
      const std::uint64_t now_ms = steady_now_ms();
      for (auto& [id, s] : im.sessions) {
        if (s->dead || now_ms - s->last_active_ms < im.opts.idle_timeout_ms) {
          continue;
        }
        ++stats_.sessions_reaped;
        log::infof("runner_serve: reaping idle session %llu (search_fp %s, "
                   "%llu retained journal records)",
                   static_cast<unsigned long long>(id),
                   s->search_fp.empty() ? "-" : s->search_fp.c_str(),
                   static_cast<unsigned long long>(
                       im.shard_records(s->search_fp)));
        im.drop_session(s.get());
      }
    }

    // ---- Reap dead sessions. ----
    for (auto it = im.sessions.begin(); it != im.sessions.end();) {
      if (it->second->dead) {
        if (im.opts.verbose) {
          log::infof("runner_serve: session %llu closed",
                     static_cast<unsigned long long>(it->first));
        }
        it = im.sessions.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Teardown: closing the listener and every session socket is the
  // "endpoint died" signal clients react to (exit_after_results chaos
  // hook, daemon shutdown). Pools die with their backends.
  im.listener.close();
  for (auto& [id, s] : im.sessions) s->sock.close();
  im.sessions.clear();
  im.mirror_store_stats();
#endif
}

}  // namespace fpmix::net
