# Empty compiler generated dependencies file for fpmix_support.
# This may be replaced when dependencies are built.
