file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_superlu.dir/bench_fig11_superlu.cpp.o"
  "CMakeFiles/bench_fig11_superlu.dir/bench_fig11_superlu.cpp.o.d"
  "bench_fig11_superlu"
  "bench_fig11_superlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_superlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
