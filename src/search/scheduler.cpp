#include "search/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "runner/wire.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "vm/machine.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_NET_POSIX 1
#include <poll.h>
#else
#define FPMIX_NET_POSIX 0
#endif

namespace fpmix::search {

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void sleep_ms(int ms) {
#if FPMIX_NET_POSIX
  ::poll(nullptr, 0, ms);
#else
  (void)ms;
#endif
}

}  // namespace

Scheduler::Scheduler(const SchedulerOptions& opts) : opts_(opts) {
  shards_.reserve(opts_.endpoints.size());
  for (std::size_t i = 0; i < opts_.endpoints.size(); ++i) {
    Shard s;
    s.ep = opts_.endpoints[i];
    s.m.address = s.ep.str();
    // Per-shard backoff seed: deterministic, distinct per shard so a fleet
    // that drops together does not redial in lockstep.
    s.backoff = Backoff(opts_.reconnect_backoff, 0x73686172ull + i);
    shards_.push_back(std::move(s));
  }
}

Scheduler::~Scheduler() = default;

bool Scheduler::try_connect(Shard* s) {
  std::string error;
  auto client = net::EndpointClient::connect(
      s->ep, opts_.hello, opts_.connect_timeout_ms, opts_.hello_timeout_ms,
      &error);
  if (client == nullptr) {
    log::warnf("scheduler: endpoint %s unavailable: %s",
               s->m.address.c_str(), error.c_str());
    note_failure(s);
    return false;
  }
  if (!opts_.verifier_fp.empty() &&
      client->verifier_fp() != opts_.verifier_fp) {
    // The endpoint evaluates a different reference computation; its
    // verdicts would be garbage. Never retry.
    log::warnf("scheduler: endpoint %s verifier fingerprint mismatch "
               "(local %s, remote %s); endpoint dropped",
               s->m.address.c_str(), opts_.verifier_fp.c_str(),
               client->verifier_fp().c_str());
    s->lost = true;
    s->m.lost = true;
    return false;
  }
  if (client->engine() != opts_.hello.engine) {
    // Engines are bit-identical, so only one mismatch is sanctioned: jit
    // requested of a host that cannot run it answers micro-op. Anything
    // else is a protocol violation; never trust the endpoint.
    const bool sanctioned_downgrade =
        opts_.hello.engine == static_cast<std::uint8_t>(vm::Engine::kJit) &&
        client->engine() == static_cast<std::uint8_t>(vm::Engine::kMicroOp);
    if (!sanctioned_downgrade) {
      log::warnf("scheduler: endpoint %s answered engine %u to a request "
                 "for engine %u; endpoint dropped",
                 s->m.address.c_str(), static_cast<unsigned>(client->engine()),
                 static_cast<unsigned>(opts_.hello.engine));
      s->lost = true;
      s->m.lost = true;
      return false;
    }
    if (!s->m.jit_downgraded) {
      log::warnf("scheduler: endpoint %s cannot run the jit engine; its "
                 "trials run on the micro-op engine (results identical)",
                 s->m.address.c_str());
      s->m.jit_downgraded = true;
    }
  }
  if (s->ever_connected) ++s->m.reconnects;
  s->ever_connected = true;
  s->consecutive_failures = 0;
  s->backoff.reset();
  s->m.workers = client->workers();
  s->m.journal_records = client->shard_records();
  s->m.state_degraded = client->state_degraded();
  s->m.shards_reloaded = client->shards_reloaded();
  s->m.disk_faults = client->disk_faults();
  if (s->m.state_degraded) {
    log::warnf("scheduler: endpoint %s reports degraded state persistence "
               "(in-memory shards only)",
               s->m.address.c_str());
  }
  s->digest_inflight = false;
  s->last_gossip_ms = 0;
  s->client = std::move(client);
  return true;
}

std::size_t Scheduler::connect() {
  std::size_t live = 0;
  for (Shard& s : shards_) {
    if (try_connect(&s)) ++live;
  }
  return live;
}

std::size_t Scheduler::capacity() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    if (s.client != nullptr) total += s.m.workers;
  }
  return total;
}

bool Scheduler::any_live() const {
  for (const Shard& s : shards_) {
    if (s.client != nullptr) return true;
  }
  return false;
}

void Scheduler::note_failure(Shard* s) {
  // The closed->open transition of the per-endpoint circuit breaker: the
  // first failure of a streak opens it (dispatch stops, the jittered
  // backoff times the open interval, reconnect_due's probe is the
  // half-open test). Later failures of the same streak re-open it without
  // counting a new trip.
  if (s->consecutive_failures == 0) ++s->m.breaker_trips;
  if (++s->consecutive_failures >= opts_.max_endpoint_failures) {
    s->lost = true;
    s->m.lost = true;
    log::warnf("scheduler: endpoint %s lost after %u failures",
               s->m.address.c_str(), s->consecutive_failures);
  } else {
    s->retry_at_ms = now_ms() + s->backoff.next_ms();
  }
}

void Scheduler::shard_down(Shard* s) {
  ++s->m.disconnects;
  if (s->client != nullptr && !s->client->last_error().empty()) {
    log::warnf("scheduler: endpoint %s dropped: %s", s->m.address.c_str(),
               s->client->last_error().c_str());
  }
  s->client.reset();
  s->pending_pings.clear();
  s->unanswered = 0;
  s->last_ping_ms = 0;
  s->digest_inflight = false;
  s->last_gossip_ms = 0;
  note_failure(s);
}

void Scheduler::reconnect_due() {
  const std::uint64_t now = now_ms();
  for (Shard& s : shards_) {
    if (s.client != nullptr || s.lost || now < s.retry_at_ms) continue;
    try_connect(&s);
  }
}

Scheduler::Shard* Scheduler::least_loaded() {
  Shard* best = nullptr;
  double best_load = 0.0;
  for (Shard& s : shards_) {
    if (s.client == nullptr) continue;
    const double load =
        static_cast<double>(s.inflight.size()) /
        static_cast<double>(std::max<std::uint32_t>(1, s.m.workers));
    if (best == nullptr || load < best_load) {
      best = &s;
      best_load = load;
    }
  }
  return best;
}

std::vector<runner::TrialOutcome> Scheduler::run_batch(
    const std::vector<runner::TrialJob>& jobs) {
  std::vector<runner::TrialOutcome> outcomes(jobs.size());
  struct JobState {
    bool done = false;
    bool in_flight = false;
    std::uint32_t deaths = 0;   // endpoints that died holding this trial
    std::uint64_t lease = 0;    // ticket of the current (only) live dispatch
  };
  std::vector<JobState> state(jobs.size());
  std::size_t remaining = jobs.size();

  // Reroutes or quarantines a downed shard's in-flight trials, then runs
  // the endpoint failure accounting. Voids every lease the shard held: a
  // result arriving later for one of these tickets is late, and is
  // discarded, never double-voted.
  const auto fail_shard = [&](Shard* s) {
    for (const auto& [ticket, i] : s->inflight) {
      if (state[i].done) continue;
      state[i].in_flight = false;
      state[i].lease = 0;
      if (++state[i].deaths >= opts_.max_trial_crashes) {
        runner::TrialOutcome& o = outcomes[i];
        o.result.passed = false;
        o.result.failure_class = verify::FailureClass::kCrash;
        o.result.failure = strformat(
            "quarantined after %u endpoint failures mid-trial",
            state[i].deaths);
        o.worker_deaths = state[i].deaths;
        o.quarantined = true;
        o.served = true;
        state[i].done = true;
        --remaining;
      } else {
        ++s->m.failovers;
      }
    }
    s->inflight.clear();
    shard_down(s);
  };

  // Heartbeat pass: ping every live shard whose period elapsed. A shard
  // with the previous ping still unanswered when the next comes due has
  // missed a beat; missing missed_beat_limit in a row is death -- slow is
  // tolerated (RTT just grows), silent is not.
  const auto heartbeat = [&]() {
    if (opts_.heartbeat_ms == 0) return;
    const std::uint64_t now = now_ms();
    for (Shard& s : shards_) {
      if (s.client == nullptr) continue;
      if (s.last_ping_ms != 0 && now - s.last_ping_ms < opts_.heartbeat_ms) {
        continue;
      }
      if (s.last_ping_ms != 0 && !s.pending_pings.empty()) {
        ++s.unanswered;
        ++s.m.missed_beats;
        if (s.unanswered >= opts_.missed_beat_limit) {
          log::warnf("scheduler: endpoint %s missed %u heartbeats; "
                     "declaring dead (%zu leases expire)",
                     s.m.address.c_str(), s.unanswered, s.inflight.size());
          s.m.lease_expiries += s.inflight.size();
          fail_shard(&s);
          continue;
        }
      }
      net::PingMsg ping;
      ping.nonce = s.next_nonce++;
      ping.t_send_ns = now_ns();
      if (!s.client->ping(ping)) {
        fail_shard(&s);
        continue;
      }
      s.pending_pings.emplace(ping.nonce, ping.t_send_ns);
      s.last_ping_ms = now;
      ++s.m.pings;
    }
  };

  // Gossip pass: ask every live shard whose period elapsed for a shard
  // digest (one outstanding per shard; the ack returns through drain and
  // heal_from_digest re-streams whatever the comparison shows missing).
  // A reconnected endpoint is back in the gossip rotation immediately, so
  // a daemon restart heals within one period instead of riding the next
  // adoption.
  const auto gossip = [&]() {
    if (opts_.gossip_ms == 0 || streamed_.empty()) return;
    const std::uint64_t now = now_ms();
    for (Shard& s : shards_) {
      if (s.client == nullptr || s.digest_inflight) continue;
      if (s.last_gossip_ms != 0 && now - s.last_gossip_ms < opts_.gossip_ms) {
        continue;
      }
      if (!s.client->request_digest()) {
        fail_shard(&s);
        continue;
      }
      s.digest_inflight = true;
      s.last_gossip_ms = now;
    }
  };

  while (remaining > 0) {
    reconnect_due();
    heartbeat();
    gossip();
    if (!any_live()) {
      // Anything still waiting on a backoff timer? Sleep toward the
      // earliest redial; otherwise the fleet is gone for good.
      std::uint64_t earliest = 0;
      for (const Shard& s : shards_) {
        if (s.lost || s.client != nullptr) continue;
        if (earliest == 0 || s.retry_at_ms < earliest) {
          earliest = s.retry_at_ms;
        }
      }
      if (earliest == 0) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
          if (state[i].done) continue;
          outcomes[i].served = false;
          state[i].done = true;
          --remaining;
        }
        break;
      }
      const std::uint64_t now = now_ms();
      sleep_ms(earliest > now
                   ? static_cast<int>(std::min<std::uint64_t>(
                         earliest - now, 100))
                   : 1);
      continue;
    }

    // ---- Dispatch every unassigned trial to the least-loaded shard. ----
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (state[i].done || state[i].in_flight) continue;
      Shard* s = least_loaded();
      if (s == nullptr) break;
      net::TrialMsg m;
      m.ticket = next_ticket_++;
      m.key = jobs[i].key;
      m.config_key = jobs[i].config->canonical_key();
      if (!s->client->submit(m)) {
        fail_shard(s);
        break;  // re-plan against the surviving fleet
      }
      s->inflight.emplace(m.ticket, i);
      state[i].in_flight = true;
      state[i].lease = m.ticket;
      if (state[i].deaths > 0) ++s->m.redispatched;
    }

#if FPMIX_NET_POSIX
    // ---- Wait for traffic (bounded, to keep redial timers honest). ----
    // Every live shard is in the set, idle ones included: pongs (and the
    // errors of a dying session) must be seen even between dispatches.
    std::vector<pollfd> fds;
    int poll_ms = 200;
    if (opts_.heartbeat_ms > 0 &&
        opts_.heartbeat_ms < static_cast<std::uint64_t>(poll_ms)) {
      poll_ms = static_cast<int>(opts_.heartbeat_ms);
    }
    for (Shard& s : shards_) {
      if (s.client != nullptr) {
        fds.push_back(pollfd{s.client->fd(), POLLIN, 0});
      }
    }
    if (!fds.empty()) {
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_ms);
    }
#endif

    // ---- Drain results from every live shard. ----
    for (Shard& s : shards_) {
      if (s.client == nullptr) continue;
      std::vector<net::ResultMsg> results;
      const bool ok = s.client->drain(&results);
      // Match pongs to outstanding pings. A pong answers its nonce and
      // every earlier one (the link is FIFO), so one echo clears a whole
      // stall's backlog.
      for (const net::PongMsg& pong : s.client->take_pongs()) {
        auto pit = s.pending_pings.find(pong.nonce);
        if (pit == s.pending_pings.end()) continue;
        s.rtt_us.push_back((now_ns() - pit->second) / 1000);
        s.pending_pings.erase(s.pending_pings.begin(), std::next(pit));
        s.unanswered = 0;
        ++s.m.pongs;
      }
      bool damaged = false;
      for (net::ResultMsg& r : results) {
        auto it = s.inflight.find(r.ticket);
        if (it == s.inflight.end()) {
          // A ticket this shard no longer holds: a duplicated frame, or a
          // verdict that outlived its lease. Never double-voted.
          ++s.m.late_results;
          continue;
        }
        const std::size_t i = it->second;
        s.inflight.erase(it);
        if (state[i].done || state[i].lease != r.ticket) {
          ++s.m.late_results;
          continue;
        }
        runner::WireResult w;
        verify::EvalResult er;
        if (!runner::decode_result(r.wire_result, &w) ||
            !runner::to_eval_result(w, &er)) {
          // The frame CRC passed but the payload is semantically bad:
          // treat it like transport damage and reroute the trial.
          state[i].in_flight = false;
          damaged = true;
          continue;
        }
        runner::TrialOutcome& o = outcomes[i];
        o.result = std::move(er);
        o.wall_ns = r.wall_ns;
        o.worker_deaths = r.worker_deaths;
        o.quarantined = (r.flags & net::kResultQuarantined) != 0;
        o.served = true;
        state[i].done = true;
        state[i].in_flight = false;
        --remaining;
        ++s.m.trials;
        s.m.busy_ns += r.wall_ns;
        if ((r.flags & net::kResultCacheHit) != 0) ++s.m.cache_hits;
      }
      if (!ok || damaged) {
        fail_shard(&s);
        continue;
      }
      // Gossip digests ride the same stream; heal after the verdicts so a
      // repair send failure cannot orphan results already decoded.
      for (const net::ShardDigestMsg& d : s.client->take_digests()) {
        s.digest_inflight = false;
        if (!heal_from_digest(&s, d)) {
          fail_shard(&s);
          break;
        }
      }
    }
  }
  return outcomes;
}

bool Scheduler::heal_from_digest(Shard* s, const net::ShardDigestMsg& d) {
  ++s->m.gossip_rounds;
  if (streamed_.empty()) return true;
  std::uint64_t local_records = 0;
  const std::uint64_t local_max = streamed_.rbegin()->first;
  const std::uint32_t local_crc =
      net::seq_set_crc(streamed_, local_max, &local_records);
  if (d.records == local_records && d.max_seq == local_max &&
      d.seq_crc == local_crc) {
    return true;  // replicas agree
  }
  // The common divergence is a pure tail gap (endpoint restarted, joined
  // late, or lost its unfsynced tail): its whole digest then equals our
  // prefix digest through its max_seq, and only (max_seq, local_max] needs
  // to move. Anything else -- interior holes, foreign seqs -- falls back to
  // re-streaming the full set; the endpoint dedupes by seq, so the
  // fallback is idempotent, just not minimal.
  std::uint64_t from_seq = 1;
  if (d.records > 0 && d.max_seq < local_max) {
    std::uint64_t prefix_records = 0;
    const std::uint32_t prefix_crc =
        net::seq_set_crc(streamed_, d.max_seq, &prefix_records);
    if (prefix_records == d.records && prefix_crc == d.seq_crc) {
      from_seq = d.max_seq + 1;
    }
  }
  std::uint64_t repaired = 0;
  net::JournalAppendMsg m;
  for (const auto& [seq, line] : streamed_) {
    if (seq < from_seq) continue;
    m.line = line;
    if (!s->client->journal_append(m)) return false;
    ++repaired;
  }
  s->m.records_repaired += repaired;
  if (repaired > 0) {
    log::infof("scheduler: gossip re-streamed %llu records to %s "
               "(endpoint had %llu/%llu)",
               static_cast<unsigned long long>(repaired),
               s->m.address.c_str(),
               static_cast<unsigned long long>(d.records),
               static_cast<unsigned long long>(local_records));
  }
  return true;
}

std::size_t Scheduler::gossip_now(int timeout_ms) {
  reconnect_due();
  std::size_t total = 0;
  for (Shard& s : shards_) {
    if (s.client == nullptr) continue;
    if (!s.client->request_digest()) {
      shard_down(&s);
      continue;
    }
    const std::uint64_t deadline =
        now_ms() + static_cast<std::uint64_t>(timeout_ms > 0 ? timeout_ms
                                                             : 5000);
    bool answered = false;
    while (!answered) {
      // No batch is running, so any results drained here rode an expired
      // lease; they are discarded exactly like late results in run_batch.
      std::vector<net::ResultMsg> late;
      const bool ok = s.client->drain(&late);
      s.m.late_results += late.size();
      for (const net::ShardDigestMsg& d : s.client->take_digests()) {
        answered = true;
        const std::uint64_t before = s.m.records_repaired;
        if (!heal_from_digest(&s, d)) {
          shard_down(&s);
          break;
        }
        total += s.m.records_repaired - before;
      }
      if (answered || s.client == nullptr) break;
      if (!ok) {
        shard_down(&s);
        break;
      }
      const std::uint64_t now = now_ms();
      if (now >= deadline) {
        log::warnf("scheduler: gossip digest from %s timed out",
                   s.m.address.c_str());
        shard_down(&s);
        break;
      }
#if FPMIX_NET_POSIX
      pollfd pfd{s.client->fd(), POLLIN, 0};
      ::poll(&pfd, 1, static_cast<int>(deadline - now));
#endif
    }
  }
  return total;
}

void Scheduler::broadcast_insert(const std::string& key, bool passed,
                                 std::uint8_t failure_class,
                                 const std::string& failure) {
  if (opts_.hello.shard_cache == 0) return;
  net::CacheInsertMsg m;
  m.key = key;
  m.passed = passed ? 1 : 0;
  m.failure_class = failure_class;
  m.failure = failure;
  for (Shard& s : shards_) {
    if (s.client == nullptr) continue;
    if (!s.client->insert(m)) shard_down(&s);
  }
}

void Scheduler::stream_journal(const std::string& line) {
  // Retain every committed line locally: this set is what gossip digests
  // are compared against, and what heals a diverged endpoint.
  std::uint64_t seq = 0;
  if (check_seal(line) == SealCheck::kOk && sealed_seq(line, &seq)) {
    streamed_.emplace(seq, line);
  }
  net::JournalAppendMsg m;
  m.line = line;
  for (Shard& s : shards_) {
    if (s.client == nullptr) continue;
    if (!s.client->journal_append(m)) shard_down(&s);
  }
}

std::size_t Scheduler::fetch_fleet_journal(std::vector<std::string>* lines) {
  std::size_t served = 0;
  for (Shard& s : shards_) {
    if (s.client == nullptr) continue;
    std::vector<std::string> got;
    std::string error;
    if (!s.client->fetch_journal(&got, /*timeout_ms=*/30000, &error)) {
      log::warnf("scheduler: journal fetch from %s failed: %s",
                 s.m.address.c_str(), error.c_str());
      shard_down(&s);
      continue;
    }
    ++served;
    for (std::string& l : got) lines->push_back(std::move(l));
  }
  return served;
}

std::vector<EndpointMetrics> Scheduler::endpoint_metrics() const {
  std::vector<EndpointMetrics> out;
  out.reserve(shards_.size());
  for (const Shard& s : shards_) {
    EndpointMetrics m = s.m;
    if (!s.rtt_us.empty()) {
      std::vector<std::uint64_t> rtt = s.rtt_us;
      std::sort(rtt.begin(), rtt.end());
      m.rtt_p50_us = rtt[rtt.size() / 2];
      m.rtt_p95_us = rtt[(rtt.size() * 95) / 100 >= rtt.size()
                             ? rtt.size() - 1
                             : (rtt.size() * 95) / 100];
      m.rtt_max_us = rtt.back();
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace fpmix::search
