// ShardStore: the daemon's durable state layer.
//
// RunnerServer's replicated journal shards and verdict shard caches are the
// fleet's memory -- `--adopt` failover and restart-free cache hits both
// depend on them -- but in RAM they die with the daemon. This module backs
// each per-search_fp shard with an append-only file under a state
// directory, reusing the sealed v2 record format and torn-tail healing from
// support/journal so the files are crash-safe by the same argument as the
// local journal: an interrupted append loses at most the line being
// written, and CRC seals let the reload skip exactly the damaged records.
//
// Layout under the state dir (one file per shard, named by the FNV-1a
// digest of the search fingerprint; the fingerprint itself lives in a
// sealed header line, seq 0, so reload never trusts the filename):
//
//   shard-<hex16>.jsonl   header + streamed journal lines, verbatim
//   cache-<hex16>.jsonl   header + one sealed {"type":"verdict",...} line
//                         per cached trial verdict
//
// Appends are buffered-write + flush (+ optional fsync); compaction -- after
// reload-time damage or enough in-memory evictions -- rewrites a shard file
// through support::atomic_replace (tmp + fsync + rename + directory fsync).
//
// Failure policy: storage trouble must never cost a search. Any real or
// injected write failure (ENOSPC, unwritable dir) degrades the store to a
// no-op -- warned once, counted, surfaced to schedulers as `state_degraded`
// in the hello ack -- and the daemon keeps serving from memory. An
// unreadable file on reload costs only that shard. Deterministic disk
// faults (fault::DiskChaos) are injected at every file op so campaigns can
// prove all of this without a real failing disk.
//
// Single-threaded by design, like the server event loop that owns it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "support/fault.hpp"

namespace fpmix::net {

/// One persisted trial verdict: the same slice of an EvalResult the
/// in-memory verdict shard cache retains.
struct PersistedVerdict {
  std::string key;
  bool passed = false;
  std::uint8_t failure_class = 0;
  std::string failure;
};

struct ShardStoreOptions {
  /// State directory (created if absent). Empty disables persistence.
  std::string dir;
  /// fsync(2) every append (power-loss durability, one disk round-trip per
  /// record). Off by default: the daemon's durability target is process
  /// death, and gossip heals what a power cut eats.
  bool fsync = false;
  /// Seeded deterministic disk-fault source; nullptr = no injection.
  const fault::DiskChaos* chaos = nullptr;
  bool verbose = false;
};

struct ShardStoreStats {
  std::uint64_t shards_reloaded = 0;    // files restored at startup
  std::uint64_t records_reloaded = 0;   // intact lines restored
  std::uint64_t records_discarded = 0;  // damaged/duplicate lines dropped
  std::uint64_t compactions = 0;        // atomic shard-file rewrites
  std::uint64_t disk_faults = 0;        // injected + real storage failures
  bool degraded = false;                // persistence abandoned, memory-only
};

class ShardStore {
 public:
  explicit ShardStore(const ShardStoreOptions& opts);
  ~ShardStore();
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// Persistence is live: a directory was configured and no failure has
  /// degraded the store to memory-only operation.
  bool enabled() const { return !opts_.dir.empty() && !stats_.degraded; }

  /// Restores every persisted shard: journal lines into *journal (keyed by
  /// search_fp, then sealed seq) and verdict-cache entries into *verdicts
  /// (keyed by search_fp, file order = insertion order, so first-insert-wins
  /// replay is exact). Damaged lines are skipped and counted; a journal
  /// file that lost lines is compacted in place so the damage is paid once.
  void load(std::map<std::string, std::map<std::uint64_t, std::string>>* journal,
            std::map<std::string, std::vector<PersistedVerdict>>* verdicts);

  /// Appends one already-sealed streamed journal line to fp's shard file.
  void append_journal(const std::string& search_fp, const std::string& line);

  /// Appends one trial verdict to fp's cache file (sealed here).
  void append_verdict(const std::string& search_fp, const PersistedVerdict& v);

  /// Records that `evicted` in-memory records were shed from fp's shard
  /// (max_shard_records) and compacts the file down to `by_seq` once enough
  /// staleness accumulates, so the file tracks the retained window instead
  /// of growing without bound.
  void note_evicted(const std::string& search_fp, std::uint64_t evicted,
                    const std::map<std::uint64_t, std::string>& by_seq);

  /// Deletes fp's shard file (whole-shard LRU eviction).
  void remove_journal(const std::string& search_fp);

  const ShardStoreStats& stats() const { return stats_; }

 private:
  struct FileState {
    std::string path;
    std::string chaos_key;  // stable basename, keys the DiskChaos stream
    std::FILE* f = nullptr;
    std::uint64_t ops = 0;       // per-file disk-fault op index (reload = 0)
    std::uint64_t next_seq = 1;  // seal counter for cache records
    std::uint64_t stale = 0;     // evicted records still on disk
  };

  FileState* file_for(const std::string& search_fp, bool cache);
  void append_line(FileState* fs, const std::string& line);
  void compact(const std::string& search_fp,
               const std::map<std::uint64_t, std::string>& by_seq);
  void degrade(const std::string& reason);
  void close_all();

  ShardStoreOptions opts_;
  ShardStoreStats stats_;
  std::map<std::string, FileState> journal_files_;  // by search_fp
  std::map<std::string, FileState> cache_files_;    // by search_fp
  bool warned_ = false;
};

}  // namespace fpmix::net
