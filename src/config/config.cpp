#include "config/config.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace fpmix::config {

char precision_flag(Precision p) {
  switch (p) {
    case Precision::kDouble: return 'd';
    case Precision::kSingle: return 's';
    case Precision::kIgnore: return 'i';
  }
  return '?';
}

std::optional<Precision> precision_from_flag(char c) {
  switch (c) {
    case 'd': return Precision::kDouble;
    case 's': return Precision::kSingle;
    case 'i': return Precision::kIgnore;
    default: return std::nullopt;
  }
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kDouble: return "double";
    case Precision::kSingle: return "single";
    case Precision::kIgnore: return "ignore";
  }
  return "?";
}

PrecisionConfig::PrecisionConfig(const StructureIndex&) {}

namespace {
void set_flag(std::map<std::size_t, Precision>* store, std::size_t id,
              std::optional<Precision> p) {
  if (p.has_value()) {
    (*store)[id] = *p;
  } else {
    store->erase(id);
  }
}
std::optional<Precision> get_flag(const std::map<std::size_t, Precision>& s,
                                  std::size_t id) {
  auto it = s.find(id);
  if (it == s.end()) return std::nullopt;
  return it->second;
}
}  // namespace

void PrecisionConfig::set_module(std::size_t m, std::optional<Precision> p) {
  set_flag(&module_, m, p);
}
void PrecisionConfig::set_func(std::size_t f, std::optional<Precision> p) {
  set_flag(&func_, f, p);
}
void PrecisionConfig::set_block(std::size_t b, std::optional<Precision> p) {
  set_flag(&block_, b, p);
}
void PrecisionConfig::set_instr(std::size_t i, std::optional<Precision> p) {
  set_flag(&instr_, i, p);
}

std::optional<Precision> PrecisionConfig::module_flag(std::size_t m) const {
  return get_flag(module_, m);
}
std::optional<Precision> PrecisionConfig::func_flag(std::size_t f) const {
  return get_flag(func_, f);
}
std::optional<Precision> PrecisionConfig::block_flag(std::size_t b) const {
  return get_flag(block_, b);
}
std::optional<Precision> PrecisionConfig::instr_flag(std::size_t i) const {
  return get_flag(instr_, i);
}

Precision PrecisionConfig::resolve(const StructureIndex& index,
                                   std::size_t i) const {
  const InstrEntry& ie = index.instrs().at(i);
  const FuncEntry& fe = index.funcs().at(ie.func);
  if (auto p = get_flag(module_, fe.module)) return *p;
  if (auto p = get_flag(func_, ie.func)) return *p;
  if (auto p = get_flag(block_, ie.block)) return *p;
  if (auto p = get_flag(instr_, i)) return *p;
  return Precision::kDouble;
}

std::map<std::uint64_t, Precision> PrecisionConfig::address_map(
    const StructureIndex& index) const {
  std::map<std::uint64_t, Precision> out;
  for (std::size_t i = 0; i < index.instrs().size(); ++i) {
    out[index.instrs()[i].addr] = resolve(index, i);
  }
  return out;
}

std::vector<std::size_t> PrecisionConfig::replaced_candidates(
    const StructureIndex& index) const {
  std::vector<std::size_t> out;
  for (std::size_t i : index.candidates()) {
    if (resolve(index, i) == Precision::kSingle) out.push_back(i);
  }
  return out;
}

void PrecisionConfig::merge_union(const PrecisionConfig& other) {
  // Merge every non-double flag; explicit kDouble flags are the default and
  // need no copying. Conflicts resolve toward the flag from `other` only if
  // this config has no flag at that node (first-passing-config wins keeps
  // the union well defined; the search never produces conflicting units).
  const auto merge = [](const std::map<std::size_t, Precision>& src,
                        std::map<std::size_t, Precision>* dst) {
    for (const auto& [id, p] : src) {
      if (p == Precision::kDouble) continue;
      dst->try_emplace(id, p);
    }
  };
  merge(other.module_, &module_);
  merge(other.func_, &func_);
  merge(other.block_, &block_);
  merge(other.instr_, &instr_);
}

std::string PrecisionConfig::canonical_key() const {
  // std::map iterates in ascending id order, which makes the serialization
  // canonical without an extra sort. Explicit kDouble flags participate:
  // they are semantically meaningful (they shield children from aggregate
  // overrides), so configs differing only in them must not collide.
  std::string out;
  const auto emit = [&out](char level,
                           const std::map<std::size_t, Precision>& store) {
    for (const auto& [id, p] : store) {
      out += strformat("%c%zu=%c;", level, id, precision_flag(p));
    }
  };
  emit('m', module_);
  emit('f', func_);
  emit('b', block_);
  emit('i', instr_);
  return out;
}

std::uint64_t PrecisionConfig::stable_hash() const {
  return fnv1a64(canonical_key());
}

bool PrecisionConfig::from_canonical_key(std::string_view key,
                                         PrecisionConfig* out) {
  *out = PrecisionConfig{};
  std::size_t pos = 0;
  while (pos < key.size()) {
    // One segment: `<level><id>=<flag>;` (see canonical_key).
    const char level = key[pos++];
    std::size_t id = 0;
    bool any_digit = false;
    while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
      id = id * 10 + static_cast<std::size_t>(key[pos++] - '0');
      any_digit = true;
    }
    if (!any_digit || pos >= key.size() || key[pos] != '=') return false;
    ++pos;
    if (pos >= key.size()) return false;
    const std::optional<Precision> p = precision_from_flag(key[pos++]);
    if (!p.has_value()) return false;
    if (pos >= key.size() || key[pos] != ';') return false;
    ++pos;
    switch (level) {
      case 'm': out->set_module(id, *p); break;
      case 'f': out->set_func(id, *p); break;
      case 'b': out->set_block(id, *p); break;
      case 'i': out->set_instr(id, *p); break;
      default: return false;
    }
  }
  return true;
}

std::string PrecisionConfig::encode_delta_from(
    const PrecisionConfig& base) const {
  std::string out;
  const auto emit = [&out](char level,
                           const std::map<std::size_t, Precision>& from,
                           const std::map<std::size_t, Precision>& to) {
    // Ordered-map merge walk: both stores iterate in ascending id order, so
    // the emitted segments are canonical for (base, target).
    auto bi = from.begin();
    auto ti = to.begin();
    while (bi != from.end() || ti != to.end()) {
      if (ti == to.end() || (bi != from.end() && bi->first < ti->first)) {
        out += strformat("%c%zu=-;", level, bi->first);
        ++bi;
      } else if (bi == from.end() || ti->first < bi->first) {
        out += strformat("%c%zu=%c;", level, ti->first,
                         precision_flag(ti->second));
        ++ti;
      } else {
        if (bi->second != ti->second) {
          out += strformat("%c%zu=%c;", level, ti->first,
                           precision_flag(ti->second));
        }
        ++bi;
        ++ti;
      }
    }
  };
  emit('m', base.module_, module_);
  emit('f', base.func_, func_);
  emit('b', base.block_, block_);
  emit('i', base.instr_, instr_);
  return out;
}

bool PrecisionConfig::apply_delta(const PrecisionConfig& base,
                                  std::string_view delta,
                                  PrecisionConfig* out) {
  *out = base;
  std::size_t pos = 0;
  while (pos < delta.size()) {
    // One segment: `<level><id>=<flag>;` or `<level><id>=-;` (erase).
    const char level = delta[pos++];
    std::size_t id = 0;
    bool any_digit = false;
    while (pos < delta.size() && delta[pos] >= '0' && delta[pos] <= '9') {
      id = id * 10 + static_cast<std::size_t>(delta[pos++] - '0');
      any_digit = true;
    }
    if (!any_digit || pos >= delta.size() || delta[pos] != '=') return false;
    ++pos;
    if (pos >= delta.size()) return false;
    const char flag = delta[pos++];
    std::optional<Precision> p;  // nullopt = erase
    if (flag != '-') {
      p = precision_from_flag(flag);
      if (!p.has_value()) return false;
    }
    if (pos >= delta.size() || delta[pos] != ';') return false;
    ++pos;
    switch (level) {
      case 'm': out->set_module(id, p); break;
      case 'f': out->set_func(id, p); break;
      case 'b': out->set_block(id, p); break;
      case 'i': out->set_instr(id, p); break;
      default: return false;
    }
  }
  return true;
}

bool PrecisionConfig::is_all_double(const StructureIndex& index) const {
  for (std::size_t i : index.candidates()) {
    if (resolve(index, i) != Precision::kDouble) return false;
  }
  return true;
}

ReplacementStats replacement_stats(const StructureIndex& index,
                                   const PrecisionConfig& cfg) {
  ReplacementStats st;
  st.candidates = index.candidates().size();
  for (std::size_t i : index.candidates()) {
    const InstrEntry& ie = index.instrs()[i];
    st.exec_total += ie.exec_weight;
    if (cfg.resolve(index, i) == Precision::kSingle) {
      ++st.replaced_static;
      st.exec_replaced += ie.exec_weight;
    }
  }
  st.static_pct = st.candidates == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(st.replaced_static) /
                            static_cast<double>(st.candidates);
  st.dynamic_pct = st.exec_total == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(st.exec_replaced) /
                             static_cast<double>(st.exec_total);
  return st;
}

}  // namespace fpmix::config
