// A label-based assembler producing structured Programs.
//
// The assembler is how virtual binaries come to exist in the first place:
// the mini-language code generator (src/lang) and hand-written test programs
// emit instructions through it. It resolves labels into the symbolic CFG
// form of program::Program; program::relayout then produces runnable bytes.
//
// Conventions (mirrored by the DSL code generator):
//  - GPR 15 is the stack pointer; the VM initializes it to the top of memory.
//  - Static data lives in the data/bss segments; `data_*`/`reserve_bss`
//    return absolute addresses usable as [abs] memory operands.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/instr.hpp"
#include "arch/intrinsics.hpp"
#include "program/program.hpp"

namespace fpmix::casm {

/// Opaque label handle.
struct Label {
  int id = -1;
  bool valid() const { return id >= 0; }
};

class Assembler {
 public:
  Assembler();

  // ---- Functions --------------------------------------------------------
  /// Starts a new function. `module` models the translation unit the
  /// function belongs to (the coarsest granularity of the search).
  void begin_function(std::string name, std::string module);
  void end_function();

  // ---- Labels ------------------------------------------------------------
  Label new_label();
  /// Binds `label` to the next emitted instruction of the current function.
  void bind(Label label);

  // ---- Raw emission ------------------------------------------------------
  void emit(arch::Opcode op, arch::Operand dst = arch::Operand::none(),
            arch::Operand src = arch::Operand::none());

  // ---- Control flow ------------------------------------------------------
  void jmp(Label l);
  void je(Label l);
  void jne(Label l);
  void jl(Label l);
  void jle(Label l);
  void jg(Label l);
  void jge(Label l);
  void jb(Label l);
  void jbe(Label l);
  void ja(Label l);
  void jae(Label l);
  /// Direct call by function name; the callee may be defined later.
  void call(std::string_view callee);
  void ret();
  void halt();
  void intrin(arch::intrinsics::Id id);

  // ---- Static data -------------------------------------------------------
  /// Appends an 8-byte double to the data segment; returns its address.
  std::uint64_t data_f64(double value);
  /// Appends an 8-byte integer to the data segment; returns its address.
  std::uint64_t data_i64(std::int64_t value);
  /// Appends raw bytes (e.g. strings); returns the address.
  std::uint64_t data_bytes(const void* bytes, std::size_t size,
                           std::size_t align = 8);
  /// Reserves zero-initialized storage; returns the address.
  std::uint64_t reserve_bss(std::size_t size, std::size_t align = 8);

  // ---- Finalization ------------------------------------------------------
  /// Resolves all labels and calls, forms basic blocks and returns the
  /// structured program. `entry` names the entry function.
  program::Program finish(std::string_view entry);

 private:
  struct PendingFunction {
    std::string name;
    std::string module;
    std::vector<arch::Instr> instrs;
    // Per-branch-instruction label id (parallel to branch instrs by index
    // into instrs).
    std::map<std::size_t, int> branch_labels;   // instr index -> label id
    std::map<std::size_t, std::string> call_names;  // instr index -> callee
    std::map<int, std::size_t> label_positions;     // label id -> instr index
  };

  void branch(arch::Opcode op, Label l);
  PendingFunction& current();

  std::vector<PendingFunction> functions_;
  bool in_function_ = false;
  int next_label_ = 0;

  std::vector<std::uint8_t> data_;
  std::uint64_t bss_bytes_ = 0;
  std::uint64_t data_base_;
  std::uint64_t bss_base_;
};

}  // namespace fpmix::casm
