// fpmix — automatic mixed-precision adaptation of binaries.
//
// Umbrella header for downstream users; see README.md for the quickstart
// and DESIGN.md for the architecture. The typical pipeline is:
//
//   program::Image binary = ...;                       // an existing binary
//   auto index = config::StructureIndex::build(program::lift(binary));
//   verify::RelativeErrorVerifier verifier(reference, tolerance);
//   search::SearchResult best = search::run_search(binary, &index,
//                                                  verifier, {});
//   program::Image mixed = instrument::instrument_image(
//       binary, index, best.final_config);
//   vm::Machine(mixed).run();
#pragma once

// Virtual ISA: opcodes, operands, encoder/decoder, disassembler, and the
// 0x7FF4DEAD replaced-double representation.
#include "arch/disasm.hpp"
#include "arch/encode.hpp"
#include "arch/instr.hpp"
#include "arch/intrinsics.hpp"
#include "arch/opcode.hpp"
#include "arch/operand.hpp"
#include "arch/tag.hpp"

// Binaries: images, CFG recovery, layout/relocation.
#include "program/image.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"

// Building programs: assembler and the kernel mini-language.
#include "asm/assembler.hpp"
#include "lang/ast.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"

// Execution: the virtual machine and mini-MPI.
#include "vm/machine.hpp"
#include "vm/minimpi.hpp"

// Precision configurations and their exchange format.
#include "config/config.hpp"
#include "config/precision.hpp"
#include "config/structure.hpp"
#include "config/textio.hpp"

// Binary instrumentation: snippets, patching, cancellation detection.
#include "instrument/cancellation.hpp"
#include "instrument/patch.hpp"
#include "instrument/snippet.hpp"

// Verification and the automatic search.
#include "search/search.hpp"
#include "verify/evaluate.hpp"
#include "verify/verifier.hpp"

// Benchmark workloads and native numeric twins.
#include "kernels/workload.hpp"
#include "linalg/banded.hpp"
#include "linalg/csr.hpp"
#include "linalg/dense.hpp"
#include "linalg/matrix_market.hpp"
#include "linalg/refine.hpp"
#include "linalg/stencil_mg.hpp"

// Support utilities.
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
