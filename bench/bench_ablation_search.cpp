// Ablation: the two search optimizations of Section 2.2 and the stop-level
// knob, plus the composition-refinement second phase.
//
//   1. binary splitting of large structures ("reduces the amount of
//      configurations that must be tested when there are a large number of
//      replaceable sections sprinkled with a few non-replaceable sections");
//   2. profile-weight prioritisation ("allows the search to rule out large
//      replacements more quickly and to provide faster preliminary
//      results");
//   3. stop level ("the search can also be configured to stop at basic
//      blocks or functions, allowing for faster convergence with coarser
//      results").
#include <cstdio>

#include "bench_util.hpp"
#include "search/search.hpp"

namespace {

using namespace fpmix;

struct Cfg {
  const char* label;
  search::SearchOptions opts;
};

void run_table(const kernels::Workload& w, const std::vector<Cfg>& cfgs) {
  std::printf("\n%s (%s):\n", w.name.c_str(), "candidates/tested/static/"
              "dynamic/final/time");
  for (const Cfg& c : cfgs) {
    const program::Image img = kernels::build_image(w);
    auto ix = config::StructureIndex::build(program::lift(img));
    const auto verifier = kernels::make_verifier(w, img);
    Timer t;
    const search::SearchResult r =
        search::run_search(img, &ix, *verifier, c.opts);
    std::printf("  %-28s %5zu %6zu %7.1f%% %7.1f%% %5s  %6.2fs", c.label,
                r.candidates, r.configs_tested, r.stats.static_pct,
                r.stats.dynamic_pct, r.final_passed ? "pass" : "fail",
                t.elapsed_seconds());
    if (r.refined) {
      std::printf("  [refined: %.1f%% static, %.1f%% dynamic, verified]",
                  r.refined_stats.static_pct, r.refined_stats.dynamic_pct);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::printf("Search ablations (DESIGN.md section 6, items 1/2/5)\n");

  std::vector<Cfg> cfgs;
  {
    Cfg c;
    c.label = "baseline (paper defaults)";
    c.opts.keep_log = false;
    cfgs.push_back(c);
  }
  {
    Cfg c;
    c.label = "no binary split";
    c.opts.keep_log = false;
    c.opts.binary_split = false;
    cfgs.push_back(c);
  }
  {
    Cfg c;
    c.label = "no profile prioritisation";
    c.opts.keep_log = false;
    c.opts.prioritize_by_profile = false;
    cfgs.push_back(c);
  }
  {
    Cfg c;
    c.label = "stop at functions";
    c.opts.keep_log = false;
    c.opts.stop_level = search::StopLevel::kFunction;
    cfgs.push_back(c);
  }
  {
    Cfg c;
    c.label = "stop at blocks";
    c.opts.keep_log = false;
    c.opts.stop_level = search::StopLevel::kBlock;
    cfgs.push_back(c);
  }
  {
    Cfg c;
    c.label = "with composition refinement";
    c.opts.keep_log = false;
    c.opts.refine_composition = true;
    cfgs.push_back(c);
  }

  run_table(kernels::make_ep('W'), cfgs);
  run_table(kernels::make_mg('W'), cfgs);
  run_table(kernels::make_ft('W'), cfgs);
  run_table(kernels::make_superlu(2.5e-5), cfgs);
  return 0;
}
