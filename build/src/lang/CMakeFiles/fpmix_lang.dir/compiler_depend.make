# Empty compiler generated dependencies file for fpmix_lang.
# This may be replaced when dependencies are built.
