file(REMOVE_RECURSE
  "libfpmix_vm.a"
)
