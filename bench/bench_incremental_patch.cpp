// Incremental trial pipeline benchmark: per-trial patch + predecode cost,
// cold (from-scratch instrument_image + ExecutableImage::build per config)
// vs. warm (one shared verify::TrialBuilder across the whole sequence, as
// the search and the sandboxed workers use it).
//
// The config sequence mimics the class-W BFS: the all-double baseline, one
// unit config per module, per function and per block (the breadth-first
// frontier), then an accumulating function-composition chain. Every warm
// build is asserted bit-identical to the from-scratch build of the same
// config; the binary exits non-zero on any mismatch.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "config/structure.hpp"
#include "instrument/patch.hpp"
#include "verify/trial_builder.hpp"
#include "vm/exec_image.hpp"

namespace {

using namespace fpmix;

bool images_identical(const program::Image& a, const program::Image& b) {
  if (a.code_base != b.code_base || a.code != b.code) return false;
  if (a.data_base != b.data_base || a.data != b.data) return false;
  if (a.bss_base != b.bss_base || a.bss_size != b.bss_size) return false;
  if (a.entry != b.entry) return false;
  if (a.symbols.size() != b.symbols.size()) return false;
  for (std::size_t i = 0; i < a.symbols.size(); ++i) {
    if (a.symbols[i].addr != b.symbols[i].addr ||
        a.symbols[i].size != b.symbols[i].size ||
        a.symbols[i].name != b.symbols[i].name)
      return false;
  }
  return true;
}

/// The breadth-first trial sequence for one workload: baseline, module
/// units, function units, block units (capped), then the composition chain
/// that accumulates one single-precision function at a time.
std::vector<config::PrecisionConfig> bfs_sequence(
    const config::StructureIndex& ix) {
  constexpr std::size_t kMaxBlockUnits = 128;
  std::vector<config::PrecisionConfig> seq;
  seq.emplace_back();  // all-double baseline
  for (std::size_t m = 0; m < ix.modules().size(); ++m) {
    config::PrecisionConfig c;
    c.set_module(m, config::Precision::kSingle);
    seq.push_back(std::move(c));
  }
  for (std::size_t f = 0; f < ix.funcs().size(); ++f) {
    config::PrecisionConfig c;
    c.set_func(f, config::Precision::kSingle);
    seq.push_back(std::move(c));
  }
  std::size_t block_units = 0;
  for (std::size_t b = 0;
       b < ix.blocks().size() && block_units < kMaxBlockUnits; ++b) {
    if (ix.blocks()[b].candidates.empty()) continue;
    config::PrecisionConfig c;
    c.set_block(b, config::Precision::kSingle);
    seq.push_back(std::move(c));
    ++block_units;
  }
  config::PrecisionConfig composed;
  for (std::size_t f = 0; f < ix.funcs().size(); ++f) {
    composed.set_func(f, config::Precision::kSingle);
    seq.push_back(composed);
  }
  return seq;
}

struct KernelResult {
  std::size_t trials = 0;
  double cold_total_ms = 0;
  double warm_total_ms = 0;
  double geomean_speedup = 0;
  std::uint64_t image_hits = 0;
  std::uint64_t funcs_reused = 0;
  std::uint64_t funcs_patched = 0;
};

KernelResult run_kernel(const kernels::Workload& w,
                        std::vector<double>* speedups) {
  const program::Image img = kernels::build_image(w);
  const auto ix = config::StructureIndex::build(program::lift(img));
  const std::vector<config::PrecisionConfig> seq = bfs_sequence(ix);

  verify::TrialBuilder builder(img, ix);
  KernelResult res;
  res.trials = seq.size();
  double log_sum = 0;
  for (const config::PrecisionConfig& cfg : seq) {
    // Cold: the pre-incremental pipeline, from scratch every trial.
    Timer tp;
    program::Image patched = instrument::instrument_image(img, ix, cfg);
    const double cold_patch = tp.elapsed_seconds();
    Timer td;
    auto scratch = vm::ExecutableImage::build(patched);
    const double cold_predecode = td.elapsed_seconds();
    const double cold_ns = (cold_patch + cold_predecode) * 1e9;

    // Warm: the shared TrialBuilder, exactly as the search drives it.
    const verify::TrialBuilder::Built built = builder.build(cfg);
    const double warm_ns =
        static_cast<double>(built.patch_ns + built.predecode_ns);

    if (!images_identical(built.exec->image(), scratch->image())) {
      std::fprintf(stderr,
                   "FATAL: incremental build of %s diverges from scratch "
                   "build for config '%s'\n",
                   w.name.c_str(), cfg.canonical_key().c_str());
      std::exit(1);
    }

    res.cold_total_ms += cold_ns * 1e-6;
    res.warm_total_ms += warm_ns * 1e-6;
    const double speedup = cold_ns / std::max(warm_ns, 1.0);
    log_sum += std::log(speedup);
    speedups->push_back(speedup);
  }
  res.geomean_speedup = std::exp(log_sum / static_cast<double>(seq.size()));
  const verify::TrialBuilder::Stats st = builder.stats();
  res.image_hits = st.image_cache_hits;
  res.funcs_reused = st.funcs_reused;
  res.funcs_patched = st.funcs_patched;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpmix;
  const bool fast = argc > 1 && std::string_view(argv[1]) == "--fast";

  std::printf("Incremental trial pipeline: patch+predecode per trial, "
              "class-W BFS sequence\n");
  std::printf("(cold = instrument_image + ExecutableImage::build from "
              "scratch; warm = shared TrialBuilder)\n\n");
  std::printf("%-8s %7s %10s %10s %9s %9s %8s\n", "bench", "trials",
              "cold(ms)", "warm(ms)", "cold/tr", "warm/tr", "geomean");
  bench::print_rule(68);

  std::vector<kernels::Workload> workloads;
  workloads.push_back(kernels::make_cg('W'));
  workloads.push_back(kernels::make_ep('W'));
  workloads.push_back(kernels::make_mg('W'));
  if (!fast) {
    workloads.push_back(kernels::make_bt('W'));
    workloads.push_back(kernels::make_ft('W'));
    workloads.push_back(kernels::make_lu('W'));
    workloads.push_back(kernels::make_sp('W'));
  }

  std::vector<double> all_speedups;
  double log_sum = 0;
  std::size_t total_trials = 0;
  for (const kernels::Workload& w : workloads) {
    const KernelResult r = run_kernel(w, &all_speedups);
    std::printf("%-8s %7zu %10.2f %10.2f %7.1fus %7.1fus %7.2fx\n",
                w.name.c_str(), r.trials, r.cold_total_ms, r.warm_total_ms,
                r.cold_total_ms * 1e3 / static_cast<double>(r.trials),
                r.warm_total_ms * 1e3 / static_cast<double>(r.trials),
                r.geomean_speedup);
    std::printf("%-8s         funcs reused/patched %llu/%llu, image hits "
                "%llu\n",
                "", static_cast<unsigned long long>(r.funcs_reused),
                static_cast<unsigned long long>(r.funcs_patched),
                static_cast<unsigned long long>(r.image_hits));
    std::fflush(stdout);
    total_trials += r.trials;
  }
  for (double s : all_speedups) log_sum += std::log(s);
  const double geomean =
      std::exp(log_sum / static_cast<double>(all_speedups.size()));
  bench::print_rule(68);
  std::printf("overall: %zu trials, geomean per-trial patch+predecode "
              "speedup %.2fx %s\n",
              total_trials, geomean,
              geomean >= 2.0 ? "(meets >=2x target)" : "(BELOW 2x target)");
  std::printf("all warm builds bit-identical to from-scratch builds\n");
  return 0;
}
