// AST for the kernel mini-language.
//
// The paper's benchmarks are Fortran codes compiled to x86; ours are written
// in this small typed language and compiled to the virtual ISA. The language
// is deliberately Fortran-flavoured: static storage for scalars and arrays
// (no recursion), counted loops, and calls that communicate through module
// globals. Programs can be compiled in two modes:
//   Mode::kDouble -- all real arithmetic in f64 (the "original" binaries);
//   Mode::kSingle -- a whole-program manual conversion to f32, used to
//                    validate instrumented runs bit-for-bit (Section 3.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/intrinsics.hpp"

namespace fpmix::lang {

enum class Type : std::uint8_t { kF64, kI64 };

enum class Mode : std::uint8_t { kDouble, kSingle };

enum class BinOp : std::uint8_t {
  // Real (kF64 operands).
  kAddF, kSubF, kMulF, kDivF, kMinF, kMaxF,
  // Integer.
  kAddI, kSubI, kMulI, kDivI, kRemI, kAndI, kOrI, kXorI, kShlI, kShrI,
};

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

struct ExprNode {
  enum class Kind : std::uint8_t {
    kConstF,    // cf
    kConstI,    // ci
    kVar,       // var_id (scalar)
    kLoad,      // array var_id, index expr a
    kBin,       // bop, a, b
    kSqrt,      // a (lowered to sqrtsd/sqrtss, not an intrinsic call)
    kIntrin,    // intrinsic id (f64 flavour), args a [, b]
    kCastIF,    // a : i64 -> real
    kCastFI,    // a : real -> i64 (truncating)
    kMpiRank,   // i64
    kMpiSize,   // i64
  };
  Kind kind;
  Type type = Type::kF64;
  double cf = 0.0;
  std::int64_t ci = 0;
  int var_id = -1;
  BinOp bop = BinOp::kAddF;
  arch::intrinsics::Id intrin = arch::intrinsics::Id::kSin;
  ExprPtr a, b;
};

struct CondNode {
  CmpOp op = CmpOp::kEq;
  ExprPtr a, b;  // same type
};

struct StmtNode;
using StmtPtr = std::shared_ptr<const StmtNode>;
using StmtList = std::vector<StmtPtr>;

struct StmtNode {
  enum class Kind : std::uint8_t {
    kAssign,      // var_id = a
    kStore,       // array var_id [ a ] = b
    kIf,          // cond, then_body, else_body
    kWhile,       // cond, body
    kFor,         // var_id = a .. < b (step c as constant), body
    kCall,        // callee (void, communicates via globals)
    kOutput,      // a (real; emitted to the verification channel as f64)
    kOutputI,     // a (i64)
    kBarrier,
    kAllreduceVec,  // array var_id, count expr a (elementwise f64 sum)
    kReturn,
  };
  Kind kind;
  int var_id = -1;
  ExprPtr a, b;
  std::int64_t step = 1;
  CondNode cond;
  StmtList body, else_body;
  std::string callee;
};

/// A declared scalar or array.
struct VarDecl {
  std::string name;
  Type type = Type::kF64;
  bool is_array = false;
  std::size_t size = 1;              // elements, arrays only
  std::vector<double> init_f;        // baked initial contents (f64 arrays)
  std::vector<std::int64_t> init_i;  // baked initial contents (i64 arrays)
  bool has_init = false;
};

struct FuncDecl {
  std::string name;
  std::string module;
  StmtList body;
};

struct ProgramModel {
  std::vector<VarDecl> vars;    // global (static) storage, var_id indexed
  std::vector<FuncDecl> funcs;  // funcs[0..]; entry selected at compile time
  std::string entry = "main";
};

}  // namespace fpmix::lang
