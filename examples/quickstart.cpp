// Quickstart: the whole fpmix pipeline on a small program.
//
//   1. Write a double-precision program in the kernel mini-language and
//      compile it to a virtual binary (stands in for "an existing binary").
//   2. Lift the binary, enumerate its structure and candidate set.
//   3. Hand-build a mixed-precision configuration, patch the binary and run
//      it -- no source changes involved.
//   4. Let the automatic breadth-first search find the best configuration,
//      and print it in the Figure-3 exchange format.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "config/textio.hpp"
#include "instrument/patch.hpp"
#include "lang/builder.hpp"
#include "lang/compile.hpp"
#include "program/layout.hpp"
#include "program/program.hpp"
#include "search/search.hpp"
#include "verify/evaluate.hpp"
#include "vm/machine.hpp"

using namespace fpmix;

namespace {

// A toy "simulation": a forward sweep that tolerates single precision and a
// compensated reduction that does not.
lang::ProgramModel build_demo() {
  lang::Builder b;
  auto cells = b.array_f64("cells", 256);
  auto total = b.var_f64("total");
  auto carry = b.var_f64("carry");

  b.begin_func("relax", "physics");
  {
    auto i = b.var_i64("rx_i");
    b.for_(i, b.ci(1), b.ci(255), [&] {
      b.store(cells, lang::Expr(i),
              (cells[lang::Expr(i) - b.ci(1)] + cells[lang::Expr(i)] +
               cells[lang::Expr(i) + b.ci(1)]) /
                  b.cf(3.0));
    });
  }
  b.end_func();

  b.begin_func("reduce", "diagnostics");
  {
    // Kahan summation: numerically delicate on purpose.
    auto i = b.var_i64("rd_i");
    auto y = b.var_f64("rd_y");
    auto t = b.var_f64("rd_t");
    b.set(total, b.cf(0.0));
    b.set(carry, b.cf(0.0));
    b.for_(i, b.ci(0), b.ci(256), [&] {
      b.set(y, cells[lang::Expr(i)] - lang::Expr(carry));
      b.set(t, lang::Expr(total) + lang::Expr(y));
      b.set(carry, (lang::Expr(t) - lang::Expr(total)) - lang::Expr(y));
      b.set(total, t);
    });
  }
  b.end_func();

  b.begin_func("main", "driver");
  {
    auto i = b.var_i64("mn_i");
    auto s = b.var_i64("mn_s");
    b.for_(i, b.ci(0), b.ci(256), [&] {
      b.store(cells, lang::Expr(i),
              sin_(to_f64(i) * b.cf(0.1)) + b.cf(1.0e-7) * to_f64(i));
    });
    b.for_(s, b.ci(0), b.ci(20), [&] { b.call("relax"); });
    b.call("reduce");
    b.output(total);
  }
  b.end_func();
  return b.take_model();
}

}  // namespace

int main() {
  // -- 1. The "existing binary" --------------------------------------------
  const program::Image binary =
      program::relayout(lang::compile(build_demo(), lang::Mode::kDouble));
  std::printf("binary: %zu code bytes, %zu functions\n", binary.code.size(),
              binary.symbols.size());

  vm::Machine original(binary);
  if (!original.run().ok()) return 1;
  const double reference = original.output_f64().at(0);
  std::printf("double-precision result: %.15g (%llu instructions)\n\n",
              reference,
              static_cast<unsigned long long>(
                  original.instructions_retired()));

  // -- 2. Static analysis ----------------------------------------------------
  auto index = config::StructureIndex::build(program::lift(binary));
  std::printf("structure: %zu modules, %zu functions, %zu blocks, "
              "%zu candidate instructions\n\n",
              index.modules().size(), index.funcs().size(),
              index.blocks().size(), index.candidates().size());

  // -- 3. A hand-built mixed-precision configuration -------------------------
  config::PrecisionConfig manual;
  manual.set_module(index.module_named("physics"),
                    config::Precision::kSingle);
  instrument::InstrumentStats stats;
  const program::Image patched =
      instrument::instrument_image(binary, index, manual, &stats);
  vm::Machine mixed(patched);
  if (!mixed.run().ok()) return 1;
  std::printf("physics module narrowed to single: result %.15g "
              "(|delta| = %.3g), %zu instructions wrapped, %zu narrowed\n\n",
              mixed.output_f64().at(0),
              std::abs(mixed.output_f64().at(0) - reference), stats.wrapped,
              stats.replaced_single);

  // -- 4. Automatic search ----------------------------------------------------
  verify::RelativeErrorVerifier verifier({reference}, 1e-7);
  search::SearchOptions opts;
  const search::SearchResult result =
      search::run_search(binary, &index, verifier, opts);
  std::printf("search: %zu configurations tested; final configuration "
              "replaces %.1f%% of candidates (%.1f%% of executions), "
              "composition %s\n\n",
              result.configs_tested, result.stats.static_pct,
              result.stats.dynamic_pct,
              result.final_passed ? "passes" : "fails");

  std::printf("---- recommended configuration (Figure 3 format) ----\n%s",
              config::to_text(index, result.final_config).c_str());
  return 0;
}
