#include "net/shard_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/hash.hpp"
#include "support/journal.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FPMIX_STORE_POSIX 1
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#else
#define FPMIX_STORE_POSIX 0
#endif

namespace fpmix::net {

namespace {

/// Stable shard file basename for a search fingerprint. The fingerprint is
/// free-form text, so the name is its FNV-1a digest; the fingerprint itself
/// is recorded in the file's sealed header, which is what reload trusts.
std::string shard_basename(const std::string& search_fp, bool cache) {
  return strformat("%s-%s.jsonl", cache ? "cache" : "shard",
                   hex_digest(fnv1a64(search_fp)).c_str());
}

std::string head_record(const std::string& search_fp, bool cache) {
  return strformat("{\"type\":\"shard-head\",\"kind\":\"%s\",\"search_fp\":\"%s\"}",
                   cache ? "cache" : "journal",
                   json_escape(search_fp).c_str());
}

#if FPMIX_STORE_POSIX
/// mkdir -p: creates every missing component of `dir`. EEXIST is success.
bool mkdir_p(const std::string& dir) {
  std::string partial;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    partial = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}
#endif

}  // namespace

ShardStore::ShardStore(const ShardStoreOptions& opts) : opts_(opts) {
  if (opts_.dir.empty()) return;
#if FPMIX_STORE_POSIX
  if (!mkdir_p(opts_.dir)) {
    degrade(strformat("cannot create state dir %s: %s", opts_.dir.c_str(),
                      std::strerror(errno)));
    return;
  }
  // Probe writability up front so a read-only state dir is reported as
  // degraded in the very first hello ack, not on the first append.
  const std::string probe = opts_.dir + "/.probe";
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (f == nullptr) {
    degrade(strformat("state dir %s is not writable: %s", opts_.dir.c_str(),
                      std::strerror(errno)));
    return;
  }
  std::fclose(f);
  std::remove(probe.c_str());
#else
  degrade("shard persistence unsupported on this platform");
#endif
}

ShardStore::~ShardStore() { close_all(); }

void ShardStore::close_all() {
  for (auto& [fp, fs] : journal_files_) {
    if (fs.f != nullptr) std::fclose(fs.f);
    fs.f = nullptr;
  }
  for (auto& [fp, fs] : cache_files_) {
    if (fs.f != nullptr) std::fclose(fs.f);
    fs.f = nullptr;
  }
}

void ShardStore::degrade(const std::string& reason) {
  ++stats_.disk_faults;
  if (stats_.degraded) return;
  stats_.degraded = true;
  close_all();
  if (!warned_) {
    warned_ = true;
    log::warnf("runner_serve: shard persistence degraded to in-memory "
               "operation: %s",
               reason.c_str());
  }
}

void ShardStore::load(
    std::map<std::string, std::map<std::uint64_t, std::string>>* journal,
    std::map<std::string, std::vector<PersistedVerdict>>* verdicts) {
  if (!enabled()) return;
#if FPMIX_STORE_POSIX
  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) {
    degrade(strformat("cannot scan state dir %s: %s", opts_.dir.c_str(),
                      std::strerror(errno)));
    return;
  }
  std::vector<std::string> names;
  while (dirent* e = ::readdir(d)) names.emplace_back(e->d_name);
  ::closedir(d);
  // Deterministic reload order regardless of directory hash order.
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    const bool is_journal = name.rfind("shard-", 0) == 0;
    const bool is_cache = name.rfind("cache-", 0) == 0;
    if ((!is_journal && !is_cache) ||
        name.size() < 7 || name.substr(name.size() - 6) != ".jsonl") {
      continue;
    }
    const std::string path = opts_.dir + "/" + name;
    if (opts_.chaos != nullptr &&
        opts_.chaos->for_op(name, 0) == fault::DiskFault::kUnreadable) {
      // Injected EIO on open: this shard is lost to the reload (gossip or
      // the next adoption re-streams it); the store itself stays healthy.
      ++stats_.disk_faults;
      log::warnf("runner_serve: state file %s unreadable on reload (injected)",
                 path.c_str());
      continue;
    }
    const std::vector<std::string> lines = Journal::read_lines(path);
    // The sealed header (seq 0) is the file's identity; without an intact
    // one the records cannot be attributed, so the file is discarded and
    // removed (a later append recreates it with a fresh header).
    JsonRecord head;
    std::uint64_t head_seq = 1;
    if (lines.empty() || check_seal(lines[0]) != SealCheck::kOk ||
        !sealed_seq(lines[0], &head_seq) || head_seq != 0 ||
        !parse_flat_json(lines[0], &head) || head["type"] != "shard-head" ||
        head["kind"] != (is_cache ? "cache" : "journal") ||
        head.find("search_fp") == head.end()) {
      stats_.records_discarded += lines.size();
      std::remove(path.c_str());
      log::warnf("runner_serve: state file %s has no intact header; dropped",
                 path.c_str());
      continue;
    }
    const std::string fp = head["search_fp"];

    if (is_journal) {
      auto& by_seq = (*journal)[fp];
      std::uint64_t discarded = 0;
      for (std::size_t i = 1; i < lines.size(); ++i) {
        std::uint64_t seq = 0;
        if (check_seal(lines[i]) != SealCheck::kOk ||
            !sealed_seq(lines[i], &seq) || seq == 0 ||
            !by_seq.emplace(seq, lines[i]).second) {
          ++discarded;
          continue;
        }
        ++stats_.records_reloaded;
      }
      stats_.records_discarded += discarded;
      FileState fs;
      fs.path = path;
      fs.chaos_key = name;
      journal_files_.emplace(fp, std::move(fs));
      ++stats_.shards_reloaded;
      // Damage is paid once: rewrite the file down to the intact records so
      // the next reload (and every fetch of the file) starts clean.
      if (discarded > 0) compact(fp, by_seq);
      if (opts_.verbose) {
        log::infof("runner_serve: reloaded journal shard %s (%zu records, "
                   "%llu discarded)",
                   fp.c_str(), by_seq.size(),
                   static_cast<unsigned long long>(discarded));
      }
    } else {
      auto& out = (*verdicts)[fp];
      std::uint64_t max_seq = 0;
      std::uint64_t discarded = 0;
      for (std::size_t i = 1; i < lines.size(); ++i) {
        std::uint64_t seq = 0;
        JsonRecord rec;
        if (check_seal(lines[i]) != SealCheck::kOk ||
            !sealed_seq(lines[i], &seq) || !parse_flat_json(lines[i], &rec) ||
            rec["type"] != "verdict" || rec.find("key") == rec.end()) {
          ++discarded;
          continue;
        }
        PersistedVerdict v;
        v.key = rec["key"];
        v.passed = rec["passed"] == "true";
        v.failure_class = static_cast<std::uint8_t>(
            std::strtoul(rec["fc"].c_str(), nullptr, 10));
        v.failure = rec["failure"];
        out.push_back(std::move(v));
        if (seq > max_seq) max_seq = seq;
        ++stats_.records_reloaded;
      }
      stats_.records_discarded += discarded;
      FileState fs;
      fs.path = path;
      fs.chaos_key = name;
      fs.next_seq = max_seq + 1;
      cache_files_.emplace(fp, std::move(fs));
      ++stats_.shards_reloaded;
      if (opts_.verbose) {
        log::infof("runner_serve: reloaded verdict cache %s (%zu entries, "
                   "%llu discarded)",
                   fp.c_str(), out.size(),
                   static_cast<unsigned long long>(discarded));
      }
    }
  }
#else
  (void)journal;
  (void)verdicts;
#endif
}

ShardStore::FileState* ShardStore::file_for(const std::string& search_fp,
                                            bool cache) {
  auto& files = cache ? cache_files_ : journal_files_;
  auto it = files.find(search_fp);
  if (it != files.end()) return &it->second;
  FileState fs;
  fs.chaos_key = shard_basename(search_fp, cache);
  fs.path = opts_.dir + "/" + fs.chaos_key;
  FileState* out = &files.emplace(search_fp, std::move(fs)).first->second;
  // New shard: the sealed header must precede any record.
  append_line(out, seal_record(head_record(search_fp, cache), 0));
  return out;
}

void ShardStore::append_line(FileState* fs, const std::string& line) {
  if (!enabled()) return;
  const fault::DiskFault fault =
      opts_.chaos != nullptr
          ? opts_.chaos->for_op(fs->chaos_key, ++fs->ops)
          : fault::DiskFault::kNone;
  if (fault == fault::DiskFault::kEnospc) {
    degrade(strformat("write %s: injected ENOSPC", fs->path.c_str()));
    return;
  }
  if (fs->f == nullptr) {
    fs->f = std::fopen(fs->path.c_str(), "ab");
    if (fs->f == nullptr) {
      degrade(strformat("open %s: %s", fs->path.c_str(),
                        std::strerror(errno)));
      return;
    }
  }
  std::string_view bytes = line;
  bool newline = true;
  if (fault == fault::DiskFault::kShortWrite) {
    // A torn write: only a prefix reaches the file and no newline follows.
    // Reload's seal check drops the mangled record (and whatever the next
    // append glues onto it) exactly like a crash mid-append.
    bytes = bytes.substr(0, bytes.size() / 2);
    newline = false;
    ++stats_.disk_faults;
  } else if (fault == fault::DiskFault::kTornRecord) {
    newline = false;
    ++stats_.disk_faults;
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), fs->f);
  if (newline) std::fputc('\n', fs->f);
  if (wrote != bytes.size() || std::fflush(fs->f) != 0 ||
      std::ferror(fs->f) != 0) {
    degrade(strformat("write %s: %s", fs->path.c_str(),
                      std::strerror(errno)));
    return;
  }
#if FPMIX_STORE_POSIX
  if (opts_.fsync) {
    if (fault == fault::DiskFault::kFsyncFail) {
      // The record sits in the page cache only; process death keeps it,
      // power loss may not. Counted so campaigns can audit the exposure.
      ++stats_.disk_faults;
    } else {
      ::fsync(::fileno(fs->f));
    }
  }
#endif
}

void ShardStore::append_journal(const std::string& search_fp,
                                const std::string& line) {
  if (!enabled()) return;
  append_line(file_for(search_fp, /*cache=*/false), line);
}

void ShardStore::append_verdict(const std::string& search_fp,
                                const PersistedVerdict& v) {
  if (!enabled()) return;
  FileState* fs = file_for(search_fp, /*cache=*/true);
  const std::string rec = strformat(
      "{\"type\":\"verdict\",\"key\":\"%s\",\"passed\":%s,\"fc\":%u,"
      "\"failure\":\"%s\"}",
      json_escape(v.key).c_str(), v.passed ? "true" : "false",
      static_cast<unsigned>(v.failure_class),
      json_escape(v.failure).c_str());
  append_line(fs, seal_record(rec, fs->next_seq++));
}

void ShardStore::compact(const std::string& search_fp,
                         const std::map<std::uint64_t, std::string>& by_seq) {
  auto it = journal_files_.find(search_fp);
  if (it == journal_files_.end()) return;
  FileState& fs = it->second;
  if (fs.f != nullptr) {
    std::fclose(fs.f);
    fs.f = nullptr;
  }
  std::string contents = seal_record(head_record(search_fp, false), 0);
  contents += '\n';
  for (const auto& [seq, line] : by_seq) {
    contents += line;
    contents += '\n';
  }
  std::string error;
  if (!atomic_replace(fs.path, contents, &error)) {
    degrade(strformat("compact %s: %s", fs.path.c_str(), error.c_str()));
    return;
  }
  fs.stale = 0;
  ++stats_.compactions;
}

void ShardStore::note_evicted(const std::string& search_fp,
                              std::uint64_t evicted,
                              const std::map<std::uint64_t, std::string>& by_seq) {
  if (!enabled() || evicted == 0) return;
  auto it = journal_files_.find(search_fp);
  if (it == journal_files_.end()) return;
  it->second.stale += evicted;
  // Rewriting per eviction would be quadratic; let a bounded backlog of
  // shed records build up, then pay one atomic rewrite.
  if (it->second.stale > 256) compact(search_fp, by_seq);
}

void ShardStore::remove_journal(const std::string& search_fp) {
  auto it = journal_files_.find(search_fp);
  if (it == journal_files_.end()) return;
  if (it->second.f != nullptr) std::fclose(it->second.f);
  std::remove(it->second.path.c_str());
  journal_files_.erase(it);
}

}  // namespace fpmix::net
