// Workloads: the benchmark programs the paper evaluates on, rebuilt in the
// kernel mini-language (see DESIGN.md section 2 for the substitution table).
//
// Every workload bundles a ProgramModel, the verification policy its suite
// prescribes, and problem-class metadata. NAS-style classes are scaled-down
// analogues (VM interpretation is orders of magnitude slower than native
// execution): S < W < A < C by problem size.
#pragma once

#include <memory>
#include <string>

#include "lang/ast.hpp"
#include "program/image.hpp"
#include "verify/verifier.hpp"

namespace fpmix::kernels {

struct Workload {
  std::string name;  // e.g. "cg.W"
  lang::ProgramModel model;

  // Verification policy. Default: relative/absolute comparison of every
  // output against the unmodified double-precision run.
  double rel_tol = 1e-6;
  double abs_tol = 0.0;
  /// Per-output overrides: {index, rel_tol, abs_tol}.
  struct OutputTol {
    std::size_t index;
    double rel;
    double abs;
  };
  std::vector<OutputTol> output_tols;
  // SuperLU-style: the program reports an error metric; verify it against a
  // threshold instead of comparing outputs.
  bool threshold_mode = false;
  std::size_t error_output_index = 0;
  std::size_t expected_outputs = 0;
  double threshold = 0.0;

  std::uint64_t max_instructions = 1ull << 32;
};

/// Compiles and lays out the workload (Mode::kDouble = the "original"
/// binary; Mode::kSingle = the manual conversion twin).
program::Image build_image(const Workload& w,
                           lang::Mode mode = lang::Mode::kDouble);

/// Builds the workload's verifier. For relative-error workloads this runs
/// the original binary once to obtain the reference outputs.
std::unique_ptr<verify::Verifier> make_verifier(
    const Workload& w, const program::Image& original);

// ---- NAS Parallel Benchmark analogues -------------------------------------
// `cls` is one of 'S', 'W', 'A', 'C'. `ranks` > 1 builds the mini-MPI SPMD
// variant (only EP/CG/FT/MG, the Figure 8 set).
Workload make_ep(char cls, int ranks = 1);
Workload make_cg(char cls, int ranks = 1);
Workload make_ft(char cls, int ranks = 1);
Workload make_mg(char cls, int ranks = 1);
Workload make_bt(char cls);
Workload make_lu(char cls);
Workload make_sp(char cls);

// ---- ASC AMG microkernel analogue (Section 3.2) ----------------------------
Workload make_amg();

// ---- SuperLU analogue: banded solver on the memplus-like system ------------
/// `threshold` is the error bound the verification driver enforces
/// (Figure 11 sweeps it from 1e-3 down to 1e-6).
Workload make_superlu(double threshold);

/// Every single-rank workload (used by test sweeps).
std::vector<Workload> all_serial_workloads();

}  // namespace fpmix::kernels
